(* Machine-readable benchmark output.

   Every experiment section pushes rows (as JSON objects) into a global
   store keyed by experiment name, and shared campaign/chaos metrics
   accumulate into one registry.  When the harness is invoked with
   [--json PATH], [write] dumps the whole run as one JSON document:

     { "schema": "composite-registers/bench/v1",
       "experiments": { "E2": [ {...}, ... ], ... },
       "metrics": <Obs.Metrics registry dump> }

   The numbers recorded here are the very values printed in the text
   tables (same computation, recorded at the same call sites), so the
   JSON agrees with the human-readable output by construction. *)

let metrics = Obs.Metrics.create ()

let experiments : (string, Obs.Json.t list ref) Hashtbl.t = Hashtbl.create 16

let row exp fields =
  let rows =
    match Hashtbl.find_opt experiments exp with
    | Some r -> r
    | None ->
      let r = ref [] in
      Hashtbl.add experiments exp r;
      r
  in
  rows := Obs.Json.Obj fields :: !rows

let write ~path =
  let exps =
    Hashtbl.fold
      (fun k rows acc -> (k, Obs.Json.Arr (List.rev !rows)) :: acc)
      experiments []
  in
  let exps = List.sort (fun (a, _) (b, _) -> compare a b) exps in
  let doc =
    Obs.Json.Obj
      [
        ("schema", Obs.Json.Str "composite-registers/bench/v1");
        ("experiments", Obs.Json.Obj exps);
        ("metrics", Obs.Metrics.to_json metrics);
      ]
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Obs.Json.to_channel ~minify:false oc doc;
      output_char oc '\n')

(* Machine-readable benchmark output.

   Every experiment section pushes rows (as JSON objects) into a global
   store keyed by experiment name, and shared campaign/chaos metrics
   accumulate into one registry.  When the harness is invoked with
   [--json PATH], [write] dumps the whole run as one JSON document:

     { "schema": "composite-registers/bench/v2",
       "version": 2,
       "generated_at": "2025-01-01T00:00:00Z",
       "experiments": { "E2": [ {...}, ... ], ... },
       "metrics": <Obs.Metrics registry dump> }

   [version] is the schema major (bumped on incompatible layout
   changes; v2 added the version/generated_at header fields) and
   [generated_at] is the UTC wall-clock instant of the dump in ISO
   8601, so archived BENCH.json artifacts are self-dating.

   The numbers recorded here are the very values printed in the text
   tables (same computation, recorded at the same call sites), so the
   JSON agrees with the human-readable output by construction. *)

let metrics = Obs.Metrics.create ()

let experiments : (string, Obs.Json.t list ref) Hashtbl.t = Hashtbl.create 16

let row exp fields =
  let rows =
    match Hashtbl.find_opt experiments exp with
    | Some r -> r
    | None ->
      let r = ref [] in
      Hashtbl.add experiments exp r;
      r
  in
  rows := Obs.Json.Obj fields :: !rows

let iso8601_now () =
  let t = Unix.gmtime (Unix.gettimeofday ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (t.Unix.tm_year + 1900)
    (t.Unix.tm_mon + 1) t.Unix.tm_mday t.Unix.tm_hour t.Unix.tm_min
    t.Unix.tm_sec

let doc () =
  let exps =
    Hashtbl.fold
      (fun k rows acc -> (k, Obs.Json.Arr (List.rev !rows)) :: acc)
      experiments []
  in
  let exps = List.sort (fun (a, _) (b, _) -> compare a b) exps in
  Obs.Json.Obj
    [
      ("schema", Obs.Json.Str "composite-registers/bench/v2");
      ("version", Obs.Json.Int 2);
      ("generated_at", Obs.Json.Str (iso8601_now ()));
      ("experiments", Obs.Json.Obj exps);
      ("metrics", Obs.Metrics.to_json metrics);
    ]

let write ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Obs.Json.to_channel ~minify:false oc (doc ());
      output_char oc '\n')

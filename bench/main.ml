(* Benchmark harness: regenerates every experiment of the reproduction
   (DESIGN.md section 5 / EXPERIMENTS.md).

   E1 — Figure 4 scenario replays (branch + values asserted).
   E2 — Read-time recurrence TR, measured = paper, C sweep.
   E3 — Write-time recurrence TW, measured = paper, C x R sweep.
   E4 — Space recurrence, measured = paper, C/B/R sweeps.
   E5 — Anderson vs Afek operation costs (crossover table).
   E6 — Linearizability campaign summary (all impls).
   E7 — Wall-clock latency and domain throughput (Bechamel + domains).
   E8 — PRMW counter vs mutex counter (Bechamel).
   E9 — Multi-writer composite register costs + verification.
   E15 — Parallel verification engine: campaign scaling over worker
         domains (--jobs), with verdicts and merged metrics asserted
         bit-identical to the sequential run, plus the indexed vs
         naive Shrinking-checker speedup.
   E16 — Message complexity of the ABD network backend: solo register
         ops meet the two-round bound (2n / 4n messages) exactly,
         composite ops decompose into 4n*reads + 2n*writes, and the
         net chaos fault envelope holds (in-model faults clean,
         broken quorum caught).
   E17 — Serving layer: write/scan throughput and latency across shard
         counts, write burst sizes, and with caching disabled; exact
         coalesce and cache hit/stale ratios from the serve counters.
   E18 — Byzantine-tolerant register construction: closed-form and
         measured base-access overhead vs plain SWSR cells, and the
         tolerance boundary asserted from both sides (within-f
         adversaries masked, beyond-f or unprotected caught).
   E20 — Raw-speed campaign: scan-sharing on/off at 8 readers,
         post_batch vs loop-of-posts, padded vs plain contended
         atomics, and the Afek fast path vs the Anderson oracle
         (with a deterministic differential replay gate).
   E21 — Network edge: the TCP front-end under open-loop load
         (Poisson arrivals, Zipfian skew) across shard and connection
         counts for the serve and multicore backends, with exact
         accounting (every op accounted for, identities at shutdown)
         and shape-only wall-clock percentiles.
   E22 — Elastic sharding: throughput dip and recovery across an
         online reshard under live load, and the quiesce-migrate-
         publish cost vs shard count, with the per-epoch accounting
         identities asserted exactly.

   Counts (E1-E6, E9) are deterministic and compared against the paper
   exactly; wall-clock numbers (E7, E8, E15 timings) are
   machine-dependent and only their shape is asserted in
   EXPERIMENTS.md.

   Flags: --quick skips E7/E8; --json PATH dumps Record;
   --jobs N shards the E6 campaigns and the E13 chaos sweep over N
   domains (results are identical for every N — that is E15's
   assertion). *)

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* ------------------------------------------------------------------ *)
(* E1                                                                   *)
(* ------------------------------------------------------------------ *)

let case_name = function
  | None -> "none"
  | Some Composite.Anderson.Case_snapshot_seq -> "snapshot via seq handshake"
  | Some Composite.Anderson.Case_snapshot_wc -> "snapshot via wc = a.wc+2"
  | Some Composite.Anderson.Case_ab -> "(a, b)"
  | Some Composite.Anderson.Case_cd -> "(c, d)"

let e1 () =
  section "E1: Figure 4 executions and Section 4.1 case analysis (scripted replays)";
  let t =
    Workload.Table.create
      ~header:[ "scenario"; "branch taken"; "returned"; "ids"; "linearizable"; "as paper predicts" ]
  in
  let row (name, f, expected) =
    let o = f () in
    Record.row "E1"
      [
        ("scenario", Obs.Json.Str name);
        ("branch", Obs.Json.Str (case_name o.Workload.Scenario.case));
        ( "values",
          Obs.Json.Arr
            (Array.to_list
               (Array.map (fun v -> Obs.Json.Int v) o.Workload.Scenario.values))
        );
        ("linearizable", Obs.Json.Bool o.Workload.Scenario.linearizable);
        ("as_predicted", Obs.Json.Bool (o.Workload.Scenario.case = Some expected));
      ];
    Workload.Table.add_row t
      [
        name;
        case_name o.Workload.Scenario.case;
        "["
        ^ String.concat "; "
            (Array.to_list (Array.map string_of_int o.Workload.Scenario.values))
        ^ "]";
        "["
        ^ String.concat "; "
            (Array.to_list (Array.map string_of_int o.Workload.Scenario.ids))
        ^ "]";
        Workload.Table.cell_bool o.Workload.Scenario.linearizable;
        Workload.Table.cell_bool (o.Workload.Scenario.case = Some expected);
      ]
  in
  List.iter row
    [
      ("fig 4(a)", Workload.Scenario.fig4a, Composite.Anderson.Case_snapshot_seq);
      ("fig 4(b)", Workload.Scenario.fig4b, Composite.Anderson.Case_snapshot_wc);
      ("case 3", Workload.Scenario.case_ab, Composite.Anderson.Case_ab);
      ("case 4", Workload.Scenario.case_cd, Composite.Anderson.Case_cd);
    ];
  Workload.Table.print t

(* ------------------------------------------------------------------ *)
(* E2 / E3                                                              *)
(* ------------------------------------------------------------------ *)

let e2 () =
  section "E2: Read time — register operations per Read (TR(C) = 5 + 2 TR(C-1))";
  let t =
    Workload.Table.create
      ~header:[ "C"; "measured"; "paper recurrence"; "closed form 6*2^(C-1)-5"; "exact match" ]
  in
  for c = 1 to 10 do
    let m = Workload.Meter.scan_cost Workload.Campaign.Impl_anderson ~c ~r:3 in
    Record.row "E2"
      [
        ("c", Obs.Json.Int c);
        ("measured", Obs.Json.Int m);
        ("paper", Obs.Json.Int (Composite.Complexity.tr ~c));
        ("closed_form", Obs.Json.Int (Composite.Complexity.tr_closed ~c));
        ("exact_match", Obs.Json.Bool (m = Composite.Complexity.tr ~c));
      ];
    Workload.Table.add_row t
      [
        string_of_int c;
        string_of_int m;
        string_of_int (Composite.Complexity.tr ~c);
        string_of_int (Composite.Complexity.tr_closed ~c);
        Workload.Table.cell_bool (m = Composite.Complexity.tr ~c);
      ]
  done;
  Workload.Table.print t

let e3 () =
  section "E3: Write time — register operations per Write (TW0(C,R) = R + 2 + TR(C-1))";
  let t =
    Workload.Table.create
      ~header:
        [ "C"; "R"; "writer 0 measured"; "writer 0 paper"; "writer C-1 measured"; "exact match" ]
  in
  List.iter
    (fun (c, r) ->
      let m0 =
        Workload.Meter.update_cost Workload.Campaign.Impl_anderson ~c ~r ~writer:0
      in
      let mlast =
        Workload.Meter.update_cost Workload.Campaign.Impl_anderson ~c ~r
          ~writer:(c - 1)
      in
      Record.row "E3"
        [
          ("c", Obs.Json.Int c);
          ("r", Obs.Json.Int r);
          ("writer0_measured", Obs.Json.Int m0);
          ("writer0_paper", Obs.Json.Int (Composite.Complexity.tw0 ~c ~r));
          ("writer_last_measured", Obs.Json.Int mlast);
          ("exact_match", Obs.Json.Bool (m0 = Composite.Complexity.tw0 ~c ~r));
        ];
      Workload.Table.add_row t
        [
          string_of_int c;
          string_of_int r;
          string_of_int m0;
          string_of_int (Composite.Complexity.tw0 ~c ~r);
          string_of_int mlast;
          Workload.Table.cell_bool (m0 = Composite.Complexity.tw0 ~c ~r);
        ])
    [ (1, 1); (2, 1); (2, 4); (3, 2); (4, 2); (4, 8); (6, 3); (8, 3); (10, 3) ];
  Workload.Table.print t

(* ------------------------------------------------------------------ *)
(* E4                                                                   *)
(* ------------------------------------------------------------------ *)

let e4 () =
  section "E4: Space — MRSW registers and bits (recurrence S(C) = Y0 + Z + S(C-1))";
  let t =
    Workload.Table.create
      ~header:
        [ "C"; "B"; "R"; "registers"; "bits measured"; "bits paper"; "SRSW asymptotic"; "exact match" ]
  in
  List.iter
    (fun (c, b, r) ->
      let bits =
        Workload.Meter.space_bits Workload.Campaign.Impl_anderson ~c ~b ~r
      in
      Record.row "E4"
        [
          ("c", Obs.Json.Int c);
          ("b", Obs.Json.Int b);
          ("r", Obs.Json.Int r);
          ( "registers",
            Obs.Json.Int
              (Workload.Meter.space_registers Workload.Campaign.Impl_anderson ~c
                 ~r) );
          ("bits_measured", Obs.Json.Int bits);
          ( "bits_paper",
            Obs.Json.Int (Composite.Complexity.space_mrsw_bits ~c ~b ~r) );
          ( "srsw_asymptotic",
            Obs.Json.Int (Composite.Complexity.space_srsw_asymptotic ~c ~b ~r) );
          ( "exact_match",
            Obs.Json.Bool (bits = Composite.Complexity.space_mrsw_bits ~c ~b ~r)
          );
        ];
      Workload.Table.add_row t
        [
          string_of_int c; string_of_int b; string_of_int r;
          string_of_int
            (Workload.Meter.space_registers Workload.Campaign.Impl_anderson ~c ~r);
          string_of_int bits;
          string_of_int (Composite.Complexity.space_mrsw_bits ~c ~b ~r);
          string_of_int (Composite.Complexity.space_srsw_asymptotic ~c ~b ~r);
          Workload.Table.cell_bool
            (bits = Composite.Complexity.space_mrsw_bits ~c ~b ~r);
        ])
    [
      (1, 8, 2); (2, 8, 2); (3, 8, 2); (4, 8, 2); (6, 8, 2); (8, 8, 2);
      (3, 32, 2); (3, 8, 8); (5, 16, 4);
    ];
  Workload.Table.print t

(* ------------------------------------------------------------------ *)
(* E5                                                                   *)
(* ------------------------------------------------------------------ *)

let e5 () =
  section "E5: Anderson (exponential, SW registers only) vs Afek et al. (polynomial)";
  let t =
    Workload.Table.create
      ~header:
        [
          "C"; "anderson scan"; "afek scan (quiescent)"; "afek scan (worst case)";
          "anderson update0"; "afek update"; "scan winner";
        ]
  in
  for c = 1 to 12 do
    let a = Workload.Meter.scan_cost Workload.Campaign.Impl_anderson ~c ~r:3 in
    let f = Workload.Meter.scan_cost Workload.Campaign.Impl_afek ~c ~r:3 in
    Record.row "E5"
      [
        ("c", Obs.Json.Int c);
        ("anderson_scan", Obs.Json.Int a);
        ("afek_scan_quiescent", Obs.Json.Int f);
        ( "afek_scan_worst",
          Obs.Json.Int (Composite.Afek.scan_bound ~components:c) );
      ];
    Workload.Table.add_row t
      [
        string_of_int c;
        string_of_int a;
        string_of_int f;
        string_of_int (Composite.Afek.scan_bound ~components:c);
        string_of_int
          (Workload.Meter.update_cost Workload.Campaign.Impl_anderson ~c ~r:3
             ~writer:0);
        string_of_int
          (Workload.Meter.update_cost Workload.Campaign.Impl_afek ~c ~r:3
             ~writer:0);
        (if a <= Composite.Afek.scan_bound ~components:c then
           if a <= f then "anderson" else "anderson..afek"
         else "afek");
      ]
  done;
  Workload.Table.print t;
  print_endline
    "(crossover: the recursive construction wins only for very small C — the\n\
    \ comparison Section 5 of the paper draws against Afek et al.)";
  print_newline ();
  print_endline "space (declared register bits, B = 8, R = 3):";
  print_newline ();
  let t =
    Workload.Table.create
      ~header:[ "C"; "anderson bits"; "afek bits (embedded views)" ]
  in
  List.iter
    (fun c ->
      Workload.Table.add_row t
        [
          string_of_int c;
          string_of_int
            (Workload.Meter.space_bits Workload.Campaign.Impl_anderson ~c ~b:8
               ~r:3);
          string_of_int
            (Workload.Meter.space_bits Workload.Campaign.Impl_afek ~c ~b:8 ~r:3);
        ])
    [ 1; 2; 4; 8; 12 ];
  Workload.Table.print t;
  print_endline
    "(anderson stores one embedded snapshot per recursion level; afek stores \
     one\n per component — with unbounded sequence numbers, counted as 64 \
     bits here)"

(* ------------------------------------------------------------------ *)
(* E6                                                                   *)
(* ------------------------------------------------------------------ *)

let e6 ~jobs () =
  section "E6: Linearizability campaigns (Shrinking Lemma + witness + generic oracle)";
  let t =
    Workload.Table.create
      ~header:
        [
          "implementation"; "schedules"; "ops checked"; "flagged"; "oracle rejects";
          "disagreements"; "expected";
        ]
  in
  List.iter
    (fun impl ->
      let cfg = { Workload.Campaign.default with impl; schedules = 200 } in
      let r = Workload.Campaign.run ~jobs ~metrics:Record.metrics cfg in
      let expected =
        match impl with
        | Workload.Campaign.Impl_unsafe_collect -> "violations caught"
        | _ -> "clean"
      in
      Record.row "E6"
        [
          ("impl", Obs.Json.Str (Workload.Campaign.impl_name impl));
          ("schedules", Obs.Json.Int r.Workload.Campaign.runs);
          ("ops_checked", Obs.Json.Int r.Workload.Campaign.ops_checked);
          ("flagged", Obs.Json.Int r.Workload.Campaign.flagged_runs);
          ("oracle_rejects", Obs.Json.Int r.Workload.Campaign.generic_failures);
          ("disagreements", Obs.Json.Int r.Workload.Campaign.disagreements);
          ("expected", Obs.Json.Str expected);
        ];
      Workload.Table.add_row t
        [
          Workload.Campaign.impl_name impl;
          string_of_int r.Workload.Campaign.runs;
          string_of_int r.Workload.Campaign.ops_checked;
          string_of_int r.Workload.Campaign.flagged_runs;
          string_of_int r.Workload.Campaign.generic_failures;
          string_of_int r.Workload.Campaign.disagreements;
          expected;
        ])
    Workload.Campaign.all_impls;
  Workload.Table.print t;
  let ex =
    Workload.Campaign.exhaustive ~impl:Workload.Campaign.Impl_anderson
      ~components:2 ~readers:1 ~writes_per_writer:1 ~scans_per_reader:1 ()
  in
  Printf.printf
    "bounded-exhaustive (anderson, C=2, R=1, 1 write/writer, 1 scan): %d \
     schedules, complete=%b, flagged=%d\n"
    ex.Workload.Campaign.ex_runs ex.Workload.Campaign.ex_exhaustive
    ex.Workload.Campaign.ex_flagged;
  let soak =
    Workload.Gen.soak ~impl:Workload.Campaign.Impl_anderson ~runs:100 ~seed:1
      ~max_components:6 ~max_readers:4 ~max_ops:10
  in
  Printf.printf
    "soak (random shapes up to C=6, R=4, 10 ops/proc): %d runs, %d \
     operations, flagged=%d\n"
    soak.Workload.Gen.soak_runs soak.Workload.Gen.soak_ops
    soak.Workload.Gen.soak_flagged;
  section "E6b: wait-freedom — reader work under a writer storm";
  let t =
    Workload.Table.create
      ~header:[ "writer ops"; "repeated double collect"; "anderson (TR(2) = 7)" ]
  in
  List.iter
    (fun n ->
      Workload.Table.add_row t
        [
          string_of_int n;
          string_of_int (Workload.Scenario.starvation_events ~writer_ops:n);
          string_of_int (Workload.Scenario.wait_free_events ~writer_ops:n);
        ])
    [ 1; 10; 100; 1000 ];
  Workload.Table.print t

let e6c () =
  section
    "E6c: the paper's proof lemmas, machine-checked (Lemma 2, property (12), \
     Lemma 1)";
  let t =
    Workload.Table.create
      ~header:
        [
          "C"; "R"; "schedules"; "reads"; "ghost states"; "Lemma 2 fail";
          "prop (12) fail"; "Lemma 1 fail";
        ]
  in
  List.iter
    (fun (c, r, n) ->
      let rep =
        Workload.Lemmas.run ~components:c ~readers:r ~schedules:n ~base_seed:1 ()
      in
      Workload.Table.add_row t
        [
          string_of_int c; string_of_int r; string_of_int n;
          string_of_int rep.Workload.Lemmas.reads_checked;
          string_of_int rep.Workload.Lemmas.states_observed;
          string_of_int rep.Workload.Lemmas.lemma2_failures;
          string_of_int rep.Workload.Lemmas.property12_failures;
          string_of_int rep.Workload.Lemmas.lemma1_failures;
        ])
    [ (2, 2, 40); (3, 2, 40); (4, 3, 20); (5, 1, 10) ];
  Workload.Table.print t

(* ------------------------------------------------------------------ *)
(* E9                                                                   *)
(* ------------------------------------------------------------------ *)

let e9 () =
  section "E9: multi-writer composite register (companion-paper result)";
  let factory_anderson mem =
    {
      Composite.Snapshot.make_sw =
        (fun ~readers ~init ->
          Composite.Anderson.handle
            (Composite.Anderson.create mem ~readers ~bits_per_value:32 ~init));
    }
  in
  let factory_afek mem =
    {
      Composite.Snapshot.make_sw =
        (fun ~readers ~init ->
          ignore readers;
          Composite.Afek.create mem ~bits_per_value:32 ~init);
    }
  in
  let open Csim in
  let cost factory ~c ~w =
    let env = Sim.create ~trace:false () in
    let mem = Memory.of_sim env in
    let mw =
      Composite.Multi_writer.create (factory mem) ~components:c
        ~writers_per_component:w ~readers:1 ~init:(Array.make c 0)
    in
    let before = Sim.now env in
    ignore (Sim.run_solo env (fun () -> ignore (Composite.Multi_writer.scan_items mw ~reader:0)));
    let scan_cost = Sim.now env - before in
    let before = Sim.now env in
    ignore
      (Sim.run_solo env (fun () ->
           ignore (Composite.Multi_writer.update mw ~comp:0 ~widx:0 42)));
    (scan_cost, Sim.now env - before)
  in
  let t =
    Workload.Table.create
      ~header:[ "substrate"; "C"; "W/component"; "scan cost"; "write cost" ]
  in
  List.iter
    (fun (name, factory, c, w) ->
      let s, u = cost factory ~c ~w in
      Workload.Table.add_row t
        [ name; string_of_int c; string_of_int w; string_of_int s; string_of_int u ])
    [
      ("anderson", factory_anderson, 2, 2);
      ("anderson", factory_anderson, 2, 3);
      ("afek", factory_afek, 2, 2);
      ("afek", factory_afek, 3, 2);
      ("afek", factory_afek, 3, 3);
    ];
  Workload.Table.print t;
  (* verification sweep *)
  let flagged = ref 0 in
  let runs = 60 in
  for seed = 1 to runs do
    let env = Sim.create ~trace:false () in
    let mem = Memory.of_sim env in
    let mw =
      Composite.Multi_writer.create (factory_afek mem) ~components:2
        ~writers_per_component:2 ~readers:2 ~init:[| 0; 0 |]
    in
    let rec_ =
      Composite.Multi_writer.record
        ~clock:(fun () -> Sim.now env)
        ~initial:[| 0; 0 |] mw
    in
    let writer comp widx () =
      for s = 1 to 2 do
        rec_.Composite.Multi_writer.mupdate ~comp ~widx ((comp * 100) + (widx * 10) + s)
      done
    in
    let reader j () =
      for _ = 1 to 3 do
        ignore (rec_.Composite.Multi_writer.mscan ~reader:j)
      done
    in
    ignore
      (Sim.run env ~policy:(Schedule.Random seed)
         [| writer 0 0; writer 0 1; writer 1 0; writer 1 1; reader 0; reader 1 |]);
    if
      not
        (History.Shrinking.conditions_hold ~equal:Int.equal
           (Composite.Multi_writer.history rec_))
    then incr flagged
  done;
  Printf.printf "verification: %d/%d random schedules flagged (expected 0)\n"
    !flagged runs

(* ------------------------------------------------------------------ *)
(* E10                                                                  *)
(* ------------------------------------------------------------------ *)

let e10 () =
  section
    "E10: full stack — the snapshot over MRSW registers constructed from \
     SRSW registers";
  let scan_cost ~c ~processes =
    let open Csim in
    let env = Sim.create ~trace:false () in
    let mem = Registers.Full_stack.memory env ~processes in
    let reg =
      Composite.Anderson.create mem ~readers:1 ~bits_per_value:16
        ~init:(Array.make c 0)
    in
    let t0 = Sim.now env in
    let (_ : Sim.stats) =
      Sim.run_solo env (fun () ->
          ignore (Composite.Anderson.scan_items reg ~reader:0))
    in
    Sim.now env - t0
  in
  let t =
    Workload.Table.create
      ~header:[ "C"; "SRSW ops (P=1)"; "SRSW ops (P=2)"; "SRSW ops (P=4)"; "TR(C)" ]
  in
  List.iter
    (fun c ->
      Workload.Table.add_row t
        [
          string_of_int c;
          string_of_int (scan_cost ~c ~processes:1);
          string_of_int (scan_cost ~c ~processes:2);
          string_of_int (scan_cost ~c ~processes:4);
          string_of_int (Composite.Complexity.tr ~c);
        ])
    [ 1; 2; 3; 4; 5; 6 ];
  Workload.Table.print t;
  (* correctness over the composed substrate *)
  let open Csim in
  let flagged = ref 0 in
  let runs = 40 in
  for seed = 1 to runs do
    let env = Sim.create ~trace:false () in
    let mem = Registers.Full_stack.memory env ~processes:4 in
    let init = [| 10; 20 |] in
    let reg = Composite.Anderson.create mem ~readers:2 ~bits_per_value:16 ~init in
    let rec_ =
      Composite.Snapshot.record
        ~clock:(fun () -> Sim.now env)
        ~initial:init
        (Composite.Anderson.handle reg)
    in
    let writer k () =
      for s = 1 to 2 do
        rec_.Composite.Snapshot.rupdate ~writer:k (((k + 1) * 100) + s)
      done
    in
    let reader j () =
      for _ = 1 to 2 do
        ignore (rec_.Composite.Snapshot.rscan ~reader:j)
      done
    in
    let (_ : Sim.stats) =
      Sim.run env ~policy:(Schedule.Random seed)
        [| writer 0; writer 1; reader 0; reader 1 |]
    in
    if
      not
        (History.Shrinking.conditions_hold ~equal:Int.equal
           (Composite.Snapshot.history rec_))
    then incr flagged
  done;
  Printf.printf
    "verification over the composed substrate: %d/%d schedules flagged \
     (expected 0)\n"
    !flagged runs

(* ------------------------------------------------------------------ *)
(* E11                                                                  *)
(* ------------------------------------------------------------------ *)

let e11 () =
  section
    "E11: halting-failure resilience (Section 1: a halted process cannot \
     block the others)";
  let t =
    Workload.Table.create
      ~header:
        [
          "C"; "R"; "crash scenarios"; "survivor ops"; "survivors blocked";
          "violations";
        ]
  in
  List.iter
    (fun (c, r, mcp, seed) ->
      let rep =
        Workload.Resilience.run ~components:c ~readers:r ~max_crash_point:mcp
          ~seed ()
      in
      Workload.Table.add_row t
        [
          string_of_int c; string_of_int r;
          string_of_int rep.Workload.Resilience.scenarios;
          string_of_int rep.Workload.Resilience.survivor_ops;
          string_of_int rep.Workload.Resilience.blocked;
          string_of_int rep.Workload.Resilience.not_linearizable;
        ])
    [ (2, 2, 12, 1); (3, 2, 20, 50); (4, 1, 30, 7) ];
  Workload.Table.print t

(* ------------------------------------------------------------------ *)
(* E12                                                                  *)
(* ------------------------------------------------------------------ *)

let e12 () =
  section
    "E12: ablation — removing each mechanism of Figure 3 (mutation testing)";
  let t =
    Workload.Table.create
      ~header:[ "mutant"; "violating schedule found"; "schedules"; "first diagnostic" ]
  in
  List.iter
    (fun m ->
      let v = Composite.Mutants.hunt m in
      Workload.Table.add_row t
        [
          Composite.Mutants.name m;
          Workload.Table.cell_bool v.Composite.Mutants.caught;
          string_of_int v.Composite.Mutants.schedules_tried;
          (match v.Composite.Mutants.counterexample with
          | Some msg -> if String.length msg > 60 then String.sub msg 0 60 else msg
          | None -> "-");
        ])
    (Composite.Mutants.None_ :: Composite.Mutants.all);
  Workload.Table.print t;
  print_endline
    "(no-second-write survives: statement 7's publication rides on the next\n\
    \ statement 3, so it buys freshness, not safety — see lib/core/mutants.mli)"

(* ------------------------------------------------------------------ *)
(* E13                                                                  *)
(* ------------------------------------------------------------------ *)

let e13 ~jobs () =
  section
    "E13: chaos — crash/stall faults tolerated, memory faults caught \
     (failure-model boundary)";
  let report =
    Workload.Chaos.run ~jobs ~metrics:Record.metrics Workload.Chaos.default
  in
  let t =
    Workload.Table.create
      ~header:[ "impl"; "fault side"; "runs"; "flagged"; "stuck"; "faults fired" ]
  in
  let cfg = Workload.Chaos.default in
  List.iter
    (fun impl ->
      List.iter
        (fun (side, pred) ->
          let cells =
            List.filter
              (fun (c : Workload.Chaos.cell) ->
                c.cell_impl = impl && pred c.cell_profile)
              report.Workload.Chaos.cells
          in
          let sum f = List.fold_left (fun a c -> a + f c) 0 cells in
          Record.row "E13"
            [
              ("impl", Obs.Json.Str (Workload.Campaign.impl_name impl));
              ("fault_side", Obs.Json.Str side);
              ( "runs",
                Obs.Json.Int (sum (fun (c : Workload.Chaos.cell) -> c.runs)) );
              ( "flagged",
                Obs.Json.Int (sum (fun (c : Workload.Chaos.cell) -> c.flagged))
              );
              ( "stuck",
                Obs.Json.Int (sum (fun (c : Workload.Chaos.cell) -> c.stuck)) );
              ( "faults_fired",
                Obs.Json.Int
                  (sum (fun (c : Workload.Chaos.cell) -> c.faults_fired)) );
            ];
          Workload.Table.add_row t
            [
              Workload.Campaign.impl_name impl;
              side;
              string_of_int (sum (fun (c : Workload.Chaos.cell) -> c.runs));
              string_of_int (sum (fun (c : Workload.Chaos.cell) -> c.flagged));
              string_of_int (sum (fun (c : Workload.Chaos.cell) -> c.stuck));
              string_of_int
                (sum (fun (c : Workload.Chaos.cell) -> c.faults_fired));
            ])
        [
          ( "process (in-model)",
            fun p -> not (Workload.Chaos.faulty_memory p) );
          ("memory (out-of-model)", Workload.Chaos.faulty_memory);
        ])
    cfg.Workload.Chaos.impls;
  Workload.Table.print t;
  print_endline
    "(correct implementations: 0 flagged on the process side — the theorem;\n\
    \ every memory-fault profile is caught — the oracle.  Minimized replayable\n\
    \ counterexamples: composite-registers chaos)"

(* ------------------------------------------------------------------ *)
(* E14                                                                  *)
(* ------------------------------------------------------------------ *)

let e14 () =
  section
    "E14: hot-cell contention profile (anderson vs afek, C=4, R=2, traced run)";
  let profile_of impl =
    let open Csim in
    let env = Sim.create () in
    let mem = Memory.of_sim env in
    let init = Array.init 4 (fun k -> (k + 1) * 10) in
    let handle = Workload.Campaign.make_handle impl mem ~readers:2 ~init in
    let rec_ =
      Composite.Snapshot.record ~clock:(fun () -> Sim.now env) ~initial:init
        handle
    in
    let writer k () =
      for s = 1 to 2 do
        rec_.Composite.Snapshot.rupdate ~writer:k (((k + 1) * 1000) + s)
      done
    in
    let reader j () =
      for _ = 1 to 2 do
        ignore (rec_.Composite.Snapshot.rscan ~reader:j)
      done
    in
    let procs =
      Array.init 6 (fun i -> if i < 4 then writer i else reader (i - 4))
    in
    let (_ : Sim.stats) = Sim.run env ~policy:(Schedule.Random 1) procs in
    let p = Obs.Profile.of_env env in
    Obs.Profile.snapshot Record.metrics
      ~prefix:("e14." ^ Workload.Campaign.impl_name impl)
      env;
    p
  in
  List.iter
    (fun impl ->
      let name = Workload.Campaign.impl_name impl in
      let p = profile_of impl in
      Printf.printf "\n%s (top 8 of %d cells):\n" name (List.length p.Obs.Profile.rows);
      Format.printf "%a@?"
        Obs.Profile.pp
        { p with Obs.Profile.rows = Obs.Profile.top ~n:8 p };
      List.iteri
        (fun i r ->
          Record.row "E14"
            [
              ("impl", Obs.Json.Str name);
              ("rank", Obs.Json.Int (i + 1));
              ("cell", Obs.Json.Str r.Obs.Profile.cell);
              ("reads", Obs.Json.Int r.Obs.Profile.reads);
              ("writes", Obs.Json.Int r.Obs.Profile.writes);
              ("switch_adj", Obs.Json.Int r.Obs.Profile.switch_adj);
            ])
        (Obs.Profile.top ~n:8 p))
    [ Workload.Campaign.Impl_anderson; Workload.Campaign.Impl_afek ];
  print_endline
    "(for the recursive construction the inner registers dominate: every scan\n\
    \ at C=4 performs 2 scans of the C=3 register, 4 of C=2, 8 of the base —\n\
    \ so traffic concentrates on the deepest Y0 cells)"

(* ------------------------------------------------------------------ *)
(* E15                                                                  *)
(* ------------------------------------------------------------------ *)

let e15 () =
  section
    "E15: parallel verification engine — campaign scaling over domains and \
     the indexed Shrinking checker";
  (* (a) The same 400-schedule anderson campaign at increasing job
     counts.  The timings are machine-dependent; what is asserted is
     that the result record and the merged metrics registry are
     bit-identical to the sequential run at every job count. *)
  let cfg = { Workload.Campaign.default with schedules = 400 } in
  let run_at jobs =
    let m = Obs.Metrics.create () in
    let t0 = Unix.gettimeofday () in
    let r = Workload.Campaign.run ~jobs ~metrics:m cfg in
    (r, Obs.Json.to_string (Obs.Metrics.to_json m), Unix.gettimeofday () -. t0)
  in
  let base_r, base_m, base_t = run_at 1 in
  let t =
    Workload.Table.create
      ~header:[ "jobs"; "seconds"; "speedup vs jobs=1"; "identical result+metrics" ]
  in
  List.iter
    (fun jobs ->
      let r, m, dt =
        if jobs = 1 then (base_r, base_m, base_t) else run_at jobs
      in
      let identical = r = base_r && String.equal m base_m in
      Record.row "E15"
        [
          ("kind", Obs.Json.Str "campaign_scaling");
          ("jobs", Obs.Json.Int jobs);
          ("schedules", Obs.Json.Int cfg.Workload.Campaign.schedules);
          ("seconds", Obs.Json.Float dt);
          ("speedup", Obs.Json.Float (base_t /. dt));
          ("identical", Obs.Json.Bool identical);
        ];
      Workload.Table.add_row t
        [
          string_of_int jobs;
          Workload.Table.cell_float ~decimals:3 dt;
          Workload.Table.cell_float ~decimals:2 (base_t /. dt);
          Workload.Table.cell_bool identical;
        ])
    [ 1; 2; 4; 8 ];
  Workload.Table.print t;
  Printf.printf
    "(400-schedule anderson campaign; host reports %d usable core(s) — \
     speedup needs a multicore host, identity must hold everywhere)\n"
    (Domain.recommended_domain_count ());
  (* (b) The indexed checker against the naive transcription, on one
     large clean history (the case the per-component indexes target). *)
  let open Csim in
  let env = Sim.create ~trace:false () in
  let mem = Memory.of_sim env in
  let components = 4 and readers = 3 in
  let init = Array.init components (fun k -> (k + 1) * 10) in
  let handle =
    Workload.Campaign.make_handle Workload.Campaign.Impl_anderson mem ~readers
      ~init
  in
  let rec_ =
    Composite.Snapshot.record ~clock:(fun () -> Sim.now env) ~initial:init
      handle
  in
  let writer k () =
    for s = 1 to 40 do
      rec_.Composite.Snapshot.rupdate ~writer:k (((k + 1) * 1000) + s)
    done
  in
  let reader j () =
    for _ = 1 to 30 do
      ignore (rec_.Composite.Snapshot.rscan ~reader:j)
    done
  in
  let procs =
    Array.init (components + readers) (fun i ->
        if i < components then writer i else reader (i - components))
  in
  let (_ : Sim.stats) =
    Sim.run env ~policy:(Schedule.Random 42) ~max_steps:10_000_000 procs
  in
  let h = Composite.Snapshot.history rec_ in
  let reps = 20 in
  let time f =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      ignore (f ())
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int reps
  in
  let indexed = time (fun () -> History.Shrinking.check ~equal:Int.equal h) in
  let naive =
    time (fun () -> History.Shrinking.check_naive ~equal:Int.equal h)
  in
  let agree =
    History.Shrinking.check ~equal:Int.equal h
    = History.Shrinking.check_naive ~equal:Int.equal h
  in
  Record.row "E15"
    [
      ("kind", Obs.Json.Str "checker_speedup");
      ("history_ops", Obs.Json.Int (History.Snapshot_history.size h));
      ("reps", Obs.Json.Int reps);
      ("indexed_seconds", Obs.Json.Float indexed);
      ("naive_seconds", Obs.Json.Float naive);
      ("speedup", Obs.Json.Float (naive /. indexed));
      ("identical", Obs.Json.Bool agree);
    ];
  Printf.printf
    "\nindexed Shrinking checker, %d-operation history (C=%d, R=%d): %.3f ms \
     vs %.3f ms naive — %.1fx, identical violation lists: %b\n"
    (History.Snapshot_history.size h)
    components readers (indexed *. 1e3) (naive *. 1e3) (naive /. indexed)
    agree

(* ------------------------------------------------------------------ *)
(* E16                                                                  *)
(* ------------------------------------------------------------------ *)

(* Message complexity of the ABD network backend.  Solo register
   operations meet the two-round bound exactly (write = 2n messages,
   read = 4n); composite operations decompose exactly into their
   register accesses, so  msgs = 4n*reads + 2n*writes  with the
   read/write split taken from the emulation's own counters.  The
   shared-memory access count for the same operation (Meter) is the
   comparison column: over message passing every one of those accesses
   costs 2n or 4n messages. *)
let e16 ~jobs () =
  section "E16: message complexity — ABD network backend vs shared memory";
  let t =
    Workload.Table.create
      ~header:[ "replicas"; "write msgs"; "= 2n"; "read msgs"; "= 4n" ]
  in
  List.iter
    (fun n ->
      let env = Net.Sim.create ~replicas:n ~seed:16 () in
      let abd = Net.Abd.create env in
      let mem = Net.Abd.memory abd in
      let cellr = ref None in
      let s_w =
        Net.Sim.run env
          [|
            (fun () ->
              let c = mem.Csim.Memory.make ~name:"x" ~bits:64 0 in
              cellr := Some c;
              c.Csim.Memory.write 1);
          |]
      in
      let s_r =
        Net.Sim.run env
          [| (fun () -> ignore ((Option.get !cellr).Csim.Memory.read ())) |]
      in
      assert (s_w.Net.Sim.sent = 2 * n);
      assert (s_r.Net.Sim.sent = 4 * n);
      Workload.Table.add_row t
        [
          string_of_int n;
          string_of_int s_w.Net.Sim.sent;
          Workload.Table.cell_bool (s_w.Net.Sim.sent = 2 * n);
          string_of_int s_r.Net.Sim.sent;
          Workload.Table.cell_bool (s_r.Net.Sim.sent = 4 * n);
        ];
      Record.row "E16"
        [
          ("kind", Obs.Json.Str "solo_register");
          ("replicas", Obs.Json.Int n);
          ("write_msgs", Obs.Json.Int s_w.Net.Sim.sent);
          ("read_msgs", Obs.Json.Int s_r.Net.Sim.sent);
          ( "matches_bound",
            Obs.Json.Bool (s_w.Net.Sim.sent = 2 * n && s_r.Net.Sim.sent = 4 * n)
          );
        ])
    [ 3; 5; 7 ];
  Workload.Table.print t;
  (* Composite operations over the net backend, n = 3. *)
  let n = 3 in
  let t2 =
    Workload.Table.create
      ~header:
        [
          "impl"; "C"; "R"; "op"; "shm accesses"; "reg reads"; "reg writes";
          "net msgs"; "= 4nR+2nW";
        ]
  in
  List.iter
    (fun (impl, c, r) ->
      let env = Net.Sim.create ~replicas:n ~seed:16 () in
      let abd = Net.Abd.create env in
      let mem = Net.Abd.memory abd in
      let init = Array.init c (fun k -> k) in
      let handle =
        match impl with
        | Workload.Campaign.Impl_anderson ->
          Composite.Anderson.handle
            (Composite.Anderson.create mem ~readers:r ~bits_per_value:64 ~init)
        | _ -> Composite.Afek.create mem ~bits_per_value:64 ~init
      in
      (* Warm as Meter does: one Write per component. *)
      let (_ : Net.Sim.stats) =
        Net.Sim.run env
          [|
            (fun () ->
              for k = 0 to c - 1 do
                ignore (handle.Composite.Snapshot.update ~writer:k (100 + k))
              done);
          |]
      in
      let measure op f =
        let a = Net.Abd.stats abd in
        let reads0 = a.Net.Abd.reads and writes0 = a.Net.Abd.writes in
        let s = Net.Sim.run env [| f |] in
        let reads = a.Net.Abd.reads - reads0
        and writes = a.Net.Abd.writes - writes0 in
        let predicted = (4 * n * reads) + (2 * n * writes) in
        let shm =
          match op with
          | "scan" -> Workload.Meter.scan_cost impl ~c ~r
          | _ -> Workload.Meter.update_cost impl ~c ~r ~writer:0
        in
        assert (s.Net.Sim.sent = predicted);
        assert (reads + writes = shm);
        Workload.Table.add_row t2
          [
            Workload.Campaign.impl_name impl;
            string_of_int c;
            string_of_int r;
            op;
            string_of_int shm;
            string_of_int reads;
            string_of_int writes;
            string_of_int s.Net.Sim.sent;
            Workload.Table.cell_bool (s.Net.Sim.sent = predicted);
          ];
        Record.row "E16"
          [
            ("kind", Obs.Json.Str "composite_op");
            ("impl", Obs.Json.Str (Workload.Campaign.impl_name impl));
            ("replicas", Obs.Json.Int n);
            ("c", Obs.Json.Int c);
            ("r", Obs.Json.Int r);
            ("op", Obs.Json.Str op);
            ("shm_accesses", Obs.Json.Int shm);
            ("reg_reads", Obs.Json.Int reads);
            ("reg_writes", Obs.Json.Int writes);
            ("net_msgs", Obs.Json.Int s.Net.Sim.sent);
            ( "matches_decomposition",
              Obs.Json.Bool (s.Net.Sim.sent = predicted) );
          ]
      in
      measure "scan" (fun () ->
          ignore (handle.Composite.Snapshot.scan_items ~reader:0));
      measure "update" (fun () ->
          ignore (handle.Composite.Snapshot.update ~writer:0 4242)))
    [
      (Workload.Campaign.Impl_anderson, 2, 2);
      (Workload.Campaign.Impl_anderson, 3, 2);
      (Workload.Campaign.Impl_afek, 2, 2);
      (Workload.Campaign.Impl_afek, 3, 2);
    ];
  Workload.Table.print t2;
  (* The fault envelope, summarized: in-model network faults stay
     clean, the broken quorum is caught. *)
  let report =
    Workload.Netchaos.run ~jobs ~metrics:Record.metrics
      { Workload.Netchaos.default with minimize_budget = 800 }
  in
  let clean, broken =
    List.partition
      (fun (cell : Workload.Netchaos.cell) ->
        not (Workload.Netchaos.broken_quorum cell.cell_profile))
      report.Workload.Netchaos.cells
  in
  let sum f = List.fold_left (fun a c -> a + f c) 0 in
  let clean_flagged =
    sum (fun (c : Workload.Netchaos.cell) -> c.flagged) clean
  in
  let broken_flagged =
    sum (fun (c : Workload.Netchaos.cell) -> c.flagged) broken
  in
  Record.row "E16"
    [
      ("kind", Obs.Json.Str "fault_envelope");
      ( "clean_runs",
        Obs.Json.Int (sum (fun (c : Workload.Netchaos.cell) -> c.runs) clean)
      );
      ("clean_flagged", Obs.Json.Int clean_flagged);
      ( "broken_runs",
        Obs.Json.Int (sum (fun (c : Workload.Netchaos.cell) -> c.runs) broken)
      );
      ("broken_flagged", Obs.Json.Int broken_flagged);
      ("stuck", Obs.Json.Int report.Workload.Netchaos.total_stuck);
    ];
  Printf.printf
    "\nnet chaos: %d in-model-fault runs flagged %d (must be 0); broken \
     quorum flagged %d of %d (must be > 0); stuck %d\n"
    (sum (fun (c : Workload.Netchaos.cell) -> c.runs) clean)
    clean_flagged broken_flagged
    (sum (fun (c : Workload.Netchaos.cell) -> c.runs) broken)
    report.Workload.Netchaos.total_stuck;
  assert (clean_flagged = 0);
  assert (broken_flagged > 0);
  assert (report.Workload.Netchaos.total_stuck = 0)

(* ------------------------------------------------------------------ *)
(* E18                                                                  *)
(* ------------------------------------------------------------------ *)

(* Overhead of the Byzantine-tolerant register construction vs the
   plain SWSR cells it replaces, and the tolerance boundary asserted
   from both sides.  A counting wrapper around the simulator memory
   gives the exact base-register accesses per composite operation; the
   construction's closed-form costs per logical access —
   read (2f+1)(2R-1), write (2f+1)R over (R+R²)(2f+1) base cells —
   predict the blow-up. *)
let e18 ~jobs () =
  section "E18: Byzantine-tolerant construction — overhead and the tolerance \
           boundary";
  let t =
    Workload.Table.create
      ~header:[ "f"; "ports"; "replication"; "base regs"; "read cost";
                "write cost" ]
  in
  List.iter
    (fun (f, ports) ->
      let repl = Registers.Byzantine.replication ~f in
      let cells = Registers.Byzantine.base_registers ~f ~readers:ports in
      let rc = Registers.Byzantine.read_cost ~f ~readers:ports in
      let wc = Registers.Byzantine.write_cost ~f ~readers:ports in
      Workload.Table.add_row t
        [
          string_of_int f; string_of_int ports; string_of_int repl;
          string_of_int cells; string_of_int rc; string_of_int wc;
        ];
      Record.row "E18"
        [
          ("kind", Obs.Json.Str "construction_cost");
          ("f", Obs.Json.Int f);
          ("ports", Obs.Json.Int ports);
          ("replication", Obs.Json.Int repl);
          ("base_registers", Obs.Json.Int cells);
          ("read_cost", Obs.Json.Int rc);
          ("write_cost", Obs.Json.Int wc);
        ])
    [ (1, 4); (2, 4); (1, 6) ];
  Workload.Table.print t;
  (* Empirical base-register accesses per composite operation: plain
     simulator cells vs the construction at f = 1 and f = 2, same
     workload, counted at the base-memory seam. *)
  let counting (mem : Csim.Memory.t) =
    let reads = ref 0 and writes = ref 0 in
    let make ~name ~bits init =
      let c = mem.Csim.Memory.make ~name ~bits init in
      {
        Csim.Memory.read =
          (fun () ->
            incr reads;
            c.Csim.Memory.read ());
        write =
          (fun v ->
            incr writes;
            c.Csim.Memory.write v);
        peek = c.Csim.Memory.peek;
      }
    in
    ({ Csim.Memory.make }, reads, writes)
  in
  let c = 2 and r = 2 in
  let ports = c + r in
  let measure impl protection op =
    let env = Csim.Sim.create ~trace:false () in
    let counted, reads, writes = counting (Csim.Memory.of_sim env) in
    let mem =
      match protection with
      | None -> counted
      | Some f -> Registers.Byzantine.memory ~f ~readers:ports counted
    in
    let init = Array.init c (fun k -> k) in
    let handle =
      match impl with
      | Workload.Campaign.Impl_anderson ->
        Composite.Anderson.handle
          (Composite.Anderson.create mem ~readers:r ~bits_per_value:64 ~init)
      | _ -> Composite.Afek.create mem ~bits_per_value:64 ~init
    in
    (* Warm as Meter does: one Write per component. *)
    let (_ : Csim.Sim.stats) =
      Csim.Sim.run_solo env (fun () ->
          for k = 0 to c - 1 do
            ignore (handle.Composite.Snapshot.update ~writer:k (100 + k))
          done)
    in
    let r0 = !reads and w0 = !writes in
    let (_ : Csim.Sim.stats) =
      Csim.Sim.run_solo env (fun () ->
          match op with
          | "scan" -> ignore (handle.Composite.Snapshot.scan_items ~reader:0)
          | _ -> ignore (handle.Composite.Snapshot.update ~writer:0 4242))
    in
    (!reads - r0) + (!writes - w0)
  in
  let t2 =
    Workload.Table.create
      ~header:
        [ "impl"; "op"; "plain accesses"; "f=1 accesses"; "x"; "f=2 accesses";
          "x" ]
  in
  List.iter
    (fun (impl, op) ->
      let plain = measure impl None op in
      let f1 = measure impl (Some 1) op in
      let f2 = measure impl (Some 2) op in
      let factor a = float_of_int a /. float_of_int plain in
      Workload.Table.add_row t2
        [
          Workload.Campaign.impl_name impl;
          op;
          string_of_int plain;
          string_of_int f1;
          Printf.sprintf "%.1f" (factor f1);
          string_of_int f2;
          Printf.sprintf "%.1f" (factor f2);
        ];
      Record.row "E18"
        [
          ("kind", Obs.Json.Str "overhead");
          ("impl", Obs.Json.Str (Workload.Campaign.impl_name impl));
          ("c", Obs.Json.Int c);
          ("r", Obs.Json.Int r);
          ("op", Obs.Json.Str op);
          ("plain_accesses", Obs.Json.Int plain);
          ("f1_accesses", Obs.Json.Int f1);
          ("f1_factor", Obs.Json.Float (factor f1));
          ("f2_accesses", Obs.Json.Int f2);
          ("f2_factor", Obs.Json.Float (factor f2));
        ])
    [
      (Workload.Campaign.Impl_anderson, "scan");
      (Workload.Campaign.Impl_anderson, "update");
      (Workload.Campaign.Impl_afek, "scan");
      (Workload.Campaign.Impl_afek, "update");
    ];
  Workload.Table.print t2;
  (* The tolerance boundary, asserted from both sides: survive profiles
     (adversary within f) stay clean, break profiles (budget exceeded,
     or the unprotected stack) are caught. *)
  let report =
    Workload.Byzchaos.run ~jobs ~metrics:Record.metrics
      { Workload.Byzchaos.default with seeds = 2; minimize_budget = 400 }
  in
  let survive, break =
    List.partition
      (fun (cell : Workload.Byzchaos.cell) ->
        cell.cell_profile.Workload.Byzchaos.expect = Workload.Byzchaos.Survive)
      report.Workload.Byzchaos.cells
  in
  let sum f = List.fold_left (fun a cell -> a + f cell) 0 in
  let survive_flagged =
    sum (fun (cell : Workload.Byzchaos.cell) -> cell.flagged) survive
  in
  let break_flagged =
    sum (fun (cell : Workload.Byzchaos.cell) -> cell.flagged) break
  in
  Record.row "E18"
    [
      ("kind", Obs.Json.Str "tolerance_boundary");
      ( "survive_runs",
        Obs.Json.Int (sum (fun (cell : Workload.Byzchaos.cell) -> cell.runs)
                        survive) );
      ("survive_flagged", Obs.Json.Int survive_flagged);
      ( "break_runs",
        Obs.Json.Int (sum (fun (cell : Workload.Byzchaos.cell) -> cell.runs)
                        break) );
      ("break_flagged", Obs.Json.Int break_flagged);
      ("stuck", Obs.Json.Int report.Workload.Byzchaos.total_stuck);
      ("boundary_holds", Obs.Json.Bool report.Workload.Byzchaos.boundary_holds);
    ];
  Printf.printf
    "\nbyz chaos: %d within-tolerance runs flagged %d (must be 0); beyond \
     tolerance flagged %d of %d (must be > 0); boundary %s\n"
    (sum (fun (cell : Workload.Byzchaos.cell) -> cell.runs) survive)
    survive_flagged break_flagged
    (sum (fun (cell : Workload.Byzchaos.cell) -> cell.runs) break)
    (if report.Workload.Byzchaos.boundary_holds then "holds" else "VIOLATED");
  assert (survive_flagged = 0);
  assert (break_flagged > 0);
  assert (report.Workload.Byzchaos.total_stuck = 0);
  assert report.Workload.Byzchaos.boundary_holds

(* ------------------------------------------------------------------ *)
(* E7 / E8: wall-clock (Bechamel + domain throughput)                   *)
(* ------------------------------------------------------------------ *)

let ns_per_run results name =
  match Hashtbl.find_opt results name with
  | None -> nan
  | Some ols -> (
    match Bechamel.Analyze.OLS.estimates ols with
    | Some [ est ] -> est
    | Some _ | None -> nan)

let run_bechamel tests =
  let open Bechamel in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"" tests) in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  match Analyze.merge ols instances results with
  | tbl -> Hashtbl.find tbl "monotonic-clock"

let bech_test name f =
  Bechamel.Test.make ~name (Bechamel.Staged.stage f)

let e7 () =
  section "E7: wall-clock operation latency (Atomic.t registers, this machine)";
  let c = 3 in
  let init = Array.make c 0 in
  let anderson = Composite.Multicore.anderson ~readers:1 ~init in
  let afek = Composite.Multicore.afek ~init in
  let locked = Composite.Multicore.locked ~readers:1 ~init in
  let unsafe = Composite.Multicore.unsafe_collect ~init in
  let mk_pair label handle =
    [
      bech_test (label ^ "/scan") (fun () ->
          ignore (handle.Composite.Snapshot.scan_items ~reader:0));
      bech_test (label ^ "/update") (fun () ->
          ignore (handle.Composite.Snapshot.update ~writer:0 42));
    ]
  in
  let tests =
    List.concat
      [
        mk_pair "anderson" anderson; mk_pair "afek" afek; mk_pair "locked" locked;
        mk_pair "unsafe-collect" unsafe;
      ]
  in
  let results = run_bechamel tests in
  let t = Workload.Table.create ~header:[ "implementation"; "op"; "ns/op" ] in
  List.iter
    (fun (impl, op) ->
      Workload.Table.add_row t
        [
          impl; op;
          Workload.Table.cell_float ~decimals:1
            (ns_per_run results (Printf.sprintf "/%s/%s" impl op));
        ])
    [
      ("anderson", "scan"); ("anderson", "update"); ("afek", "scan");
      ("afek", "update"); ("locked", "scan"); ("locked", "update");
      ("unsafe-collect", "scan"); ("unsafe-collect", "update");
    ];
  Workload.Table.print t;
  section "E7b: anderson scan latency vs C (wall-clock shadow of TR = O(2^C))";
  let sweep =
    List.map
      (fun c ->
        let h = Composite.Multicore.anderson ~readers:1 ~init:(Array.make c 0) in
        bech_test
          (Printf.sprintf "scanC%d" c)
          (fun () -> ignore (h.Composite.Snapshot.scan_items ~reader:0)))
      [ 1; 2; 4; 6; 8 ]
  in
  let results = run_bechamel sweep in
  let t = Workload.Table.create ~header:[ "C"; "ns/scan"; "TR(C)" ] in
  List.iter
    (fun c ->
      Workload.Table.add_row t
        [
          string_of_int c;
          Workload.Table.cell_float ~decimals:1
            (ns_per_run results (Printf.sprintf "/scanC%d" c));
          string_of_int (Composite.Complexity.tr ~c);
        ])
    [ 1; 2; 4; 6; 8 ];
  Workload.Table.print t;
  section "E7c: domain throughput under contention (wait-free vs blocking)";
  let throughput make =
    let handle = make () in
    let stop = Atomic.make false in
    let counts = Array.init 3 (fun _ -> Atomic.make 0) in
    let writer k =
      Domain.spawn (fun () ->
          while not (Atomic.get stop) do
            ignore (handle.Composite.Snapshot.update ~writer:k 1);
            Atomic.incr counts.(k)
          done)
    in
    let writers = List.init 3 writer in
    let reader_count = Atomic.make 0 in
    let reader =
      Domain.spawn (fun () ->
          while not (Atomic.get stop) do
            ignore (handle.Composite.Snapshot.scan_items ~reader:0);
            Atomic.incr reader_count
          done)
    in
    Unix.sleepf 0.3;
    Atomic.set stop true;
    List.iter Domain.join (reader :: writers);
    let w = Array.fold_left (fun acc c -> acc + Atomic.get c) 0 counts in
    ( float_of_int w /. 0.3 /. 1e3,
      float_of_int (Atomic.get reader_count) /. 0.3 /. 1e3 )
  in
  let t =
    Workload.Table.create
      ~header:[ "implementation"; "updates/ms (3 writers)"; "scans/ms (1 reader)" ]
  in
  List.iter
    (fun (name, make) ->
      let w, r = throughput make in
      Workload.Table.add_row t
        [
          name;
          Workload.Table.cell_float ~decimals:1 w;
          Workload.Table.cell_float ~decimals:1 r;
        ])
    [
      ("anderson", fun () -> Composite.Multicore.anderson ~readers:1 ~init:(Array.make 3 0));
      ("afek", fun () -> Composite.Multicore.afek ~init:(Array.make 3 0));
      ("locked", fun () -> Composite.Multicore.locked ~readers:1 ~init:(Array.make 3 0));
    ];
  Workload.Table.print t;
  Printf.printf
    "(host has %d core(s); on a single core the table shows per-op overhead \
     rather than parallel scaling)\n"
    (Domain.recommended_domain_count ())

let e8 () =
  section "E8: PRMW wait-free counter vs mutex counter (wall-clock)";
  let factory =
    {
      Composite.Snapshot.make_sw =
        (fun ~readers ~init ->
          ignore readers;
          Composite.Multicore.afek ~init);
    }
  in
  let counter = Prmw.counter factory ~processes:2 ~readers:1 in
  let mutex = Mutex.create () in
  let mcount = ref 0 in
  let tests =
    [
      bech_test "prmw/incr" (fun () -> Prmw.incr counter ~proc:0);
      bech_test "prmw/get" (fun () -> ignore (Prmw.get counter ~reader:0));
      bech_test "mutex/incr" (fun () ->
          Mutex.lock mutex;
          incr mcount;
          Mutex.unlock mutex);
      bech_test "mutex/get" (fun () ->
          Mutex.lock mutex;
          ignore !mcount;
          Mutex.unlock mutex);
    ]
  in
  let results = run_bechamel tests in
  let t = Workload.Table.create ~header:[ "object"; "op"; "ns/op" ] in
  List.iter
    (fun (o, op) ->
      Workload.Table.add_row t
        [
          o; op;
          Workload.Table.cell_float ~decimals:1
            (ns_per_run results (Printf.sprintf "/%s/%s" o op));
        ])
    [ ("prmw", "incr"); ("prmw", "get"); ("mutex", "incr"); ("mutex", "get") ];
  Workload.Table.print t;
  print_endline
    "(the mutex counter is faster per op but blocking: a stalled holder stops \
     all; the PRMW counter is wait-free)"

(* ------------------------------------------------------------------ *)
(* E17                                                                  *)
(* ------------------------------------------------------------------ *)

(* One serving-layer cell: C writer domains each run [rounds] bursts of
   [burst] writes — [burst - 1] asynchronous posts (the coalescing path)
   followed by one synchronous update whose end-to-end latency
   (mailbox -> applier -> publish -> ack) is sampled — while R reader
   domains scan at full speed until the writers finish.  Throughput and
   latency are wall-clock (shape only, like E7/E8); the coalesce and
   cache ratios come from the exact serve counters.  Runs even under
   --quick: each cell is a few hundred milliseconds and CI validates the
   E17 rows in BENCH.json. *)
let e17 () =
  section
    "E17: serving layer — throughput/latency vs shards, burst size, caching";
  let components = 4 and readers = 2 and rounds = 60 in
  let percentile sorted p =
    let n = Array.length sorted in
    if n = 0 then 0.
    else sorted.(min (n - 1) (int_of_float (p *. float_of_int n)))
  in
  let t =
    Workload.Table.create
      ~header:
        [
          "cell"; "writes/ms"; "scans/ms"; "update p50 ns"; "update p99 ns";
          "scan p50 ns"; "scan p99 ns"; "coalesced"; "cache hit"; "stale";
        ]
  in
  let run_cell (label, shards, burst, cache) =
    let srv =
      Serve.create ~cache ~shards ~readers ~init:(Array.make components 0) ()
    in
    Serve.start srv;
    let update_lat = Array.init components (fun _ -> ref []) in
    let post_lat = Array.init components (fun _ -> ref []) in
    let scan_lat = Array.init readers (fun _ -> ref []) in
    let writers_left = Atomic.make components in
    let t0 = Unix.gettimeofday () in
    let writer k =
      Domain.spawn (fun () ->
          for round = 1 to rounds do
            for i = 1 to burst - 1 do
              let s = Unix.gettimeofday () in
              Serve.post srv ~writer:k ((round * 1000) + i);
              post_lat.(k) :=
                ((Unix.gettimeofday () -. s) *. 1e9) :: !(post_lat.(k))
            done;
            let s = Unix.gettimeofday () in
            ignore (Serve.update srv ~writer:k (round * 1000));
            update_lat.(k) :=
              ((Unix.gettimeofday () -. s) *. 1e9) :: !(update_lat.(k))
          done;
          Atomic.decr writers_left)
    in
    let reader j =
      Domain.spawn (fun () ->
          while Atomic.get writers_left > 0 do
            let s = Unix.gettimeofday () in
            ignore (Serve.scan_items srv ~reader:j);
            scan_lat.(j) :=
              ((Unix.gettimeofday () -. s) *. 1e9) :: !(scan_lat.(j))
          done)
    in
    let domains = List.init components writer @ List.init readers reader in
    List.iter Domain.join domains;
    let elapsed = Unix.gettimeofday () -. t0 in
    Serve.shutdown srv;
    let st = Serve.stats srv in
    let sorted rs =
      let a =
        Array.concat (Array.to_list (Array.map (fun r -> Array.of_list !r) rs))
      in
      Array.sort compare a;
      a
    in
    let ul = sorted update_lat
    and sl = sorted scan_lat
    and pl = sorted post_lat in
    (* Feed the SLO layer: raw nanosecond samples into the registry, so
       [Obs.Slo.check Record.metrics] (E19) can grade the serve class. *)
    let observe_ns name a =
      let h = Obs.Metrics.histogram Record.metrics name in
      Array.iter (fun v -> Obs.Metrics.observe h (int_of_float v)) a
    in
    observe_ns "serve.update.latency_ns" ul;
    observe_ns "serve.scan.latency_ns" sl;
    observe_ns "serve.post.latency_ns" pl;
    let scans = Array.length sl in
    let ratio num den = if den = 0 then 0. else float_of_int num /. float_of_int den in
    let writes_per_ms = float_of_int st.Serve.posted /. elapsed /. 1e3 in
    let scans_per_ms = float_of_int scans /. elapsed /. 1e3 in
    let coalesce_ratio = ratio st.Serve.coalesced st.Serve.posted in
    let hit_ratio =
      ratio st.Serve.hits (st.Serve.hits + st.Serve.misses + st.Serve.stale)
    in
    let stale_ratio =
      ratio st.Serve.stale (st.Serve.hits + st.Serve.misses + st.Serve.stale)
    in
    Record.row "E17"
      [
        ("cell", Obs.Json.Str label);
        ("shards", Obs.Json.Int shards);
        ("burst", Obs.Json.Int burst);
        ("cache", Obs.Json.Bool cache);
        ("writes_per_ms", Obs.Json.Float writes_per_ms);
        ("scans_per_ms", Obs.Json.Float scans_per_ms);
        ("update_p10_ns", Obs.Json.Float (percentile ul 0.10));
        ("update_p50_ns", Obs.Json.Float (percentile ul 0.50));
        ("update_p99_ns", Obs.Json.Float (percentile ul 0.99));
        ("update_p999_ns", Obs.Json.Float (percentile ul 0.999));
        ("scan_p10_ns", Obs.Json.Float (percentile sl 0.10));
        ("scan_p50_ns", Obs.Json.Float (percentile sl 0.50));
        ("scan_p99_ns", Obs.Json.Float (percentile sl 0.99));
        ("scan_p999_ns", Obs.Json.Float (percentile sl 0.999));
        ("post_p50_ns", Obs.Json.Float (percentile pl 0.50));
        ("post_p999_ns", Obs.Json.Float (percentile pl 0.999));
        ("coalesce_ratio", Obs.Json.Float coalesce_ratio);
        ("cache_hit_ratio", Obs.Json.Float hit_ratio);
        ("cache_stale_ratio", Obs.Json.Float stale_ratio);
        ("posted", Obs.Json.Int st.Serve.posted);
        ("coalesced", Obs.Json.Int st.Serve.coalesced);
        ("applied", Obs.Json.Int st.Serve.applied);
        ("publishes", Obs.Json.Int st.Serve.publishes);
      ];
    Workload.Table.add_row t
      [
        label;
        Workload.Table.cell_float ~decimals:1 writes_per_ms;
        Workload.Table.cell_float ~decimals:1 scans_per_ms;
        Workload.Table.cell_float ~decimals:0 (percentile ul 0.50);
        Workload.Table.cell_float ~decimals:0 (percentile ul 0.99);
        Workload.Table.cell_float ~decimals:0 (percentile sl 0.50);
        Workload.Table.cell_float ~decimals:0 (percentile sl 0.99);
        Printf.sprintf "%.0f%%" (100. *. coalesce_ratio);
        Printf.sprintf "%.0f%%" (100. *. hit_ratio);
        Printf.sprintf "%.0f%%" (100. *. stale_ratio);
      ]
  in
  List.iter run_cell
    [
      ("S=1 burst=8", 1, 8, true);
      ("S=2 burst=8", 2, 8, true);
      ("S=4 burst=8", 4, 8, true);
      ("S=2 burst=1", 2, 1, true);
      ("S=2 burst=32", 2, 32, true);
      ("S=2 no-cache", 2, 8, false);
    ];
  Workload.Table.print t;
  Printf.printf
    "(C=%d writer domains x %d bursts, %d reader domains scanning \
     throughout; coalesce and cache ratios are exact counter values, \
     times are wall-clock shape only)\n"
    components rounds readers

(* ------------------------------------------------------------------ *)
(* E19                                                                  *)
(* ------------------------------------------------------------------ *)

(* The observability tier measured on itself.  Part one: the cost of
   causal tracing, as the same fixed net-chaos case re-run with tracing
   off / span collection only / full tracing (spans + event log).  The
   deterministic quantities (message counts, span counts, outcome) are
   recorded exactly — tracing must not change them, that is the
   metadata-only claim of [Net.Abd.create ~causal] — and only the
   wall-clock columns are shape.  Part two: the SLO verdict table,
   grading the latency histograms every campaign in this run booked
   into [Record.metrics] against [Obs.Slo.default_budgets]. *)
let e19 ~quick () =
  section "E19: observability — causal-tracing overhead and SLO budgets";
  let case =
    {
      Workload.Netchaos.impl = Workload.Campaign.Impl_anderson;
      prof =
        Workload.Netchaos.profile ~loss:0.05 ~crashes:[ (0, 40) ] "loss+crash";
      replicas = 3;
      components = 3;
      readers = 2;
      writes_per_writer = 3;
      scans_per_reader = 3;
      seed = 7;
    }
  in
  let reps = if quick then 10 else 40 in
  let t =
    Workload.Table.create
      ~header:
        [
          "tracing"; "runs"; "msgs/run"; "spans/run"; "unclosed"; "run us";
          "overhead";
        ]
  in
  let run_mode label make_causal log =
    let causal = ref None in
    let result = ref None in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      let c = make_causal () in
      causal := c;
      result := Some (Workload.Netchaos.run_once ?causal:c ~log case)
    done;
    let wall = Unix.gettimeofday () -. t0 in
    (label, Option.get !result, !causal, wall)
  in
  let modes =
    [
      run_mode "off" (fun () -> None) false;
      run_mode "spans" (fun () -> Some (Obs.Causal.create ())) false;
      run_mode "full" (fun () -> Some (Obs.Causal.create ())) true;
    ]
  in
  let base_wall =
    match modes with (_, _, _, w) :: _ -> w | [] -> assert false
  in
  let off_msgs =
    match modes with
    | (_, r, _, _) :: _ -> r.Workload.Netchaos.net.Net.Sim.sent
    | [] -> assert false
  in
  List.iter
    (fun (label, r, causal, wall) ->
      let spans, unclosed, mismatched =
        match causal with
        | None -> (0, 0, 0)
        | Some c ->
          ( Obs.Causal.span_count c,
            Obs.Causal.unclosed_count c,
            Obs.Causal.mismatched c )
      in
      let overhead = if base_wall > 0. then wall /. base_wall else 1. in
      (* Tracing is packet metadata only: the schedule, and with it
         every deterministic counter, must be bit-identical across the
         three modes. *)
      assert (r.Workload.Netchaos.net.Net.Sim.sent = off_msgs);
      assert (not (Workload.Chaos.outcome_failed r.Workload.Netchaos.outcome));
      Record.row "E19"
        [
          ("kind", Obs.Json.Str "tracing_overhead");
          ("tracing", Obs.Json.Str label);
          ("runs", Obs.Json.Int reps);
          ("msgs_per_run", Obs.Json.Int r.Workload.Netchaos.net.Net.Sim.sent);
          ( "lost_per_run",
            Obs.Json.Int r.Workload.Netchaos.net.Net.Sim.lost );
          ("spans_per_run", Obs.Json.Int spans);
          ("unclosed_spans", Obs.Json.Int unclosed);
          ("mismatched_spans", Obs.Json.Int mismatched);
          ( "clean",
            Obs.Json.Bool
              (not (Workload.Chaos.outcome_failed r.Workload.Netchaos.outcome))
          );
          ("wall_seconds", Obs.Json.Float wall);
          ("run_us_wall", Obs.Json.Float (wall /. float_of_int reps *. 1e6));
          ("overhead_ratio", Obs.Json.Float overhead);
        ];
      Workload.Table.add_row t
        [
          label;
          string_of_int reps;
          string_of_int r.Workload.Netchaos.net.Net.Sim.sent;
          string_of_int spans;
          string_of_int unclosed;
          Workload.Table.cell_float ~decimals:0
            (wall /. float_of_int reps *. 1e6);
          Printf.sprintf "%.2fx" overhead;
        ])
    modes;
  Workload.Table.print t;
  print_endline
    "(same recorded schedule in all three modes — tracing is packet \
     metadata only, so msgs/spans/outcome are exact; times are \
     wall-clock shape)";
  (* SLO verdicts over everything this run booked into the registry.
     The sim-backed classes are deterministic (logical-time
     percentiles); the serve class is wall-clock, so its observed value
     is recorded under a baseline-skipped field name. *)
  let verdicts = Obs.Slo.check Record.metrics in
  List.iter
    (fun (v : Obs.Slo.verdict) ->
      let b = v.Obs.Slo.budget in
      let wallclock = String.equal b.Obs.Slo.unit_ "ns" in
      (* "_ns" / "_wall"-suffixed names hit the baseline skip patterns;
         logical-time observations are gated exactly.  The serve scan
         count is also wall-clock-shaped (readers scan until the writers
         finish), so it gets the skipped name too. *)
      let observed_field =
        if wallclock then "observed_ns" else "observed_" ^ b.Obs.Slo.unit_
      in
      let count_field = if wallclock then "samples_wall" else "count" in
      Record.row "E19"
        ([
           ("kind", Obs.Json.Str "slo");
           ("op", Obs.Json.Str b.Obs.Slo.op);
           ("metric", Obs.Json.Str b.Obs.Slo.metric);
           ("pct", Obs.Json.Str (Obs.Slo.pct_label b.Obs.Slo.pct));
           ("limit", Obs.Json.Int b.Obs.Slo.limit);
           ("unit", Obs.Json.Str b.Obs.Slo.unit_);
         ]
        @ (match v.Obs.Slo.observed with
          | None -> []
          | Some x -> [ (observed_field, Obs.Json.Int x) ])
        @ [
            (count_field, Obs.Json.Int v.Obs.Slo.count);
            ("ok", Obs.Json.Bool v.Obs.Slo.ok);
          ]))
    verdicts;
  Format.printf "@.SLO budgets (p999 per op class):@.%a" Obs.Slo.pp verdicts;
  if not (Obs.Slo.all_ok verdicts) then
    print_endline "WARNING: SLO budget violated (see table above)"

(* ------------------------------------------------------------------ *)
(* E20                                                                  *)
(* ------------------------------------------------------------------ *)

(* The raw-speed campaign, as four before/after pairs on the serving
   hot loop.  Wall-clock numbers are machine-dependent (shape only);
   every row also carries the exact counters whose identities CI
   asserts from BENCH.json.

   - scan_sharing: 8 reader domains scanning an uncached service with
     combining on vs off at identical settings.  Caching is off in both
     legs so the comparison isolates the scan machinery itself: the off
     leg pays a full outer collect per request, the on leg mostly
     adopts the shared slot for the price of one version-cell collect.
   - batched_post: C-component writes as one post_batch (one install
     per shard) vs a loop of C posts (one exchange per component),
     drained in manual mode so the work measured is exactly the
     submission + drain path.
   - padded_atomic: contended increments on adjacent plain Atomic.t
     cells vs padded cells (Composite.Padded_atomic).  On a single-core
     host both legs share one cache at a time and the ratio is ~1x;
     the row records the measured ratio honestly either way.
   - afek_fast_path: serving throughput with the Afek outer (default)
     vs the Anderson oracle under forced outer collects, plus a
     deterministic manual-mode differential replay that must agree scan
     for scan (differential_ok). *)
let e20 ~quick () =
  section "E20: raw-speed campaign — scan-sharing, batched posts, padding, Afek";
  let t =
    Workload.Table.create
      ~header:[ "pair"; "before"; "after"; "speedup"; "evidence" ]
  in
  (* -- scan-sharing ------------------------------------------------ *)
  let readers = 8 and components = 8 and shards = 4 in
  let scan_ops = if quick then 3_000 else 10_000 in
  (* 8 reader domains race through [scan_ops] uncached scans each while
     this thread injects invalidations (post + manual drain) between
     short sleeps — manual mode, so no applier domain busy-spins and
     the readers own the cores.  A start barrier and a done counter
     keep domain spawn/join out of the timed window. *)
  let scan_leg ~combine =
    let srv =
      Serve.create ~combine ~cache:false ~shards ~readers
        ~init:(Array.make components 0) ()
    in
    let go = Atomic.make false and finished = Atomic.make 0 in
    let ds =
      List.init readers (fun j ->
          Domain.spawn (fun () ->
              while not (Atomic.get go) do
                Domain.cpu_relax ()
              done;
              for _ = 1 to scan_ops do
                ignore (Serve.scan_items srv ~reader:j)
              done;
              Atomic.incr finished))
    in
    let t0 = Unix.gettimeofday () in
    Atomic.set go true;
    let invalidations = ref 0 in
    while Atomic.get finished < readers do
      Serve.post srv ~writer:(!invalidations mod components) !invalidations;
      Serve.drain srv;
      incr invalidations;
      Unix.sleepf 0.0005
    done;
    let elapsed = Unix.gettimeofday () -. t0 in
    List.iter Domain.join ds;
    let st = Serve.stats srv in
    let scans_per_ms =
      float_of_int st.Serve.scans_requested /. elapsed /. 1e3
    in
    (scans_per_ms, !invalidations, st)
  in
  let off_per_ms, off_inv, off_st = scan_leg ~combine:false in
  let on_per_ms, on_inv, on_st = scan_leg ~combine:true in
  let identity st =
    st.Serve.scans_requested
    = st.Serve.scans_combined + st.Serve.scans_performed
    && st.Serve.full_scans = st.Serve.scans_performed
  in
  let scan_speedup = if off_per_ms = 0. then 0. else on_per_ms /. off_per_ms in
  let leg_row label combine per_ms invalidations st speedup =
    Record.row "E20"
      [
        ("kind", Obs.Json.Str "scan_sharing");
        ("cell", Obs.Json.Str label);
        ("combine", Obs.Json.Bool combine);
        ("readers", Obs.Json.Int readers);
        ("shards", Obs.Json.Int shards);
        ("scans_per_ms", Obs.Json.Float per_ms);
        ("speedup_vs_off", Obs.Json.Float speedup);
        ("invalidations", Obs.Json.Int invalidations);
        ("scans_requested", Obs.Json.Int st.Serve.scans_requested);
        ("scans_combined", Obs.Json.Int st.Serve.scans_combined);
        ("scans_performed", Obs.Json.Int st.Serve.scans_performed);
        ("full_scans", Obs.Json.Int st.Serve.full_scans);
        ("accounting_ok", Obs.Json.Bool (identity st));
      ]
  in
  leg_row "combine=off" false off_per_ms off_inv off_st 1.;
  leg_row "combine=on" true on_per_ms on_inv on_st scan_speedup;
  Workload.Table.add_row t
    [
      "scan-sharing (8 readers)";
      Printf.sprintf "%.1f scans/ms" off_per_ms;
      Printf.sprintf "%.1f scans/ms" on_per_ms;
      Printf.sprintf "%.1fx" scan_speedup;
      Printf.sprintf "%d of %d requests combined" on_st.Serve.scans_combined
        on_st.Serve.scans_requested;
    ];
  (* -- batched posts ----------------------------------------------- *)
  let bcomponents = 16 in
  let brounds = if quick then 5_000 else 20_000 in
  (* Submission + drain are timed per round (the payload list is the
     caller's in either world and is built outside the window): a
     C-component write is C mailbox exchanges on each side in the loop
     world, versus one batch-cell CAS per shard in plus one exchange
     out — the drain's read-before-exchange guard turns the loop
     world's C take-RMWs into C plain loads when a shard is fed purely
     through the batch cell. *)
  let batch_leg ~batched =
    let srv =
      Serve.create ~cache:false ~shards:2 ~readers:1
        ~init:(Array.make bcomponents 0) ()
    in
    let timed = ref 0. in
    for round = 1 to brounds do
      let writes =
        if batched then List.init bcomponents (fun k -> (k, (round * 10) + k))
        else []
      in
      let s = Unix.gettimeofday () in
      if batched then Serve.post_batch srv writes
      else
        for k = 0 to bcomponents - 1 do
          Serve.post srv ~writer:k ((round * 10) + k)
        done;
      Serve.drain srv;
      timed := !timed +. (Unix.gettimeofday () -. s)
    done;
    let st = Serve.stats srv in
    (float_of_int st.Serve.posted /. !timed /. 1e3, st)
  in
  let loop_per_ms, loop_st = batch_leg ~batched:false in
  let batch_per_ms, batch_st = batch_leg ~batched:true in
  let batch_speedup =
    if loop_per_ms = 0. then 0. else batch_per_ms /. loop_per_ms
  in
  let post_row label batched per_ms (st : Serve.stats) speedup =
    Record.row "E20"
      [
        ("kind", Obs.Json.Str "batched_post");
        ("cell", Obs.Json.Str label);
        ("batched", Obs.Json.Bool batched);
        ("posts_per_ms", Obs.Json.Float per_ms);
        ("speedup_vs_loop", Obs.Json.Float speedup);
        ("posted", Obs.Json.Int st.Serve.posted);
        ("applied", Obs.Json.Int st.Serve.applied);
        ("coalesced", Obs.Json.Int st.Serve.coalesced);
        ("batch_installs", Obs.Json.Int st.Serve.batch_installs);
        ( "accounting_ok",
          Obs.Json.Bool
            (st.Serve.posted = st.Serve.applied + st.Serve.coalesced
            && st.Serve.pending = 0) );
      ]
  in
  post_row "loop-of-posts" false loop_per_ms loop_st 1.;
  post_row "post_batch" true batch_per_ms batch_st batch_speedup;
  Workload.Table.add_row t
    [
      Printf.sprintf "batched post (C=%d, S=2)" bcomponents;
      Printf.sprintf "%.0f posts/ms" loop_per_ms;
      Printf.sprintf "%.0f posts/ms" batch_per_ms;
      Printf.sprintf "%.1fx" batch_speedup;
      Printf.sprintf "%d installs for %d posts" batch_st.Serve.batch_installs
        batch_st.Serve.posted;
    ];
  (* -- padded atomics ---------------------------------------------- *)
  let pdomains = 4 and pincs = if quick then 500_000 else 2_000_000 in
  (* Start barrier + done counter, as above: what is timed is the
     increment storm, not domain spawn/join. *)
  let contended_leg make_cells =
    let cells = make_cells pdomains in
    let go = Atomic.make false and finished = Atomic.make 0 in
    let ds =
      List.init pdomains (fun d ->
          Domain.spawn (fun () ->
              while not (Atomic.get go) do
                Domain.cpu_relax ()
              done;
              for _ = 1 to pincs do
                Atomic.incr cells.(d)
              done;
              Atomic.incr finished))
    in
    let t0 = Unix.gettimeofday () in
    Atomic.set go true;
    while Atomic.get finished < pdomains do
      Unix.sleepf 0.0002
    done;
    let elapsed = Unix.gettimeofday () -. t0 in
    List.iter Domain.join ds;
    Array.iter (fun c -> assert (Atomic.get c = pincs)) cells;
    float_of_int (pdomains * pincs) /. elapsed /. 1e3
  in
  (* Best of three: on a small host the run time is ~a few scheduler
     quanta, so single runs swing wildly; the best run is the one least
     polluted by preemption. *)
  let best_of n leg =
    let best = ref 0. in
    for _ = 1 to n do
      best := Float.max !best (leg ())
    done;
    !best
  in
  (* One untimed warmup leg: the process's first wave of domain spawns
     pays one-off runtime costs that would bias whichever leg ran
     first. *)
  let (_ : float) =
    contended_leg (fun n -> Array.init n (fun _ -> Atomic.make 0))
  in
  let plain_per_ms =
    best_of 5 (fun () ->
        contended_leg (fun n -> Array.init n (fun _ -> Atomic.make 0)))
  in
  let padded_per_ms =
    best_of 5 (fun () -> contended_leg (fun n -> Composite.Padded_atomic.array n 0))
  in
  let pad_speedup =
    if plain_per_ms = 0. then 0. else padded_per_ms /. plain_per_ms
  in
  let pad_row label padded per_ms speedup =
    Record.row "E20"
      [
        ("kind", Obs.Json.Str "padded_atomic");
        ("cell", Obs.Json.Str label);
        ("padded", Obs.Json.Bool padded);
        ("domains", Obs.Json.Int pdomains);
        ("incs_per_ms", Obs.Json.Float per_ms);
        ("speedup_vs_plain", Obs.Json.Float speedup);
        ( "cell_bytes",
          Obs.Json.Int
            (8
            * Composite.Padded_atomic.size_words
                (if padded then Composite.Padded_atomic.make 0
                 else Atomic.make 0)) );
      ]
  in
  pad_row "plain adjacent" false plain_per_ms 1.;
  pad_row "padded" true padded_per_ms pad_speedup;
  Workload.Table.add_row t
    [
      Printf.sprintf "padded atomics (%d domains)" pdomains;
      Printf.sprintf "%.0f incs/ms" plain_per_ms;
      Printf.sprintf "%.0f incs/ms" padded_per_ms;
      Printf.sprintf "%.2fx" pad_speedup;
      "needs >= 2 cores to show false sharing";
    ];
  (* -- Afek fast path ---------------------------------------------- *)
  let arounds = if quick then 4_000 else 15_000 in
  (* Forced outer collects, single-threaded so the only variable is the
     outer construction: every scan is a full collect (no cache, no
     combining) and every round moves the register first, at S = 4
     where E5 puts Anderson's exponential scan well above Afek's
     polynomial one. *)
  let outer_leg outer =
    let srv =
      Serve.create ~outer ~cache:false ~combine:false ~shards ~readers:1
        ~init:(Array.make components 0) ()
    in
    let t0 = Unix.gettimeofday () in
    for round = 1 to arounds do
      Serve.post srv ~writer:(round mod components) round;
      Serve.drain srv;
      ignore (Serve.scan_items srv ~reader:0)
    done;
    let elapsed = Unix.gettimeofday () -. t0 in
    let st = Serve.stats srv in
    (float_of_int st.Serve.full_scans /. elapsed /. 1e3, st)
  in
  let anderson_per_ms, _ = outer_leg Serve.Outer_anderson in
  let afek_per_ms, _ = outer_leg Serve.Outer_afek in
  let afek_speedup =
    if anderson_per_ms = 0. then 0. else afek_per_ms /. anderson_per_ms
  in
  (* Deterministic manual-mode differential replay: the Anderson oracle
     and the Afek fast path must agree scan for scan. *)
  let differential_ok =
    let lcg = ref 98765 in
    let rand n =
      lcg := ((!lcg * 1103515245) + 12347) land 0x3FFFFFFF;
      !lcg mod n
    in
    let init = Array.init components (fun k -> k) in
    let mk outer = Serve.create ~outer ~shards ~readers:1 ~init () in
    let a = mk Serve.Outer_anderson and f = mk Serve.Outer_afek in
    let ok = ref true in
    for _ = 1 to 300 do
      match rand 4 with
      | 0 ->
        let k = rand components and v = rand 1000 in
        Serve.post a ~writer:k v;
        Serve.post f ~writer:k v
      | 1 ->
        let ws =
          List.init (1 + rand components) (fun _ ->
              (rand components, rand 1000))
        in
        Serve.post_batch a ws;
        Serve.post_batch f ws
      | 2 ->
        Serve.drain a;
        Serve.drain f
      | _ ->
        if Serve.scan a ~reader:0 <> Serve.scan f ~reader:0 then ok := false
    done;
    !ok
  in
  let outer_row label outer per_ms speedup =
    Record.row "E20"
      [
        ("kind", Obs.Json.Str "afek_fast_path");
        ("cell", Obs.Json.Str label);
        ("outer", Obs.Json.Str (Serve.outer_impl_name outer));
        ("outer_scans_per_ms", Obs.Json.Float per_ms);
        ("speedup_vs_anderson", Obs.Json.Float speedup);
        ("differential_ok", Obs.Json.Bool differential_ok);
      ]
  in
  outer_row "anderson oracle" Serve.Outer_anderson anderson_per_ms 1.;
  outer_row "afek fast path" Serve.Outer_afek afek_per_ms afek_speedup;
  Workload.Table.add_row t
    [
      "Afek outer (forced collects)";
      Printf.sprintf "%.1f collects/ms" anderson_per_ms;
      Printf.sprintf "%.1f collects/ms" afek_per_ms;
      Printf.sprintf "%.1fx" afek_speedup;
      (if differential_ok then "differential replay agrees"
       else "DIFFERENTIAL MISMATCH");
    ];
  Workload.Table.print t;
  Printf.printf
    "(scan-sharing and Afek cells run cache-less so the outer path is what \
     is measured; padding needs a multi-core host to show; differential \
     replay is deterministic)\n";
  if not differential_ok then begin
    print_endline "ERROR: Afek fast path disagrees with the Anderson oracle";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* E21                                                                  *)
(* ------------------------------------------------------------------ *)

(* The network edge: real sockets in one process — the TCP front-end
   (effect-based accept loops on a worker-domain pool) over the sharded
   serving layer and the multicore Afek handle, driven by the open-loop
   generator (Poisson arrivals, Zipfian component skew, latency charged
   from the op's scheduled arrival so queueing behind a saturated
   server is not silently omitted).

   Wall-clock throughput and percentiles are machine-dependent (shape
   only; baseline-skipped field names).  What CI asserts exactly from
   the rows: every op accounted for (ops_done = ops requested), zero
   client-visible errors, zero stalled connections, zero server-side
   protocol/op/fiber errors, and the backend accounting identities at
   graceful shutdown (posted = applied + coalesced with pending = 0,
   scans_requested = scans_combined + scans_performed).

   Caveats, honestly: client and server share one host (the generator
   perturbs what it measures), and loopback TCP has none of a real
   network's latency distribution.  The sharded serving layer and the
   multicore handle serve concurrently; the simulator substrates would
   serialize every op under a global lock (see `serve-net`), so E21
   sticks to the two concurrent backends for its matrix. *)
let e21 ~quick () =
  section "E21: network edge — TCP front-end under open-loop load";
  let components = 8 and workers = 2 in
  let ops = if quick then 1_200 else 4_000 in
  let rate = 8_000. in
  let t =
    Workload.Table.create
      ~header:
        [
          "backend"; "shards"; "conns"; "ops"; "throughput";
          "scan p50/p999 us"; "write p999 us"; "clean";
        ]
  in
  let cell ~backend_name ~shards ~conns =
    let init = Array.init components (fun k -> (k + 1) * 10) in
    let backend =
      match backend_name with
      | "serve" -> Edge.Backend.of_serve ~shards ~workers ~init ()
      | name -> (
        match Workload.Backend.find name with
        | Ok b -> Workload.Edge_backends.of_registry ~workers ~init b
        | Error msg -> failwith msg)
    in
    let server =
      Edge.Server.start
        ~config:{ Edge.Server.workers; backlog = 64; grace = 1.0 }
        backend
    in
    let cfg =
      {
        Workload.Loadgen.default with
        Workload.Loadgen.connections = conns;
        clients = max 128 conns;
        ops;
        arrival = Workload.Loadgen.Open_loop rate;
        domains = 2;
      }
    in
    let m = Obs.Metrics.create () in
    let rep =
      Workload.Loadgen.run ~metrics:m ~port:(Edge.Server.port server)
        ~components cfg
    in
    let identities = Edge.Server.shutdown server in
    let st = Edge.Server.stats server in
    let accounting_ok = match identities with Ok () -> true | Error _ -> false in
    let pct kind p =
      match Obs.Metrics.find_histogram m ("edge." ^ kind ^ ".latency_ns") with
      | None -> 0
      | Some h -> if Obs.Metrics.count h = 0 then 0 else Obs.Metrics.percentile h p
    in
    (* Per-cell percentiles come from the cell's own registry; the merge
       below unions the histograms into the run-wide registry so the
       edge/* SLO classes and BENCH.json's metrics section see them. *)
    Obs.Metrics.merge ~into:Record.metrics m;
    let clean =
      rep.Workload.Loadgen.errors = 0
      && rep.Workload.Loadgen.stalled_conns = 0
      && st.Edge.Server.protocol_errors = 0
      && st.Edge.Server.op_errors = 0
      && st.Edge.Server.fiber_errors = 0
      && rep.Workload.Loadgen.ops_done = ops
      && accounting_ok
    in
    Record.row "E21"
      [
        ("backend", Obs.Json.Str backend_name);
        ("label", Obs.Json.Str backend.Edge.Backend.label);
        ("shards", Obs.Json.Int shards);
        ("connections", Obs.Json.Int conns);
        ("clients", Obs.Json.Int cfg.Workload.Loadgen.clients);
        ("workers", Obs.Json.Int workers);
        ("components", Obs.Json.Int components);
        ("arrival", Obs.Json.Str "open-loop");
        ("offered_per_sec", Obs.Json.Float rate);
        ("zipf_theta", Obs.Json.Float cfg.Workload.Loadgen.zipf_theta);
        ("ops_done", Obs.Json.Int rep.Workload.Loadgen.ops_done);
        ("errors", Obs.Json.Int rep.Workload.Loadgen.errors);
        ("stalled_connections", Obs.Json.Int rep.Workload.Loadgen.stalled_conns);
        ("protocol_errors", Obs.Json.Int st.Edge.Server.protocol_errors);
        ("op_errors", Obs.Json.Int st.Edge.Server.op_errors);
        ("fiber_errors", Obs.Json.Int st.Edge.Server.fiber_errors);
        ("throughput_per_sec", Obs.Json.Float rep.Workload.Loadgen.throughput_per_sec);
        ("elapsed_ns", Obs.Json.Int rep.Workload.Loadgen.elapsed_ns);
        ("scan_p50_ns", Obs.Json.Int (pct "scan" 50.));
        ("scan_p99_ns", Obs.Json.Int (pct "scan" 99.));
        ("scan_p999_ns", Obs.Json.Int (pct "scan" 99.9));
        ("write_p999_ns", Obs.Json.Int (pct "write" 99.9));
        ("post_p999_ns", Obs.Json.Int (pct "post" 99.9));
        ("accounting_ok", Obs.Json.Bool accounting_ok);
        ("clean", Obs.Json.Bool clean);
      ];
    Workload.Table.add_row t
      [
        backend_name;
        (if backend_name = "serve" then string_of_int shards else "-");
        string_of_int conns;
        string_of_int rep.Workload.Loadgen.ops_done;
        Printf.sprintf "%.0f/s" rep.Workload.Loadgen.throughput_per_sec;
        Printf.sprintf "%.0f/%.0f"
          (float_of_int (pct "scan" 50.) /. 1e3)
          (float_of_int (pct "scan" 99.9) /. 1e3);
        Printf.sprintf "%.0f" (float_of_int (pct "write" 99.9) /. 1e3);
        Workload.Table.cell_bool clean;
      ]
  in
  let shard_counts = if quick then [ 1; 2 ] else [ 1; 2; 4 ] in
  let conn_counts = if quick then [ 4; 16 ] else [ 4; 16; 32 ] in
  (* vs shard count at a fixed fan-in, then vs connection count at a
     fixed shard count, then the multicore handle for a second backend. *)
  List.iter (fun s -> cell ~backend_name:"serve" ~shards:s ~conns:16) shard_counts;
  List.iter
    (fun c -> if c <> 16 then cell ~backend_name:"serve" ~shards:2 ~conns:c)
    conn_counts;
  List.iter (fun c -> cell ~backend_name:"multicore" ~shards:0 ~conns:c) conn_counts;
  Workload.Table.print t;
  (* The edge/* SLO classes over the merged histograms: loose
     order-of-magnitude wall-clock guards (like the serve class),
     recorded with baseline-skipped observed fields. *)
  let edge_budgets =
    List.filter
      (fun (b : Obs.Slo.budget) ->
        String.length b.Obs.Slo.op > 5 && String.sub b.Obs.Slo.op 0 5 = "edge/")
      Obs.Slo.default_budgets
  in
  let verdicts = Obs.Slo.check ~budgets:edge_budgets Record.metrics in
  List.iter
    (fun (v : Obs.Slo.verdict) ->
      let b = v.Obs.Slo.budget in
      Record.row "E21"
        ([
           ("kind", Obs.Json.Str "slo");
           ("op", Obs.Json.Str b.Obs.Slo.op);
           ("metric", Obs.Json.Str b.Obs.Slo.metric);
           ("pct", Obs.Json.Str (Obs.Slo.pct_label b.Obs.Slo.pct));
           ("limit", Obs.Json.Int b.Obs.Slo.limit);
           ("unit", Obs.Json.Str b.Obs.Slo.unit_);
         ]
        @ (match v.Obs.Slo.observed with
          | None -> []
          | Some x -> [ ("observed_ns", Obs.Json.Int x) ])
        @ [
            ("samples_wall", Obs.Json.Int v.Obs.Slo.count);
            ("ok_wall", Obs.Json.Str (if v.Obs.Slo.ok then "ok" else "violated"));
          ]))
    verdicts;
  Format.printf "@.SLO budgets (p999 per edge op class):@.%a" Obs.Slo.pp verdicts;
  print_endline
    "(single host: the generator shares the machine with the server it \
     measures; percentiles are loopback round trips, open loop, charged \
     from scheduled arrival)"

(* ------------------------------------------------------------------ *)
(* E22                                                                  *)
(* ------------------------------------------------------------------ *)

(* Elastic sharding: what an online reshard costs.  Two questions:
   how deep is the throughput dip while an epoch switch drains,
   migrates and republishes under live load (and does it recover), and
   how does the quiesce-migrate-publish cost scale with the shard
   count when there is no load at all.

   Wall-clock numbers (throughputs, dip/recovery ratios, migration
   nanoseconds) are machine-dependent and carried in baseline-skipped
   field names.  What CI asserts exactly from the rows: every cell's
   epoch count (one switch per dip cell, two per migration cell), the
   per-epoch accounting identities at quiescence, and [clean].  The
   correctness side of E22 — linearizability across the epoch
   boundary, mutant detection, ddmin replays — is the `reshard`
   subcommand of the main binary, exercised by the CI smoke legs. *)
let e22 ~quick () =
  section "E22: elastic sharding — reshard dip/recovery and migration cost";
  let components = 8 in
  let writers = 4 in
  let readers = 2 in
  let init = Array.init components (fun k -> (k + 1) * 10) in
  (* The per-epoch identities of Serve.epoch_stats, closed exactly at
     quiescence (same set Reshard_campaign asserts). *)
  let epochs_ok srv =
    let eps = Serve.epoch_stats srv in
    let last = eps.(Array.length eps - 1) in
    Array.for_all
      (fun (e : Serve.epoch_stats) ->
        e.Serve.e_posted + e.Serve.e_carried_in
        = e.Serve.e_applied + e.Serve.e_coalesced + e.Serve.e_carried_out
        && e.Serve.e_scans_requested + e.Serve.e_inflight_in
           = e.Serve.e_scans_combined + e.Serve.e_scans_performed
             + e.Serve.e_inflight_out)
      eps
    && last.Serve.e_carried_out = 0
    && last.Serve.e_inflight_out = 0
    && (Serve.stats srv).Serve.pending = 0
  in
  (* One closed-loop stint: [writers] domains each sync-writing its own
     components (SWMR preserved: writer domain w owns components
     congruent to w), [readers] domains scanning, all joined.  Returns
     achieved ops/sec. *)
  let stint srv ~per_writer ~per_reader =
    let t0 = Obs.Mono.now_ns () in
    let ws =
      List.init writers (fun w ->
          Domain.spawn (fun () ->
              for i = 1 to per_writer do
                let comp = w + (writers * (i mod (components / writers))) in
                ignore (Serve.update srv ~writer:comp ((1000 * w) + i) : int)
              done))
    in
    let rs =
      List.init readers (fun r ->
          Domain.spawn (fun () ->
              for _ = 1 to per_reader do
                ignore
                  (Serve.scan_items srv ~reader:r
                    : int Composite.Item.t array)
              done))
    in
    List.iter Domain.join ws;
    List.iter Domain.join rs;
    let dt = max 1 (Obs.Mono.now_ns () - t0) in
    let ops = (writers * per_writer) + (readers * per_reader) in
    float_of_int ops *. 1e9 /. float_of_int dt
  in
  let per_writer = if quick then 2_000 else 8_000 in
  let per_reader = if quick then 1_000 else 4_000 in
  let dip_t =
    Workload.Table.create
      ~header:
        [
          "reshard"; "before ops/s"; "during ops/s"; "after ops/s";
          "dip"; "recovery"; "switch us"; "clean";
        ]
  in
  (* Dip/recovery: a quiet stint in the old layout, the same stint with
     one epoch switch landing mid-load, then the same stint again in
     the new layout. *)
  let dip_cell ~from_s ~to_s =
    let srv =
      Serve.create ~shards:from_s
        ~max_shards:(max from_s to_s)
        ~readers ~init ()
    in
    Serve.start srv;
    let before = stint srv ~per_writer ~per_reader in
    let baseline_applied = (Serve.stats srv).Serve.applied in
    let switch_ns = ref 0 in
    let resharder =
      Domain.spawn (fun () ->
          (* Fire roughly mid-stint: wait for a quarter of the new
             writes to land, then switch. *)
          let target = baseline_applied + (writers * per_writer / 4) in
          while (Serve.stats srv).Serve.applied < target do
            Domain.cpu_relax ()
          done;
          let t0 = Obs.Mono.now_ns () in
          Serve.reshard srv ~shards:to_s;
          switch_ns := Obs.Mono.now_ns () - t0)
    in
    let during = stint srv ~per_writer ~per_reader in
    Domain.join resharder;
    let after = stint srv ~per_writer ~per_reader in
    Serve.shutdown srv;
    let epoch = Serve.epoch srv in
    let accounting_ok = epochs_ok srv in
    let clean = accounting_ok && epoch = 1 in
    let dip = during /. before and recovery = after /. before in
    Record.row "E22"
      [
        ("kind", Obs.Json.Str "dip");
        ("shards_from", Obs.Json.Int from_s);
        ("shards_to", Obs.Json.Int to_s);
        ("components", Obs.Json.Int components);
        ("writers", Obs.Json.Int writers);
        ("readers", Obs.Json.Int readers);
        ("writes_per_phase", Obs.Json.Int (writers * per_writer));
        ("scans_per_phase", Obs.Json.Int (readers * per_reader));
        ("epoch", Obs.Json.Int epoch);
        ("before_per_sec", Obs.Json.Float before);
        ("during_per_sec", Obs.Json.Float during);
        ("after_per_sec", Obs.Json.Float after);
        ("dip_ratio", Obs.Json.Float dip);
        ("recovery_ratio", Obs.Json.Float recovery);
        ("switch_ns", Obs.Json.Int !switch_ns);
        ("accounting_ok", Obs.Json.Bool accounting_ok);
        ("clean", Obs.Json.Bool clean);
      ];
    Workload.Table.add_row dip_t
      [
        Printf.sprintf "S=%d->%d" from_s to_s;
        Printf.sprintf "%.0f" before;
        Printf.sprintf "%.0f" during;
        Printf.sprintf "%.0f" after;
        Printf.sprintf "%.2f" dip;
        Printf.sprintf "%.2f" recovery;
        Printf.sprintf "%.0f" (float_of_int !switch_ns /. 1e3);
        Workload.Table.cell_bool clean;
      ]
  in
  dip_cell ~from_s:2 ~to_s:4;
  dip_cell ~from_s:4 ~to_s:2;
  Workload.Table.print dip_t;
  (* Migration cost vs S, no load: populate every component, then time
     a grow (S -> 2S) and the shrink back.  The cost is dominated by
     the boundary snapshot and the republish of every shard view. *)
  let mig_t =
    Workload.Table.create
      ~header:[ "S"; "grow us (S->2S)"; "shrink us (2S->S)"; "clean" ]
  in
  let mig_cell s =
    let srv = Serve.create ~shards:s ~max_shards:(2 * s) ~readers ~init () in
    Serve.start srv;
    for k = 0 to components - 1 do
      ignore (Serve.update srv ~writer:k (k + 100) : int)
    done;
    let time f =
      let t0 = Obs.Mono.now_ns () in
      f ();
      Obs.Mono.now_ns () - t0
    in
    let grow_ns = time (fun () -> Serve.reshard srv ~shards:(2 * s)) in
    let shrink_ns = time (fun () -> Serve.reshard srv ~shards:s) in
    Serve.shutdown srv;
    let epoch = Serve.epoch srv in
    let accounting_ok = epochs_ok srv in
    let clean = accounting_ok && epoch = 2 in
    Record.row "E22"
      [
        ("kind", Obs.Json.Str "migration");
        ("shards_from", Obs.Json.Int s);
        ("shards_to", Obs.Json.Int (2 * s));
        ("components", Obs.Json.Int components);
        ("migrated_components", Obs.Json.Int components);
        ("epoch", Obs.Json.Int epoch);
        ("grow_ns", Obs.Json.Int grow_ns);
        ("shrink_ns", Obs.Json.Int shrink_ns);
        ("accounting_ok", Obs.Json.Bool accounting_ok);
        ("clean", Obs.Json.Bool clean);
      ];
    Workload.Table.add_row mig_t
      [
        string_of_int s;
        Printf.sprintf "%.0f" (float_of_int grow_ns /. 1e3);
        Printf.sprintf "%.0f" (float_of_int shrink_ns /. 1e3);
        Workload.Table.cell_bool clean;
      ]
  in
  List.iter mig_cell (if quick then [ 1; 2; 4 ] else [ 1; 2; 4; 8 ]);
  Workload.Table.print mig_t;
  print_endline
    "(dip/recovery and migration times are wall clock on a shared host — \
     shape only; the epoch counts and per-epoch accounting identities are \
     asserted exactly)"

(* ------------------------------------------------------------------ *)

let flag_value name =
  let v = ref None in
  Array.iteri
    (fun i a ->
      if a = name && i + 1 < Array.length Sys.argv then
        v := Some Sys.argv.(i + 1))
    Sys.argv;
  !v

let json_path () = flag_value "--json"

(* --- the perf-regression gate ------------------------------------- *)

let load_baseline path =
  match Obs.Baseline.load path with
  | Ok b -> b
  | Error e ->
    Printf.eprintf "bench: cannot load baseline %s: %s\n" path e;
    exit 2

let read_doc path =
  let ic = open_in_bin path in
  let s =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match Obs.Json.of_string s with
  | Ok j -> j
  | Error e ->
    Printf.eprintf "bench: cannot parse %s: %s\n" path e;
    exit 2

(* Diff [doc] against the baseline at [bpath]; exit status is the gate
   verdict (0 = within tolerance, 1 = regression). *)
let gate ~bpath ~label doc =
  let baseline = load_baseline bpath in
  let issues = Obs.Baseline.compare_doc baseline doc in
  let regressions = Obs.Baseline.regressions issues in
  let infos = List.length issues - List.length regressions in
  Printf.printf "\nbaseline gate: %s vs %s\n" label bpath;
  if issues = [] then print_endline "  no differences"
  else Format.printf "%a" Obs.Baseline.pp issues;
  Printf.printf "gate: %d regression(s), %d informational\n"
    (List.length regressions) infos;
  if regressions <> [] then begin
    print_endline "REGRESSION: current results fall outside baseline tolerance";
    exit 1
  end
  else print_endline "OK: within baseline tolerance"

let jobs_arg () =
  let jobs = ref None in
  Array.iteri
    (fun i a ->
      if a = "--jobs" && i + 1 < Array.length Sys.argv then
        jobs := int_of_string_opt Sys.argv.(i + 1))
    Sys.argv;
  match !jobs with
  | Some n when n >= 1 -> n
  | Some _ | None -> Exec.Pool.default_jobs ()

let () =
  let quick = Array.exists (( = ) "--quick") Sys.argv in
  let check = Array.exists (( = ) "--check") Sys.argv in
  let json = json_path () in
  let baseline = flag_value "--baseline" in
  let write_baseline = flag_value "--write-baseline" in
  let compare_path = flag_value "--compare" in
  let jobs = jobs_arg () in
  (match compare_path with
  | Some cur ->
    (* Offline gate: diff an existing BENCH.json against the baseline
       without running any experiment (the CI regression-gate leg). *)
    let bpath = Option.value baseline ~default:"BENCH_BASELINE.json" in
    gate ~bpath ~label:cur (read_doc cur);
    exit 0
  | None -> ());
  print_endline
    "composite registers: experiment harness (see EXPERIMENTS.md for the \
     paper-vs-measured record)";
  (* --only e20: just the raw-speed campaign (the CI perf smoke — fast,
     and its rows carry the exact counters the workflow asserts). *)
  (match flag_value "--only" with
  | Some "e20" | Some "E20" ->
    e20 ~quick ();
    (match json with
    | None -> ()
    | Some path ->
      Record.write ~path;
      Printf.printf "\nwrote machine-readable results to %s\n" path);
    exit 0
  | Some "e21" | Some "E21" ->
    (* The network-edge matrix alone (the CI serve-net bench leg). *)
    e21 ~quick ();
    (match json with
    | None -> ()
    | Some path ->
      Record.write ~path;
      Printf.printf "\nwrote machine-readable results to %s\n" path);
    exit 0
  | Some "e22" | Some "E22" ->
    (* The elastic-sharding cost matrix alone (the CI reshard bench leg). *)
    e22 ~quick ();
    (match json with
    | None -> ()
    | Some path ->
      Record.write ~path;
      Printf.printf "\nwrote machine-readable results to %s\n" path);
    exit 0
  | Some other ->
    Printf.eprintf "bench: unknown --only %s (supported: e20, e21, e22)\n"
      other;
    exit 2
  | None -> ());
  e1 ();
  e2 ();
  e3 ();
  e4 ();
  e5 ();
  e6 ~jobs ();
  e6c ();
  e9 ();
  e10 ();
  e11 ();
  e12 ();
  e13 ~jobs ();
  e14 ();
  e15 ();
  e16 ~jobs ();
  e17 ();
  e18 ~jobs ();
  e19 ~quick ();
  e20 ~quick ();
  e21 ~quick ();
  e22 ~quick ();
  if not quick then begin
    e7 ();
    e8 ()
  end
  else print_endline "\n(--quick: skipping wall-clock benches E7/E8)";
  (match json with
  | None -> ()
  | Some path ->
    Record.write ~path;
    Printf.printf "\nwrote machine-readable results to %s\n" path);
  (match write_baseline with
  | None -> ()
  | Some path ->
    Obs.Baseline.save path
      (Obs.Baseline.make ~tolerances:Obs.Baseline.default_tolerances
         (Record.doc ()));
    Printf.printf "\nwrote baseline (with tolerance specs) to %s\n" path);
  if check then
    let bpath = Option.value baseline ~default:"BENCH_BASELINE.json" in
    gate ~bpath ~label:"this run" (Record.doc ())

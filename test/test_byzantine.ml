(* The Byzantine failure model, end to end: actively lying base cells
   (lib/sim/faults.ml — equivocation, timestamp regression, budgeted
   adversaries), the f-tolerant SWMR register construction built over
   them (lib/registers/byzantine.ml), Byzantine replicas in the network
   backend (lib/net), and the survive/break campaign asserting the
   tolerance boundary from both sides (lib/workload/byzchaos.ml).

   The headline pinned pair: the construction masks exactly f lying
   base replicas per link, and is caught — returns a stale value the
   Shrinking oracle would flag — the moment f + 1 lie. *)

open Csim

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let inj ?(target = Faults.All) kind = { Faults.kind; target }

(* ------------------------------------------------------------------ *)
(* Lying cells over direct memory                                       *)
(* ------------------------------------------------------------------ *)

let test_equivocate () =
  (* The same cell, the same moment, two different answers — depending
     on who asks. *)
  let asker = ref 0 in
  let mem, counters =
    Faults.wrap ~seed:1
      ~who:(fun () -> !asker)
      [ inj (Faults.Equivocate { prob = 1.0 }) ]
      (Memory.direct ())
  in
  let c = mem.Memory.make ~name:"c" ~bits:8 0 in
  c.Memory.write 1;
  c.Memory.write 2;
  asker := 0;
  check int "even asker sees the truth" 2 (c.Memory.read ());
  asker := 1;
  check int "odd asker sees the superseded value" 1 (c.Memory.read ());
  check int "both lies counted" 2 counters.Faults.equivocated;
  check int "peek is never perturbed" 2 (c.Memory.peek ())

let test_regress () =
  let mem, counters =
    Faults.wrap ~seed:7
      [ inj (Faults.Regress { prob = 1.0 }) ]
      (Memory.direct ())
  in
  let c = mem.Memory.make ~name:"c" ~bits:8 0 in
  for v = 1 to 5 do
    c.Memory.write v
  done;
  (* Every read replays some superseded value — never the current. *)
  for _ = 1 to 10 do
    let r = c.Memory.read () in
    check bool "read regressed to a superseded value" true (r >= 0 && r < 5)
  done;
  check int "every read lied" 10 counters.Faults.regressed

let test_byz_budget_claims_f_cells () =
  (* A budget of 2: the first two matching cells are claimed — they
     answer their initial state and silently drop writes — and every
     later cell is honest. *)
  let mem, counters =
    Faults.wrap ~seed:1
      [ inj (Faults.Byzantine { f = 2; prob = 1.0 }) ]
      (Memory.direct ())
  in
  let a = mem.Memory.make ~name:"a" ~bits:8 10 in
  let b = mem.Memory.make ~name:"b" ~bits:8 20 in
  let c = mem.Memory.make ~name:"c" ~bits:8 30 in
  a.Memory.write 1;
  b.Memory.write 2;
  c.Memory.write 3;
  check int "budget claimed exactly f cells" 2 counters.Faults.byz_cells;
  check int "claimed cell lies with its initial state" 10 (a.Memory.read ());
  check int "second claimed cell likewise" 20 (b.Memory.read ());
  check int "the third cell is honest" 3 (c.Memory.read ());
  check int "drops counted" 2 counters.Faults.byz_drops;
  check bool "lies counted" true (counters.Faults.byz_lies >= 2)

let test_contains_target () =
  let mem, _ =
    Faults.wrap ~seed:1
      [ inj ~target:(Faults.Contains ".rep0") (Faults.Corrupt { prob = 1.0 }) ]
      (Memory.direct ())
  in
  let hit = mem.Memory.make ~name:"x.w2r1.rep0" ~bits:8 0 in
  let miss = mem.Memory.make ~name:"x.w2r1.rep1" ~bits:8 0 in
  hit.Memory.write 5;
  miss.Memory.write 5;
  check int "substring match corrupted" 0 (hit.Memory.read ());
  check int "non-match untouched" 5 (miss.Memory.read ())

let test_describe_names_the_stack () =
  let stack = Faults.stack (Memory.direct ()) in
  let stack =
    Faults.wrap_over ~seed:1
      [ inj (Faults.Equivocate { prob = 0.5 }) ]
      stack
  in
  let stack =
    Faults.wrap_over ~seed:2 [ inj (Faults.Byzantine { f = 1; prob = 1.0 }) ]
      stack
  in
  let contains ~sub s =
    let n = String.length sub and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
    n = 0 || go 0
  in
  let d = Faults.describe stack in
  check bool "describe names every layer, outermost first" true
    (contains ~sub:"byz:1:1" d
    && contains ~sub:"equivocate:0.5" d
    && contains ~sub:"over" d)

let test_spec_roundtrip_new_kinds () =
  List.iter
    (fun i ->
      match Faults.injection_of_string (Faults.injection_to_string i) with
      | Ok i' ->
        check bool
          ("round-trips: " ^ Faults.injection_to_string i)
          true (i = i')
      | Error e -> Alcotest.fail e)
    [
      inj (Faults.Equivocate { prob = 0.5 });
      inj (Faults.Regress { prob = 1.0 });
      inj (Faults.Byzantine { f = 2; prob = 0.75 });
      inj ~target:(Faults.Contains ".rep0") (Faults.Regress { prob = 1.0 });
      inj ~target:(Faults.Prefix "Y") (Faults.Byzantine { f = 1; prob = 1.0 });
    ];
  List.iter
    (fun s ->
      match Faults.injection_of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail ("accepted bad spec " ^ s))
    [ "byz:1"; "byz:x:1"; "equivocate:2.0"; "regress" ]

(* ------------------------------------------------------------------ *)
(* qcheck: any wrapper composition still honors the Memory contract     *)
(* ------------------------------------------------------------------ *)

(* Every fault kind answers with the initial value or some value that
   was actually written — so under ANY seeded composition of layers, a
   read must come from that set and must never raise. *)
let qcheck_wrapped_reads_are_plausible =
  let gen_kind =
    QCheck2.Gen.(
      oneof
        [
          map (fun p -> Faults.Lost_write { prob = p }) (float_bound_inclusive 0.9);
          map (fun a -> Faults.Stuck_at { after = a }) (int_range 1 5);
          map (fun p -> Faults.Stutter { prob = p }) (float_bound_inclusive 0.9);
          map (fun p -> Faults.Corrupt { prob = p }) (float_bound_inclusive 0.9);
          map (fun w -> Faults.Regular { window = w }) (int_range 1 3);
          map (fun p -> Faults.Equivocate { prob = p }) (float_bound_inclusive 1.0);
          map (fun p -> Faults.Regress { prob = p }) (float_bound_inclusive 1.0);
          map2
            (fun f p -> Faults.Byzantine { f; prob = p })
            (int_range 0 2) (float_bound_inclusive 1.0);
        ])
  in
  let gen =
    QCheck2.Gen.(
      triple
        (list_size (int_range 0 3) (list_size (int_range 1 3) gen_kind))
        (int_range 1 1000)
        (list_size (int_range 1 30) (int_range 0 2)))
  in
  QCheck2.Test.make ~count:300
    ~name:"any composition of fault layers keeps reads plausible" gen
    (fun (layers, seed, ops) ->
      let asker = ref 0 in
      let stack = Faults.stack (Memory.direct ()) in
      let stack, _ =
        List.fold_left
          (fun (st, s) kinds ->
            ( Faults.wrap_over ~seed:s
                ~who:(fun () -> !asker)
                (List.map (fun k -> inj k) kinds)
                st,
              s + 1 ))
          (stack, seed) layers
      in
      let mem = stack.Faults.mem in
      let init = 999 in
      let c = mem.Memory.make ~name:"q" ~bits:16 init in
      let written = Hashtbl.create 16 in
      Hashtbl.replace written init ();
      List.iteri
        (fun i op ->
          asker := i;
          match op with
          | 0 ->
            Hashtbl.replace written i ();
            c.Memory.write i
          | 1 -> ignore (c.Memory.peek ())
          | _ ->
            let r = c.Memory.read () in
            if not (Hashtbl.mem written r) then
              QCheck2.Test.fail_reportf
                "read %d was never written (init %d)" r init)
        ops;
      true)

(* ------------------------------------------------------------------ *)
(* The construction: masks exactly f, caught at f + 1                   *)
(* ------------------------------------------------------------------ *)

let make_reg ~f ~liars value =
  (* [liars] replicas of every link answer their initial state on every
     read (Corrupt at prob 1 glitches to init). *)
  let injections =
    List.init liars (fun k ->
        inj
          ~target:(Faults.Contains (Printf.sprintf ".rep%d" k))
          (Faults.Corrupt { prob = 1.0 }))
  in
  let mem, _ = Faults.wrap ~seed:1 injections (Memory.direct ()) in
  let reg = Registers.Byzantine.create mem ~name:"x" ~bits:64 ~f ~readers:2 0 in
  Registers.Byzantine.write reg value;
  reg

let test_masks_exactly_f () =
  (* f = 1, one lying replica per link: the vote still finds f + 1
     honest matching replicas, every reader sees the write. *)
  let reg = make_reg ~f:1 ~liars:1 42 in
  check int "reader 0 masked the liar" 42
    (Registers.Byzantine.read reg ~reader:0);
  check int "reader 1 masked the liar" 42
    (Registers.Byzantine.read reg ~reader:1);
  (* f = 2 masks two liars out of five replicas just the same. *)
  let reg2 = make_reg ~f:2 ~liars:2 77 in
  check int "f = 2 masks two liars" 77
    (Registers.Byzantine.read reg2 ~reader:0)

let test_caught_at_f_plus_1 () =
  (* The same adversary, one replica stronger: f + 1 of the 2f + 1
     replicas lie in agreement, the vote accepts their answer, and the
     reader is stuck with the stale initial value — the regression the
     campaign's oracle flags. *)
  let reg = make_reg ~f:1 ~liars:2 42 in
  check int "f + 1 liars defeat the vote" 0
    (Registers.Byzantine.read reg ~reader:0);
  let reg2 = make_reg ~f:2 ~liars:3 77 in
  check int "likewise at f = 2 with 3 liars" 0
    (Registers.Byzantine.read reg2 ~reader:0)

let test_memory_adapter_over_budget_adversary () =
  (* The Memory.t presentation, over a budget-f adversary: still a
     working register. *)
  let mem, counters =
    Faults.wrap ~seed:3
      [ inj (Faults.Byzantine { f = 1; prob = 1.0 }) ]
      (Memory.direct ())
  in
  let byz = Registers.Byzantine.memory ~f:1 ~readers:2 mem in
  let c = byz.Memory.make ~name:"x" ~bits:64 0 in
  c.Memory.write 5;
  check int "budget-1 adversary masked" 5 (c.Memory.read ());
  c.Memory.write 6;
  check int "still current after a second write" 6 (c.Memory.read ());
  check int "the adversary did claim its cell" 1 counters.Faults.byz_cells;
  check int "ghost peek agrees" 6 (c.Memory.peek ())

let test_cost_formulas () =
  check int "replication 2f+1" 5 (Registers.Byzantine.replication ~f:2);
  check int "base registers (R + R^2)(2f+1)" 60
    (Registers.Byzantine.base_registers ~f:1 ~readers:4);
  check int "read cost (2f+1)(2R-1)" 21
    (Registers.Byzantine.read_cost ~f:1 ~readers:4);
  check int "write cost (2f+1)R" 12
    (Registers.Byzantine.write_cost ~f:1 ~readers:4)

(* ------------------------------------------------------------------ *)
(* Network backend: Byzantine replicas and retransmit backoff           *)
(* ------------------------------------------------------------------ *)

let test_net_byz_validation () =
  let raises f = try ignore (f ()); false with Invalid_argument _ -> true in
  check bool "mute replicas count against the minority" true
    (raises (fun () ->
         Net.Sim.create ~replicas:3
           ~byzantine:[ (0, Net.Sim.Mute); (1, Net.Sim.Mute) ]
           ~seed:1 ()));
  check bool "a replica cannot be both crashed and Byzantine" true
    (raises (fun () ->
         Net.Sim.create ~replicas:3 ~crashes:[ (0, 5) ]
           ~byzantine:[ (0, Net.Sim.Forge_ts) ]
           ~seed:1 ()));
  check bool "out-of-range replica rejected" true
    (raises (fun () ->
         Net.Sim.create ~replicas:3 ~byzantine:[ (7, Net.Sim.Forge_ts) ]
           ~seed:1 ()))

let test_net_forging_replica_caught_and_accounted () =
  (* A forging replica poisons the ABD emulation (it makes no Byzantine
     claim): the campaign must flag it, and the per-replica account
     must attribute the lies to replica 0 alone. *)
  let metrics = Obs.Metrics.create () in
  let r =
    Workload.Netchaos.run ~metrics
      {
        Workload.Netchaos.default with
        impls = [ Workload.Campaign.Impl_anderson ];
        profiles =
          [
            Workload.Netchaos.profile "forge"
              ~byz:[ (0, Net.Sim.Forge_ts) ];
          ];
        seeds = 3;
        minimize_budget = 200;
      }
  in
  check bool "forged acks flagged" true (r.Workload.Netchaos.total_flagged > 0);
  check bool "misbehaviors counted" true
    (Obs.Metrics.counter_value
       (Obs.Metrics.counter metrics "netchaos.byz_lies")
    > 0);
  check bool "attributed to replica 0" true
    (Obs.Metrics.counter_value
       (Obs.Metrics.counter metrics "netchaos.byz.replica0")
    > 0);
  (* And the minimized counterexample replays deterministically. *)
  match
    List.find_map
      (fun (c : Workload.Netchaos.cell) -> c.counterexample)
      r.Workload.Netchaos.cells
  with
  | None -> Alcotest.fail "no counterexample minimized"
  | Some cx ->
    let s = Workload.Netchaos.cx_to_string cx in
    (match Workload.Netchaos.cx_of_string s with
    | Error e -> Alcotest.fail e
    | Ok cx' ->
      check bool "byz field round-trips" true
        (String.equal s (Workload.Netchaos.cx_to_string cx'));
      let out c =
        match
          Workload.Netchaos.replay c.Workload.Netchaos.cx_case
            ~script:c.Workload.Netchaos.cx_script
        with
        | Workload.Chaos.Flagged vs ->
          Format.asprintf "%a"
            (Format.pp_print_list History.Shrinking.pp_violation)
            vs
        | _ -> Alcotest.fail "replay did not reproduce the violation"
      in
      check bool "parsed replay reproduces the same violations" true
        (String.equal (out cx) (out cx')))

let test_backoff_suppresses_retransmits () =
  let run backoff =
    let env = Net.Sim.create ~replicas:3 ~loss:0.4 ~seed:42 () in
    let abd = Net.Abd.create ~backoff ~retry_seed:7 env in
    let mem = Net.Abd.memory abd in
    let cell = ref None in
    let (_ : Net.Sim.stats) =
      Net.Sim.run env
        [|
          (fun () ->
            let c = mem.Memory.make ~name:"x" ~bits:64 0 in
            c.Memory.write 1;
            c.Memory.write 2;
            cell := Some c);
        |]
    in
    let (_ : Net.Sim.stats) =
      Net.Sim.run env
        [| (fun () -> check int "value survives loss" 2
              ((Option.get !cell).Memory.read ())) |]
    in
    Net.Abd.stats abd
  in
  let legacy = run Net.Abd.no_backoff in
  check int "no_backoff never suppresses" 0 legacy.Net.Abd.retrans_suppressed;
  check int "no_backoff window stays at 1" 1 legacy.Net.Abd.backoff_peak;
  let exp = run { Net.Abd.base = 1; cap = 8; jitter = 2 } in
  check bool "exponential backoff absorbs timeouts" true
    (exp.Net.Abd.retrans_suppressed > 0);
  check bool "the window actually grew" true (exp.Net.Abd.backoff_peak > 1);
  check bool "and retransmits went down" true
    (exp.Net.Abd.retransmits <= legacy.Net.Abd.retransmits)

(* ------------------------------------------------------------------ *)
(* The survive/break campaign                                           *)
(* ------------------------------------------------------------------ *)

let small_cfg ?(seeds = 3) profiles =
  {
    Workload.Byzchaos.default with
    impls = [ Workload.Campaign.Impl_anderson ];
    profiles;
    seeds;
    minimize_budget = 400;
  }

let pick labels =
  let all = Workload.Byzchaos.default_profiles ~components:2 ~readers:2 in
  List.filter
    (fun (p : Workload.Byzchaos.profile) -> List.mem p.label labels)
    all

let test_profile_taxonomy () =
  let all = Workload.Byzchaos.default_profiles ~components:2 ~readers:2 in
  let survive, break =
    List.partition
      (fun (p : Workload.Byzchaos.profile) ->
        p.expect = Workload.Byzchaos.Survive)
      all
  in
  check bool "several survive profiles" true (List.length survive >= 4);
  check bool "at least two break profiles" true (List.length break >= 2);
  check bool "the unprotected stack is a break profile" true
    (List.exists
       (fun (p : Workload.Byzchaos.profile) ->
         p.label = "unprotected"
         && p.protection = Workload.Byzchaos.Unprotected)
       break)

let test_boundary_from_both_sides () =
  let r =
    Workload.Byzchaos.run
      (small_cfg (pick [ "byz1-masked"; "equivocate-rep0"; "unprotected" ]))
  in
  let by label =
    List.find
      (fun (c : Workload.Byzchaos.cell) ->
        c.cell_profile.Workload.Byzchaos.label = label)
      r.Workload.Byzchaos.cells
  in
  check int "within tolerance: budget adversary masked" 0
    (by "byz1-masked").flagged;
  check int "within tolerance: equivocating replica masked" 0
    (by "equivocate-rep0").flagged;
  check bool "beyond: the unprotected stack is caught" true
    ((by "unprotected").flagged > 0);
  check int "nothing hangs" 0 r.Workload.Byzchaos.total_stuck;
  check bool "boundary holds" true r.Workload.Byzchaos.boundary_holds;
  check bool "every cell matched its side" true
    (List.for_all
       (fun (c : Workload.Byzchaos.cell) -> c.as_expected)
       r.Workload.Byzchaos.cells)

let test_cx_minimized_replayable () =
  let r = Workload.Byzchaos.run (small_cfg (pick [ "unprotected" ])) in
  match
    List.find_map
      (fun (c : Workload.Byzchaos.cell) -> c.counterexample)
      r.Workload.Byzchaos.cells
  with
  | None -> Alcotest.fail "break profile produced no counterexample"
  | Some cx ->
    let out c =
      match
        Workload.Byzchaos.replay c.Workload.Byzchaos.cx_case
          ~script:c.Workload.Byzchaos.cx_script
      with
      | Workload.Chaos.Flagged vs ->
        Format.asprintf "%a"
          (Format.pp_print_list History.Shrinking.pp_violation)
          vs
      | Workload.Chaos.Passed -> Alcotest.fail "replay passed"
      | Workload.Chaos.Stuck_run m -> Alcotest.fail ("replay stuck: " ^ m)
      | Workload.Chaos.Diverged m -> Alcotest.fail ("replay diverged: " ^ m)
    in
    let v1 = out cx and v2 = out cx in
    check bool "deterministic replay" true (String.equal v1 v2);
    check bool "the report names the fault stack" true
      (String.length cx.Workload.Byzchaos.cx_stack > 0);
    let s = Workload.Byzchaos.cx_to_string cx in
    (match Workload.Byzchaos.cx_of_string s with
    | Error e -> Alcotest.fail e
    | Ok cx' ->
      check bool "script round-trips" true
        (String.equal s (Workload.Byzchaos.cx_to_string cx'));
      check bool "parsed replay reproduces the same violations" true
        (String.equal v1 (out cx')))

let test_report_identical_across_jobs () =
  let cfg =
    small_cfg ~seeds:2 (pick [ "byz1-masked"; "regress-rep0"; "unprotected" ])
  in
  let render r = Format.asprintf "%a" Workload.Byzchaos.pp_report r in
  let r1 = render (Workload.Byzchaos.run ~jobs:1 cfg) in
  let r4 = render (Workload.Byzchaos.run ~jobs:4 cfg) in
  check bool "reports bit-identical across job counts" true
    (String.equal r1 r4)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "byzantine"
    [
      ( "lying cells",
        [
          Alcotest.test_case "equivocation" `Quick test_equivocate;
          Alcotest.test_case "timestamp regression" `Quick test_regress;
          Alcotest.test_case "budget claims f cells" `Quick
            test_byz_budget_claims_f_cells;
          Alcotest.test_case "substring targeting" `Quick test_contains_target;
          Alcotest.test_case "describe names the stack" `Quick
            test_describe_names_the_stack;
          Alcotest.test_case "spec round-trip (new kinds)" `Quick
            test_spec_roundtrip_new_kinds;
        ] );
      ( "contract",
        List.map QCheck_alcotest.to_alcotest
          [ qcheck_wrapped_reads_are_plausible ] );
      ( "construction",
        [
          Alcotest.test_case "masks exactly f liars" `Quick
            test_masks_exactly_f;
          Alcotest.test_case "caught at f+1 liars" `Quick
            test_caught_at_f_plus_1;
          Alcotest.test_case "memory adapter over budget adversary" `Quick
            test_memory_adapter_over_budget_adversary;
          Alcotest.test_case "cost formulas" `Quick test_cost_formulas;
        ] );
      ( "network",
        [
          Alcotest.test_case "byzantine config validation" `Quick
            test_net_byz_validation;
          Alcotest.test_case "forging replica caught & accounted" `Quick
            test_net_forging_replica_caught_and_accounted;
          Alcotest.test_case "retransmit backoff" `Quick
            test_backoff_suppresses_retransmits;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "profile taxonomy" `Quick test_profile_taxonomy;
          Alcotest.test_case "boundary from both sides" `Quick
            test_boundary_from_both_sides;
          Alcotest.test_case "counterexample minimized & replayable" `Quick
            test_cx_minimized_replayable;
          Alcotest.test_case "report identical across jobs" `Quick
            test_report_identical_across_jobs;
        ] );
    ]

(* Tests for elastic sharding: the epoch-record reshard protocol in
   lib/serve (deterministic manual-mode reshards, live reshards under
   real-domain load with Shrinking + Wing–Gong checks across the epoch
   boundary, per-epoch accounting identities, the publish-map-without-
   state mutant being caught) and the capability API that exposes it
   ([Composite_intf.caps]). *)

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

(* ---------------------------------------------------------------- *)
(* Capability record                                                  *)
(* ---------------------------------------------------------------- *)

let test_caps_static () =
  let h = Composite.Multicore.afek ~init:[| 1; 2 |] in
  check int "static epoch" 0 (Composite.Composite_intf.epoch h);
  check bool "static not reconfigurable" false
    (Composite.Composite_intf.reconfigurable h);
  check bool "reconfigure rejected" true
    (try
       Composite.Composite_intf.reconfigure h ~shards:1;
       false
     with Invalid_argument _ -> true)

let test_caps_serve () =
  let srv =
    Serve.create ~shards:1 ~max_shards:3 ~readers:1 ~init:[| 0; 0; 0 |] ()
  in
  let h = Serve.handle srv in
  check bool "serve reconfigurable" true
    (Composite.Composite_intf.reconfigurable h);
  check int "epoch 0" 0 (Composite.Composite_intf.epoch h);
  Composite.Composite_intf.reconfigure h ~shards:3;
  check int "epoch 1 via caps" 1 (Composite.Composite_intf.epoch h);
  check int "shards grew" 3 (Serve.shards srv);
  check int "epoch agrees" 1 (Serve.epoch srv)

(* ---------------------------------------------------------------- *)
(* Deterministic manual-mode reshards                                 *)
(* ---------------------------------------------------------------- *)

let test_manual_grow_shrink () =
  let srv =
    Serve.create ~shards:1 ~max_shards:4 ~readers:2 ~init:[| 1; 2; 3; 4; 5 |] ()
  in
  Serve.post srv ~writer:0 10;
  Serve.post srv ~writer:3 40;
  Serve.drain srv;
  check (Alcotest.array int) "pre-reshard scan" [| 10; 2; 3; 40; 5 |]
    (Serve.scan srv ~reader:0);
  (* Grow 1 -> 4: everything applied before the boundary must be
     visible through the new epoch's map. *)
  Serve.reshard srv ~shards:4;
  check int "epoch" 1 (Serve.epoch srv);
  check int "shards" 4 (Serve.shards srv);
  check (Alcotest.array int) "post-grow scan sees migrated state"
    [| 10; 2; 3; 40; 5 |]
    (Serve.scan srv ~reader:0);
  (* Writes keep working against the new layout. *)
  Serve.post srv ~writer:2 30;
  Serve.drain srv;
  check (Alcotest.array int) "post-grow write" [| 10; 2; 30; 40; 5 |]
    (Serve.scan srv ~reader:0);
  (* Shrink 4 -> 2. *)
  Serve.reshard srv ~shards:2;
  check int "epoch'" 2 (Serve.epoch srv);
  check (Alcotest.array int) "post-shrink scan" [| 10; 2; 30; 40; 5 |]
    (Serve.scan srv ~reader:1);
  Serve.post srv ~writer:4 50;
  Serve.drain srv;
  check (Alcotest.array int) "post-shrink write" [| 10; 2; 30; 40; 50 |]
    (Serve.scan srv ~reader:0);
  (* Accounting closes across all three epochs. *)
  let st = Serve.stats srv in
  check int "posted = applied + coalesced" st.Serve.posted
    (st.Serve.applied + st.Serve.coalesced);
  check int "nothing pending" 0 st.Serve.pending

let test_reshard_validation () =
  let srv = Serve.create ~shards:2 ~max_shards:3 ~readers:1 ~init:[| 0; 0; 0 |] () in
  let rejects f = try f (); false with Invalid_argument _ -> true in
  check bool "shards = 0 rejected" true
    (rejects (fun () -> Serve.reshard srv ~shards:0));
  check bool "shards > max_shards rejected" true
    (rejects (fun () -> Serve.reshard srv ~shards:4));
  check bool "max_shards > C rejected" true
    (rejects (fun () ->
         ignore (Serve.create ~shards:1 ~max_shards:3 ~readers:1 ~init:[| 0; 0 |] ())));
  (* Resharding to the current count is a legal (epoch-bumping)
     reconfiguration. *)
  Serve.reshard srv ~shards:2;
  check int "same-count reshard bumps epoch" 1 (Serve.epoch srv)

let test_pending_crosses_boundary () =
  (* Posts sitting in mailboxes and batch cells when the epoch switches
     are drained into the NEW layout: nothing is stranded, identities
     close. *)
  let srv =
    Serve.create ~shards:3 ~max_shards:3 ~readers:1
      ~init:[| 0; 0; 0; 0; 0; 0 |] ()
  in
  Serve.post srv ~writer:1 11;
  Serve.post_batch srv [ (2, 22); (5, 55) ];
  (* No drain: the reshard's own boundary sweep applies them, and any
     entry routed by the old map is re-routed by the new appliers. *)
  Serve.reshard srv ~shards:1;
  Serve.drain srv;
  check (Alcotest.array int) "pending posts visible after shrink"
    [| 0; 11; 22; 0; 0; 55 |]
    (Serve.scan srv ~reader:0);
  let st = Serve.stats srv in
  check int "pending" 0 st.Serve.pending;
  check int "identity" st.Serve.posted (st.Serve.applied + st.Serve.coalesced)

let test_batch_cell_stale_routing () =
  (* A batch installed between epochs lands in cells chosen by the old
     owner map; the new epoch's drain must re-route (not strand, not
     reorder) every entry.  Manual mode makes the interleaving exact:
     install under the 4-shard map, reshard to 1 shard, drain. *)
  let srv =
    Serve.create ~shards:4 ~max_shards:4 ~readers:1 ~init:(Array.make 8 0) ()
  in
  Serve.post_batch srv [ (0, 1); (3, 3); (6, 6); (7, 7) ];
  Serve.reshard srv ~shards:1;
  (* The boundary sweep already drained them (reshard drains before the
     switch); what matters is the identity and the values. *)
  Serve.drain srv;
  check (Alcotest.array int) "all batch entries applied"
    [| 1; 0; 0; 3; 0; 0; 6; 7 |]
    (Serve.scan srv ~reader:0);
  (* Now the reverse: install while the service is ALREADY in the
     1-shard epoch but through a map captured before... not expressible
     single-threaded; covered by the live qcheck below.  Here, pin the
     post_batch-after-reshard path. *)
  Serve.post_batch srv [ (1, 10); (5, 50) ];
  Serve.drain srv;
  check (Alcotest.array int) "post-reshard batch"
    [| 1; 10; 0; 3; 0; 50; 6; 7 |]
    (Serve.scan srv ~reader:0);
  let st = Serve.stats srv in
  check int "identity" st.Serve.posted (st.Serve.applied + st.Serve.coalesced);
  check int "pending" 0 st.Serve.pending

let test_epoch_stats_identities () =
  let srv =
    Serve.create ~shards:1 ~max_shards:4 ~readers:1 ~init:[| 0; 0; 0; 0 |] ()
  in
  Serve.post srv ~writer:0 1;
  Serve.post srv ~writer:0 2;
  (* epoch 0 closes with one post still pending (posted=3, applied=1,
     coalesced=1 after the boundary sweep drains the mailbox). *)
  Serve.drain srv;
  Serve.post srv ~writer:1 9;
  Serve.reshard srv ~shards:4;
  ignore (Serve.scan srv ~reader:0);
  Serve.post srv ~writer:2 5;
  Serve.drain srv;
  let es = Serve.epoch_stats srv in
  check int "one entry per epoch" 2 (Array.length es);
  Array.iter
    (fun (e : Serve.epoch_stats) ->
      check bool
        (Printf.sprintf "epoch %d: posted identity" e.Serve.e_epoch)
        true
        (e.Serve.e_posted + e.Serve.e_carried_in
        = e.Serve.e_applied + e.Serve.e_coalesced + e.Serve.e_carried_out);
      check bool
        (Printf.sprintf "epoch %d: scan identity" e.Serve.e_epoch)
        true
        (e.Serve.e_scans_requested + e.Serve.e_inflight_in
        = e.Serve.e_scans_combined + e.Serve.e_scans_performed
          + e.Serve.e_inflight_out);
      check bool
        (Printf.sprintf "epoch %d: non-negative fields" e.Serve.e_epoch)
        true
        (e.Serve.e_posted >= 0 && e.Serve.e_applied >= 0
        && e.Serve.e_coalesced >= 0 && e.Serve.e_carried_in >= 0
        && e.Serve.e_carried_out >= 0 && e.Serve.e_inflight_in >= 0
        && e.Serve.e_inflight_out >= 0))
    es;
  check int "epoch 0 shards" 1 es.(0).Serve.e_shards;
  check int "epoch 1 shards" 4 es.(1).Serve.e_shards;
  (* The boundary sweep drains everything reachable, so nothing is
     carried here; the carried-residue case is covered under load. *)
  check int "quiescent final carry" 0 es.(1).Serve.e_carried_out

(* ---------------------------------------------------------------- *)
(* Live reshards under real-domain load                               *)
(* ---------------------------------------------------------------- *)

(* Stress one service lifetime with a reconfigurer domain walking
   [schedule] (a list of shard counts) while writers/readers run, as
   Reshard_campaign does; returns the recorded history. *)
let stress_with_reshards srv ~schedule ~writer_ops ~reader_ops ~readers ~init =
  Serve.start srv;
  let total_writes = Serve.components srv * writer_ops in
  let applied () = (Serve.stats srv).Serve.applied in
  let reader_pace () =
    let before = applied () in
    while before < total_writes && applied () = before do
      Domain.cpu_relax ()
    done
  in
  let stop = Atomic.make false in
  let reconfigurer =
    Domain.spawn (fun () ->
        List.iter
          (fun s ->
            if not (Atomic.get stop) then begin
              Serve.reshard srv ~shards:s;
              (* Let some traffic land in the new epoch. *)
              for _ = 1 to 100 do
                Domain.cpu_relax ()
              done
            end)
          schedule)
  in
  let h =
    Composite.Multicore.stress ~reader_pace
      ~config:{ Composite.Multicore.writer_ops; reader_ops; readers }
      ~init ~handle:(Serve.handle srv) ()
  in
  Atomic.set stop true;
  Domain.join reconfigurer;
  Serve.shutdown srv;
  h

let test_live_grow_shrink_linearizable () =
  let init = [| 10; 20; 30; 40; 50 |] in
  List.iter
    (fun schedule ->
      let srv = Serve.create ~shards:2 ~max_shards:5 ~readers:2 ~init () in
      let h =
        stress_with_reshards srv ~schedule ~writer_ops:4 ~reader_ops:4
          ~readers:2 ~init
      in
      let label = String.concat "->" (List.map string_of_int schedule) in
      check int
        (Printf.sprintf "%s: no shrinking violations" label)
        0
        (List.length (History.Shrinking.check ~equal:Int.equal h));
      check bool
        (Printf.sprintf "%s: generic oracle" label)
        true
        (History.Linearize.is_linearizable
           (History.Linearize.snapshot_spec ~equal:Int.equal)
           ~init
           (History.Snapshot_history.to_ops h));
      let st = Serve.stats srv in
      check int
        (Printf.sprintf "%s: identity" label)
        st.Serve.posted
        (st.Serve.applied + st.Serve.coalesced);
      check int (Printf.sprintf "%s: pending" label) 0 st.Serve.pending)
    [ [ 5 ]; [ 1 ]; [ 4; 1; 3 ] ]

let qcheck_random_schedules_clean =
  QCheck2.Test.make ~count:5
    ~name:"random grow/shrink schedules never flag"
    QCheck2.Gen.(
      tup3 (int_range 2 5) (list_size (int_range 1 3) (int_range 1 5))
        (int_range 1 3))
    (fun (c, raw_schedule, writer_ops) ->
      let init = Array.init c (fun k -> k * 100) in
      let schedule = List.map (fun s -> 1 + ((s - 1) mod c)) raw_schedule in
      let srv = Serve.create ~shards:1 ~max_shards:c ~readers:2 ~init () in
      let h =
        stress_with_reshards srv ~schedule ~writer_ops ~reader_ops:3 ~readers:2
          ~init
      in
      let st = Serve.stats srv in
      History.Shrinking.check ~equal:Int.equal h = []
      && st.Serve.posted = st.Serve.applied + st.Serve.coalesced
      && st.Serve.pending = 0
      && Array.for_all
           (fun (e : Serve.epoch_stats) ->
             e.Serve.e_posted + e.Serve.e_carried_in
             = e.Serve.e_applied + e.Serve.e_coalesced + e.Serve.e_carried_out)
           (Serve.epoch_stats srv))

let test_mutant_always_caught () =
  (* ~migrate:false publishes the new shard map with the previous
     epoch's boundary: a synchronous update acknowledged in epoch 0
     vanishes from epoch-1 scans until its component is re-written.
     Deterministic manual-mode pin: always caught, no concurrency
     needed. *)
  let init = [| 0; 0; 0 |] in
  let srv =
    Serve.create ~migrate:false ~shards:1 ~max_shards:3 ~readers:1 ~init ()
  in
  let recorded =
    Composite.Snapshot.record
      ~clock:(let c = ref 0 in fun () -> incr c; !c)
      ~initial:init (Serve.handle srv)
  in
  Serve.start srv;
  recorded.Composite.Snapshot.rupdate ~writer:0 7;
  (* The write is acknowledged (it is in the outer register).  Now the
     broken reshard drops it. *)
  Serve.reshard srv ~shards:3;
  let post = recorded.Composite.Snapshot.rscan ~reader:0 in
  Serve.shutdown srv;
  check (Alcotest.array int) "the acked write vanished (mutant)" [| 0; 0; 0 |]
    post;
  let h = Composite.Snapshot.history recorded in
  check bool "shrinking checker flags the lost write" true
    (History.Shrinking.check ~equal:Int.equal h <> []);
  check bool "generic oracle flags it too" true
    (not
       (History.Linearize.is_linearizable
          (History.Linearize.snapshot_spec ~equal:Int.equal)
          ~init
          (History.Snapshot_history.to_ops h)))

let test_mutant_caught_under_load () =
  (* The same mutant under real concurrency, via the campaign-shaped
     driver: reshard after the writers finish, then scan. *)
  let init = [| 0; 0 |] in
  let rec attempt n =
    let srv =
      Serve.create ~migrate:false ~shards:1 ~max_shards:2 ~readers:2 ~init ()
    in
    let h =
      stress_with_reshards srv ~schedule:[ 2; 1; 2 ] ~writer_ops:6
        ~reader_ops:6 ~readers:2 ~init
    in
    let flagged = History.Shrinking.check ~equal:Int.equal h <> [] in
    if flagged || n <= 1 then flagged else attempt (n - 1)
  in
  check bool "mutant flagged under load" true (attempt 5)

(* ---------------------------------------------------------------- *)
(* The campaign driver (Workload.Reshard_campaign)                    *)
(* ---------------------------------------------------------------- *)

let test_campaign_clean () =
  let cfg =
    {
      Workload.Reshard_campaign.default with
      Workload.Reshard_campaign.runs = 3;
      writer_ops = 3;
      reader_ops = 3;
    }
  in
  let m = Obs.Metrics.create () in
  let r = Workload.Reshard_campaign.run ~jobs:2 ~metrics:m cfg in
  check int "all lifetimes ran" 3 r.Workload.Reshard_campaign.runs;
  check int "no shrinking flags" 0 r.Workload.Reshard_campaign.flagged_runs;
  check int "no generic-oracle failures" 0
    r.Workload.Reshard_campaign.generic_failures;
  check int "no accounting failures" 0
    r.Workload.Reshard_campaign.accounting_failures;
  (* The reconfigurer stops early when load drains first, so a
     lifetime completes between 1 and |schedule| epoch switches. *)
  check bool "every lifetime resharded at least once" true
    (r.Workload.Reshard_campaign.epochs_completed >= 3);
  check bool "no lifetime over-resharded" true
    (r.Workload.Reshard_campaign.epochs_completed
    <= 3 * List.length cfg.Workload.Reshard_campaign.schedule);
  check bool "histories non-trivial" true
    (r.Workload.Reshard_campaign.ops_checked > 0);
  check bool "nothing to minimize" true
    (r.Workload.Reshard_campaign.minimized = None);
  let counter name = Obs.Metrics.counter_value (Obs.Metrics.counter m name) in
  check int "runs counter" 3 (counter "reshard_campaign.runs");
  check bool "serve counters merged" true (counter "serve.reshards" > 0)

let test_campaign_mutant_flagged () =
  (* The publish-before-migrate mutant must be flagged by at least one
     checker, and the failing schedule must ddmin to a non-empty
     minimal witness. *)
  let cfg =
    {
      Workload.Reshard_campaign.default with
      Workload.Reshard_campaign.runs = 4;
      migrate = false;
      minimize_budget = 12;
    }
  in
  let r = Workload.Reshard_campaign.run ~jobs:2 cfg in
  let failures =
    r.Workload.Reshard_campaign.flagged_runs
    + r.Workload.Reshard_campaign.generic_failures
    + r.Workload.Reshard_campaign.accounting_failures
  in
  check bool "mutant flagged" true (failures > 0);
  (match r.Workload.Reshard_campaign.minimized with
  | None -> Alcotest.failf "no minimized schedule despite failures"
  | Some s ->
    check bool "minimal witness is non-empty" true (s <> []);
    check bool "witness no longer than the original" true
      (List.length s
      <= List.length Workload.Reshard_campaign.default.Workload.Reshard_campaign.schedule));
  if r.Workload.Reshard_campaign.flagged_runs > 0 then
    check bool "a flagged run carries an example" true
      (r.Workload.Reshard_campaign.example <> None)

let () =
  Alcotest.run "reshard"
    [
      ( "caps",
        [
          Alcotest.test_case "static handles" `Quick test_caps_static;
          Alcotest.test_case "serve handle" `Quick test_caps_serve;
        ] );
      ( "manual",
        [
          Alcotest.test_case "grow and shrink" `Quick test_manual_grow_shrink;
          Alcotest.test_case "validation" `Quick test_reshard_validation;
          Alcotest.test_case "pending crosses the boundary" `Quick
            test_pending_crosses_boundary;
          Alcotest.test_case "stale batch routing" `Quick
            test_batch_cell_stale_routing;
          Alcotest.test_case "per-epoch identities" `Quick
            test_epoch_stats_identities;
        ] );
      ( "live",
        [
          Alcotest.test_case "grow/shrink under load linearizable" `Quick
            test_live_grow_shrink_linearizable;
          QCheck_alcotest.to_alcotest qcheck_random_schedules_clean;
        ] );
      ( "mutant",
        [
          Alcotest.test_case "publish-before-migrate pinned" `Quick
            test_mutant_always_caught;
          Alcotest.test_case "caught under load" `Quick
            test_mutant_caught_under_load;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "clean schedules pass" `Quick test_campaign_clean;
          Alcotest.test_case "mutant flagged and minimized" `Quick
            test_campaign_mutant_flagged;
        ] );
    ]

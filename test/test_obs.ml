(* Unit tests for the observability layer (lib/obs) and its hooks in
   the simulator: metrics histograms, JSON printer/parser, span
   reconstruction, Chrome trace export, trace ring-buffer eviction, and
   per-cell access counters. *)

open Csim

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let string = Alcotest.string

(* ------------------------------------------------------------------ *)
(* Metrics                                                              *)
(* ------------------------------------------------------------------ *)

let test_counter_gauge () =
  let m = Obs.Metrics.create () in
  let c = Obs.Metrics.counter m "ops" in
  Obs.Metrics.incr c;
  Obs.Metrics.incr ~by:41 c;
  check int "counter" 42 (Obs.Metrics.counter_value c);
  check int "same handle on re-registration" 42
    (Obs.Metrics.counter_value (Obs.Metrics.counter m "ops"));
  let g = Obs.Metrics.gauge m "temp" in
  Obs.Metrics.set g 3.5;
  check (Alcotest.float 0.0) "gauge" 3.5 (Obs.Metrics.gauge_value g);
  Alcotest.check_raises "kind clash"
    (Invalid_argument
       "Metrics: \"ops\" is already registered as a different metric kind")
    (fun () -> ignore (Obs.Metrics.gauge m "ops"))

let test_histogram_exact_percentiles () =
  (* Values below 64 land in exact unit buckets, so percentiles on
     1..100 are exact up to the log-bucket width (~3.1%) above 63; the
     chosen ranks all sit on bucket-aligned values. *)
  let m = Obs.Metrics.create () in
  let h = Obs.Metrics.histogram m "lat" in
  for v = 1 to 100 do
    Obs.Metrics.observe h v
  done;
  check int "count" 100 (Obs.Metrics.count h);
  check int "min" 1 (Obs.Metrics.hist_min h);
  check int "max" 100 (Obs.Metrics.hist_max h);
  check int "p50" 50 (Obs.Metrics.percentile h 50.);
  check int "p25" 25 (Obs.Metrics.percentile h 25.);
  check int "p1" 1 (Obs.Metrics.percentile h 1.);
  let p90 = Obs.Metrics.percentile h 90. in
  check bool "p90 within bucket width" true (p90 >= 88 && p90 <= 90);
  let p99 = Obs.Metrics.percentile h 99. in
  check bool "p99 within bucket width" true (p99 >= 96 && p99 <= 99);
  check int "p100 = max" 100 (Obs.Metrics.percentile h 100.)

let test_histogram_log_buckets () =
  let m = Obs.Metrics.create () in
  let h = Obs.Metrics.histogram m "big" in
  for _ = 1 to 10 do
    Obs.Metrics.observe h 1000
  done;
  check int "count" 10 (Obs.Metrics.count h);
  check int "max exact" 1000 (Obs.Metrics.hist_max h);
  let p50 = Obs.Metrics.percentile h 50. in
  (* One octave bucket is 1/32 of the value: 1000 lives in a bucket of
     width 32, so the reported lower bound is within 3.2%. *)
  check bool "p50 within relative error" true (p50 >= 968 && p50 <= 1000);
  Obs.Metrics.observe h (-5);
  check int "negative clamps to 0" 0 (Obs.Metrics.hist_min h)

let test_metrics_json () =
  let m = Obs.Metrics.create () in
  Obs.Metrics.incr ~by:7 (Obs.Metrics.counter m "c1");
  Obs.Metrics.set (Obs.Metrics.gauge m "g1") 2.0;
  Obs.Metrics.observe (Obs.Metrics.histogram m "h1") 5;
  let j = Obs.Metrics.to_json m in
  (match Obs.Json.member "counters" j with
  | Some (Obs.Json.Obj [ ("c1", Obs.Json.Int 7) ]) -> ()
  | _ -> Alcotest.fail "counters object");
  (match Obs.Json.member "histograms" j with
  | Some hs -> (
    match Obs.Json.member "h1" hs with
    | Some h ->
      check bool "has count" true (Obs.Json.member "count" h = Some (Obs.Json.Int 1));
      check bool "has p50" true (Obs.Json.member "p50" h = Some (Obs.Json.Int 5))
    | None -> Alcotest.fail "h1 missing")
  | None -> Alcotest.fail "histograms missing");
  (* the dump is parseable by our own parser *)
  match Obs.Json.of_string (Obs.Json.to_string j) with
  | Ok j' -> check bool "roundtrip" true (j = j')
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* JSON                                                                 *)
(* ------------------------------------------------------------------ *)

let test_json_roundtrip () =
  let j =
    Obs.Json.Obj
      [
        ("a", Obs.Json.Int 1);
        ("b", Obs.Json.Arr [ Obs.Json.Null; Obs.Json.Bool true ]);
        ("c", Obs.Json.Str "x\"y\n\t\\z");
        ("d", Obs.Json.Float 1.5);
        ("empty", Obs.Json.Obj []);
      ]
  in
  (match Obs.Json.of_string (Obs.Json.to_string j) with
  | Ok j' -> check bool "minified roundtrip" true (j = j')
  | Error e -> Alcotest.fail e);
  match Obs.Json.of_string (Obs.Json.to_string ~minify:false j) with
  | Ok j' -> check bool "pretty roundtrip" true (j = j')
  | Error e -> Alcotest.fail e

let test_json_float_sentinels () =
  let p f = Obs.Json.to_string (Obs.Json.Float f) in
  (* Non-finite floats print as the bare tokens Python's json module
     (which validates BENCH.json in CI) accepts — never as "nan"/"inf",
     which nothing reparses. *)
  check Alcotest.string "NaN token" "NaN" (p Float.nan);
  check Alcotest.string "Infinity token" "Infinity" (p Float.infinity);
  check Alcotest.string "-Infinity token" "-Infinity" (p Float.neg_infinity);
  (match Obs.Json.of_string "NaN" with
  | Ok (Obs.Json.Float f) -> check bool "NaN reparses" true (Float.is_nan f)
  | _ -> Alcotest.fail "NaN not parsed");
  (match Obs.Json.of_string "Infinity" with
  | Ok (Obs.Json.Float f) ->
      check bool "Infinity reparses" true (f = Float.infinity)
  | _ -> Alcotest.fail "Infinity not parsed");
  (match Obs.Json.of_string "[-Infinity]" with
  | Ok (Obs.Json.Arr [ Obs.Json.Float f ]) ->
      check bool "-Infinity reparses" true (f = Float.neg_infinity)
  | _ -> Alcotest.fail "-Infinity not parsed");
  (* Integral floats keep a decimal point so they reparse as Float, not
     Int. *)
  check Alcotest.string "integral float keeps the point" "3.0" (p 3.0);
  check Alcotest.string "negative integral float" "-17.0" (p (-17.0))

let qcheck_json_float_roundtrip =
  QCheck2.Test.make ~count:500 ~name:"float print/parse round-trip is exact"
    QCheck2.Gen.float (fun f ->
      match Obs.Json.of_string (Obs.Json.to_string (Obs.Json.Float f)) with
      | Ok (Obs.Json.Float f') ->
          (Float.is_nan f && Float.is_nan f') || f = f'
      | _ -> false)

let test_json_malformed () =
  let bad s =
    match Obs.Json.of_string s with
    | Ok _ -> Alcotest.fail (Printf.sprintf "accepted malformed %S" s)
    | Error _ -> ()
  in
  bad "";
  bad "{";
  bad "[1,]";
  bad "{\"a\":}";
  bad "[1] trailing";
  bad "\"unterminated";
  bad "nul"

(* ------------------------------------------------------------------ *)
(* Spans                                                                *)
(* ------------------------------------------------------------------ *)

(* One solo scan of a C-component register, with span markers on. *)
let traced_scan ~c =
  let env = Sim.create () in
  let mem = Memory.of_sim env in
  let reg =
    Composite.Anderson.create
      ~note:(Obs.Span.emitter env)
      mem ~readers:1 ~bits_per_value:8
      ~init:(Array.make c 0)
  in
  let (_ : Sim.stats) =
    Sim.run_solo env (fun () ->
        ignore (Composite.Anderson.scan_items reg ~reader:0))
  in
  Sim.trace env

let test_span_nesting () =
  (* A C=3 scan performs 2 scans of the C=2 register, each performing 2
     of the base register: 1 x scan@0, 2 x scan@1, 4 x scan@2, and the
     recursion depth is C - 1. *)
  let spans = Obs.Span.of_trace (traced_scan ~c:3) in
  let count name =
    List.length (List.filter (fun s -> s.Obs.Span.name = name) spans)
  in
  check int "scan@0" 1 (count "scan@0");
  check int "scan@1" 2 (count "scan@1");
  check int "scan@2" 4 (count "scan@2");
  check int "total" 7 (List.length spans);
  check int "max depth" 2 (Obs.Span.max_depth spans);
  List.iter
    (fun s ->
      check bool "closed" true s.Obs.Span.closed;
      check bool "ordered" true (s.Obs.Span.t0 <= s.Obs.Span.t1))
    spans;
  (* depth equals the recursion level encoded in the name *)
  List.iter
    (fun s ->
      let level =
        int_of_string
          (String.sub s.Obs.Span.name 5 (String.length s.Obs.Span.name - 5))
      in
      check int ("depth of " ^ s.Obs.Span.name) level s.Obs.Span.depth)
    spans

let test_span_unclosed () =
  let env = Sim.create () in
  let (_ : Sim.stats) =
    Sim.run_solo env (fun () ->
        Sim.note env ~proc:0 (Trace.span_begin "outer");
        Sim.note env ~proc:0 (Trace.span_begin "inner");
        Sim.note env ~proc:0 (Trace.span_end "inner")
        (* "outer" is never closed *))
  in
  let spans = Obs.Span.of_trace (Sim.trace env) in
  check int "two spans" 2 (List.length spans);
  let outer = List.find (fun s -> s.Obs.Span.name = "outer") spans in
  let inner = List.find (fun s -> s.Obs.Span.name = "inner") spans in
  check bool "outer unclosed" false outer.Obs.Span.closed;
  check bool "inner closed" true inner.Obs.Span.closed;
  check int "inner depth" 1 inner.Obs.Span.depth;
  (* a stray end marker with nothing open is ignored *)
  let env2 = Sim.create () in
  let (_ : Sim.stats) =
    Sim.run_solo env2 (fun () -> Sim.note env2 ~proc:0 (Trace.span_end "lonely"))
  in
  check int "stray end ignored" 0
    (List.length (Obs.Span.of_trace (Sim.trace env2)))

let test_span_markers () =
  check string "begin" "span:B:scan" (Trace.span_begin "scan");
  check string "end" "span:E:scan" (Trace.span_end "scan");
  (match Trace.span_of_note "span:B:update@2" with
  | Some (`B, "update@2") -> ()
  | _ -> Alcotest.fail "parse begin");
  (match Trace.span_of_note "span:E:x" with
  | Some (`E, "x") -> ()
  | _ -> Alcotest.fail "parse end");
  check bool "ordinary note" true (Trace.span_of_note "hello" = None)

(* ------------------------------------------------------------------ *)
(* Chrome export                                                        *)
(* ------------------------------------------------------------------ *)

let test_chrome_export () =
  let tr = traced_scan ~c:3 in
  let path = Filename.temp_file "chrome" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Obs.Chrome.export ~path tr;
      let ic = open_in path in
      let raw = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let j =
        match Obs.Json.of_string raw with
        | Ok j -> j
        | Error e -> Alcotest.fail ("export not valid JSON: " ^ e)
      in
      let events =
        match j with
        | Obs.Json.Arr evs -> evs
        | _ -> Alcotest.fail "export is not a JSON array"
      in
      check bool "nonempty" true (events <> []);
      (* every event is an object with the mandatory fields; B/E events
         obey stack discipline per tid *)
      let stacks : (int, string list ref) Hashtbl.t = Hashtbl.create 4 in
      let stack tid =
        match Hashtbl.find_opt stacks tid with
        | Some s -> s
        | None ->
          let s = ref [] in
          Hashtbl.add stacks tid s;
          s
      in
      let begins = ref 0 and ends = ref 0 in
      List.iter
        (fun e ->
          let field name =
            match Obs.Json.member name e with
            | Some v -> v
            | None -> Alcotest.fail ("event missing field " ^ name)
          in
          let str v =
            match v with Obs.Json.Str s -> s | _ -> Alcotest.fail "not a string"
          in
          let num v =
            match v with Obs.Json.Int n -> n | _ -> Alcotest.fail "not an int"
          in
          let name = str (field "name") in
          let ph = str (field "ph") in
          let tid = num (field "tid") in
          check int "pid" 0 (num (field "pid"));
          ignore (num (field "ts"));
          match ph with
          | "B" ->
            incr begins;
            let s = stack tid in
            s := name :: !s
          | "E" -> (
            incr ends;
            let s = stack tid in
            match !s with
            | top :: rest ->
              check string "E matches innermost B" top name;
              s := rest
            | [] -> Alcotest.fail "E without open B")
          | "i" | "M" -> ()
          | ph -> Alcotest.fail ("unexpected ph " ^ ph))
        events;
      check bool "has spans" true (!begins > 0);
      check int "balanced B/E" !begins !ends;
      Hashtbl.iter
        (fun _ s -> check int "all stacks empty at the end" 0 (List.length !s))
        stacks)

(* ------------------------------------------------------------------ *)
(* Trace ring buffer                                                    *)
(* ------------------------------------------------------------------ *)

let ev step =
  {
    Trace.step;
    proc = 0;
    kind = Trace.Write;
    cell = Printf.sprintf "c%d" step;
    value = string_of_int step;
  }

let test_ring_eviction () =
  let t = Trace.create ~capacity:3 () in
  for s = 0 to 4 do
    Trace.record t (ev s)
  done;
  check int "length" 3 (Trace.length t);
  check int "recorded" 5 (Trace.recorded t);
  check int "dropped" 2 (Trace.dropped t);
  check bool "oldest evicted" true
    (List.for_all (fun e -> e.Trace.step >= 2) (Trace.events t));
  check int "suffix retained" 3
    (List.length
       (List.filter (fun e -> e.Trace.step >= 2) (Trace.events t)));
  Trace.clear t;
  check int "cleared" 0 (Trace.length t);
  check int "recorded reset" 0 (Trace.recorded t);
  Alcotest.check_raises "capacity < 1"
    (Invalid_argument "Trace.create: capacity must be >= 1") (fun () ->
      ignore (Trace.create ~capacity:0 ()))

let test_unbounded_growth () =
  let t = Trace.create () in
  for s = 0 to 199 do
    Trace.record t (ev s)
  done;
  check int "length" 200 (Trace.length t);
  check int "dropped" 0 (Trace.dropped t);
  check int "first retained" 0 (List.hd (Trace.events t)).Trace.step

let test_trace_queries () =
  let t = Trace.create () in
  Trace.record t { (ev 0) with cell = "x"; kind = Trace.Write };
  Trace.record t { (ev 1) with cell = "x"; kind = Trace.Read };
  Trace.record t { (ev 2) with cell = "y"; kind = Trace.Write };
  Trace.record t { (ev 3) with cell = "x"; kind = Trace.Write };
  check int "accesses_of x" 3 (List.length (Trace.accesses_of t ~cell:"x"));
  check int "accesses_of missing" 0
    (List.length (Trace.accesses_of t ~cell:"z"));
  check int "writes_between inclusive" 2
    (Trace.writes_between t ~cell:"x" ~lo:0 ~hi:3);
  check int "writes_between excludes reads" 0
    (Trace.writes_between t ~cell:"x" ~lo:1 ~hi:1);
  check int "writes_between empty window" 0
    (Trace.writes_between t ~cell:"x" ~lo:2 ~hi:1);
  check int "writes_between boundary" 1
    (Trace.writes_between t ~cell:"x" ~lo:3 ~hi:3)

let test_ring_queries_see_suffix () =
  let t = Trace.create ~capacity:2 () in
  Trace.record t { (ev 0) with cell = "x" };
  Trace.record t { (ev 1) with cell = "x" };
  Trace.record t { (ev 2) with cell = "x" };
  check int "only retained writes counted" 2
    (Trace.writes_between t ~cell:"x" ~lo:0 ~hi:10)

(* ------------------------------------------------------------------ *)
(* Cell stats + profiler                                                *)
(* ------------------------------------------------------------------ *)

let test_cell_stats () =
  let env = Sim.create () in
  let a = Sim.make_cell env ~bits:8 "a" 0 in
  let b = Sim.make_cell env ~bits:8 "b" 0 in
  let (_ : Sim.stats) =
    Sim.run_solo env (fun () ->
        Sim.write a 1;
        ignore (Sim.read a);
        ignore (Sim.read a);
        ignore (Sim.read b))
  in
  let stats = Sim.cell_stats env in
  check int "two cells" 2 (List.length stats);
  (* creation order *)
  (match stats with
  | [ sa; sb ] ->
    check string "first cell" "a" sa.Sim.cell;
    check int "a reads" 2 sa.Sim.creads;
    check int "a writes" 1 sa.Sim.cwrites;
    check string "second cell" "b" sb.Sim.cell;
    check int "b reads" 1 sb.Sim.creads
  | _ -> Alcotest.fail "unexpected stats shape");
  Sim.reset_counters env;
  List.iter
    (fun s -> check int "reset" 0 (s.Sim.creads + s.Sim.cwrites))
    (Sim.cell_stats env)

let test_profile () =
  let env = Sim.create () in
  let mem = Memory.of_sim env in
  let reg =
    Composite.Anderson.create mem ~readers:1 ~bits_per_value:8
      ~init:[| 0; 0; 0 |]
  in
  let (_ : Sim.stats) =
    Sim.run env ~policy:Schedule.Round_robin
      [|
        (fun () -> ignore (Composite.Anderson.update reg ~writer:0 7));
        (fun () -> ignore (Composite.Anderson.scan_items reg ~reader:0));
      |]
  in
  let p = Obs.Profile.of_env env in
  check bool "has rows" true (p.Obs.Profile.rows <> []);
  check bool "sorted by traffic" true
    (let totals =
       List.map
         (fun r -> r.Obs.Profile.reads + r.Obs.Profile.writes)
         p.Obs.Profile.rows
     in
     totals = List.sort (fun a b -> compare b a) totals);
  check int "total = sum of rows"
    (List.fold_left
       (fun a r -> a + r.Obs.Profile.reads + r.Obs.Profile.writes)
       0 p.Obs.Profile.rows)
    p.Obs.Profile.total_accesses;
  check bool "switches observed" true (p.Obs.Profile.switches > 0);
  check int "two procs" 2 (List.length p.Obs.Profile.proc_events);
  check int "top 1" 1 (List.length (Obs.Profile.top ~n:1 p));
  (* snapshot into a registry *)
  let m = Obs.Metrics.create () in
  Obs.Profile.snapshot m ~prefix:"p" env;
  (match Obs.Json.member "counters" (Obs.Metrics.to_json m) with
  | Some (Obs.Json.Obj kvs) ->
    check bool "p.accesses present" true (List.mem_assoc "p.accesses" kvs)
  | _ -> Alcotest.fail "counters");
  (* text rendering smoke *)
  let s = Format.asprintf "%a" Obs.Profile.pp p in
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  check bool "renders the header" true (contains s "switch-adj");
  check bool "renders the summary" true (contains s "total accesses")

(* ------------------------------------------------------------------ *)
(* Percentile satellites: p999/p10 in the JSON dump, merge preserves    *)
(* percentiles bucket-wise                                              *)
(* ------------------------------------------------------------------ *)

let test_hist_json_p999 () =
  let m = Obs.Metrics.create () in
  let h = Obs.Metrics.histogram m "lat" in
  for v = 1 to 2000 do
    Obs.Metrics.observe h v
  done;
  let hj =
    match
      Obs.Json.member "histograms" (Obs.Metrics.to_json m)
      |> Option.map (Obs.Json.member "lat")
    with
    | Some (Some j) -> j
    | _ -> Alcotest.fail "lat histogram missing from dump"
  in
  let field name =
    match Obs.Json.member name hj with
    | Some (Obs.Json.Int n) -> n
    | _ -> Alcotest.fail ("histogram dump missing " ^ name)
  in
  check int "p10 matches percentile" (Obs.Metrics.percentile h 10.)
    (field "p10");
  check int "p999 matches percentile" (Obs.Metrics.percentile h 99.9)
    (field "p999");
  check bool "p999 above p99" true (field "p999" >= field "p99");
  (* tail resolution: with 2000 unit samples p999 must sit in the last
     octave, not collapse onto p99 *)
  check bool "p999 in the tail" true (field "p999" >= 1900);
  (* degradation: below 1000 samples p999 is the max *)
  let m2 = Obs.Metrics.create () in
  let h2 = Obs.Metrics.histogram m2 "few" in
  List.iter (Obs.Metrics.observe h2) [ 5; 9; 7 ];
  check int "p999 of 3 samples = max" 9 (Obs.Metrics.percentile h2 99.9)

let qcheck_merge_preserves_p999 =
  (* Bucket-wise merging means a merged histogram is indistinguishable
     from one that observed the concatenation — at every percentile,
     including the p999 tail. *)
  QCheck2.Test.make ~count:200
    ~name:"Metrics.merge preserves percentiles bucket-wise"
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 300) (int_range 0 100_000))
        (list_size (int_range 1 300) (int_range 0 100_000)))
    (fun (xs, ys) ->
      let observe name vs =
        let m = Obs.Metrics.create () in
        List.iter (Obs.Metrics.observe (Obs.Metrics.histogram m name)) vs;
        m
      in
      let a = observe "h" xs and b = observe "h" ys in
      let whole = observe "h" (xs @ ys) in
      Obs.Metrics.merge ~into:a b;
      let p m q =
        match Obs.Metrics.find_histogram m "h" with
        | Some h -> Obs.Metrics.percentile h q
        | None -> -1
      in
      List.for_all (fun q -> p a q = p whole q) [ 10.; 50.; 90.; 99.; 99.9 ])

(* ------------------------------------------------------------------ *)
(* Span mismatch accounting                                             *)
(* ------------------------------------------------------------------ *)

let test_span_mismatch () =
  (* Crossed markers: the end marker names a different span than the
     innermost open one.  The span must still close (at the crossing
     end), but carry the disagreeing name, count into the registry, and
     be flagged by pp. *)
  let env = Sim.create () in
  let (_ : Sim.stats) =
    Sim.run_solo env (fun () ->
        Sim.note env ~proc:0 (Trace.span_begin "a");
        Sim.note env ~proc:0 (Trace.span_begin "b");
        Sim.note env ~proc:0 (Trace.span_end "a");
        (* closes "b", mismatched *)
        Sim.note env ~proc:0 (Trace.span_end "a"))
  in
  let m = Obs.Metrics.create () in
  let spans = Obs.Span.of_trace ~metrics:m (Sim.trace env) in
  check int "two spans" 2 (List.length spans);
  check int "one mismatch" 1 (Obs.Span.mismatch_count spans);
  let b = List.find (fun s -> s.Obs.Span.name = "b") spans in
  check bool "b closed" true b.Obs.Span.closed;
  check bool "b records the disagreeing end name" true
    (b.Obs.Span.mismatch = Some "a");
  let a = List.find (fun s -> s.Obs.Span.name = "a") spans in
  check bool "a clean" true (a.Obs.Span.mismatch = None);
  check int "metric incremented" 1
    (Obs.Metrics.counter_value (Obs.Metrics.counter m "span.mismatched"));
  let rendered = Format.asprintf "%a" Obs.Span.pp b in
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  check bool "pp flags the mismatch" true (contains rendered "mismatched");
  (* well-nested markers count zero mismatches *)
  check int "clean trace has none" 0
    (Obs.Span.mismatch_count (Obs.Span.of_trace (traced_scan ~c:3)))

(* ------------------------------------------------------------------ *)
(* Causal collector                                                     *)
(* ------------------------------------------------------------------ *)

let test_causal_nesting () =
  let c = Obs.Causal.create () in
  (* note span (as the composite layer emits) -> op -> phase -> rpcs *)
  Obs.Causal.note c ~track:0 ~at:0 (Csim.Trace.span_begin "Scan");
  let op = Obs.Causal.start c ~kind:Obs.Causal.Op ~track:0 ~at:1 "abd.read" in
  check bool "op parented under the note span" true (op.Obs.Causal.parent <> None);
  let ph =
    Obs.Causal.start c ~parent:op ~kind:Obs.Causal.Phase ~track:0 ~at:1 "query"
  in
  check int "trace inherited" op.Obs.Causal.trace ph.Obs.Causal.trace;
  let rpcs =
    List.map
      (fun r ->
        Obs.Causal.start c ~parent:ph ~kind:Obs.Causal.Rpc ~track:0 ~at:2
          (Printf.sprintf "rpc r%d" r))
      [ 0; 1; 2 ]
  in
  (* quorum: two of three ack; the third stays open *)
  (match rpcs with
  | [ r0; r1; _r2 ] ->
    Obs.Causal.finish c ~at:5 r0;
    Obs.Causal.finish c ~at:6 r1
  | _ -> assert false);
  Obs.Causal.finish c ~at:7 ph;
  Obs.Causal.finish c ~at:7 op;
  Obs.Causal.note c ~track:0 ~at:8 (Csim.Trace.span_end "Scan");
  check int "six spans" 6 (Obs.Causal.span_count c);
  check int "one unclosed (unacked rpc)" 1 (Obs.Causal.unclosed_count c);
  check int "no mismatches" 0 (Obs.Causal.mismatched c);
  (* all spans share the note span's trace *)
  let traces =
    List.sort_uniq compare
      (List.map (fun s -> s.Obs.Causal.trace) (Obs.Causal.spans c))
  in
  check int "single trace id" 1 (List.length traces);
  (* mismatched note end markers are counted *)
  Obs.Causal.note c ~track:1 ~at:9 (Csim.Trace.span_begin "Update");
  Obs.Causal.note c ~track:1 ~at:10 (Csim.Trace.span_end "Scan");
  check int "note mismatch counted" 1 (Obs.Causal.mismatched c)

let test_causal_events () =
  let c = Obs.Causal.create () in
  Obs.Causal.note c ~track:3 ~at:0 (Csim.Trace.span_begin "Scan");
  let op = Obs.Causal.start c ~kind:Obs.Causal.Op ~track:3 ~at:1 "abd.read" in
  let rpc =
    Obs.Causal.start c ~parent:op ~kind:Obs.Causal.Rpc ~track:3 ~at:1 "rpc r0"
  in
  Obs.Causal.finish c ~at:4 rpc;
  Obs.Causal.finish c ~at:4 op;
  Obs.Causal.note c ~track:3 ~at:5 (Csim.Trace.span_end "Scan");
  let evs = Obs.Causal.to_events c in
  let str_field name e =
    match Obs.Json.member name e with
    | Some (Obs.Json.Str s) -> s
    | _ -> Alcotest.fail ("event missing string field " ^ name)
  in
  let phs = List.map (fun e -> str_field "ph" e) evs in
  check int "two X events (note + op)" 2
    (List.length (List.filter (( = ) "X") phs));
  check int "one async begin" 1 (List.length (List.filter (( = ) "b") phs));
  check int "one async end" 1 (List.length (List.filter (( = ) "e") phs));
  List.iter
    (fun e ->
      if str_field "ph" e = "X" then (
        match Obs.Json.member "dur" e with
        | Some (Obs.Json.Int d) ->
          check bool "X duration positive" true (d >= 1)
        | _ -> Alcotest.fail "X event missing dur"))
    evs;
  (* every event carries its span/trace coordinates in args *)
  List.iter
    (fun e ->
      match Obs.Json.member "args" e with
      | Some args ->
        check bool "args carry trace" true (Obs.Json.member "trace" args <> None)
      | None -> Alcotest.fail "event missing args")
    evs

(* ------------------------------------------------------------------ *)
(* Causal reconstruction across faulty network runs                     *)
(* ------------------------------------------------------------------ *)

let netcase prof =
  {
    Workload.Netchaos.impl = Workload.Campaign.Impl_anderson;
    prof;
    replicas = 3;
    components = 2;
    readers = 2;
    writes_per_writer = 2;
    scans_per_reader = 2;
    seed = 5;
  }

let test_causal_clean_run () =
  (* Fault-free: every span closes, op trees are complete, and tracing
     does not perturb the schedule (same counters with and without). *)
  let case = netcase (Workload.Netchaos.profile "none") in
  let bare = Workload.Netchaos.run_once case in
  let c = Obs.Causal.create () in
  let traced = Workload.Netchaos.run_once ~causal:c case in
  check int "same messages with tracing on"
    bare.Workload.Netchaos.net.Net.Sim.sent
    traced.Workload.Netchaos.net.Net.Sim.sent;
  check bool "clean" true
    (traced.Workload.Netchaos.outcome = Workload.Chaos.Passed);
  check bool "spans collected" true (Obs.Causal.span_count c > 0);
  check int "no mismatches" 0 (Obs.Causal.mismatched c);
  (* per-replica rpcs: every phase span fathers one rpc per replica *)
  let spans = Obs.Causal.spans c in
  let rpcs =
    List.filter (fun s -> s.Obs.Causal.kind = Obs.Causal.Rpc) spans
  in
  let phases =
    List.filter (fun s -> s.Obs.Causal.kind = Obs.Causal.Phase) spans
  in
  check bool "has phases" true (phases <> []);
  check int "3 rpcs per phase" (3 * List.length phases) (List.length rpcs);
  (* a quorum op abandons the slowest replica's rpc once the quorum
     acks, so unclosed spans are always rpcs — never ops, phases or
     composite note spans, which all complete in a clean run *)
  List.iter
    (fun s ->
      if not s.Obs.Causal.closed then
        check bool ("only rpcs unclosed: " ^ s.Obs.Causal.name) true
          (s.Obs.Causal.kind = Obs.Causal.Rpc))
    spans;
  check bool "at most one abandoned rpc per phase" true
    (Obs.Causal.unclosed_count c <= List.length phases)

let test_causal_crashed_run () =
  (* A crash-stopped replica leaves every subsequent rpc to it open —
     the crash is visible as unclosed-span evidence skewed onto that
     replica — while the run itself stays clean (the emulation masks a
     minority crash). *)
  let case =
    netcase (Workload.Netchaos.profile ~crashes:[ (0, 10) ] "crash")
  in
  let c = Obs.Causal.create () in
  let r = Workload.Netchaos.run_once ~causal:c case in
  check bool "masked" true (r.Workload.Netchaos.outcome = Workload.Chaos.Passed);
  let unclosed =
    List.filter (fun s -> not s.Obs.Causal.closed) (Obs.Causal.spans c)
  in
  check bool "unclosed rpc evidence" true (unclosed <> []);
  check bool "every unclosed span is an rpc" true
    (List.for_all (fun s -> s.Obs.Causal.kind = Obs.Causal.Rpc) unclosed);
  (* the crashed replica collects strictly more dangling rpcs than the
     live ones, which only lose the ordinary quorum-abandonment race *)
  let dangling r =
    List.length
      (List.filter
         (fun s -> s.Obs.Causal.name = Printf.sprintf "rpc r%d" r)
         unclosed)
  in
  check bool "evidence concentrates on the crashed replica" true
    (dangling 0 > dangling 1 && dangling 0 > dangling 2);
  check int "markers still balanced" 0 (Obs.Causal.mismatched c)

let test_causal_byzantine_run () =
  (* Byzantine replicas lie but do answer, so the span tree still
     closes; the lie count is visible in the run result while the
     collector stays structurally sound. *)
  let case =
    netcase
      (Workload.Netchaos.profile ~byz:[ (1, Net.Sim.Forge_ts) ] "byz-forge")
  in
  let c = Obs.Causal.create () in
  let r = Workload.Netchaos.run_once ~causal:c case in
  check bool "the liar lied" true (r.Workload.Netchaos.byz_lies > 0);
  check bool "spans collected" true (Obs.Causal.span_count c > 0);
  check int "no crossed markers under lying faults" 0 (Obs.Causal.mismatched c);
  (* every op span has a phase child: reconstruction survives lies *)
  let spans = Obs.Causal.spans c in
  let ops = List.filter (fun s -> s.Obs.Causal.kind = Obs.Causal.Op) spans in
  check bool "has ops" true (ops <> []);
  List.iter
    (fun (op : Obs.Causal.span) ->
      check bool "op has a phase child" true
        (List.exists
           (fun s ->
             s.Obs.Causal.kind = Obs.Causal.Phase
             && s.Obs.Causal.parent = Some op.Obs.Causal.id)
           spans))
    ops

(* ------------------------------------------------------------------ *)
(* SLO budgets                                                          *)
(* ------------------------------------------------------------------ *)

let test_slo_check () =
  let m = Obs.Metrics.create () in
  (* absent histogram: vacuously ok, no observation *)
  let vs = Obs.Slo.check m in
  check bool "all vacuously ok" true (Obs.Slo.all_ok vs);
  check bool "no data recorded" true
    (List.for_all (fun v -> v.Obs.Slo.observed = None) vs);
  (* a budget graded against real samples, from both sides *)
  let h = Obs.Metrics.histogram m "x.latency" in
  for v = 1 to 1000 do
    Obs.Metrics.observe h v
  done;
  let graded limit =
    match
      Obs.Slo.check
        ~budgets:
          [
            Obs.Slo.budget ~op:"x" ~metric:"x.latency" ~pct:Obs.Slo.P999 ~limit
              ~unit_:"steps";
          ]
        m
    with
    | [ v ] -> v
    | _ -> Alcotest.fail "one verdict expected"
  in
  let good = graded 2000 in
  check bool "within budget" true good.Obs.Slo.ok;
  check bool "observed the tail" true (good.Obs.Slo.observed >= Some 990);
  let bad = graded 10 in
  check bool "violated" false bad.Obs.Slo.ok;
  check bool "violation visible in pp" true
    (let s = Format.asprintf "%a" Obs.Slo.pp_verdict bad in
     String.length s > 0
     &&
     let nl = String.length "VIOLATED" and hl = String.length s in
     let rec go i =
       i + nl <= hl && (String.sub s i nl = "VIOLATED" || go (i + 1))
     in
     go 0);
  (* verdict JSON carries the verdict *)
  match Obs.Json.member "ok" (Obs.Slo.verdict_json bad) with
  | Some (Obs.Json.Bool false) -> ()
  | _ -> Alcotest.fail "verdict_json ok field"

(* ------------------------------------------------------------------ *)
(* Baseline gate                                                        *)
(* ------------------------------------------------------------------ *)

let bench_doc rows =
  Obs.Json.Obj
    [
      ("schema", Obs.Json.Str "composite-registers/bench/v2");
      ("version", Obs.Json.Int 2);
      ("generated_at", Obs.Json.Str "2026-01-01T00:00:00Z");
      ("experiments", Obs.Json.Obj [ ("E1", Obs.Json.Arr rows) ]);
      ("metrics", Obs.Json.Obj []);
    ]

let row msgs ratio =
  Obs.Json.Obj
    [ ("msgs", Obs.Json.Int msgs); ("gain", Obs.Json.Float ratio) ]

let test_baseline_glob () =
  check bool "exact" true (Obs.Baseline.glob_match "msgs" "msgs");
  check bool "star suffix" true (Obs.Baseline.glob_match "*_ns" "lat_ns");
  check bool "star middle" true
    (Obs.Baseline.glob_match "E1[*].msgs" "E1[7].msgs");
  check bool "star everywhere" true (Obs.Baseline.glob_match "*seconds*" "wall_seconds_total");
  check bool "no match" false (Obs.Baseline.glob_match "*_ns" "lat_ms");
  check bool "empty pattern" false (Obs.Baseline.glob_match "" "x");
  check bool "lone star" true (Obs.Baseline.glob_match "*" "anything")

let test_baseline_identical () =
  let doc = bench_doc [ row 10 1.5 ] in
  let b = Obs.Baseline.make doc in
  check int "no issues on itself" 0
    (List.length (Obs.Baseline.compare_doc b doc));
  (* generated_at may differ: make strips it, compare ignores it *)
  let doc' = bench_doc [ row 10 1.5 ] in
  let doc' =
    match doc' with
    | Obs.Json.Obj kvs ->
      Obs.Json.Obj
        (List.map
           (function
             | "generated_at", _ ->
               ("generated_at", Obs.Json.Str "2030-12-31T23:59:59Z")
             | kv -> kv)
           kvs)
    | _ -> assert false
  in
  check int "timestamp not gated" 0
    (List.length (Obs.Baseline.compare_doc b doc'))

let test_baseline_policies () =
  let b = Obs.Baseline.make (bench_doc [ row 10 1.5 ]) in
  (* ints default to Exact: off by one is a regression *)
  let issues = Obs.Baseline.compare_doc b (bench_doc [ row 11 1.5 ]) in
  check int "int drift caught" 1
    (List.length (Obs.Baseline.regressions issues));
  (* floats default to Band default_band: small drift passes... *)
  let issues = Obs.Baseline.compare_doc b (bench_doc [ row 10 1.9 ]) in
  check int "float drift within band" 0
    (List.length (Obs.Baseline.regressions issues));
  (* ...large drift does not *)
  let issues = Obs.Baseline.compare_doc b (bench_doc [ row 10 4.0 ]) in
  check int "float drift out of band" 1
    (List.length (Obs.Baseline.regressions issues));
  (* explicit Skip silences the field entirely *)
  let b_skip =
    Obs.Baseline.make
      ~tolerances:[ { Obs.Baseline.pattern = "msgs"; policy = Obs.Baseline.Skip } ]
      (bench_doc [ row 10 1.5 ])
  in
  let issues = Obs.Baseline.compare_doc b_skip (bench_doc [ row 999 1.5 ]) in
  check int "skipped field never gates" 0
    (List.length (Obs.Baseline.regressions issues));
  (* default tolerances skip wall-clock-shaped names *)
  let wall v =
    Obs.Json.Obj [ ("elapsed_seconds", Obs.Json.Float v) ]
  in
  let b_wall =
    Obs.Baseline.make ~tolerances:Obs.Baseline.default_tolerances
      (bench_doc [ wall 1.0 ])
  in
  check int "*seconds* skipped by default" 0
    (List.length
       (Obs.Baseline.regressions
          (Obs.Baseline.compare_doc b_wall (bench_doc [ wall 99.0 ]))))

let test_baseline_shape_drift () =
  let b = Obs.Baseline.make (bench_doc [ row 10 1.5; row 20 1.5 ]) in
  (* a vanished row is a regression *)
  let issues = Obs.Baseline.compare_doc b (bench_doc [ row 10 1.5 ]) in
  check bool "missing row regresses" true
    (Obs.Baseline.regressions issues <> []);
  (* a new row (or field) is informational only *)
  let extra =
    Obs.Json.Obj
      [
        ("msgs", Obs.Json.Int 10);
        ("gain", Obs.Json.Float 1.5);
        ("brand_new", Obs.Json.Int 1);
      ]
  in
  let issues =
    Obs.Baseline.compare_doc b (bench_doc [ extra; row 20 1.5; row 30 1.5 ])
  in
  check int "extra row+field informational" 0
    (List.length (Obs.Baseline.regressions issues));
  check bool "but reported" true (issues <> [])

let test_baseline_roundtrip () =
  let b =
    Obs.Baseline.make ~tolerances:Obs.Baseline.default_tolerances
      (bench_doc [ row 10 1.5 ])
  in
  (match Obs.Baseline.of_json (Obs.Baseline.to_json b) with
  | Ok b' ->
    check int "tolerances survive" (List.length b.Obs.Baseline.tolerances)
      (List.length b'.Obs.Baseline.tolerances);
    check bool "snapshot survives" true
      (b.Obs.Baseline.snapshot = b'.Obs.Baseline.snapshot);
    check int "reloaded baseline still clean" 0
      (List.length
         (Obs.Baseline.regressions
            (Obs.Baseline.compare_doc b' (bench_doc [ row 10 1.5 ]))))
  | Error e -> Alcotest.fail e);
  (* file round-trip *)
  let path = Filename.temp_file "baseline" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Obs.Baseline.save path b;
      match Obs.Baseline.load path with
      | Ok b' ->
        check bool "file snapshot survives" true
          (b.Obs.Baseline.snapshot = b'.Obs.Baseline.snapshot)
      | Error e -> Alcotest.fail e);
  match Obs.Baseline.of_json (Obs.Json.Int 3) with
  | Ok _ -> Alcotest.fail "accepted a non-baseline document"
  | Error _ -> ()

let test_campaign_metrics () =
  let m = Obs.Metrics.create () in
  let cfg =
    { Workload.Campaign.default with schedules = 5; check_generic = false }
  in
  let r = Workload.Campaign.run ~metrics:m cfg in
  let counter name =
    Obs.Metrics.counter_value (Obs.Metrics.counter m name)
  in
  check int "runs counted" r.Workload.Campaign.runs (counter "campaign.runs");
  check int "ops counted" r.Workload.Campaign.ops_checked
    (counter "campaign.ops_checked");
  check int "no flags" 0 (counter "campaign.flagged_runs");
  (* additive across calls *)
  let (_ : Workload.Campaign.result) = Workload.Campaign.run ~metrics:m cfg in
  check int "additive" (2 * r.Workload.Campaign.runs) (counter "campaign.runs")

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter and gauge" `Quick test_counter_gauge;
          Alcotest.test_case "histogram exact percentiles" `Quick
            test_histogram_exact_percentiles;
          Alcotest.test_case "histogram log buckets" `Quick
            test_histogram_log_buckets;
          Alcotest.test_case "registry to_json" `Quick test_metrics_json;
        ] );
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "malformed rejected" `Quick test_json_malformed;
          Alcotest.test_case "non-finite float sentinels" `Quick
            test_json_float_sentinels;
          QCheck_alcotest.to_alcotest qcheck_json_float_roundtrip;
        ] );
      ( "spans",
        [
          Alcotest.test_case "marker format" `Quick test_span_markers;
          Alcotest.test_case "anderson recursion nesting" `Quick
            test_span_nesting;
          Alcotest.test_case "unclosed and stray markers" `Quick
            test_span_unclosed;
          Alcotest.test_case "mismatched end markers counted" `Quick
            test_span_mismatch;
        ] );
      ( "percentiles",
        [
          Alcotest.test_case "p10/p999 in the JSON dump" `Quick
            test_hist_json_p999;
          QCheck_alcotest.to_alcotest qcheck_merge_preserves_p999;
        ] );
      ( "causal",
        [
          Alcotest.test_case "nesting, traces and unacked rpcs" `Quick
            test_causal_nesting;
          Alcotest.test_case "chrome events well-formed" `Quick
            test_causal_events;
          Alcotest.test_case "clean net run: complete trees" `Quick
            test_causal_clean_run;
          Alcotest.test_case "crashed replica: unclosed rpc evidence" `Quick
            test_causal_crashed_run;
          Alcotest.test_case "byzantine replica: trees survive lies" `Quick
            test_causal_byzantine_run;
        ] );
      ( "slo",
        [ Alcotest.test_case "budget verdicts" `Quick test_slo_check ] );
      ( "baseline",
        [
          Alcotest.test_case "glob matching" `Quick test_baseline_glob;
          Alcotest.test_case "identical doc passes" `Quick
            test_baseline_identical;
          Alcotest.test_case "exact, band and skip policies" `Quick
            test_baseline_policies;
          Alcotest.test_case "missing vs extra rows" `Quick
            test_baseline_shape_drift;
          Alcotest.test_case "json and file round-trip" `Quick
            test_baseline_roundtrip;
        ] );
      ( "chrome",
        [ Alcotest.test_case "export well-formed" `Quick test_chrome_export ] );
      ( "trace",
        [
          Alcotest.test_case "ring eviction" `Quick test_ring_eviction;
          Alcotest.test_case "unbounded growth" `Quick test_unbounded_growth;
          Alcotest.test_case "query boundaries" `Quick test_trace_queries;
          Alcotest.test_case "ring queries see suffix" `Quick
            test_ring_queries_see_suffix;
        ] );
      ( "profile",
        [
          Alcotest.test_case "cell stats" `Quick test_cell_stats;
          Alcotest.test_case "hot-cell profile" `Quick test_profile;
          Alcotest.test_case "campaign metrics" `Quick test_campaign_metrics;
        ] );
    ]

(* Tests for the paper's C/B/1/R construction (lib/core/anderson):
   sequential semantics, the Figure-4 scenarios, exact agreement with
   the complexity recurrences, wait-freedom, and linearizability under
   randomized and exhaustive schedule exploration — checked with the
   Shrinking Lemma, its witness construction, and the generic oracle. *)

open Csim

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let fresh ~readers ~init =
  let env = Sim.create ~trace:false () in
  let mem = Memory.of_sim env in
  let reg = Composite.Anderson.create mem ~readers ~bits_per_value:16 ~init in
  (env, reg)

(* ------------------------------------------------------------------ *)
(* Sequential semantics                                                 *)
(* ------------------------------------------------------------------ *)

let test_initial_scan () =
  let env, reg = fresh ~readers:2 ~init:[| 7; 8; 9 |] in
  let out = ref [||] in
  let (_ : Sim.stats) =
    Sim.run_solo env (fun () ->
        out :=
          Composite.Item.values (Composite.Anderson.scan_items reg ~reader:0))
  in
  check (Alcotest.array int) "initial values" [| 7; 8; 9 |] !out

let test_sequential_updates () =
  let env, reg = fresh ~readers:1 ~init:[| 0; 0; 0; 0 |] in
  let out = ref [||] in
  let (_ : Sim.stats) =
    Sim.run_solo env (fun () ->
        ignore (Composite.Anderson.update reg ~writer:2 22);
        ignore (Composite.Anderson.update reg ~writer:0 10);
        ignore (Composite.Anderson.update reg ~writer:3 33);
        ignore (Composite.Anderson.update reg ~writer:0 11);
        out :=
          Composite.Item.values (Composite.Anderson.scan_items reg ~reader:0))
  in
  check (Alcotest.array int) "after updates" [| 11; 0; 22; 33 |] !out

let test_ids_monotone_per_component () =
  let env, reg = fresh ~readers:1 ~init:[| 0; 0; 0 |] in
  let ids = ref [] in
  let (_ : Sim.stats) =
    Sim.run_solo env (fun () ->
        for k = 0 to 2 do
          for _ = 1 to 3 do
            ids := (k, Composite.Anderson.update reg ~writer:k 5) :: !ids
          done
        done)
  in
  List.iter
    (fun k ->
      let ks =
        List.filter_map (fun (k', i) -> if k = k' then Some i else None)
          (List.rev !ids)
      in
      check (Alcotest.list int) "ids count from 1" [ 1; 2; 3 ] ks)
    [ 0; 1; 2 ]

let test_scan_ids_match_updates () =
  let env, reg = fresh ~readers:1 ~init:[| 0; 0 |] in
  let got = ref [||] in
  let (_ : Sim.stats) =
    Sim.run_solo env (fun () ->
        ignore (Composite.Anderson.update reg ~writer:0 1);
        ignore (Composite.Anderson.update reg ~writer:0 2);
        ignore (Composite.Anderson.update reg ~writer:1 3);
        got := Composite.Item.ids (Composite.Anderson.scan_items reg ~reader:0))
  in
  check (Alcotest.array int) "ids" [| 2; 1 |] !got

let test_bad_indices () =
  let env, reg = fresh ~readers:2 ~init:[| 0; 0 |] in
  let run f = ignore (Sim.run_solo env f) in
  Alcotest.check_raises "bad reader"
    (Invalid_argument "Anderson.scan_items: bad reader") (fun () ->
      run (fun () -> ignore (Composite.Anderson.scan_items reg ~reader:5)));
  Alcotest.check_raises "bad writer"
    (Invalid_argument "Anderson.update: bad writer") (fun () ->
      run (fun () -> ignore (Composite.Anderson.update reg ~writer:7 0)))

let test_create_validation () =
  let env = Sim.create () in
  let mem = Memory.of_sim env in
  Alcotest.check_raises "no components"
    (Invalid_argument "Anderson.create: need at least one component")
    (fun () ->
      ignore (Composite.Anderson.create mem ~readers:1 ~bits_per_value:8 ~init:[||]));
  Alcotest.check_raises "no readers"
    (Invalid_argument "Anderson.create: need at least one reader") (fun () ->
      ignore
        (Composite.Anderson.create mem ~readers:0 ~bits_per_value:8
           ~init:[| 1; 2 |]))

let test_handle_wrapper () =
  let env, reg = fresh ~readers:2 ~init:[| 1; 2; 3 |] in
  let h = Composite.Anderson.handle reg in
  check int "components" 3 h.Composite.Snapshot.components;
  check int "readers" 2 h.Composite.Snapshot.readers;
  let out = ref [||] in
  let (_ : Sim.stats) =
    Sim.run_solo env (fun () -> out := Composite.Snapshot.scan h ~reader:1)
  in
  check (Alcotest.array int) "scan via handle" [| 1; 2; 3 |] !out

(* ------------------------------------------------------------------ *)
(* Complexity: exact agreement with the paper's recurrences (E2-E4)     *)
(* ------------------------------------------------------------------ *)

let read_time_case (c, r) =
  Alcotest.test_case
    (Printf.sprintf "TR(C=%d, R=%d) = paper recurrence" c r)
    `Quick
    (fun () ->
      let measured =
        Workload.Meter.scan_cost Workload.Campaign.Impl_anderson ~c ~r
      in
      check int "recurrence" (Composite.Complexity.tr ~c) measured;
      check int "closed form" (Composite.Complexity.tr_closed ~c) measured)

let write_time_case (c, r) =
  Alcotest.test_case
    (Printf.sprintf "TW(C=%d, R=%d) = paper recurrence, all writers" c r)
    `Quick
    (fun () ->
      for writer = 0 to c - 1 do
        let measured =
          Workload.Meter.update_cost Workload.Campaign.Impl_anderson ~c ~r
            ~writer
        in
        check int
          (Printf.sprintf "writer %d" writer)
          (Composite.Complexity.tw ~c ~r ~writer)
          measured
      done)

let space_case (c, b, r) =
  Alcotest.test_case
    (Printf.sprintf "S(C=%d, B=%d, R=%d) = paper recurrence" c b r)
    `Quick
    (fun () ->
      check int "bits"
        (Composite.Complexity.space_mrsw_bits ~c ~b ~r)
        (Workload.Meter.space_bits Workload.Campaign.Impl_anderson ~c ~b ~r);
      check int "register count"
        (Composite.Complexity.registers ~c ~r)
        (Workload.Meter.space_registers Workload.Campaign.Impl_anderson ~c ~r))

let test_tr_growth_is_exponential () =
  (* TR(C+1) = 2 TR(C) + 5: strictly doubling. *)
  for c = 1 to 9 do
    check int "recurrence step"
      ((2 * Composite.Complexity.tr ~c) + 5)
      (Composite.Complexity.tr ~c:(c + 1))
  done

let test_write_time_independent_of_depth_at_base () =
  (* Writer C-1 descends to the base register: exactly one access. *)
  List.iter
    (fun c ->
      check int "deepest writer cost" 1
        (Workload.Meter.update_cost Workload.Campaign.Impl_anderson ~c ~r:2
           ~writer:(c - 1)))
    [ 1; 2; 3; 4; 5 ]

(* ------------------------------------------------------------------ *)
(* Figure 4 scenarios (E1)                                              *)
(* ------------------------------------------------------------------ *)

let outcome_test name f expected_case expected_values expected_ids () =
  let o = f () in
  check bool
    (name ^ ": branch predicted by the paper")
    true
    (o.Workload.Scenario.case = Some expected_case);
  check (Alcotest.array int) (name ^ ": values") expected_values
    o.Workload.Scenario.values;
  check (Alcotest.array int) (name ^ ": ids") expected_ids
    o.Workload.Scenario.ids;
  check bool (name ^ ": linearizable") true o.Workload.Scenario.linearizable;
  check bool (name ^ ": shrinking ok") true o.Workload.Scenario.shrinking_ok

let test_fig4a =
  outcome_test "fig4a" Workload.Scenario.fig4a
    Composite.Anderson.Case_snapshot_seq [| 102; 2 |] [| 2; 0 |]

let test_fig4b =
  outcome_test "fig4b" Workload.Scenario.fig4b
    Composite.Anderson.Case_snapshot_wc [| 102; 2 |] [| 2; 0 |]

let test_case_ab =
  outcome_test "case_ab" Workload.Scenario.case_ab Composite.Anderson.Case_ab
    [| 101; 2 |] [| 1; 0 |]

let test_case_cd =
  outcome_test "case_cd" Workload.Scenario.case_cd Composite.Anderson.Case_cd
    [| 101; 2 |] [| 1; 0 |]

(* ------------------------------------------------------------------ *)
(* Wait-freedom                                                         *)
(* ------------------------------------------------------------------ *)

let test_reader_never_starves () =
  List.iter
    (fun writer_ops ->
      check int
        (Printf.sprintf "reader events with %d writer ops" writer_ops)
        (Composite.Complexity.tr ~c:2)
        (Workload.Scenario.wait_free_events ~writer_ops))
    [ 0; 1; 10; 200 ]

let test_all_schedules_terminate () =
  (* Random storms at C=4 with every process hammering: no Stuck. *)
  for seed = 1 to 20 do
    let env, reg = fresh ~readers:3 ~init:[| 0; 0; 0; 0 |] in
    let writer k () =
      for s = 1 to 5 do
        ignore (Composite.Anderson.update reg ~writer:k s)
      done
    in
    let reader j () =
      for _ = 1 to 5 do
        ignore (Composite.Anderson.scan_items reg ~reader:j)
      done
    in
    let procs =
      [| writer 0; writer 1; writer 2; writer 3; reader 0; reader 1; reader 2 |]
    in
    let stats = Sim.run env ~policy:(Schedule.Random seed) ~max_steps:200_000 procs in
    check bool "finished" true (stats.Sim.steps > 0)
  done

(* ------------------------------------------------------------------ *)
(* Linearizability campaigns (E6)                                       *)
(* ------------------------------------------------------------------ *)

let campaign_clean cfg () =
  let r = Workload.Campaign.run cfg in
  check int "no shrinking violations" 0 r.Workload.Campaign.flagged_runs;
  check int "no generic failures" 0 r.Workload.Campaign.generic_failures;
  check int "no witness failures" 0 r.Workload.Campaign.witness_failures;
  check int "no stuck runs" 0 r.Workload.Campaign.stuck_runs;
  check int "no disagreements" 0 r.Workload.Campaign.disagreements

(* One campaign per (C, R, ops, schedules, seed) configuration; each
   exercises a different recursion depth and reader-port population. *)
let campaign_case (components, readers, writes, scans, schedules, base_seed) =
  Alcotest.test_case
    (Printf.sprintf "campaign C=%d R=%d (%dw/%ds x %d schedules)" components
       readers writes scans schedules)
    `Quick
    (campaign_clean
       {
         Workload.Campaign.impl = Workload.Campaign.Impl_anderson;
         backend = Workload.Backend.shm;
         components;
         readers;
         writes_per_writer = writes;
         scans_per_reader = scans;
         schedules;
         base_seed;
         check_generic = true;
       })

let campaign_matrix =
  [
    (1, 1, 3, 3, 60, 1);
    (1, 3, 3, 3, 60, 2);
    (2, 1, 3, 3, 80, 3);
    (2, 2, 3, 3, 150, 1000);
    (2, 3, 2, 2, 60, 4);
    (3, 1, 3, 3, 80, 31);
    (3, 2, 3, 3, 100, 1);
    (3, 3, 2, 2, 60, 5);
    (4, 2, 2, 2, 60, 77);
    (4, 3, 2, 2, 40, 78);
    (5, 2, 2, 1, 40, 8);
    (6, 1, 1, 2, 25, 9);
  ]

let test_soak_random_shapes () =
  let r =
    Workload.Gen.soak ~impl:Workload.Campaign.Impl_anderson ~runs:60 ~seed:11
      ~max_components:5 ~max_readers:4 ~max_ops:8
  in
  check int "no flagged soak runs" 0 r.Workload.Gen.soak_flagged;
  check bool "substantial op volume" true (r.Workload.Gen.soak_ops > 500)

let test_soak_wide_and_deep () =
  let r =
    Workload.Gen.soak ~impl:Workload.Campaign.Impl_anderson ~runs:20 ~seed:313
      ~max_components:7 ~max_readers:2 ~max_ops:6
  in
  check int "no flagged soak runs (deep recursion)" 0 r.Workload.Gen.soak_flagged

let test_branch_coverage_exhaustive () =
  (* The case analysis of statement 8 is not dead code: over all
     interleavings of three 0-Writes and one Read (C=2, R=1), every
     branch fires on some schedule — and every schedule linearizes. *)
  let seen = Hashtbl.create 4 in
  let explore =
    Sim.explore ~max_runs:60_000 (fun () ->
        let env = Sim.create ~trace:false () in
        let mem = Memory.of_sim env in
        let reg =
          Composite.Anderson.create mem ~readers:1 ~bits_per_value:8
            ~init:[| 1; 2 |]
        in
        let rec_ =
          Composite.Snapshot.record
            ~clock:(fun () -> Sim.now env)
            ~initial:[| 1; 2 |]
            (Composite.Anderson.handle reg)
        in
        let writer () =
          for s = 1 to 3 do
            rec_.Composite.Snapshot.rupdate ~writer:0 (100 + s)
          done
        in
        let reader () = ignore (rec_.Composite.Snapshot.rscan ~reader:0) in
        let check_run (_ : Sim.env) =
          (match Composite.Anderson.last_case reg with
          | Some c -> Hashtbl.replace seen c ()
          | None -> ());
          if
            not
              (History.Shrinking.conditions_hold ~equal:Int.equal
                 (Composite.Snapshot.history rec_))
          then failwith "violation"
        in
        (env, [| writer; reader |], check_run))
  in
  check bool "exhaustive" true explore.Sim.exhaustive;
  List.iter
    (fun (case, label) ->
      check bool (label ^ " branch reachable") true (Hashtbl.mem seen case))
    [
      (Composite.Anderson.Case_snapshot_seq, "seq handshake");
      (Composite.Anderson.Case_snapshot_wc, "wc = a.wc+2");
      (Composite.Anderson.Case_ab, "(a,b)");
      (Composite.Anderson.Case_cd, "(c,d)");
    ]

let test_exhaustive_tiny () =
  let r =
    Workload.Campaign.exhaustive ~impl:Workload.Campaign.Impl_anderson
      ~components:2 ~readers:1 ~writes_per_writer:1 ~scans_per_reader:1 ()
  in
  check bool "exhaustive" true r.Workload.Campaign.ex_exhaustive;
  check int "no flagged schedules" 0 r.Workload.Campaign.ex_flagged;
  check bool "covered thousands of schedules" true
    (r.Workload.Campaign.ex_runs > 1000)

(* ------------------------------------------------------------------ *)
(* qcheck properties                                                    *)
(* ------------------------------------------------------------------ *)

let qcheck_random_campaign =
  QCheck2.Test.make ~count:60 ~name:"random configs: shrinking conditions hold"
    QCheck2.Gen.(
      quad (int_range 1 4) (* components *)
        (int_range 1 3) (* readers *)
        (int_range 1 3) (* writes per writer *)
        (int_range 0 1_000_000) (* seed *))
    (fun (components, readers, writes, seed) ->
      let cfg =
        {
          Workload.Campaign.impl = Workload.Campaign.Impl_anderson;
          backend = Workload.Backend.shm;
          components;
          readers;
          writes_per_writer = writes;
          scans_per_reader = 2;
          schedules = 3;
          base_seed = seed;
          check_generic = false;
        }
      in
      let r = Workload.Campaign.run cfg in
      r.Workload.Campaign.flagged_runs = 0
      && r.Workload.Campaign.witness_failures = 0
      && r.Workload.Campaign.stuck_runs = 0)

let qcheck_scan_is_reachable_state =
  (* Under a sequentially consistent single-process workload, every scan
     returns exactly the current abstract state. *)
  QCheck2.Test.make ~count:100 ~name:"solo scans return the abstract state"
    QCheck2.Gen.(list_size (int_range 1 20) (pair (int_range 0 2) (int_range 1 9)))
    (fun cmds ->
      let env, reg = fresh ~readers:1 ~init:[| 0; 0; 0 |] in
      let abstract = [| 0; 0; 0 |] in
      let ok = ref true in
      let (_ : Sim.stats) =
        Sim.run_solo env (fun () ->
            List.iter
              (fun (k, v) ->
                ignore (Composite.Anderson.update reg ~writer:k v);
                abstract.(k) <- v;
                let got =
                  Composite.Item.values
                    (Composite.Anderson.scan_items reg ~reader:0)
                in
                if got <> abstract then ok := false)
              cmds)
      in
      !ok)

let qcheck_wait_free_cost_constant =
  (* Whatever concurrent interleaving occurs, a single scan performs
     exactly TR(C) accesses — wait-freedom in its strongest form. *)
  QCheck2.Test.make ~count:50 ~name:"scan cost independent of interference"
    QCheck2.Gen.(pair (int_range 2 4) (int_range 0 1_000_000))
    (fun (c, seed) ->
      let env = Sim.create () in
      let mem = Memory.of_sim env in
      let reg =
        Composite.Anderson.create mem ~readers:1 ~bits_per_value:8
          ~init:(Array.make c 0)
      in
      let procs =
        Array.append
          (Array.init c (fun k () ->
               for s = 1 to 3 do
                 ignore (Composite.Anderson.update reg ~writer:k s)
               done))
          [| (fun () -> ignore (Composite.Anderson.scan_items reg ~reader:0)) |]
      in
      ignore (Sim.run env ~policy:(Schedule.Random seed) procs);
      let reader_events =
        List.length
          (List.filter
             (fun (e : Trace.event) -> e.proc = c && e.kind <> Trace.Note)
             (Trace.events (Sim.trace env)))
      in
      reader_events = Composite.Complexity.tr ~c)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "anderson"
    [
      ( "sequential",
        [
          Alcotest.test_case "initial scan" `Quick test_initial_scan;
          Alcotest.test_case "sequential updates" `Quick test_sequential_updates;
          Alcotest.test_case "ids monotone" `Quick test_ids_monotone_per_component;
          Alcotest.test_case "scan ids match updates" `Quick
            test_scan_ids_match_updates;
          Alcotest.test_case "bad indices" `Quick test_bad_indices;
          Alcotest.test_case "create validation" `Quick test_create_validation;
          Alcotest.test_case "handle wrapper" `Quick test_handle_wrapper;
        ] );
      ( "complexity",
        List.map read_time_case
          [ (1, 1); (2, 1); (3, 2); (4, 3); (5, 2); (6, 4); (7, 1); (8, 2) ]
        @ List.map write_time_case
            [ (1, 1); (2, 2); (3, 2); (4, 3); (5, 2); (6, 3) ]
        @ List.map space_case
            [ (1, 8, 1); (2, 8, 3); (3, 16, 2); (4, 4, 4); (6, 8, 3); (8, 8, 2) ]
        @ [
            Alcotest.test_case "TR doubles per component" `Quick
              test_tr_growth_is_exponential;
            Alcotest.test_case "deepest writer costs 1" `Quick
              test_write_time_independent_of_depth_at_base;
          ] );
      ( "figure-4",
        [
          Alcotest.test_case "fig 4(a)" `Quick test_fig4a;
          Alcotest.test_case "fig 4(b)" `Quick test_fig4b;
          Alcotest.test_case "case (a,b)" `Quick test_case_ab;
          Alcotest.test_case "case (c,d)" `Quick test_case_cd;
        ] );
      ( "wait-freedom",
        [
          Alcotest.test_case "reader never starves" `Quick
            test_reader_never_starves;
          Alcotest.test_case "storm schedules terminate" `Quick
            test_all_schedules_terminate;
        ] );
      ( "linearizability",
        List.map campaign_case campaign_matrix
        @ [
            Alcotest.test_case "soak: random shapes" `Quick
              test_soak_random_shapes;
            Alcotest.test_case "soak: wide and deep" `Quick
              test_soak_wide_and_deep;
            Alcotest.test_case "exhaustive tiny config" `Slow
              test_exhaustive_tiny;
            Alcotest.test_case "statement-8 branch coverage" `Slow
              test_branch_coverage_exhaustive;
          ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            qcheck_random_campaign;
            qcheck_scan_is_reachable_state;
            qcheck_wait_free_cost_constant;
          ] );
    ]

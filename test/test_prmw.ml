(* Tests for wait-free PRMW objects (lib/prmw): counters, max-registers
   and generic commutative accumulators over composite registers. *)

open Csim

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let factory mem =
  {
    Composite.Snapshot.make_sw =
      (fun ~readers ~init ->
        Composite.Anderson.handle
          (Composite.Anderson.create mem ~readers ~bits_per_value:64 ~init));
  }

let with_sim f =
  let env = Sim.create ~trace:false () in
  let mem = Memory.of_sim env in
  f env (factory mem)

(* ------------------------------------------------------------------ *)
(* Counter                                                              *)
(* ------------------------------------------------------------------ *)

let test_counter_sequential () =
  with_sim (fun env factory ->
      let c = Prmw.counter factory ~processes:3 ~readers:1 in
      let out = ref 0 in
      let (_ : Sim.stats) =
        Sim.run_solo env (fun () ->
            Prmw.incr c ~proc:0;
            Prmw.add c ~proc:1 10;
            Prmw.add c ~proc:2 (-3);
            out := Prmw.get c ~reader:0)
      in
      check int "sum of increments" 8 !out)

let test_counter_exact_under_concurrency () =
  for seed = 1 to 60 do
    with_sim (fun env factory ->
        let c = Prmw.counter factory ~processes:3 ~readers:1 in
        let worker p () =
          for _ = 1 to 5 do
            Prmw.incr c ~proc:p
          done
        in
        let final = ref 0 in
        let reader () = final := Prmw.get c ~reader:0 in
        ignore
          (Sim.run env ~policy:(Schedule.Random seed)
             [| worker 0; worker 1; worker 2 |]);
        ignore (Sim.run_solo env reader);
        check int "no lost updates" 15 !final)
  done

let test_counter_monotone_reads () =
  for seed = 1 to 40 do
    with_sim (fun env factory ->
        let c = Prmw.counter factory ~processes:2 ~readers:1 in
        let reads = ref [] in
        let worker p () =
          for _ = 1 to 5 do
            Prmw.incr c ~proc:p
          done
        in
        let reader () =
          for _ = 1 to 6 do
            reads := Prmw.get c ~reader:0 :: !reads
          done
        in
        ignore
          (Sim.run env ~policy:(Schedule.Random seed) [| worker 0; worker 1; reader |]);
        let ordered = List.rev !reads in
        let rec monotone = function
          | a :: (b :: _ as rest) -> a <= b && monotone rest
          | [ _ ] | [] -> true
        in
        check bool "reads monotone" true (monotone ordered);
        check bool "reads bounded by total" true
          (List.for_all (fun v -> v >= 0 && v <= 10) ordered))
  done

let test_counter_linearizable_as_counter_object () =
  (* Record increments and gets; check against the counter spec with the
     generic oracle. *)
  for seed = 1 to 40 do
    with_sim (fun env factory ->
        let c = Prmw.counter factory ~processes:2 ~readers:1 in
        let ops = ref [] in
        let record proc label f =
          let inv = Sim.now env in
          let i, o = f () in
          let res = Sim.now env in
          ops := History.Oprec.v ~proc ~label ~input:i ~output:o ~inv ~res :: !ops
        in
        let worker p () =
          for _ = 1 to 3 do
            record p "incr" (fun () ->
                Prmw.incr c ~proc:p;
                (History.Linearize.Incr 1, History.Linearize.Incr_done))
          done
        in
        let reader () =
          for _ = 1 to 3 do
            record 2 "get" (fun () ->
                let v = Prmw.get c ~reader:0 in
                (History.Linearize.Get, History.Linearize.Count v))
          done
        in
        ignore
          (Sim.run env ~policy:(Schedule.Random seed) [| worker 0; worker 1; reader |]);
        if
          not
            (History.Linearize.is_linearizable History.Linearize.counter_spec
               ~init:0 !ops)
        then Alcotest.failf "counter not linearizable at seed %d" seed)
  done

(* ------------------------------------------------------------------ *)
(* Max register and generic objects                                     *)
(* ------------------------------------------------------------------ *)

let test_max_register () =
  with_sim (fun env factory ->
      let m = Prmw.max_register factory ~processes:2 ~readers:1 in
      let out = ref 0 in
      let (_ : Sim.stats) =
        Sim.run_solo env (fun () ->
            Prmw.apply m ~proc:0 5;
            Prmw.apply m ~proc:1 9;
            Prmw.apply m ~proc:0 7;
            out := Prmw.read m ~reader:0)
      in
      check int "max of samples" 9 !out)

let test_max_register_empty () =
  with_sim (fun env factory ->
      let m = Prmw.max_register factory ~processes:2 ~readers:1 in
      let out = ref 0 in
      let (_ : Sim.stats) =
        Sim.run_solo env (fun () -> out := Prmw.read m ~reader:0)
      in
      check int "empty max is min_int" min_int !out)

let test_generic_set_union () =
  (* Commutative monoid: sorted-int-list union. *)
  let union a b = List.sort_uniq compare (a @ b) in
  with_sim (fun env factory ->
      let s =
        Prmw.create factory ~processes:2 ~readers:1 ~unit_:[]
          ~combine:(fun acc x -> union acc [ x ])
          ~fold:union
      in
      let out = ref [] in
      let (_ : Sim.stats) =
        Sim.run_solo env (fun () ->
            Prmw.apply s ~proc:0 3;
            Prmw.apply s ~proc:1 1;
            Prmw.apply s ~proc:0 2;
            Prmw.apply s ~proc:1 3;
            out := Prmw.read s ~reader:0)
      in
      check (Alcotest.list int) "set union" [ 1; 2; 3 ] !out)

let test_component_values () =
  with_sim (fun env factory ->
      let c = Prmw.counter factory ~processes:3 ~readers:1 in
      let out = ref [||] in
      let (_ : Sim.stats) =
        Sim.run_solo env (fun () ->
            Prmw.add c ~proc:0 1;
            Prmw.add c ~proc:2 5;
            out := Prmw.component_values c ~reader:0)
      in
      check (Alcotest.array int) "per-process contributions" [| 1; 0; 5 |] !out)

let test_apply_is_wait_free () =
  (* One apply = one component write plus nothing else: constant events
     regardless of contention (the PRMW claim). *)
  with_sim (fun env factory ->
      let c = Prmw.counter factory ~processes:2 ~readers:1 in
      let (_ : Sim.stats) = Sim.run_solo env (fun () -> Prmw.incr c ~proc:0) in
      let baseline = Sim.now env in
      let (_ : Sim.stats) = Sim.run_solo env (fun () -> Prmw.incr c ~proc:0) in
      let cost = Sim.now env - baseline in
      (* Writer 0 of a 2-component register: TW0(2, R). *)
      check bool "constant small cost" true (cost <= 10);
      check int "equals TW of the construction" cost
        (Composite.Complexity.tw ~c:2 ~r:1 ~writer:0))

let test_validation () =
  with_sim (fun _env factory ->
      Alcotest.check_raises "zero processes"
        (Invalid_argument "Prmw.create: processes must be >= 1") (fun () ->
          ignore (Prmw.counter factory ~processes:0 ~readers:1));
      let c = Prmw.counter factory ~processes:2 ~readers:1 in
      Alcotest.check_raises "bad proc" (Invalid_argument "Prmw.apply: bad proc")
        (fun () -> Prmw.incr c ~proc:7))

(* ------------------------------------------------------------------ *)
(* Versioned objects: Read / Write / PRMW                               *)
(* ------------------------------------------------------------------ *)

(* Sequential specification of a resettable counter. *)
type vin = V_write of int | V_add of int | V_read
type vout = V_done | V_val of int

let vspec : (int, vin, vout) History.Linearize.spec =
  {
    apply =
      (fun st i ->
        match i with
        | V_write v -> (v, V_done)
        | V_add d -> (st + d, V_done)
        | V_read -> (st, V_val st));
    equal_output = (fun a b -> a = b);
    equal_state = Int.equal;
  }

let test_versioned_sequential () =
  with_sim (fun env factory ->
      let c = Prmw.Versioned.counter factory ~processes:2 ~readers:1 in
      let reads = ref [] in
      let rd () = reads := Prmw.Versioned.read c ~reader:0 :: !reads in
      let (_ : Sim.stats) =
        Sim.run_solo env (fun () ->
            rd ();
            Prmw.Versioned.apply c ~proc:0 5;
            rd ();
            Prmw.Versioned.write c ~proc:1 100;
            rd ();
            Prmw.Versioned.apply c ~proc:0 2;
            Prmw.Versioned.apply c ~proc:1 3;
            rd ();
            Prmw.Versioned.write c ~proc:0 0;
            rd ())
      in
      check (Alcotest.list int) "reset semantics" [ 0; 5; 100; 105; 0 ]
        (List.rev !reads))

let test_versioned_write_discards_contributions () =
  with_sim (fun env factory ->
      let c = Prmw.Versioned.counter factory ~processes:3 ~readers:1 in
      let out = ref 0 in
      let (_ : Sim.stats) =
        Sim.run_solo env (fun () ->
            Prmw.Versioned.apply c ~proc:0 7;
            Prmw.Versioned.apply c ~proc:1 9;
            Prmw.Versioned.write c ~proc:2 50;
            Prmw.Versioned.apply c ~proc:0 1;
            out := Prmw.Versioned.read c ~reader:0)
      in
      check int "only post-write contributions count" 51 !out)

let test_versioned_linearizable () =
  for seed = 1 to 80 do
    with_sim (fun env factory ->
        let c = Prmw.Versioned.counter factory ~processes:2 ~readers:2 in
        let ops = ref [] in
        let record proc f =
          let inv = Sim.now env in
          let i, o = f () in
          let res = Sim.now env in
          ops :=
            History.Oprec.v ~proc ~label:"" ~input:i ~output:o ~inv ~res :: !ops
        in
        let worker p () =
          record p (fun () ->
              Prmw.Versioned.apply c ~proc:p 1;
              (V_add 1, V_done));
          record p (fun () ->
              Prmw.Versioned.write c ~proc:p (p * 50);
              (V_write (p * 50), V_done));
          record p (fun () ->
              Prmw.Versioned.apply c ~proc:p 2;
              (V_add 2, V_done))
        in
        let reader j () =
          for _ = 1 to 3 do
            record (10 + j) (fun () ->
                let v = Prmw.Versioned.read c ~reader:j in
                (V_read, V_val v))
          done
        in
        ignore
          (Sim.run env ~policy:(Schedule.Random seed)
             [| worker 0; worker 1; reader 0; reader 1 |]);
        if not (History.Linearize.is_linearizable vspec ~init:0 !ops) then
          Alcotest.failf "versioned object not linearizable at seed %d" seed)
  done

let test_versioned_exhaustive_tiny () =
  (* Every interleaving of one Write, one PRMW and one Read. *)
  let explore =
    Sim.explore ~max_runs:150_000 (fun () ->
        let env = Sim.create ~trace:false () in
        let mem = Memory.of_sim env in
        let fac =
          {
            Composite.Snapshot.make_sw =
              (fun ~readers ~init ->
                ignore readers;
                Composite.Afek.create mem ~bits_per_value:64 ~init);
          }
        in
        let c = Prmw.Versioned.counter fac ~processes:2 ~readers:1 in
        let ops = ref [] in
        let record proc f =
          let inv = Sim.now env in
          let i, o = f () in
          let res = Sim.now env in
          ops :=
            History.Oprec.v ~proc ~label:"" ~input:i ~output:o ~inv ~res :: !ops
        in
        let procs =
          [|
            (fun () ->
              record 0 (fun () ->
                  Prmw.Versioned.write c ~proc:0 10;
                  (V_write 10, V_done)));
            (fun () ->
              record 1 (fun () ->
                  Prmw.Versioned.apply c ~proc:1 3;
                  (V_add 3, V_done)));
            (fun () ->
              record 2 (fun () ->
                  let v = Prmw.Versioned.read c ~reader:0 in
                  (V_read, V_val v)));
          |]
        in
        let check_run (_ : Sim.env) =
          if not (History.Linearize.is_linearizable vspec ~init:0 !ops) then
            failwith "not linearizable"
        in
        (env, procs, check_run))
  in
  check bool "explored a meaningful sample" true (explore.Sim.runs > 1000)

let test_versioned_exhaustive_writes () =
  (* Every interleaving of two concurrent Writes and one Read: the Read
     must return one of the two written values or the initial one,
     consistently with real-time order. *)
  let explore =
    Sim.explore ~max_runs:150_000 (fun () ->
        let env = Sim.create ~trace:false () in
        let mem = Memory.of_sim env in
        let fac =
          {
            Composite.Snapshot.make_sw =
              (fun ~readers ~init ->
                ignore readers;
                Composite.Afek.create mem ~bits_per_value:64 ~init);
          }
        in
        let c = Prmw.Versioned.counter fac ~processes:2 ~readers:1 in
        let ops = ref [] in
        let record proc f =
          let inv = Sim.now env in
          let i, o = f () in
          let res = Sim.now env in
          ops :=
            History.Oprec.v ~proc ~label:"" ~input:i ~output:o ~inv ~res :: !ops
        in
        let procs =
          [|
            (fun () ->
              record 0 (fun () ->
                  Prmw.Versioned.write c ~proc:0 10;
                  (V_write 10, V_done)));
            (fun () ->
              record 1 (fun () ->
                  Prmw.Versioned.write c ~proc:1 20;
                  (V_write 20, V_done)));
            (fun () ->
              record 2 (fun () ->
                  let v = Prmw.Versioned.read c ~reader:0 in
                  (V_read, V_val v)));
          |]
        in
        let check_run (_ : Sim.env) =
          if not (History.Linearize.is_linearizable vspec ~init:0 !ops) then
            failwith "not linearizable"
        in
        (env, procs, check_run))
  in
  check bool "explored a meaningful sample" true (explore.Sim.runs > 1000)

let test_versioned_validation () =
  with_sim (fun _env factory ->
      let c = Prmw.Versioned.counter factory ~processes:2 ~readers:1 in
      Alcotest.check_raises "bad proc" (Invalid_argument "Versioned.apply")
        (fun () -> Prmw.Versioned.apply c ~proc:9 1);
      Alcotest.check_raises "bad reader" (Invalid_argument "Versioned.read")
        (fun () -> ignore (Prmw.Versioned.read c ~reader:9)))

let () =
  Alcotest.run "prmw"
    [
      ( "counter",
        [
          Alcotest.test_case "sequential" `Quick test_counter_sequential;
          Alcotest.test_case "exact under concurrency" `Quick
            test_counter_exact_under_concurrency;
          Alcotest.test_case "monotone reads" `Quick test_counter_monotone_reads;
          Alcotest.test_case "linearizable counter object" `Quick
            test_counter_linearizable_as_counter_object;
        ] );
      ( "objects",
        [
          Alcotest.test_case "max register" `Quick test_max_register;
          Alcotest.test_case "max register empty" `Quick test_max_register_empty;
          Alcotest.test_case "generic set union" `Quick test_generic_set_union;
          Alcotest.test_case "component values" `Quick test_component_values;
          Alcotest.test_case "apply wait-free cost" `Quick
            test_apply_is_wait_free;
          Alcotest.test_case "validation" `Quick test_validation;
        ] );
      ( "versioned",
        [
          Alcotest.test_case "sequential reset semantics" `Quick
            test_versioned_sequential;
          Alcotest.test_case "write discards stale contributions" `Quick
            test_versioned_write_discards_contributions;
          Alcotest.test_case "linearizable under random schedules" `Quick
            test_versioned_linearizable;
          Alcotest.test_case "exhaustive tiny" `Slow
            test_versioned_exhaustive_tiny;
          Alcotest.test_case "exhaustive concurrent writes" `Slow
            test_versioned_exhaustive_writes;
          Alcotest.test_case "validation" `Quick test_versioned_validation;
        ] );
    ]

(* Tests for the network edge (lib/edge) and the load generator
   (Workload.Loadgen): wire-protocol totality, request/response
   round-trips per backend over real loopback sockets, malformed-frame
   and mid-request-disconnect survival with intact accounting
   identities, loadgen plan determinism, SLO verdict plumbing, and the
   monotonic-clock regression pin for Exec.Pool spans. *)

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let ok_or_fail what = function
  | Ok v -> v
  | Error m -> Alcotest.failf "%s: %s" what m

(* ---------------------------------------------------------------- *)
(* Wire protocol                                                     *)
(* ---------------------------------------------------------------- *)

let strip_header b = Bytes.sub b 4 (Bytes.length b - 4)

let test_wire_roundtrip () =
  let reqs =
    [
      Edge.Wire.Hello;
      Edge.Wire.Write { component = 3; value = -17 };
      Edge.Wire.Post { component = 0; value = max_int / 2 };
      Edge.Wire.Scan;
      Edge.Wire.Reshard { shards = 5 };
    ]
  in
  List.iter
    (fun r ->
      let enc = Edge.Wire.encode_request r in
      let len =
        ok_or_fail "length" (Edge.Wire.decode_length (Bytes.sub enc 0 4))
      in
      check int "header length" (Bytes.length enc - 4) len;
      let dec = ok_or_fail "request" (Edge.Wire.decode_request (strip_header enc)) in
      check bool "request round-trips" true (r = dec))
    reqs;
  let resps =
    [
      Edge.Wire.Hello_ok { components = 8 };
      Edge.Wire.Write_ok { id = 42 };
      Edge.Wire.Post_ok;
      Edge.Wire.Scan_ok [| (10, 1); (-20, 2); (30, 0) |];
      Edge.Wire.Reshard_ok { epoch = 3 };
      Edge.Wire.Error "boom";
    ]
  in
  List.iter
    (fun r ->
      let enc = Edge.Wire.encode_response r in
      let dec =
        ok_or_fail "response" (Edge.Wire.decode_response (strip_header enc))
      in
      check bool "response round-trips" true (r = dec))
    resps

let test_wire_total () =
  let bad b =
    match Edge.Wire.decode_request b with Ok _ -> false | Error _ -> true
  in
  check bool "empty payload" true (bad Bytes.empty);
  check bool "unknown opcode" true (bad (Bytes.of_string "Z"));
  check bool "truncated write" true (bad (Bytes.of_string "W\000\000"));
  check bool "truncated reshard" true (bad (Bytes.of_string "R\000"));
  check bool "oversized hello" true (bad (Bytes.of_string "Hxx"));
  (* Length prefixes: zero, negative, over the cap. *)
  let len_of n =
    let b = Bytes.create 4 in
    Bytes.set_int32_be b 0 (Int32.of_int n);
    b
  in
  let bad_len n =
    match Edge.Wire.decode_length (len_of n) with
    | Ok _ -> false
    | Error _ -> true
  in
  check bool "zero length" true (bad_len 0);
  check bool "negative length" true (bad_len (-5));
  check bool "oversized length" true (bad_len (Edge.Wire.max_payload + 1));
  check bool "max length ok" true (not (bad_len Edge.Wire.max_payload))

(* ---------------------------------------------------------------- *)
(* Round-trips per backend over real sockets                         *)
(* ---------------------------------------------------------------- *)

let with_server ?(workers = 2) backend f =
  let srv =
    Edge.Server.start
      ~config:{ Edge.Server.default_config with workers }
      backend
  in
  Fun.protect
    ~finally:(fun () ->
      match Edge.Server.shutdown srv with
      | Ok () -> ()
      | Error m -> Alcotest.failf "identities broken at shutdown: %s" m)
    (fun () -> f srv)

let roundtrip_on backend () =
  with_server backend (fun srv ->
      let c = Edge.Client.connect ~port:(Edge.Server.port srv) () in
      Fun.protect
        ~finally:(fun () -> Edge.Client.close c)
        (fun () ->
          let components = ok_or_fail "hello" (Edge.Client.hello c) in
          check int "components" 4 components;
          let id1 = ok_or_fail "write" (Edge.Client.write c ~component:1 111) in
          check bool "write assigns a positive id" true (id1 > 0);
          ok_or_fail "post" (Edge.Client.post c ~component:2 222);
          (* The snapshot must eventually contain both values: the write
             is synchronous, the post may lag one applier drain. *)
          let rec settle tries =
            let snap = ok_or_fail "scan" (Edge.Client.scan c) in
            check int "snapshot arity" 4 (Array.length snap);
            check int "written value visible" 111 (fst snap.(1));
            if fst snap.(2) = 222 then snap
            else if tries = 0 then Alcotest.failf "post never applied"
            else settle (tries - 1)
          in
          let snap = settle 1000 in
          check int "untouched component" 10 (fst snap.(0));
          (* Component out of range: a typed error, connection stays up. *)
          (match Edge.Client.write c ~component:99 5 with
          | Error _ -> ()
          | Ok _ -> Alcotest.failf "out-of-range write accepted");
          let again = ok_or_fail "scan after error" (Edge.Client.scan c) in
          check int "connection survived the bad request" 4 (Array.length again)))

let init4 = [| 10; 20; 30; 40 |]

let test_roundtrip_serve () =
  roundtrip_on (Edge.Backend.of_serve ~shards:2 ~workers:2 ~init:init4 ()) ()

let test_roundtrip_multicore () =
  roundtrip_on
    (Workload.Edge_backends.of_registry ~workers:2 ~init:init4
       Workload.Backend.multicore)
    ()

let test_roundtrip_shm () =
  roundtrip_on
    (Workload.Edge_backends.of_registry ~workers:2 ~init:init4
       Workload.Backend.shm)
    ()

let test_roundtrip_net () =
  roundtrip_on
    (Workload.Edge_backends.of_registry ~workers:2 ~init:init4
       (Workload.Backend.net ()))
    ()

let test_roundtrip_byz () =
  roundtrip_on
    (Workload.Edge_backends.of_registry ~workers:2 ~init:init4
       (Workload.Backend.byz ()))
    ()

(* ---------------------------------------------------------------- *)
(* Online resharding over the wire                                    *)
(* ---------------------------------------------------------------- *)

(* A reshard is just another request: existing connections keep
   flowing across the epoch switch, every value written before the
   switch stays visible after it, and the per-epoch accounting
   identities (re-checked by [with_server] at shutdown) close. *)
let test_reshard_over_wire () =
  with_server
    (Edge.Backend.of_serve ~shards:2 ~max_shards:4 ~workers:2 ~init:init4 ())
    (fun srv ->
      let port = Edge.Server.port srv in
      let a = Edge.Client.connect ~port () in
      let b = Edge.Client.connect ~port () in
      Fun.protect
        ~finally:(fun () ->
          Edge.Client.close a;
          Edge.Client.close b)
        (fun () ->
          let expect = Array.copy init4 in
          let write c comp v =
            ignore (ok_or_fail "write" (Edge.Client.write c ~component:comp v));
            expect.(comp) <- v
          in
          let check_snap what c =
            let snap = ok_or_fail what (Edge.Client.scan c) in
            Array.iteri
              (fun i (v, _) ->
                check int (Printf.sprintf "%s: component %d" what i)
                  expect.(i) v)
              snap
          in
          write a 0 100;
          List.iteri
            (fun i s ->
              let epoch =
                ok_or_fail "reshard" (Edge.Client.reshard b ~shards:s)
              in
              check int "epoch advances per switch" (i + 1) epoch;
              (* The connection that never resharded still works, and
                 pre-switch writes survived the migration. *)
              check_snap (Printf.sprintf "scan in epoch %d" epoch) a;
              write a (i mod 4) (1000 + i);
              check_snap "scan after post-switch write" a)
            [ 4; 1; 3 ];
          let st = Edge.Server.stats srv in
          check int "reshards counted" 3 st.Edge.Server.reshards))

let test_reshard_not_supported () =
  with_server
    (Workload.Edge_backends.of_registry ~workers:2 ~init:init4
       Workload.Backend.multicore)
    (fun srv ->
      let c = Edge.Client.connect ~port:(Edge.Server.port srv) () in
      Fun.protect
        ~finally:(fun () -> Edge.Client.close c)
        (fun () ->
          (match Edge.Client.reshard c ~shards:4 with
          | Ok _ -> Alcotest.failf "static backend accepted a reshard"
          | Error m ->
            check bool "error names the backend" true
              (String.length m > 0));
          (* A typed op error, not a protocol error: the connection
             survives. *)
          let snap = ok_or_fail "scan after refusal" (Edge.Client.scan c) in
          check int "arity" 4 (Array.length snap);
          let st = Edge.Server.stats srv in
          check int "counted as op error" 1 st.Edge.Server.op_errors;
          check int "no reshard recorded" 0 st.Edge.Server.reshards))

(* ---------------------------------------------------------------- *)
(* Malformed frames and mid-request disconnects                      *)
(* ---------------------------------------------------------------- *)

let test_malformed_frame () =
  with_server (Edge.Backend.of_serve ~shards:2 ~workers:2 ~init:init4 ())
    (fun srv ->
      let port = Edge.Server.port srv in
      (* A liar: huge length prefix.  The server must answer with an
         error frame and drop only this connection. *)
      let c1 = Edge.Client.connect ~port () in
      let b = Bytes.create 4 in
      Bytes.set_int32_be b 0 0x7fffffffl;
      Edge.Client.send_raw c1 b;
      (match Edge.Client.scan c1 with
      | Ok _ -> Alcotest.failf "server accepted a 2 GiB frame"
      | Error _ -> ());
      Edge.Client.close c1;
      (* An unknown opcode inside a well-formed frame. *)
      let c2 = Edge.Client.connect ~port () in
      let junk = Bytes.create 5 in
      Bytes.set_int32_be junk 0 1l;
      Bytes.set junk 4 'Z';
      Edge.Client.send_raw c2 junk;
      (match Edge.Client.scan c2 with
      | Ok _ -> Alcotest.failf "server accepted opcode Z"
      | Error _ -> ());
      Edge.Client.close c2;
      (* The server is still fully alive for a well-behaved client. *)
      let c3 = Edge.Client.connect ~port () in
      let snap = ok_or_fail "scan after abuse" (Edge.Client.scan c3) in
      check int "arity" 4 (Array.length snap);
      Edge.Client.close c3;
      let rec settle tries =
        let st = Edge.Server.stats srv in
        if st.Edge.Server.protocol_errors >= 2 || tries = 0 then st
        else begin
          ignore (Unix.select [] [] [] 0.01);
          settle (tries - 1)
        end
      in
      let st = settle 200 in
      check int "both abuses counted" 2 st.Edge.Server.protocol_errors)

let test_mid_request_disconnect () =
  with_server (Edge.Backend.of_serve ~shards:2 ~workers:2 ~init:init4 ())
    (fun srv ->
      let port = Edge.Server.port srv in
      (* Send only half a write request, then vanish. *)
      let c = Edge.Client.connect ~port () in
      let full = Edge.Wire.encode_request (Edge.Wire.Write { component = 0; value = 7 }) in
      Edge.Client.send_raw c (Bytes.sub full 0 6);
      Edge.Client.close c;
      (* And one that dies between header and payload. *)
      let c2 = Edge.Client.connect ~port () in
      Edge.Client.send_raw c2 (Bytes.sub full 0 4);
      Edge.Client.close c2;
      (* Server unaffected; a synchronous write still completes, which
         also proves the appliers are healthy. *)
      let c3 = Edge.Client.connect ~port () in
      let id = ok_or_fail "write after disconnects" (Edge.Client.write c3 ~component:0 77) in
      check bool "id assigned" true (id > 0);
      Edge.Client.close c3)
(* identities re-checked by with_server at shutdown *)

(* ---------------------------------------------------------------- *)
(* Loadgen: plan determinism and execution                           *)
(* ---------------------------------------------------------------- *)

let test_plan_deterministic () =
  let cfg =
    {
      Workload.Loadgen.default with
      Workload.Loadgen.ops = 500;
      connections = 8;
      clients = 64;
      seed = 42;
    }
  in
  let p1 = Workload.Loadgen.plan ~components:6 cfg in
  let p2 = Workload.Loadgen.plan ~components:6 cfg in
  check bool "same seed, same plan" true (p1 = p2);
  let p3 =
    Workload.Loadgen.plan ~components:6
      { cfg with Workload.Loadgen.seed = 43 }
  in
  check bool "different seed, different plan" true (p1 <> p3);
  (* Arrival offsets are non-decreasing (a Poisson process), conns in
     range, and the mix contains all three op kinds at these sizes. *)
  let ok_order = ref true and last = ref 0 in
  Array.iter
    (fun op ->
      if op.Workload.Loadgen.p_at_ns < !last then ok_order := false;
      last := op.Workload.Loadgen.p_at_ns;
      if op.Workload.Loadgen.p_conn < 0 || op.Workload.Loadgen.p_conn >= 8 then
        ok_order := false;
      if
        op.Workload.Loadgen.p_component < 0
        || op.Workload.Loadgen.p_component >= 6
      then ok_order := false)
    p1;
  check bool "monotone arrivals, ranges respected" true !ok_order;
  let count k =
    Array.fold_left
      (fun a op -> if op.Workload.Loadgen.p_kind = k then a + 1 else a)
      0 p1
  in
  check bool "mix has scans" true (count Workload.Loadgen.Op_scan > 0);
  check bool "mix has writes" true (count Workload.Loadgen.Op_write > 0);
  check bool "mix has posts" true (count Workload.Loadgen.Op_post > 0)

let test_zipf_skew () =
  let cum = Workload.Loadgen.zipf_weights ~components:8 ~theta:0.9 in
  check int "cumulative has one entry per component" 8 (Array.length cum);
  check bool "normalized" true (abs_float (cum.(7) -. 1.0) < 1e-9);
  (* theta > 0 puts strictly more mass on component 0 than uniform. *)
  check bool "skewed head" true (cum.(0) > 1. /. 8.);
  let flat = Workload.Loadgen.zipf_weights ~components:8 ~theta:0. in
  check bool "theta 0 is uniform" true (abs_float (flat.(0) -. (1. /. 8.)) < 1e-9)

(* An end-to-end run: open loop with skew against the serving layer,
   latencies flowing into metrics and SLO verdicts, identities intact. *)
let test_loadgen_slo_plumbing () =
  let backend = Edge.Backend.of_serve ~shards:2 ~workers:2 ~init:init4 () in
  with_server backend (fun srv ->
      let m = Obs.Metrics.create () in
      let cfg =
        {
          Workload.Loadgen.default with
          Workload.Loadgen.ops = 400;
          connections = 8;
          clients = 64;
          arrival = Workload.Loadgen.Open_loop 40_000.;
          domains = 2;
          seed = 7;
        }
      in
      let r =
        Workload.Loadgen.run ~metrics:m ~port:(Edge.Server.port srv)
          ~components:4 cfg
      in
      check int "every op answered" 400 r.Workload.Loadgen.ops_done;
      check int "no errors" 0 r.Workload.Loadgen.errors;
      check int "no stalled connections" 0 r.Workload.Loadgen.stalled_conns;
      check bool "throughput measured" true
        (r.Workload.Loadgen.throughput_per_sec > 0.);
      (* Latency histograms reached the registry... *)
      let has name =
        match Obs.Metrics.find_histogram m name with
        | Some h -> Obs.Metrics.count h > 0
        | None -> false
      in
      check bool "scan latencies recorded" true (has "edge.scan.latency_ns");
      check bool "write latencies recorded" true (has "edge.write.latency_ns");
      (* ...and the edge/* SLO budgets produce data-backed verdicts. *)
      let verdicts = Obs.Slo.check m in
      let edge_verdicts =
        List.filter
          (fun v ->
            String.length v.Obs.Slo.budget.Obs.Slo.op >= 5
            && String.sub v.Obs.Slo.budget.Obs.Slo.op 0 5 = "edge/")
          verdicts
      in
      check bool "edge budgets exist" true (List.length edge_verdicts >= 3);
      check bool "some edge verdict has data" true
        (List.exists (fun v -> v.Obs.Slo.observed <> None) edge_verdicts);
      (* Server-side op counts match what the loadgen sent. *)
      let st = Edge.Server.stats srv in
      check int "server saw every op" 400
        (st.Edge.Server.writes + st.Edge.Server.posts + st.Edge.Server.scans))

let test_loadgen_closed_loop () =
  let backend =
    Workload.Edge_backends.of_registry ~workers:2 ~init:init4
      Workload.Backend.multicore
  in
  with_server backend (fun srv ->
      let cfg =
        {
          Workload.Loadgen.default with
          Workload.Loadgen.ops = 200;
          connections = 4;
          clients = 4;
          arrival = Workload.Loadgen.Closed_loop;
          domains = 1;
        }
      in
      let r =
        Workload.Loadgen.run ~port:(Edge.Server.port srv) ~components:4 cfg
      in
      check int "every op answered" 200 r.Workload.Loadgen.ops_done;
      check int "no errors" 0 r.Workload.Loadgen.errors)

(* ---------------------------------------------------------------- *)
(* Monotonic clock regression (Exec.Pool spans)                      *)
(* ---------------------------------------------------------------- *)

let test_mono_clock () =
  let a = Obs.Mono.now_ns () in
  let b = Obs.Mono.now_ns () in
  check bool "monotone" true (b >= a);
  check bool "plausible magnitude" true (a > 0);
  let sa = Obs.Mono.now_s () in
  ignore (Unix.select [] [] [] 0.01);
  let sb = Obs.Mono.now_s () in
  check bool "seconds advance across a sleep" true (sb -. sa > 0.005)

let test_pool_spans_non_negative () =
  let rec_ = Exec.Pool.recorder () in
  let (_ : unit array) =
    Exec.Pool.map ~jobs:4 ~recorder:rec_ 32 (fun i ->
        if i mod 3 = 0 then ignore (Unix.select [] [] [] 0.001))
  in
  let spans = Exec.Pool.spans rec_ in
  check int "every task recorded" 32 (List.length spans);
  List.iter
    (fun s ->
      check bool "span duration non-negative" true
        (s.Exec.Pool.sp_t1 >= s.Exec.Pool.sp_t0))
    spans

(* ---------------------------------------------------------------- *)

let () =
  Alcotest.run "edge"
    [
      ( "wire",
        [
          Alcotest.test_case "round-trip" `Quick test_wire_roundtrip;
          Alcotest.test_case "totality" `Quick test_wire_total;
        ] );
      ( "roundtrip",
        [
          Alcotest.test_case "serve backend" `Quick test_roundtrip_serve;
          Alcotest.test_case "multicore backend" `Quick test_roundtrip_multicore;
          Alcotest.test_case "shm backend" `Quick test_roundtrip_shm;
          Alcotest.test_case "net backend" `Quick test_roundtrip_net;
          Alcotest.test_case "byz backend" `Quick test_roundtrip_byz;
        ] );
      ( "reshard",
        [
          Alcotest.test_case "over the wire" `Quick test_reshard_over_wire;
          Alcotest.test_case "static backend refuses" `Quick
            test_reshard_not_supported;
        ] );
      ( "abuse",
        [
          Alcotest.test_case "malformed frames" `Quick test_malformed_frame;
          Alcotest.test_case "mid-request disconnect" `Quick
            test_mid_request_disconnect;
        ] );
      ( "loadgen",
        [
          Alcotest.test_case "plan determinism" `Quick test_plan_deterministic;
          Alcotest.test_case "zipf weights" `Quick test_zipf_skew;
          Alcotest.test_case "open loop + SLO plumbing" `Quick
            test_loadgen_slo_plumbing;
          Alcotest.test_case "closed loop" `Quick test_loadgen_closed_loop;
        ] );
      ( "clock",
        [
          Alcotest.test_case "monotonic stub" `Quick test_mono_clock;
          Alcotest.test_case "pool spans non-negative" `Quick
            test_pool_spans_non_negative;
        ] );
    ]

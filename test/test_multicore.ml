(* Tests for the Atomic.t-backed parallel instances (lib/core/multicore):
   real domains, recorded histories checked offline.  Workloads are kept
   small — correctness, not throughput, is asserted (throughput is
   bench/main.ml's job). *)

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let stress_and_check ~name handle ~init ~config =
  let h = Composite.Multicore.stress ~config ~init ~handle () in
  let violations = History.Shrinking.check ~equal:Int.equal h in
  if violations <> [] then
    Alcotest.failf "%s: %d shrinking violations on domains" name
      (List.length violations);
  (* The generic oracle confirms small histories. *)
  if History.Snapshot_history.size h <= 40 then
    check bool (name ^ ": generic oracle") true
      (History.Linearize.is_linearizable
         (History.Linearize.snapshot_spec ~equal:Int.equal)
         ~init
         (History.Snapshot_history.to_ops h));
  h

let small_config =
  { Composite.Multicore.writer_ops = 5; reader_ops = 6; readers = 2 }

let test_anderson_domains () =
  let init = [| 0; 0; 0 |] in
  let handle = Composite.Multicore.anderson ~readers:2 ~init in
  let h = stress_and_check ~name:"anderson" handle ~init ~config:small_config in
  check int "all writes recorded" 15 (List.length h.History.Snapshot_history.writes);
  check int "all reads recorded" 12 (List.length h.History.Snapshot_history.reads)

let test_afek_domains () =
  let init = [| 0; 0 |] in
  let handle = Composite.Multicore.afek ~init in
  ignore (stress_and_check ~name:"afek" handle ~init ~config:small_config)

let test_locked_domains () =
  let init = [| 0; 0 |] in
  let handle = Composite.Multicore.locked ~readers:2 ~init in
  ignore (stress_and_check ~name:"locked" handle ~init ~config:small_config)

let test_locked_reports_readers () =
  (* Regression: [locked] used to advertise [readers = max_int], which
     missizes anything allocating per-reader state from the handle. *)
  let handle = Composite.Multicore.locked ~readers:3 ~init:[| 0; 0 |] in
  check int "declared reader count" 3 handle.Composite.Snapshot.readers;
  check bool "rejects readers < 1" true
    (try
       ignore (Composite.Multicore.locked ~readers:0 ~init:[| 0 |]);
       false
     with Invalid_argument _ -> true)

let test_anderson_domains_larger () =
  (* More operations; checked by the Shrinking conditions only. *)
  let init = [| 0; 0; 0; 0 |] in
  let handle = Composite.Multicore.anderson ~readers:3 ~init in
  let config = { Composite.Multicore.writer_ops = 50; reader_ops = 50; readers = 3 } in
  let h = Composite.Multicore.stress ~config ~init ~handle () in
  check int "no violations at scale" 0
    (List.length (History.Shrinking.check ~equal:Int.equal h))

let test_multi_writer_domains () =
  (* 2 components x 2 writers each on domains, running raw (the handle
     itself is wait-free and thread-safe).  Checks: a reader's
     successive scans never observe a component's auxiliary id going
     backwards (scans are linearized), and the final value of each
     component is one of the values actually written to it. *)
  let init = [| 0; 0 |] in
  let mw =
    Composite.Multicore.multi_writer ~components:2 ~writers_per_component:2
      ~readers:2 ~init
  in
  let writer comp widx =
    Domain.spawn (fun () ->
        for s = 1 to 200 do
          ignore
            (Composite.Multi_writer.update mw ~comp ~widx
               ((comp * 10_000) + (widx * 1_000) + s))
        done)
  in
  let monotone = Atomic.make true in
  let reader j =
    Domain.spawn (fun () ->
        let prev = ref [| 0; 0 |] in
        for _ = 1 to 200 do
          let ids =
            Composite.Item.ids (Composite.Multi_writer.scan_items mw ~reader:j)
          in
          if not (Array.for_all2 ( <= ) !prev ids) then
            Atomic.set monotone false;
          prev := ids
        done)
  in
  let doms = [ writer 0 0; writer 0 1; writer 1 0; writer 1 1; reader 0; reader 1 ] in
  List.iter Domain.join doms;
  check bool "per-reader id monotonicity" true (Atomic.get monotone);
  let final =
    Composite.Item.values (Composite.Multi_writer.scan_items mw ~reader:0)
  in
  Array.iteri
    (fun comp v ->
      let widx = v / 1_000 mod 10 and s = v mod 1_000 in
      check bool "final value was genuinely written" true
        (v / 10_000 = comp && widx < 2 && s >= 1 && s <= 200))
    final

let test_tick_clock_monotone () =
  let clock = Composite.Multicore.tick_clock () in
  let domains =
    List.init 4 (fun _ ->
        Domain.spawn (fun () -> Array.init 1000 (fun _ -> clock ())))
  in
  let all = List.concat_map (fun d -> Array.to_list (Domain.join d)) domains in
  let sorted = List.sort_uniq compare all in
  check int "4000 distinct ticks" 4000 (List.length sorted)

let test_snapshot_monotone_across_scans () =
  (* One reader's successive scans of increasing counters never step
     backwards in any component. *)
  let init = [| 0; 0 |] in
  let handle = Composite.Multicore.anderson ~readers:1 ~init in
  let writers =
    List.init 2 (fun k ->
        Domain.spawn (fun () ->
            for s = 1 to 2000 do
              ignore (handle.Composite.Snapshot.update ~writer:k s)
            done))
  in
  let ok = ref true in
  let prev = ref [| 0; 0 |] in
  for _ = 1 to 500 do
    let snap = Composite.Snapshot.scan handle ~reader:0 in
    if not (Array.for_all2 ( <= ) !prev snap) then ok := false;
    prev := snap
  done;
  List.iter Domain.join writers;
  check bool "componentwise monotone" true !ok

let () =
  Alcotest.run "multicore"
    [
      ( "stress",
        [
          Alcotest.test_case "anderson on domains" `Quick test_anderson_domains;
          Alcotest.test_case "afek on domains" `Quick test_afek_domains;
          Alcotest.test_case "locked on domains" `Quick test_locked_domains;
          Alcotest.test_case "locked reports readers" `Quick
            test_locked_reports_readers;
          Alcotest.test_case "anderson at scale" `Slow
            test_anderson_domains_larger;
        ] );
      ( "infrastructure",
        [
          Alcotest.test_case "tick clock" `Quick test_tick_clock_monotone;
          Alcotest.test_case "monotone scans" `Quick
            test_snapshot_monotone_across_scans;
          Alcotest.test_case "multi-writer on domains" `Quick
            test_multi_writer_domains;
        ] );
    ]

(* Tests for the parallel verification engine (lib/exec) and its users:
   pool basics, bit-identical campaign/chaos results across job counts,
   Metrics.merge properties, and the indexed Shrinking checker against
   the naive transcription on random (mostly broken) histories. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let string = Alcotest.string

let metrics_json m = Obs.Json.to_string (Obs.Metrics.to_json m)

(* ------------------------------------------------------------------ *)
(* Pool                                                                 *)
(* ------------------------------------------------------------------ *)

let test_pool_map () =
  let squares = Exec.Pool.map ~jobs:3 10 (fun i -> i * i) in
  Alcotest.(check (array int))
    "results indexed by task" [| 0; 1; 4; 9; 16; 25; 36; 49; 64; 81 |] squares;
  check int "zero tasks" 0 (Array.length (Exec.Pool.map ~jobs:4 0 (fun i -> i)));
  Alcotest.(check (array int))
    "more jobs than tasks" [| 0; 2 |]
    (Exec.Pool.map ~jobs:8 2 (fun i -> 2 * i))

let test_pool_worker_states () =
  (* Worker-private state: each worker counts its own tasks; the counts
     must sum to the task total whatever the assignment was. *)
  let _, states =
    Exec.Pool.map_workers ~jobs:3 ~worker:(fun () -> ref 0) 20 (fun c i ->
        incr c;
        i)
  in
  check int "workers" 3 (List.length states);
  check int "every task counted once" 20
    (List.fold_left (fun a c -> a + !c) 0 states)

let test_pool_exception () =
  Alcotest.check_raises "task exception propagates" (Failure "task 7")
    (fun () ->
      ignore
        (Exec.Pool.map ~jobs:2 10 (fun i ->
             if i = 7 then failwith "task 7" else i)))

let test_pool_recorder () =
  let rec_ = Exec.Pool.recorder () in
  let _ =
    Exec.Pool.map ~jobs:2 ~recorder:rec_
      ~label:(fun i -> Printf.sprintf "t%d" i)
      6
      (fun i -> i)
  in
  let spans = Exec.Pool.spans rec_ in
  check int "one span per task" 6 (List.length spans);
  check bool "labels recorded" true
    (List.exists (fun s -> s.Exec.Pool.sp_label = "t3") spans);
  (* The Chrome export must be valid JSON with one X event per span
     plus one thread-name metadata event per worker. *)
  match Obs.Json.of_string (Obs.Json.to_string (Exec.Pool.chrome_json rec_)) with
  | Error e -> Alcotest.failf "chrome_json does not re-parse: %s" e
  | Ok (Obs.Json.Arr events) ->
    let phase p =
      List.length
        (List.filter
           (fun ev -> Obs.Json.member "ph" ev = Some (Obs.Json.Str p))
           events)
    in
    check int "X events" 6 (phase "X");
    check bool "thread metadata" true (phase "M" >= 1)
  | Ok _ -> Alcotest.fail "chrome_json is not an array"

(* ------------------------------------------------------------------ *)
(* Determinism across job counts                                        *)
(* ------------------------------------------------------------------ *)

let test_campaign_determinism () =
  (* The unsafe double collect gets flagged, so this also pins the
     choice of [example] (first flagged schedule index wins). *)
  let cfg =
    {
      Workload.Campaign.default with
      impl = Workload.Campaign.Impl_unsafe_collect;
      schedules = 24;
    }
  in
  let run jobs =
    let m = Obs.Metrics.create () in
    let r = Workload.Campaign.run ~jobs ~metrics:m cfg in
    (r, metrics_json m)
  in
  let r1, m1 = run 1 in
  let r4, m4 = run 4 in
  check bool "some runs flagged (fixture is meaningful)" true
    (r1.Workload.Campaign.flagged_runs > 0);
  check bool "result records identical" true (r1 = r4);
  check string "merged metrics identical" m1 m4

let test_campaign_pool_spans () =
  let cfg = { Workload.Campaign.default with schedules = 7 } in
  let pool = Exec.Pool.recorder () in
  let (_ : Workload.Campaign.result) =
    Workload.Campaign.run ~jobs:2 ~pool cfg
  in
  check int "one span per schedule" 7 (List.length (Exec.Pool.spans pool))

let test_chaos_determinism () =
  let profiles =
    [
      Workload.Chaos.profile "none";
      Workload.Chaos.profile "lost-writes"
        ~injections:
          [
            {
              Csim.Faults.kind = Csim.Faults.Lost_write { prob = 0.3 };
              target = Csim.Faults.All;
            };
          ];
    ]
  in
  let cfg =
    {
      Workload.Chaos.default with
      impls =
        [ Workload.Campaign.Impl_anderson; Workload.Campaign.Impl_unsafe_collect ];
      profiles;
      seeds = 4;
      minimize_budget = 150;
    }
  in
  let run jobs =
    let m = Obs.Metrics.create () in
    let r = Workload.Chaos.run ~jobs ~metrics:m cfg in
    (r, metrics_json m)
  in
  let r1, m1 = run 1 in
  let r3, m3 = run 3 in
  check bool "something was flagged (fixture is meaningful)" true
    (r1.Workload.Chaos.total_flagged > 0);
  check bool "reports identical" true (r1 = r3);
  check string "merged metrics identical" m1 m3;
  (* Counterexamples (the minimizer's output) must agree too; compare
     their replayable renderings for a readable failure. *)
  let cxs r =
    List.filter_map
      (fun (c : Workload.Chaos.cell) ->
        Option.map Workload.Chaos.cx_to_string c.counterexample)
      r.Workload.Chaos.cells
  in
  Alcotest.(check (list string)) "counterexamples identical" (cxs r1) (cxs r3)

(* ------------------------------------------------------------------ *)
(* Metrics merge and snapshot stability                                 *)
(* ------------------------------------------------------------------ *)

let test_snapshot_order_stable () =
  let build names =
    let m = Obs.Metrics.create () in
    List.iter
      (fun n -> Obs.Metrics.incr ~by:(String.length n) (Obs.Metrics.counter m n))
      names;
    metrics_json m
  in
  let names = [ "zeta"; "alpha"; "mid"; "beta" ] in
  check string "to_json independent of registration order" (build names)
    (build (List.rev names))

let gen_values = QCheck2.Gen.(list_size (int_range 0 60) (int_range 0 5000))

let qcheck_merge_is_union =
  QCheck2.Test.make ~count:200
    ~name:"merge h(a)<-h(b) equals observing a@b into one registry"
    QCheck2.Gen.(pair gen_values gen_values)
    (fun (a, b) ->
      let observe_all m vs =
        let h = Obs.Metrics.histogram m "lat" in
        List.iter (Obs.Metrics.observe h) vs;
        List.iter
          (fun v -> if v mod 2 = 0 then Obs.Metrics.incr (Obs.Metrics.counter m "even"))
          vs
      in
      let m1 = Obs.Metrics.create () in
      observe_all m1 a;
      let m2 = Obs.Metrics.create () in
      observe_all m2 b;
      Obs.Metrics.merge ~into:m1 m2;
      let m0 = Obs.Metrics.create () in
      observe_all m0 (a @ b);
      String.equal (metrics_json m1) (metrics_json m0))

let qcheck_merge_commutes =
  QCheck2.Test.make ~count:200 ~name:"merge is commutative (gauges included)"
    QCheck2.Gen.(pair gen_values gen_values)
    (fun (a, b) ->
      let build vs =
        let m = Obs.Metrics.create () in
        let h = Obs.Metrics.histogram m "lat" in
        List.iter (Obs.Metrics.observe h) vs;
        (match vs with
        | [] -> ()
        | v :: _ -> Obs.Metrics.set (Obs.Metrics.gauge m "last") (float_of_int v));
        m
      in
      let ab = build a in
      Obs.Metrics.merge ~into:ab (build b);
      let ba = build b in
      Obs.Metrics.merge ~into:ba (build a);
      String.equal (metrics_json ab) (metrics_json ba))

let qcheck_merge_percentiles_monotone =
  QCheck2.Test.make ~count:200
    ~name:"count preserved and p50 <= p90 <= p99 after merge"
    QCheck2.Gen.(pair gen_values gen_values)
    (fun (a, b) ->
      QCheck2.assume (a <> [] || b <> []);
      let build vs =
        let m = Obs.Metrics.create () in
        let h = Obs.Metrics.histogram m "lat" in
        List.iter (Obs.Metrics.observe h) vs;
        m
      in
      let m = build a in
      Obs.Metrics.merge ~into:m (build b);
      let h = Obs.Metrics.histogram m "lat" in
      let p q = Obs.Metrics.percentile h q in
      Obs.Metrics.count h = List.length a + List.length b
      && p 50. <= p 90.
      && p 90. <= p 99.
      && p 99. <= Obs.Metrics.hist_max h)

(* ------------------------------------------------------------------ *)
(* Indexed vs naive Shrinking checker                                   *)
(* ------------------------------------------------------------------ *)

(* Random histories, deliberately not constrained to be legal: random
   ids (duplicates, unknown ids), random values, random intervals — so
   every violation kind and hence every indexed-checker fallback path
   is exercised.  The property is exact list equality of the two
   checkers' output. *)
let gen_history =
  let open QCheck2.Gen in
  let* components = int_range 1 3 in
  let value = int_range 0 3 in
  let interval =
    let* inv = int_range 0 40 in
    let* len = int_range 0 12 in
    return (inv, inv + len)
  in
  let* initial = array_size (return components) value in
  let write =
    let* comp = int_range 0 (components - 1) in
    let* v = value in
    let* id = int_range 1 4 in
    let* inv, res = interval in
    return (comp, v, id, inv, res)
  in
  let read =
    let* values = array_size (return components) value in
    let* ids = array_size (return components) (int_range 0 4) in
    let* inv, res = interval in
    return (values, ids, inv, res)
  in
  let* writes = list_size (int_range 0 8) write in
  let* reads = list_size (int_range 0 6) read in
  let c = History.Snapshot_history.collector ~initial in
  List.iter
    (fun (comp, v, id, inv, res) ->
      History.Snapshot_history.record_write c ~proc:comp ~comp ~value:v ~id ~inv
        ~res)
    writes;
  List.iteri
    (fun j (values, ids, inv, res) ->
      History.Snapshot_history.record_read c ~proc:(100 + j) ~values ~ids ~inv
        ~res)
    reads;
  return (History.Snapshot_history.history c)

let qcheck_indexed_equals_naive =
  QCheck2.Test.make ~count:500
    ~name:"indexed Shrinking checker = naive checker (violations, in order)"
    gen_history
    (fun h ->
      History.Shrinking.check ~equal:Int.equal h
      = History.Shrinking.check_naive ~equal:Int.equal h)

(* On clean recorded histories both checkers must agree on emptiness
   (regression guard for the no-violation fast path). *)
let test_indexed_clean_history () =
  let open Csim in
  let env = Sim.create ~trace:false () in
  let mem = Memory.of_sim env in
  let init = [| 10; 20; 30 |] in
  let handle =
    Workload.Campaign.make_handle Workload.Campaign.Impl_anderson mem
      ~readers:2 ~init
  in
  let rec_ =
    Composite.Snapshot.record ~clock:(fun () -> Sim.now env) ~initial:init
      handle
  in
  let writer k () =
    for s = 1 to 3 do
      rec_.Composite.Snapshot.rupdate ~writer:k (((k + 1) * 100) + s)
    done
  in
  let reader j () =
    for _ = 1 to 3 do
      ignore (rec_.Composite.Snapshot.rscan ~reader:j)
    done
  in
  let procs =
    Array.init 5 (fun i -> if i < 3 then writer i else reader (i - 3))
  in
  let (_ : Sim.stats) = Sim.run env ~policy:(Schedule.Random 11) procs in
  let h = Composite.Snapshot.history rec_ in
  check bool "clean" true (History.Shrinking.check ~equal:Int.equal h = []);
  check bool "naive agrees" true
    (History.Shrinking.check_naive ~equal:Int.equal h = [])

let () =
  Alcotest.run "exec"
    [
      ( "pool",
        [
          Alcotest.test_case "map" `Quick test_pool_map;
          Alcotest.test_case "worker states" `Quick test_pool_worker_states;
          Alcotest.test_case "exception propagation" `Quick test_pool_exception;
          Alcotest.test_case "span recorder + chrome export" `Quick
            test_pool_recorder;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "campaign jobs=1 vs jobs=4" `Quick
            test_campaign_determinism;
          Alcotest.test_case "campaign pool spans" `Quick
            test_campaign_pool_spans;
          Alcotest.test_case "chaos jobs=1 vs jobs=3" `Quick
            test_chaos_determinism;
        ] );
      ( "metrics",
        Alcotest.test_case "snapshot order-stable" `Quick
          test_snapshot_order_stable
        :: List.map QCheck_alcotest.to_alcotest
             [
               qcheck_merge_is_union;
               qcheck_merge_commutes;
               qcheck_merge_percentiles_monotone;
             ] );
      ( "shrinking-index",
        Alcotest.test_case "clean recorded history" `Quick
          test_indexed_clean_history
        :: List.map QCheck_alcotest.to_alcotest [ qcheck_indexed_equals_naive ]
      );
    ]

(* The chaos layer: faulty-memory wrappers (lib/sim/faults.ml), the
   stall/resume + starvation machinery they ride on, and the chaos
   campaign with its counterexample minimizer (lib/workload/chaos.ml).

   The headline assertions mirror the robustness claim: on atomic
   memory the paper's constructions survive every process-fault
   profile (crash, stall — that is the theorem), while every
   memory-fault profile, and the deliberately unsafe double collect
   even on healthy memory, is caught by the Shrinking oracle — and the
   minimized counterexample replays deterministically. *)

open Csim

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Faulty cells over direct memory                                      *)
(* ------------------------------------------------------------------ *)

let wrap_one ?(seed = 1) injections =
  let mem, counters = Faults.wrap ~seed injections (Memory.direct ()) in
  (mem, counters)

let inj ?(target = Faults.All) kind = { Faults.kind; target }

let test_lost_write () =
  let mem, counters = wrap_one [ inj (Faults.Lost_write { prob = 1.0 }) ] in
  let c = mem.Memory.make ~name:"c" ~bits:8 0 in
  c.Memory.write 5;
  check int "write dropped" 0 (c.Memory.read ());
  check int "counted" 1 counters.Faults.lost;
  check int "total fired" 1 (Faults.fired counters)

let test_stuck_at () =
  let mem, counters = wrap_one [ inj (Faults.Stuck_at { after = 1 }) ] in
  let c = mem.Memory.make ~name:"c" ~bits:8 0 in
  c.Memory.write 1;
  check int "first write lands" 1 (c.Memory.read ());
  c.Memory.write 2;
  c.Memory.write 3;
  check int "then frozen" 1 (c.Memory.read ());
  check int "two frozen writes" 2 counters.Faults.frozen

let test_corrupt_read () =
  let mem, counters = wrap_one [ inj (Faults.Corrupt { prob = 1.0 }) ] in
  let c = mem.Memory.make ~name:"c" ~bits:8 7 in
  c.Memory.write 42;
  check int "read glitches to the initial value" 7 (c.Memory.read ());
  check int "peek sees the truth" 42 (c.Memory.peek ());
  check bool "counted" true (counters.Faults.corrupted > 0)

let test_stutter_reverts () =
  let mem, counters = wrap_one [ inj (Faults.Stutter { prob = 1.0 }) ] in
  let c = mem.Memory.make ~name:"c" ~bits:8 0 in
  c.Memory.write 1;
  (* The previous value (0) is re-delivered right after the write. *)
  check int "old write re-delivered late" 0 (c.Memory.read ());
  check int "counted" 1 counters.Faults.stuttered

let test_regular_weakening () =
  let mem, counters = wrap_one ~seed:3 [ inj (Faults.Regular { window = 2 }) ] in
  let c = mem.Memory.make ~name:"c" ~bits:8 0 in
  let ok = ref true in
  for v = 1 to 20 do
    c.Memory.write v;
    for _ = 1 to 3 do
      let r = c.Memory.read () in
      (* A read returns the current or the previous value, nothing else. *)
      if r <> v && r <> v - 1 then ok := false
    done
  done;
  check bool "reads are new-or-old only" true !ok;
  check bool "some reads were stale" true (counters.Faults.stale > 0)

let test_targeting () =
  let mem, counters =
    wrap_one
      [
        inj ~target:(Faults.Prefix "Y") (Faults.Lost_write { prob = 1.0 });
        inj ~target:(Faults.Exact "Z") (Faults.Corrupt { prob = 1.0 });
      ]
  in
  let y = mem.Memory.make ~name:"Y[0]" ~bits:8 0 in
  let z = mem.Memory.make ~name:"Z" ~bits:8 0 in
  let z2 = mem.Memory.make ~name:"Z2" ~bits:8 0 in
  y.Memory.write 1;
  z.Memory.write 1;
  z2.Memory.write 1;
  check int "prefix match loses the write" 0 (y.Memory.read ());
  check int "exact match corrupts the read" 0 (z.Memory.read ());
  check int "near-miss name untouched" 1 (z2.Memory.read ());
  check int "fired" 2 (Faults.fired counters)

let test_healthy_passthrough () =
  let mem, counters = wrap_one [] in
  let c = mem.Memory.make ~name:"c" ~bits:8 0 in
  c.Memory.write 9;
  check int "no-injection wrapper is transparent" 9 (c.Memory.read ());
  check int "nothing fired" 0 (Faults.fired counters)

let test_spec_roundtrip () =
  List.iter
    (fun i ->
      match Faults.injection_of_string (Faults.injection_to_string i) with
      | Ok i' ->
        check bool
          ("round-trips: " ^ Faults.injection_to_string i)
          true (i = i')
      | Error e -> Alcotest.fail e)
    [
      inj (Faults.Lost_write { prob = 0.25 });
      inj (Faults.Stuck_at { after = 3 });
      inj ~target:(Faults.Prefix "Y") (Faults.Stutter { prob = 0.5 });
      inj ~target:(Faults.Exact "Z[1]") (Faults.Regular { window = 2 });
      inj (Faults.Corrupt { prob = 0.05 });
    ];
  List.iter
    (fun s ->
      match Faults.injection_of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail ("accepted bad spec " ^ s))
    [ "lost"; "lost:2.0"; "stuck:-1"; "frob:0.1"; "regular:x" ]

(* ------------------------------------------------------------------ *)
(* Faults inside the simulator                                          *)
(* ------------------------------------------------------------------ *)

let test_faults_deterministic_in_sim () =
  (* Same schedule seed + same fault seed = same trace and counters. *)
  let run () =
    let env = Sim.create () in
    let mem, counters =
      Faults.wrap ~seed:5
        [ inj (Faults.Lost_write { prob = 0.3 }) ]
        (Memory.of_sim env)
    in
    let c = mem.Memory.make ~name:"c" ~bits:8 0 in
    let out = ref [] in
    let writer () =
      for v = 1 to 10 do
        c.Memory.write v
      done
    in
    let reader () =
      for _ = 1 to 10 do
        out := c.Memory.read () :: !out
      done
    in
    let (_ : Sim.stats) =
      Sim.run env ~policy:(Schedule.Random 11) [| writer; reader |]
    in
    (!out, counters.Faults.lost)
  in
  let a = run () and b = run () in
  check bool "identical replays" true (a = b);
  check bool "faults actually fired" true (snd a > 0)

(* ------------------------------------------------------------------ *)
(* The campaign: correct implementations survive process faults         *)
(* ------------------------------------------------------------------ *)

let process_fault_profiles =
  List.filter
    (fun p -> not (Workload.Chaos.faulty_memory p))
    (Workload.Chaos.default_profiles ~components:2 ~readers:2)

let memory_fault_profiles =
  List.filter Workload.Chaos.faulty_memory
    (Workload.Chaos.default_profiles ~components:2 ~readers:2)

let test_profile_taxonomy () =
  (* "none", three crash variants, three stall variants / five memory
     fault kinds — keep the split honest if profiles are added. *)
  check bool "several process-fault profiles" true
    (List.length process_fault_profiles >= 7);
  check int "one profile per fault kind" 5 (List.length memory_fault_profiles);
  check bool "none profile is a process-fault profile" true
    (List.exists (fun (p : Workload.Chaos.profile) -> p.label = "none")
       process_fault_profiles)

let test_correct_impls_survive_process_faults () =
  (* The acceptance matrix: anderson and afek, all-atomic memory, every
     fault-free and crash/stall config — zero violations, zero stuck. *)
  let r =
    Workload.Chaos.run
      {
        Workload.Chaos.default with
        impls = [ Workload.Campaign.Impl_anderson; Workload.Campaign.Impl_afek ];
        profiles = process_fault_profiles;
        seeds = 6;
        minimize_budget = 0;
      }
  in
  check bool "ran the full matrix" true (r.Workload.Chaos.total_runs >= 84);
  check int "zero linearizability violations" 0 r.Workload.Chaos.total_flagged;
  check int "zero stuck runs" 0 r.Workload.Chaos.total_stuck

(* ------------------------------------------------------------------ *)
(* The campaign: violations are caught, minimized, and replayable       *)
(* ------------------------------------------------------------------ *)

let flagged_cx ~impl ~profiles ~seeds =
  let r =
    Workload.Chaos.run
      { Workload.Chaos.default with impls = [ impl ]; profiles; seeds }
  in
  check bool "campaign flags at least one run" true
    (r.Workload.Chaos.total_flagged > 0);
  let cell =
    List.find
      (fun (c : Workload.Chaos.cell) -> c.counterexample <> None)
      r.Workload.Chaos.cells
  in
  Option.get cell.Workload.Chaos.counterexample

let violations_of = function
  | Workload.Chaos.Flagged vs ->
    Format.asprintf "%a"
      (Format.pp_print_list History.Shrinking.pp_violation)
      vs
  | Workload.Chaos.Passed -> Alcotest.fail "replay passed: not reproduced"
  | Workload.Chaos.Stuck_run m -> Alcotest.fail ("replay stuck: " ^ m)
  | Workload.Chaos.Diverged m -> Alcotest.fail ("replay diverged: " ^ m)

let assert_deterministic_replay (cx : Workload.Chaos.counterexample) =
  let v1 =
    violations_of
      (Workload.Chaos.replay cx.Workload.Chaos.cx_case
         ~script:cx.Workload.Chaos.cx_script)
  in
  let v2 =
    violations_of
      (Workload.Chaos.replay cx.Workload.Chaos.cx_case
         ~script:cx.Workload.Chaos.cx_script)
  in
  check bool "violations nonempty" true (String.length v1 > 0);
  check bool "identical violations on re-replay" true (String.equal v1 v2);
  check bool "minimized schedule no longer than the original" true
    (Array.length cx.Workload.Chaos.cx_script
    <= cx.Workload.Chaos.cx_original_entries)

let test_unsafe_collect_caught_minimized () =
  (* The negative control: no injected faults at all, yet the unsafe
     double collect must be flagged, and its minimized counterexample
     must replay deterministically via Schedule.Scripted. *)
  let cx =
    flagged_cx ~impl:Workload.Campaign.Impl_unsafe_collect
      ~profiles:[ Workload.Chaos.profile "none" ]
      ~seeds:10
  in
  assert_deterministic_replay cx;
  check int "nothing to shrink in an empty fault set" 0
    cx.Workload.Chaos.cx_original_elements

let test_lost_writes_caught_minimized () =
  (* Faulty memory under the paper's own construction: the oracle must
     detect that the atomicity assumption was broken. *)
  let profiles =
    List.filter
      (fun (p : Workload.Chaos.profile) -> p.label = "lost-writes")
      memory_fault_profiles
  in
  check int "profile exists" 1 (List.length profiles);
  let cx =
    flagged_cx ~impl:Workload.Campaign.Impl_anderson ~profiles ~seeds:10
  in
  assert_deterministic_replay cx

let test_regular_weakening_caught_minimized () =
  let profiles =
    List.filter
      (fun (p : Workload.Chaos.profile) -> p.label = "regular-weakening")
      memory_fault_profiles
  in
  let cx =
    flagged_cx ~impl:Workload.Campaign.Impl_anderson ~profiles ~seeds:10
  in
  assert_deterministic_replay cx

let test_minimize_rejects_passing_case () =
  let case =
    {
      Workload.Chaos.impl = Workload.Campaign.Impl_anderson;
      prof = Workload.Chaos.profile "none";
      components = 2;
      readers = 1;
      writes_per_writer = 1;
      scans_per_reader = 1;
      fault_seed = 1;
    }
  in
  let raised =
    try
      ignore (Workload.Chaos.minimize ~budget:100 case ~script:[||]);
      false
    with Invalid_argument _ -> true
  in
  check bool "minimizing a passing case is refused" true raised

let test_cx_script_roundtrip () =
  let cx =
    flagged_cx ~impl:Workload.Campaign.Impl_anderson
      ~profiles:
        (List.filter
           (fun (p : Workload.Chaos.profile) -> p.label = "lost-writes")
           memory_fault_profiles)
      ~seeds:10
  in
  let s = Workload.Chaos.cx_to_string cx in
  match Workload.Chaos.cx_of_string s with
  | Error e -> Alcotest.fail e
  | Ok cx' ->
    check bool "serialized form round-trips" true
      (String.equal s (Workload.Chaos.cx_to_string cx'));
    (* The parsed counterexample reproduces the same violations. *)
    let v =
      violations_of
        (Workload.Chaos.replay cx'.Workload.Chaos.cx_case
           ~script:cx'.Workload.Chaos.cx_script)
    in
    let v0 =
      violations_of
        (Workload.Chaos.replay cx.Workload.Chaos.cx_case
           ~script:cx.Workload.Chaos.cx_script)
    in
    check bool "parsed replay matches" true (String.equal v v0)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "chaos"
    [
      ( "faulty cells",
        [
          Alcotest.test_case "lost write" `Quick test_lost_write;
          Alcotest.test_case "stuck-at" `Quick test_stuck_at;
          Alcotest.test_case "corrupt read" `Quick test_corrupt_read;
          Alcotest.test_case "stutter reverts" `Quick test_stutter_reverts;
          Alcotest.test_case "regular weakening" `Quick test_regular_weakening;
          Alcotest.test_case "targeting" `Quick test_targeting;
          Alcotest.test_case "healthy passthrough" `Quick
            test_healthy_passthrough;
          Alcotest.test_case "spec round-trip" `Quick test_spec_roundtrip;
          Alcotest.test_case "deterministic in the simulator" `Quick
            test_faults_deterministic_in_sim;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "profile taxonomy" `Quick test_profile_taxonomy;
          Alcotest.test_case
            "anderson & afek survive every process-fault profile" `Quick
            test_correct_impls_survive_process_faults;
          Alcotest.test_case "unsafe collect caught & minimized" `Quick
            test_unsafe_collect_caught_minimized;
          Alcotest.test_case "lost writes caught & minimized" `Quick
            test_lost_writes_caught_minimized;
          Alcotest.test_case "regular weakening caught & minimized" `Quick
            test_regular_weakening_caught_minimized;
          Alcotest.test_case "minimizer refuses passing cases" `Quick
            test_minimize_rejects_passing_case;
          Alcotest.test_case "counterexample script round-trip" `Quick
            test_cx_script_roundtrip;
        ] );
    ]

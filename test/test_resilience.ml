(* Halting-failure resilience (the paper's Section 1 claim) and the
   supporting sim crash-injection + trace-rendering machinery. *)

open Csim

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Crash injection in the simulator                                     *)
(* ------------------------------------------------------------------ *)

let test_crash_before_first_event () =
  let env = Sim.create ~trace:false () in
  let c = Sim.make_cell env "c" 0 in
  let p0 () = Sim.write c 1 in
  let p1 () = Sim.write c 2 in
  let stats = Sim.run env ~crashes:[ (0, 0) ] [| p0; p1 |] in
  check int "only the survivor's event" 1 stats.Sim.steps;
  check int "survivor's value stands" 2 (Cell.peek c)

let test_crash_mid_sequence () =
  let env = Sim.create ~trace:false () in
  let c = Sim.make_cell env "c" 0 in
  let victim () =
    for i = 1 to 10 do
      Sim.write c i
    done
  in
  let stats = Sim.run env ~crashes:[ (0, 3) ] [| victim |] in
  check int "exactly three events before the crash" 3 stats.Sim.steps;
  check int "last write visible" 3 (Cell.peek c)

let test_crash_unblocks_busy_wait () =
  (* A spinner that would block forever terminates the run once it is
     the only process left and it is crashed. *)
  let env = Sim.create ~trace:false () in
  let c = Sim.make_cell env "c" 0 in
  let spinner () =
    while Sim.read c = 0 do
      ()
    done
  in
  let worker () = Sim.write c 0 in
  let stats =
    Sim.run env ~max_steps:1_000 ~crashes:[ (0, 5) ] [| spinner; worker |]
  in
  check bool "run terminated" true (stats.Sim.steps <= 6)

let test_crash_multiple () =
  let env = Sim.create ~trace:false () in
  let c = Sim.make_cell env "c" 0 in
  let p k () = Sim.write c k in
  let stats =
    Sim.run env ~crashes:[ (0, 0); (2, 0) ] [| p 1; p 2; p 3 |]
  in
  check int "one survivor" 1 stats.Sim.steps;
  check int "survivor is process 1" 2 (Cell.peek c)

let raises_invalid f =
  match f () with
  | exception Invalid_argument _ -> true
  | _ -> false

let test_fault_input_validation () =
  let run ?crashes ?stalls () =
    let env = Sim.create ~trace:false () in
    let c = Sim.make_cell env "c" 0 in
    ignore
      (Sim.run env ?crashes ?stalls
         [| (fun () -> Sim.write c 1); (fun () -> Sim.write c 2) |])
  in
  List.iter
    (fun (label, f) -> check bool label true (raises_invalid f))
    [
      ("crash id out of range", fun () -> run ~crashes:[ (2, 0) ] ());
      ("negative crash id", fun () -> run ~crashes:[ (-1, 0) ] ());
      ("negative crash point", fun () -> run ~crashes:[ (0, -1) ] ());
      ( "duplicate crash entries",
        fun () -> run ~crashes:[ (0, 1); (0, 2) ] () );
      ("stall id out of range", fun () -> run ~stalls:[ (5, 0, 1) ] ());
      ("negative stall point", fun () -> run ~stalls:[ (0, -1, 1) ] ());
      ("negative stall duration", fun () -> run ~stalls:[ (0, 1, -1) ] ());
      ( "duplicate stall entries",
        fun () -> run ~stalls:[ (1, 0, 1); (1, 2, 2) ] () );
    ];
  (* Valid combinations are accepted. *)
  run ~crashes:[ (0, 0) ] ~stalls:[ (1, 0, 1) ] ()

(* ------------------------------------------------------------------ *)
(* Stall/resume injection                                               *)
(* ------------------------------------------------------------------ *)

let test_stall_defers_then_resumes () =
  (* p0 stalls after its first event for 3 global events; round-robin
     fills the window with p1's work, then p0 resumes and finishes. *)
  let env = Sim.create () in
  let a = Sim.make_cell env "a" 0 in
  let b = Sim.make_cell env "b" 0 in
  let p0 () =
    Sim.write a 1;
    Sim.write a 2
  in
  let p1 () =
    for i = 1 to 4 do
      Sim.write b i
    done
  in
  let stats = Sim.run env ~stalls:[ (0, 1, 3) ] [| p0; p1 |] in
  check int "all events delivered" 6 stats.Sim.steps;
  check int "p0 finished" 2 (Cell.peek a);
  let procs =
    List.map (fun (e : Trace.event) -> e.proc) (Trace.events (Sim.trace env))
  in
  check (Alcotest.list int) "p0 frozen for exactly the window"
    [ 0; 1; 1; 1; 0; 1 ] procs

let test_stall_zero_duration_is_noop () =
  let run stalls =
    let env = Sim.create () in
    let c = Sim.make_cell env "c" 0 in
    let p0 () =
      Sim.write c 1;
      Sim.write c 2
    in
    let p1 () = Sim.write c 3 in
    ignore (Sim.run env ~stalls [| p0; p1 |]);
    List.map (fun (e : Trace.event) -> e.proc) (Trace.events (Sim.trace env))
  in
  check bool "dur = 0 behaves like no stall" true
    (run [ (0, 1, 0) ] = run [])

let test_all_stalled_releases_soonest () =
  (* Both processes stalled before their first event with long windows:
     global time only advances through events, so the stall due to
     resume soonest (p1, window 500 < 1000) must be released early. *)
  let env = Sim.create () in
  let a = Sim.make_cell env "a" 0 in
  let b = Sim.make_cell env "b" 0 in
  let p0 () = Sim.write a 1 in
  let p1 () = Sim.write b 1 in
  let stats =
    Sim.run env ~stalls:[ (0, 0, 1000); (1, 0, 500) ] [| p0; p1 |]
  in
  check int "run completed" 2 stats.Sim.steps;
  let procs =
    List.map (fun (e : Trace.event) -> e.proc) (Trace.events (Sim.trace env))
  in
  check (Alcotest.list int) "soonest-due stall released first" [ 1; 0 ] procs

let test_stall_then_crash_interaction () =
  (* A stalled process can still be crashed at a later event count; a
     crashed process never resumes. *)
  let env = Sim.create ~trace:false () in
  let c = Sim.make_cell env "c" 0 in
  let victim () =
    for i = 1 to 10 do
      Sim.write c i
    done
  in
  let other () = Sim.write c 99 in
  let stats =
    Sim.run env ~stalls:[ (0, 2, 5) ] ~crashes:[ (0, 4) ] [| victim; other |]
  in
  (* victim: 2 events, stall, resumes, 2 more events, crash; other: 1. *)
  check int "events before the crash plus the survivor's" 5 stats.Sim.steps;
  check int "victim's fourth write was its last" 4 (Cell.peek c)

(* ------------------------------------------------------------------ *)
(* Dangling-write completion                                            *)
(* ------------------------------------------------------------------ *)

let mk_write ~comp ~id : int History.Snapshot_history.write =
  { wproc = comp; comp; value = ((comp + 1) * 1000) + id; id; winv = 0; wres = 1 }

let mk_read ids : int History.Snapshot_history.read =
  { rproc = 9; values = Array.map (fun _ -> 0) ids; ids; rinv = 0; rres = 1 }

let mk_hist ~components ~writes ~reads : int History.Snapshot_history.t =
  { components; initial = Array.make components 0; writes; reads }

let test_complete_dangling_boundary () =
  (* A read returned id exactly one past the last recorded write: that
     is the signature of a write left dangling by a crash, and it is
     reconstructed. *)
  let h =
    mk_hist ~components:2
      ~writes:[ mk_write ~comp:0 ~id:1 ]
      ~reads:[ mk_read [| 2; 0 |] ]
  in
  let h' = Workload.Resilience.complete_dangling ~components:2 h in
  check int "one write added" 2 (List.length h'.History.Snapshot_history.writes);
  let added =
    List.find
      (fun (w : int History.Snapshot_history.write) -> w.wproc = -2)
      h'.History.Snapshot_history.writes
  in
  check int "component 0" 0 added.comp;
  check int "id one past the recorded maximum" 2 added.id;
  check int "workload value convention" 1002 added.value;
  check bool "maximal interval" true (added.winv = 0 && added.wres = max_int)

let test_complete_dangling_noop_when_equal () =
  let h =
    mk_hist ~components:2
      ~writes:[ mk_write ~comp:0 ~id:1 ]
      ~reads:[ mk_read [| 1; 0 |] ]
  in
  let h' = Workload.Resilience.complete_dangling ~components:2 h in
  check int "nothing added" 1 (List.length h'.History.Snapshot_history.writes)

let test_complete_dangling_noop_on_gap () =
  (* A gap of two or more cannot come from a single dangling write; the
     history is left alone so the checker flags it. *)
  let h =
    mk_hist ~components:2
      ~writes:[ mk_write ~comp:0 ~id:1 ]
      ~reads:[ mk_read [| 3; 0 |] ]
  in
  let h' = Workload.Resilience.complete_dangling ~components:2 h in
  check int "nothing added" 1 (List.length h'.History.Snapshot_history.writes)

let test_complete_dangling_multi_component () =
  let h =
    mk_hist ~components:2
      ~writes:[ mk_write ~comp:0 ~id:2; mk_write ~comp:1 ~id:1 ]
      ~reads:[ mk_read [| 3; 2 |] ]
  in
  let h' = Workload.Resilience.complete_dangling ~components:2 h in
  check int "both components completed" 4
    (List.length h'.History.Snapshot_history.writes);
  let added k =
    List.find
      (fun (w : int History.Snapshot_history.write) ->
        w.wproc = -2 && w.comp = k)
      h'.History.Snapshot_history.writes
  in
  check int "comp 0 id" 3 (added 0).id;
  check int "comp 1 id" 2 (added 1).id

let test_complete_dangling_no_recorded_writes () =
  (* max recorded id is 0 (only virtual initial writes): a read of id 1
     is the crash-before-any-completion case. *)
  let h =
    mk_hist ~components:2 ~writes:[] ~reads:[ mk_read [| 1; 1 |] ]
  in
  let h' = Workload.Resilience.complete_dangling ~components:2 h in
  check int "both first writes reconstructed" 2
    (List.length h'.History.Snapshot_history.writes);
  List.iter
    (fun (w : int History.Snapshot_history.write) ->
      check int "id 1" 1 w.id;
      check int "value convention" (((w.comp + 1) * 1000) + 1) w.value)
    h'.History.Snapshot_history.writes

(* ------------------------------------------------------------------ *)
(* The resilience sweep                                                 *)
(* ------------------------------------------------------------------ *)

let clean (r : Workload.Resilience.report) =
  check int "no blocked survivors" 0 r.Workload.Resilience.blocked;
  check int "no linearizability violations" 0
    r.Workload.Resilience.not_linearizable;
  check bool "survivors did real work" true
    (r.Workload.Resilience.survivor_ops > 0)

let test_sweep_default () = clean (Workload.Resilience.run ~seed:1 ())

let test_sweep_three_components () =
  clean
    (Workload.Resilience.run ~components:3 ~readers:2 ~max_crash_point:18
       ~seed:100 ())

let test_sweep_reader_victims () =
  clean
    (Workload.Resilience.run ~components:2 ~readers:3 ~max_crash_point:10
       ~seed:7 ())

let test_crashed_writer0_between_publications () =
  (* The sharpest adversary: Writer 0 frozen exactly between its two
     Y[0] writes (statements 3 and 7), forever.  Readers overlapping the
     frozen half-write must still return consistent snapshots.  Writer 0
     at C=2, R=1 performs Z-read, Y0-write, base-read, Y0-write: crash
     after 2 events = after statement 3. *)
  let env = Sim.create ~trace:false () in
  let mem = Memory.of_sim env in
  let init = [| 5; 6 |] in
  let reg = Composite.Anderson.create mem ~readers:2 ~bits_per_value:16 ~init in
  let rec_ =
    Composite.Snapshot.record
      ~clock:(fun () -> Sim.now env)
      ~initial:init
      (Composite.Anderson.handle reg)
  in
  let writer0 () = rec_.Composite.Snapshot.rupdate ~writer:0 99 in
  let writer1 () =
    for s = 1 to 3 do
      rec_.Composite.Snapshot.rupdate ~writer:1 (100 + s)
    done
  in
  let reader j () =
    for _ = 1 to 4 do
      ignore (rec_.Composite.Snapshot.rscan ~reader:j)
    done
  in
  let (_ : Sim.stats) =
    Sim.run env ~crashes:[ (0, 2) ] [| writer0; writer1; reader 0; reader 1 |]
  in
  let h = Composite.Snapshot.history rec_ in
  (* Writer 0's op never completed: 3 recorded writes (writer 1's), 8
     reads. *)
  check int "writer 1's ops recorded" 3
    (List.length h.History.Snapshot_history.writes);
  check int "all scans completed" 8
    (List.length h.History.Snapshot_history.reads);
  (* Complete the dangling write if visible, then check. *)
  let visible =
    List.exists
      (fun (r : int History.Snapshot_history.read) -> r.ids.(0) = 1)
      h.History.Snapshot_history.reads
  in
  let h =
    if visible then
      {
        h with
        History.Snapshot_history.writes =
          h.History.Snapshot_history.writes
          @ [
              {
                History.Snapshot_history.wproc = -2;
                comp = 0;
                value = 99;
                id = 1;
                winv = 0;
                wres = max_int;
              };
            ];
      }
    else h
  in
  check bool "history linearizable around the frozen writer" true
    (History.Shrinking.conditions_hold ~equal:Int.equal h)

(* ------------------------------------------------------------------ *)
(* Trace rendering                                                      *)
(* ------------------------------------------------------------------ *)

let test_timeline_shape () =
  let env = Sim.create () in
  let c = Sim.make_cell env "c" 0 in
  let p0 () =
    Sim.write c 1;
    ignore (Sim.read c)
  in
  let p1 () = ignore (Sim.read c) in
  let (_ : Sim.stats) =
    Sim.run env
      ~policy:(Schedule.Scripted ([| 0; 1; 0 |], Schedule.Round_robin))
      [| p0; p1 |]
  in
  let art = Render.timeline (Sim.trace env) in
  let lines = String.split_on_char '\n' (String.trim art) in
  check int "two rows" 2 (List.length lines);
  (match lines with
  | [ row0; row1 ] ->
    check bool "p0 row is W-R" true
      (String.length row0 >= 3
      && String.sub row0 (String.length row0 - 3) 3 = "W-R");
    check bool "p1 row has R in the middle" true
      (String.sub row1 (String.length row1 - 3) 3 = "-R-")
  | _ -> Alcotest.fail "expected two rows");
  let legend = Render.legend (Sim.trace env) in
  check int "legend has three lines" 3
    (List.length (String.split_on_char '\n' (String.trim legend)))

let test_timeline_truncation () =
  let env = Sim.create () in
  let c = Sim.make_cell env "c" 0 in
  let p () =
    for _ = 1 to 50 do
      Sim.write c 1
    done
  in
  let (_ : Sim.stats) = Sim.run env [| p |] in
  let art = Render.timeline ~max_events:10 (Sim.trace env) in
  check bool "ellipsis present" true
    (String.length art > 3
    && String.sub (String.trim art) (String.length (String.trim art) - 3) 3
       = "...")

let test_scenario_timelines_nonempty () =
  let o = Workload.Scenario.fig4a () in
  check bool "fig4a timeline rendered" true
    (String.length o.Workload.Scenario.timeline > 20)

(* ------------------------------------------------------------------ *)
(* Properties                                                           *)
(* ------------------------------------------------------------------ *)

let qcheck_multi_crash =
  (* Several victims with random crash points: the remaining processes
     still finish and completed operations stay consistent. *)
  QCheck2.Test.make ~count:40 ~name:"multiple random crashes tolerated"
    QCheck2.Gen.(
      triple (int_range 0 1_000_000)
        (list_size (int_range 1 3) (pair (int_range 0 4) (int_range 0 10)))
        (pair (int_range 2 3) (int_range 1 2)))
    (fun (seed, crashes, (components, readers)) ->
      let env = Sim.create ~trace:false () in
      let mem = Memory.of_sim env in
      let init = Array.init components (fun k -> k) in
      let reg =
        Composite.Anderson.create mem ~readers ~bits_per_value:16 ~init
      in
      let rec_ =
        Composite.Snapshot.record
          ~clock:(fun () -> Sim.now env)
          ~initial:init
          (Composite.Anderson.handle reg)
      in
      let writer k () =
        for s = 1 to 2 do
          rec_.Composite.Snapshot.rupdate ~writer:k (((k + 1) * 1000) + s)
        done
      in
      let reader j () =
        for _ = 1 to 2 do
          ignore (rec_.Composite.Snapshot.rscan ~reader:j)
        done
      in
      let nprocs = components + readers in
      let crashes = List.filter (fun (p, _) -> p < nprocs) crashes in
      (* [Sim.run] rejects duplicate crash entries: keep the earliest
         crash point per process. *)
      let crashes =
        let rec dedup = function
          | (p, a) :: (q, b) :: rest when p = q -> dedup ((p, min a b) :: rest)
          | x :: rest -> x :: dedup rest
          | [] -> []
        in
        dedup (List.sort compare crashes)
      in
      let procs =
        Array.init nprocs (fun p ->
            if p < components then writer p else reader (p - components))
      in
      match Sim.run env ~policy:(Schedule.Random seed) ~crashes procs with
      | exception Sim.Stuck _ -> false
      | (_ : Sim.stats) ->
        (* Crashed writers' pending Writes may be visible; only require
           that the recorded reads are mutually consistent (Read
           Precedence) — full Integrity needs completion, which the
           dedicated sweep covers. *)
        let h = Composite.Snapshot.history rec_ in
        let violations = History.Shrinking.check ~equal:Int.equal h in
        List.for_all
          (function
            | History.Shrinking.Integrity _ -> true (* pending write *)
            | History.Shrinking.Read_precedence _
            | History.Shrinking.Write_precedence _
            | History.Shrinking.Proximity_future _
            | History.Shrinking.Proximity_overwritten _
            | History.Shrinking.Uniqueness_duplicate _
            | History.Shrinking.Uniqueness_order _ ->
              false)
          violations)

let () =
  Alcotest.run "resilience"
    [
      ( "crash injection",
        [
          Alcotest.test_case "crash before first event" `Quick
            test_crash_before_first_event;
          Alcotest.test_case "crash mid-sequence" `Quick test_crash_mid_sequence;
          Alcotest.test_case "crash unblocks busy wait" `Quick
            test_crash_unblocks_busy_wait;
          Alcotest.test_case "multiple crashes" `Quick test_crash_multiple;
          Alcotest.test_case "fault input validation" `Quick
            test_fault_input_validation;
        ] );
      ( "stall injection",
        [
          Alcotest.test_case "stall defers then resumes" `Quick
            test_stall_defers_then_resumes;
          Alcotest.test_case "zero duration is a no-op" `Quick
            test_stall_zero_duration_is_noop;
          Alcotest.test_case "all stalled releases soonest" `Quick
            test_all_stalled_releases_soonest;
          Alcotest.test_case "stall then crash" `Quick
            test_stall_then_crash_interaction;
        ] );
      ( "dangling-write completion",
        [
          Alcotest.test_case "boundary: max_read = max_recorded + 1" `Quick
            test_complete_dangling_boundary;
          Alcotest.test_case "no-op when ids agree" `Quick
            test_complete_dangling_noop_when_equal;
          Alcotest.test_case "no-op on a gap of two" `Quick
            test_complete_dangling_noop_on_gap;
          Alcotest.test_case "multiple components at once" `Quick
            test_complete_dangling_multi_component;
          Alcotest.test_case "no recorded writes at all" `Quick
            test_complete_dangling_no_recorded_writes;
        ] );
      ( "sweeps",
        [
          Alcotest.test_case "default" `Quick test_sweep_default;
          Alcotest.test_case "three components" `Quick
            test_sweep_three_components;
          Alcotest.test_case "reader victims" `Quick test_sweep_reader_victims;
          Alcotest.test_case "writer0 frozen between publications" `Quick
            test_crashed_writer0_between_publications;
        ] );
      ( "rendering",
        [
          Alcotest.test_case "timeline shape" `Quick test_timeline_shape;
          Alcotest.test_case "truncation" `Quick test_timeline_truncation;
          Alcotest.test_case "scenario timelines" `Quick
            test_scenario_timelines_nonempty;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest qcheck_multi_crash ]);
    ]

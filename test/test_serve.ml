(* Tests for the snapshot serving layer (lib/serve) and its campaign
   wrapper: exact coalesce/cache accounting in manual-drain mode,
   linearizability of the sharded + cached service under real domains
   (Shrinking checker and, where feasible, the generic oracle), and the
   validation-disabled mutant being caught.  Also covers the unified
   Backend registry and the Multi_writer unified handle (the API
   satellites of the same change). *)

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* ---------------------------------------------------------------- *)
(* Shape and argument validation                                     *)
(* ---------------------------------------------------------------- *)

let test_partition () =
  (* 5 components over 3 shards: contiguous slices of sizes 2/2/1. *)
  let srv = Serve.create ~shards:3 ~readers:1 ~init:[| 0; 1; 2; 3; 4 |] () in
  check int "components" 5 (Serve.components srv);
  check int "shards" 3 (Serve.shards srv);
  check int "readers" 1 (Serve.readers srv);
  let owners = List.init 5 (Serve.shard_of srv) in
  check (Alcotest.list int) "contiguous partition" [ 0; 0; 1; 1; 2 ] owners;
  (* Slice sizes differ by at most one for any shape. *)
  List.iter
    (fun (c, s) ->
      let srv = Serve.create ~shards:s ~readers:1 ~init:(Array.make c 0) () in
      let sizes = Array.make s 0 in
      for k = 0 to c - 1 do
        let o = Serve.shard_of srv k in
        sizes.(o) <- sizes.(o) + 1
      done;
      let mn = Array.fold_left min max_int sizes in
      let mx = Array.fold_left max 0 sizes in
      check bool
        (Printf.sprintf "balanced C=%d S=%d" c s)
        true
        (mx - mn <= 1 && Array.for_all (fun n -> n >= 1) sizes))
    [ (1, 1); (4, 2); (7, 3); (8, 8); (9, 4) ]

let test_create_validation () =
  let rejects f = try ignore (f ()); false with Invalid_argument _ -> true in
  check bool "shards = 0" true
    (rejects (fun () -> Serve.create ~shards:0 ~readers:1 ~init:[| 0 |] ()));
  check bool "shards > C" true
    (rejects (fun () -> Serve.create ~shards:3 ~readers:1 ~init:[| 0; 1 |] ()));
  check bool "readers = 0" true
    (rejects (fun () -> Serve.create ~shards:1 ~readers:0 ~init:[| 0 |] ()));
  check bool "empty init" true
    (rejects (fun () -> Serve.create ~shards:1 ~readers:1 ~init:[||] ()))

let test_lifecycle_guards () =
  let srv = Serve.create ~shards:2 ~readers:1 ~init:[| 0; 0 |] () in
  Serve.start srv;
  check bool "double start rejected" true
    (try Serve.start srv; false with Invalid_argument _ -> true);
  check bool "manual drain rejected while running" true
    (try Serve.drain srv; false with Invalid_argument _ -> true);
  Serve.shutdown srv

(* ---------------------------------------------------------------- *)
(* Coalescing accounting (manual drain: fully deterministic)         *)
(* ---------------------------------------------------------------- *)

let test_coalesce_counters () =
  let srv = Serve.create ~shards:2 ~readers:1 ~init:[| 0; 0; 0 |] () in
  (* Two posts to component 0 before any drain: the second supersedes
     the first in the mailbox, so exactly one is coalesced and one
     applied. *)
  Serve.post srv ~writer:0 7;
  Serve.post srv ~writer:0 8;
  Serve.post srv ~writer:2 9;
  let st = Serve.stats srv in
  check int "posted before drain" 3 st.Serve.posted;
  check int "pending before drain" 2 st.Serve.pending;
  check int "applied before drain" 0 st.Serve.applied;
  Serve.drain srv;
  let st = Serve.stats srv in
  check int "posted" 3 st.Serve.posted;
  check int "coalesced" 1 st.Serve.coalesced;
  check int "applied" 2 st.Serve.applied;
  check int "pending" 0 st.Serve.pending;
  (* One publish per shard that had work: components 0 and 2 live on
     different shards of the 2-shard partition. *)
  check int "publishes" 2 st.Serve.publishes;
  check (Alcotest.array int) "latest values win" [| 8; 0; 9 |]
    (Serve.scan srv ~reader:0);
  (* Per-writer split agrees with the totals. *)
  let w0 = Serve.writer_stats srv ~writer:0 in
  check int "w0 posted" 2 w0.Serve.w_posted;
  check int "w0 coalesced" 1 w0.Serve.w_coalesced;
  check int "w0 applied" 1 w0.Serve.w_applied

let test_accounting_invariant_under_domains () =
  (* posted = applied + coalesced + pending at every quiescent point,
     including after a real concurrent run (pending = 0 after
     shutdown's final drain). *)
  let srv = Serve.create ~shards:2 ~readers:1 ~init:[| 0; 0; 0; 0 |] () in
  Serve.start srv;
  let writers =
    List.init 4 (fun k ->
        Domain.spawn (fun () ->
            for s = 1 to 100 do
              Serve.post srv ~writer:k ((k * 1000) + s)
            done;
            ignore (Serve.update srv ~writer:k ((k * 1000) + 999))))
  in
  List.iter Domain.join writers;
  Serve.shutdown srv;
  let st = Serve.stats srv in
  check int "all posts accepted" 404 st.Serve.posted;
  check int "nothing left pending" 0 st.Serve.pending;
  check int "posted = applied + coalesced" st.Serve.posted
    (st.Serve.applied + st.Serve.coalesced);
  (* The closing synchronous update makes the final state the last
     write of each component. *)
  check (Alcotest.array int) "final state"
    [| 999; 1999; 2999; 3999 |]
    (Serve.scan srv ~reader:0)

(* ---------------------------------------------------------------- *)
(* Cache accounting (manual drain)                                   *)
(* ---------------------------------------------------------------- *)

let test_cache_hit_miss_stale () =
  (* combine:false pins the pre-combining baseline accounting (with
     scan-sharing on, reader 1's first scan would adopt the shared slot
     and never reach the outer register). *)
  let srv =
    Serve.create ~combine:false ~shards:2 ~readers:2 ~init:[| 1; 2; 3 |] ()
  in
  check (Alcotest.array int) "first scan (miss)" [| 1; 2; 3 |]
    (Serve.scan srv ~reader:0);
  check (Alcotest.array int) "second scan (hit)" [| 1; 2; 3 |]
    (Serve.scan srv ~reader:0);
  check (Alcotest.array int) "third scan (hit)" [| 1; 2; 3 |]
    (Serve.scan srv ~reader:0);
  Serve.post srv ~writer:1 20;
  Serve.drain srv;
  check (Alcotest.array int) "post-drain scan (stale)" [| 1; 20; 3 |]
    (Serve.scan srv ~reader:0);
  (* The other reader has its own cache: its first scan is a miss. *)
  check (Alcotest.array int) "reader 1 first scan" [| 1; 20; 3 |]
    (Serve.scan srv ~reader:1);
  let st = Serve.stats srv in
  check int "misses" 2 st.Serve.misses;
  check int "hits" 2 st.Serve.hits;
  check int "stale" 1 st.Serve.stale;
  check int "full scans" 3 st.Serve.full_scans

let test_cache_disabled () =
  let srv =
    Serve.create ~combine:false ~cache:false ~shards:1 ~readers:1 ~init:[| 5 |]
      ()
  in
  for _ = 1 to 4 do
    check (Alcotest.array int) "uncached scan" [| 5 |] (Serve.scan srv ~reader:0)
  done;
  let st = Serve.stats srv in
  check int "no hits" 0 st.Serve.hits;
  check int "no misses" 0 st.Serve.misses;
  check int "every scan pays the outer register" 4 st.Serve.full_scans

let test_observe_metrics () =
  let srv = Serve.create ~shards:1 ~readers:1 ~init:[| 0 |] () in
  ignore (Serve.scan srv ~reader:0);
  ignore (Serve.scan srv ~reader:0);
  Serve.post srv ~writer:0 1;
  Serve.post srv ~writer:0 2;
  Serve.drain srv;
  let m = Obs.Metrics.create () in
  Serve.observe srv m;
  let v name = Obs.Metrics.counter_value (Obs.Metrics.counter m name) in
  check int "serve.posted" 2 (v "serve.posted");
  check int "serve.coalesced" 1 (v "serve.coalesced");
  check int "serve.cache.hit" 1 (v "serve.cache.hit");
  check int "serve.cache.miss" 1 (v "serve.cache.miss")

(* ---------------------------------------------------------------- *)
(* Scan-sharing accounting (manual drain: fully deterministic)       *)
(* ---------------------------------------------------------------- *)

let scan_identity st =
  st.Serve.scans_requested = st.Serve.scans_combined + st.Serve.scans_performed

let test_combining_accounting () =
  (* Single-threaded, so the combiner lock is never contended and the
     exact adoption pattern is deterministic: reader 1's misses adopt
     reader 0's published collects via validation. *)
  let srv = Serve.create ~shards:2 ~readers:2 ~init:[| 1; 2; 3 |] () in
  check bool "combining on by default" true (Serve.combining srv);
  check (Alcotest.array int) "r0 first scan performs" [| 1; 2; 3 |]
    (Serve.scan srv ~reader:0);
  check (Alcotest.array int) "r1 first scan adopts" [| 1; 2; 3 |]
    (Serve.scan srv ~reader:1);
  let st = Serve.stats srv in
  check int "requested" 2 st.Serve.scans_requested;
  check int "performed" 1 st.Serve.scans_performed;
  check int "combined" 1 st.Serve.scans_combined;
  check int "outer register paid once" 1 st.Serve.full_scans;
  Serve.post srv ~writer:1 20;
  Serve.drain srv;
  (* Both caches and the shared slot are now stale: r0 performs a fresh
     collect (republishing the slot), r1 adopts it. *)
  check (Alcotest.array int) "r0 stale scan performs" [| 1; 20; 3 |]
    (Serve.scan srv ~reader:0);
  check (Alcotest.array int) "r1 stale scan adopts" [| 1; 20; 3 |]
    (Serve.scan srv ~reader:1);
  let st = Serve.stats srv in
  check int "requested'" 4 st.Serve.scans_requested;
  check int "performed'" 2 st.Serve.scans_performed;
  check int "combined'" 2 st.Serve.scans_combined;
  check bool "identity" true (scan_identity st);
  check int "full_scans = performed" st.Serve.scans_performed
    st.Serve.full_scans;
  (* Per-reader attribution sums to the totals and shows who combined. *)
  let r0 = Serve.reader_stats srv ~reader:0 in
  let r1 = Serve.reader_stats srv ~reader:1 in
  check int "r0 performed" 2 r0.Serve.r_performed;
  check int "r0 combined" 0 r0.Serve.r_combined;
  check int "r1 combined" 2 r1.Serve.r_combined;
  check int "per-reader requested sums" st.Serve.scans_requested
    (r0.Serve.r_requested + r1.Serve.r_requested);
  (* Cache hits never enter the scan machinery. *)
  ignore (Serve.scan srv ~reader:0);
  let st' = Serve.stats srv in
  check int "hit bypasses requested" st.Serve.scans_requested
    st'.Serve.scans_requested;
  check int "hit counted" 1 st'.Serve.hits

let test_combining_negative_control () =
  (* combine:false is the differential baseline: nothing is ever
     combined and every request pays the outer register. *)
  let srv =
    Serve.create ~combine:false ~cache:false ~shards:2 ~readers:2
      ~init:[| 0; 0; 0 |] ()
  in
  check bool "combining off" false (Serve.combining srv);
  for _ = 1 to 3 do
    ignore (Serve.scan srv ~reader:0);
    ignore (Serve.scan srv ~reader:1)
  done;
  let st = Serve.stats srv in
  check int "no combined scans" 0 st.Serve.scans_combined;
  check int "requested = performed" st.Serve.scans_requested
    st.Serve.scans_performed;
  check int "performed = full scans" st.Serve.scans_performed
    st.Serve.full_scans;
  check int "six requests" 6 st.Serve.scans_requested

let test_combining_uncached_adoption () =
  (* With caching off and combining on, the shared slot acts as the
     service-wide validated cache: a quiescent service pays the outer
     register once, then serves every reader by adoption. *)
  let srv =
    Serve.create ~cache:false ~shards:1 ~readers:2 ~init:[| 7 |] ()
  in
  for _ = 1 to 3 do
    check (Alcotest.array int) "r0" [| 7 |] (Serve.scan srv ~reader:0);
    check (Alcotest.array int) "r1" [| 7 |] (Serve.scan srv ~reader:1)
  done;
  let st = Serve.stats srv in
  check int "one real collect" 1 st.Serve.full_scans;
  check int "everything else adopted" 5 st.Serve.scans_combined;
  check bool "identity" true (scan_identity st)

let test_combining_span_markers () =
  (* The note hook receives balanced per-reader span markers around
     combiner collects, so profiles can attribute shared scans. *)
  let notes = ref [] in
  let srv =
    Serve.create ~note:(fun s -> notes := s :: !notes) ~cache:false ~shards:1
      ~readers:1 ~init:[| 0 |] ()
  in
  ignore (Serve.scan srv ~reader:0);
  Serve.post srv ~writer:0 1;
  Serve.drain srv;
  ignore (Serve.scan srv ~reader:0);
  let markers = List.rev_map Csim.Trace.span_of_note !notes in
  let collects_b, collects_e =
    List.fold_left
      (fun (b, e) m ->
        match m with
        | Some (`B, "scan.collect.r0") -> (b + 1, e)
        | Some (`E, "scan.collect.r0") -> (b, e + 1)
        | _ -> (b, e))
      (0, 0) markers
  in
  check int "collect spans open" 2 collects_b;
  check int "collect spans balanced" collects_b collects_e

let qcheck_combining_identity_under_domains =
  QCheck2.Test.make ~count:6
    ~name:"requested = combined + performed under domains"
    QCheck2.Gen.(
      tup4 (int_range 2 5) (int_range 1 3) (int_range 2 5) (int_range 1 3))
    (fun (c, shards_raw, reader_ops, writer_ops) ->
      let shards = 1 + ((shards_raw - 1) mod c) in
      let init = Array.init c (fun k -> k) in
      let srv = Serve.create ~shards ~readers:3 ~init () in
      Serve.start srv;
      let domains =
        List.init c (fun k ->
            Domain.spawn (fun () ->
                for s = 1 to writer_ops do
                  ignore (Serve.update srv ~writer:k ((k * 100) + s))
                done))
        @ List.init 3 (fun j ->
              Domain.spawn (fun () ->
                  for _ = 1 to reader_ops do
                    ignore (Serve.scan_items srv ~reader:j)
                  done))
      in
      List.iter Domain.join domains;
      Serve.shutdown srv;
      let st = Serve.stats srv in
      let readers_sum =
        List.init 3 (fun j -> Serve.reader_stats srv ~reader:j)
      in
      let sum f = List.fold_left (fun a r -> a + f r) 0 readers_sum in
      scan_identity st
      && st.Serve.full_scans = st.Serve.scans_performed
      && sum (fun r -> r.Serve.r_requested) = st.Serve.scans_requested
      && sum (fun r -> r.Serve.r_combined) = st.Serve.scans_combined
      && sum (fun r -> r.Serve.r_performed) = st.Serve.scans_performed
      && st.Serve.posted = st.Serve.applied + st.Serve.coalesced
      && st.Serve.pending = 0)

(* ---------------------------------------------------------------- *)
(* Batched posts (manual drain: fully deterministic)                 *)
(* ---------------------------------------------------------------- *)

let test_batch_post_counters () =
  let srv = Serve.create ~shards:2 ~readers:1 ~init:[| 0; 0; 0; 0; 0 |] () in
  (* One batch spanning both shards: one install per shard touched. *)
  Serve.post_batch srv [ (0, 1); (2, 3); (4, 5) ];
  let st = Serve.stats srv in
  check int "posted" 3 st.Serve.posted;
  check int "pending (in batch cells)" 3 st.Serve.pending;
  check int "installs = shards touched" 2 st.Serve.batch_installs;
  Serve.drain srv;
  let st = Serve.stats srv in
  check int "applied" 3 st.Serve.applied;
  check int "coalesced" 0 st.Serve.coalesced;
  check int "pending drained" 0 st.Serve.pending;
  check int "one publish per shard" 2 st.Serve.publishes;
  check (Alcotest.array int) "batched values land" [| 1; 0; 3; 0; 5 |]
    (Serve.scan srv ~reader:0)

let test_batch_coalescing_rules () =
  let srv = Serve.create ~shards:2 ~readers:1 ~init:[| 0; 0; 0 |] () in
  (* Batch then mailbox to the same component: the mailbox post has the
     later ticket, so it wins and the batched entry coalesces. *)
  Serve.post_batch srv [ (0, 10) ];
  Serve.post srv ~writer:0 11;
  Serve.drain srv;
  let st = Serve.stats srv in
  check int "posted" 2 st.Serve.posted;
  check int "applied" 1 st.Serve.applied;
  check int "batched entry coalesced" 1 st.Serve.coalesced;
  check (Alcotest.array int) "mailbox wins (newer ticket)" [| 11; 0; 0 |]
    (Serve.scan srv ~reader:0);
  (* Mailbox then batch: the batch wins. *)
  Serve.post srv ~writer:1 20;
  Serve.post_batch srv [ (1, 21) ];
  Serve.drain srv;
  let st = Serve.stats srv in
  check int "coalesced'" 2 st.Serve.coalesced;
  check (Alcotest.array int) "batch wins (newer ticket)" [| 11; 21; 0 |]
    (Serve.scan srv ~reader:0);
  (* A component listed twice in one batch keeps the later entry. *)
  Serve.post_batch srv [ (2, 30); (2, 31) ];
  Serve.drain srv;
  let st = Serve.stats srv in
  check int "coalesced''" 3 st.Serve.coalesced;
  check (Alcotest.array int) "later duplicate wins" [| 11; 21; 31 |]
    (Serve.scan srv ~reader:0);
  (* Two batches to the same shard before a drain merge; the second
     install recomputes over the first. *)
  Serve.post_batch srv [ (0, 40) ];
  Serve.post_batch srv [ (0, 41); (1, 42) ];
  Serve.drain srv;
  let st = Serve.stats srv in
  check int "posted total" 9 st.Serve.posted;
  check int "coalesced merge" 4 st.Serve.coalesced;
  check int "posted = applied + coalesced" st.Serve.posted
    (st.Serve.applied + st.Serve.coalesced);
  check (Alcotest.array int) "merged batches" [| 41; 42; 31 |]
    (Serve.scan srv ~reader:0)

let test_batch_accounting_under_domains () =
  (* Live appliers; three mailbox writers (components 0-2) and one
     batch writer owning components 3-5 (tickets are per-component
     writer state, so a component's posts must come from one domain).
     The identity must hold exactly at quiescence. *)
  let srv = Serve.create ~shards:3 ~readers:1 ~init:(Array.make 6 0) () in
  Serve.start srv;
  let singles =
    List.init 3 (fun k ->
        Domain.spawn (fun () ->
            for s = 1 to 50 do
              Serve.post srv ~writer:k ((k * 1000) + s)
            done;
            ignore (Serve.update srv ~writer:k ((k * 1000) + 999))))
  in
  let batcher =
    Domain.spawn (fun () ->
        for s = 1 to 50 do
          Serve.post_batch srv [ (3, 3000 + s); (4, 4000 + s); (5, 5000 + s) ]
        done;
        List.iter
          (fun k -> ignore (Serve.update srv ~writer:k ((k * 1000) + 999)))
          [ 3; 4; 5 ])
  in
  List.iter Domain.join (batcher :: singles);
  Serve.shutdown srv;
  let st = Serve.stats srv in
  check int "posted" (3 * 51 * 2) st.Serve.posted;
  check int "pending" 0 st.Serve.pending;
  check int "posted = applied + coalesced" st.Serve.posted
    (st.Serve.applied + st.Serve.coalesced);
  check bool "batch installs happened" true (st.Serve.batch_installs > 0);
  check (Alcotest.array int) "closing updates win"
    [| 999; 1999; 2999; 3999; 4999; 5999 |]
    (Serve.scan srv ~reader:0)

let test_batch_validation () =
  let srv = Serve.create ~shards:1 ~readers:1 ~init:[| 0 |] () in
  check bool "bad component rejected" true
    (try Serve.post_batch srv [ (1, 5) ]; false
     with Invalid_argument _ -> true);
  Serve.post_batch srv [];
  check int "empty batch is a no-op" 0 (Serve.stats srv).Serve.posted

(* ---------------------------------------------------------------- *)
(* Anderson as differential oracle of the Afek fast path             *)
(* ---------------------------------------------------------------- *)

let test_differential_anderson_afek () =
  (* Random serve workloads in manual-drain mode are deterministic, so
     the Anderson- and Afek-backed services must agree scan for scan —
     the exponential construction is the oracle of the fast path. *)
  let lcg = ref 12345 in
  let rand n =
    lcg := ((!lcg * 1103515245) + 12347) land 0x3FFFFFFF;
    !lcg mod n
  in
  let c = 5 and shards = 2 and readers = 2 in
  let init = Array.init c (fun k -> k * 10) in
  let mk outer = Serve.create ~outer ~shards ~readers ~init () in
  let a = mk Serve.Outer_anderson and f = mk Serve.Outer_afek in
  let scans = ref 0 in
  for _ = 1 to 200 do
    match rand 4 with
    | 0 ->
      let k = rand c and v = rand 1000 in
      Serve.post a ~writer:k v;
      Serve.post f ~writer:k v
    | 1 ->
      let ws = List.init (1 + rand c) (fun _ -> (rand c, rand 1000)) in
      Serve.post_batch a ws;
      Serve.post_batch f ws
    | 2 ->
      Serve.drain a;
      Serve.drain f
    | _ ->
      let r = rand readers in
      incr scans;
      check (Alcotest.array int)
        (Printf.sprintf "scan %d agrees" !scans)
        (Serve.scan a ~reader:r) (Serve.scan f ~reader:r)
  done;
  check bool "exercised scans" true (!scans > 20);
  let sa = Serve.stats a and sf = Serve.stats f in
  check int "posted agree" sa.Serve.posted sf.Serve.posted;
  check int "applied agree" sa.Serve.applied sf.Serve.applied;
  check int "coalesced agree" sa.Serve.coalesced sf.Serve.coalesced

(* ---------------------------------------------------------------- *)
(* Linearizability under real domains                                *)
(* ---------------------------------------------------------------- *)

(* Paced stress of one service lifetime, as in Serve_campaign: cached
   scans are far cheaper than synchronous updates, so unpaced readers
   would finish before any write completes and the history would have
   no concurrency to check. *)
let stress_serve srv ~writer_ops ~reader_ops ~readers ~init =
  Serve.start srv;
  let total_writes = Serve.components srv * writer_ops in
  let applied () = (Serve.stats srv).Serve.applied in
  let reader_pace () =
    let before = applied () in
    while before < total_writes && applied () = before do
      Domain.cpu_relax ()
    done
  in
  let h =
    Composite.Multicore.stress ~reader_pace
      ~config:{ Composite.Multicore.writer_ops; reader_ops; readers }
      ~init ~handle:(Serve.handle srv) ()
  in
  Serve.shutdown srv;
  h

let test_stress_per_shard_count () =
  let init = [| 10; 20; 30; 40 |] in
  List.iter
    (fun shards ->
      let srv = Serve.create ~shards ~readers:2 ~init () in
      let h = stress_serve srv ~writer_ops:3 ~reader_ops:3 ~readers:2 ~init in
      check int
        (Printf.sprintf "S=%d: no shrinking violations" shards)
        0
        (List.length (History.Shrinking.check ~equal:Int.equal h));
      check bool
        (Printf.sprintf "S=%d: generic oracle" shards)
        true
        (History.Linearize.is_linearizable
           (History.Linearize.snapshot_spec ~equal:Int.equal)
           ~init
           (History.Snapshot_history.to_ops h)))
    [ 1; 2; 4 ]

let qcheck_stress_random_shapes =
  QCheck2.Test.make ~count:6
    ~name:"random service shapes stay linearizable under domains"
    QCheck2.Gen.(
      tup4 (int_range 1 5) (int_range 1 3) (int_range 1 3) (int_range 1 3))
    (fun (c, shards_raw, writer_ops, reader_ops) ->
      let shards = 1 + ((shards_raw - 1) mod c) in
      let init = Array.init c (fun k -> k * 100) in
      let srv = Serve.create ~shards ~readers:2 ~init () in
      let h = stress_serve srv ~writer_ops ~reader_ops ~readers:2 ~init in
      History.Shrinking.check ~equal:Int.equal h = [])

let qcheck_differential_stress =
  QCheck2.Test.make ~count:4
    ~name:"anderson-backed service linearizable under domains (oracle leg)"
    QCheck2.Gen.(tup2 (int_range 2 4) (int_range 1 3))
    (fun (c, writer_ops) ->
      let init = Array.init c (fun k -> k * 100) in
      let srv =
        Serve.create ~outer:Serve.Outer_anderson ~shards:(min 2 c) ~readers:2
          ~init ()
      in
      let h = stress_serve srv ~writer_ops ~reader_ops:2 ~readers:2 ~init in
      History.Shrinking.check ~equal:Int.equal h = [])

let test_campaign_clean () =
  let cfg =
    {
      Workload.Serve_campaign.default with
      shards = 2;
      components = 4;
      readers = 2;
      writer_ops = 3;
      reader_ops = 3;
      runs = 3;
    }
  in
  let r = Workload.Serve_campaign.run ~jobs:2 cfg in
  check int "runs" 3 r.Workload.Serve_campaign.runs;
  check int "flagged" 0 r.Workload.Serve_campaign.flagged_runs;
  check int "oracle failures" 0 r.Workload.Serve_campaign.generic_failures;
  (* 4 writers x 3 ops + 2 readers x 3 ops, per run. *)
  check int "ops checked" (3 * ((4 * 3) + (2 * 3)))
    r.Workload.Serve_campaign.ops_checked

let test_campaign_jobs_deterministic () =
  (* Clean campaigns report identically at every job count (the same
     property Campaign.run has: index-ordered merge of fixed-size
     runs). *)
  let cfg =
    {
      Workload.Serve_campaign.default with
      shards = 2;
      components = 3;
      readers = 2;
      writer_ops = 2;
      reader_ops = 2;
      runs = 4;
    }
  in
  let strip (r : Workload.Serve_campaign.result) =
    ( (r.Workload.Serve_campaign.runs, r.Workload.Serve_campaign.ops_checked),
      ( r.Workload.Serve_campaign.flagged_runs,
        r.Workload.Serve_campaign.generic_failures ) )
  in
  let r1 = strip (Workload.Serve_campaign.run ~jobs:1 cfg) in
  let r3 = strip (Workload.Serve_campaign.run ~jobs:3 cfg) in
  check
    Alcotest.(pair (pair int int) (pair int int))
    "jobs=1 = jobs=3" r1 r3

let test_mutant_caught () =
  (* Blind cache reuse (validate = false, cache = true) must produce
     histories the Shrinking checker flags.  The interleaving is real
     concurrency, so allow a few attempts — each campaign runs several
     paced lifetimes and in practice flags nearly every one. *)
  let cfg =
    {
      Workload.Serve_campaign.default with
      shards = 2;
      components = 3;
      readers = 2;
      writer_ops = 10;
      reader_ops = 10;
      runs = 3;
      validate = false;
      check_generic = false;
    }
  in
  let rec attempt n =
    let r = Workload.Serve_campaign.run cfg in
    if r.Workload.Serve_campaign.flagged_runs > 0 then r
    else if n > 1 then attempt (n - 1)
    else r
  in
  let r = attempt 3 in
  check bool "mutant flagged" true (r.Workload.Serve_campaign.flagged_runs > 0);
  check bool "an example history is rendered" true
    (r.Workload.Serve_campaign.example <> None)

(* ---------------------------------------------------------------- *)
(* API satellites: Backend registry, unified handles                 *)
(* ---------------------------------------------------------------- *)

let test_backend_registry () =
  check (Alcotest.list Alcotest.string) "registered names"
    [ "byz"; "multicore"; "net"; "shm" ]
    (Workload.Backend.names ());
  (match Workload.Backend.find "shm" with
  | Ok b ->
    check bool "shm is the plain deterministic substrate" true
      (b.Workload.Backend.caps = Workload.Backend.static_caps)
  | Error e -> Alcotest.failf "shm not found: %s" e);
  (* Capabilities are data on the descriptor: the net substrate is the
     messaging one and the only reconfigurable one among the built-ins. *)
  (match Workload.Backend.find "net" with
  | Ok b ->
    check bool "net caps" true
      (b.Workload.Backend.caps.Workload.Backend.messaging
      && b.Workload.Backend.caps.Workload.Backend.reconfigurable
      && not b.Workload.Backend.caps.Workload.Backend.adversarial)
  | Error e -> Alcotest.failf "net not found: %s" e);
  (match Workload.Backend.find "byz" with
  | Ok b ->
    check bool "byz caps" true
      b.Workload.Backend.caps.Workload.Backend.adversarial
  | Error e -> Alcotest.failf "byz not found: %s" e);
  (match Workload.Backend.find "multicore" with
  | Ok b ->
    check bool "multicore caps" true
      (b.Workload.Backend.caps.Workload.Backend.real_parallelism
      && b.Workload.Backend.provision = Workload.Backend.Domains)
  | Error e -> Alcotest.failf "multicore not found: %s" e);
  (match Workload.Backend.find "bogus" with
  | Ok _ -> Alcotest.fail "bogus resolved"
  | Error e ->
    check bool "error names the unknown backend" true (contains e "bogus");
    check bool "error lists the registry" true
      (contains e "multicore, net, shm"));
  let net = Workload.Backend.net ~replicas:5 ~crash:1 ~loss:0.1 () in
  check Alcotest.string "net label" "net(n=5,f=1,loss=0.10)"
    (Workload.Backend.label net);
  check bool "quorum validation" true
    (try ignore (Workload.Backend.net ~replicas:3 ~crash:2 ()); false
     with Invalid_argument _ -> true)

let test_multi_writer_handle () =
  let mw =
    Composite.Multicore.multi_writer ~components:2 ~writers_per_component:2
      ~readers:1 ~init:[| 0; 0 |]
  in
  let h = Composite.Multi_writer.handle mw in
  check int "C*W write ports" 2 h.Composite.Snapshot.components;
  ignore (h.Composite.Snapshot.update ~writer:0 11);
  (* writer 3 = component 1, writer index 1 *)
  ignore (h.Composite.Snapshot.update ~writer:3 22);
  check (Alcotest.array int) "values via unified handle" [| 11; 22 |]
    (Composite.Snapshot.scan h ~reader:0);
  check bool "bad port rejected" true
    (try ignore (h.Composite.Snapshot.update ~writer:4 0); false
     with Invalid_argument _ -> true)

let test_unified_handle_interop () =
  (* One polymorphic consumer accepts a construction handle and a serve
     handle alike: Composite_intf.t is the single handle type. *)
  let total (h : int Composite.Composite_intf.t) =
    Array.fold_left ( + ) 0 (Composite.Snapshot.scan h ~reader:0)
  in
  let a = Composite.Multicore.afek ~init:[| 1; 2 |] in
  let srv = Serve.create ~shards:1 ~readers:1 ~init:[| 3; 4 |] () in
  check int "construction handle" 3 (total a);
  check int "serve handle" 7 (total (Serve.handle srv))

let () =
  Alcotest.run "serve"
    [
      ( "shape",
        [
          Alcotest.test_case "partition" `Quick test_partition;
          Alcotest.test_case "create validation" `Quick test_create_validation;
          Alcotest.test_case "lifecycle guards" `Quick test_lifecycle_guards;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "coalesce counters" `Quick test_coalesce_counters;
          Alcotest.test_case "invariant under domains" `Quick
            test_accounting_invariant_under_domains;
          Alcotest.test_case "cache hit/miss/stale" `Quick
            test_cache_hit_miss_stale;
          Alcotest.test_case "cache disabled" `Quick test_cache_disabled;
          Alcotest.test_case "observe metrics" `Quick test_observe_metrics;
        ] );
      ( "scan-sharing",
        [
          Alcotest.test_case "combining accounting" `Quick
            test_combining_accounting;
          Alcotest.test_case "combining negative control" `Quick
            test_combining_negative_control;
          Alcotest.test_case "uncached adoption" `Quick
            test_combining_uncached_adoption;
          Alcotest.test_case "span markers" `Quick test_combining_span_markers;
          QCheck_alcotest.to_alcotest qcheck_combining_identity_under_domains;
        ] );
      ( "batched-posts",
        [
          Alcotest.test_case "batch counters" `Quick test_batch_post_counters;
          Alcotest.test_case "coalescing rules" `Quick
            test_batch_coalescing_rules;
          Alcotest.test_case "accounting under domains" `Quick
            test_batch_accounting_under_domains;
          Alcotest.test_case "validation" `Quick test_batch_validation;
        ] );
      ( "differential",
        [
          Alcotest.test_case "anderson vs afek agree" `Quick
            test_differential_anderson_afek;
          QCheck_alcotest.to_alcotest qcheck_differential_stress;
        ] );
      ( "linearizability",
        [
          Alcotest.test_case "stress per shard count" `Quick
            test_stress_per_shard_count;
          QCheck_alcotest.to_alcotest qcheck_stress_random_shapes;
          Alcotest.test_case "campaign clean" `Quick test_campaign_clean;
          Alcotest.test_case "campaign jobs deterministic" `Quick
            test_campaign_jobs_deterministic;
          Alcotest.test_case "mutant caught" `Quick test_mutant_caught;
        ] );
      ( "api",
        [
          Alcotest.test_case "backend registry" `Quick test_backend_registry;
          Alcotest.test_case "multi-writer unified handle" `Quick
            test_multi_writer_handle;
          Alcotest.test_case "unified handle interop" `Quick
            test_unified_handle_interop;
        ] );
    ]

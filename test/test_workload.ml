(* Units for the workload utilities: table formatting and the soak
   shape generator. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let test_table_alignment () =
  let t = Workload.Table.create ~header:[ "a"; "bee"; "c" ] in
  Workload.Table.add_row t [ "1"; "2"; "333" ];
  Workload.Table.add_row t [ "1000"; "2"; "3" ];
  let s = Format.asprintf "%a" Workload.Table.pp t in
  let lines = String.split_on_char '\n' (String.trim s) in
  check int "header + rule + 2 rows" 4 (List.length lines);
  match lines with
  | header :: rule :: rows ->
    let width = String.length header in
    check bool "rule as wide as header" true (String.length rule = width);
    List.iter
      (fun row ->
        check bool "rows no wider than header" true (String.length row <= width))
      rows
  | _ -> Alcotest.fail "unexpected shape"

let test_table_cells () =
  check Alcotest.string "int" "42" (Workload.Table.cell_int 42);
  check Alcotest.string "float" "3.14" (Workload.Table.cell_float 3.14159);
  check Alcotest.string "float decimals" "3.1416"
    (Workload.Table.cell_float ~decimals:4 3.14159);
  check Alcotest.string "bool" "yes" (Workload.Table.cell_bool true);
  check Alcotest.string "bool no" "no" (Workload.Table.cell_bool false)

let test_gen_deterministic () =
  let s1 = Workload.Gen.shape ~seed:5 ~max_components:6 ~max_readers:4 ~max_ops:9 in
  let s2 = Workload.Gen.shape ~seed:5 ~max_components:6 ~max_readers:4 ~max_ops:9 in
  check bool "same seed, same shape" true (s1 = s2);
  let s3 = Workload.Gen.shape ~seed:6 ~max_components:6 ~max_readers:4 ~max_ops:9 in
  check bool "different seeds usually differ" true
    (s1 <> s3
    || Workload.Gen.shape ~seed:7 ~max_components:6 ~max_readers:4 ~max_ops:9
       <> s1)

let test_gen_bounds () =
  for seed = 1 to 200 do
    let s = Workload.Gen.shape ~seed ~max_components:5 ~max_readers:3 ~max_ops:7 in
    if s.Workload.Gen.components < 1 || s.Workload.Gen.components > 5 then
      Alcotest.fail "components out of bounds";
    if s.Workload.Gen.readers < 1 || s.Workload.Gen.readers > 3 then
      Alcotest.fail "readers out of bounds";
    Array.iter
      (fun n -> if n < 0 || n > 7 then Alcotest.fail "writer ops out of bounds")
      s.Workload.Gen.writer_ops;
    Array.iter
      (fun n -> if n < 0 || n > 7 then Alcotest.fail "reader ops out of bounds")
      s.Workload.Gen.reader_ops;
    check int "total is consistent"
      (Array.fold_left ( + ) 0 s.Workload.Gen.writer_ops
      + Array.fold_left ( + ) 0 s.Workload.Gen.reader_ops)
      (Workload.Gen.total_ops s)
  done

let test_gen_validation () =
  Alcotest.check_raises "bad dimensions" (Invalid_argument "Gen.shape")
    (fun () ->
      ignore (Workload.Gen.shape ~seed:1 ~max_components:0 ~max_readers:1 ~max_ops:1))

let test_meter_arity () =
  let expect_invalid what f =
    match f () with
    | (_ : int) -> Alcotest.failf "%s: expected Invalid_argument" what
    | exception Invalid_argument _ -> ()
  in
  let impl = Workload.Campaign.Impl_anderson in
  expect_invalid "scan_cost c=0" (fun () ->
      Workload.Meter.scan_cost impl ~c:0 ~r:1);
  expect_invalid "scan_cost r=0" (fun () ->
      Workload.Meter.scan_cost impl ~c:2 ~r:0);
  expect_invalid "update_cost c=0" (fun () ->
      Workload.Meter.update_cost impl ~c:0 ~r:1 ~writer:0);
  expect_invalid "update_cost writer<0" (fun () ->
      Workload.Meter.update_cost impl ~c:2 ~r:1 ~writer:(-1));
  expect_invalid "update_cost writer>=c" (fun () ->
      Workload.Meter.update_cost impl ~c:2 ~r:1 ~writer:2);
  (* The smallest legal shapes still measure. *)
  check bool "scan_cost c=1 r=1 positive" true
    (Workload.Meter.scan_cost impl ~c:1 ~r:1 > 0);
  check bool "update_cost writer=c-1 positive" true
    (Workload.Meter.update_cost impl ~c:2 ~r:1 ~writer:1 > 0)

let () =
  Alcotest.run "workload"
    [
      ( "table",
        [
          Alcotest.test_case "alignment" `Quick test_table_alignment;
          Alcotest.test_case "cells" `Quick test_table_cells;
        ] );
      ( "gen",
        [
          Alcotest.test_case "deterministic" `Quick test_gen_deterministic;
          Alcotest.test_case "bounds" `Quick test_gen_bounds;
          Alcotest.test_case "validation" `Quick test_gen_validation;
        ] );
      ( "meter",
        [ Alcotest.test_case "arity validation" `Quick test_meter_arity ] );
    ]

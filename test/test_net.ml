(* The message-passing backend: the simulated network, the ABD
   emulation, and the composite constructions running over it. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let mk_env ?loss ?crashes ?log ~replicas ~seed () =
  Net.Sim.create ?loss ?crashes ?log ~replicas ~seed ()

(* ------------------------------------------------------------------ *)
(* Solo register semantics and exact message complexity               *)
(* ------------------------------------------------------------------ *)

let test_solo_write_read () =
  let env = mk_env ~replicas:3 ~seed:1 () in
  let abd = Net.Abd.create env in
  let mem = Net.Abd.memory abd in
  let got = ref (-1) in
  let stats =
    Net.Sim.run env
      [|
        (fun () ->
          let cell = mem.Csim.Memory.make ~name:"x" ~bits:64 0 in
          cell.Csim.Memory.write 42;
          got := cell.Csim.Memory.read ();
          check int "peek sees the write" 42 (cell.Csim.Memory.peek ()));
      |]
  in
  check int "read returns the written value" 42 !got;
  check int "no losses on a clean network" 0 stats.Net.Sim.lost;
  (* One write (2n) + one read (4n) on n = 3 replicas. *)
  check int "ABD message bound" ((2 * 3) + (4 * 3)) stats.Net.Sim.sent

let test_message_bound_per_op () =
  List.iter
    (fun n ->
      (* Write alone: n requests + n acks after the drain. *)
      let env = mk_env ~replicas:n ~seed:7 () in
      let abd = Net.Abd.create env in
      let mem = Net.Abd.memory abd in
      let cellr = ref None in
      let s_write =
        Net.Sim.run env
          [|
            (fun () ->
              let cell = mem.Csim.Memory.make ~name:"x" ~bits:64 0 in
              cellr := Some cell;
              cell.Csim.Memory.write 1);
          |]
      in
      check int
        (Printf.sprintf "write sends 2n messages (n=%d)" n)
        (2 * n) s_write.Net.Sim.sent;
      (* Read alone: query round + write-back round, 4n total. *)
      let s_read =
        Net.Sim.run env
          [| (fun () -> ignore ((Option.get !cellr).Csim.Memory.read ())) |]
      in
      check int
        (Printf.sprintf "read sends 4n messages (n=%d)" n)
        (4 * n) s_read.Net.Sim.sent;
      check int "two quorum phases per read" 3 (Net.Abd.stats abd).Net.Abd.rounds)
    [ 3; 5; 7 ]

let test_determinism () =
  let run () =
    let env = mk_env ~loss:0.2 ~crashes:[ (2, 4) ] ~replicas:5 ~seed:11 () in
    let abd = Net.Abd.create env in
    let mem = Net.Abd.memory abd in
    let outs = Array.make 2 [] in
    let stats =
      Net.Sim.run env ~policy:(Csim.Schedule.Random 99)
        [|
          (fun () ->
            let c = mem.Csim.Memory.make ~name:"a" ~bits:64 0 in
            for v = 1 to 5 do
              c.Csim.Memory.write v;
              outs.(0) <- c.Csim.Memory.read () :: outs.(0)
            done);
          (fun () ->
            let c = mem.Csim.Memory.make ~name:"b" ~bits:64 0 in
            for v = 1 to 5 do
              c.Csim.Memory.write (100 + v);
              outs.(1) <- c.Csim.Memory.read () :: outs.(1)
            done);
        |]
    in
    (stats, outs)
  in
  let s1, o1 = run () in
  let s2, o2 = run () in
  check bool "same stats on same seed" true (s1 = s2);
  check bool "same outputs on same seed" true (o1 = o2);
  check bool "losses actually happened" true (s1.Net.Sim.lost > 0)

let test_crash_validation () =
  let expect_invalid f =
    try
      ignore (f ());
      false
    with Invalid_argument _ -> true
  in
  check bool "majority crash rejected" true
    (expect_invalid (fun () -> mk_env ~replicas:3 ~crashes:[ (0, 1); (1, 2) ] ~seed:0 ()));
  check bool "out-of-range replica rejected" true
    (expect_invalid (fun () -> mk_env ~replicas:3 ~crashes:[ (3, 1) ] ~seed:0 ()));
  check bool "duplicate crash rejected" true
    (expect_invalid (fun () -> mk_env ~replicas:5 ~crashes:[ (1, 1); (1, 2) ] ~seed:0 ()));
  check bool "bad loss rejected" true
    (expect_invalid (fun () -> mk_env ~replicas:3 ~loss:1.0 ~seed:0 ()));
  check bool "minority crash accepted" true
    (Option.is_some (try Some (mk_env ~replicas:5 ~crashes:[ (3, 0); (4, 2) ] ~seed:0 ()) with Invalid_argument _ -> None))

let test_crash_masked () =
  (* A crashed minority never blocks termination, and reads still see
     the latest completed write. *)
  let env = mk_env ~crashes:[ (4, 0); (3, 2) ] ~replicas:5 ~seed:3 () in
  let abd = Net.Abd.create env in
  let mem = Net.Abd.memory abd in
  let out = ref [] in
  let (_ : Net.Sim.stats) =
    Net.Sim.run env ~policy:(Csim.Schedule.Random 17)
      [|
        (fun () ->
          let c = mem.Csim.Memory.make ~name:"x" ~bits:64 0 in
          for v = 1 to 8 do
            c.Csim.Memory.write v;
            out := c.Csim.Memory.read () :: !out
          done);
      |]
  in
  check bool "solo client reads its own writes" true
    (!out = [ 8; 7; 6; 5; 4; 3; 2; 1 ])

(* ------------------------------------------------------------------ *)
(* Linearizability of the emulated register under network faults       *)
(* ------------------------------------------------------------------ *)

(* One ABD register, several clients, random delivery order, message
   loss and a minority crash: every completed history must linearize
   against the sequential register spec.  This is the ground-truth
   oracle check (Wing–Gong search), independent of the Shrinking
   machinery the campaigns use. *)
let qcheck_abd_linearizable =
  QCheck2.Test.make ~count:40
    ~name:"ABD register linearizes under loss + reorder + crash"
    QCheck2.Gen.(
      quad
        (int_range 0 1) (* 0 = 3 replicas no crash, 1 = 5 replicas f=2 *)
        (int_range 0 2) (* loss knob: 0.0 / 0.1 / 0.25 *)
        (int_range 2 3) (* clients *)
        (int_range 0 1_000_000) (* seed *))
    (fun (topo, lossk, clients, seed) ->
      let replicas, crashes =
        if topo = 0 then (3, []) else (5, [ (4, 2); (3, 5) ])
      in
      let loss = [| 0.0; 0.1; 0.25 |].(lossk) in
      let env = mk_env ~loss ~crashes ~replicas ~seed () in
      let abd = Net.Abd.create env in
      let mem = Net.Abd.memory abd in
      let ops = ref [] in
      let record ~proc ~label ~input ~output ~inv ~res =
        ops := History.Oprec.v ~proc ~label ~input ~output ~inv ~res :: !ops
      in
      let cellr = ref None in
      let client proc () =
        let cell =
          match !cellr with
          | Some c -> c
          | None ->
              let c = mem.Csim.Memory.make ~name:"r" ~bits:64 0 in
              cellr := Some c;
              c
        in
        (* 4 ops per client: writes carry globally distinct values. *)
        for i = 1 to 2 do
          let v = (100 * (proc + 1)) + i in
          let inv = Net.Sim.now env in
          cell.Csim.Memory.write v;
          record ~proc ~label:"write"
            ~input:(History.Linearize.Reg_write v)
            ~output:History.Linearize.Reg_done ~inv ~res:(Net.Sim.now env);
          let inv = Net.Sim.now env in
          let got = cell.Csim.Memory.read () in
          record ~proc ~label:"read" ~input:History.Linearize.Reg_read
            ~output:(History.Linearize.Reg_value got) ~inv
            ~res:(Net.Sim.now env)
        done
      in
      let (_ : Net.Sim.stats) =
        Net.Sim.run env
          ~policy:(Csim.Schedule.Random (seed lxor 0x5ca1ab1e))
          (Array.init clients client)
      in
      History.Linearize.is_linearizable
        (History.Linearize.register_spec ~equal:Int.equal)
        ~init:0 (List.rev !ops))

(* ------------------------------------------------------------------ *)
(* Online quorum reconfiguration                                       *)
(* ------------------------------------------------------------------ *)

let test_reconfig_solo () =
  let env = mk_env ~replicas:5 ~seed:21 () in
  let abd = Net.Abd.create ~members:[ 0; 1; 2 ] env in
  let mem = Net.Abd.memory abd in
  check int "initial quorum over members only" 2 (Net.Abd.quorum_size abd);
  let out = ref [] in
  let (_ : Net.Sim.stats) =
    Net.Sim.run env
      [|
        (fun () ->
          let c = mem.Csim.Memory.make ~name:"x" ~bits:64 0 in
          c.Csim.Memory.write 7;
          out := c.Csim.Memory.read () :: !out;
          (* Full handover: the write must survive into a disjoint
             member set via the state transfer. *)
          Net.Abd.reconfigure abd ~members:[ 2; 3; 4 ];
          out := c.Csim.Memory.read () :: !out;
          c.Csim.Memory.write 9;
          (* And shrink back down to a singleton of the new set. *)
          Net.Abd.reconfigure abd ~members:[ 3 ];
          out := c.Csim.Memory.read () :: !out);
      |]
  in
  check bool "reads straddle both handovers" true (!out = [ 9; 7; 7 ]);
  check int "epoch counts installs" 2 (Net.Abd.epoch abd);
  check bool "members reflect the last install" true
    (Net.Abd.members abd = [ 3 ]);
  check int "singleton quorum" 1 (Net.Abd.quorum_size abd)

let test_reconfig_validation () =
  let expect_invalid f =
    try
      f ();
      false
    with Invalid_argument _ -> true
  in
  let env = mk_env ~replicas:3 ~seed:0 () in
  check bool "empty member set rejected" true
    (expect_invalid (fun () -> ignore (Net.Abd.create ~members:[] env)));
  let env = mk_env ~replicas:3 ~seed:0 () in
  check bool "out-of-range member rejected" true
    (expect_invalid (fun () -> ignore (Net.Abd.create ~members:[ 0; 3 ] env)));
  let env = mk_env ~replicas:5 ~seed:0 () in
  check bool "Fixed quorum wider than member set rejected" true
    (expect_invalid (fun () ->
         ignore
           (Net.Abd.create ~quorum:(Net.Abd.Fixed 4) ~members:[ 0; 1; 2 ] env)));
  let env = mk_env ~replicas:5 ~seed:0 () in
  let abd = Net.Abd.create ~quorum:(Net.Abd.Fixed 2) ~members:[ 0; 1; 2 ] env in
  check bool "reconfigure below the Fixed quorum rejected" true
    (expect_invalid (fun () -> Net.Abd.reconfigure abd ~members:[ 3 ]))

(* Clients hammer one ABD register while another client walks the
   membership through join, handover and shrink — under loss, reorder
   and a crash of a replica that has already left.  Every completed
   history must still linearize against the register spec, and the
   per-epoch accounting must telescope exactly. *)
let test_reconfig_under_load_linearizable () =
  List.iter
    (fun seed ->
      (* Replica 0 crashes after it has left the member set. *)
      let env =
        mk_env ~loss:0.15 ~crashes:[ (0, 40) ] ~replicas:5 ~seed ()
      in
      let abd = Net.Abd.create ~members:[ 0; 1; 2 ] env in
      let mem = Net.Abd.memory abd in
      let ops = ref [] in
      let record ~proc ~label ~input ~output ~inv ~res =
        ops := History.Oprec.v ~proc ~label ~input ~output ~inv ~res :: !ops
      in
      let cellr = ref None in
      let cell () =
        match !cellr with
        | Some c -> c
        | None ->
          let c = mem.Csim.Memory.make ~name:"r" ~bits:64 0 in
          cellr := Some c;
          c
      in
      let client proc () =
        let cell = cell () in
        for i = 1 to 3 do
          let v = (100 * (proc + 1)) + i in
          let inv = Net.Sim.now env in
          cell.Csim.Memory.write v;
          record ~proc ~label:"write"
            ~input:(History.Linearize.Reg_write v)
            ~output:History.Linearize.Reg_done ~inv ~res:(Net.Sim.now env);
          let inv = Net.Sim.now env in
          let got = cell.Csim.Memory.read () in
          record ~proc ~label:"read" ~input:History.Linearize.Reg_read
            ~output:(History.Linearize.Reg_value got) ~inv
            ~res:(Net.Sim.now env)
        done
      in
      let reconfigurer () =
        ignore (cell ());
        Net.Abd.reconfigure abd ~members:[ 1; 2; 3 ];
        Net.Abd.reconfigure abd ~members:[ 2; 3; 4 ];
        Net.Abd.reconfigure abd ~members:[ 3; 4 ]
      in
      let (_ : Net.Sim.stats) =
        Net.Sim.run env
          ~policy:(Csim.Schedule.Random (seed lxor 0xe1a57))
          [| client 0; client 1; reconfigurer |]
      in
      check bool
        (Printf.sprintf "linearizable across reconfigurations (seed %d)" seed)
        true
        (History.Linearize.is_linearizable
           (History.Linearize.register_spec ~equal:Int.equal)
           ~init:0 (List.rev !ops));
      check int "three installs" 3 (Net.Abd.epoch abd);
      (* Accounting: one epoch_info per epoch, deltas telescoping to
         the cumulative totals, transfer work booked where it ran. *)
      let eps = Net.Abd.epochs abd in
      check int "one info per epoch" 4 (List.length eps);
      let st = Net.Abd.stats abd in
      let sum f = List.fold_left (fun a e -> a + f e) 0 eps in
      check int "reads telescope" st.Net.Abd.reads
        (sum (fun e -> e.Net.Abd.ei_reads));
      check int "writes telescope" st.Net.Abd.writes
        (sum (fun e -> e.Net.Abd.ei_writes));
      check int "rounds telescope" st.Net.Abd.rounds
        (sum (fun e -> e.Net.Abd.ei_rounds));
      check int "sent telescopes" (Net.Sim.totals env).Net.Sim.sent
        (sum (fun e -> e.Net.Abd.ei_sent));
      List.iter
        (fun e ->
          check bool "non-negative epoch deltas" true
            (e.Net.Abd.ei_reads >= 0 && e.Net.Abd.ei_writes >= 0
           && e.Net.Abd.ei_rounds >= 0 && e.Net.Abd.ei_sent >= 0);
          (* Every epoch after the first opens with a full transfer of
             the one allocated register. *)
          check int "transfer covers all registers"
            (if e.Net.Abd.ei_epoch = 0 then 0 else 1)
            e.Net.Abd.ei_transferred)
        eps)
    [ 5; 23; 71 ]

(* Anderson's composite register running over the ABD memory while the
   quorum system reconfigures underneath it: scans stay valid snapshots
   (Shrinking Lemma) end to end. *)
let test_reconfig_composite_smoke () =
  let env = mk_env ~loss:0.1 ~replicas:5 ~seed:13 () in
  let abd = Net.Abd.create ~members:[ 0; 1; 2 ] env in
  let mem = Net.Abd.memory abd in
  let rec_r = ref None in
  (* Built lazily by whichever client runs first, so construction's
     register traffic happens inside [Sim.run]. *)
  let get_rec () =
    match !rec_r with
    | Some r -> r
    | None ->
      let reg =
        Composite.Anderson.create mem ~readers:2 ~bits_per_value:16
          ~init:[| 0; 0 |]
      in
      let r =
        Composite.Snapshot.record
          ~clock:(fun () -> Net.Sim.now env)
          ~initial:[| 0; 0 |]
          (Composite.Anderson.handle reg)
      in
      rec_r := Some r;
      r
  in
  let writer w () =
    let r = get_rec () in
    for v = 1 to 3 do
      r.Composite.Snapshot.rupdate ~writer:w ((10 * w) + v)
    done
  in
  let scanner p () =
    let r = get_rec () in
    for _ = 1 to 2 do
      ignore (r.Composite.Snapshot.rscan ~reader:p)
    done
  in
  let reconfigurer () =
    ignore (get_rec ());
    Net.Abd.reconfigure abd ~members:[ 2; 3; 4 ]
  in
  let (_ : Net.Sim.stats) =
    Net.Sim.run env
      ~policy:(Csim.Schedule.Random 4242)
      [| writer 0; writer 1; scanner 0; scanner 1; reconfigurer |]
  in
  match
    History.Shrinking.check ~equal:Int.equal
      (Composite.Snapshot.history (get_rec ()))
  with
  | [] -> ()
  | vs ->
    Alcotest.failf "composite over reconfiguring ABD: %d violations"
      (List.length vs)

(* ------------------------------------------------------------------ *)
(* Negative control: the broken quorum variant must be caught          *)
(* ------------------------------------------------------------------ *)

let broken_profile () =
  List.find Workload.Netchaos.broken_quorum
    (Workload.Netchaos.default_profiles ~replicas:3)

let test_broken_quorum_flagged () =
  let cfg =
    {
      Workload.Netchaos.default with
      impls = [ Workload.Campaign.Impl_anderson ];
      profiles = [ broken_profile () ];
      seeds = 10;
      minimize_budget = 800;
    }
  in
  let r = Workload.Netchaos.run cfg in
  check bool "broken quorum is flagged" true
    (r.Workload.Netchaos.total_flagged > 0);
  check int "no stuck runs" 0 r.Workload.Netchaos.total_stuck;
  match r.Workload.Netchaos.cells with
  | [ cell ] -> (
      match cell.Workload.Netchaos.counterexample with
      | None -> Alcotest.fail "flagged cell carries no counterexample"
      | Some cx ->
          check bool "minimizer shrank the schedule" true
            (Array.length cx.Workload.Netchaos.cx_script
            <= cx.Workload.Netchaos.cx_original_entries);
          (* The quorum override names the accused variant and is never
             minimized away. *)
          check bool "quorum override survives minimization" true
            (cx.Workload.Netchaos.cx_case.Workload.Netchaos.prof
               .Workload.Netchaos.quorum
            = Some 1);
          (* The one-line script round-trips and replays to the same
             verdict. *)
          let line = Workload.Netchaos.cx_to_string cx in
          let cx' =
            match Workload.Netchaos.cx_of_string line with
            | Ok cx' -> cx'
            | Error e -> Alcotest.fail ("cx_of_string: " ^ e)
          in
          check bool "round-tripped script replays to Flagged" true
            (match
               Workload.Netchaos.replay cx'.Workload.Netchaos.cx_case
                 ~script:cx'.Workload.Netchaos.cx_script
             with
            | Workload.Chaos.Flagged _ -> true
            | _ -> false))
  | cells ->
      Alcotest.failf "expected 1 cell, got %d" (List.length cells)

(* A pinned, pre-minimized counterexample from the broken-quorum
   variant (captured by `net --broken-quorum --loss 0.3`): 54 scheduler
   picks that drive Anderson-over-ABD with a 1-replica write quorum
   into two Write Precedence violations.  Replaying it is a regression
   lock on the scheduler's canonical action enumeration — if the
   enumeration order ever changes, this diverges rather than silently
   passing. *)
let pinned_cx =
  "impl=anderson n=3 quorum=1 c=2 r=2 writes=2 scans=2 seed=5 label=cli \
   loss=0.3 crashes= \
   script=2,1,0,2,4,0,0,2,2,8,6,1,6,9,2,8,2,3,0,7,6,4,2,0,0,4,0,0,3,3,0,5,3,1,3,1,3,3,3,0,3,1,4,1,3,2,0,0,2,0,0,0,2,1"

let test_pinned_replay () =
  let cx =
    match Workload.Netchaos.cx_of_string pinned_cx with
    | Ok cx -> cx
    | Error e -> Alcotest.fail ("pinned cx_of_string: " ^ e)
  in
  match
    Workload.Netchaos.replay cx.Workload.Netchaos.cx_case
      ~script:cx.Workload.Netchaos.cx_script
  with
  | Workload.Chaos.Flagged vs ->
      check bool "pinned script yields violations" true (vs <> [])
  | Workload.Chaos.Passed -> Alcotest.fail "pinned counterexample passed"
  | Workload.Chaos.Stuck_run m -> Alcotest.failf "pinned replay stuck: %s" m
  | Workload.Chaos.Diverged m ->
      Alcotest.failf
        "pinned replay diverged (action enumeration changed?): %s" m

(* ------------------------------------------------------------------ *)
(* Campaign over the net backend: job-count independence               *)
(* ------------------------------------------------------------------ *)

let test_campaign_net_jobs_identical () =
  let cfg =
    {
      Workload.Campaign.default with
      backend =
        Workload.Backend.net ~replicas:5 ~crash:1 ~loss:0.1 ();
      schedules = 6;
    }
  in
  let r1 = Workload.Campaign.run ~jobs:1 cfg in
  let r4 = Workload.Campaign.run ~jobs:4 cfg in
  check bool "net campaign result independent of jobs" true (r1 = r4);
  check int "no violations over the net backend" 0
    r1.Workload.Campaign.flagged_runs;
  check int "no stuck runs over the net backend" 0
    r1.Workload.Campaign.stuck_runs

let () =
  Alcotest.run "net"
    [
      ( "abd",
        [
          Alcotest.test_case "solo write/read" `Quick test_solo_write_read;
          Alcotest.test_case "exact message bound" `Quick
            test_message_bound_per_op;
          Alcotest.test_case "deterministic replay" `Quick test_determinism;
          Alcotest.test_case "fault validation" `Quick test_crash_validation;
          Alcotest.test_case "minority crash masked" `Quick test_crash_masked;
        ] );
      ( "linearizability",
        [ QCheck_alcotest.to_alcotest qcheck_abd_linearizable ] );
      ( "reconfig",
        [
          Alcotest.test_case "solo handover + shrink" `Quick test_reconfig_solo;
          Alcotest.test_case "member-set validation" `Quick
            test_reconfig_validation;
          Alcotest.test_case "linearizable under load + crash" `Quick
            test_reconfig_under_load_linearizable;
          Alcotest.test_case "composite over reconfiguring quorums" `Quick
            test_reconfig_composite_smoke;
        ] );
      ( "netchaos",
        [
          Alcotest.test_case "broken quorum flagged + minimized" `Slow
            test_broken_quorum_flagged;
          Alcotest.test_case "pinned counterexample replays" `Quick
            test_pinned_replay;
          Alcotest.test_case "campaign jobs-independent" `Slow
            test_campaign_net_jobs_identical;
        ] );
    ]

(* Unit tests for the deterministic simulator (lib/sim). *)

open Csim

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Cells                                                                *)
(* ------------------------------------------------------------------ *)

let test_cell_read_write () =
  let env = Sim.create () in
  let c = Sim.make_cell env ~bits:8 "c" 41 in
  let out = ref 0 in
  let (_ : Sim.stats) =
    Sim.run_solo env (fun () ->
        Sim.write c 42;
        out := Sim.read c)
  in
  check int "read back" 42 !out;
  check int "peek" 42 (Cell.peek c)

let test_cell_counters () =
  let env = Sim.create () in
  let c = Sim.make_cell env ~bits:8 "c" 0 in
  let (_ : Sim.stats) =
    Sim.run_solo env (fun () ->
        Sim.write c 1;
        ignore (Sim.read c);
        ignore (Sim.read c))
  in
  check int "writes" 1 (Cell.writes c);
  check int "reads" 2 (Cell.reads c);
  Cell.reset_counters c;
  check int "reads after reset" 0 (Cell.reads c)

let test_cell_outside_simulation () =
  let env = Sim.create () in
  let c = Sim.make_cell env "c" 0 in
  Alcotest.check_raises "read outside" Sim.Not_in_simulation (fun () ->
      ignore (Sim.read c));
  Alcotest.check_raises "write outside" Sim.Not_in_simulation (fun () ->
      Sim.write c 1)

let test_space_accounting () =
  let env = Sim.create () in
  let _a = Sim.make_cell env ~bits:8 "a" 0 in
  let _b = Sim.make_cell env ~bits:24 "b" 0 in
  let _c = Sim.make_cell env "c" 0 in
  check int "space bits" 32 (Sim.space_bits env);
  check int "cell count" 3 (List.length (Sim.cells env))

(* ------------------------------------------------------------------ *)
(* Scheduling                                                           *)
(* ------------------------------------------------------------------ *)

let two_writers_one_reader ~policy =
  let env = Sim.create () in
  let c = Sim.make_cell env ~pp:string_of_int ~bits:8 "c" 0 in
  let seen = ref [] in
  let procs =
    [|
      (fun () ->
        Sim.write c 1;
        Sim.write c 2);
      (fun () ->
        let v = Sim.read c in
        seen := v :: !seen);
    |]
  in
  let stats = Sim.run env ~policy procs in
  (env, stats, List.rev !seen)

let test_round_robin_interleaving () =
  let _, stats, seen = two_writers_one_reader ~policy:Schedule.Round_robin in
  check int "total events" 3 stats.Sim.steps;
  (* Round-robin: w writes 1, reader reads 1, w writes 2. *)
  check (Alcotest.list int) "reader saw" [ 1 ] seen

let test_deterministic_replay () =
  let trace_of seed =
    let env, _, _ = two_writers_one_reader ~policy:(Schedule.Random seed) in
    List.map
      (fun (e : Trace.event) -> (e.proc, e.cell, e.value))
      (Trace.events (Sim.trace env))
  in
  check bool "same seed, same trace" true (trace_of 7 = trace_of 7);
  let distinct = List.exists (fun s -> trace_of s <> trace_of 7) [ 1; 2; 3; 4; 5 ] in
  check bool "some other seed differs" true distinct

let test_scripted_schedule () =
  let _, _, seen =
    two_writers_one_reader
      ~policy:(Schedule.Scripted ([| 0; 0; 1 |], Schedule.Round_robin))
  in
  check (Alcotest.list int) "reader saw both writes" [ 2 ] seen

let test_scripted_bad_script () =
  Alcotest.check_raises "scheduling a finished process"
    (Schedule.Bad_script "script step 1 schedules process 1, which is not enabled")
    (fun () ->
      let env = Sim.create () in
      let c = Sim.make_cell env "c" 0 in
      let procs = [| (fun () -> Sim.write c 1); (fun () -> Sim.write c 2) |] in
      (* Process 1 performs one event then finishes; scheduling it again
         is a script error. *)
      ignore
        (Sim.run env
           ~policy:(Schedule.Scripted ([| 1; 1 |], Schedule.Round_robin))
           procs))

let test_starving_deterministic () =
  let trace_of seed =
    let env, _, _ = two_writers_one_reader ~policy:(Schedule.Starving seed) in
    List.map
      (fun (e : Trace.event) -> (e.proc, e.cell, e.value))
      (Trace.events (Sim.trace env))
  in
  check bool "same seed, same trace" true (trace_of 3 = trace_of 3);
  (* Seed-sensitivity shows up at driver level once there are enough
     picks for the 1-in-4 relief branch to matter. *)
  let picks seed =
    let d = Schedule.driver (Schedule.Starving seed) in
    List.init 50 (fun step -> Schedule.pick d ~enabled:[| 0; 1; 2 |] ~step)
  in
  check bool "same seed, same picks" true (picks 3 = picks 3);
  let distinct = List.exists (fun s -> picks s <> picks 3) [ 1; 2; 4; 5; 6 ] in
  check bool "some other seed differs" true distinct

let test_starving_starves () =
  (* The adversarial policy grants the front-runner ~3/4 of the steps
     and lets the laggard creep along with the rest. *)
  let d = Schedule.driver (Schedule.Starving 1) in
  let counts = Array.make 2 0 in
  for step = 0 to 199 do
    let p = Schedule.pick d ~enabled:[| 0; 1 |] ~step in
    counts.(p) <- counts.(p) + 1
  done;
  let hi = max counts.(0) counts.(1) and lo = min counts.(0) counts.(1) in
  check bool "front-runner dominates" true (hi >= 120);
  check bool "laggard still progresses" true (lo >= 10)

let test_starving_completes_runs () =
  (* Starvation is adversarial scheduling, not livelock: every process
     still terminates and all events are delivered. *)
  let env = Sim.create ~trace:false () in
  let c = Sim.make_cell env "c" 0 in
  let p () =
    for _ = 1 to 25 do
      Sim.write c 1
    done
  in
  let stats = Sim.run env ~policy:(Schedule.Starving 9) [| p; p; p |] in
  check int "all events delivered" 75 stats.Sim.steps

let test_stuck_detection () =
  let env = Sim.create ~trace:false () in
  let c = Sim.make_cell env "c" 0 in
  let looper () =
    while Sim.read c = 0 do
      ()
    done
  in
  let raised =
    try
      ignore (Sim.run env ~max_steps:1000 [| looper |]);
      false
    with Sim.Stuck _ -> true
  in
  check bool "unbounded busy-wait detected" true raised

let test_switch_count () =
  let env = Sim.create () in
  let c = Sim.make_cell env "c" 0 in
  let p () =
    Sim.write c 1;
    Sim.write c 2
  in
  let stats = Sim.run env ~policy:Schedule.Round_robin [| p; p |] in
  check int "events" 4 stats.Sim.steps;
  check bool "switched at least once" true (stats.Sim.switches >= 2)

let test_note_in_trace () =
  let env = Sim.create () in
  let c = Sim.make_cell env "c" 0 in
  let (_ : Sim.stats) =
    Sim.run_solo env (fun () ->
        Sim.note env ~proc:0 "before";
        Sim.write c 1)
  in
  let notes =
    List.filter (fun (e : Trace.event) -> e.kind = Trace.Note)
      (Trace.events (Sim.trace env))
  in
  check int "one note" 1 (List.length notes)

let test_now_counts_events () =
  let env = Sim.create () in
  let c = Sim.make_cell env "c" 0 in
  check int "initially zero" 0 (Sim.now env);
  let (_ : Sim.stats) =
    Sim.run_solo env (fun () ->
        Sim.write c 1;
        ignore (Sim.read c))
  in
  check int "two events" 2 (Sim.now env)

(* ------------------------------------------------------------------ *)
(* Trace utilities                                                      *)
(* ------------------------------------------------------------------ *)

let test_writes_between () =
  let env = Sim.create () in
  let c = Sim.make_cell env ~pp:string_of_int "c" 0 in
  let (_ : Sim.stats) =
    Sim.run_solo env (fun () ->
        Sim.write c 1;
        Sim.write c 2;
        ignore (Sim.read c);
        Sim.write c 3)
  in
  let tr = Sim.trace env in
  check int "writes in [0,3]" 3 (Trace.writes_between tr ~cell:"c" ~lo:0 ~hi:3);
  check int "writes in [1,2]" 1 (Trace.writes_between tr ~cell:"c" ~lo:1 ~hi:2);
  check int "accesses of c" 4 (List.length (Trace.accesses_of tr ~cell:"c"))

let test_trace_disabled () =
  let env = Sim.create ~trace:false () in
  let c = Sim.make_cell env "c" 0 in
  let (_ : Sim.stats) = Sim.run_solo env (fun () -> Sim.write c 1) in
  check int "no events recorded" 0 (Trace.length (Sim.trace env));
  check int "counters still live" 1 (Cell.writes c)

(* ------------------------------------------------------------------ *)
(* Exhaustive exploration                                               *)
(* ------------------------------------------------------------------ *)

let interleavings ~a ~b =
  (* Two processes performing [a] and [b] writes: the number of distinct
     schedules is binomial(a+b, a). *)
  let factory () =
    let env = Sim.create ~trace:false () in
    let c = Sim.make_cell env "c" 0 in
    let p n () =
      for _ = 1 to n do
        Sim.write c 1
      done
    in
    (env, [| p a; p b |], fun (_ : Sim.env) -> ())
  in
  Sim.explore factory

let binomial n k =
  let rec go acc i = if i > k then acc else go (acc * (n - k + i) / i) (i + 1) in
  go 1 1

let test_explore_counts () =
  List.iter
    (fun (a, b) ->
      let r = interleavings ~a ~b in
      check bool "exhaustive" true r.Sim.exhaustive;
      check int
        (Printf.sprintf "schedules for %d+%d writes" a b)
        (binomial (a + b) a) r.Sim.runs)
    [ (1, 1); (2, 1); (2, 2); (3, 2); (4, 3) ]

let test_explore_finds_bug () =
  (* A lost-update race: both processes read then write c+1; some
     interleaving must yield a final value of 1. *)
  let final = ref (-1) in
  let factory () =
    let env = Sim.create ~trace:false () in
    let c = Sim.make_cell env "c" 0 in
    let p () =
      let v = Sim.read c in
      Sim.write c (v + 1)
    in
    let check_run (_ : Sim.env) =
      final := Cell.peek c;
      if Cell.peek c = 1 then failwith "lost update"
    in
    (env, [| p; p |], check_run)
  in
  let caught =
    try
      ignore (Sim.explore factory);
      false
    with Sim.Exploration_failure { exn = Failure msg; schedule } ->
      check bool "schedule is non-empty" true (schedule <> []);
      msg = "lost update"
  in
  check bool "race found" true caught

let test_explore_max_runs () =
  let factory () =
    let env = Sim.create ~trace:false () in
    let c = Sim.make_cell env "c" 0 in
    let p () =
      for _ = 1 to 5 do
        Sim.write c 1
      done
    in
    (env, [| p; p; p |], fun (_ : Sim.env) -> ())
  in
  let r = Sim.explore ~max_runs:50 factory in
  check bool "not exhaustive" false r.Sim.exhaustive;
  check int "stopped at cap" 50 r.Sim.runs

(* ------------------------------------------------------------------ *)
(* PRNG                                                                 *)
(* ------------------------------------------------------------------ *)

let test_prng_deterministic () =
  let seq seed =
    let p = Schedule.Prng.make seed in
    List.init 20 (fun _ -> Schedule.Prng.int p 100)
  in
  check bool "same seed" true (seq 5 = seq 5);
  check bool "different seed" true (seq 5 <> seq 6)

let test_prng_range () =
  let p = Schedule.Prng.make 99 in
  for _ = 1 to 1000 do
    let v = Schedule.Prng.int p 7 in
    if v < 0 || v >= 7 then Alcotest.fail "out of range"
  done;
  for _ = 1 to 1000 do
    let f = Schedule.Prng.float p in
    if f < 0.0 || f >= 1.0 then Alcotest.fail "float out of range"
  done

let test_prng_pinned_stream () =
  (* Regression pin for the rejection-sampling [Prng.int]: these exact
     values anchor every seeded schedule in the repository.  If this
     test breaks, recorded chaos counterexample scripts and seeded
     campaign results silently change meaning. *)
  let take seed bound n =
    let p = Schedule.Prng.make seed in
    List.init n (fun _ -> Schedule.Prng.int p bound)
  in
  check (Alcotest.list int) "seed 42, bound 10"
    [ 3; 2; 4; 1; 2; 5; 1; 7; 1; 3; 1; 1 ]
    (take 42 10 12);
  check (Alcotest.list int) "seed 7, bound 5" [ 1; 1; 1; 0; 3; 1; 4; 0 ]
    (take 7 5 8)

let test_prng_bad_bound () =
  let p = Schedule.Prng.make 1 in
  List.iter
    (fun bound ->
      Alcotest.check_raises
        (Printf.sprintf "bound %d rejected" bound)
        (Invalid_argument "Prng.int: bound must be positive")
        (fun () -> ignore (Schedule.Prng.int p bound)))
    [ 0; -1; -100 ]

let test_prng_no_modulo_bias () =
  (* With bound 3, plain [mod] over 2^62 draws over-weights residue 0
     by one part in 2^62 — unobservable — but the rejection loop must
     still terminate and stay in range for bounds adversarially close
     to max_int, where the naive overhang computation overflows. *)
  let p = Schedule.Prng.make 17 in
  let big = max_int / 2 + 1 in
  for _ = 1 to 100 do
    let v = Schedule.Prng.int p big in
    if v < 0 || v >= big then Alcotest.fail "out of range for huge bound"
  done

let test_prng_spread () =
  let p = Schedule.Prng.make 42 in
  let buckets = Array.make 4 0 in
  for _ = 1 to 4000 do
    let v = Schedule.Prng.int p 4 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iter
    (fun n -> check bool "each bucket hit reasonably often" true (n > 700))
    buckets

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "sim"
    [
      ( "cells",
        [
          Alcotest.test_case "read-write round trip" `Quick test_cell_read_write;
          Alcotest.test_case "access counters" `Quick test_cell_counters;
          Alcotest.test_case "access outside simulation" `Quick
            test_cell_outside_simulation;
          Alcotest.test_case "space accounting" `Quick test_space_accounting;
        ] );
      ( "scheduling",
        [
          Alcotest.test_case "round-robin interleaving" `Quick
            test_round_robin_interleaving;
          Alcotest.test_case "deterministic replay" `Quick
            test_deterministic_replay;
          Alcotest.test_case "scripted schedule" `Quick test_scripted_schedule;
          Alcotest.test_case "bad script rejected" `Quick
            test_scripted_bad_script;
          Alcotest.test_case "starving policy is deterministic" `Quick
            test_starving_deterministic;
          Alcotest.test_case "starving policy starves" `Quick
            test_starving_starves;
          Alcotest.test_case "starving runs complete" `Quick
            test_starving_completes_runs;
          Alcotest.test_case "busy-wait detection" `Quick test_stuck_detection;
          Alcotest.test_case "switch counting" `Quick test_switch_count;
          Alcotest.test_case "notes in trace" `Quick test_note_in_trace;
          Alcotest.test_case "now counts events" `Quick test_now_counts_events;
        ] );
      ( "trace",
        [
          Alcotest.test_case "writes_between" `Quick test_writes_between;
          Alcotest.test_case "tracing disabled" `Quick test_trace_disabled;
        ] );
      ( "explore",
        [
          Alcotest.test_case "interleaving counts" `Quick test_explore_counts;
          Alcotest.test_case "finds a race" `Quick test_explore_finds_bug;
          Alcotest.test_case "max_runs cap" `Quick test_explore_max_runs;
        ] );
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "range" `Quick test_prng_range;
          Alcotest.test_case "pinned value stream" `Quick
            test_prng_pinned_stream;
          Alcotest.test_case "bad bound rejected" `Quick test_prng_bad_bound;
          Alcotest.test_case "huge bounds stay uniform" `Quick
            test_prng_no_modulo_bias;
          Alcotest.test_case "spread" `Quick test_prng_spread;
        ] );
    ]

(* Layout and semantics of the cache-line-padded atomics (lib/core's
   Padded_atomic): the padded block must behave exactly like a plain
   [Atomic.t] under every primitive — sequentially and under domains —
   while actually occupying a full cache line. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

module P = Composite.Padded_atomic

let test_layout () =
  let a = P.make 42 in
  check bool "padded block spans a cache line" true
    (P.size_words a * 8 >= P.line_bytes);
  check int "plain atomic is one word (the contrast)" 1
    (P.size_words (Atomic.make 42));
  (* Arrays allocate one padded block per slot, no sharing. *)
  let arr = P.array 4 0 in
  Atomic.set arr.(1) 7;
  check int "slots are independent" 0 (Atomic.get arr.(0));
  check int "written slot" 7 (Atomic.get arr.(1));
  let ini = P.init 3 (fun i -> i * 10) in
  check int "init seeds each slot" 20 (Atomic.get ini.(2))

let test_atomic_semantics () =
  let a = P.make 1 in
  check int "get" 1 (Atomic.get a);
  Atomic.set a 5;
  check int "set/get" 5 (Atomic.get a);
  check int "exchange returns old" 5 (Atomic.exchange a 9);
  check int "exchange installs new" 9 (Atomic.get a);
  check bool "cas hit" true (Atomic.compare_and_set a 9 11);
  check bool "cas miss" false (Atomic.compare_and_set a 9 13);
  check int "fetch_and_add returns old" 11 (Atomic.fetch_and_add a 3);
  check int "after fetch_and_add" 14 (Atomic.get a);
  Atomic.incr a;
  Atomic.decr a;
  check int "incr/decr" 14 (Atomic.get a);
  (* Boxed values survive the padded block (GC scans field 0). *)
  let b = P.make [| "x" |] in
  Atomic.set b [| "y"; "z" |];
  Gc.full_major ();
  check int "boxed payload intact" 2 (Array.length (Atomic.get b))

let test_contended_increments () =
  (* D domains hammer fetch_and_add on their own padded cell; totals
     must be exact (each cell is a real atomic, padding changes layout
     only). *)
  let d = 4 and per = 20_000 in
  let cells = P.array d 0 in
  let domains =
    List.init d (fun i ->
        Domain.spawn (fun () ->
            for _ = 1 to per do
              ignore (Atomic.fetch_and_add cells.(i) 1)
            done))
  in
  List.iter Domain.join domains;
  Array.iteri
    (fun i c -> check int (Printf.sprintf "cell %d total" i) per (Atomic.get c))
    cells

let test_padded_memory () =
  (* The Memory.t built on padded cells honours the cell contract. *)
  let mem = Composite.Multicore.padded_memory () in
  let c = mem.Csim.Memory.make ~name:"pad" ~bits:64 3 in
  check int "initial" 3 (c.Csim.Memory.read ());
  c.Csim.Memory.write 8;
  check int "written" 8 (c.Csim.Memory.read ());
  check int "peek" 8 (c.Csim.Memory.peek ())

let () =
  Alcotest.run "padded_atomic"
    [
      ( "padded",
        [
          Alcotest.test_case "layout" `Quick test_layout;
          Alcotest.test_case "atomic semantics" `Quick test_atomic_semantics;
          Alcotest.test_case "contended increments" `Quick
            test_contended_increments;
          Alcotest.test_case "padded memory" `Quick test_padded_memory;
        ] );
    ]

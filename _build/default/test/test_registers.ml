(* Tests for the register-construction ladder (lib/registers): each rung
   is exercised sequentially, then under randomized schedules with the
   appropriate checker (regularity for regular registers, the generic
   linearizability oracle for atomic ones), and the separations between
   the register classes are demonstrated. *)

open Csim
open Registers

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let reg_spec = History.Linearize.register_spec ~equal:Int.equal

(* Record a register history: ops are closures returning reg in/out. *)
let recorded_ops = ref []

let record env ~proc ~label f =
  let inv = Sim.now env in
  let input, output = f () in
  let res = Sim.now env in
  recorded_ops :=
    History.Oprec.v ~proc ~label ~input ~output ~inv ~res :: !recorded_ops

let reset_record () = recorded_ops := []

(* ------------------------------------------------------------------ *)
(* Weak models                                                          *)
(* ------------------------------------------------------------------ *)

let test_safe_quiescent () =
  let env = Sim.create () in
  let r = Weak.safe_bit env ~name:"s" ~seed:1 false in
  let out = ref false in
  let (_ : Sim.stats) =
    Sim.run_solo env (fun () ->
        Weak.write_safe r true;
        out := Weak.read_safe r)
  in
  check bool "quiescent read correct" true !out

let test_safe_overlap_arbitrary () =
  (* A 10-valued safe register read during a write can return a value
     that is neither old nor new. *)
  let garbage = ref false in
  for seed = 1 to 50 do
    let env = Sim.create () in
    let r =
      Weak.safe env ~name:"s" ~seed
        ~domain:(fun prng -> Schedule.Prng.int prng 10)
        0
    in
    let seen = ref (-1) in
    let procs =
      [|
        (fun () -> Weak.write_safe r 1);
        (fun () -> seen := Weak.read_safe r);
      |]
    in
    (* Schedule the read strictly between the write's two events. *)
    ignore
      (Sim.run env
         ~policy:(Schedule.Scripted ([| 0; 1; 0 |], Schedule.Round_robin))
         procs);
    if !seen <> 0 && !seen <> 1 then garbage := true
  done;
  check bool "some overlapping read returned garbage" true !garbage

let test_regular_overlap_old_or_new () =
  for seed = 1 to 50 do
    let env = Sim.create () in
    let r = Weak.regular env ~name:"r" ~seed 0 in
    let seen = ref (-1) in
    let procs =
      [|
        (fun () -> Weak.write_regular r 1);
        (fun () -> seen := Weak.read_regular r);
      |]
    in
    ignore
      (Sim.run env
         ~policy:(Schedule.Scripted ([| 0; 1; 0 |], Schedule.Round_robin))
         procs);
    if !seen <> 0 && !seen <> 1 then
      Alcotest.failf "regular register returned %d (neither old nor new)" !seen
  done

(* ------------------------------------------------------------------ *)
(* Step 1: regular bit from safe bit                                    *)
(* ------------------------------------------------------------------ *)

let test_regular_bit_sequential () =
  let env = Sim.create () in
  let r = Constructions.Regular_bit_of_safe.create env ~name:"b" ~seed:3 false in
  let outs = ref [] in
  let (_ : Sim.stats) =
    Sim.run_solo env (fun () ->
        Constructions.Regular_bit_of_safe.write r true;
        outs := Constructions.Regular_bit_of_safe.read r :: !outs;
        Constructions.Regular_bit_of_safe.write r true;
        (* suppressed *)
        Constructions.Regular_bit_of_safe.write r false;
        outs := Constructions.Regular_bit_of_safe.read r :: !outs)
  in
  check (Alcotest.list bool) "reads" [ false; true ] !outs

let test_regular_bit_is_regular () =
  (* Under every interleaving of one write and one read, the read
     returns old or new — never anything else (trivially true for bits,
     but the suppressed-write mechanism is what the exhaustive run
     exercises: rewriting the same value causes no overlap at all). *)
  let r_explore =
    Sim.explore (fun () ->
        let env = Sim.create ~trace:false () in
        let r =
          Constructions.Regular_bit_of_safe.create env ~name:"b" ~seed:7 false
        in
        let seen = ref true in
        let procs =
          [|
            (fun () ->
              Constructions.Regular_bit_of_safe.write r false;
              (* suppressed: no events *)
              Constructions.Regular_bit_of_safe.write r true);
            (fun () -> seen := Constructions.Regular_bit_of_safe.read r);
          |]
        in
        (env, procs, fun (_ : Sim.env) -> ignore !seen))
  in
  check bool "exhaustive" true r_explore.Sim.exhaustive

(* ------------------------------------------------------------------ *)
(* Step 2: k-ary regular from regular bits                              *)
(* ------------------------------------------------------------------ *)

let test_kary_sequential () =
  let env = Sim.create () in
  let r = Constructions.Regular_kary_of_bits.create env ~name:"k" ~seed:3 ~k:5 2 in
  let outs = ref [] in
  let (_ : Sim.stats) =
    Sim.run_solo env (fun () ->
        outs := Constructions.Regular_kary_of_bits.read r :: !outs;
        Constructions.Regular_kary_of_bits.write r 4;
        outs := Constructions.Regular_kary_of_bits.read r :: !outs;
        Constructions.Regular_kary_of_bits.write r 0;
        outs := Constructions.Regular_kary_of_bits.read r :: !outs)
  in
  check (Alcotest.list int) "reads" [ 0; 4; 2 ] !outs

let test_kary_regular_random () =
  (* Randomized schedules: every read must be regular-feasible. *)
  for seed = 1 to 100 do
    let env = Sim.create () in
    let r =
      Constructions.Regular_kary_of_bits.create env ~name:"k" ~seed ~k:4 0
    in
    reset_record ();
    let writer () =
      List.iter
        (fun v ->
          record env ~proc:0 ~label:"w" (fun () ->
              Constructions.Regular_kary_of_bits.write r v;
              (History.Linearize.Reg_write v, History.Linearize.Reg_done)))
        [ 3; 1; 2 ]
    in
    let reader () =
      for _ = 1 to 4 do
        record env ~proc:1 ~label:"r" (fun () ->
            let v = Constructions.Regular_kary_of_bits.read r in
            (History.Linearize.Reg_read, History.Linearize.Reg_value v))
      done
    in
    ignore (Sim.run env ~policy:(Schedule.Random seed) [| writer; reader |]);
    let ops = History.Oprec.tighten_intervals (Sim.trace env) !recorded_ops in
    if not (History.Regularity.check ~equal:Int.equal ~init:0 ops) then
      Alcotest.failf "k-ary register not regular under seed %d" seed
  done

(* ------------------------------------------------------------------ *)
(* Step 3: atomic SRSW from regular                                     *)
(* ------------------------------------------------------------------ *)

let test_srsw_sequential () =
  let env = Sim.create () in
  let r = Constructions.Atomic_srsw_of_regular.create env ~name:"a" ~seed:3 0 in
  let outs = ref [] in
  let (_ : Sim.stats) =
    Sim.run_solo env (fun () ->
        Constructions.Atomic_srsw_of_regular.write r 5;
        outs := Constructions.Atomic_srsw_of_regular.read r :: !outs;
        Constructions.Atomic_srsw_of_regular.write r 6;
        outs := Constructions.Atomic_srsw_of_regular.read r :: !outs)
  in
  check (Alcotest.list int) "reads" [ 6; 5 ] !outs

let run_srsw_history seed =
  let env = Sim.create () in
  let r = Constructions.Atomic_srsw_of_regular.create env ~name:"a" ~seed 0 in
  reset_record ();
  let writer () =
    List.iter
      (fun v ->
        record env ~proc:0 ~label:"w" (fun () ->
            Constructions.Atomic_srsw_of_regular.write r v;
            (History.Linearize.Reg_write v, History.Linearize.Reg_done)))
      [ 1; 2; 3 ]
  in
  let reader () =
    for _ = 1 to 4 do
      record env ~proc:1 ~label:"r" (fun () ->
          let v = Constructions.Atomic_srsw_of_regular.read r in
          (History.Linearize.Reg_read, History.Linearize.Reg_value v))
    done
  in
  ignore (Sim.run env ~policy:(Schedule.Random seed) [| writer; reader |]);
  History.Oprec.tighten_intervals (Sim.trace env) !recorded_ops

let test_srsw_atomic_random () =
  for seed = 1 to 100 do
    let ops = run_srsw_history seed in
    if not (History.Linearize.is_linearizable reg_spec ~init:0 ops) then
      Alcotest.failf "SRSW register not atomic under seed %d" seed
  done

let test_regular_alone_is_not_atomic () =
  (* Motivating separation: with both reads scheduled inside the write's
     window (script: w-enter, read, read, w-commit), some adversary
     choice makes the raw regular register answer new-then-old — regular
     but not atomic.  The sequence-number construction (previous test)
     never does. *)
  let found = ref false in
  for seed = 1 to 20 do
    let env = Sim.create () in
    let r = Weak.regular env ~name:"r" ~seed 0 in
    reset_record ();
    let writer () =
      record env ~proc:0 ~label:"w" (fun () ->
          Weak.write_regular r 1;
          (History.Linearize.Reg_write 1, History.Linearize.Reg_done))
    in
    let reader () =
      for _ = 1 to 2 do
        record env ~proc:1 ~label:"r" (fun () ->
            let v = Weak.read_regular r in
            (History.Linearize.Reg_read, History.Linearize.Reg_value v))
      done
    in
    ignore
      (Sim.run env
         ~policy:(Schedule.Scripted ([| 0; 1; 1; 0 |], Schedule.Round_robin))
         [| writer; reader |]);
    let ops = History.Oprec.tighten_intervals (Sim.trace env) !recorded_ops in
    if
      History.Regularity.check ~equal:Int.equal ~init:0 ops
      && not (History.Linearize.is_linearizable reg_spec ~init:0 ops)
    then found := true
  done;
  check bool "found a regular-but-not-atomic history" true !found

(* ------------------------------------------------------------------ *)
(* Step 4: atomic MRSW from SRSW                                        *)
(* ------------------------------------------------------------------ *)

let test_mrsw_sequential () =
  let env = Sim.create () in
  let r = Constructions.Atomic_mrsw_of_srsw.create env ~name:"m" ~readers:3 0 in
  check int "SRSW register count" 12
    (Constructions.Atomic_mrsw_of_srsw.srsw_registers r);
  let outs = ref [] in
  let (_ : Sim.stats) =
    Sim.run_solo env (fun () ->
        Constructions.Atomic_mrsw_of_srsw.write r 5;
        outs := Constructions.Atomic_mrsw_of_srsw.read r ~reader:0 :: !outs;
        outs := Constructions.Atomic_mrsw_of_srsw.read r ~reader:2 :: !outs)
  in
  check (Alcotest.list int) "both readers" [ 5; 5 ] !outs

let test_mrsw_atomic_random () =
  for seed = 1 to 100 do
    let env = Sim.create () in
    let r = Constructions.Atomic_mrsw_of_srsw.create env ~name:"m" ~readers:2 0 in
    reset_record ();
    let writer () =
      List.iter
        (fun v ->
          record env ~proc:0 ~label:"w" (fun () ->
              Constructions.Atomic_mrsw_of_srsw.write r v;
              (History.Linearize.Reg_write v, History.Linearize.Reg_done)))
        [ 1; 2; 3 ]
    in
    let reader j () =
      for _ = 1 to 3 do
        record env ~proc:(1 + j) ~label:"r" (fun () ->
            let v = Constructions.Atomic_mrsw_of_srsw.read r ~reader:j in
            (History.Linearize.Reg_read, History.Linearize.Reg_value v))
      done
    in
    ignore
      (Sim.run env ~policy:(Schedule.Random seed) [| writer; reader 0; reader 1 |]);
    let ops = History.Oprec.tighten_intervals (Sim.trace env) !recorded_ops in
    if not (History.Linearize.is_linearizable reg_spec ~init:0 ops) then
      Alcotest.failf "MRSW register not atomic under seed %d" seed
  done

(* ------------------------------------------------------------------ *)
(* Step 5: atomic MRMW from MRSW                                        *)
(* ------------------------------------------------------------------ *)

let test_mrmw_sequential () =
  let env = Sim.create () in
  let r = Constructions.Atomic_mrmw_of_mrsw.create env ~name:"w" ~writers:2 0 in
  let outs = ref [] in
  let (_ : Sim.stats) =
    Sim.run_solo env (fun () ->
        Constructions.Atomic_mrmw_of_mrsw.write r ~writer:0 5;
        Constructions.Atomic_mrmw_of_mrsw.write r ~writer:1 6;
        outs := Constructions.Atomic_mrmw_of_mrsw.read r :: !outs)
  in
  check (Alcotest.list int) "last write wins" [ 6 ] !outs

let test_mrmw_atomic_random () =
  for seed = 1 to 100 do
    let env = Sim.create () in
    let r = Constructions.Atomic_mrmw_of_mrsw.create env ~name:"w" ~writers:2 0 in
    reset_record ();
    let writer i () =
      List.iter
        (fun v ->
          record env ~proc:i ~label:"w" (fun () ->
              Constructions.Atomic_mrmw_of_mrsw.write r ~writer:i v;
              (History.Linearize.Reg_write v, History.Linearize.Reg_done)))
        [ (10 * (i + 1)) + 1; (10 * (i + 1)) + 2 ]
    in
    let reader () =
      for _ = 1 to 3 do
        record env ~proc:2 ~label:"r" (fun () ->
            let v = Constructions.Atomic_mrmw_of_mrsw.read r in
            (History.Linearize.Reg_read, History.Linearize.Reg_value v))
      done
    in
    ignore
      (Sim.run env ~policy:(Schedule.Random seed) [| writer 0; writer 1; reader |]);
    let ops = History.Oprec.tighten_intervals (Sim.trace env) !recorded_ops in
    if not (History.Linearize.is_linearizable reg_spec ~init:0 ops) then
      Alcotest.failf "MRMW register not atomic under seed %d" seed
  done

let test_mrmw_exhaustive_two_writers () =
  let r_explore =
    Sim.explore ~max_runs:100_000 (fun () ->
        let env = Sim.create () in
        let r =
          Constructions.Atomic_mrmw_of_mrsw.create env ~name:"w" ~writers:2 0
        in
        reset_record ();
        let writer i () =
          record env ~proc:i ~label:"w" (fun () ->
              Constructions.Atomic_mrmw_of_mrsw.write r ~writer:i (i + 1);
              (History.Linearize.Reg_write (i + 1), History.Linearize.Reg_done))
        in
        let reader () =
          record env ~proc:2 ~label:"r" (fun () ->
              let v = Constructions.Atomic_mrmw_of_mrsw.read r in
              (History.Linearize.Reg_read, History.Linearize.Reg_value v))
        in
        let check_run env =
          let ops = History.Oprec.tighten_intervals (Sim.trace env) !recorded_ops in
          if not (History.Linearize.is_linearizable reg_spec ~init:0 ops) then
            failwith "not atomic"
        in
        (env, [| writer 0; writer 1; reader |], check_run))
  in
  check bool "exhaustive" true r_explore.Sim.exhaustive;
  check bool "many interleavings" true (r_explore.Sim.runs > 100)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "registers"
    [
      ( "weak models",
        [
          Alcotest.test_case "safe quiescent" `Quick test_safe_quiescent;
          Alcotest.test_case "safe overlap arbitrary" `Quick
            test_safe_overlap_arbitrary;
          Alcotest.test_case "regular overlap old/new" `Quick
            test_regular_overlap_old_or_new;
        ] );
      ( "regular bit of safe",
        [
          Alcotest.test_case "sequential" `Quick test_regular_bit_sequential;
          Alcotest.test_case "regularity (exhaustive)" `Quick
            test_regular_bit_is_regular;
        ] );
      ( "k-ary regular",
        [
          Alcotest.test_case "sequential" `Quick test_kary_sequential;
          Alcotest.test_case "regular under random schedules" `Quick
            test_kary_regular_random;
        ] );
      ( "atomic srsw",
        [
          Alcotest.test_case "sequential" `Quick test_srsw_sequential;
          Alcotest.test_case "atomic under random schedules" `Quick
            test_srsw_atomic_random;
          Alcotest.test_case "regular alone is not atomic" `Quick
            test_regular_alone_is_not_atomic;
        ] );
      ( "atomic mrsw",
        [
          Alcotest.test_case "sequential" `Quick test_mrsw_sequential;
          Alcotest.test_case "atomic under random schedules" `Quick
            test_mrsw_atomic_random;
        ] );
      ( "atomic mrmw",
        [
          Alcotest.test_case "sequential" `Quick test_mrmw_sequential;
          Alcotest.test_case "atomic under random schedules" `Quick
            test_mrmw_atomic_random;
          Alcotest.test_case "exhaustive two writers" `Slow
            test_mrmw_exhaustive_two_writers;
        ] );
    ]

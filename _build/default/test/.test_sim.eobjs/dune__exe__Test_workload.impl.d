test/test_workload.ml: Alcotest Array Format List String Workload

test/test_registers.mli:

test/test_anderson.mli:

test/test_afek.ml: Alcotest Array Composite Csim History Int List Memory Printf Schedule Sim Trace Workload

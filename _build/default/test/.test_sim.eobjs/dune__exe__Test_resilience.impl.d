test/test_resilience.ml: Alcotest Array Cell Composite Csim History Int List Memory QCheck2 QCheck_alcotest Render Schedule Sim String Workload

test/test_shrinking.mli:

test/test_registers.ml: Alcotest Constructions Csim History Int List Registers Schedule Sim Weak

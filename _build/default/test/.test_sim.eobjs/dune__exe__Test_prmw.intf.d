test/test_prmw.mli:

test/test_prmw.ml: Alcotest Composite Csim History List Memory Prmw Schedule Sim

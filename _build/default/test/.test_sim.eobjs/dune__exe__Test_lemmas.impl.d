test/test_lemmas.ml: Alcotest Composite Csim List Memory Schedule Sim Workload

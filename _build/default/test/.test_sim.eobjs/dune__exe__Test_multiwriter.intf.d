test/test_multiwriter.mli:

test/test_anderson.ml: Alcotest Array Composite Csim Hashtbl History Int List Memory Printf QCheck2 QCheck_alcotest Schedule Sim Trace Workload

test/test_mutants.mli:

test/test_sim.ml: Alcotest Array Cell Csim List Printf Schedule Sim Trace

test/test_afek.mli:

test/test_fullstack.mli:

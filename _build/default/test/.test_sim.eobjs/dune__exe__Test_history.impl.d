test/test_history.ml: Alcotest Array Csim History Int Linearize List Oprec QCheck2 QCheck_alcotest Regularity Sim

test/test_lemmas.mli:

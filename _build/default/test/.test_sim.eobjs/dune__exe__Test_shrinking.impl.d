test/test_shrinking.ml: Alcotest Array Composite Csim History Int Linearize List Memory QCheck2 QCheck_alcotest Schedule Shrinking Sim Snapshot_history

test/test_fullstack.ml: Alcotest Array Composite Csim History Int List Printf Registers Schedule Sim

test/test_multiwriter.ml: Alcotest Array Composite Csim History Int List Memory Printf Schedule Sim

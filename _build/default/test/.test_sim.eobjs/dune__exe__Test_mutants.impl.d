test/test_mutants.ml: Alcotest Composite Csim List Memory Sim

test/test_multicore.mli:

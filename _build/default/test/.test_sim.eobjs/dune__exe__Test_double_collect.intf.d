test/test_double_collect.mli:

test/test_multicore.ml: Alcotest Array Atomic Composite Domain History Int List

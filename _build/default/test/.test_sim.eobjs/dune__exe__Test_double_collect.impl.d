test/test_double_collect.ml: Alcotest Composite Csim History Int Memory Schedule Sim String Workload

(* The paper's proof, machine-checked on concrete runs: Lemma 2 ("every
   Read shrinks to a point"), property (12) (ghost ids are monotone),
   and Lemma 1 (bounded Writer-0 progress without the handshake) — see
   Workload.Lemmas.  A failure of any of these on any schedule would
   contradict the paper's Section 4.2. *)

open Csim

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let clean (r : Workload.Lemmas.report) =
  check int "lemma 2 failures" 0 r.Workload.Lemmas.lemma2_failures;
  check int "property (12) failures" 0 r.Workload.Lemmas.property12_failures;
  check int "lemma 1 failures" 0 r.Workload.Lemmas.lemma1_failures;
  check bool "reads were actually checked" true
    (r.Workload.Lemmas.reads_checked > 0)

let test_default_config () =
  clean (Workload.Lemmas.run ~schedules:40 ~base_seed:1 ())

let test_wide_register () =
  clean
    (Workload.Lemmas.run ~components:4 ~readers:3 ~writes_per_writer:2
       ~scans_per_reader:2 ~schedules:20 ~base_seed:500 ())

let test_deep_recursion () =
  clean
    (Workload.Lemmas.run ~components:5 ~readers:1 ~writes_per_writer:2
       ~scans_per_reader:2 ~schedules:10 ~base_seed:900 ())

let test_single_component () =
  clean
    (Workload.Lemmas.run ~components:1 ~readers:2 ~schedules:15 ~base_seed:77 ())

let test_many_readers () =
  clean
    (Workload.Lemmas.run ~components:2 ~readers:4 ~writes_per_writer:2
       ~scans_per_reader:2 ~schedules:20 ~base_seed:4242 ())

(* The ghost-state machinery itself. *)

let test_ghost_items_track_updates () =
  let env = Sim.create ~trace:false () in
  let mem = Memory.of_sim env in
  let reg =
    Composite.Anderson.create mem ~readers:1 ~bits_per_value:8 ~init:[| 1; 2; 3 |]
  in
  let ghosts = ref [] in
  let (_ : Sim.stats) =
    Sim.run_solo env (fun () ->
        ignore (Composite.Anderson.update reg ~writer:1 9);
        ghosts := Composite.Anderson.ghost_items reg :: !ghosts;
        ignore (Composite.Anderson.update reg ~writer:0 8);
        ghosts := Composite.Anderson.ghost_items reg :: !ghosts)
  in
  match List.rev !ghosts with
  | [ g1; g2 ] ->
    check (Alcotest.array int) "after first update" [| 1; 9; 3 |]
      (Composite.Item.values g1);
    check (Alcotest.array int) "after second update" [| 8; 9; 3 |]
      (Composite.Item.values g2);
    check (Alcotest.array int) "ghost ids" [| 1; 1; 0 |] (Composite.Item.ids g2)
  | _ -> Alcotest.fail "expected two ghosts"

let test_observer_called_per_event () =
  let env = Sim.create ~trace:false () in
  let c = Sim.make_cell env "c" 0 in
  let calls = ref 0 in
  Sim.on_event env (fun ~step:_ -> incr calls);
  let (_ : Sim.stats) =
    Sim.run_solo env (fun () ->
        Sim.write c 1;
        ignore (Sim.read c);
        Sim.write c 2)
  in
  check int "one call per event" 3 !calls

let test_self_identity () =
  let env = Sim.create ~trace:false () in
  let c = Sim.make_cell env "c" 0 in
  let ids = ref [] in
  let p () =
    ids := Sim.self () :: !ids;
    Sim.write c 1;
    ids := Sim.self () :: !ids
  in
  let (_ : Sim.stats) = Sim.run env ~policy:Schedule.Round_robin [| p; p; p |] in
  check int "six identity queries" 6 (List.length !ids);
  List.iter
    (fun i -> check bool "valid process id" true (i >= 0 && i < 3))
    !ids;
  Alcotest.check_raises "self outside simulation" Sim.Not_in_simulation
    (fun () -> ignore (Sim.self ()))

let () =
  Alcotest.run "lemmas"
    [
      ( "executable proof",
        [
          Alcotest.test_case "default config" `Quick test_default_config;
          Alcotest.test_case "wide register" `Quick test_wide_register;
          Alcotest.test_case "deep recursion" `Quick test_deep_recursion;
          Alcotest.test_case "single component" `Quick test_single_component;
          Alcotest.test_case "many readers" `Quick test_many_readers;
        ] );
      ( "ghost machinery",
        [
          Alcotest.test_case "ghost items" `Quick test_ghost_items_track_updates;
          Alcotest.test_case "observer per event" `Quick
            test_observer_called_per_event;
          Alcotest.test_case "process identity" `Quick test_self_identity;
        ] );
    ]

(* End-to-end composition tests: the composite register running on MRSW
   registers that are themselves constructed from SRSW registers
   (Registers.Full_stack) — the combined claim chain of the paper and
   its register-construction references, mechanically verified. *)

open Csim

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let build ~processes ~readers ~init =
  let env = Sim.create ~trace:false () in
  let mem = Registers.Full_stack.memory env ~processes in
  let reg = Composite.Anderson.create mem ~readers ~bits_per_value:16 ~init in
  (env, reg)

let test_sequential () =
  let env, reg = build ~processes:1 ~readers:1 ~init:[| 1; 2; 3 |] in
  let out = ref [||] in
  let (_ : Sim.stats) =
    Sim.run_solo env (fun () ->
        ignore (Composite.Anderson.update reg ~writer:1 9);
        out :=
          Composite.Item.values (Composite.Anderson.scan_items reg ~reader:0))
  in
  check (Alcotest.array int) "snapshot over constructed registers"
    [| 1; 9; 3 |] !out

let test_cost_composition () =
  (* With P processes, each constructed-register op multiplies: solo
     scan = TR(C) * read_cost(P) when only reads occur... the reader
     also announces, so simply assert the measured product identity for
     P = 1 (read_cost 1 = 1, write_cost 1 = 1). *)
  List.iter
    (fun c ->
      let env, reg = build ~processes:1 ~readers:1 ~init:(Array.make c 0) in
      let t0 = Sim.now env in
      let (_ : Sim.stats) =
        Sim.run_solo env (fun () ->
            ignore (Composite.Anderson.scan_items reg ~reader:0))
      in
      check int
        (Printf.sprintf "SRSW ops per scan at C=%d, P=1" c)
        (Composite.Complexity.tr ~c)
        (Sim.now env - t0))
    [ 1; 2; 3; 4; 5 ]

let test_cost_grows_with_processes () =
  let scan_cost processes =
    let env, reg = build ~processes ~readers:1 ~init:[| 0; 0 |] in
    let t0 = Sim.now env in
    let (_ : Sim.stats) =
      Sim.run_solo env (fun () ->
          ignore (Composite.Anderson.scan_items reg ~reader:0))
    in
    Sim.now env - t0
  in
  let c1 = scan_cost 1 and c4 = scan_cost 4 in
  check bool "more ports, more SRSW traffic" true (c4 > 2 * c1);
  (* Reads cost 2P-1 and writes P; a C=2 scan is 6 reads + 1 write. *)
  check int "exact composed cost at P=4"
    ((6 * Registers.Full_stack.read_cost ~processes:4)
    + Registers.Full_stack.write_cost ~processes:4)
    c4

let linearizable_campaign ~seeds ~components ~readers =
  let processes = components + readers in
  let flagged = ref 0 and oracle = ref 0 in
  for seed = 1 to seeds do
    let env = Sim.create ~trace:false () in
    let mem = Registers.Full_stack.memory env ~processes in
    let init = Array.init components (fun k -> (k + 1) * 10) in
    let reg = Composite.Anderson.create mem ~readers ~bits_per_value:16 ~init in
    let rec_ =
      Composite.Snapshot.record
        ~clock:(fun () -> Sim.now env)
        ~initial:init
        (Composite.Anderson.handle reg)
    in
    let writer k () =
      for s = 1 to 2 do
        rec_.Composite.Snapshot.rupdate ~writer:k (((k + 1) * 100) + s)
      done
    in
    let reader j () =
      for _ = 1 to 2 do
        ignore (rec_.Composite.Snapshot.rscan ~reader:j)
      done
    in
    let procs =
      Array.init processes (fun p ->
          if p < components then writer p else reader (p - components))
    in
    let (_ : Sim.stats) = Sim.run env ~policy:(Schedule.Random seed) procs in
    let h = Composite.Snapshot.history rec_ in
    if not (History.Shrinking.conditions_hold ~equal:Int.equal h) then
      incr flagged;
    if
      not
        (History.Linearize.is_linearizable
           (History.Linearize.snapshot_spec ~equal:Int.equal)
           ~init
           (History.Snapshot_history.to_ops h))
    then incr oracle
  done;
  (!flagged, !oracle)

let linearizable_case (components, readers, seeds) =
  Alcotest.test_case
    (Printf.sprintf "C=%d R=%d over SRSW substrate (%d seeds)" components
       readers seeds)
    `Quick
    (fun () ->
      let flagged, oracle = linearizable_campaign ~seeds ~components ~readers in
      check int "no shrinking violations" 0 flagged;
      check int "no oracle failures" 0 oracle)

let test_constructed_memory_validation () =
  let env = Sim.create ~trace:false () in
  Alcotest.check_raises "zero processes"
    (Invalid_argument "Full_stack.memory") (fun () ->
      ignore (Registers.Full_stack.memory env ~processes:0))

let () =
  Alcotest.run "fullstack"
    [
      ( "composition",
        [
          Alcotest.test_case "sequential" `Quick test_sequential;
          Alcotest.test_case "cost identity (P=1)" `Quick test_cost_composition;
          Alcotest.test_case "cost grows with ports" `Quick
            test_cost_grows_with_processes;
          Alcotest.test_case "validation" `Quick
            test_constructed_memory_validation;
        ] );
      ( "linearizability",
        List.map linearizable_case
          [ (2, 1, 40); (2, 2, 60); (3, 1, 30); (3, 2, 40) ] );
    ]

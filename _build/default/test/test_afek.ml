(* Tests for the Afek et al. baseline snapshot (lib/core/afek):
   sequential semantics, the borrow path, the polynomial cost bound, and
   linearizability campaigns. *)

open Csim

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let fresh ~init =
  let env = Sim.create ~trace:false () in
  let mem = Memory.of_sim env in
  let handle = Composite.Afek.create mem ~bits_per_value:16 ~init in
  (env, handle)

let test_initial_scan () =
  let env, h = fresh ~init:[| 4; 5; 6 |] in
  let out = ref [||] in
  let (_ : Sim.stats) =
    Sim.run_solo env (fun () -> out := Composite.Snapshot.scan h ~reader:0)
  in
  check (Alcotest.array int) "initial" [| 4; 5; 6 |] !out

let test_sequential_updates () =
  let env, h = fresh ~init:[| 0; 0 |] in
  let out = ref [||] in
  let (_ : Sim.stats) =
    Sim.run_solo env (fun () ->
        ignore (h.Composite.Snapshot.update ~writer:1 9);
        ignore (h.Composite.Snapshot.update ~writer:0 8);
        out := Composite.Snapshot.scan h ~reader:0)
  in
  check (Alcotest.array int) "values" [| 8; 9 |] !out

let test_ids_monotone () =
  let env, h = fresh ~init:[| 0; 0 |] in
  let ids = ref [] in
  let (_ : Sim.stats) =
    Sim.run_solo env (fun () ->
        for _ = 1 to 3 do
          ids := h.Composite.Snapshot.update ~writer:0 1 :: !ids
        done)
  in
  check (Alcotest.list int) "increasing ids" [ 1; 2; 3 ] (List.rev !ids)

(* In quiescence a scan is exactly two collects (2C reads) and an update
   is a scan plus one write. *)
let quiescent_cost_case c =
  Alcotest.test_case
    (Printf.sprintf "quiescent costs at C=%d" c)
    `Quick
    (fun () ->
      check int "scan = 2C reads" (2 * c)
        (Workload.Meter.scan_cost Workload.Campaign.Impl_afek ~c ~r:2);
      check int "update = scan + 1"
        ((2 * c) + 1)
        (Workload.Meter.update_cost Workload.Campaign.Impl_afek ~c ~r:2
           ~writer:0);
      check bool "within worst-case bound" true
        (2 * c <= Composite.Afek.scan_bound ~components:c))

let test_scan_cost_bounded_under_storm () =
  (* Against a storm of writer activity the scan cost stays within the
     (C+2)*C worst case — wait-freedom with a polynomial bound. *)
  let c = 3 in
  for seed = 1 to 60 do
    let env = Sim.create () in
    let mem = Memory.of_sim env in
    let h = Composite.Afek.create mem ~bits_per_value:16 ~init:(Array.make c 0) in
    let writer k () =
      for s = 1 to 6 do
        ignore (h.Composite.Snapshot.update ~writer:k s)
      done
    in
    let reader () = ignore (h.Composite.Snapshot.scan_items ~reader:0) in
    let procs =
      Array.append (Array.init c (fun k -> writer k)) [| reader |]
    in
    ignore (Sim.run env ~policy:(Schedule.Random seed) procs);
    let reader_events =
      List.length
        (List.filter
           (fun (e : Trace.event) -> e.proc = c && e.kind <> Trace.Note)
           (Trace.events (Sim.trace env)))
    in
    if reader_events > Composite.Afek.scan_bound ~components:c then
      Alcotest.failf "scan used %d events (bound %d) at seed %d" reader_events
        (Composite.Afek.scan_bound ~components:c)
        seed
  done

let test_borrow_path () =
  (* Force a borrow: the reader's first collect, then writer 0 completes
     two full updates before the reader proceeds — the reader must
     return the second update's embedded view, and stay linearizable.

     Events: an update is (scan = 2 collects = 2C reads) + 1 write; a
     collect is C reads. *)
  let c = 2 in
  let env = Sim.create () in
  let mem = Memory.of_sim env in
  let h = Composite.Afek.create mem ~bits_per_value:16 ~init:(Array.make c 0) in
  let rec_ =
    Composite.Snapshot.record
      ~clock:(fun () -> Sim.now env)
      ~initial:(Array.make c 0) h
  in
  let writer () =
    for s = 1 to 3 do
      rec_.Composite.Snapshot.rupdate ~writer:0 s
    done
  in
  let reader () = ignore (rec_.Composite.Snapshot.rscan ~reader:0) in
  let update_events = (2 * c) + 1 in
  let script =
    Array.concat
      [
        Array.make c 1; (* reader: first collect *)
        Array.make (2 * update_events) 0; (* writer: two full updates *)
        Array.make c 1; (* reader: second collect — writer moved *)
        Array.make update_events 0; (* third update *)
        Array.make (2 * c) 1; (* reader: collects — writer moved again: borrow *)
      ]
  in
  ignore
    (Sim.run env
       ~policy:(Schedule.Scripted (script, Schedule.Round_robin))
       [| writer; reader |]);
  let h' = Composite.Snapshot.history rec_ in
  check bool "still linearizable (borrowed view)" true
    (History.Shrinking.conditions_hold ~equal:Int.equal h');
  check bool "generic oracle agrees" true
    (History.Linearize.is_linearizable
       (History.Linearize.snapshot_spec ~equal:Int.equal)
       ~init:(Array.make c 0)
       (History.Snapshot_history.to_ops h'))

let campaign_clean cfg () =
  let r = Workload.Campaign.run cfg in
  check int "no shrinking violations" 0 r.Workload.Campaign.flagged_runs;
  check int "no generic failures" 0 r.Workload.Campaign.generic_failures;
  check int "no disagreements" 0 r.Workload.Campaign.disagreements;
  check int "no stuck runs" 0 r.Workload.Campaign.stuck_runs

let campaign_case (components, readers, schedules, base_seed) =
  Alcotest.test_case
    (Printf.sprintf "campaign C=%d R=%d (%d schedules)" components readers
       schedules)
    `Quick
    (campaign_clean
       {
         Workload.Campaign.default with
         impl = Workload.Campaign.Impl_afek;
         components;
         readers;
         writes_per_writer = 2;
         scans_per_reader = 2;
         schedules;
         base_seed;
       })

let campaign_matrix =
  [
    (1, 2, 60, 1); (2, 1, 80, 2); (2, 3, 80, 3); (3, 2, 150, 0);
    (4, 2, 60, 4); (5, 3, 60, 11); (6, 2, 40, 5);
  ]

let test_exhaustive_tiny () =
  (* Afek updates embed whole scans, so even the tiniest configuration
     has ~252k interleavings; explore a 50k-schedule DFS prefix (the
     adversarial region: schedules differing early). *)
  let r =
    Workload.Campaign.exhaustive ~max_runs:50_000
      ~impl:Workload.Campaign.Impl_afek ~components:2 ~readers:1
      ~writes_per_writer:1 ~scans_per_reader:1 ()
  in
  check int "explored the full budget" 50_000 r.Workload.Campaign.ex_runs;
  check int "no flagged schedules" 0 r.Workload.Campaign.ex_flagged

let () =
  Alcotest.run "afek"
    [
      ( "sequential",
        [
          Alcotest.test_case "initial scan" `Quick test_initial_scan;
          Alcotest.test_case "updates" `Quick test_sequential_updates;
          Alcotest.test_case "ids monotone" `Quick test_ids_monotone;
        ] );
      ( "cost",
        List.map quiescent_cost_case [ 1; 2; 3; 4; 6; 8 ]
        @ [
            Alcotest.test_case "storm scan within bound" `Quick
              test_scan_cost_bounded_under_storm;
          ] );
      ( "linearizability",
        (Alcotest.test_case "borrow path" `Quick test_borrow_path
        :: List.map campaign_case campaign_matrix)
        @ [ Alcotest.test_case "exhaustive tiny" `Slow test_exhaustive_tiny ] );
    ]

(* Ablation / mutation tests (lib/core/mutants): every safety-bearing
   mechanism of Figure 3, when removed, must yield a schedule the
   checkers flag; the unmutated control must survive the same search;
   and the one mutation that only affects freshness (skipping statement
   7) must demonstrably survive. *)

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let caught m () =
  let v = Composite.Mutants.hunt m in
  check bool
    (Composite.Mutants.name m ^ " has a violating schedule")
    true v.Composite.Mutants.caught;
  check bool "diagnostic produced" true (v.Composite.Mutants.counterexample <> None)

let survives m () =
  let v = Composite.Mutants.hunt m in
  check bool (Composite.Mutants.name m ^ " survives") false
    v.Composite.Mutants.caught;
  check int "full search budget used" 3000 v.Composite.Mutants.schedules_tried

let test_mutant_sequentially_correct m () =
  (* Every mutant is still correct without concurrency — the mutations
     break interleaving safety, not sequential behaviour. *)
  let open Csim in
  let env = Sim.create ~trace:false () in
  let mem = Memory.of_sim env in
  let handle =
    Composite.Mutants.create m mem ~readers:1 ~bits_per_value:16
      ~init:[| 1; 2 |]
  in
  let out = ref [||] in
  let (_ : Sim.stats) =
    Sim.run_solo env (fun () ->
        ignore (handle.Composite.Snapshot.update ~writer:0 7);
        ignore (handle.Composite.Snapshot.update ~writer:1 8);
        ignore (handle.Composite.Snapshot.update ~writer:0 9);
        out := Composite.Snapshot.scan handle ~reader:0)
  in
  check (Alcotest.array int) "sequential semantics intact" [| 9; 8 |] !out

let () =
  Alcotest.run "mutants"
    [
      ( "sequential sanity",
        List.map
          (fun m ->
            Alcotest.test_case (Composite.Mutants.name m) `Quick
              (test_mutant_sequentially_correct m))
          (Composite.Mutants.None_ :: Composite.Mutants.all) );
      ( "ablation",
        [
          Alcotest.test_case "control: unmutated survives" `Quick
            (survives Composite.Mutants.None_);
          Alcotest.test_case "no-handshake caught" `Quick
            (caught Composite.Mutants.No_handshake);
          Alcotest.test_case "no-write-counter caught" `Quick
            (caught Composite.Mutants.No_write_counter);
          Alcotest.test_case "single-collect caught" `Quick
            (caught Composite.Mutants.Single_collect);
          Alcotest.test_case "mod-2 counter caught" `Quick
            (caught Composite.Mutants.Mod2_counter);
          Alcotest.test_case "two-value seq caught" `Quick
            (caught Composite.Mutants.Two_value_seq);
          Alcotest.test_case
            "no-second-write survives (publication merely delayed)" `Quick
            (survives Composite.Mutants.No_second_write);
        ] );
    ]

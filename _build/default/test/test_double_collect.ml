(* Tests for the naive baselines (lib/core/double_collect): the unsafe
   single collect must be caught by the checkers (negative control for
   experiment E6); the repeated double collect is linearizable but not
   wait-free. *)

open Csim

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let test_unsafe_sequentially_fine () =
  let env = Sim.create ~trace:false () in
  let mem = Memory.of_sim env in
  let h = Composite.Double_collect.create_unsafe mem ~bits_per_value:8 ~init:[| 1; 2 |] in
  let out = ref [||] in
  let (_ : Sim.stats) =
    Sim.run_solo env (fun () ->
        ignore (h.Composite.Snapshot.update ~writer:0 9);
        out := Composite.Snapshot.scan h ~reader:0)
  in
  check (Alcotest.array int) "sequentially correct" [| 9; 2 |] !out

let test_unsafe_caught_by_random_campaign () =
  let cfg =
    {
      Workload.Campaign.default with
      impl = Workload.Campaign.Impl_unsafe_collect;
      schedules = 100;
    }
  in
  let r = Workload.Campaign.run cfg in
  check bool "many schedules flagged" true (r.Workload.Campaign.flagged_runs > 10);
  check int "checkers agree exactly" r.Workload.Campaign.flagged_runs
    r.Workload.Campaign.generic_failures;
  check int "no disagreements" 0 r.Workload.Campaign.disagreements

let test_unsafe_caught_exhaustively () =
  let r =
    Workload.Campaign.exhaustive ~impl:Workload.Campaign.Impl_unsafe_collect
      ~components:2 ~readers:1 ~writes_per_writer:2 ~scans_per_reader:1 ()
  in
  check int "a violating schedule exists" 1 r.Workload.Campaign.ex_flagged;
  check bool "diagnostic names a condition" true
    (match r.Workload.Campaign.ex_first_failure with
    | Some msg -> String.length msg > 0
    | None -> false)

let test_torn_read_schedule () =
  (* Deterministic torn snapshot: reader reads component 0 (old), both
     writers complete, reader reads component 1 (new): the view pairs a
     value overwritten before the scan ended with one written after it
     started — fine for ONE read, but with two sequential writes on the
     same component the paper's Proximity/Write Precedence conditions
     break.  Schedule: w0 writes, reader reads comp0, w0 writes again,
     w1 writes, reader reads comp1. *)
  let env = Sim.create () in
  let mem = Memory.of_sim env in
  let h = Composite.Double_collect.create_unsafe mem ~bits_per_value:8 ~init:[| 0; 0 |] in
  let rec_ =
    Composite.Snapshot.record
      ~clock:(fun () -> Sim.now env)
      ~initial:[| 0; 0 |] h
  in
  let writer0 () =
    rec_.Composite.Snapshot.rupdate ~writer:0 1;
    rec_.Composite.Snapshot.rupdate ~writer:0 2
  in
  let writer1 () = rec_.Composite.Snapshot.rupdate ~writer:1 5 in
  let reader () = ignore (rec_.Composite.Snapshot.rscan ~reader:0) in
  (* proc ids: 0 = writer0, 1 = writer1, 2 = reader *)
  ignore
    (Sim.run env
       ~policy:(Schedule.Scripted ([| 0; 2; 0; 1; 2 |], Schedule.Round_robin))
       [| writer0; writer1; reader |]);
  let h' = Composite.Snapshot.history rec_ in
  let violations = History.Shrinking.check ~equal:Int.equal h' in
  check bool "shrinking flags the torn read" true (violations <> []);
  check bool "generic oracle rejects it" false
    (History.Linearize.is_linearizable
       (History.Linearize.snapshot_spec ~equal:Int.equal)
       ~init:[| 0; 0 |]
       (History.Snapshot_history.to_ops h'))

let test_repeated_is_linearizable () =
  let cfg =
    {
      Workload.Campaign.default with
      impl = Workload.Campaign.Impl_repeated_collect;
      schedules = 100;
    }
  in
  let r = Workload.Campaign.run cfg in
  check int "never flagged" 0 r.Workload.Campaign.flagged_runs;
  check int "generic agrees" 0 r.Workload.Campaign.generic_failures

let test_repeated_starves () =
  (* Reader work grows linearly with writer interference. *)
  let e10 = Workload.Scenario.starvation_events ~writer_ops:10 in
  let e100 = Workload.Scenario.starvation_events ~writer_ops:100 in
  check bool "10x writers => ~10x reader work" true (e100 > 5 * e10);
  check bool "unbounded growth" true (e100 >= 200)

let () =
  Alcotest.run "double_collect"
    [
      ( "unsafe",
        [
          Alcotest.test_case "sequentially fine" `Quick
            test_unsafe_sequentially_fine;
          Alcotest.test_case "caught by random campaign" `Quick
            test_unsafe_caught_by_random_campaign;
          Alcotest.test_case "caught exhaustively" `Quick
            test_unsafe_caught_exhaustively;
          Alcotest.test_case "torn read schedule" `Quick test_torn_read_schedule;
        ] );
      ( "repeated",
        [
          Alcotest.test_case "linearizable" `Quick test_repeated_is_linearizable;
          Alcotest.test_case "not wait-free (starves)" `Quick
            test_repeated_starves;
        ] );
    ]

(* Unit tests for the executable Shrinking Lemma (lib/history/shrinking).

   Each of the five conditions is violated by a hand-crafted history and
   must be reported with the right constructor; conforming histories
   must pass and yield a valid linearization witness via the appendix's
   relation F. *)

open History

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

(* History-building DSL over a 2-component int register with initial
   values [| 0; 0 |]. *)
let build ops =
  let coll = Snapshot_history.collector ~initial:[| 0; 0 |] in
  List.iter
    (fun op ->
      match op with
      | `W (proc, comp, value, id, inv, res) ->
        Snapshot_history.record_write coll ~proc ~comp ~value ~id ~inv ~res
      | `R (proc, values, ids, inv, res) ->
        Snapshot_history.record_read coll ~proc
          ~values:(Array.of_list values) ~ids:(Array.of_list ids) ~inv ~res)
    ops;
  Snapshot_history.history coll

let violations h = Shrinking.check ~equal:Int.equal h

let kinds h =
  List.map
    (function
      | Shrinking.Uniqueness_duplicate _ -> "uniq-dup"
      | Shrinking.Uniqueness_order _ -> "uniq-ord"
      | Shrinking.Integrity _ -> "integrity"
      | Shrinking.Proximity_future _ -> "prox-future"
      | Shrinking.Proximity_overwritten _ -> "prox-over"
      | Shrinking.Read_precedence _ -> "read-prec"
      | Shrinking.Write_precedence _ -> "write-prec")
    (violations h)

(* ------------------------------------------------------------------ *)
(* Conforming histories                                                 *)
(* ------------------------------------------------------------------ *)

let test_empty_history () =
  let h = build [] in
  check (Alcotest.list Alcotest.string) "no violations" [] (kinds h)

let test_sequential_history () =
  let h =
    build
      [
        `W (10, 0, 5, 1, 0, 1);
        `R (0, [ 5; 0 ], [ 1; 0 ], 2, 3);
        `W (11, 1, 7, 1, 4, 5);
        `R (0, [ 5; 7 ], [ 1; 1 ], 6, 7);
      ]
  in
  check (Alcotest.list Alcotest.string) "no violations" [] (kinds h);
  match Shrinking.witness ~equal:Int.equal h with
  | Ok order -> check int "witness covers all ops + initial writes" 6 (List.length order)
  | Error e -> Alcotest.fail e

let test_initial_read () =
  (* Reading the initial state returns ids 0. *)
  let h = build [ `R (0, [ 0; 0 ], [ 0; 0 ], 0, 1) ] in
  check (Alcotest.list Alcotest.string) "no violations" [] (kinds h)

let test_concurrent_reads_agree () =
  let h =
    build
      [
        `W (10, 0, 5, 1, 0, 10);
        `R (0, [ 5; 0 ], [ 1; 0 ], 2, 3);
        `R (1, [ 5; 0 ], [ 1; 0 ], 2, 3);
      ]
  in
  check (Alcotest.list Alcotest.string) "no violations" [] (kinds h)

(* ------------------------------------------------------------------ *)
(* Each condition violated                                              *)
(* ------------------------------------------------------------------ *)

let test_uniqueness_duplicate () =
  let h = build [ `W (10, 0, 5, 1, 0, 1); `W (10, 0, 6, 1, 2, 3) ] in
  check bool "duplicate id caught" true (List.mem "uniq-dup" (kinds h))

let test_uniqueness_order () =
  let h = build [ `W (10, 0, 5, 2, 0, 1); `W (10, 0, 6, 1, 2, 3) ] in
  check bool "decreasing ids caught" true (List.mem "uniq-ord" (kinds h))

let test_integrity_unknown_id () =
  let h = build [ `R (0, [ 5; 0 ], [ 9; 0 ], 0, 1) ] in
  check bool "phantom id caught" true (List.mem "integrity" (kinds h))

let test_integrity_wrong_value () =
  let h =
    build [ `W (10, 0, 5, 1, 0, 1); `R (0, [ 99; 0 ], [ 1; 0 ], 2, 3) ]
  in
  check bool "value mismatch caught" true (List.mem "integrity" (kinds h))

let test_proximity_future () =
  (* The read completes before the write begins yet returns its id. *)
  let h =
    build [ `R (0, [ 5; 0 ], [ 1; 0 ], 0, 1); `W (10, 0, 5, 1, 2, 3) ]
  in
  check bool "future read caught" true (List.mem "prox-future" (kinds h))

let test_proximity_overwritten () =
  (* Both writes precede the read; it returns the older one. *)
  let h =
    build
      [
        `W (10, 0, 5, 1, 0, 1);
        `W (10, 0, 6, 2, 2, 3);
        `R (0, [ 5; 0 ], [ 1; 0 ], 4, 5);
      ]
  in
  check bool "overwritten value caught" true (List.mem "prox-over" (kinds h))

let test_read_precedence () =
  (* Two reads each strictly ahead of the other on one component. *)
  let h =
    build
      [
        `W (10, 0, 5, 1, 0, 10);
        `W (11, 1, 7, 1, 0, 10);
        `R (0, [ 5; 0 ], [ 1; 0 ], 1, 2);
        `R (1, [ 0; 7 ], [ 0; 1 ], 1, 2);
      ]
  in
  check bool "inconsistent snapshots caught" true
    (List.mem "read-prec" (kinds h))

let test_write_precedence () =
  (* v (component 0) precedes w (component 1); a read sees w but not v. *)
  let h =
    build
      [
        `W (10, 0, 5, 1, 0, 1);
        `W (11, 1, 7, 1, 2, 3);
        `R (0, [ 0; 7 ], [ 0; 1 ], 4, 5);
      ]
  in
  check bool "write order vs read caught" true
    (List.mem "write-prec" (kinds h))

(* ------------------------------------------------------------------ *)
(* Witness construction (the appendix, executed)                        *)
(* ------------------------------------------------------------------ *)

let test_witness_on_violating_history () =
  let h =
    build
      [
        `W (10, 0, 5, 1, 0, 1);
        `W (10, 0, 6, 2, 2, 3);
        `R (0, [ 5; 0 ], [ 1; 0 ], 4, 5);
      ]
  in
  match Shrinking.witness ~equal:Int.equal h with
  | Ok _ -> Alcotest.fail "expected failure on non-linearizable history"
  | Error _ -> ()

let test_witness_respects_precedence () =
  let h =
    build
      [
        `W (10, 0, 1, 1, 0, 1);
        `W (10, 0, 2, 2, 2, 3);
        `W (11, 1, 9, 1, 0, 10);
        `R (0, [ 2; 9 ], [ 2; 1 ], 4, 8);
      ]
  in
  check (Alcotest.list Alcotest.string) "conforming" [] (kinds h);
  match Shrinking.witness ~equal:Int.equal h with
  | Error e -> Alcotest.fail e
  | Ok order ->
    (* Sequential replay of the witness: every read sees the latest
       preceding writes — verified inside witness; here check shape:
       writes of component 0 appear in id order. *)
    let comp0_ids =
      List.filter_map
        (function
          | Shrinking.L_write w when w.Snapshot_history.comp = 0 ->
            Some w.Snapshot_history.id
          | _ -> None)
        order
    in
    check (Alcotest.list int) "component-0 writes ordered" [ 0; 1; 2 ] comp0_ids

let test_witness_places_read_after_its_writes () =
  let h =
    build [ `W (10, 0, 5, 1, 0, 10); `R (0, [ 5; 0 ], [ 1; 0 ], 2, 3) ]
  in
  match Shrinking.witness ~equal:Int.equal h with
  | Error e -> Alcotest.fail e
  | Ok order ->
    let rec scan seen_write = function
      | [] -> Alcotest.fail "read not found"
      | Shrinking.L_write w :: rest ->
        scan (seen_write || (w.Snapshot_history.comp = 0 && w.Snapshot_history.id = 1)) rest
      | Shrinking.L_read _ :: _ ->
        check bool "write linearized before the read that saw it" true seen_write
    in
    scan false order

(* ------------------------------------------------------------------ *)
(* Collector validation                                                 *)
(* ------------------------------------------------------------------ *)

let test_collector_validation () =
  let coll = Snapshot_history.collector ~initial:[| 0; 0 |] in
  Alcotest.check_raises "id 0 rejected"
    (Invalid_argument "record_write: ids of real Writes must be >= 1")
    (fun () ->
      Snapshot_history.record_write coll ~proc:0 ~comp:0 ~value:1 ~id:0 ~inv:0
        ~res:1);
  Alcotest.check_raises "bad comp"
    (Invalid_argument "record_write: component out of range") (fun () ->
      Snapshot_history.record_write coll ~proc:0 ~comp:9 ~value:1 ~id:1 ~inv:0
        ~res:1);
  Alcotest.check_raises "bad read arity"
    (Invalid_argument "record_read: wrong arity") (fun () ->
      Snapshot_history.record_read coll ~proc:0 ~values:[| 1 |] ~ids:[| 1 |]
        ~inv:0 ~res:1)

let test_writes_with_initial () =
  let h = build [ `W (10, 1, 5, 1, 0, 1) ] in
  let ws = Snapshot_history.writes_with_initial h in
  check int "two initial + one real" 3 (List.length ws);
  let initial0 = Snapshot_history.initial_write h 0 in
  check int "initial id" 0 initial0.Snapshot_history.id;
  check bool "initial precedes real ops" true
    (Snapshot_history.write_precedes initial0 (List.nth ws 2))

(* ------------------------------------------------------------------ *)
(* Agreement: Shrinking ok => generic checker ok (qcheck over random     *)
(* conforming-ish histories from sequential executions)                  *)
(* ------------------------------------------------------------------ *)

let qcheck_seq_agreement =
  QCheck2.Test.make ~count:200
    ~name:"sequential composite histories pass all checkers"
    QCheck2.Gen.(list_size (int_range 1 12) (pair (int_range 0 1) (int_range 1 5)))
    (fun cmds ->
      let state = [| 0; 0 |] in
      let ids = [| 0; 0 |] in
      let t = ref 0 in
      let coll = Snapshot_history.collector ~initial:[| 0; 0 |] in
      List.iter
        (fun (k, v) ->
          let inv = !t in
          incr t;
          let res = !t in
          incr t;
          if v = 1 then
            Snapshot_history.record_read coll ~proc:0 ~values:(Array.copy state)
              ~ids:(Array.copy ids) ~inv ~res
          else begin
            state.(k) <- v;
            ids.(k) <- ids.(k) + 1;
            Snapshot_history.record_write coll ~proc:1 ~comp:k ~value:v
              ~id:ids.(k) ~inv ~res
          end)
        cmds;
      let h = Snapshot_history.history coll in
      Shrinking.conditions_hold ~equal:Int.equal h
      && (match Shrinking.witness ~equal:Int.equal h with
         | Ok _ -> true
         | Error _ -> false)
      &&
      match
        Linearize.check
          (Linearize.snapshot_spec ~equal:Int.equal)
          ~init:[| 0; 0 |]
          (Snapshot_history.to_ops h)
      with
      | Linearize.Linearizable _ -> true
      | _ -> false)

(* Checker sensitivity: corrupting any single field of a valid history
   must be noticed by at least one condition (or by the witness
   replay). *)
let qcheck_corruption_detected =
  QCheck2.Test.make ~count:150 ~name:"single-field corruption is detected"
    QCheck2.Gen.(pair (int_range 0 1_000_000) (int_range 0 2))
    (fun (seed, mode) ->
      (* A valid history from a real simulated run. *)
      let open Csim in
      let env = Sim.create ~trace:false () in
      let mem = Memory.of_sim env in
      let init = [| 1; 2 |] in
      let reg =
        Composite.Anderson.create mem ~readers:1 ~bits_per_value:8 ~init
      in
      let rec_ =
        Composite.Snapshot.record
          ~clock:(fun () -> Sim.now env)
          ~initial:init
          (Composite.Anderson.handle reg)
      in
      let writer k () =
        for s = 1 to 2 do
          rec_.Composite.Snapshot.rupdate ~writer:k ((10 * (k + 1)) + s)
        done
      in
      let reader () =
        for _ = 1 to 2 do
          ignore (rec_.Composite.Snapshot.rscan ~reader:0)
        done
      in
      ignore
        (Sim.run env ~policy:(Schedule.Random seed) [| writer 0; writer 1; reader |]);
      let h = Composite.Snapshot.history rec_ in
      let prng = Schedule.Prng.make (seed + 99) in
      let corrupted =
        match mode with
        | 0 ->
          (* Corrupt one read's returned value. *)
          let reads =
            List.mapi
              (fun i (r : int Snapshot_history.read) ->
                if i = 0 then begin
                  let values = Array.copy r.values in
                  values.(Schedule.Prng.int prng 2) <- 999;
                  { r with values }
                end
                else r)
              h.Snapshot_history.reads
          in
          { h with Snapshot_history.reads = reads }
        | 1 ->
          (* Corrupt one read's id upward past every write. *)
          let reads =
            List.mapi
              (fun i (r : int Snapshot_history.read) ->
                if i = 0 then begin
                  let ids = Array.copy r.ids in
                  ids.(Schedule.Prng.int prng 2) <- 77;
                  { r with ids }
                end
                else r)
              h.Snapshot_history.reads
          in
          { h with Snapshot_history.reads = reads }
        | _ ->
          (* Swap the input value of a write some read observed (a write
             nobody read is legitimately invisible to the checker). *)
          let observed w =
            List.exists
              (fun (r : int Snapshot_history.read) ->
                r.ids.(w.Snapshot_history.comp) = w.Snapshot_history.id)
              h.Snapshot_history.reads
          in
          let corrupted_one = ref false in
          let writes =
            List.map
              (fun (w : int Snapshot_history.write) ->
                if (not !corrupted_one) && observed w then begin
                  corrupted_one := true;
                  { w with Snapshot_history.value = 888 }
                end
                else w)
              h.Snapshot_history.writes
          in
          if !corrupted_one then { h with Snapshot_history.writes = writes }
          else h (* nothing observable to corrupt: vacuous *)
      in
      corrupted == h || Shrinking.check ~equal:Int.equal corrupted <> [])

let () =
  Alcotest.run "shrinking"
    [
      ( "conforming",
        [
          Alcotest.test_case "empty history" `Quick test_empty_history;
          Alcotest.test_case "sequential history" `Quick test_sequential_history;
          Alcotest.test_case "initial read" `Quick test_initial_read;
          Alcotest.test_case "concurrent reads agree" `Quick
            test_concurrent_reads_agree;
        ] );
      ( "violations",
        [
          Alcotest.test_case "uniqueness duplicate" `Quick
            test_uniqueness_duplicate;
          Alcotest.test_case "uniqueness order" `Quick test_uniqueness_order;
          Alcotest.test_case "integrity unknown id" `Quick
            test_integrity_unknown_id;
          Alcotest.test_case "integrity wrong value" `Quick
            test_integrity_wrong_value;
          Alcotest.test_case "proximity future" `Quick test_proximity_future;
          Alcotest.test_case "proximity overwritten" `Quick
            test_proximity_overwritten;
          Alcotest.test_case "read precedence" `Quick test_read_precedence;
          Alcotest.test_case "write precedence" `Quick test_write_precedence;
        ] );
      ( "witness",
        [
          Alcotest.test_case "fails on violation" `Quick
            test_witness_on_violating_history;
          Alcotest.test_case "respects precedence" `Quick
            test_witness_respects_precedence;
          Alcotest.test_case "write before dependent read" `Quick
            test_witness_places_read_after_its_writes;
        ] );
      ( "collector",
        [
          Alcotest.test_case "validation" `Quick test_collector_validation;
          Alcotest.test_case "initial writes" `Quick test_writes_with_initial;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ qcheck_seq_agreement; qcheck_corruption_detected ] );
    ]

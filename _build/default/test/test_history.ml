(* Unit tests for operation records, the generic linearizability
   checker, and the regularity checker (lib/history). *)

open History

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let op ?(proc = 0) ?(label = "op") input output inv res =
  Oprec.v ~proc ~label ~input ~output ~inv ~res

(* ------------------------------------------------------------------ *)
(* Oprec                                                                *)
(* ------------------------------------------------------------------ *)

let test_precedence () =
  let a = op 0 () 0 10 and b = op 0 () 10 20 and c = op 0 () 5 15 in
  check bool "a precedes b" true (Oprec.precedes a b);
  check bool "b not precedes a" false (Oprec.precedes b a);
  check bool "a concurrent c" true (Oprec.concurrent a c);
  check bool "b concurrent c" true (Oprec.concurrent b c)

let test_bad_interval () =
  Alcotest.check_raises "res < inv" (Invalid_argument "Oprec.v: res < inv")
    (fun () -> ignore (op 0 () 10 5))

let test_well_formed () =
  let mk proc inv res = Oprec.v ~proc ~label:"" ~input:() ~output:() ~inv ~res in
  check bool "serial per proc" true
    (Oprec.well_formed [ mk 0 0 5; mk 0 5 9; mk 1 2 3 ]);
  check bool "overlap same proc" false
    (Oprec.well_formed [ mk 0 0 5; mk 0 4 9 ])

let test_tighten_intervals () =
  let open Csim in
  let env = Sim.create () in
  let c = Sim.make_cell env "c" 0 in
  let t0 = ref 0 and t1 = ref 0 in
  let (_ : Sim.stats) =
    Sim.run_solo env (fun () ->
        t0 := Sim.now env;
        Sim.write c 1;
        Sim.write c 2;
        t1 := Sim.now env)
  in
  let o = Oprec.v ~proc:0 ~label:"w" ~input:() ~output:() ~inv:!t0 ~res:(!t1 + 5) in
  match Oprec.tighten_intervals (Sim.trace env) [ o ] with
  | [ o' ] ->
    check int "inv tightened to first event" 0 o'.Oprec.inv;
    check int "res tightened to one past last" 2 o'.Oprec.res
  | _ -> Alcotest.fail "expected one op"

(* ------------------------------------------------------------------ *)
(* Generic checker: registers                                           *)
(* ------------------------------------------------------------------ *)

let reg_spec = Linearize.register_spec ~equal:Int.equal

let wr ?proc v inv res =
  op ?proc ~label:"w" (Linearize.Reg_write v) Linearize.Reg_done inv res

let rd ?proc v inv res =
  op ?proc ~label:"r" Linearize.Reg_read (Linearize.Reg_value v) inv res

let test_register_sequential () =
  check bool "write then read" true
    (Linearize.is_linearizable reg_spec ~init:0 [ wr 1 0 1; rd 1 2 3 ]);
  check bool "read initial" true
    (Linearize.is_linearizable reg_spec ~init:7 [ rd 7 0 1 ]);
  check bool "stale read rejected" false
    (Linearize.is_linearizable reg_spec ~init:0 [ wr 1 0 1; rd 0 2 3 ])

let test_register_overlap () =
  (* A read overlapping a write may return old or new. *)
  check bool "overlapping read old" true
    (Linearize.is_linearizable reg_spec ~init:0 [ wr 1 0 10; rd 0 2 3 ]);
  check bool "overlapping read new" true
    (Linearize.is_linearizable reg_spec ~init:0 [ wr 1 0 10; rd 1 2 3 ]);
  check bool "overlapping read other" false
    (Linearize.is_linearizable reg_spec ~init:0 [ wr 1 0 10; rd 9 2 3 ])

let test_register_new_old_inversion () =
  (* Two sequential reads during one write must not observe new then
     old — the classic atomicity (vs regularity) separation. *)
  let ops = [ wr 1 0 100; rd 1 ~proc:1 10 20; rd 0 ~proc:1 30 40 ] in
  check bool "new-then-old not atomic" false
    (Linearize.is_linearizable reg_spec ~init:0 ops);
  check bool "but it is regular" true (Regularity.check ~equal:Int.equal ~init:0 ops)

let test_regularity_violation () =
  (* A read overlapping nothing must return the latest preceding value. *)
  let ops = [ wr 1 0 1; rd 0 2 3 ] in
  check bool "stale non-overlapping read is not regular" false
    (Regularity.check ~equal:Int.equal ~init:0 ops);
  check int "one violation" 1
    (List.length (Regularity.violations ~equal:Int.equal ~init:0 ops));
  (* Any value from an overlapping write is fine. *)
  check bool "overlap allows new" true
    (Regularity.check ~equal:Int.equal ~init:0 [ wr 5 0 10; rd 5 1 2 ])

(* ------------------------------------------------------------------ *)
(* Generic checker: snapshots                                           *)
(* ------------------------------------------------------------------ *)

let snap_spec = Linearize.snapshot_spec ~equal:Int.equal

let up ?proc k v inv res =
  op ?proc ~label:"up" (Linearize.Update (k, v)) Linearize.Done inv res

let sc ?proc vs inv res =
  op ?proc ~label:"sc" Linearize.Scan (Linearize.View (Array.of_list vs)) inv res

let test_snapshot_sequential () =
  check bool "scan initial" true
    (Linearize.is_linearizable snap_spec ~init:[| 0; 0 |] [ sc [ 0; 0 ] 0 1 ]);
  check bool "update then scan" true
    (Linearize.is_linearizable snap_spec ~init:[| 0; 0 |]
       [ up 0 5 0 1; sc [ 5; 0 ] 2 3 ]);
  check bool "scan missing update" false
    (Linearize.is_linearizable snap_spec ~init:[| 0; 0 |]
       [ up 0 5 0 1; sc [ 0; 0 ] 2 3 ])

let test_snapshot_torn_read () =
  (* The canonical torn snapshot: two sequential updates; a scan
     overlapping neither boundary cannot see {new first, old second}
     once the second update precedes a visible first... construct the
     classic inconsistency: scan sees u1 but not u0 although u0
     completed before u1 started. *)
  let ops = [ up 0 1 0 1; up 1 2 2 3; sc [ 0; 2 ] 4 5 ] in
  check bool "torn snapshot rejected" false
    (Linearize.is_linearizable snap_spec ~init:[| 0; 0 |] ops)

let test_snapshot_concurrent_ok () =
  let ops = [ up 0 1 0 10; up 1 2 0 10; sc [ 1; 0 ] 2 3 ] in
  check bool "partial concurrent view ok" true
    (Linearize.is_linearizable snap_spec ~init:[| 0; 0 |] ops)

let test_snapshot_read_precedence_violation () =
  (* Two sequential scans observing updates in opposite orders. *)
  let ops =
    [
      up 0 1 0 100; up 1 2 0 100;
      sc [ 1; 0 ] ~proc:1 10 20; sc [ 0; 2 ] ~proc:1 30 40;
    ]
  in
  check bool "inconsistent snapshot pair rejected" false
    (Linearize.is_linearizable snap_spec ~init:[| 0; 0 |] ops)

let test_witness_order () =
  match Linearize.check snap_spec ~init:[| 0 |] [ up 0 9 0 1; sc [ 9 ] 2 3 ] with
  | Linearize.Linearizable order ->
    check int "witness contains both ops" 2 (List.length order);
    (match order with
    | first :: _ ->
      check bool "update first" true (first.Oprec.label = "up")
    | [] -> Alcotest.fail "empty witness")
  | _ -> Alcotest.fail "expected linearizable"

let test_too_large () =
  let ops = List.init 63 (fun i -> up 0 i (2 * i) ((2 * i) + 1)) in
  (match Linearize.check snap_spec ~init:[| 0 |] ops with
  | Linearize.Too_large -> ()
  | _ -> Alcotest.fail "expected Too_large");
  Alcotest.check_raises "is_linearizable raises"
    (Invalid_argument "Linearize.is_linearizable: history too large")
    (fun () -> ignore (Linearize.is_linearizable snap_spec ~init:[| 0 |] ops))

let test_counter_spec () =
  let spec = Linearize.counter_spec in
  let inc d inv res = op ~label:"i" (Linearize.Incr d) Linearize.Incr_done inv res in
  let get v inv res = op ~label:"g" Linearize.Get (Linearize.Count v) inv res in
  check bool "increments sum" true
    (Linearize.is_linearizable spec ~init:0 [ inc 2 0 1; inc 3 2 3; get 5 4 5 ]);
  check bool "concurrent get sees either" true
    (Linearize.is_linearizable spec ~init:0 [ inc 2 0 10; get 0 1 2 ]);
  check bool "impossible count" false
    (Linearize.is_linearizable spec ~init:0 [ inc 2 0 1; get 1 2 3 ])

let test_memoization_scales () =
  (* 24 concurrent ops with a state space that would explode without
     memoization: all updates to the same component with the same value,
     scans matching. *)
  let ops =
    List.init 12 (fun i -> up 0 1 0 (100 + i))
    @ List.init 12 (fun i -> sc [ 1 ] 50 (60 + i))
  in
  check bool "completes quickly" true
    (match Linearize.check snap_spec ~init:[| 1 |] ops with
    | Linearize.Linearizable _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* qcheck: random histories agree with a reference simulation            *)
(* ------------------------------------------------------------------ *)

let qcheck_sequential_histories =
  (* Any history generated by a sequential execution is linearizable. *)
  QCheck2.Test.make ~count:200 ~name:"sequential histories linearizable"
    QCheck2.Gen.(list_size (int_range 1 15) (pair (int_range 0 2) (int_range 0 9)))
    (fun cmds ->
      let state = [| 0; 0; 0 |] in
      let t = ref 0 in
      let ops =
        List.map
          (fun (k, v) ->
            let inv = !t in
            incr t;
            let res = !t in
            incr t;
            if v = 0 then begin
              (* scan *)
              sc (Array.to_list state) inv res
            end
            else begin
              state.(k) <- v;
              up k v inv res
            end)
          cmds
      in
      Linearize.is_linearizable snap_spec ~init:[| 0; 0; 0 |] ops)

let qcheck_shuffled_reads =
  (* Concurrent scans of a fixed state all agree. *)
  QCheck2.Test.make ~count:100 ~name:"concurrent identical scans linearizable"
    QCheck2.Gen.(int_range 1 10)
    (fun n ->
      let ops = List.init n (fun i -> sc [ 3; 4 ] ~proc:i 0 10) in
      Linearize.is_linearizable snap_spec ~init:[| 3; 4 |] ops)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "history"
    [
      ( "oprec",
        [
          Alcotest.test_case "precedence" `Quick test_precedence;
          Alcotest.test_case "bad interval" `Quick test_bad_interval;
          Alcotest.test_case "well-formed" `Quick test_well_formed;
          Alcotest.test_case "tighten intervals" `Quick test_tighten_intervals;
        ] );
      ( "register",
        [
          Alcotest.test_case "sequential" `Quick test_register_sequential;
          Alcotest.test_case "overlap" `Quick test_register_overlap;
          Alcotest.test_case "new-old inversion" `Quick
            test_register_new_old_inversion;
          Alcotest.test_case "regularity violations" `Quick
            test_regularity_violation;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "sequential" `Quick test_snapshot_sequential;
          Alcotest.test_case "torn read" `Quick test_snapshot_torn_read;
          Alcotest.test_case "concurrent ok" `Quick test_snapshot_concurrent_ok;
          Alcotest.test_case "read precedence" `Quick
            test_snapshot_read_precedence_violation;
          Alcotest.test_case "witness order" `Quick test_witness_order;
          Alcotest.test_case "too large" `Quick test_too_large;
          Alcotest.test_case "counter spec" `Quick test_counter_spec;
          Alcotest.test_case "memoization" `Quick test_memoization_scales;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ qcheck_sequential_histories; qcheck_shuffled_reads ] );
    ]

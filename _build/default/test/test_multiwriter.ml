(* Tests for the multi-writer composite register (lib/core/multi_writer):
   the companion-paper result realized over the single-writer
   construction, with both Anderson and Afek substrates. *)

open Csim

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let anderson_factory mem =
  {
    Composite.Snapshot.make_sw =
      (fun ~readers ~init ->
        Composite.Anderson.handle
          (Composite.Anderson.create mem ~readers ~bits_per_value:32 ~init));
  }

let afek_factory mem =
  {
    Composite.Snapshot.make_sw =
      (fun ~readers ~init ->
        ignore readers;
        Composite.Afek.create mem ~bits_per_value:32 ~init);
  }

let fresh ?(factory = anderson_factory) ~c ~w ~readers ~init () =
  let env = Sim.create ~trace:false () in
  let mem = Memory.of_sim env in
  let mw =
    Composite.Multi_writer.create (factory mem) ~components:c
      ~writers_per_component:w ~readers ~init
  in
  (env, mw)

(* ------------------------------------------------------------------ *)
(* Sequential                                                           *)
(* ------------------------------------------------------------------ *)

let test_initial_scan () =
  let env, mw = fresh ~c:2 ~w:2 ~readers:1 ~init:[| 7; 9 |] () in
  let out = ref [||] in
  let (_ : Sim.stats) =
    Sim.run_solo env (fun () ->
        let items = Composite.Multi_writer.scan_items mw ~reader:0 in
        out := Composite.Item.values items;
        check (Alcotest.array int) "initial ids are 0" [| 0; 0 |]
          (Composite.Item.ids items))
  in
  check (Alcotest.array int) "initial values" [| 7; 9 |] !out

let test_last_writer_wins () =
  let env, mw = fresh ~c:2 ~w:3 ~readers:1 ~init:[| 0; 0 |] () in
  let out = ref [||] in
  let (_ : Sim.stats) =
    Sim.run_solo env (fun () ->
        ignore (Composite.Multi_writer.update mw ~comp:0 ~widx:1 11);
        ignore (Composite.Multi_writer.update mw ~comp:0 ~widx:2 22);
        ignore (Composite.Multi_writer.update mw ~comp:1 ~widx:0 33);
        out :=
          Composite.Item.values (Composite.Multi_writer.scan_items mw ~reader:0))
  in
  check (Alcotest.array int) "latest writes win" [| 22; 33 |] !out

let test_same_writer_overwrites () =
  let env, mw = fresh ~c:1 ~w:2 ~readers:1 ~init:[| 0 |] () in
  let out = ref [||] in
  let (_ : Sim.stats) =
    Sim.run_solo env (fun () ->
        ignore (Composite.Multi_writer.update mw ~comp:0 ~widx:0 1);
        ignore (Composite.Multi_writer.update mw ~comp:0 ~widx:0 2);
        out :=
          Composite.Item.values (Composite.Multi_writer.scan_items mw ~reader:0))
  in
  check (Alcotest.array int) "own overwrite" [| 2 |] !out

let test_ids_strictly_increase () =
  let env, mw = fresh ~c:1 ~w:2 ~readers:1 ~init:[| 0 |] () in
  let ids = ref [] in
  let (_ : Sim.stats) =
    Sim.run_solo env (fun () ->
        ids := Composite.Multi_writer.update mw ~comp:0 ~widx:0 1 :: !ids;
        ids := Composite.Multi_writer.update mw ~comp:0 ~widx:1 2 :: !ids;
        ids := Composite.Multi_writer.update mw ~comp:0 ~widx:0 3 :: !ids)
  in
  let l = List.rev !ids in
  check bool "strictly increasing" true
    (match l with [ a; b; c ] -> a < b && b < c | _ -> false)

let test_validation () =
  let env, mw = fresh ~c:2 ~w:2 ~readers:1 ~init:[| 0; 0 |] () in
  ignore env;
  Alcotest.check_raises "bad comp"
    (Invalid_argument "Multi_writer.update: bad comp") (fun () ->
      ignore (Composite.Multi_writer.update mw ~comp:5 ~widx:0 1));
  Alcotest.check_raises "bad widx"
    (Invalid_argument "Multi_writer.update: bad widx") (fun () ->
      ignore (Composite.Multi_writer.update mw ~comp:0 ~widx:9 1))

(* ------------------------------------------------------------------ *)
(* Concurrent campaigns                                                 *)
(* ------------------------------------------------------------------ *)

let run_campaign ~factory ~seeds ~c ~w ~readers =
  let flagged = ref 0 and generic_fail = ref 0 in
  for seed = 1 to seeds do
    let env = Sim.create ~trace:false () in
    let mem = Memory.of_sim env in
    let init = Array.init c (fun k -> k * 100) in
    let mw =
      Composite.Multi_writer.create (factory mem) ~components:c
        ~writers_per_component:w ~readers ~init
    in
    let rec_ =
      Composite.Multi_writer.record ~clock:(fun () -> Sim.now env) ~initial:init mw
    in
    let writer comp widx () =
      for s = 1 to 2 do
        rec_.Composite.Multi_writer.mupdate ~comp ~widx
          ((comp * 1000) + (widx * 100) + s)
      done
    in
    let reader j () =
      for _ = 1 to 3 do
        ignore (rec_.Composite.Multi_writer.mscan ~reader:j)
      done
    in
    let procs =
      Array.append
        (Array.concat
           (List.init c (fun comp ->
                Array.init w (fun widx -> writer comp widx))))
        (Array.init readers (fun j -> reader j))
    in
    ignore (Sim.run env ~policy:(Schedule.Random seed) procs);
    let h = Composite.Multi_writer.history rec_ in
    if not (History.Shrinking.conditions_hold ~equal:Int.equal h) then
      incr flagged;
    if History.Snapshot_history.size h <= 40 then
      if
        not
          (History.Linearize.is_linearizable
             (History.Linearize.snapshot_spec ~equal:Int.equal)
             ~init (History.Snapshot_history.to_ops h))
      then incr generic_fail
  done;
  (!flagged, !generic_fail)

let campaign_case (label, factory, seeds, c, w, readers) =
  Alcotest.test_case
    (Printf.sprintf "%s substrate, C=%d W=%d R=%d (%d seeds)" label c w readers
       seeds)
    `Quick
    (fun () ->
      let flagged, generic = run_campaign ~factory ~seeds ~c ~w ~readers in
      check int "no shrinking violations" 0 flagged;
      check int "no generic failures" 0 generic)

let campaign_matrix =
  [
    ("anderson", anderson_factory, 60, 2, 2, 2);
    ("anderson", anderson_factory, 30, 1, 3, 2);
    ("afek", afek_factory, 60, 2, 2, 2);
    ("afek", afek_factory, 40, 1, 3, 2);
    ("afek", afek_factory, 30, 3, 2, 1);
    ("afek", afek_factory, 30, 2, 3, 2);
  ]

(* The single-component multi-writer composite register is exactly a
   multi-writer atomic register (the paper's Section 1 observation). *)
let test_single_component_is_mrmw_register () =
  for seed = 1 to 50 do
    let env = Sim.create ~trace:false () in
    let mem = Memory.of_sim env in
    let mw =
      Composite.Multi_writer.create (anderson_factory mem) ~components:1
        ~writers_per_component:2 ~readers:1 ~init:[| 0 |]
    in
    let ops = ref [] in
    let record proc label f =
      let inv = Sim.now env in
      let i, o = f () in
      let res = Sim.now env in
      ops := History.Oprec.v ~proc ~label ~input:i ~output:o ~inv ~res :: !ops
    in
    let writer widx () =
      List.iter
        (fun v ->
          record widx "w" (fun () ->
              ignore (Composite.Multi_writer.update mw ~comp:0 ~widx v);
              (History.Linearize.Reg_write v, History.Linearize.Reg_done)))
        [ (widx * 10) + 1; (widx * 10) + 2 ]
    in
    let reader () =
      for _ = 1 to 3 do
        record 2 "r" (fun () ->
            let v =
              (Composite.Multi_writer.scan_items mw ~reader:0).(0).Composite.Item.v
            in
            (History.Linearize.Reg_read, History.Linearize.Reg_value v))
      done
    in
    ignore
      (Sim.run env ~policy:(Schedule.Random seed) [| writer 0; writer 1; reader |]);
    if
      not
        (History.Linearize.is_linearizable
           (History.Linearize.register_spec ~equal:Int.equal)
           ~init:0 !ops)
    then Alcotest.failf "MRMW register semantics violated at seed %d" seed
  done

let () =
  Alcotest.run "multi_writer"
    [
      ( "sequential",
        [
          Alcotest.test_case "initial scan" `Quick test_initial_scan;
          Alcotest.test_case "last writer wins" `Quick test_last_writer_wins;
          Alcotest.test_case "own overwrite" `Quick test_same_writer_overwrites;
          Alcotest.test_case "ids increase" `Quick test_ids_strictly_increase;
          Alcotest.test_case "validation" `Quick test_validation;
        ] );
      ( "concurrent",
        List.map campaign_case campaign_matrix
        @ [
            Alcotest.test_case "single component = MRMW register" `Quick
              test_single_component_is_mrmw_register;
          ] );
    ]

(* Model-checking a snapshot protocol end to end.

   This example shows the verification workflow the library offers for
   code *using* composite registers:

   1. describe a small system (two writers + one reader over the paper's
      construction);
   2. enumerate EVERY interleaving of its shared-memory events with the
      simulator's exhaustive explorer;
   3. check each run against the Shrinking Lemma and, for one sample
      run, extract an explicit linearization witness — the total order
      whose existence the paper's theorem asserts;
   4. do the same for the broken naive collect and watch the explorer
      produce a counterexample schedule.

     dune exec examples/model_check.exe *)

open Csim

let build_system make_handle =
  let env = Sim.create ~trace:false () in
  let mem = Memory.of_sim env in
  let init = [| 0; 0 |] in
  let handle = make_handle mem init in
  let rec_ =
    Composite.Snapshot.record ~clock:(fun () -> Sim.now env) ~initial:init
      handle
  in
  let procs =
    [|
      (fun () -> rec_.Composite.Snapshot.rupdate ~writer:0 1);
      (fun () -> rec_.Composite.Snapshot.rupdate ~writer:1 2);
      (fun () -> ignore (rec_.Composite.Snapshot.rscan ~reader:0));
    |]
  in
  (env, rec_, procs)

let explore name make_handle =
  let result =
    try
      let r =
        Sim.explore (fun () ->
            let env, rec_, procs = build_system make_handle in
            let check (_ : Sim.env) =
              let h = Composite.Snapshot.history rec_ in
              match History.Shrinking.check ~equal:Int.equal h with
              | [] -> ()
              | v :: _ ->
                failwith
                  (Format.asprintf "%a" History.Shrinking.pp_violation v)
            in
            (env, procs, check))
      in
      Printf.printf "%-16s %6d interleavings, all linearizable (complete: %b)\n"
        name r.Sim.runs r.Sim.exhaustive;
      true
    with
    | Sim.Exploration_failure { schedule; exn = Failure msg } ->
      Printf.printf "%-16s counterexample after schedule [%s]:\n  %s\n" name
        (String.concat "; " (List.map string_of_int schedule))
        msg;
      false
    | Sim.Exploration_failure { exn; _ } -> raise exn
  in
  result

let show_witness () =
  (* One concrete run, with the appendix's linearization order printed. *)
  let env, rec_, procs =
    build_system (fun mem init ->
        Composite.Anderson.handle
          (Composite.Anderson.create mem ~readers:1 ~bits_per_value:8 ~init))
  in
  let (_ : Sim.stats) = Sim.run env ~policy:(Schedule.Random 7) procs in
  let h = Composite.Snapshot.history rec_ in
  match History.Shrinking.witness ~equal:Int.equal h with
  | Error e -> failwith e
  | Ok order ->
    print_endline
      "\nsample run under seed 7 — linearization witness (relation F of the \
       paper's appendix, extended to a total order):";
    List.iteri
      (fun i op ->
        match op with
        | History.Shrinking.L_write w ->
          Printf.printf "  %d. Write component %d := %d%s\n" (i + 1)
            w.History.Snapshot_history.comp w.History.Snapshot_history.value
            (if w.History.Snapshot_history.id = 0 then "  (initial)" else "")
        | History.Shrinking.L_read r ->
          Printf.printf "  %d. Read -> [%s]\n" (i + 1)
            (String.concat "; "
               (Array.to_list
                  (Array.map string_of_int r.History.Snapshot_history.values))))
      order

let () =
  print_endline
    "model-checking two Writes + one Read over every interleaving:\n";
  let anderson_ok =
    explore "anderson" (fun mem init ->
        Composite.Anderson.handle
          (Composite.Anderson.create mem ~readers:1 ~bits_per_value:8 ~init))
  in
  let afek_ok =
    explore "afek" (fun mem init ->
        Composite.Afek.create mem ~bits_per_value:8 ~init)
  in
  let unsafe_ok =
    explore "naive collect" (fun mem init ->
        Composite.Double_collect.create_unsafe mem ~bits_per_value:8 ~init)
  in
  show_witness ();
  if not (anderson_ok && afek_ok) then exit 1;
  if unsafe_ok then begin
    print_endline "ERROR: expected a counterexample for the naive collect";
    exit 1
  end

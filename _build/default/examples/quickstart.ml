(* Quickstart: a wait-free atomic snapshot ("composite register") shared
   by parallel domains.

   Three writer domains each own one component and update it
   concurrently; a reader domain takes snapshots.  Every snapshot is a
   consistent cut: it corresponds to one instant in a single total order
   of all operations, even though nobody ever blocks.

     dune exec examples/quickstart.exe *)

let () =
  let init = [| 0; 0; 0 |] in
  (* The paper's construction, running on Atomic.t registers. *)
  let reg = Composite.Multicore.anderson ~readers:1 ~init in

  let writer k =
    Domain.spawn (fun () ->
        for s = 1 to 10_000 do
          ignore (reg.Composite.Snapshot.update ~writer:k ((k * 100_000) + s))
        done)
  in
  let writers = List.init 3 writer in

  let snapshots = ref [] in
  let reader =
    Domain.spawn (fun () ->
        for _ = 1 to 1_000 do
          snapshots := Composite.Snapshot.scan reg ~reader:0 :: !snapshots
        done)
  in
  List.iter Domain.join writers;
  Domain.join reader;

  (* Each component only ever increases, and snapshots are atomic, so
     successive snapshots must be monotone in every component
     simultaneously — the paper's Read Precedence in action. *)
  let ordered = List.rev !snapshots in
  let monotone =
    let rec check = function
      | a :: (b :: _ as rest) ->
        Array.for_all2 (fun x y -> x <= y) a b && check rest
      | [ _ ] | [] -> true
    in
    check ordered
  in
  let last = List.nth ordered (List.length ordered - 1) in
  Printf.printf "took %d snapshots on 4 domains\n" (List.length ordered);
  Printf.printf "snapshots mutually consistent (componentwise monotone): %b\n"
    monotone;
  Printf.printf "a late snapshot: [%s]\n"
    (String.concat "; " (Array.to_list (Array.map string_of_int last)));
  if not monotone then exit 1

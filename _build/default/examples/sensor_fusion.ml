(* Sensor fusion: the paper's motivating application (Section 1) — a
   shared memory that can be read in its entirety in a single snapshot,
   without mutual exclusion.

   Each sensor domain periodically publishes a reading tagged with its
   own sample number into its component.  A fusion domain snapshots all
   sensors at once and computes an aggregate.  Because the scan is
   atomic, every aggregate is computed from readings that were
   simultaneously current — no torn reads, no locks, and a stalled
   sensor can never block fusion (wait-freedom).

     dune exec examples/sensor_fusion.exe *)

type reading = { sample : int; value : float }

let sensors = 4
let samples_per_sensor = 5_000
let fusions = 2_000

let () =
  let init = Array.make sensors { sample = 0; value = 0.0 } in
  let reg = Composite.Multicore.anderson ~readers:1 ~init in

  let sensor k =
    Domain.spawn (fun () ->
        (* Sensor k follows a deterministic trajectory so the fused
           results can be validated after the fact. *)
        for s = 1 to samples_per_sensor do
          let value = float_of_int ((k + 1) * s) in
          ignore (reg.Composite.Snapshot.update ~writer:k { sample = s; value })
        done)
  in
  let doms = List.init sensors sensor in

  let reports = ref [] in
  let fusion =
    Domain.spawn (fun () ->
        for _ = 1 to fusions do
          let snap = Composite.Snapshot.scan reg ~reader:0 in
          let mean =
            Array.fold_left (fun acc r -> acc +. r.value) 0.0 snap
            /. float_of_int sensors
          in
          reports := (snap, mean) :: !reports
        done)
  in
  List.iter Domain.join doms;
  Domain.join fusion;

  (* Validation 1: within one snapshot, each sensor's reading is on its
     trajectory (value = (k+1) * sample). *)
  let on_trajectory =
    List.for_all
      (fun (snap, _) ->
        Array.for_all Fun.id
          (Array.mapi
             (fun k r ->
               r.value = float_of_int ((k + 1) * r.sample))
             snap))
      !reports
  in
  (* Validation 2: across successive snapshots, sample numbers never go
     backwards (snapshots are linearized). *)
  let ordered = List.rev_map fst !reports in
  let monotone =
    let rec check = function
      | a :: (b :: _ as rest) ->
        Array.for_all2 (fun x y -> x.sample <= y.sample) a b && check rest
      | [ _ ] | [] -> true
    in
    check ordered
  in
  let _, last_mean = List.hd !reports in
  Printf.printf "sensors: %d, fusion rounds: %d\n" sensors fusions;
  Printf.printf "all readings on trajectory within each snapshot: %b\n"
    on_trajectory;
  Printf.printf "sample numbers monotone across snapshots:        %b\n"
    monotone;
  Printf.printf "final fused mean: %.1f\n" last_mean;
  if not (on_trajectory && monotone) then exit 1

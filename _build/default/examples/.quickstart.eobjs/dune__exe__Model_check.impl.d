examples/model_check.ml: Array Composite Csim Format History Int List Memory Printf Schedule Sim String

examples/register_ladder.ml: Array Composite Constructions Csim Full_stack Printf Registers Sim String Weak

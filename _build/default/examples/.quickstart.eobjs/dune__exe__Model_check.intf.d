examples/model_check.mli:

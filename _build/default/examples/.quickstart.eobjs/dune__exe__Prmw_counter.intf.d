examples/prmw_counter.mli:

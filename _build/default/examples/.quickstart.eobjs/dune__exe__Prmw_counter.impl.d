examples/prmw_counter.ml: Composite Domain List Printf Prmw

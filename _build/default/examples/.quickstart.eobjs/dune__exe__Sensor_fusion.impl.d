examples/sensor_fusion.ml: Array Composite Domain Fun List Printf

examples/sensor_fusion.mli:

examples/bank_audit.ml: Array Composite Csim Memory Printf Schedule Sim

examples/quickstart.ml: Array Composite Domain List Printf String

examples/quickstart.mli:

examples/register_ladder.mli:

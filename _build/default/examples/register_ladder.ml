(* The whole story in one run: from safe bits to atomic snapshots.

   The paper's contribution is the top rung of a ladder the literature
   built over a decade.  This example climbs it, exercising each rung
   and printing what it costs, ending with the composite register
   running end-to-end on registers built from SRSW registers:

     safe bit
       -> regular bit          (Lamport: don't rewrite the same value)
       -> k-valued regular     (unary encoding)
       -> atomic SRSW          (sequence numbers)
       -> atomic MRSW          (reader announcements)
       -> composite register   (this paper)

     dune exec examples/register_ladder.exe *)

open Csim
open Registers

let step = ref 0

let rung name detail =
  incr step;
  Printf.printf "%d. %-22s %s\n" !step name detail

let () =
  print_endline "climbing the register ladder:\n";

  (* 1. A safe bit: correct alone, garbage under contention. *)
  let env = Sim.create () in
  let bit = Weak.safe_bit env ~name:"safe" ~seed:42 false in
  let solo = ref false in
  let (_ : Sim.stats) =
    Sim.run_solo env (fun () ->
        Weak.write_safe bit true;
        solo := Weak.read_safe bit)
  in
  rung "safe bit"
    (Printf.sprintf "quiescent read ok: %b (overlapping reads are arbitrary)"
       !solo);

  (* 2. Regular bit from the safe bit. *)
  let env = Sim.create () in
  let rb = Constructions.Regular_bit_of_safe.create env ~name:"reg" ~seed:7 false in
  let (_ : Sim.stats) =
    Sim.run_solo env (fun () ->
        Constructions.Regular_bit_of_safe.write rb true;
        assert (Constructions.Regular_bit_of_safe.read rb))
  in
  rung "regular bit" "suppressing duplicate writes makes overlap reads old-or-new";

  (* 3. k-valued regular register (unary). *)
  let env = Sim.create () in
  let kary = Constructions.Regular_kary_of_bits.create env ~name:"k" ~seed:3 ~k:8 0 in
  let (_ : Sim.stats) =
    Sim.run_solo env (fun () ->
        Constructions.Regular_kary_of_bits.write kary 5;
        assert (Constructions.Regular_kary_of_bits.read kary = 5))
  in
  rung "8-valued regular" "8 regular bits in unary; readers scan up to the first 1";

  (* 4. Atomic SRSW via sequence numbers. *)
  let env = Sim.create () in
  let srsw = Constructions.Atomic_srsw_of_regular.create env ~name:"a" ~seed:5 0 in
  let (_ : Sim.stats) =
    Sim.run_solo env (fun () ->
        Constructions.Atomic_srsw_of_regular.write srsw 41;
        Constructions.Atomic_srsw_of_regular.write srsw 42;
        assert (Constructions.Atomic_srsw_of_regular.read srsw = 42))
  in
  rung "atomic SRSW" "monotone tags forbid new-then-old inversions";

  (* 5. Atomic MRSW: writer posts per reader, readers announce. *)
  let env = Sim.create () in
  let mrsw = Constructions.Atomic_mrsw_of_srsw.create env ~name:"m" ~readers:4 0 in
  let (_ : Sim.stats) =
    Sim.run_solo env (fun () ->
        Constructions.Atomic_mrsw_of_srsw.write mrsw 9;
        assert (Constructions.Atomic_mrsw_of_srsw.read mrsw ~reader:3 = 9))
  in
  rung "atomic MRSW"
    (Printf.sprintf "4 readers need %d SRSW registers"
       (Constructions.Atomic_mrsw_of_srsw.srsw_registers mrsw));

  (* 6. The composite register, on MRSW registers built from SRSW. *)
  let env = Sim.create ~trace:false () in
  let processes = 4 in
  let mem = Full_stack.memory env ~processes in
  let init = [| 0; 0; 0 |] in
  let reg = Composite.Anderson.create mem ~readers:1 ~bits_per_value:16 ~init in
  let before = Sim.now env in
  let snap = ref [||] in
  let (_ : Sim.stats) =
    Sim.run_solo env (fun () ->
        ignore (Composite.Anderson.update reg ~writer:0 10);
        ignore (Composite.Anderson.update reg ~writer:2 30);
        snap := Composite.Item.values (Composite.Anderson.scan_items reg ~reader:0))
  in
  rung "composite register"
    (Printf.sprintf
       "snapshot [%s] over the constructed substrate: %d SRSW ops for 2 \
        Writes + 1 Read"
       (String.concat "; " (Array.to_list (Array.map string_of_int !snap)))
       (Sim.now env - before));

  Printf.printf
    "\nat C = 3 components: one snapshot Read costs TR = %d MRSW operations\n\
     (paper: TR(C) = 5 + 2 TR(C-1) = 6*2^(C-1) - 5), each of which costs\n\
     2P - 1 = %d SRSW operations here — wait-free all the way down.\n"
    (Composite.Complexity.tr ~c:3)
    (Full_stack.read_cost ~processes);

(* A wait-free shared counter from composite registers.

   "Increment" is a pseudo read-modify-write operation (it modifies the
   counter based on its old value but returns nothing), and the paper
   notes (Section 1, refs [6,7]) that all commutative PRMW objects are
   wait-free implementable from composite registers — in sharp contrast
   to fetch-and-increment, which is impossible from registers.

   This example races [workers] domains doing [increments] each against
   (a) the PRMW counter and (b) a deliberately racy `int ref` counter,
   then compares totals: the PRMW counter is exact, the racy counter
   loses updates.

     dune exec examples/prmw_counter.exe *)

let workers = 4
let increments = 50_000

let () =
  let factory =
    {
      Composite.Snapshot.make_sw =
        (fun ~readers ~init ->
          ignore readers;
          Composite.Multicore.afek ~init);
    }
  in
  let counter = Prmw.counter factory ~processes:workers ~readers:1 in

  let racy = ref 0 in
  let worker p =
    Domain.spawn (fun () ->
        for _ = 1 to increments do
          Prmw.incr counter ~proc:p;
          (* the racy increment: read-modify-write without atomicity *)
          racy := !racy + 1
        done)
  in
  let doms = List.init workers worker in

  (* A concurrent auditor watches the counter grow monotonically. *)
  let audits = ref [] in
  let auditor =
    Domain.spawn (fun () ->
        for _ = 1 to 1_000 do
          audits := Prmw.get counter ~reader:0 :: !audits
        done)
  in
  List.iter Domain.join doms;
  Domain.join auditor;

  let expected = workers * increments in
  let final = Prmw.get counter ~reader:0 in
  let monotone =
    let rec check = function
      | a :: (b :: _ as rest) -> b <= a && check rest (* newest first *)
      | [ _ ] | [] -> true
    in
    check !audits
  in
  Printf.printf "%d domains x %d increments = %d expected\n" workers increments
    expected;
  Printf.printf "PRMW wait-free counter: %d (exact: %b)\n" final
    (final = expected);
  Printf.printf
    "racy int ref counter:   %d (lost %d updates; can be 0 on machines with \
     few cores)\n"
    !racy (expected - !racy);
  Printf.printf "auditor saw a monotone counter: %b\n" monotone;
  if final <> expected || not monotone then exit 1

(* Consistent global predicates without mutual exclusion: auditing a
   ledger of concurrent transfers with overdraft protection.

   Each account owner p owns one component holding its cumulative
   ledger: the amounts it has sent to every other account.  A transfer
   p -> q is a single Write to p's own component (single-writer!).  The
   balance of q is

     init(q) + sum over p of sent(p)(q) - sum over r of sent(q)(r)

   Before sending, an owner snapshots the ledgers and computes its own
   balance, sending at most that amount.  Because incoming transfers can
   only increase a balance between the owner's scan and its Write, this
   protocol maintains the global invariant "no balance is ever
   negative" — {e provided scans are atomic}.

   An auditor snapshots the ledgers and checks that invariant.  With the
   paper's construction, no audit can ever compute a negative balance.
   With a naive non-atomic collect, an audit can mix a sender's new
   ledger with stale views of the ledgers funding it, and "see" a
   negative balance that never existed.  The deterministic simulator
   makes the race reproducible.

     dune exec examples/bank_audit.exe *)

open Csim

let accounts = 3
let initial_balance = 10
let transfers_per_account = 5
let audits_per_auditor = 6
let schedules = 400

type ledger = int array (* sent.(q) = total sent to account q *)

let balance (snap : ledger array) q =
  let received = Array.fold_left (fun acc l -> acc + l.(q)) 0 snap in
  let sent = Array.fold_left ( + ) 0 snap.(q) in
  initial_balance + received - sent

let run ~label ~make =
  let negative_audits = ref 0 in
  let audits = ref 0 in
  let transfers = ref 0 in
  for seed = 1 to schedules do
    let env = Sim.create ~trace:false () in
    let mem = Memory.of_sim env in
    let init = Array.init accounts (fun _ -> Array.make accounts 0) in
    let reg : ledger Composite.Snapshot.t = make mem init in
    (* Owner p is reader p; auditors are readers accounts..accounts+1. *)
    let owner p () =
      let ledger = Array.make accounts 0 in
      for s = 1 to transfers_per_account do
        let target = (p + s) mod accounts in
        if target <> p then begin
          let snap = Composite.Snapshot.scan reg ~reader:p in
          let funds = balance snap p in
          let amount = min funds (1 + ((p + s) mod 7)) in
          if amount > 0 then begin
            ledger.(target) <- ledger.(target) + amount;
            incr transfers;
            ignore (reg.Composite.Snapshot.update ~writer:p (Array.copy ledger))
          end
        end
      done
    in
    let auditor j () =
      for _ = 1 to audits_per_auditor do
        let snap = Composite.Snapshot.scan reg ~reader:(accounts + j) in
        incr audits;
        let negative = ref false in
        for q = 0 to accounts - 1 do
          if balance snap q < 0 then negative := true
        done;
        if !negative then incr negative_audits
      done
    in
    let procs =
      Array.append
        (Array.init accounts (fun p -> owner p))
        [| auditor 0; auditor 1 |]
    in
    ignore (Sim.run env ~policy:(Schedule.Random seed) procs)
  done;
  Printf.printf "%-22s transfers=%-5d audits=%-5d negative-balance audits=%d\n"
    label !transfers !audits !negative_audits;
  !negative_audits

let () =
  Printf.printf
    "auditing %d overdraft-protected accounts (%d initial each), %d \
     schedules:\n"
    accounts initial_balance schedules;
  let v_atomic =
    run ~label:"atomic snapshot" ~make:(fun mem init ->
        Composite.Anderson.handle
          (Composite.Anderson.create mem ~readers:(accounts + 2)
             ~bits_per_value:64 ~init))
  in
  let v_naive =
    run ~label:"naive collect" ~make:(fun mem init ->
        Composite.Double_collect.create_unsafe mem ~bits_per_value:64 ~init)
  in
  Printf.printf
    "\nwith atomic snapshots no audit can ever see a negative balance;\n\
     the naive collect mixes ledger versions and reports phantom \
     overdrafts.\n";
  if v_atomic <> 0 then exit 1;
  if v_naive = 0 then begin
    print_endline "ERROR: expected the naive collect to be caught";
    exit 1
  end

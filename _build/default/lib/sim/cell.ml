type 'a t = {
  id : int;
  name : string;
  bits : int;
  pp : ('a -> string) option;
  storage : 'a ref;
  mutable reads : int;
  mutable writes : int;
}

type packed = Packed : 'a t -> packed

let make ~id ~name ~bits ~pp init =
  { id; name; bits; pp; storage = ref init; reads = 0; writes = 0 }

let name c = c.name
let bits c = c.bits
let id c = c.id
let reads c = c.reads
let writes c = c.writes

let reset_counters c =
  c.reads <- 0;
  c.writes <- 0

let peek c = !(c.storage)
let poke c v = c.storage := v
let count_read c = c.reads <- c.reads + 1
let count_write c = c.writes <- c.writes + 1

let pp_value c v =
  match c.pp with
  | None -> "_"
  | Some f -> f v

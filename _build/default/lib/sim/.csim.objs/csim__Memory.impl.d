lib/sim/memory.ml: Atomic Cell Sim

lib/sim/schedule.ml: Array Int64 List Printf

lib/sim/cell.ml:

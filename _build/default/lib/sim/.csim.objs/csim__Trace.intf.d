lib/sim/trace.mli: Format

lib/sim/sim.mli: Cell Schedule Trace

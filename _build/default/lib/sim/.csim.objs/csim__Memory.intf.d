lib/sim/memory.mli: Sim

lib/sim/sim.ml: Array Cell Effect List Option Printf Schedule Trace

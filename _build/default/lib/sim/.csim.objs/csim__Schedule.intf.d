lib/sim/schedule.mli:

lib/sim/render.mli: Trace

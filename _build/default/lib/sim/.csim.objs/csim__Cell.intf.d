lib/sim/cell.mli:

lib/sim/render.ml: Buffer Bytes List Printf String Trace

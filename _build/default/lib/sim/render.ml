let accesses tr =
  List.filter (fun (e : Trace.event) -> e.kind <> Trace.Note) (Trace.events tr)

let timeline ?(max_events = 120) ?(proc_label = Printf.sprintf "p%d") tr =
  let events = accesses tr in
  let truncated = List.length events > max_events in
  let events = List.filteri (fun i _ -> i < max_events) events in
  let procs =
    List.sort_uniq compare (List.map (fun (e : Trace.event) -> e.proc) events)
  in
  let n = List.length events in
  let buf = Buffer.create 256 in
  let label_width =
    List.fold_left (fun acc p -> max acc (String.length (proc_label p))) 0 procs
  in
  List.iter
    (fun p ->
      Buffer.add_string buf (Printf.sprintf "%-*s  " label_width (proc_label p));
      let row = Bytes.make n '-' in
      List.iteri
        (fun i (e : Trace.event) ->
          if e.proc = p then
            Bytes.set row i (match e.kind with
              | Trace.Read -> 'R'
              | Trace.Write -> 'W'
              | Trace.Note -> '#'))
        events;
      Buffer.add_string buf (Bytes.to_string row);
      if truncated then Buffer.add_string buf "...";
      Buffer.add_char buf '\n')
    procs;
  Buffer.contents buf

let legend ?(max_events = 120) tr =
  let events = accesses tr in
  let truncated = List.length events > max_events in
  let events = List.filteri (fun i _ -> i < max_events) events in
  let buf = Buffer.create 256 in
  List.iter
    (fun (e : Trace.event) ->
      Buffer.add_string buf
        (Printf.sprintf "%4d  p%-2d %s %-10s %s\n" e.step e.proc
           (match e.kind with
           | Trace.Read -> "R"
           | Trace.Write -> "W"
           | Trace.Note -> "#")
           e.cell e.value))
    events;
  if truncated then Buffer.add_string buf "  ...\n";
  Buffer.contents buf

(** Event traces of simulated histories.

    A trace records, in execution order, every atomic shared-memory
    access (an {e event} in the paper's terminology) together with
    free-form notes emitted by the harness (operation boundaries,
    schedule annotations, ...).  Traces are the raw material from which
    histories are reconstructed and against which the Figure-4 scenarios
    are asserted. *)

type kind = Read | Write | Note

type event = {
  step : int;  (** index of the event; 0 is the first access of the run *)
  proc : int;  (** process that performed the access; -1 for harness notes *)
  kind : kind;
  cell : string;  (** cell name, or the note text for [Note] events *)
  value : string;  (** rendered value transferred by the access *)
}

type t

val create : unit -> t
val clear : t -> unit
val record : t -> event -> unit
val events : t -> event list
(** All recorded events, oldest first. *)

val length : t -> int
val set_enabled : t -> bool -> unit
val enabled : t -> bool

val pp_event : Format.formatter -> event -> unit
val pp : Format.formatter -> t -> unit

val accesses_of : t -> cell:string -> event list
(** Events (reads and writes) touching the named cell, oldest first. *)

val writes_between : t -> cell:string -> lo:int -> hi:int -> int
(** Number of [Write] events on [cell] with [lo <= step <= hi].  Used by
    the Figure-4 scenario assertions ("Writer 0 executes its statement 3
    exactly twice between r:3 and r:7"). *)

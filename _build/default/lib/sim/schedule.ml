exception Bad_script of string

module Prng = struct
  (* splitmix64: tiny, fast, reproducible; good enough statistical
     quality for schedule shuffling. *)
  type t = { mutable state : int64 }

  let make seed = { state = Int64.of_int seed }

  let bits64 t =
    t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
    let z = t.state in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
    Int64.logxor z (Int64.shift_right_logical z 31)

  let int t bound =
    assert (bound > 0);
    let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
    r mod bound

  let float t =
    let r = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
    r /. 9007199254740992.0
end

type t =
  | Round_robin
  | Random of int
  | Scripted of int array * t
  | Choose of (enabled:int array -> step:int -> int)

type driver_state =
  | D_round_robin of { mutable last : int }
  | D_random of Prng.t
  | D_scripted of { script : int array; mutable pos : int; fallback : driver_state }
  | D_choose of (enabled:int array -> step:int -> int)

type driver = driver_state

let rec driver = function
  | Round_robin -> D_round_robin { last = -1 }
  | Random seed -> D_random (Prng.make seed)
  | Scripted (script, fallback) ->
    D_scripted { script; pos = 0; fallback = driver fallback }
  | Choose f -> D_choose f

let array_mem x a = Array.exists (fun y -> y = x) a

let rec pick d ~enabled ~step =
  match d with
  | D_round_robin st ->
    (* First enabled id strictly greater than [last], wrapping. *)
    let above = Array.to_list enabled |> List.filter (fun p -> p > st.last) in
    let choice = match above with p :: _ -> p | [] -> enabled.(0) in
    st.last <- choice;
    choice
  | D_random prng -> enabled.(Prng.int prng (Array.length enabled))
  | D_scripted st ->
    if st.pos >= Array.length st.script then pick st.fallback ~enabled ~step
    else begin
      let p = st.script.(st.pos) in
      st.pos <- st.pos + 1;
      if not (array_mem p enabled) then
        raise
          (Bad_script
             (Printf.sprintf
                "script step %d schedules process %d, which is not enabled"
                (st.pos - 1) p));
      p
    end
  | D_choose f ->
    let p = f ~enabled ~step in
    if not (array_mem p enabled) then
      raise (Bad_script (Printf.sprintf "Choose policy returned disabled process %d" p));
    p

(** Memory abstraction: the register interface algorithms are written
    against.

    The paper's constructions only assume multi-reader single-writer
    atomic registers.  Algorithms in this repository are written once
    against this abstract interface and instantiated twice:

    - {!of_sim}: cells of the deterministic simulator, where every
      access is a scheduling point and is traced/counted — used for
      correctness checking and for measuring the complexity recurrences;
    - an [Atomic.t]-backed instance (see [Composite.Multicore_mem]) for
      genuinely parallel execution on OCaml domains.

    A handle bundles the two operations as closures; the polymorphic
    [make] field requires a record (not a functor) so that instances can
    be created at runtime, one per simulation environment. *)

type 'a cell = {
  read : unit -> 'a;
  write : 'a -> unit;
  peek : unit -> 'a;
      (** Ghost read: the current contents, {e without} generating an
          event.  For observers and diagnostics only — algorithms must
          never call it. *)
}

type t = {
  make : 'a. name:string -> bits:int -> 'a -> 'a cell;
      (** [make ~name ~bits init] allocates a fresh atomic register
          holding [init].  [bits] is the declared width, used only for
          space accounting. *)
}

val of_sim : Sim.env -> t
(** Registers backed by simulator cells (traced, counted, scheduled). *)

val direct : unit -> t
(** Registers backed by plain [ref]s with no synchronization — only
    valid single-threaded; used for sequential unit tests of algorithm
    logic outside any simulation. *)

val atomic : unit -> t
(** Registers backed by [Stdlib.Atomic].  Each register holds an
    immutable value; [Atomic.get]/[Atomic.set] are sequentially
    consistent under the OCaml memory model, so such a register is a
    hardware multi-reader multi-writer atomic register — strictly
    stronger than the MRSW registers the constructions assume. *)

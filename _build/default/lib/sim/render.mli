(** ASCII rendering of traces, in the style of the paper's Figure 4:
    one timeline per process, time running left to right, one column per
    shared-memory event. *)

val timeline : ?max_events:int -> ?proc_label:(int -> string) -> Trace.t -> string
(** [timeline tr] renders each process as a row; its events appear as
    [R] (read) or [W] (write) at their global position, with [-]
    elsewhere.  Traces longer than [max_events] (default 120) are
    truncated with an ellipsis.  [proc_label] names the rows (default
    ["p<i>"]). *)

val legend : ?max_events:int -> Trace.t -> string
(** One line per event: step, process, kind, cell, value — the detail
    the timeline omits. *)

(** Shared atomic cells of the simulated machine.

    A cell models one atomic register of the underlying shared memory: a
    single read or write of a cell is one atomic event of a history, in
    the sense of Section 2 of the paper.  Cells carry accounting
    metadata (a declared width in bits and read/write counters) so that
    the space and time complexity recurrences of Section 4 can be
    measured rather than merely asserted.

    Cells must only be accessed from inside a simulation (see
    {!Sim.read} and {!Sim.write}); this module only exposes their
    metadata and the unsynchronized accessors used by the scheduler
    itself. *)

type 'a t
(** A shared cell holding values of type ['a]. *)

type packed = Packed : 'a t -> packed
(** Existential wrapper used by the per-environment cell registry. *)

val make :
  id:int -> name:string -> bits:int -> pp:('a -> string) option -> 'a -> 'a t
(** [make ~id ~name ~bits ~pp init] creates a fresh cell.  [bits] is the
    declared width used for space accounting; [pp] is used when tracing
    values.  Intended to be called via {!Sim.make_cell}, which allocates
    the [id] and registers the cell. *)

val name : 'a t -> string
val bits : 'a t -> int
val id : 'a t -> int

val reads : 'a t -> int
(** Number of read events performed on this cell so far. *)

val writes : 'a t -> int
(** Number of write events performed on this cell so far. *)

val reset_counters : 'a t -> unit

val peek : 'a t -> 'a
(** Current contents, without generating an event.  Scheduler/harness
    use only. *)

val poke : 'a t -> 'a -> unit
(** Overwrite contents without generating an event.  Scheduler/harness
    use only. *)

val count_read : 'a t -> unit
val count_write : 'a t -> unit

val pp_value : 'a t -> 'a -> string
(** Render a value with the cell's printer, or ["_"] if none. *)

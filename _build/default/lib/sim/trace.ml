type kind = Read | Write | Note

type event = {
  step : int;
  proc : int;
  kind : kind;
  cell : string;
  value : string;
}

type t = { mutable rev_events : event list; mutable n : int; mutable on : bool }

let create () = { rev_events = []; n = 0; on = true }

let clear t =
  t.rev_events <- [];
  t.n <- 0

let record t e =
  if t.on then begin
    t.rev_events <- e :: t.rev_events;
    t.n <- t.n + 1
  end

let events t = List.rev t.rev_events
let length t = t.n
let set_enabled t b = t.on <- b
let enabled t = t.on

let pp_kind fmt = function
  | Read -> Format.pp_print_string fmt "R"
  | Write -> Format.pp_print_string fmt "W"
  | Note -> Format.pp_print_string fmt "#"

let pp_event fmt e =
  match e.kind with
  | Note -> Format.fprintf fmt "%6d  p%-2d # %s" e.step e.proc e.cell
  | _ ->
    Format.fprintf fmt "%6d  p%-2d %a %s = %s" e.step e.proc pp_kind e.kind
      e.cell e.value

let pp fmt t =
  List.iter (fun e -> Format.fprintf fmt "%a@." pp_event e) (events t)

let accesses_of t ~cell =
  List.filter (fun e -> e.kind <> Note && String.equal e.cell cell) (events t)

let writes_between t ~cell ~lo ~hi =
  List.fold_left
    (fun acc e ->
      if e.kind = Write && String.equal e.cell cell && e.step >= lo && e.step <= hi
      then acc + 1
      else acc)
    0 (events t)

type 'a cell = { read : unit -> 'a; write : 'a -> unit; peek : unit -> 'a }

type t = { make : 'a. name:string -> bits:int -> 'a -> 'a cell }

let of_sim env =
  let make : type a. name:string -> bits:int -> a -> a cell =
   fun ~name ~bits init ->
    let c = Sim.make_cell env ~bits name init in
    {
      read = (fun () -> Sim.read c);
      write = (fun v -> Sim.write c v);
      peek = (fun () -> Cell.peek c);
    }
  in
  { make }

let direct () =
  let make : type a. name:string -> bits:int -> a -> a cell =
   fun ~name:_ ~bits:_ init ->
    let r = ref init in
    {
      read = (fun () -> !r);
      write = (fun v -> r := v);
      peek = (fun () -> !r);
    }
  in
  { make }

let atomic () =
  let make : type a. name:string -> bits:int -> a -> a cell =
   fun ~name:_ ~bits:_ init ->
    let a = Atomic.make init in
    {
      read = (fun () -> Atomic.get a);
      write = (fun v -> Atomic.set a v);
      peek = (fun () -> Atomic.get a);
    }
  in
  { make }

(** Histories of a composite register, with the paper's auxiliary ids.

    Harnesses record every completed Read and Write operation of a
    composite register implementation here.  Write operations carry the
    auxiliary [id] their Writer assigned (the paper's [item.id]); Read
    operations carry, per component, the id of the Write whose value
    they returned (the paper's [r!item[k].id]).  These ids {e are} the
    functions [phi_k] of the Shrinking Lemma:
    [phi_k(r) = r.ids.(k)] and [phi_k(w) = w.id].

    Following the paper's Initial Writes assumption, each component [k]
    has a virtual initial Write with id [0] and input [initial.(k)] that
    precedes every other operation; {!writes_with_initial} materializes
    them.  Real Writes must therefore use ids [>= 1]. *)

type 'a write = {
  wproc : int;
  comp : int;
  value : 'a;
  id : int;
  winv : int;
  wres : int;
}

type 'a read = {
  rproc : int;
  values : 'a array;  (** length [components] *)
  ids : int array;  (** length [components] *)
  rinv : int;
  rres : int;
}

type 'a t = {
  components : int;
  initial : 'a array;
  writes : 'a write list;  (** in recording order *)
  reads : 'a read list;  (** in recording order *)
}

(** {2 Recording} *)

type 'a collector

val collector : initial:'a array -> 'a collector

val record_write :
  'a collector -> proc:int -> comp:int -> value:'a -> id:int -> inv:int ->
  res:int -> unit

val record_read :
  'a collector -> proc:int -> values:'a array -> ids:int array -> inv:int ->
  res:int -> unit

val history : 'a collector -> 'a t

(** {2 Views} *)

val initial_write : 'a t -> int -> 'a write
(** The virtual initial Write of a component: id [0], interval
    [(-2, -1)], process [-1]. *)

val writes_with_initial : 'a t -> 'a write list
(** All Writes including the virtual initial ones, initial first. *)

val write_precedes : 'a write -> 'a write -> bool
val read_precedes_write : 'a read -> 'a write -> bool
val write_precedes_read : 'a write -> 'a read -> bool
val read_precedes : 'a read -> 'a read -> bool

val to_ops :
  'a t -> ('a Linearize.snap_input, 'a Linearize.snap_output) Oprec.t list
(** Forget the auxiliary ids, producing input for the generic
    {!Linearize} checker (virtual initial Writes are not included; pass
    [initial] as the checker's initial state). *)

val size : 'a t -> int
(** Total number of recorded (non-virtual) operations. *)

val pp : ('a -> string) -> Format.formatter -> 'a t -> unit

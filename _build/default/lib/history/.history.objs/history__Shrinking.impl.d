lib/history/shrinking.ml: Array Format Hashtbl List Printf Snapshot_history

lib/history/oprec.ml: Csim Format Hashtbl List

lib/history/oprec.mli: Csim Format

lib/history/shrinking.mli: Format Snapshot_history

lib/history/regularity.ml: Linearize List Oprec

lib/history/snapshot_history.ml: Array Format Linearize List Oprec Printf String

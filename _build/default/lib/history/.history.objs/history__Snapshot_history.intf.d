lib/history/snapshot_history.mli: Format Linearize Oprec

lib/history/regularity.mli: Linearize Oprec

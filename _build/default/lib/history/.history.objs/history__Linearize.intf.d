lib/history/linearize.mli: Oprec

lib/history/linearize.ml: Array Hashtbl Oprec

(** Regularity checking for read/write register histories.

    A register is {e regular} (Lamport) if every read returns the value
    of some write it overlaps, or of a latest write that precedes it
    (the initial value standing for a virtual initial write).  This is
    weaker than atomicity: two sequential reads may observe new-then-old
    under a concurrent write.

    Operations use the {!Linearize.reg_input}/[reg_output] vocabulary;
    precedence is the interval order of {!Oprec}. *)

val check :
  equal:('v -> 'v -> bool) ->
  init:'v ->
  ('v Linearize.reg_input, 'v Linearize.reg_output) Oprec.t list ->
  bool
(** [true] iff every read's output is feasible under regular
    semantics. *)

val violations :
  equal:('v -> 'v -> bool) ->
  init:'v ->
  ('v Linearize.reg_input, 'v Linearize.reg_output) Oprec.t list ->
  ('v Linearize.reg_input, 'v Linearize.reg_output) Oprec.t list
(** The reads whose outputs are not feasible. *)

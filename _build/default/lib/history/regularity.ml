let feasible ~equal ~init writes r value =
  let overlapping =
    List.filter
      (fun w -> not (Oprec.precedes r w || Oprec.precedes w r))
      writes
  in
  let preceding = List.filter (fun w -> Oprec.precedes w r) writes in
  (* Latest preceding writes: those not succeeded by another write that
     still precedes the read. *)
  let latest =
    List.filter
      (fun w ->
        not (List.exists (fun w' -> Oprec.precedes w w' && Oprec.precedes w' r) preceding))
      preceding
  in
  let candidates =
    List.filter_map
      (fun (w : _ Oprec.t) ->
        match w.Oprec.input with
        | Linearize.Reg_write v -> Some v
        | Linearize.Reg_read -> None)
      (overlapping @ latest)
  in
  let candidates = if preceding = [] then init :: candidates else candidates in
  List.exists (fun v -> equal v value) candidates

let violations ~equal ~init ops =
  let writes =
    List.filter
      (fun (o : _ Oprec.t) ->
        match o.Oprec.input with
        | Linearize.Reg_write _ -> true
        | Linearize.Reg_read -> false)
      ops
  in
  List.filter
    (fun (o : _ Oprec.t) ->
      match (o.Oprec.input, o.Oprec.output) with
      | Linearize.Reg_read, Linearize.Reg_value v ->
        not (feasible ~equal ~init writes o v)
      | Linearize.Reg_read, Linearize.Reg_done
      | Linearize.Reg_write _, _ ->
        false)
    ops

let check ~equal ~init ops = violations ~equal ~init ops = []

(** Generic timed operation records.

    An operation is a contiguous sequence of events of one process (the
    execution of one Reader or Writer procedure).  For checking we keep
    only its endpoints: [inv] is a timestamp taken before its first
    event and [res] a timestamp taken after its last event.  In the
    simulator these timestamps are event-counter values, so the induced
    interval order coincides with the paper's event-level precedence
    once intervals are tightened to the operation's actual first/last
    events (see {!tighten_intervals}). *)

type ('i, 'o) t = {
  proc : int;
  label : string;
  input : 'i;
  output : 'o;
  inv : int;
  res : int;
}

val v :
  proc:int -> label:string -> input:'i -> output:'o -> inv:int -> res:int ->
  ('i, 'o) t

val precedes : ('i, 'o) t -> ('i, 'o) t -> bool
(** [precedes p q] iff every event of [p] occurs before every event of
    [q], approximated as [p.res <= q.inv]. *)

val concurrent : ('i, 'o) t -> ('i, 'o) t -> bool

val well_formed : ('i, 'o) t list -> bool
(** Per-process serial execution: no two operations of the same process
    overlap. *)

val tighten_intervals : Csim.Trace.t -> ('i, 'o) t list -> ('i, 'o) t list
(** Replace each operation's [inv] by the step index of its process's
    first shared access at or after [inv], and [res] by one past the
    process's last access before [res].  Operations whose process
    performed no access in the window are left unchanged.  This recovers
    the paper's exact event-level precedence from harness
    timestamps. *)

val pp :
  (Format.formatter -> 'i -> unit) ->
  (Format.formatter -> 'o -> unit) ->
  Format.formatter -> ('i, 'o) t -> unit

type 'a write = {
  wproc : int;
  comp : int;
  value : 'a;
  id : int;
  winv : int;
  wres : int;
}

type 'a read = {
  rproc : int;
  values : 'a array;
  ids : int array;
  rinv : int;
  rres : int;
}

type 'a t = {
  components : int;
  initial : 'a array;
  writes : 'a write list;
  reads : 'a read list;
}

type 'a collector = {
  c_initial : 'a array;
  mutable c_writes : 'a write list;  (* newest first *)
  mutable c_reads : 'a read list;  (* newest first *)
}

let collector ~initial =
  if Array.length initial = 0 then invalid_arg "Snapshot_history.collector";
  { c_initial = Array.copy initial; c_writes = []; c_reads = [] }

let record_write c ~proc ~comp ~value ~id ~inv ~res =
  if id < 1 then invalid_arg "record_write: ids of real Writes must be >= 1";
  if comp < 0 || comp >= Array.length c.c_initial then
    invalid_arg "record_write: component out of range";
  c.c_writes <-
    { wproc = proc; comp; value; id; winv = inv; wres = res } :: c.c_writes

let record_read c ~proc ~values ~ids ~inv ~res =
  let n = Array.length c.c_initial in
  if Array.length values <> n || Array.length ids <> n then
    invalid_arg "record_read: wrong arity";
  c.c_reads <-
    {
      rproc = proc;
      values = Array.copy values;
      ids = Array.copy ids;
      rinv = inv;
      rres = res;
    }
    :: c.c_reads

let history c =
  {
    components = Array.length c.c_initial;
    initial = Array.copy c.c_initial;
    writes = List.rev c.c_writes;
    reads = List.rev c.c_reads;
  }

let initial_write h k =
  if k < 0 || k >= h.components then invalid_arg "initial_write";
  { wproc = -1; comp = k; value = h.initial.(k); id = 0; winv = -2; wres = -1 }

let writes_with_initial h =
  let initials = List.init h.components (initial_write h) in
  initials @ h.writes

let write_precedes v w = v.wres <= w.winv
let read_precedes_write r w = r.rres <= w.winv
let write_precedes_read w r = w.wres <= r.rinv
let read_precedes r s = r.rres <= s.rinv

let to_ops h =
  let w_ops =
    List.map
      (fun w ->
        Oprec.v ~proc:w.wproc ~label:"update"
          ~input:(Linearize.Update (w.comp, w.value))
          ~output:Linearize.Done ~inv:w.winv ~res:w.wres)
      h.writes
  in
  let r_ops =
    List.map
      (fun r ->
        Oprec.v ~proc:r.rproc ~label:"scan" ~input:Linearize.Scan
          ~output:(Linearize.View (Array.copy r.values))
          ~inv:r.rinv ~res:r.rres)
      h.reads
  in
  w_ops @ r_ops

let size h = List.length h.writes + List.length h.reads

let pp show fmt h =
  Format.fprintf fmt "@[<v>composite register history: C=%d, %d writes, %d reads@,"
    h.components (List.length h.writes) (List.length h.reads);
  List.iter
    (fun w ->
      Format.fprintf fmt "W p%-2d comp=%d id=%-3d %s @@ [%d,%d)@," w.wproc
        w.comp w.id (show w.value) w.winv w.wres)
    h.writes;
  List.iter
    (fun r ->
      let cells =
        Array.to_list (Array.mapi (fun k v -> Printf.sprintf "%s#%d" (show v) r.ids.(k)) r.values)
      in
      Format.fprintf fmt "R p%-2d [%s] @@ [%d,%d)@," r.rproc
        (String.concat "; " cells) r.rinv r.rres)
    h.reads;
  Format.fprintf fmt "@]"

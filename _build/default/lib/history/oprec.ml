type ('i, 'o) t = {
  proc : int;
  label : string;
  input : 'i;
  output : 'o;
  inv : int;
  res : int;
}

let v ~proc ~label ~input ~output ~inv ~res =
  if res < inv then invalid_arg "Oprec.v: res < inv";
  { proc; label; input; output; inv; res }

let precedes p q = p.res <= q.inv
let concurrent p q = (not (precedes p q)) && not (precedes q p)

let well_formed ops =
  let by_proc = Hashtbl.create 16 in
  List.iter
    (fun o ->
      let l = try Hashtbl.find by_proc o.proc with Not_found -> [] in
      Hashtbl.replace by_proc o.proc (o :: l))
    ops;
  Hashtbl.fold
    (fun _ l acc ->
      acc
      &&
      let sorted = List.sort (fun a b -> compare a.inv b.inv) l in
      let rec serial = function
        | a :: (b :: _ as rest) -> a.res <= b.inv && serial rest
        | [ _ ] | [] -> true
      in
      serial sorted)
    by_proc true

let tighten_intervals trace ops =
  let events = Csim.Trace.events trace in
  let tighten op =
    let first = ref None and last = ref None in
    List.iter
      (fun (e : Csim.Trace.event) ->
        if e.proc = op.proc && e.kind <> Csim.Trace.Note && e.step >= op.inv
           && e.step < op.res
        then begin
          if !first = None then first := Some e.step;
          last := Some e.step
        end)
      events;
    match (!first, !last) with
    | Some f, Some l -> { op with inv = f; res = l + 1 }
    | _ -> op
  in
  List.map tighten ops

let pp ppi ppo fmt o =
  Format.fprintf fmt "@[p%d %s(%a) -> %a @@ [%d,%d)@]" o.proc o.label ppi
    o.input ppo o.output o.inv o.res

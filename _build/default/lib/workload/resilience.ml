open Csim

type report = {
  scenarios : int;
  survivor_ops : int;
  blocked : int;
  not_linearizable : int;
}

(* Writer k's s-th Write has id s and input (k+1)*1000 + s (the workload
   below is deterministic), so a dangling Write observed through a
   Read's auxiliary ids can be reconstructed exactly. *)
let complete_dangling ~components (h : int History.Snapshot_history.t) =
  let open History.Snapshot_history in
  let max_recorded = Array.make components 0 in
  List.iter
    (fun w ->
      if w.id > max_recorded.(w.comp) then max_recorded.(w.comp) <- w.id)
    h.writes;
  let max_read = Array.make components 0 in
  List.iter
    (fun r ->
      Array.iteri
        (fun k id -> if id > max_read.(k) then max_read.(k) <- id)
        r.ids)
    h.reads;
  let extra = ref [] in
  for k = 0 to components - 1 do
    if max_read.(k) = max_recorded.(k) + 1 then
      extra :=
        {
          wproc = -2;
          comp = k;
          value = ((k + 1) * 1000) + max_read.(k);
          id = max_read.(k);
          winv = 0;
          wres = max_int;
        }
        :: !extra
  done;
  if !extra = [] then h else { h with writes = h.writes @ !extra }

let run ?(components = 2) ?(readers = 2) ?(writes_per_writer = 2)
    ?(scans_per_reader = 2) ?(max_crash_point = 12) ~seed () =
  let scenarios = ref 0 in
  let survivor_ops = ref 0 in
  let blocked = ref 0 in
  let not_linearizable = ref 0 in
  let nprocs = components + readers in
  for victim = 0 to nprocs - 1 do
    for crash_point = 0 to max_crash_point do
      incr scenarios;
      let env = Sim.create ~trace:false () in
      let mem = Memory.of_sim env in
      let init = Array.init components (fun k -> (k + 1) * 10) in
      let reg =
        Composite.Anderson.create mem ~readers ~bits_per_value:32 ~init
      in
      let rec_ =
        Composite.Snapshot.record
          ~clock:(fun () -> Sim.now env)
          ~initial:init
          (Composite.Anderson.handle reg)
      in
      let writer k () =
        for s = 1 to writes_per_writer do
          rec_.Composite.Snapshot.rupdate ~writer:k (((k + 1) * 1000) + s)
        done
      in
      let reader j () =
        for _ = 1 to scans_per_reader do
          ignore (rec_.Composite.Snapshot.rscan ~reader:j)
        done
      in
      let procs =
        Array.init nprocs (fun p ->
            if p < components then writer p else reader (p - components))
      in
      let finished =
        match
          Sim.run env
            ~policy:(Schedule.Random (seed + (victim * 1000) + crash_point))
            ~max_steps:500_000
            ~crashes:[ (victim, crash_point) ]
            procs
        with
        | (_ : Sim.stats) -> true
        | exception Sim.Stuck _ -> false
      in
      if not finished then incr blocked
      else begin
        let h = Composite.Snapshot.history rec_ in
        survivor_ops := !survivor_ops + History.Snapshot_history.size h;
        (* Standard linearizability treatment of a crashed process's
           pending operation: if its effect became visible (a Read
           returned an id beyond the recorded Writes of some component),
           complete it — the victim's next input value is deterministic,
           and a pending op is concurrent with everything, so it gets
           the maximal interval. *)
        let h = complete_dangling ~components h in
        if not (History.Shrinking.conditions_hold ~equal:Int.equal h) then
          incr not_linearizable
      end
    done
  done;
  {
    scenarios = !scenarios;
    survivor_ops = !survivor_ops;
    blocked = !blocked;
    not_linearizable = !not_linearizable;
  }

let pp_report fmt r =
  Format.fprintf fmt
    "@[<v>crash scenarios: %d@,completed operations by survivors: %d@,\
     scenarios where survivors blocked: %d@,scenarios with a \
     linearizability violation: %d@]"
    r.scenarios r.survivor_ops r.blocked r.not_linearizable

open Csim

type report = {
  runs : int;
  reads_checked : int;
  states_observed : int;
  lemma2_failures : int;
  property12_failures : int;
  lemma1_failures : int;
}

type ghost_state = { g_ids : int array; g_vals : int array }

type read_obs = {
  o_reader : int;
  o_ids : int array;
  o_vals : int array;
  o_inv : int;
  o_res : int;
  o_case : Composite.Anderson.case option;
}

let run ?(components = 3) ?(readers = 2) ?(writes_per_writer = 3)
    ?(scans_per_reader = 3) ?(schedules = 50) ~base_seed () =
  let reads_checked = ref 0 in
  let states_observed = ref 0 in
  let lemma2_failures = ref 0 in
  let property12_failures = ref 0 in
  let lemma1_failures = ref 0 in
  for i = 0 to schedules - 1 do
    let seed = base_seed + i in
    let env = Sim.create () in
    let mem = Memory.of_sim env in
    let init = Array.init components (fun k -> (k + 1) * 10) in
    let reg =
      Composite.Anderson.create mem ~readers ~bits_per_value:32 ~init
    in
    (* Ghost state after every event; index = event count. *)
    let rev_states = ref [] in
    let push_state () =
      let items = Composite.Anderson.ghost_items reg in
      rev_states :=
        { g_ids = Composite.Item.ids items; g_vals = Composite.Item.values items }
        :: !rev_states
    in
    push_state ();
    Sim.on_event env (fun ~step:_ -> push_state ());
    let observations = ref [] in
    let writer k () =
      for s = 1 to writes_per_writer do
        ignore (Composite.Anderson.update reg ~writer:k (((k + 1) * 1000) + s))
      done
    in
    let reader j () =
      for _ = 1 to scans_per_reader do
        let inv = Sim.now env in
        let items = Composite.Anderson.scan_items reg ~reader:j in
        let res = Sim.now env in
        observations :=
          {
            o_reader = j;
            o_ids = Composite.Item.ids items;
            o_vals = Composite.Item.values items;
            o_inv = inv;
            o_res = res;
            o_case = Composite.Anderson.last_case ~reader:j reg;
          }
          :: !observations
      done
    in
    let procs =
      Array.init (components + readers) (fun p ->
          if p < components then writer p else reader (p - components))
    in
    let (_ : Sim.stats) = Sim.run env ~policy:(Schedule.Random seed) procs in
    let states = Array.of_list (List.rev !rev_states) in
    states_observed := !states_observed + Array.length states;
    (* Property (12): ghost ids are non-decreasing. *)
    for s = 0 to Array.length states - 2 do
      for k = 0 to components - 1 do
        if states.(s).g_ids.(k) > states.(s + 1).g_ids.(k) then
          incr property12_failures
      done
    done;
    (* Lemma 2: each Read's window contains its snapshot state. *)
    List.iter
      (fun o ->
        incr reads_checked;
        let found = ref false in
        for s = o.o_inv + 1 to min o.o_res (Array.length states - 1) do
          if states.(s).g_ids = o.o_ids && states.(s).g_vals = o.o_vals then
            found := true
        done;
        if not !found then incr lemma2_failures)
      !observations;
    (* Lemma 1 (observable form): when statement 8 did not take the
       handshake branch, at most 5 writes of Y[0] can fall between the
       Read's statement-3 and statement-7 reads (the :7 of v and the :3
       and :7 of v+1 and v+2). *)
    if components >= 2 then begin
      let events = Trace.events (Sim.trace env) in
      let y0_write_steps =
        List.filter_map
          (fun (e : Trace.event) ->
            if e.kind = Trace.Write && String.equal e.cell "A.Y0" then
              Some e.step
            else None)
          events
      in
      List.iter
        (fun o ->
          if o.o_case <> Some Composite.Anderson.Case_snapshot_seq then begin
            (* The reader's accesses to the outermost Y[0] within this
               operation: statements 0, 3, 5, 7 in order. *)
            let proc = components + o.o_reader in
            let y0_reads =
              List.filter_map
                (fun (e : Trace.event) ->
                  if
                    e.proc = proc && e.kind = Trace.Read
                    && String.equal e.cell "A.Y0"
                    && e.step >= o.o_inv && e.step < o.o_res
                  then Some e.step
                  else None)
                events
            in
            match y0_reads with
            | [ _st0; st3; _st5; st7 ] ->
              let between =
                List.length
                  (List.filter (fun s -> s > st3 && s < st7) y0_write_steps)
              in
              if between > 5 then incr lemma1_failures
            | _ -> ()
          end)
        !observations
    end
  done;
  {
    runs = schedules;
    reads_checked = !reads_checked;
    states_observed = !states_observed;
    lemma2_failures = !lemma2_failures;
    property12_failures = !property12_failures;
    lemma1_failures = !lemma1_failures;
  }

let pp_report fmt r =
  Format.fprintf fmt
    "@[<v>schedules: %d@,reads checked: %d@,ghost states observed: %d@,\
     Lemma 2 failures: %d@,property (12) failures: %d@,Lemma 1 failures: %d@]"
    r.runs r.reads_checked r.states_observed r.lemma2_failures
    r.property12_failures r.lemma1_failures

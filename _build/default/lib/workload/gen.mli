(** Reproducible randomized workload generation.

    Campaigns elsewhere use fixed per-process operation counts; this
    module generates richer shapes deterministically from a seed —
    varying operation counts per process, writer bursts, reader-heavy
    and writer-heavy mixes — for soak testing. *)

type shape = {
  components : int;
  readers : int;
  writer_ops : int array;  (** ops per writer, length [components] *)
  reader_ops : int array;  (** ops per reader, length [readers] *)
}

val shape :
  seed:int -> max_components:int -> max_readers:int -> max_ops:int -> shape
(** Dimensions and per-process op counts drawn uniformly (at least one
    component, one reader; op counts in [0, max_ops]). *)

val total_ops : shape -> int

type soak_result = {
  soak_runs : int;
  soak_ops : int;
  soak_flagged : int;  (** runs with a Shrinking violation *)
}

val soak :
  impl:Campaign.impl -> runs:int -> seed:int -> max_components:int ->
  max_readers:int -> max_ops:int -> soak_result
(** Run [runs] randomly-shaped systems under random schedules, checking
    each history against the Shrinking conditions (the generic oracle is
    skipped: soak histories are large). *)

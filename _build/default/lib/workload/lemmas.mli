(** The paper's proof, executed: machine-checking the intermediate
    lemmas of Section 4.2 on concrete runs.

    The correctness proof of the construction rests on three facts that
    are universally quantified over histories — and therefore checkable
    on any particular history:

    - {b Lemma 2} ("shrink to a point"): for every Read operation [r]
      there exists a state {e strictly between its first and last
      events} at which, for all [k],
      [Y[k].val = r!item[k].val ∧ Y[k].id = phi_k(r)] — i.e. the
      register's ghost contents coincide exactly with what [r] returns.
      We sample the ghost state ({!Composite.Anderson.ghost_items})
      after every event and search each Read's window.

    - {b Property (12)} ([Y[k].id = D unless Y[k].id > D]): every
      component's ghost id is non-decreasing across events.

    - {b Lemma 1}: if a Read [r] of reader [j] does not trigger the
      sequence-number handshake ([r!e.seq[1,j] ≠ r!newseq]), then the
      0-Write last publishing [Y[0]] before [r:7] is at most two
      operations past the one before [r:3].  We check the contrapositive
      observable: the number of [Y[0]] writes between the Read's [a]
      read (statement 3) and its [e] read (statement 7) is at most 5
      ([v]'s statement 7 plus both writes of [v+1] and of [v+2])
      whenever statement 8 did not take the handshake branch.

    A failure of any check on any schedule would contradict the paper's
    proof (or reveal a transcription bug); [report] counts failures over
    a randomized campaign. *)

type report = {
  runs : int;
  reads_checked : int;
  states_observed : int;
  lemma2_failures : int;
  property12_failures : int;
  lemma1_failures : int;
}

val run :
  ?components:int ->
  ?readers:int ->
  ?writes_per_writer:int ->
  ?scans_per_reader:int ->
  ?schedules:int ->
  base_seed:int ->
  unit ->
  report
(** Defaults: [components = 3], [readers = 2], [writes_per_writer = 3],
    [scans_per_reader = 3], [schedules = 50]. *)

val pp_report : Format.formatter -> report -> unit

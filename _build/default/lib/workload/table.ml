type t = { header : string list; mutable rows : string list list }

let create ~header = { header; rows = [] }
let add_row t row = t.rows <- row :: t.rows

let pp fmt t =
  let rows = List.rev t.rows in
  let all = t.header :: rows in
  let ncols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let width = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell -> if String.length cell > width.(i) then width.(i) <- String.length cell)
        row)
    all;
  let pad i cell = Printf.sprintf "%-*s" width.(i) cell in
  let line row = String.concat "  " (List.mapi pad row) in
  let rule =
    String.concat "--"
      (Array.to_list (Array.map (fun w -> String.make w '-') width))
  in
  Format.fprintf fmt "%s@.%s@." (line t.header) rule;
  List.iter (fun row -> Format.fprintf fmt "%s@." (line row)) rows

let print t =
  pp Format.std_formatter t;
  Format.print_newline ()

let cell_int = string_of_int
let cell_float ?(decimals = 2) f = Printf.sprintf "%.*f" decimals f
let cell_bool b = if b then "yes" else "no"

(** Scripted executions reproducing the paper's Figure 4 and the case
    analysis of Section 4.1 (experiment E1).

    Each scenario builds a [2/B/1/1] Anderson register (Writer 0, one
    further writer implicit in component 1's initial value, Reader 0)
    and drives it with an exact event-level schedule.  The outcome
    records which branch of Reader statement 8 fired and which values /
    auxiliary ids the Read returned, so tests can assert precisely the
    behaviour the paper's case analysis derives:

    - {!fig4a} — Figure 4 (a): a 0-Write executes completely inside the
      Read, copying the Reader's fresh sequence number into
      [Y[0].seq[1,j]]; the Read must detect [e.seq[1,j] = newseq] and
      return that Write's embedded snapshot.
    - {!fig4b} — Figure 4 (b): statement 3 executes exactly twice inside
      the Read without the sequence-number handshake completing; the
      Read must detect [e.wc = a.wc ⊕ 2] and return the {e previous}
      Write's embedded snapshot.
    - {!case_ab} — Section 4.1, third case, first possibility: no
      statement-3 execution between [r:3] and [r:5]; the Read returns
      [(a.val, b)].
    - {!case_cd} — third case, second possibility: no statement-3
      execution between [r:5] and [r:7]; the Read returns [(c.val, d)].

    {!starvation_events} and {!wait_free_events} contrast the repeated
    double collect (reader work grows with writer activity — not
    wait-free) against the construction (constant reader work) under the
    same writer-storm adversary. *)

type outcome = {
  case : Composite.Anderson.case option;
      (** branch taken by statement 8 *)
  values : int array;  (** the Read's output values *)
  ids : int array;  (** the Read's auxiliary ids *)
  writer0_inputs : int list;  (** inputs of the 0-Writes, in order *)
  linearizable : bool;  (** verdict of the generic checker *)
  shrinking_ok : bool;  (** the five conditions hold *)
  timeline : string;
      (** Figure-4-style ASCII rendering of the schedule (one row per
          process, [R]/[W] per event). *)
}

val initial : int array
(** Initial component values used by all scenarios: [[| 1; 2 |]]. *)

val fig4a : unit -> outcome
val fig4b : unit -> outcome
val case_ab : unit -> outcome
val case_cd : unit -> outcome

val starvation_events : writer_ops:int -> int
(** Number of shared accesses the {e repeated-double-collect} reader
    performs to finish one scan while an adversary interleaves
    [writer_ops] writes between its collects.  Grows linearly. *)

val wait_free_events : writer_ops:int -> int
(** Same adversary against the Anderson reader: always exactly
    [Complexity.tr ~c:2 = 7]. *)

(** Minimal fixed-width ASCII tables for experiment output. *)

type t

val create : header:string list -> t
val add_row : t -> string list -> unit
val pp : Format.formatter -> t -> unit
val print : t -> unit
(** {!pp} to stdout, followed by a newline. *)

val cell_int : int -> string
val cell_float : ?decimals:int -> float -> string
val cell_bool : bool -> string

lib/workload/gen.ml: Array Campaign Composite Csim History Int Memory Schedule Sim

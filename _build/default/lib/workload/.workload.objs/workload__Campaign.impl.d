lib/workload/campaign.ml: Array Composite Csim Format History Int List Memory Schedule Sim String

lib/workload/table.mli: Format

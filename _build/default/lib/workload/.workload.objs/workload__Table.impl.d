lib/workload/table.ml: Array Format List Printf String

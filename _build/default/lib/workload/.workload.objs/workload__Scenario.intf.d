lib/workload/scenario.mli: Composite

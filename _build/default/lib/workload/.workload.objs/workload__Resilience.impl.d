lib/workload/resilience.ml: Array Composite Csim Format History Int List Memory Schedule Sim

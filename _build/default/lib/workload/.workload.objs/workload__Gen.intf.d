lib/workload/gen.mli: Campaign

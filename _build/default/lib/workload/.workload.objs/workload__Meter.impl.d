lib/workload/meter.ml: Array Campaign Composite Csim List Memory Sim

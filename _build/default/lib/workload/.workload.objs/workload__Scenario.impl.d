lib/workload/scenario.ml: Array Composite Csim Fun History Int List Memory Render Schedule Sim Trace

lib/workload/lemmas.mli: Format

lib/workload/resilience.mli: Format

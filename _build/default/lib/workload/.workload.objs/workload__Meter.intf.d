lib/workload/meter.mli: Campaign

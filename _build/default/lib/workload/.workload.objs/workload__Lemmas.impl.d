lib/workload/lemmas.ml: Array Composite Csim Format List Memory Schedule Sim String Trace

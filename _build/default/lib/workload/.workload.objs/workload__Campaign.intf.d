lib/workload/campaign.mli: Composite Csim Format

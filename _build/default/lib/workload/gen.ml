open Csim

type shape = {
  components : int;
  readers : int;
  writer_ops : int array;
  reader_ops : int array;
}

let shape ~seed ~max_components ~max_readers ~max_ops =
  if max_components < 1 || max_readers < 1 || max_ops < 0 then
    invalid_arg "Gen.shape";
  let prng = Schedule.Prng.make (seed * 2654435761) in
  let components = 1 + Schedule.Prng.int prng max_components in
  let readers = 1 + Schedule.Prng.int prng max_readers in
  {
    components;
    readers;
    writer_ops =
      Array.init components (fun _ -> Schedule.Prng.int prng (max_ops + 1));
    reader_ops =
      Array.init readers (fun _ -> Schedule.Prng.int prng (max_ops + 1));
  }

let total_ops s =
  Array.fold_left ( + ) 0 s.writer_ops + Array.fold_left ( + ) 0 s.reader_ops

type soak_result = { soak_runs : int; soak_ops : int; soak_flagged : int }

let soak ~impl ~runs ~seed ~max_components ~max_readers ~max_ops =
  let flagged = ref 0 in
  let ops = ref 0 in
  for i = 0 to runs - 1 do
    let s = shape ~seed:(seed + i) ~max_components ~max_readers ~max_ops in
    let env = Sim.create ~trace:false () in
    let mem = Memory.of_sim env in
    let init = Array.init s.components (fun k -> k) in
    let handle = Campaign.make_handle impl mem ~readers:s.readers ~init in
    let rec_ =
      Composite.Snapshot.record ~clock:(fun () -> Sim.now env) ~initial:init
        handle
    in
    let writer k () =
      for n = 1 to s.writer_ops.(k) do
        rec_.Composite.Snapshot.rupdate ~writer:k (((k + 1) * 10_000) + n)
      done
    in
    let reader j () =
      for _ = 1 to s.reader_ops.(j) do
        ignore (rec_.Composite.Snapshot.rscan ~reader:j)
      done
    in
    let procs =
      Array.init
        (s.components + s.readers)
        (fun p -> if p < s.components then writer p else reader (p - s.components))
    in
    let (_ : Sim.stats) =
      Sim.run env ~policy:(Schedule.Random (seed + (7919 * i))) procs
    in
    let h = Composite.Snapshot.history rec_ in
    ops := !ops + History.Snapshot_history.size h;
    if not (History.Shrinking.conditions_hold ~equal:Int.equal h) then
      incr flagged
  done;
  { soak_runs = runs; soak_ops = !ops; soak_flagged = !flagged }

(** The Afek–Attiya–Dolev–Gafni–Merritt–Shavit single-writer snapshot
    (paper's reference [1]), used as the polynomial-cost comparator.

    Unbounded-sequence-number version of their algorithm: each component
    register holds the writer's current item {e and an embedded view}
    (the snapshot the writer itself collected just before writing).  A
    scanner repeatedly double-collects; if both collects agree on every
    id, the second collect is a valid snapshot; otherwise any writer
    observed to move {e twice} since the scan began must have completed
    an entire update — embedded scan included — inside the scanner's
    interval, so the scanner returns ("borrows") that writer's embedded
    view.  At most [C+1] double collects are needed: [O(C^2)] register
    operations per scan and update, versus the paper's [O(2^C)].

    Afek et al. also give a bounded-register variant using handshake
    bits; the sequence numbers here are the unbounded variant's and are
    doubly useful as the auxiliary ids for the Shrinking checker. *)

val create :
  Csim.Memory.t -> bits_per_value:int -> init:'a array -> 'a Snapshot.t
(** Any number of readers; [C = Array.length init] components. *)

val scan_bound : components:int -> int
(** Worst-case number of register reads a scan can perform:
    [(C+2) * C] (initial collect plus [C+1] further collects). *)

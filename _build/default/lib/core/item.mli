(** Items: values tagged with the paper's auxiliary id.

    An item is a [(val, id)] pair (paper, Section 4.1).  The [id] is an
    auxiliary variable: it is never branched on by any algorithm, only
    carried along so that histories can be checked against the Shrinking
    Lemma, whose numbering functions are exactly
    [phi_k(op) = op!item.id]. *)

type 'a t = { v : 'a; id : int }

val v : 'a t -> 'a
val id : 'a t -> int
val initial : 'a -> 'a t
(** [initial x] is [{ v = x; id = 0 }] — the item written by the virtual
    initial Write of a component. *)

val values : 'a t array -> 'a array
val ids : 'a t array -> int array
val pp : ('a -> string) -> 'a t -> string

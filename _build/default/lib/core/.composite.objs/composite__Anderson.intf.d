lib/core/anderson.mli: Csim Item Snapshot

lib/core/multicore.mli: History Multi_writer Snapshot

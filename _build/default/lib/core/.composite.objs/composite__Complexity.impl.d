lib/core/complexity.ml:

lib/core/multi_writer.mli: History Item Snapshot

lib/core/afek.ml: Array Csim Item Memory Printf Snapshot

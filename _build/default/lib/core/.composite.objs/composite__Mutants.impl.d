lib/core/mutants.ml: Array Csim Format History Int Item Memory Printf Schedule Sim Snapshot

lib/core/multicore.ml: Afek Anderson Array Atomic Csim Domain Double_collect History Item List Memory Multi_writer Mutex Snapshot

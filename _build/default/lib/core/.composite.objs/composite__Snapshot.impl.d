lib/core/snapshot.ml: Array History Item Printf

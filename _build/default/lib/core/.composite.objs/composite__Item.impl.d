lib/core/item.ml: Array Printf

lib/core/anderson.ml: Array Csim Item Memory Printf Snapshot

lib/core/double_collect.ml: Array Csim Item Memory Printf Snapshot

lib/core/item.mli:

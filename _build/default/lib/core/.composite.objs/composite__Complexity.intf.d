lib/core/complexity.mli:

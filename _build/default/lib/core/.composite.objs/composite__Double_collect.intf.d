lib/core/double_collect.mli: Csim Snapshot

lib/core/mutants.mli: Csim Snapshot

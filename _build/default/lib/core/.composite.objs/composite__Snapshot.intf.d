lib/core/snapshot.mli: History Item

lib/core/afek.mli: Csim Snapshot

lib/core/multi_writer.ml: Array History Item Snapshot

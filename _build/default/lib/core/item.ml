type 'a t = { v : 'a; id : int }

let v it = it.v
let id it = it.id
let initial x = { v = x; id = 0 }
let values a = Array.map (fun it -> it.v) a
let ids a = Array.map (fun it -> it.id) a
let pp show it = Printf.sprintf "%s#%d" (show it.v) it.id

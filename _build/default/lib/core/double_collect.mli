(** Naive snapshot baselines.

    Two classical straw-men that frame the paper's contribution:

    - {!create_unsafe}: a Read is a single collect — one read of each
      component register in index order.  This is {e not} linearizable:
      writes interleaved with the collect can produce a view that was
      never the register's state.  Used as the negative control for the
      checkers (experiment E6): the Shrinking Lemma's Read Precedence /
      Write Precedence conditions must flag it on an adversarial
      schedule.

    - {!create_repeated}: a Read repeatedly collects until two
      successive collects are identical (same auxiliary ids).  This
      {e is} linearizable (the identical double collect happened at one
      point in time) but is {e not} wait-free: a persistent writer can
      starve the reader forever, which the simulator demonstrates by
      exceeding its step budget on a writer-storm schedule.

    Both use one MRSW atomic register per component, like the real
    constructions. *)

val create_unsafe :
  Csim.Memory.t -> bits_per_value:int -> init:'a array -> 'a Snapshot.t

val create_repeated :
  Csim.Memory.t -> bits_per_value:int -> init:'a array -> 'a Snapshot.t

(** The complexity recurrences of Section 4, in closed executable form.

    These functions compute the {e exact} operation and bit counts the
    paper derives for the C/B/1/R construction, so that the measured
    counters of a simulator-backed register can be compared for
    equality (experiments E2–E4):

    - Read time: [TR(1) = 1], [TR(C) = 5 + 2 * TR(C-1)] — the four reads
      of [Y[0]], the write of [Z[j]], and two recursive scans.  (The
      paper writes [TR(C,B,1,R) = 5 + 2 TR(C-1,B,1,R+1)]; the count is
      independent of [R].)  Hence [TR(C) = 6 * 2^(C-1) - 5] = [O(2^C)].
    - Write time, Writer 0: [TW0(1) = 1],
      [TW0(C,R) = R + 2 + TR(C-1)] — [R] reads of [Z], two writes of
      [Y[0]], one recursive scan; [O(R + 2^C)].
    - Write time, Writer [k]: the Write descends [k] recursion levels
      for free (pure wrapping) and then runs Writer 0 of level [k],
      which serves [R + k] readers.
    - Space, at MRSW granularity: level [l] (0-based, [l < C-1]) uses
      one [Y[0]] of [4(R+l) + (C-l)B + B + 2] bits plus [R+l] two-bit
      [Z] registers; the base level is one [B]-bit register. *)

val tr : c:int -> int
(** Register operations per Read. *)

val tr_closed : c:int -> int
(** The closed form [6 * 2^(C-1) - 5]; equals {!tr}. *)

val tw : c:int -> r:int -> writer:int -> int
(** Register operations per Write by the given writer index. *)

val tw0 : c:int -> r:int -> int
(** [tw ~writer:0] — the worst case the paper reports. *)

val space_mrsw_bits : c:int -> b:int -> r:int -> int
(** Total declared bits of all MRSW registers allocated by
    [Anderson.create] — matches [Csim.Sim.space_bits] exactly. *)

val registers : c:int -> r:int -> int
(** Number of MRSW registers allocated — matches
    [Anderson.depth_registers]. *)

val space_srsw_asymptotic : c:int -> b:int -> r:int -> int
(** The paper's asymptotic bound [C R^2 + C^2 B R + C^3 B] (coefficient
    1), for shape comparison in the E4 table: the paper expands each
    MRSW register into SRSW bits via its references [26, 27]. *)

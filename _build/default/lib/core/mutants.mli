(** Mutated variants of the construction: the ablation study.

    Each mutation removes one mechanism of Figure 3.  The paper's proof
    uses every one of them, so each mutant should admit a
    non-linearizable history — found mechanically by the schedule
    explorer and flagged by the Shrinking checker (experiment E12).
    This demonstrates both that every moving part of the construction is
    load-bearing and that the checkers are sharp enough to notice.

    Mutations:

    - {!No_handshake}: the Reader skips statement 2 (never publishes
      [newseq] in [Z[j]]), so a completely-overlapped 0-Write is not
      detected via [e.seq[1,j] = newseq] — Case 1 of the proof breaks.
    - {!No_write_counter}: Writer 0 never increments [wc], so
      [e.wc = a.wc ⊕ 2] never fires and [a.wc = c.wc] always does —
      Cases 2–4 break.
    - {!No_second_write}: Writer 0 skips statement 7.  {b Finding:} this
      mutant {e survives} every search — Writer 0's private [ss] and
      [seq[1]] updates (statements 5–6) still reach shared memory via
      the {e next} operation's statement 3, so removing statement 7
      only delays publication by one operation without breaking
      linearizability on any schedule explored.  Statement 7 buys
      freshness (a Write's embedded snapshot is visible as soon as the
      Write finishes), not safety.
    - {!Single_collect}: the Reader performs only statements 0–4 and
      returns [(a.val, b)] unconditionally — the naive collect in
      disguise.
    - {!Mod2_counter}: [wc] wraps modulo 2 instead of 3, so the
      "two writes elapsed" test [e.wc = a.wc ⊕ 2] degenerates to
      [e.wc = a.wc] — the stale-snapshot branch fires spuriously.
    - {!Two_value_seq}: sequence numbers range over [{0,1}] instead of
      [{0,1,2}]; the Reader can fail to find a value differing from
      both of Writer 0's copies (the paper's comment at statement 1
      explains why three are needed), so the handshake can fire
      spuriously.

    [None_] is the unmutated construction (a control: it must pass the
    same search that catches the mutants). *)

type mutation =
  | None_
  | No_handshake
  | No_write_counter
  | No_second_write
  | Single_collect
  | Mod2_counter
  | Two_value_seq

val all : mutation list
(** All real mutations (without [None_]). *)

val name : mutation -> string

val create :
  mutation -> Csim.Memory.t -> readers:int -> bits_per_value:int ->
  init:'a array -> 'a Snapshot.t
(** Build the mutated register.  Same conventions as
    {!Anderson.create}/{!Anderson.handle}. *)

type verdict = {
  mutant : mutation;
  caught : bool;  (** a violating schedule was found *)
  schedules_tried : int;
  counterexample : string option;
}

val hunt :
  ?max_runs:int -> ?writes_per_writer:int -> mutation -> verdict
(** Seeded random-schedule search (2 components, 2 readers, default 4
    writes per writer, 2 scans per reader, up to [max_runs] = 3000
    seeds) for a schedule on which the mutant's history violates the
    Shrinking conditions. *)

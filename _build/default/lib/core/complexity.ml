let check_cr ~c ~r =
  if c < 1 then invalid_arg "Complexity: c must be >= 1";
  if r < 1 then invalid_arg "Complexity: r must be >= 1"

let rec tr ~c =
  if c < 1 then invalid_arg "Complexity.tr";
  if c = 1 then 1 else 5 + (2 * tr ~c:(c - 1))

let tr_closed ~c =
  if c < 1 then invalid_arg "Complexity.tr_closed";
  (6 * (1 lsl (c - 1))) - 5

let tw0 ~c ~r =
  check_cr ~c ~r;
  if c = 1 then 1 else r + 2 + tr ~c:(c - 1)

let tw ~c ~r ~writer =
  check_cr ~c ~r;
  if writer < 0 || writer >= c then invalid_arg "Complexity.tw: bad writer";
  (* Writer k's operation wraps its value k times (no shared accesses)
     and then performs a 0-Write of the level-k register, which has
     C - k components and R + k readers. *)
  tw0 ~c:(c - writer) ~r:(r + writer)

let space_mrsw_bits ~c ~b ~r =
  check_cr ~c ~r;
  if b < 1 then invalid_arg "Complexity.space_mrsw_bits: b must be >= 1";
  let total = ref 0 in
  for l = 0 to c - 2 do
    let rl = r + l and cl = c - l in
    total := !total + ((4 * rl) + (cl * b) + b + 2);
    (* Y[0] of level l *)
    total := !total + (2 * rl)
    (* Z registers of level l *)
  done;
  !total + b (* base register *)

let registers ~c ~r =
  check_cr ~c ~r;
  let total = ref 0 in
  for l = 0 to c - 2 do
    total := !total + 1 + (r + l)
  done;
  !total + 1

let space_srsw_asymptotic ~c ~b ~r =
  check_cr ~c ~r;
  (c * r * r) + (c * c * b * r) + (c * c * c * b)

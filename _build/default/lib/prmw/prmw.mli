(** Wait-free pseudo read-modify-write (PRMW) objects over composite
    registers.

    The paper (Section 1, citing its references [6, 7]) notes that
    composite registers implement, without waiting, any object that can
    be read, written, or modified by {e commutative} PRMW operations — a
    PRMW modifies a shared variable as a function of its old value but
    does not return the value (e.g. "increment", as opposed to
    "fetch-and-increment", which is impossible from registers
    wait-free).

    Mechanism: each of [P] processes owns one component of a composite
    register, where it accumulates the combined effect of {e its own}
    operations; since the operations commute (and associate), the
    object's logical value is the fold of all components, and a Read is
    a snapshot followed by a fold — consistent because the snapshot is
    atomic.

    Applying an operation is a single component Write (plus private
    accumulation): it never reads other processes' components, hence no
    waiting and no lost updates. *)

type ('a, 'acc) t
(** A PRMW object with operation payload ['a] accumulated into ['acc]
    per process. *)

val create :
  Composite.Snapshot.factory ->
  processes:int ->
  readers:int ->
  unit_:'acc ->
  combine:('acc -> 'a -> 'acc) ->
  fold:('acc -> 'acc -> 'acc) ->
  ('a, 'acc) t
(** [create factory ~processes ~readers ~unit_ ~combine ~fold]:
    [combine acc op] accumulates one operation into a process's
    component; [fold] merges component accumulators (must be associative
    and commutative with unit [unit_] for reads to be linearizable as
    RMW-free counters). *)

val apply : ('a, 'acc) t -> proc:int -> 'a -> unit
(** Perform one PRMW operation on behalf of process [proc]
    (wait-free: one component Write). *)

val read : ('a, 'acc) t -> reader:int -> 'acc
(** The object's current value: one snapshot + fold. *)

val component_values : ('a, 'acc) t -> reader:int -> 'acc array
(** The raw per-process contributions of one snapshot (diagnostic). *)

(** {2 Ready-made objects} *)

type counter = (int, int) t

val counter :
  Composite.Snapshot.factory -> processes:int -> readers:int -> counter
(** A wait-free counter: [apply] adds a (possibly negative) delta,
    [read] returns the sum of all increments ever applied. *)

val incr : counter -> proc:int -> unit
val add : counter -> proc:int -> int -> unit
val get : counter -> reader:int -> int

type max_register = (int, int) t

val max_register :
  Composite.Snapshot.factory -> processes:int -> readers:int -> max_register
(** A wait-free max-register: [apply] contributes a sample, [read]
    returns the maximum sample ever written (or [min_int]). *)


(** {1 Read / Write / PRMW objects} *)

module Versioned : sig
(** Objects supporting Read, Write {e and} commutative PRMW operations.

    The paper's Section 1 (citing [6, 7]) claims wait-free
    implementability from composite registers of any object that can be
    {e read}, {e written}, or modified by a {e commutative PRMW}
    operation.  {!Prmw} covers the read+PRMW fragment; this module adds
    overwriting Writes using epoch tags:

    - each process owns one component (single-writer) holding its
      {e epoch} — the identifier of the Write its contribution builds
      on — its accumulated contribution under that epoch, and (if it is
      the epoch's creator) the written base value;
    - [write v]: scan, pick a fresh epoch tag
      ([1 + max] over all slots, ties by process id), install
      [(epoch, base = v, contribution = unit)] in the owner's slot —
      one component Write;
    - [apply delta]: scan to learn the current epoch; combine [delta]
      into the caller's contribution {e under that epoch} (discarding
      any contribution it held for older epochs); one component Write;
    - [read]: scan; the value is the current epoch's base combined with
      every contribution tagged with that epoch.

    A contribution tagged with a stale epoch is exactly a PRMW that
    linearizes {e before} the Write that overwrote it, so discarding it
    is correct; commutativity makes the fold order irrelevant.  All
    operations are wait-free (a scan plus at most one component Write).

    Histories are validated against a sequential read/write/PRMW
    specification in [test/test_prmw.ml], by the generic linearizability
    oracle. *)

type ('a, 'acc) t

val create :
  Composite.Snapshot.factory ->
  processes:int ->
  readers:int ->
  initial:'acc ->
  unit_:'acc ->
  combine:('acc -> 'a -> 'acc) ->
  fold:('acc -> 'acc -> 'acc) ->
  ('a, 'acc) t
(** [initial] is the object's starting value (the virtual epoch-0
    Write); [combine]/[fold]/[unit_] as in {!Prmw.create}. *)

val write : ('a, 'acc) t -> proc:int -> 'acc -> unit
(** Overwrite the object's value. *)

val apply : ('a, 'acc) t -> proc:int -> 'a -> unit
(** One commutative PRMW operation. *)

val read : ('a, 'acc) t -> reader:int -> 'acc

(** {2 Ready-made: a resettable counter} *)

type counter = (int, int) t

val counter :
  Composite.Snapshot.factory -> processes:int -> readers:int -> counter
(** [write] sets the count, [apply] adds a delta, [read] returns the
    current count. *)

end

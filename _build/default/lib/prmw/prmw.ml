type ('a, 'acc) t = {
  processes : int;
  base : 'acc Composite.Snapshot.t;
  (* Private mirror of each process's own component: a PRMW operation
     needs its own previous contribution, which no other process ever
     writes, so re-reading shared memory for it is unnecessary. *)
  mine : 'acc array;
  combine : 'acc -> 'a -> 'acc;
  fold : 'acc -> 'acc -> 'acc;
  unit_ : 'acc;
}

let create factory ~processes ~readers ~unit_ ~combine ~fold =
  if processes < 1 then invalid_arg "Prmw.create: processes must be >= 1";
  let base =
    factory.Composite.Snapshot.make_sw ~readers
      ~init:(Array.make processes unit_)
  in
  { processes; base; mine = Array.make processes unit_; combine; fold; unit_ }

let apply t ~proc op =
  if proc < 0 || proc >= t.processes then invalid_arg "Prmw.apply: bad proc";
  let acc = t.combine t.mine.(proc) op in
  t.mine.(proc) <- acc;
  let (_ : int) = t.base.Composite.Snapshot.update ~writer:proc acc in
  ()

let component_values t ~reader =
  Composite.Snapshot.scan t.base ~reader

let read t ~reader =
  Array.fold_left t.fold t.unit_ (component_values t ~reader)

type counter = (int, int) t

let counter factory ~processes ~readers =
  create factory ~processes ~readers ~unit_:0 ~combine:( + ) ~fold:( + )

let incr t ~proc = apply t ~proc 1
let add t ~proc d = apply t ~proc d
let get t ~reader = read t ~reader

type max_register = (int, int) t

let max_register factory ~processes ~readers =
  create factory ~processes ~readers ~unit_:min_int ~combine:max ~fold:max


module Versioned = struct
(* Epochs are (tag, creator) pairs ordered lexicographically; (0, -1) is
   the virtual initial epoch whose base value lives in [t.initial]. *)
type epoch = int * int

type 'acc slot = { epoch : epoch; base : 'acc; contrib : 'acc }

type ('a, 'acc) t = {
  processes : int;
  readers : int;
  base_reg : 'acc slot Composite.Snapshot.t;
  mine : 'acc slot array;  (* private mirror of each process's own slot *)
  initial : 'acc;
  unit_ : 'acc;
  combine : 'acc -> 'a -> 'acc;
  fold : 'acc -> 'acc -> 'acc;
}

let initial_epoch : epoch = (0, -1)

let create factory ~processes ~readers ~initial ~unit_ ~combine ~fold =
  if processes < 1 then invalid_arg "Versioned.create: processes must be >= 1";
  let empty = { epoch = initial_epoch; base = unit_; contrib = unit_ } in
  let base_reg =
    factory.Composite.Snapshot.make_sw
      ~readers:(readers + processes)
      ~init:(Array.make processes empty)
  in
  {
    processes;
    readers;
    base_reg;
    mine = Array.make processes empty;
    initial;
    unit_;
    combine;
    fold;
  }

let current_epoch slots =
  Array.fold_left (fun acc s -> if s.epoch > acc then s.epoch else acc)
    initial_epoch slots

let write t ~proc v =
  if proc < 0 || proc >= t.processes then invalid_arg "Versioned.write";
  let slots =
    Composite.Snapshot.scan t.base_reg ~reader:(t.readers + proc)
  in
  let max_tag =
    Array.fold_left (fun acc s -> max acc (fst s.epoch)) 0 slots
  in
  let slot = { epoch = (max_tag + 1, proc); base = v; contrib = t.unit_ } in
  t.mine.(proc) <- slot;
  let (_ : int) = t.base_reg.Composite.Snapshot.update ~writer:proc slot in
  ()

let apply t ~proc delta =
  if proc < 0 || proc >= t.processes then invalid_arg "Versioned.apply";
  let slots =
    Composite.Snapshot.scan t.base_reg ~reader:(t.readers + proc)
  in
  let cur = current_epoch slots in
  let prev = t.mine.(proc) in
  let slot =
    if prev.epoch = cur then
      { prev with contrib = t.combine prev.contrib delta }
    else { epoch = cur; base = t.unit_; contrib = t.combine t.unit_ delta }
  in
  t.mine.(proc) <- slot;
  let (_ : int) = t.base_reg.Composite.Snapshot.update ~writer:proc slot in
  ()

let read t ~reader =
  if reader < 0 || reader >= t.readers then invalid_arg "Versioned.read";
  let slots = Composite.Snapshot.scan t.base_reg ~reader in
  let cur = current_epoch slots in
  let base =
    if cur = initial_epoch then t.initial
    else begin
      let creator = snd cur in
      assert (slots.(creator).epoch = cur);
      slots.(creator).base
    end
  in
  Array.fold_left
    (fun acc s -> if s.epoch = cur then t.fold acc s.contrib else acc)
    base slots

type counter = (int, int) t

let counter factory ~processes ~readers =
  create factory ~processes ~readers ~initial:0 ~unit_:0 ~combine:( + )
    ~fold:( + )

end

(** Models of safe and regular registers (Lamport, "On Interprocess
    Communication" — the paper's reference [19]).

    The composite register construction assumes {e atomic} MRSW
    registers.  The literature it cites ([19, 26, 27]) builds those from
    weaker primitives, down to safe single-bit registers; this library
    reproduces that substrate, and this module supplies the weakest
    rungs as {e models} whose adversarial behaviour is simulated:

    - a {e safe} register's read returns the last value written if it
      does not overlap any write, and an {e arbitrary} value of the
      type's domain if it does;
    - a {e regular} register's overlapping reads return either the old
      or the new value.

    A write is simulated as two atomic events (enter/commit), so that
    reads scheduled between them genuinely overlap; the adversarial
    result of an overlapping read is drawn from a seeded PRNG owned by
    the register, keeping runs deterministic. *)

type 'a safe
type 'a regular

val safe :
  Csim.Sim.env -> name:string -> seed:int ->
  domain:(Csim.Schedule.Prng.t -> 'a) -> 'a -> 'a safe
(** [domain] draws an arbitrary value of the type (e.g.
    [fun prng -> Prng.int prng 2 = 1] for a bit). *)

val safe_bit : Csim.Sim.env -> name:string -> seed:int -> bool -> bool safe

val read_safe : 'a safe -> 'a
val write_safe : 'a safe -> 'a -> unit

val regular :
  Csim.Sim.env -> name:string -> seed:int -> 'a -> 'a regular

val read_regular : 'a regular -> 'a
val write_regular : 'a regular -> 'a -> unit

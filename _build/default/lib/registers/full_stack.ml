open Csim

let memory env ~processes =
  if processes < 1 then invalid_arg "Full_stack.memory";
  let counter = ref 0 in
  let make : type a. name:string -> bits:int -> a -> a Memory.cell =
   fun ~name ~bits:_ init ->
    incr counter;
    let r =
      Constructions.Atomic_mrsw_of_srsw.create env ~name ~readers:processes
        init
    in
    {
      Memory.read =
        (fun () ->
          Constructions.Atomic_mrsw_of_srsw.read r ~reader:(Sim.self ()));
      write = (fun v -> Constructions.Atomic_mrsw_of_srsw.write r v);
      peek = (fun () -> Constructions.Atomic_mrsw_of_srsw.ghost_peek r);
    }
  in
  { Memory.make }

(* Reader j of the constructed register: 1 read of the writer port,
   P-1 reads of the other readers' announcements, P-1 announce writes. *)
let read_cost ~processes = 1 + (2 * (processes - 1))
let write_cost ~processes = processes

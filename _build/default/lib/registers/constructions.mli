(** The classical register-construction ladder (the substrate of the
    paper's primitives).

    The composite register construction assumes multi-reader
    single-writer atomic registers.  These are themselves
    wait-free-constructible from safe bits through a ladder of classical
    constructions, which the paper cites ([5, 9, 10, 16, 17, 19, 20, 23,
    24, 25, 26, 27, 28]).  This module reproduces one standard path:

    + {!Regular_bit_of_safe} — Lamport: a regular bit from a safe bit
      (the writer suppresses writes of the value already stored, so an
      overlapping read's arbitrary answer is necessarily old-or-new).
    + {!Regular_kary_of_bits} — Lamport: a k-valued regular register
      from [k] regular bits in unary ("set mine, clear below"; readers
      scan upward to the first set bit).
    + {!Atomic_srsw_of_regular} — a single-reader single-writer atomic
      register from a regular one, by unbounded sequence numbers (an
      overlapping read adopts the pair with the larger sequence number,
      preventing new-then-old inversions).
    + {!Atomic_mrsw_of_srsw} — a multi-reader atomic register from
      single-reader ones (Israeli–Li style): the writer posts to one
      SRSW register per reader; readers forward what they returned
      through an [R x R] matrix and return the freshest of what they
      received, so later reads never return older values.
    + {!Atomic_mrmw_of_mrsw} — a multi-writer atomic register from
      single-writer ones (Vitányi–Awerbuch style): writers timestamp
      from the max of all posted timestamps (ties by writer id) and
      readers return the lexicographically freshest pair.

    The bounded-space versions of steps 3–5 are deep results in
    themselves ([26, 27]); the unbounded-tag versions here preserve the
    algorithmic content relevant to the composite register paper while
    keeping each step independently testable (see
    [test/test_registers.ml]).  Every construction is wait-free. *)

(** Step 1: regular bit from one safe bit. *)
module Regular_bit_of_safe : sig
  type t

  val create : Csim.Sim.env -> name:string -> seed:int -> bool -> t
  val read : t -> bool
  val write : t -> bool -> unit
end

(** Step 2: k-valued regular register from [k] regular bits. *)
module Regular_kary_of_bits : sig
  type t

  val create : Csim.Sim.env -> name:string -> seed:int -> k:int -> int -> t
  (** Values range over [0..k-1]; initial value given last. *)

  val read : t -> int
  val write : t -> int -> unit
end

(** Step 3: atomic SRSW register from a regular register. *)
module Atomic_srsw_of_regular : sig
  type 'a t

  val create : Csim.Sim.env -> name:string -> seed:int -> 'a -> 'a t
  val read : 'a t -> 'a
  val write : 'a t -> 'a -> unit
end

(** Step 4: atomic MRSW register from atomic SRSW registers. *)
module Atomic_mrsw_of_srsw : sig
  type 'a t

  val create : Csim.Sim.env -> name:string -> readers:int -> 'a -> 'a t
  val read : 'a t -> reader:int -> 'a
  val write : 'a t -> 'a -> unit

  val srsw_registers : 'a t -> int
  (** Number of underlying SRSW registers: [R + R^2]. *)

  val ghost_peek : 'a t -> 'a
  (** The logical current value (the freshest pair the writer has
      posted), read without events.  Diagnostics only. *)
end

(** Step 5: atomic MRMW register from atomic MRSW registers. *)
module Atomic_mrmw_of_mrsw : sig
  type 'a t

  val create : Csim.Sim.env -> name:string -> writers:int -> 'a -> 'a t
  val read : 'a t -> 'a
  val write : 'a t -> writer:int -> 'a -> unit
end

lib/registers/full_stack.mli: Csim

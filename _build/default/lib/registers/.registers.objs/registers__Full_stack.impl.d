lib/registers/full_stack.ml: Constructions Csim Memory Sim

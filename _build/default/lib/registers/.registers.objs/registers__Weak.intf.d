lib/registers/weak.mli: Csim

lib/registers/weak.ml: Cell Csim Schedule Sim

lib/registers/constructions.mli: Csim

lib/registers/constructions.ml: Array Cell Csim Printf Sim Weak

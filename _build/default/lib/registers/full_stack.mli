(** End-to-end composition: MRSW registers {e constructed from SRSW
    registers} packaged as a {!Csim.Memory.t}, so that any algorithm
    written against the memory abstraction — in particular the composite
    register construction itself — runs on the constructed substrate.

    This realizes the paper's full claim chain mechanically: atomic
    snapshots from MRSW atomic registers (the paper) from SRSW atomic
    registers (its reference [26]-lineage, here
    {!Constructions.Atomic_mrsw_of_srsw}).  Access routing uses the
    simulator's process identity ({!Csim.Sim.self}): each simulated
    process reads a constructed register through its own port.

    Costs compose multiplicatively: one constructed-register read is
    [2 (P-1) + 1] SRSW operations and one write is [P] (for [P]
    processes), so a composite-register Read costs
    [TR(C) * (2P - 1)]-ish SRSW operations — the figure experiment E10
    tabulates. *)

val memory : Csim.Sim.env -> processes:int -> Csim.Memory.t
(** [memory env ~processes] returns a memory whose registers are
    [Atomic_mrsw_of_srsw] instances with one reader port per process.
    All accesses must come from simulated processes with ids below
    [processes].  The writer of each register must be a single process,
    as usual for the algorithms in this repository. *)

val read_cost : processes:int -> int
(** SRSW operations per constructed-register read:
    [(P-1) reads + (P-1) announce-writes + 1 writer-port read]. *)

val write_cost : processes:int -> int
(** SRSW operations per constructed-register write: [P] (one post per
    reader port). *)

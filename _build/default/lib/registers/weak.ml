open Csim

(* Both models keep (current value, pending value, writing flag) in one
   simulator cell; a write performs two atomic events:

     enter:  {cur; pending = new; writing = true}
     commit: {cur = new; pending = new; writing = false}

   A read is one atomic event; if it lands between enter and commit it
   overlaps the write and the model answers adversarially.  The writer
   (single, per the SWMR setting) tracks the current value privately, so
   a write performs no read events. *)

type 'a state = { cur : 'a; pending : 'a; writing : bool }

type 'a safe = {
  s_cell : 'a state Cell.t;
  s_prng : Schedule.Prng.t;
  s_domain : Schedule.Prng.t -> 'a;
  mutable s_cur : 'a;
}

type 'a regular = {
  r_cell : 'a state Cell.t;
  r_prng : Schedule.Prng.t;
  mutable r_cur : 'a;
}

let initial_state v = { cur = v; pending = v; writing = false }

let safe env ~name ~seed ~domain init =
  {
    s_cell = Sim.make_cell env ~bits:1 name (initial_state init);
    s_prng = Schedule.Prng.make seed;
    s_domain = domain;
    s_cur = init;
  }

let safe_bit env ~name ~seed init =
  safe env ~name ~seed ~domain:(fun prng -> Schedule.Prng.int prng 2 = 1) init

let read_safe t =
  let st = Sim.read t.s_cell in
  if st.writing then t.s_domain t.s_prng else st.cur

let write_safe t v =
  Sim.write t.s_cell { cur = t.s_cur; pending = v; writing = true };
  Sim.write t.s_cell { cur = v; pending = v; writing = false };
  t.s_cur <- v

let regular env ~name ~seed init =
  {
    r_cell = Sim.make_cell env ~bits:1 name (initial_state init);
    r_prng = Schedule.Prng.make seed;
    r_cur = init;
  }

let read_regular t =
  let st = Sim.read t.r_cell in
  if st.writing then
    if Schedule.Prng.int t.r_prng 2 = 0 then st.cur else st.pending
  else st.cur

let write_regular t v =
  Sim.write t.r_cell { cur = t.r_cur; pending = v; writing = true };
  Sim.write t.r_cell { cur = v; pending = v; writing = false };
  t.r_cur <- v

open Csim

module Regular_bit_of_safe = struct
  type t = { bit : bool Weak.safe; mutable last : bool }

  let create env ~name ~seed init =
    { bit = Weak.safe_bit env ~name ~seed init; last = init }

  let read t = Weak.read_safe t.bit

  (* Lamport's trick: never rewrite the stored value.  A read can then
     only overlap a write that actually changes the bit, so even the
     safe register's arbitrary answer is one of {old, new} = {0, 1} —
     which is regularity. *)
  let write t v =
    if v <> t.last then begin
      Weak.write_safe t.bit v;
      t.last <- v
    end
end

module Regular_kary_of_bits = struct
  type t = { bits : bool Weak.regular array; k : int }

  let create env ~name ~seed ~k init =
    if k < 1 then invalid_arg "Regular_kary_of_bits.create";
    if init < 0 || init >= k then invalid_arg "Regular_kary_of_bits.create";
    let bits =
      Array.init k (fun i ->
          Weak.regular env
            ~name:(Printf.sprintf "%s.b%d" name i)
            ~seed:(seed + i) (i = init))
    in
    { bits; k }

  (* Unary encoding: set own bit, then clear downward.  Readers scan
     upward and stop at the first set bit; a bit left set above the
     current value is never reached by a reader that already found a
     lower one, and the downward clearing order guarantees the scan
     always terminates on a set bit. *)
  let write t v =
    if v < 0 || v >= t.k then invalid_arg "Regular_kary_of_bits.write";
    Weak.write_regular t.bits.(v) true;
    for i = v - 1 downto 0 do
      Weak.write_regular t.bits.(i) false
    done

  let read t =
    let rec scan i =
      if i >= t.k - 1 then t.k - 1
      else if Weak.read_regular t.bits.(i) then i
      else scan (i + 1)
    in
    scan 0
end

module Atomic_srsw_of_regular = struct
  type 'a tagged = { value : 'a; seq : int }

  type 'a t = {
    reg : 'a tagged Weak.regular;
    mutable wseq : int;  (* writer private *)
    mutable last : 'a tagged;  (* reader private *)
  }

  let create env ~name ~seed init =
    let tagged = { value = init; seq = 0 } in
    { reg = Weak.regular env ~name ~seed tagged; wseq = 0; last = tagged }

  let write t v =
    t.wseq <- t.wseq + 1;
    Weak.write_regular t.reg { value = v; seq = t.wseq }

  (* A regular register can return new-then-old across two reads; the
     monotone sequence number lets the single reader keep the freshest
     pair it has ever seen, which restores atomicity. *)
  let read t =
    let x = Weak.read_regular t.reg in
    if x.seq >= t.last.seq then t.last <- x;
    t.last.value
end

module Atomic_mrsw_of_srsw = struct
  type 'a tagged = { value : 'a; seq : int }

  (* All underlying registers are SRSW: [w2r.(j)] is written by the
     writer and read only by reader [j]; [r2r.(i).(j)] is written only
     by reader [i] and read only by reader [j]. *)
  type 'a t = {
    w2r : 'a tagged Cell.t array;
    r2r : 'a tagged Cell.t array array;
    readers : int;
    mutable wseq : int;
  }

  let create env ~name ~readers init =
    if readers < 1 then invalid_arg "Atomic_mrsw_of_srsw.create";
    let tagged = { value = init; seq = 0 } in
    let w2r =
      Array.init readers (fun j ->
          Sim.make_cell env (Printf.sprintf "%s.w2r%d" name j) tagged)
    in
    let r2r =
      Array.init readers (fun i ->
          Array.init readers (fun j ->
              Sim.make_cell env (Printf.sprintf "%s.r%dr%d" name i j) tagged))
    in
    { w2r; r2r; readers; wseq = 0 }

  let write t v =
    t.wseq <- t.wseq + 1;
    let tagged = { value = v; seq = t.wseq } in
    for j = 0 to t.readers - 1 do
      Sim.write t.w2r.(j) tagged
    done

  (* Reader j: collect the writer's post and what every other reader
     last returned, take the freshest, announce it, return it.  The
     announcement is what prevents two readers from returning
     new-then-old. *)
  let read t ~reader =
    if reader < 0 || reader >= t.readers then
      invalid_arg "Atomic_mrsw_of_srsw.read";
    let best = ref (Sim.read t.w2r.(reader)) in
    for i = 0 to t.readers - 1 do
      if i <> reader then begin
        let x = Sim.read t.r2r.(i).(reader) in
        if x.seq > !best.seq then best := x
      end
    done;
    for i = 0 to t.readers - 1 do
      if i <> reader then Sim.write t.r2r.(reader).(i) !best
    done;
    !best.value

  let srsw_registers t = t.readers + (t.readers * t.readers)

  let ghost_peek t =
    let best = ref (Cell.peek t.w2r.(0)) in
    for j = 1 to t.readers - 1 do
      let x = Cell.peek t.w2r.(j) in
      if x.seq > !best.seq then best := x
    done;
    !best.value
end

module Atomic_mrmw_of_mrsw = struct
  type 'a stamped = { value : 'a; ts : int; wid : int }

  (* One MRSW register per writer (exactly the primitive produced by
     {!Atomic_mrsw_of_srsw}; modelled here by a simulator cell). *)
  type 'a t = { posts : 'a stamped Cell.t array; writers : int }

  let create env ~name ~writers init =
    if writers < 1 then invalid_arg "Atomic_mrmw_of_mrsw.create";
    let posts =
      Array.init writers (fun i ->
          Sim.make_cell env
            (Printf.sprintf "%s.post%d" name i)
            { value = init; ts = 0; wid = i })
    in
    { posts; writers }

  let fresher a b = a.ts > b.ts || (a.ts = b.ts && a.wid > b.wid)

  let collect_freshest t =
    let best = ref (Sim.read t.posts.(0)) in
    for i = 1 to t.writers - 1 do
      let x = Sim.read t.posts.(i) in
      if fresher x !best then best := x
    done;
    !best

  let read t = (collect_freshest t).value

  let write t ~writer v =
    if writer < 0 || writer >= t.writers then
      invalid_arg "Atomic_mrmw_of_mrsw.write";
    let freshest = collect_freshest t in
    Sim.write t.posts.(writer) { value = v; ts = freshest.ts + 1; wid = writer }
end

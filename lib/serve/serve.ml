open Csim

type outer_impl = Outer_anderson | Outer_afek

let outer_impl_name = function
  | Outer_anderson -> "anderson"
  | Outer_afek -> "afek"

let outer_impl_of_name = function
  | "anderson" -> Some Outer_anderson
  | "afek" -> Some Outer_afek
  | _ -> None

type 'a shard_view = { view : 'a Composite.Item.t array; version : int }

type 'a cache = { snap : 'a Composite.Item.t array; versions : int array }

type 'a t = {
  components : int;
  shards : int;
  readers : int;
  validate : bool;
  cache_enabled : bool;
  slice_off : int array;  (* per shard: first owned component *)
  slice_len : int array;  (* per shard: number of owned components *)
  owner : int array;  (* component -> owning shard *)
  outer : 'a shard_view Composite.Snapshot.t;
  (* Bumped by the owning applier BEFORE each publish: a reader that
     finds a cell equal to its cached version knows no publish of that
     shard has intervened (cells can run ahead of the outer register,
     never behind it). *)
  version_cells : int Atomic.t array;  (* per shard *)
  mailboxes : ('a * int) option Atomic.t array;  (* per comp: value, ticket *)
  tickets : int array;  (* per component; touched only by its writer *)
  acked : (int * int) Atomic.t array;  (* per comp: last applied ticket, id *)
  states : 'a Composite.Item.t array array;  (* per shard; applier-private *)
  next_id : int array;  (* per component; touched only by its applier *)
  posted : int Atomic.t array;  (* per component *)
  coalesced : int Atomic.t array;  (* per component *)
  applied : int Atomic.t array;  (* per component *)
  publishes : int Atomic.t array;  (* per shard *)
  hits : int Atomic.t;
  misses : int Atomic.t;
  stale : int Atomic.t;
  full_scans : int Atomic.t;
  caches : 'a cache option array;  (* per reader; touched only by it *)
  stop : bool Atomic.t;
  mutable appliers : unit Domain.t list;
}

let components t = t.components
let shards t = t.shards
let readers t = t.readers
let shard_of t k = t.owner.(k)

let create ?(outer = Outer_afek) ?(validate = true) ?(cache = true) ~shards
    ~readers ~init () =
  let components = Array.length init in
  if components < 1 then invalid_arg "Serve.create: need at least 1 component";
  if shards < 1 || shards > components then
    invalid_arg
      (Printf.sprintf "Serve.create: shards = %d not in 1..%d" shards components);
  if readers < 1 then invalid_arg "Serve.create: readers must be >= 1";
  (* Contiguous partition; shard sizes differ by at most one. *)
  let q = components / shards and rem = components mod shards in
  let slice_off = Array.make shards 0 and slice_len = Array.make shards 0 in
  let off = ref 0 in
  for s = 0 to shards - 1 do
    slice_off.(s) <- !off;
    slice_len.(s) <- (q + if s < rem then 1 else 0);
    off := !off + slice_len.(s)
  done;
  let owner = Array.make components 0 in
  for s = 0 to shards - 1 do
    for k = slice_off.(s) to slice_off.(s) + slice_len.(s) - 1 do
      owner.(k) <- s
    done
  done;
  let states =
    Array.init shards (fun s ->
        Array.init slice_len.(s) (fun i ->
            Composite.Item.initial init.(slice_off.(s) + i)))
  in
  let outer_init =
    Array.init shards (fun s -> { view = Array.copy states.(s); version = 0 })
  in
  let mem = Memory.atomic () in
  let outer_h =
    match outer with
    | Outer_afek -> Composite.Afek.create mem ~bits_per_value:64 ~init:outer_init
    | Outer_anderson ->
      Composite.Anderson.handle
        (Composite.Anderson.create mem ~readers ~bits_per_value:64
           ~init:outer_init)
  in
  let outer_h =
    if outer_h.Composite.Snapshot.readers = max_int then
      { outer_h with Composite.Snapshot.readers }
    else outer_h
  in
  {
    components;
    shards;
    readers;
    validate;
    cache_enabled = cache;
    slice_off;
    slice_len;
    owner;
    outer = outer_h;
    version_cells = Array.init shards (fun _ -> Atomic.make 0);
    mailboxes = Array.init components (fun _ -> Atomic.make None);
    tickets = Array.make components 0;
    acked = Array.init components (fun _ -> Atomic.make (0, 0));
    states;
    next_id = Array.make components 0;
    posted = Array.init components (fun _ -> Atomic.make 0);
    coalesced = Array.init components (fun _ -> Atomic.make 0);
    applied = Array.init components (fun _ -> Atomic.make 0);
    publishes = Array.init shards (fun _ -> Atomic.make 0);
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    stale = Atomic.make 0;
    full_scans = Atomic.make 0;
    caches = Array.make readers None;
    stop = Atomic.make false;
    appliers = [];
  }

(* ------------------------------------------------------------------ *)
(* Write path: mailboxes, coalescing, appliers                          *)
(* ------------------------------------------------------------------ *)

let post t ~writer v =
  if writer < 0 || writer >= t.components then
    invalid_arg "Serve.post: bad writer";
  t.tickets.(writer) <- t.tickets.(writer) + 1;
  Atomic.incr t.posted.(writer);
  (* The exchange hands the mailbox over wait-free: whatever it returns
     was never taken by the applier (its own exchange would have got it
     first), so "applied" and "coalesced" partition the posts exactly. *)
  match Atomic.exchange t.mailboxes.(writer) (Some (v, t.tickets.(writer))) with
  | None -> ()
  | Some _ -> Atomic.incr t.coalesced.(writer)

let drain_shard t s =
  let off = t.slice_off.(s) and len = t.slice_len.(s) in
  let batch = ref [] in
  for i = len - 1 downto 0 do
    let k = off + i in
    match Atomic.exchange t.mailboxes.(k) None with
    | None -> ()
    | Some (v, ticket) -> batch := (i, k, v, ticket) :: !batch
  done;
  match !batch with
  | [] -> false
  | batch ->
    let acks =
      List.map
        (fun (i, k, v, ticket) ->
          t.next_id.(k) <- t.next_id.(k) + 1;
          let id = t.next_id.(k) in
          t.states.(s).(i) <- { Composite.Item.v; id };
          Atomic.incr t.applied.(k);
          (k, ticket, id))
        batch
    in
    (* Freshness invariant: bump the cell BEFORE the publish.  A cell
       can then read ahead of the outer register (a harmless forced
       miss) but never behind it, which is what makes a single collect
       of the cells a sound cache validation. *)
    let version = 1 + Atomic.fetch_and_add t.version_cells.(s) 1 in
    let (_ : int) =
      t.outer.Composite.Snapshot.update ~writer:s
        { view = Array.copy t.states.(s); version }
    in
    Atomic.incr t.publishes.(s);
    (* Acks only after the publish: a synchronous update that saw its
       ticket acked knows its value is in the outer register. *)
    List.iter (fun (k, ticket, id) -> Atomic.set t.acked.(k) (ticket, id)) acks;
    true

let drain t =
  if t.appliers <> [] then
    invalid_arg "Serve.drain: appliers are running; drain is for manual mode";
  for s = 0 to t.shards - 1 do
    ignore (drain_shard t s : bool)
  done

let applier t s () =
  while not (Atomic.get t.stop) do
    if not (drain_shard t s) then Domain.cpu_relax ()
  done;
  (* One sweep after the stop flag: posts that raced with shutdown must
     still be applied so blocked synchronous updates can complete. *)
  ignore (drain_shard t s : bool)

let start t =
  if t.appliers <> [] then invalid_arg "Serve.start: already started";
  Atomic.set t.stop false;
  t.appliers <- List.init t.shards (fun s -> Domain.spawn (applier t s))

let shutdown t =
  Atomic.set t.stop true;
  List.iter Domain.join t.appliers;
  t.appliers <- []

let update t ~writer v =
  post t ~writer v;
  let ticket = t.tickets.(writer) in
  let rec wait () =
    let tk, id = Atomic.get t.acked.(writer) in
    if tk >= ticket then id
    else begin
      Domain.cpu_relax ();
      wait ()
    end
  in
  wait ()

(* ------------------------------------------------------------------ *)
(* Read path: full scans and the validated cache                        *)
(* ------------------------------------------------------------------ *)

let full_scan t ~reader =
  Atomic.incr t.full_scans;
  let views = t.outer.Composite.Snapshot.scan_items ~reader in
  let versions = Array.map (fun it -> it.Composite.Item.v.version) views in
  let snap =
    Array.concat
      (Array.to_list (Array.map (fun it -> it.Composite.Item.v.view) views))
  in
  { snap; versions }

(* Single collect of the version cells.  Sound because cells are bumped
   before publishes and versions are strictly monotone: if every cell
   still equals the cached version at its read point, every shard has
   held the cached view continuously since before this scan began, so
   at the instant the collect started the outer register held exactly
   the cached state. *)
let cache_fresh t c =
  let ok = ref true in
  for s = 0 to t.shards - 1 do
    if Atomic.get t.version_cells.(s) <> c.versions.(s) then ok := false
  done;
  !ok

let scan_items t ~reader =
  if reader < 0 || reader >= t.readers then
    invalid_arg "Serve.scan_items: bad reader";
  if not t.cache_enabled then (full_scan t ~reader).snap
  else
    match t.caches.(reader) with
    | None ->
      Atomic.incr t.misses;
      let c = full_scan t ~reader in
      t.caches.(reader) <- Some c;
      Array.copy c.snap
    | Some c ->
      if (not t.validate) || cache_fresh t c then begin
        (* [validate = false] is the deliberately broken mutant: blind
           reuse, for the checkers to catch. *)
        Atomic.incr t.hits;
        Array.copy c.snap
      end
      else begin
        Atomic.incr t.stale;
        let c = full_scan t ~reader in
        t.caches.(reader) <- Some c;
        Array.copy c.snap
      end

let scan t ~reader = Composite.Item.values (scan_items t ~reader)

let handle t =
  {
    Composite.Snapshot.components = t.components;
    readers = t.readers;
    scan_items = (fun ~reader -> scan_items t ~reader);
    update = (fun ~writer v -> update t ~writer v);
  }

(* ------------------------------------------------------------------ *)
(* Accounting                                                           *)
(* ------------------------------------------------------------------ *)

type stats = {
  posted : int;
  coalesced : int;
  applied : int;
  pending : int;
  publishes : int;
  hits : int;
  misses : int;
  stale : int;
  full_scans : int;
}

type writer_stats = { w_posted : int; w_coalesced : int; w_applied : int }

let sum a = Array.fold_left (fun acc c -> acc + Atomic.get c) 0 a

let stats t =
  let pending =
    Array.fold_left
      (fun acc mb -> if Atomic.get mb = None then acc else acc + 1)
      0 t.mailboxes
  in
  {
    posted = sum t.posted;
    coalesced = sum t.coalesced;
    applied = sum t.applied;
    pending;
    publishes = sum t.publishes;
    hits = Atomic.get t.hits;
    misses = Atomic.get t.misses;
    stale = Atomic.get t.stale;
    full_scans = Atomic.get t.full_scans;
  }

let writer_stats t ~writer =
  if writer < 0 || writer >= t.components then
    invalid_arg "Serve.writer_stats: bad writer";
  {
    w_posted = Atomic.get t.posted.(writer);
    w_coalesced = Atomic.get t.coalesced.(writer);
    w_applied = Atomic.get t.applied.(writer);
  }

let observe t m =
  let c name by = Obs.Metrics.incr ~by (Obs.Metrics.counter m name) in
  let s = stats t in
  c "serve.posted" s.posted;
  c "serve.coalesced" s.coalesced;
  c "serve.applied" s.applied;
  c "serve.publishes" s.publishes;
  c "serve.cache.hit" s.hits;
  c "serve.cache.miss" s.misses;
  c "serve.cache.stale" s.stale;
  c "serve.full_scans" s.full_scans

open Csim

type outer_impl = Outer_anderson | Outer_afek

let outer_impl_name = function
  | Outer_anderson -> "anderson"
  | Outer_afek -> "afek"

let outer_impl_of_name = function
  | "anderson" -> Some Outer_anderson
  | "afek" -> Some Outer_afek
  | _ -> None

type 'a shard_view = { view : 'a Composite.Item.t array; version : int }

type 'a cache = { snap : 'a Composite.Item.t array; versions : int array }

(* A snapshot published by a combiner, tagged with the value the
   scan-start counter was bumped to immediately before its collect
   began.  The record is immutable after publication; adopters copy
   [snap] on the way out. *)
type 'a shared = { stamp : int; sview : 'a cache }

module Pad = Composite.Padded_atomic

(* Bounded exponential backoff for spin waits — the same shape as the
   ABD retransmit policy (PR 6): the delay doubles from [base] up to
   [cap] and collapses back to [base] on progress.  Every full wave
   spent at the cap bumps the [stalls] counter, so a waiter burning a
   core on a descheduled applier shows up in the accounting instead of
   spinning invisibly. *)
module Backoff = struct
  type t = { mutable delay : int; cap : int; stalls : int Atomic.t }

  let base = 1
  let default_cap = 4096

  let make ?(cap = default_cap) stalls = { delay = base; cap; stalls }
  let reset b = b.delay <- base

  let once b =
    if b.delay >= b.cap then begin
      (* Saturated: the waited-on domain may be starved for the very
         CPU we are spinning on (single-core hosts, oversubscribed
         pools).  Count the stall and yield the timeslice instead of
         burning it. *)
      Atomic.incr b.stalls;
      Unix.sleepf 50e-6
    end
    else begin
      for _ = 1 to b.delay do
        Domain.cpu_relax ()
      done;
      b.delay <- min b.cap (b.delay * 2)
    end

  let stall_count b = Atomic.get b.stalls
end

type 'a t = {
  components : int;
  shards : int;
  readers : int;
  validate : bool;
  cache_enabled : bool;
  combine : bool;
  note : (string -> unit) option;
  slice_off : int array;  (* per shard: first owned component *)
  slice_len : int array;  (* per shard: number of owned components *)
  owner : int array;  (* component -> owning shard *)
  outer : 'a shard_view Composite.Snapshot.t;
  (* Bumped by the owning applier BEFORE each publish: a reader that
     finds a cell equal to its cached version knows no publish of that
     shard has intervened (cells can run ahead of the outer register,
     never behind it). *)
  version_cells : int Atomic.t array;  (* per shard; padded *)
  mailboxes : ('a * int) option Atomic.t array;  (* per comp: value, ticket *)
  (* Per shard: the whole slice's batched posts in one padded cell,
     slice-indexed (value, ticket) options.  Installed by [post_batch]
     with one CAS per shard in the uncontended case, drained by the
     applier with one exchange. *)
  shard_batch : ('a * int) option array option Atomic.t array;
  tickets : int array;  (* per component; touched only by its writer *)
  acked : (int * int) Atomic.t array;  (* per comp: last applied ticket, id *)
  states : 'a Composite.Item.t array array;  (* per shard; applier-private *)
  next_id : int array;  (* per component; touched only by its applier *)
  posted : int Atomic.t array;  (* per component *)
  coalesced : int Atomic.t array;  (* per component *)
  applied : int Atomic.t array;  (* per component *)
  publishes : int Atomic.t array;  (* per shard *)
  batch_installs : int Atomic.t;
  hits : int Atomic.t;
  misses : int Atomic.t;
  stale : int Atomic.t;
  full_scans : int Atomic.t;
  (* Scan-sharing state: the combiner lock serializes outer collects,
     [scan_started] stamps them, [shared_slot] publishes the latest. *)
  scan_started : int Atomic.t;
  combiner_lock : bool Atomic.t;
  shared_slot : 'a shared option Atomic.t;
  requested : int Atomic.t;
  combined : int Atomic.t;
  performed : int Atomic.t;
  r_requested : int Atomic.t array;  (* per reader *)
  r_combined : int Atomic.t array;
  r_performed : int Atomic.t array;
  caches : 'a cache option array;  (* per reader; touched only by it *)
  stalls : int Atomic.t;  (* backoff waves that hit the cap *)
  stop : bool Atomic.t;
  mutable appliers : unit Domain.t list;
}

let components t = t.components
let shards t = t.shards
let readers t = t.readers
let combining t = t.combine
let shard_of t k = t.owner.(k)

let create ?(outer = Outer_afek) ?(validate = true) ?(cache = true)
    ?(combine = true) ?note ~shards ~readers ~init () =
  let components = Array.length init in
  if components < 1 then invalid_arg "Serve.create: need at least 1 component";
  if shards < 1 || shards > components then
    invalid_arg
      (Printf.sprintf "Serve.create: shards = %d not in 1..%d" shards components);
  if readers < 1 then invalid_arg "Serve.create: readers must be >= 1";
  (* Contiguous partition; shard sizes differ by at most one. *)
  let q = components / shards and rem = components mod shards in
  let slice_off = Array.make shards 0 and slice_len = Array.make shards 0 in
  let off = ref 0 in
  for s = 0 to shards - 1 do
    slice_off.(s) <- !off;
    slice_len.(s) <- (q + if s < rem then 1 else 0);
    off := !off + slice_len.(s)
  done;
  let owner = Array.make components 0 in
  for s = 0 to shards - 1 do
    for k = slice_off.(s) to slice_off.(s) + slice_len.(s) - 1 do
      owner.(k) <- s
    done
  done;
  let states =
    Array.init shards (fun s ->
        Array.init slice_len.(s) (fun i ->
            Composite.Item.initial init.(slice_off.(s) + i)))
  in
  let outer_init =
    Array.init shards (fun s -> { view = Array.copy states.(s); version = 0 })
  in
  let mem = Composite.Multicore.padded_memory () in
  let outer_h =
    match outer with
    | Outer_afek -> Composite.Afek.create mem ~bits_per_value:64 ~init:outer_init
    | Outer_anderson ->
      Composite.Anderson.handle
        (Composite.Anderson.create mem ~readers ~bits_per_value:64
           ~init:outer_init)
  in
  let outer_h =
    if outer_h.Composite.Snapshot.readers = max_int then
      { outer_h with Composite.Snapshot.readers }
    else outer_h
  in
  {
    components;
    shards;
    readers;
    validate;
    cache_enabled = cache;
    combine;
    note;
    slice_off;
    slice_len;
    owner;
    outer = outer_h;
    version_cells = Pad.array shards 0;
    mailboxes = Pad.array components None;
    shard_batch = Pad.array shards None;
    tickets = Array.make components 0;
    acked = Pad.array components (0, 0);
    states;
    next_id = Array.make components 0;
    posted = Pad.array components 0;
    coalesced = Pad.array components 0;
    applied = Pad.array components 0;
    publishes = Pad.array shards 0;
    batch_installs = Pad.make 0;
    hits = Pad.make 0;
    misses = Pad.make 0;
    stale = Pad.make 0;
    full_scans = Pad.make 0;
    scan_started = Pad.make 0;
    combiner_lock = Pad.make false;
    shared_slot = Pad.make None;
    requested = Pad.make 0;
    combined = Pad.make 0;
    performed = Pad.make 0;
    r_requested = Pad.array readers 0;
    r_combined = Pad.array readers 0;
    r_performed = Pad.array readers 0;
    caches = Array.make readers None;
    stalls = Pad.make 0;
    stop = Pad.make false;
    appliers = [];
  }

let with_span t name f =
  match t.note with
  | None -> f ()
  | Some n ->
    n (Trace.span_begin name);
    let r = f () in
    n (Trace.span_end name);
    r

(* ------------------------------------------------------------------ *)
(* Write path: mailboxes, batched posts, coalescing, appliers           *)
(* ------------------------------------------------------------------ *)

let post t ~writer v =
  if writer < 0 || writer >= t.components then
    invalid_arg "Serve.post: bad writer";
  t.tickets.(writer) <- t.tickets.(writer) + 1;
  Atomic.incr t.posted.(writer);
  (* The exchange hands the mailbox over wait-free: whatever it returns
     was never taken by the applier (its own exchange would have got it
     first), so "applied" and "coalesced" partition the posts exactly. *)
  match Atomic.exchange t.mailboxes.(writer) (Some (v, t.tickets.(writer))) with
  | None -> ()
  | Some _ -> Atomic.incr t.coalesced.(writer)

let post_batch t writes =
  List.iter
    (fun (k, _) ->
      if k < 0 || k >= t.components then
        invalid_arg "Serve.post_batch: bad component")
    writes;
  (* Stage the batch locally, one slice-shaped array per shard touched.
     Tickets come from the same per-component sequence as [post], so
     the applier can order a batched and a mailbox post to the same
     component no matter which channel it drains first. *)
  let locals = Array.make t.shards None in
  List.iter
    (fun (k, v) ->
      t.tickets.(k) <- t.tickets.(k) + 1;
      Atomic.incr t.posted.(k);
      let s = t.owner.(k) in
      let arr =
        match locals.(s) with
        | Some a -> a
        | None ->
          let a = Array.make t.slice_len.(s) None in
          locals.(s) <- Some a;
          a
      in
      let i = k - t.slice_off.(s) in
      (match arr.(i) with
      | Some _ -> Atomic.incr t.coalesced.(k)  (* repeated in this batch *)
      | None -> ());
      arr.(i) <- Some (v, t.tickets.(k)))
    writes;
  (* One install per shard touched: a plain CAS in the uncontended
     case.  On interference (another batch, or the applier's drain) the
     merge is recomputed — newer tickets win per component and the
     superseded entries count coalesced, exactly as mailbox handoffs
     do. *)
  Array.iteri
    (fun s local ->
      match local with
      | None -> ()
      | Some mine ->
        let cell = t.shard_batch.(s) in
        let off = t.slice_off.(s) in
        let rec install () =
          let cur = Atomic.get cell in
          let merged, superseded =
            match cur with
            | None -> (mine, [])
            | Some old ->
              let sup = ref [] in
              let m =
                Array.mapi
                  (fun i o ->
                    match mine.(i) with
                    | None -> o
                    | Some _ as mi ->
                      (match o with Some _ -> sup := i :: !sup | None -> ());
                      mi)
                  old
              in
              (m, !sup)
          in
          if Atomic.compare_and_set cell cur (Some merged) then begin
            Atomic.incr t.batch_installs;
            List.iter (fun i -> Atomic.incr t.coalesced.(off + i)) superseded
          end
          else install ()
        in
        install ())
    locals

let drain_shard t s =
  let off = t.slice_off.(s) and len = t.slice_len.(s) in
  (* A cell is only exchanged when a plain read sees something in it:
     an empty mailbox costs one load instead of one RMW, so a shard fed
     purely through the batch cell drains with a single exchange.  (A
     post landing between the read and the next drain is simply picked
     up then — the read-None case never loses anything the bare
     exchange would have caught, because only this drainer empties the
     cell.) *)
  let take cell =
    match Atomic.get cell with
    | None -> None
    | Some _ -> Atomic.exchange cell None
  in
  (* One exchange takes the whole slice's batched posts... *)
  let batched = match take t.shard_batch.(s) with None -> [||] | Some arr -> arr in
  let todo = ref [] in
  for i = len - 1 downto 0 do
    let k = off + i in
    let single = take t.mailboxes.(k) in
    let from_batch = if Array.length batched = 0 then None else batched.(i) in
    match (single, from_batch) with
    | None, None -> ()
    | Some (v, tk), None | None, Some (v, tk) -> todo := (i, k, v, tk) :: !todo
    | Some (sv, stk), Some (bv, btk) ->
      (* The component reached this drain through both channels; its
         writer's ticket order decides, and the superseded post counts
         coalesced (it was never applied). *)
      Atomic.incr t.coalesced.(k);
      if stk > btk then todo := (i, k, sv, stk) :: !todo
      else todo := (i, k, bv, btk) :: !todo
  done;
  match !todo with
  | [] -> false
  | batch ->
    let acks =
      List.map
        (fun (i, k, v, ticket) ->
          t.next_id.(k) <- t.next_id.(k) + 1;
          let id = t.next_id.(k) in
          t.states.(s).(i) <- { Composite.Item.v; id };
          Atomic.incr t.applied.(k);
          (k, ticket, id))
        batch
    in
    (* Freshness invariant: bump the cell BEFORE the publish.  A cell
       can then read ahead of the outer register (a harmless forced
       miss) but never behind it, which is what makes a single collect
       of the cells a sound cache validation. *)
    let version = 1 + Atomic.fetch_and_add t.version_cells.(s) 1 in
    let (_ : int) =
      t.outer.Composite.Snapshot.update ~writer:s
        { view = Array.copy t.states.(s); version }
    in
    Atomic.incr t.publishes.(s);
    (* Acks only after the publish: a synchronous update that saw its
       ticket acked knows its value is in the outer register. *)
    List.iter (fun (k, ticket, id) -> Atomic.set t.acked.(k) (ticket, id)) acks;
    true

let drain t =
  if t.appliers <> [] then
    invalid_arg "Serve.drain: appliers are running; drain is for manual mode";
  for s = 0 to t.shards - 1 do
    ignore (drain_shard t s : bool)
  done

let applier t s () =
  let b = Backoff.make t.stalls in
  while not (Atomic.get t.stop) do
    if drain_shard t s then Backoff.reset b else Backoff.once b
  done;
  (* One sweep after the stop flag: posts that raced with shutdown must
     still be applied so blocked synchronous updates can complete. *)
  ignore (drain_shard t s : bool)

let start t =
  if t.appliers <> [] then invalid_arg "Serve.start: already started";
  Atomic.set t.stop false;
  t.appliers <- List.init t.shards (fun s -> Domain.spawn (applier t s))

let shutdown t =
  Atomic.set t.stop true;
  List.iter Domain.join t.appliers;
  t.appliers <- []

let update t ~writer v =
  post t ~writer v;
  let ticket = t.tickets.(writer) in
  let b = Backoff.make t.stalls in
  let rec wait () =
    let tk, id = Atomic.get t.acked.(writer) in
    if tk >= ticket then id
    else begin
      Backoff.once b;
      wait ()
    end
  in
  wait ()

(* ------------------------------------------------------------------ *)
(* Read path: scan-sharing, full scans and the validated cache          *)
(* ------------------------------------------------------------------ *)

(* The actual outer-register collect — the only place that pays the
   snapshot construction. *)
let raw_full_scan t ~reader =
  Atomic.incr t.full_scans;
  let views = t.outer.Composite.Snapshot.scan_items ~reader in
  let versions = Array.map (fun it -> it.Composite.Item.v.version) views in
  let snap =
    Array.concat
      (Array.to_list (Array.map (fun it -> it.Composite.Item.v.view) views))
  in
  { snap; versions }

(* Single collect of the version cells.  Sound because cells are bumped
   before publishes and versions are strictly monotone: if every cell
   still equals the cached version at its read point, every shard has
   held the cached view continuously since before this scan began, so
   at the instant the collect started the outer register held exactly
   the cached state. *)
let cache_fresh t c =
  let ok = ref true in
  for s = 0 to t.shards - 1 do
    if Atomic.get t.version_cells.(s) <> c.versions.(s) then ok := false
  done;
  !ok

(* Scan-sharing.  A reader that needs the outer register's state either
   performs the collect itself (it is the combiner) or receives one
   combiner's published snapshot.  Receiving is sound in exactly two
   cases, and the protocol only ever uses these:

   - {e validated adoption}: the published snapshot's version vector
     still matches a fresh collect of the version cells, so by the
     cache-freshness argument the snapshot is the register state right
     now — the adopter's own cell collect is its linearization point,
     inside its own interval.

   - {e stamped adoption}: the snapshot's stamp proves its collect
     {e started} after this reader read the stamp counter (the counter
     is monotone and bumped before each collect, so reading [s0] means
     every later bump — and hence every collect stamped [> s0] — began
     after the read).  A collect's linearization point lies inside the
     collect, hence inside the enlisted reader's interval too.

   A reader that arrives while a collect is in flight spins for a
   {e bounded} number of backoff waves: it adopts the moment the
   in-flight result validates or a strictly newer collect publishes,
   and once the budget is exhausted it reverts to a private collect of
   its own — the
   lock only gates who publishes into the shared slot, never whether a
   reader makes progress, so the combining path stays wait-free even
   when a combiner is preempted mid-collect (on few-core hosts an
   unbounded enlistment would burn whole scheduler quanta waiting for a
   descheduled combiner).  Exactly one of [combined]/[performed] is
   bumped per request, so [requested = combined + performed]. *)
let enlist_budget = 128

let shared_scan t ~reader =
  Atomic.incr t.requested;
  Atomic.incr t.r_requested.(reader);
  let adopt sh =
    Atomic.incr t.combined;
    Atomic.incr t.r_combined.(reader);
    sh.sview
  in
  let perform_private () =
    let c =
      with_span t
        (Printf.sprintf "scan.collect.r%d" reader)
        (fun () -> raw_full_scan t ~reader)
    in
    Atomic.incr t.performed;
    Atomic.incr t.r_performed.(reader);
    c
  in
  let perform_locked ~stamp =
    let c =
      with_span t
        (Printf.sprintf "scan.collect.r%d" reader)
        (fun () -> raw_full_scan t ~reader)
    in
    Atomic.set t.shared_slot (Some { stamp; sview = c });
    Atomic.set t.combiner_lock false;
    Atomic.incr t.performed;
    Atomic.incr t.r_performed.(reader);
    c
  in
  if not t.combine then perform_private ()
  else
    let budget = ref enlist_budget in
    (* Short cap: the enlist wait must stay cheap relative to a private
       collect, since reverting to one is its progress guarantee. *)
    let b = Backoff.make ~cap:64 t.stalls in
    let rec attempt () =
      match Atomic.get t.shared_slot with
      | Some sh when cache_fresh t sh.sview -> adopt sh
      | _ -> (
        let s0 = Atomic.get t.scan_started in
        if Atomic.compare_and_set t.combiner_lock false true then
          match Atomic.get t.shared_slot with
          | Some sh when sh.stamp > s0 ->
            (* Published between our stamp read and the lock: that
               collect started after us, adopt it. *)
            Atomic.set t.combiner_lock false;
            adopt sh
          | _ -> perform_locked ~stamp:(1 + Atomic.fetch_and_add t.scan_started 1)
        else if !budget <= 0 then perform_private ()
        else
          (* Enlist: a combiner's collect is in flight. *)
          with_span t
            (Printf.sprintf "scan.enlist.r%d" reader)
            (fun () ->
              let rec await () =
                match Atomic.get t.shared_slot with
                | Some sh when sh.stamp > s0 -> adopt sh
                | Some sh when cache_fresh t sh.sview -> adopt sh
                | _ ->
                  if !budget <= 0 then perform_private ()
                  else if Atomic.get t.combiner_lock then begin
                    decr budget;
                    Backoff.once b;
                    await ()
                  end
                  else attempt ()
              in
              await ()))
    in
    attempt ()

let scan_items t ~reader =
  if reader < 0 || reader >= t.readers then
    invalid_arg "Serve.scan_items: bad reader";
  if not t.cache_enabled then (shared_scan t ~reader).snap
  else
    match t.caches.(reader) with
    | None ->
      Atomic.incr t.misses;
      let c = shared_scan t ~reader in
      t.caches.(reader) <- Some c;
      Array.copy c.snap
    | Some c ->
      if (not t.validate) || cache_fresh t c then begin
        (* [validate = false] is the deliberately broken mutant: blind
           reuse, for the checkers to catch. *)
        Atomic.incr t.hits;
        Array.copy c.snap
      end
      else begin
        Atomic.incr t.stale;
        let c = shared_scan t ~reader in
        t.caches.(reader) <- Some c;
        Array.copy c.snap
      end

let scan t ~reader = Composite.Item.values (scan_items t ~reader)

let handle t =
  {
    Composite.Snapshot.components = t.components;
    readers = t.readers;
    scan_items = (fun ~reader -> scan_items t ~reader);
    update = (fun ~writer v -> update t ~writer v);
  }

(* ------------------------------------------------------------------ *)
(* Accounting                                                           *)
(* ------------------------------------------------------------------ *)

type stats = {
  posted : int;
  coalesced : int;
  applied : int;
  pending : int;
  publishes : int;
  batch_installs : int;
  hits : int;
  misses : int;
  stale : int;
  full_scans : int;
  scans_requested : int;
  scans_combined : int;
  scans_performed : int;
  stalls : int;
}

type writer_stats = { w_posted : int; w_coalesced : int; w_applied : int }

type reader_stats = {
  r_requested : int;
  r_combined : int;
  r_performed : int;
}

let sum a = Array.fold_left (fun acc c -> acc + Atomic.get c) 0 a

let stats t =
  let pending =
    Array.fold_left
      (fun acc mb -> if Atomic.get mb = None then acc else acc + 1)
      0 t.mailboxes
  in
  let pending =
    Array.fold_left
      (fun acc cell ->
        match Atomic.get cell with
        | None -> acc
        | Some arr ->
          Array.fold_left
            (fun acc e -> if e = None then acc else acc + 1)
            acc arr)
      pending t.shard_batch
  in
  {
    posted = sum t.posted;
    coalesced = sum t.coalesced;
    applied = sum t.applied;
    pending;
    publishes = sum t.publishes;
    batch_installs = Atomic.get t.batch_installs;
    hits = Atomic.get t.hits;
    misses = Atomic.get t.misses;
    stale = Atomic.get t.stale;
    full_scans = Atomic.get t.full_scans;
    scans_requested = Atomic.get t.requested;
    scans_combined = Atomic.get t.combined;
    scans_performed = Atomic.get t.performed;
    stalls = Atomic.get t.stalls;
  }

let writer_stats t ~writer =
  if writer < 0 || writer >= t.components then
    invalid_arg "Serve.writer_stats: bad writer";
  {
    w_posted = Atomic.get t.posted.(writer);
    w_coalesced = Atomic.get t.coalesced.(writer);
    w_applied = Atomic.get t.applied.(writer);
  }

let reader_stats t ~reader =
  if reader < 0 || reader >= t.readers then
    invalid_arg "Serve.reader_stats: bad reader";
  {
    r_requested = Atomic.get t.r_requested.(reader);
    r_combined = Atomic.get t.r_combined.(reader);
    r_performed = Atomic.get t.r_performed.(reader);
  }

let observe t m =
  let c name by = Obs.Metrics.incr ~by (Obs.Metrics.counter m name) in
  let s = stats t in
  c "serve.posted" s.posted;
  c "serve.coalesced" s.coalesced;
  c "serve.applied" s.applied;
  c "serve.publishes" s.publishes;
  c "serve.batch.installs" s.batch_installs;
  c "serve.cache.hit" s.hits;
  c "serve.cache.miss" s.misses;
  c "serve.cache.stale" s.stale;
  c "serve.full_scans" s.full_scans;
  c "serve.scan.requested" s.scans_requested;
  c "serve.scan.combined" s.scans_combined;
  c "serve.scan.performed" s.scans_performed;
  c "serve.stalls" s.stalls

open Csim

type outer_impl = Outer_anderson | Outer_afek

let outer_impl_name = function
  | Outer_anderson -> "anderson"
  | Outer_afek -> "afek"

let outer_impl_of_name = function
  | "anderson" -> Some Outer_anderson
  | "afek" -> Some Outer_afek
  | _ -> None

(* The outer register has [1 + max_shards] components.  Component 0
   holds the current {e configuration} — epoch number, component->shard
   map and the {e boundary}: a full C-item snapshot of everything
   applied before the epoch began.  Components [1+s] hold shard [s]'s
   view, tagged with the epoch it was published under.  Publishing a
   new configuration is a single outer-register update, so the epoch
   switch is atomic: a scan that decodes the new map also sees the new
   boundary, i.e. all migrated state. *)
type 'a config = {
  cepoch : int;
  cowner : int array;  (* component -> owning shard, this epoch *)
  coff : int array;  (* per shard: first owned component *)
  boundary : 'a Composite.Item.t array;  (* all C items at epoch start *)
  cversion : int;
}

type 'a slot =
  | Config of 'a config
  | View of {
      vepoch : int;
      voff : int;  (* first component of the slice, per its epoch *)
      view : 'a Composite.Item.t array;
      vversion : int;
    }

let slot_version = function Config c -> c.cversion | View v -> v.vversion

type 'a cache = { snap : 'a Composite.Item.t array; versions : int array }

(* A snapshot published by a combiner, tagged with the value the
   scan-start counter was bumped to immediately before its collect
   began.  The record is immutable after publication; adopters copy
   [snap] on the way out. *)
type 'a shared = { stamp : int; sview : 'a cache }

module Pad = Composite.Padded_atomic

(* Bounded exponential backoff for spin waits — the same shape as the
   ABD retransmit policy (PR 6): the delay doubles from [base] up to
   [cap] and collapses back to [base] on progress.  Every full wave
   spent at the cap bumps the [stalls] counter, so a waiter burning a
   core on a descheduled applier shows up in the accounting instead of
   spinning invisibly. *)
module Backoff = struct
  type t = { mutable delay : int; cap : int; stalls : int Atomic.t }

  let base = 1
  let default_cap = 4096

  let make ?(cap = default_cap) stalls = { delay = base; cap; stalls }
  let reset b = b.delay <- base

  let once b =
    if b.delay >= b.cap then begin
      (* Saturated: the waited-on domain may be starved for the very
         CPU we are spinning on (single-core hosts, oversubscribed
         pools).  Count the stall and yield the timeslice instead of
         burning it. *)
      Atomic.incr b.stalls;
      Unix.sleepf 50e-6
    end
    else begin
      for _ = 1 to b.delay do
        Domain.cpu_relax ()
      done;
      b.delay <- min b.cap (b.delay * 2)
    end

  let stall_count b = Atomic.get b.stalls
end

type stats = {
  posted : int;
  coalesced : int;
  applied : int;
  pending : int;
  publishes : int;
  batch_installs : int;
  hits : int;
  misses : int;
  stale : int;
  full_scans : int;
  scans_requested : int;
  scans_combined : int;
  scans_performed : int;
  stalls : int;
}

type 'a t = {
  components : int;
  max_shards : int;
  readers : int;
  validate : bool;
  cache_enabled : bool;
  combine : bool;
  migrate : bool;  (* false = the publish-map-without-state mutant *)
  note : (string -> unit) option;
  (* Current layout.  The arrays themselves are immutable; the fields
     are swapped wholesale by [reshard] while no applier is running.
     Writers may read a stale [owner] map — every batch cell is drained
     by some live applier in every epoch, so a post routed by a stale
     map is re-routed, never stranded. *)
  mutable cur_shards : int;
  mutable slice_off : int array;  (* per shard: first owned component *)
  mutable slice_len : int array;  (* per shard: number of owned components *)
  mutable owner : int array;  (* component -> owning shard *)
  mutable states : 'a Composite.Item.t array array;  (* applier-private *)
  mutable last_boundary : 'a Composite.Item.t array;  (* at last epoch start *)
  outer : 'a slot Composite.Snapshot.t;
  (* Bumped by the owning applier BEFORE each publish: a reader that
     finds a cell equal to its cached version knows no publish of that
     slot has intervened (cells can run ahead of the outer register,
     never behind it).  Cell 0 guards the configuration slot, so one
     bump there invalidates every pre-reshard cache. *)
  version_cells : int Atomic.t array;  (* 1 + max_shards; padded *)
  mailboxes : ('a * int) option Atomic.t array;  (* per comp: value, ticket *)
  (* Per shard slot: batched posts as component-indexed (comp, value,
     ticket) entries in one padded cell.  Installed by [post_batch]
     with one CAS per cell in the uncontended case, drained by an
     applier with one exchange.  Entries carry their absolute component
     index, so an install routed by a stale owner map is simply
     re-routed by whichever applier covers the cell in the new epoch. *)
  shard_batch : (int * 'a * int) list option Atomic.t array;  (* max_shards *)
  tickets : int array;  (* per component; touched only by its writer *)
  acked : (int * int) Atomic.t array;  (* per comp: last applied ticket, id *)
  applied_tk : int array;  (* per comp: last applied ticket; owner-private *)
  next_id : int array;  (* per component; touched only by its applier *)
  posted : int Atomic.t array;  (* per component *)
  coalesced : int Atomic.t array;  (* per component *)
  applied : int Atomic.t array;  (* per component *)
  publishes : int Atomic.t array;  (* per shard slot *)
  batch_installs : int Atomic.t;
  hits : int Atomic.t;
  misses : int Atomic.t;
  stale : int Atomic.t;
  full_scans : int Atomic.t;
  (* Scan-sharing state: the combiner lock serializes outer collects,
     [scan_started] stamps them, [shared_slot] publishes the latest. *)
  scan_started : int Atomic.t;
  combiner_lock : bool Atomic.t;
  shared_slot : 'a shared option Atomic.t;
  requested : int Atomic.t;
  combined : int Atomic.t;
  performed : int Atomic.t;
  r_requested : int Atomic.t array;  (* per reader *)
  r_combined : int Atomic.t array;
  r_performed : int Atomic.t array;
  caches : 'a cache option array;  (* per reader; touched only by it *)
  stalls : int Atomic.t;  (* backoff waves that hit the cap *)
  stop : bool Atomic.t;
  mutable appliers : unit Domain.t list;
  cur_epoch : int Atomic.t;
  reconfig : Mutex.t;
  (* Cumulative stats at the start of each epoch, newest first:
     (epoch, shard count during the epoch, totals at its start). *)
  mutable epoch_log : (int * int * stats) list;
}

let components t = t.components
let shards t = t.cur_shards
let max_shards t = t.max_shards
let readers t = t.readers
let combining t = t.combine
let shard_of t k = t.owner.(k)
let epoch t = Atomic.get t.cur_epoch

(* Contiguous partition; shard sizes differ by at most one. *)
let layout ~components ~shards =
  let q = components / shards and rem = components mod shards in
  let slice_off = Array.make shards 0 and slice_len = Array.make shards 0 in
  let off = ref 0 in
  for s = 0 to shards - 1 do
    slice_off.(s) <- !off;
    slice_len.(s) <- (q + if s < rem then 1 else 0);
    off := !off + slice_len.(s)
  done;
  let owner = Array.make components 0 in
  for s = 0 to shards - 1 do
    for k = slice_off.(s) to slice_off.(s) + slice_len.(s) - 1 do
      owner.(k) <- s
    done
  done;
  (slice_off, slice_len, owner)

let zero_stats =
  {
    posted = 0;
    coalesced = 0;
    applied = 0;
    pending = 0;
    publishes = 0;
    batch_installs = 0;
    hits = 0;
    misses = 0;
    stale = 0;
    full_scans = 0;
    scans_requested = 0;
    scans_combined = 0;
    scans_performed = 0;
    stalls = 0;
  }

let create ?(outer = Outer_afek) ?(validate = true) ?(cache = true)
    ?(combine = true) ?(migrate = true) ?max_shards ?note ~shards ~readers ~init
    () =
  let components = Array.length init in
  if components < 1 then invalid_arg "Serve.create: need at least 1 component";
  let max_shards = match max_shards with Some m -> m | None -> shards in
  if shards < 1 || shards > max_shards then
    invalid_arg
      (Printf.sprintf "Serve.create: shards = %d not in 1..max_shards = %d"
         shards max_shards);
  if max_shards > components then
    invalid_arg
      (Printf.sprintf "Serve.create: max_shards = %d > components = %d"
         max_shards components);
  if readers < 1 then invalid_arg "Serve.create: readers must be >= 1";
  let slice_off, slice_len, owner = layout ~components ~shards in
  let states =
    Array.init shards (fun s ->
        Array.init slice_len.(s) (fun i ->
            Composite.Item.initial init.(slice_off.(s) + i)))
  in
  let boundary = Array.init components (fun k -> Composite.Item.initial init.(k)) in
  let outer_init =
    Array.init (1 + max_shards) (fun i ->
        if i = 0 then
          Config
            {
              cepoch = 0;
              cowner = Array.copy owner;
              coff = Array.copy slice_off;
              boundary = Array.copy boundary;
              cversion = 0;
            }
        else if i - 1 < shards then
          View
            {
              vepoch = 0;
              voff = slice_off.(i - 1);
              view = Array.copy states.(i - 1);
              vversion = 0;
            }
        else View { vepoch = -1; voff = 0; view = [||]; vversion = 0 })
  in
  let mem = Composite.Multicore.padded_memory () in
  let outer_h =
    match outer with
    | Outer_afek -> Composite.Afek.create mem ~bits_per_value:64 ~init:outer_init
    | Outer_anderson ->
      Composite.Anderson.handle
        (Composite.Anderson.create mem ~readers ~bits_per_value:64
           ~init:outer_init)
  in
  let outer_h =
    if outer_h.Composite.Snapshot.readers = max_int then
      { outer_h with Composite.Snapshot.readers }
    else outer_h
  in
  {
    components;
    max_shards;
    readers;
    validate;
    cache_enabled = cache;
    combine;
    migrate;
    note;
    cur_shards = shards;
    slice_off;
    slice_len;
    owner;
    states;
    last_boundary = boundary;
    outer = outer_h;
    version_cells = Pad.array (1 + max_shards) 0;
    mailboxes = Pad.array components None;
    shard_batch = Pad.array max_shards None;
    tickets = Array.make components 0;
    acked = Pad.array components (0, 0);
    applied_tk = Array.make components 0;
    next_id = Array.make components 0;
    posted = Pad.array components 0;
    coalesced = Pad.array components 0;
    applied = Pad.array components 0;
    publishes = Pad.array max_shards 0;
    batch_installs = Pad.make 0;
    hits = Pad.make 0;
    misses = Pad.make 0;
    stale = Pad.make 0;
    full_scans = Pad.make 0;
    scan_started = Pad.make 0;
    combiner_lock = Pad.make false;
    shared_slot = Pad.make None;
    requested = Pad.make 0;
    combined = Pad.make 0;
    performed = Pad.make 0;
    r_requested = Pad.array readers 0;
    r_combined = Pad.array readers 0;
    r_performed = Pad.array readers 0;
    caches = Array.make readers None;
    stalls = Pad.make 0;
    stop = Pad.make false;
    appliers = [];
    cur_epoch = Pad.make 0;
    reconfig = Mutex.create ();
    epoch_log = [ (0, shards, zero_stats) ];
  }

let with_span t name f =
  match t.note with
  | None -> f ()
  | Some n ->
    n (Trace.span_begin name);
    let r = f () in
    n (Trace.span_end name);
    r

(* ------------------------------------------------------------------ *)
(* Write path: mailboxes, batched posts, coalescing, appliers           *)
(* ------------------------------------------------------------------ *)

let post t ~writer v =
  if writer < 0 || writer >= t.components then
    invalid_arg "Serve.post: bad writer";
  t.tickets.(writer) <- t.tickets.(writer) + 1;
  Atomic.incr t.posted.(writer);
  (* The exchange hands the mailbox over wait-free: whatever it returns
     was never taken by the applier (its own exchange would have got it
     first), so "applied" and "coalesced" partition the posts exactly. *)
  match Atomic.exchange t.mailboxes.(writer) (Some (v, t.tickets.(writer))) with
  | None -> ()
  | Some _ -> Atomic.incr t.coalesced.(writer)

let post_batch t writes =
  List.iter
    (fun (k, _) ->
      if k < 0 || k >= t.components then
        invalid_arg "Serve.post_batch: bad component")
    writes;
  (* Stage the batch locally, grouped by the owner map as currently
     published.  Entries carry their absolute component index, so a map
     made stale by a concurrent reshard only mis-routes the cell — the
     applier covering that cell in the new epoch re-routes the entry to
     its owner's mailbox; nothing is ever stranded.  Tickets come from
     the same per-component sequence as [post], so the applier can
     order a batched and a mailbox post to the same component no matter
     which channel it drains first. *)
  let owner = t.owner in
  let locals = Hashtbl.create 4 in
  List.iter
    (fun (k, v) ->
      t.tickets.(k) <- t.tickets.(k) + 1;
      Atomic.incr t.posted.(k);
      let s = owner.(k) in
      let cur = try Hashtbl.find locals s with Not_found -> [] in
      (* Listing a component twice in one batch coalesces the earlier
         entry. *)
      let cur =
        List.filter
          (fun (k', _, _) ->
            if k' = k then begin
              Atomic.incr t.coalesced.(k);
              false
            end
            else true)
          cur
      in
      Hashtbl.replace locals s ((k, v, t.tickets.(k)) :: cur))
    writes;
  (* One install per cell touched: a plain CAS in the uncontended case.
     On interference (another batch, or the applier's drain) the merge
     is recomputed — newer tickets win per component and the superseded
     entries count coalesced, exactly as mailbox handoffs do. *)
  Hashtbl.iter
    (fun s mine ->
      let cell = t.shard_batch.(s) in
      let rec install () =
        let cur = Atomic.get cell in
        let merged =
          match cur with
          | None -> mine
          | Some old ->
            (* Union; per component the newer ticket wins and the loser
               counts coalesced. *)
            let keep_old =
              List.filter
                (fun (k, _, _) ->
                  if List.exists (fun (k', _, _) -> k' = k) mine then begin
                    (* Tickets are per-component monotone: ours is the
                       newer post, the old entry is superseded. *)
                    Atomic.incr t.coalesced.(k);
                    false
                  end
                  else true)
                old
            in
            mine @ keep_old
        in
        if Atomic.compare_and_set cell cur (Some merged) then
          Atomic.incr t.batch_installs
        else install ()
      in
      install ())
    locals

(* Re-route a batch entry whose component this applier does not own
   (it was installed under a stale owner map) into the component's
   mailbox, newest ticket wins.  The CAS loop coexists with the
   writer's plain exchange: if the writer overwrites us, its post has a
   newer ticket from the same per-component sequence and counts ours
   coalesced on its side of the exchange. *)
let rec reroute t k v tk =
  let cell = t.mailboxes.(k) in
  let cur = Atomic.get cell in
  match cur with
  | Some (_, tk') when tk' >= tk -> Atomic.incr t.coalesced.(k)
  | _ ->
    if Atomic.compare_and_set cell cur (Some (v, tk)) then
      match cur with Some _ -> Atomic.incr t.coalesced.(k) | None -> ()
    else reroute t k v tk

let drain_shard t s =
  let off = t.slice_off.(s) and len = t.slice_len.(s) in
  let shards = t.cur_shards in
  (* A cell is only exchanged when a plain read sees something in it:
     an empty mailbox costs one load instead of one RMW, so a shard fed
     purely through the batch cell drains with a single exchange.  (A
     post landing between the read and the next drain is simply picked
     up then — the read-None case never loses anything the bare
     exchange would have caught, because only this drainer empties the
     cell.) *)
  let take cell =
    match Atomic.get cell with
    | None -> None
    | Some _ -> Atomic.exchange cell None
  in
  (* Best pending (value, ticket) per owned component. *)
  let best = Array.make len None in
  let moved = ref false in
  let consider k v tk =
    if t.owner.(k) = s then begin
      let i = k - off in
      match best.(i) with
      | Some (_, tk') when tk' >= tk -> Atomic.incr t.coalesced.(k)
      | cur ->
        (match cur with Some _ -> Atomic.incr t.coalesced.(k) | None -> ());
        best.(i) <- Some (v, tk)
    end
    else begin
      (* Not ours: the entry was routed by a stale owner map.  Hand it
         to the owner's mailbox and report progress, so drain loops and
         applier backoffs know work moved even if none was applied
         here. *)
      moved := true;
      reroute t k v tk
    end
  in
  (* Batch cells: applier [s] covers every cell congruent to [s] modulo
     the live shard count, so all [max_shards] cells are drained in
     every epoch no matter how stale the map that filled them was. *)
  let c = ref s in
  while !c < t.max_shards do
    (match take t.shard_batch.(!c) with
    | None -> ()
    | Some entries -> List.iter (fun (k, v, tk) -> consider k v tk) entries);
    c := !c + shards
  done;
  (* ... then one exchange per non-empty owned mailbox. *)
  for i = 0 to len - 1 do
    match take t.mailboxes.(off + i) with
    | None -> ()
    | Some (v, tk) -> consider (off + i) v tk
  done;
  let todo = ref [] in
  for i = len - 1 downto 0 do
    match best.(i) with
    | None -> ()
    | Some (v, tk) ->
      let k = off + i in
      if tk <= t.applied_tk.(k) then
        (* A newer post to this component was already applied (the
           entry sat in a stale batch cell across a reshard): it is
           superseded, never applied. *)
        Atomic.incr t.coalesced.(k)
      else todo := (i, k, v, tk) :: !todo
  done;
  match !todo with
  | [] -> !moved
  | batch ->
    let acks =
      List.map
        (fun (i, k, v, ticket) ->
          t.next_id.(k) <- t.next_id.(k) + 1;
          let id = t.next_id.(k) in
          t.states.(s).(i) <- { Composite.Item.v; id };
          t.applied_tk.(k) <- ticket;
          Atomic.incr t.applied.(k);
          (k, ticket, id))
        batch
    in
    (* Freshness invariant: bump the cell BEFORE the publish.  A cell
       can then read ahead of the outer register (a harmless forced
       miss) but never behind it, which is what makes a single collect
       of the cells a sound cache validation. *)
    let version = 1 + Atomic.fetch_and_add t.version_cells.(1 + s) 1 in
    let (_ : int) =
      t.outer.Composite.Snapshot.update ~writer:(1 + s)
        (View
           {
             vepoch = Atomic.get t.cur_epoch;
             voff = off;
             view = Array.copy t.states.(s);
             vversion = version;
           })
    in
    Atomic.incr t.publishes.(s);
    (* Acks only after the publish: a synchronous update that saw its
       ticket acked knows its value is in the outer register. *)
    List.iter (fun (k, ticket, id) -> Atomic.set t.acked.(k) (ticket, id)) acks;
    true

let drain t =
  if t.appliers <> [] then
    invalid_arg "Serve.drain: appliers are running; drain is for manual mode";
  (* Loop until a quiet pass: an entry re-routed out of a stale batch
     cell lands in a mailbox whose owning shard may already have been
     swept this pass. *)
  let progress = ref true in
  while !progress do
    progress := false;
    for s = 0 to t.cur_shards - 1 do
      if drain_shard t s then progress := true
    done
  done

let applier t s () =
  let b = Backoff.make t.stalls in
  while not (Atomic.get t.stop) do
    if drain_shard t s then Backoff.reset b else Backoff.once b
  done;
  (* One sweep after the stop flag: posts that raced with shutdown must
     still be applied so blocked synchronous updates can complete. *)
  ignore (drain_shard t s : bool)

let start t =
  Mutex.lock t.reconfig;
  if t.appliers <> [] then begin
    Mutex.unlock t.reconfig;
    invalid_arg "Serve.start: already started"
  end;
  Atomic.set t.stop false;
  t.appliers <- List.init t.cur_shards (fun s -> Domain.spawn (applier t s));
  Mutex.unlock t.reconfig

let shutdown t =
  Mutex.lock t.reconfig;
  Atomic.set t.stop true;
  List.iter Domain.join t.appliers;
  t.appliers <- [];
  Mutex.unlock t.reconfig

let update t ~writer v =
  post t ~writer v;
  let ticket = t.tickets.(writer) in
  let b = Backoff.make t.stalls in
  let rec wait () =
    let tk, id = Atomic.get t.acked.(writer) in
    if tk >= ticket then id
    else begin
      Backoff.once b;
      wait ()
    end
  in
  wait ()

(* ------------------------------------------------------------------ *)
(* Accounting                                                           *)
(* ------------------------------------------------------------------ *)

type writer_stats = { w_posted : int; w_coalesced : int; w_applied : int }

type reader_stats = {
  r_requested : int;
  r_combined : int;
  r_performed : int;
}

let sum a = Array.fold_left (fun acc c -> acc + Atomic.get c) 0 a

let stats t =
  let pending =
    Array.fold_left
      (fun acc mb -> if Atomic.get mb = None then acc else acc + 1)
      0 t.mailboxes
  in
  let pending =
    Array.fold_left
      (fun acc cell ->
        match Atomic.get cell with
        | None -> acc
        | Some entries -> acc + List.length entries)
      pending t.shard_batch
  in
  {
    posted = sum t.posted;
    coalesced = sum t.coalesced;
    applied = sum t.applied;
    pending;
    publishes = sum t.publishes;
    batch_installs = Atomic.get t.batch_installs;
    hits = Atomic.get t.hits;
    misses = Atomic.get t.misses;
    stale = Atomic.get t.stale;
    full_scans = Atomic.get t.full_scans;
    scans_requested = Atomic.get t.requested;
    scans_combined = Atomic.get t.combined;
    scans_performed = Atomic.get t.performed;
    stalls = Atomic.get t.stalls;
  }

let writer_stats t ~writer =
  if writer < 0 || writer >= t.components then
    invalid_arg "Serve.writer_stats: bad writer";
  {
    w_posted = Atomic.get t.posted.(writer);
    w_coalesced = Atomic.get t.coalesced.(writer);
    w_applied = Atomic.get t.applied.(writer);
  }

let reader_stats t ~reader =
  if reader < 0 || reader >= t.readers then
    invalid_arg "Serve.reader_stats: bad reader";
  {
    r_requested = Atomic.get t.r_requested.(reader);
    r_combined = Atomic.get t.r_combined.(reader);
    r_performed = Atomic.get t.r_performed.(reader);
  }

(* ------------------------------------------------------------------ *)
(* Reconfiguration: live resharding                                     *)
(* ------------------------------------------------------------------ *)

type epoch_stats = {
  e_epoch : int;
  e_shards : int;
  e_posted : int;
  e_coalesced : int;
  e_applied : int;
  e_carried_in : int;
  e_carried_out : int;
  e_publishes : int;
  e_scans_requested : int;
  e_scans_combined : int;
  e_scans_performed : int;
  e_inflight_in : int;
  e_inflight_out : int;
}

(* Carried work at a boundary is {e derived} from the monotone
   counters: posts accepted but neither applied nor coalesced yet, and
   scans requested but not yet resolved.  Deriving (rather than
   counting cells) is what makes the per-epoch identities exact under
   open-loop load — a post between its counter bump and its mailbox
   exchange is pending by definition.  Negative carry would mean a
   counter was double-bumped; the checks treat it as a violation. *)
let carried (st : stats) = st.posted - st.applied - st.coalesced

let inflight (st : stats) =
  st.scans_requested - st.scans_combined - st.scans_performed

let epoch_stats t =
  Mutex.lock t.reconfig;
  let log = t.epoch_log in
  Mutex.unlock t.reconfig;
  let now = stats t in
  (* [log] is newest-first: close each epoch against the next entry's
     start (or the live totals for the open epoch). *)
  let rec build (upper : stats) acc = function
    | [] -> acc
    | (e, shards, (at : stats)) :: rest ->
      let es =
        {
          e_epoch = e;
          e_shards = shards;
          e_posted = upper.posted - at.posted;
          e_coalesced = upper.coalesced - at.coalesced;
          e_applied = upper.applied - at.applied;
          e_carried_in = carried at;
          e_carried_out = carried upper;
          e_publishes = upper.publishes - at.publishes;
          e_scans_requested = upper.scans_requested - at.scans_requested;
          e_scans_combined = upper.scans_combined - at.scans_combined;
          e_scans_performed = upper.scans_performed - at.scans_performed;
          e_inflight_in = inflight at;
          e_inflight_out = inflight upper;
        }
      in
      build at (es :: acc) rest
  in
  Array.of_list (build now [] log)

let reshard t ~shards:s' =
  if s' < 1 || s' > t.max_shards then
    invalid_arg
      (Printf.sprintf "Serve.reshard: shards = %d not in 1..max_shards = %d" s'
         t.max_shards);
  Mutex.lock t.reconfig;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.reconfig) @@ fun () ->
  let e = Atomic.get t.cur_epoch in
  with_span t (Printf.sprintf "reshard.e%d" (e + 1)) @@ fun () ->
  let running = t.appliers <> [] in
  (* 1. Quiesce the appliers of the closing epoch.  Posts and scans
     keep flowing: posts land in mailboxes/batch cells and are drained
     into the new layout; scans decode whichever configuration the
     outer register holds when they collect. *)
  if running then begin
    Atomic.set t.stop true;
    List.iter Domain.join t.appliers;
    t.appliers <- []
  end;
  (* Two more sweeps on this thread to shrink the carried residue (two,
     so entries the first pass re-routed reach their owner; not for
     correctness — anything still pending is drained by the new epoch's
     appliers, which cover every batch cell and mailbox). *)
  for _pass = 1 to 2 do
    for s = 0 to t.cur_shards - 1 do
      ignore (drain_shard t s : bool)
    done
  done;
  (* 2. Boundary: everything applied up to this instant, as C items
     with their auxiliary ids. *)
  let boundary =
    Array.init t.components (fun k ->
        let s = t.owner.(k) in
        t.states.(s).(k - t.slice_off.(s)))
  in
  (* The mutant publishes the new map but ships the PREVIOUS epoch's
     boundary: state applied during the closing epoch is dropped from
     both the published configuration and the new shard states — the
     checkers must flag the resulting new-old inversions. *)
  let migrated = if t.migrate then boundary else t.last_boundary in
  let slice_off, slice_len, owner = layout ~components:t.components ~shards:s' in
  let states =
    Array.init s' (fun s ->
        Array.init slice_len.(s) (fun i -> migrated.(slice_off.(s) + i)))
  in
  (* 3. Publish the new configuration: bump the config version cell
     first (every validated cache and shared snapshot of the old epoch
     goes stale), then one outer-register update — the atomic epoch
     switch.  A scan that sees the new map sees the migrated boundary
     in the same collect. *)
  let record_boundary = stats t in
  let cversion = 1 + Atomic.fetch_and_add t.version_cells.(0) 1 in
  let (_ : int) =
    t.outer.Composite.Snapshot.update ~writer:0
      (Config
         {
           cepoch = e + 1;
           cowner = Array.copy owner;
           coff = Array.copy slice_off;
           boundary = Array.copy migrated;
           cversion;
         })
  in
  (* 4. Install the new layout and respawn. *)
  t.cur_shards <- s';
  t.slice_off <- slice_off;
  t.slice_len <- slice_len;
  t.owner <- owner;
  t.states <- states;
  t.last_boundary <- migrated;
  Atomic.set t.cur_epoch (e + 1);
  t.epoch_log <- (e + 1, s', record_boundary) :: t.epoch_log;
  if running then begin
    Atomic.set t.stop false;
    t.appliers <- List.init s' (fun s -> Domain.spawn (applier t s))
  end

(* ------------------------------------------------------------------ *)
(* Read path: scan-sharing, full scans and the validated cache          *)
(* ------------------------------------------------------------------ *)

(* The actual outer-register collect — the only place that pays the
   snapshot construction.  The collect is one linearizable scan of the
   [1 + max_shards]-component outer register; decoding picks, for each
   component, the owning shard's view if that shard has published under
   the configuration's epoch, and the configuration's boundary
   otherwise (the shard has not published since the switch, so its
   components' state IS the boundary state).  A view tagged with a
   NEWER epoch than the configuration cannot appear: appliers only
   publish after the configuration carrying their epoch, and the
   collect is atomic. *)
let raw_full_scan t ~reader =
  Atomic.incr t.full_scans;
  let slots = t.outer.Composite.Snapshot.scan_items ~reader in
  let versions =
    Array.map (fun it -> slot_version it.Composite.Item.v) slots
  in
  let cfg =
    match slots.(0).Composite.Item.v with
    | Config c -> c
    | View _ -> assert false
  in
  let snap =
    Array.init t.components (fun k ->
        let s = cfg.cowner.(k) in
        match slots.(1 + s).Composite.Item.v with
        | View w when w.vepoch = cfg.cepoch -> w.view.(k - w.voff)
        | _ -> cfg.boundary.(k))
  in
  { snap; versions }

(* Single collect of the version cells.  Sound because cells are bumped
   before publishes and versions are strictly monotone: if every cell
   still equals the cached version at its read point, every slot has
   held the cached value continuously since before this scan began, so
   at the instant the collect started the outer register held exactly
   the cached state.  Cell 0 guards the configuration, so a reshard
   invalidates every cache with a single bump. *)
let cache_fresh t c =
  let ok = ref true in
  for i = 0 to t.max_shards do
    if Atomic.get t.version_cells.(i) <> c.versions.(i) then ok := false
  done;
  !ok

(* Scan-sharing.  A reader that needs the outer register's state either
   performs the collect itself (it is the combiner) or receives one
   combiner's published snapshot.  Receiving is sound in exactly two
   cases, and the protocol only ever uses these:

   - {e validated adoption}: the published snapshot's version vector
     still matches a fresh collect of the version cells, so by the
     cache-freshness argument the snapshot is the register state right
     now — the adopter's own cell collect is its linearization point,
     inside its own interval.

   - {e stamped adoption}: the snapshot's stamp proves its collect
     {e started} after this reader read the stamp counter (the counter
     is monotone and bumped before each collect, so reading [s0] means
     every later bump — and hence every collect stamped [> s0] — began
     after the read).  A collect's linearization point lies inside the
     collect, hence inside the enlisted reader's interval too.

   A reader that arrives while a collect is in flight spins for a
   {e bounded} number of backoff waves: it adopts the moment the
   in-flight result validates or a strictly newer collect publishes,
   and once the budget is exhausted it reverts to a private collect of
   its own — the
   lock only gates who publishes into the shared slot, never whether a
   reader makes progress, so the combining path stays wait-free even
   when a combiner is preempted mid-collect (on few-core hosts an
   unbounded enlistment would burn whole scheduler quanta waiting for a
   descheduled combiner).  Exactly one of [combined]/[performed] is
   bumped per request, so [requested = combined + performed]. *)
let enlist_budget = 128

let shared_scan t ~reader =
  Atomic.incr t.requested;
  Atomic.incr t.r_requested.(reader);
  let adopt sh =
    Atomic.incr t.combined;
    Atomic.incr t.r_combined.(reader);
    sh.sview
  in
  let perform_private () =
    let c =
      with_span t
        (Printf.sprintf "scan.collect.r%d" reader)
        (fun () -> raw_full_scan t ~reader)
    in
    Atomic.incr t.performed;
    Atomic.incr t.r_performed.(reader);
    c
  in
  let perform_locked ~stamp =
    let c =
      with_span t
        (Printf.sprintf "scan.collect.r%d" reader)
        (fun () -> raw_full_scan t ~reader)
    in
    Atomic.set t.shared_slot (Some { stamp; sview = c });
    Atomic.set t.combiner_lock false;
    Atomic.incr t.performed;
    Atomic.incr t.r_performed.(reader);
    c
  in
  if not t.combine then perform_private ()
  else
    let budget = ref enlist_budget in
    (* Short cap: the enlist wait must stay cheap relative to a private
       collect, since reverting to one is its progress guarantee. *)
    let b = Backoff.make ~cap:64 t.stalls in
    let rec attempt () =
      match Atomic.get t.shared_slot with
      | Some sh when cache_fresh t sh.sview -> adopt sh
      | _ -> (
        let s0 = Atomic.get t.scan_started in
        if Atomic.compare_and_set t.combiner_lock false true then
          match Atomic.get t.shared_slot with
          | Some sh when sh.stamp > s0 ->
            (* Published between our stamp read and the lock: that
               collect started after us, adopt it. *)
            Atomic.set t.combiner_lock false;
            adopt sh
          | _ -> perform_locked ~stamp:(1 + Atomic.fetch_and_add t.scan_started 1)
        else if !budget <= 0 then perform_private ()
        else
          (* Enlist: a combiner's collect is in flight. *)
          with_span t
            (Printf.sprintf "scan.enlist.r%d" reader)
            (fun () ->
              let rec await () =
                match Atomic.get t.shared_slot with
                | Some sh when sh.stamp > s0 -> adopt sh
                | Some sh when cache_fresh t sh.sview -> adopt sh
                | _ ->
                  if !budget <= 0 then perform_private ()
                  else if Atomic.get t.combiner_lock then begin
                    decr budget;
                    Backoff.once b;
                    await ()
                  end
                  else attempt ()
              in
              await ()))
    in
    attempt ()

let scan_items t ~reader =
  if reader < 0 || reader >= t.readers then
    invalid_arg "Serve.scan_items: bad reader";
  if not t.cache_enabled then (shared_scan t ~reader).snap
  else
    match t.caches.(reader) with
    | None ->
      Atomic.incr t.misses;
      let c = shared_scan t ~reader in
      t.caches.(reader) <- Some c;
      Array.copy c.snap
    | Some c ->
      if (not t.validate) || cache_fresh t c then begin
        (* [validate = false] is the deliberately broken mutant: blind
           reuse, for the checkers to catch. *)
        Atomic.incr t.hits;
        Array.copy c.snap
      end
      else begin
        Atomic.incr t.stale;
        let c = shared_scan t ~reader in
        t.caches.(reader) <- Some c;
        Array.copy c.snap
      end

let scan t ~reader = Composite.Item.values (scan_items t ~reader)

let caps t =
  {
    Composite.Composite_intf.epoch = (fun () -> epoch t);
    reconfigure = Some (fun ~shards -> reshard t ~shards);
  }

let handle t =
  {
    Composite.Snapshot.components = t.components;
    readers = t.readers;
    scan_items = (fun ~reader -> scan_items t ~reader);
    update = (fun ~writer v -> update t ~writer v);
    caps = caps t;
  }

let observe t m =
  let c name by = Obs.Metrics.incr ~by (Obs.Metrics.counter m name) in
  let s = stats t in
  c "serve.posted" s.posted;
  c "serve.coalesced" s.coalesced;
  c "serve.applied" s.applied;
  c "serve.publishes" s.publishes;
  c "serve.batch.installs" s.batch_installs;
  c "serve.cache.hit" s.hits;
  c "serve.cache.miss" s.misses;
  c "serve.cache.stale" s.stale;
  c "serve.full_scans" s.full_scans;
  c "serve.scan.requested" s.scans_requested;
  c "serve.scan.combined" s.scans_combined;
  c "serve.scan.performed" s.scans_performed;
  c "serve.stalls" s.stalls;
  c "serve.reshards" (epoch t)

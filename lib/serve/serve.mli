(** The snapshot {e serving} layer: a long-lived, sharded composite
    register with write coalescing and validated read caching.

    The paper's Section 4 recursion builds a [C]-component register out
    of smaller composite registers; this module applies the same move
    horizontally to serve traffic.  [C] components are partitioned
    across [S] {e shards}.  Each shard's state lives in one component
    of an {e outer} composite register (Afek et al. by default, or the
    paper's construction), so a cross-shard Scan is one linearizable
    scan of the outer register — the serving layer is itself literally
    an [S]-component composite register of shard views.

    {2 Write path}

    Writers never touch the outer register.  A {!post} drops the value
    into the component's {e mailbox} — a single [Atomic.exchange], so
    the handoff is wait-free — and each shard has one {e applier}
    domain that repeatedly drains its mailboxes, folds the batch into
    its private shard state, and publishes the new view with a single
    outer-register update.  Posts to a component that arrive while an
    earlier post is still in the mailbox {e coalesce}: the mailbox
    keeps only the latest value and the earlier one is counted in the
    coalesce counters.  Because the exchange is atomic, every post is
    either applied or coalesced, exactly once:
    [posted = applied + coalesced + pending].

    The synchronous {!update} (the {!handle} path used by the stress
    harness and checkers) posts and then waits for its ticket to be
    acknowledged; acks are written only after the publish, so the write
    is in the outer register when [update] returns, and every
    synchronous write receives an auxiliary id — no write checked by
    the history checkers is ever coalesced away.

    {2 Read path}

    Every shard has a version counter: a plain atomic cell the applier
    bumps {e before} each publish, and whose current value is also
    embedded in each published view.  A reader caches its last full
    scan together with the version vector it saw.  On the next Scan it
    collects the [S] cells once; if each equals the cached version,
    monotonicity of versions plus bump-before-publish imply every shard
    has held the cached view continuously since before the collect
    began — so the cached snapshot was the exact register state at the
    instant the collect started, a valid linearization point inside the
    Scan's interval.  Otherwise the cache is stale and the reader pays
    a full outer scan.  This is the double-collect validation idea
    turned into a cache-freshness check; hits, misses and stale
    revalidations are counted ({!stats}, {!observe}).

    Passing [~validate:false] to {!create} produces the deliberately
    broken mutant that reuses the cache blindly — the Shrinking and
    Wing–Gong checkers must flag it (new-old inversions). *)

type outer_impl = Outer_anderson | Outer_afek

val outer_impl_name : outer_impl -> string
val outer_impl_of_name : string -> outer_impl option

type 'a t

val create :
  ?outer:outer_impl ->
  ?validate:bool ->
  ?cache:bool ->
  shards:int ->
  readers:int ->
  init:'a array ->
  unit ->
  'a t
(** [create ~shards ~readers ~init ()] builds a service with
    [C = Array.length init] components partitioned contiguously across
    [shards] inner slices (sizes differ by at most one), composed via an
    outer register built by [outer] (default [Outer_afek], whose
    polynomial scans suit the [S]-component outer object) on
    {!Csim.Memory.atomic} registers.

    [cache] (default [true]) enables per-reader validated caching;
    [validate] (default [true]) enables the freshness check — disabling
    it while caching yields the broken mutant.

    Raises [Invalid_argument] unless [1 <= shards <= C] and
    [readers >= 1]. *)

val components : 'a t -> int
val shards : 'a t -> int
val readers : 'a t -> int

val shard_of : 'a t -> int -> int
(** Owning shard of a component. *)

(** {2 Service lifecycle} *)

val start : 'a t -> unit
(** Spawn one applier domain per shard.  Raises [Invalid_argument] if
    already started. *)

val shutdown : 'a t -> unit
(** Stop and join the appliers.  Each applier performs one final drain
    after seeing the stop flag, so posts issued before [shutdown] are
    still applied.  Callers must have stopped issuing operations. *)

(** {2 Operations} *)

val post : 'a t -> writer:int -> 'a -> unit
(** Asynchronous write: wait-free mailbox handoff, coalescing bursts to
    the same component down to the latest value.  [writer] is the
    component index (one writer process per component). *)

val update : 'a t -> writer:int -> 'a -> int
(** Synchronous write: posts, then waits until the owning applier has
    published the value; returns the auxiliary id it was assigned.
    Requires the appliers to be running ({!start}) — in manual mode
    ({!drain}) it would spin forever. *)

val scan_items : 'a t -> reader:int -> 'a Composite.Item.t array
(** Linearizable Scan of all [C] components: a cache hit when the
    version collect validates, a full outer-register scan otherwise. *)

val scan : 'a t -> reader:int -> 'a array
(** [scan_items] with the auxiliary ids stripped. *)

val handle : 'a t -> 'a Composite.Snapshot.t
(** The unified-handle view ({!Composite.Composite_intf.t}): synchronous
    [update], cached [scan_items].  Plugs the service into the existing
    stress harness, checkers and campaigns unchanged. *)

val drain : 'a t -> unit
(** Manual mode for deterministic unit tests: drain every shard once on
    the calling thread.  Raises [Invalid_argument] if appliers are
    running (shard state is applier-private). *)

(** {2 Accounting}

    All counters are exact, not sampled; see the module preamble for
    the [posted = applied + coalesced + pending] invariant. *)

type stats = {
  posted : int;  (** posts accepted across all components *)
  coalesced : int;  (** posts superseded in a mailbox before application *)
  applied : int;  (** posts folded into a published view *)
  pending : int;  (** posts currently sitting in mailboxes *)
  publishes : int;  (** outer-register updates across all shards *)
  hits : int;  (** scans served from a validated cache *)
  misses : int;  (** scans with no cache to validate *)
  stale : int;  (** scans whose cache failed validation *)
  full_scans : int;  (** outer-register scans (misses + stale + uncached) *)
}

type writer_stats = { w_posted : int; w_coalesced : int; w_applied : int }

val stats : 'a t -> stats
val writer_stats : 'a t -> writer:int -> writer_stats

val observe : 'a t -> Obs.Metrics.t -> unit
(** Accumulate current totals into counters [serve.posted],
    [serve.coalesced], [serve.applied], [serve.publishes],
    [serve.cache.hit], [serve.cache.miss], [serve.cache.stale] and
    [serve.full_scans] (additive across calls — observe once per
    service lifetime). *)

(** The snapshot {e serving} layer: a long-lived, sharded composite
    register with write coalescing, batched posts, scan-sharing and
    validated read caching.

    The paper's Section 4 recursion builds a [C]-component register out
    of smaller composite registers; this module applies the same move
    horizontally to serve traffic.  [C] components are partitioned
    across [S] {e shards}.  Each shard's state lives in one component
    of an {e outer} composite register (Afek et al. by default — the
    polynomial scan is the hot path; the paper's exponential Anderson
    construction is retained as the differential oracle), so a
    cross-shard Scan is one linearizable scan of the outer register —
    the serving layer is itself literally an [S]-component composite
    register of shard views.  Every register the hot path touches
    (version cells, mailboxes, batch cells, counters) lives on its own
    cache line ({!Composite.Padded_atomic}).

    {2 Write path}

    Writers never touch the outer register.  A {!post} drops the value
    into the component's {e mailbox} — a single [Atomic.exchange], so
    the handoff is wait-free — and each shard has one {e applier}
    domain that repeatedly drains its mailboxes, folds the batch into
    its private shard state, and publishes the new view with a single
    outer-register update.  Posts to a component that arrive while an
    earlier post is still in the mailbox {e coalesce}: the mailbox
    keeps only the latest value and the earlier one is counted in the
    coalesce counters.  Because the exchange is atomic, every post is
    either applied or coalesced, exactly once:
    [posted = applied + coalesced + pending].

    A multi-component write can instead use {!post_batch}: its entries
    are grouped by owning shard and installed into one per-shard
    {e batch cell} — a single CAS per shard in the uncontended case,
    and a single exchange for the applier to drain, instead of one
    exchange per component on both sides.  Batched and mailbox posts to
    the same component are ordered by the writer's ticket sequence, and
    whichever loses counts coalesced, so the accounting identity is
    unchanged.

    The synchronous {!update} (the {!handle} path used by the stress
    harness and checkers) posts and then waits for its ticket to be
    acknowledged; acks are written only after the publish, so the write
    is in the outer register when [update] returns, and every
    synchronous write receives an auxiliary id — no write checked by
    the history checkers is ever coalesced away.

    {2 Read path}

    Every shard has a version counter: a plain atomic cell the applier
    bumps {e before} each publish, and whose current value is also
    embedded in each published view.  A reader caches its last full
    scan together with the version vector it saw.  On the next Scan it
    collects the [S] cells once; if each equals the cached version,
    monotonicity of versions plus bump-before-publish imply every shard
    has held the cached view continuously since before the collect
    began — so the cached snapshot was the exact register state at the
    instant the collect started, a valid linearization point inside the
    Scan's interval.  Otherwise the cache is stale and the reader pays
    the outer register — but not necessarily alone:

    {2 Scan-sharing (flat combining)}

    With [combine] (the default), concurrent readers that all need the
    outer register's state share one collect.  A {e combiner} takes a
    lock, stamps and performs the collect, and publishes the snapshot —
    tagged with its version vector and stamp — in a shared slot.  Other
    readers {e enlist} and adopt a published snapshot in exactly two
    sound ways: {e validated adoption} (a one-collect freshness check
    of the version cells proves the snapshot is the register state
    right now, so the adopter's own collect is its linearization
    point), or {e stamped adoption} (the stamp proves the shared
    collect started after the adopter arrived, so the collect's
    linearization point lies inside the adopter's interval as well).
    Requests, adoptions and self-performed collects are counted
    exactly: [scans_requested = scans_combined + scans_performed], per
    service and per reader ({!reader_stats} — so hot-cell profiles can
    attribute shared collects to their enlisted readers, not just the
    combiner).  The published slot doubles as a service-wide validated
    cache: between publishes, readers with no (or stale) private cache
    adopt it for the price of one cell collect.

    Enlistment is {e bounded}: a reader waiting on an in-flight collect
    spins only a fixed budget of steps before reverting to a private
    collect of its own, so the combiner lock gates who publishes into
    the shared slot, never whether a reader makes progress — scans stay
    wait-free even when a combiner is preempted mid-collect.
    [~combine:false] disables sharing entirely (every cache miss pays
    its own outer scan) and is the differential baseline of experiment
    E20's before/after rows.

    Passing [~validate:false] to {!create} produces the deliberately
    broken mutant that reuses the per-reader cache blindly — the
    Shrinking and Wing–Gong checkers must flag it (new-old
    inversions).

    {2 Elastic sharding (epochs)}

    The shard count is no longer fixed for the service's lifetime:
    {!reshard} moves the service from [S] to [S'] shards {e while
    operations are in flight}.  The outer register is the mechanism.
    It has [1 + max_shards] components: component [0] holds the current
    {e configuration} — an epoch number, the component-to-shard map,
    and the {e boundary}, a full [C]-item snapshot of everything
    applied before the epoch began — and component [1+s] holds shard
    [s]'s view, tagged with the epoch it was published under.
    Publishing a new configuration is one outer-register update, so the
    epoch switch is atomic: {e a scan that decodes the new map sees the
    migrated boundary in the same collect}.  A scan decodes component
    [k] from its owning shard's view when that shard has published
    under the configuration's epoch, and from the boundary otherwise
    (the shard has not published since the switch, so its components'
    state is exactly the boundary state).

    A reshard quiesces the closing epoch's appliers, drains, snapshots
    the boundary, publishes the new configuration (bumping the
    configuration's version cell first, so every validated cache and
    shared snapshot of the old epoch goes stale), installs the new
    layout and respawns appliers.  Writers never stop: posts keep
    landing in mailboxes and batch cells and are drained into the new
    layout; batch entries carry absolute component indices, every batch
    cell is covered by some live applier in every epoch, and entries
    routed by a stale owner map are re-routed to their owner's mailbox
    with per-component tickets arbitrating order — so the
    [posted = applied + coalesced + pending] identity holds {e per
    epoch} (see {!epoch_stats}), with the boundary residue carried into
    the next epoch.

    Passing [~migrate:false] to {!create} produces the second
    deliberately broken mutant: {!reshard} publishes the new map but
    ships the {e previous} epoch's boundary — the observable effect of
    publishing the map before migrating state.  Acknowledged writes
    from the closing epoch vanish from scans until their components are
    re-written; the checkers must flag the new-old inversions. *)

(** Bounded exponential backoff for spin waits, shared by every spin
    site in the serving stack (applier idle loop, synchronous-update
    ack wait, scan-sharing enlistment) and reusable by campaigns and
    the network edge.  Same shape as the ABD retransmit policy: the
    delay doubles from 1 up to [cap] relaxations per wave and collapses
    back on progress.  Every wave spent {e at} the cap increments the
    supplied stall counter — making stalled waiters observable (the
    service feeds its own counter into {!observe} as [serve.stalls]) —
    and {e yields the OS timeslice} instead of spinning: past the cap
    the waited-on domain is plausibly starved for the very CPU the
    waiter is burning (single-core hosts, oversubscribed pools). *)
module Backoff : sig
  type t

  val default_cap : int
  (** 4096 relaxations per wave. *)

  val make : ?cap:int -> int Atomic.t -> t
  (** [make stalls] starts a fresh backoff; waves that reach [cap]
      (default {!default_cap}) bump [stalls]. *)

  val once : t -> unit
  (** Wait one wave ([delay] times [Domain.cpu_relax]), then double the
      delay up to the cap.  At the cap: count a stall and sleep a few
      tens of microseconds (yielding the OS thread) instead of
      spinning. *)

  val reset : t -> unit
  (** Collapse the delay back to 1 — call on progress. *)

  val stall_count : t -> int
  (** Current value of the backing stall counter. *)
end

type outer_impl = Outer_anderson | Outer_afek

val outer_impl_name : outer_impl -> string
val outer_impl_of_name : string -> outer_impl option

type 'a t

val create :
  ?outer:outer_impl ->
  ?validate:bool ->
  ?cache:bool ->
  ?combine:bool ->
  ?migrate:bool ->
  ?max_shards:int ->
  ?note:(string -> unit) ->
  shards:int ->
  readers:int ->
  init:'a array ->
  unit ->
  'a t
(** [create ~shards ~readers ~init ()] builds a service with
    [C = Array.length init] components partitioned contiguously across
    [shards] inner slices (sizes differ by at most one), composed via an
    outer register built by [outer] (default [Outer_afek], whose
    polynomial scans suit the outer object) on padded
    atomic registers ({!Composite.Multicore.padded_memory}).

    [max_shards] (default [shards]) caps what {!reshard} may grow to;
    the outer register is created with [1 + max_shards] components, so
    leaving it at the default costs one extra (configuration) component
    over the pre-elastic layout and nothing else.

    [cache] (default [true]) enables per-reader validated caching;
    [validate] (default [true]) enables the freshness check — disabling
    it while caching yields the broken caching mutant.  [combine]
    (default [true]) enables scan-sharing; [~combine:false] preserves
    the pre-combining behavior (every cache miss pays its own outer
    scan).  [migrate] (default [true]): [~migrate:false] is the broken
    resharding mutant — {!reshard} publishes the new shard map without
    the state applied during the closing epoch (see the module
    preamble).

    [note] (default none) receives {!Csim.Trace.span_begin}/[span_end]
    markers ["scan.collect.r<j>"] around a combiner's outer collect,
    ["scan.enlist.r<j>"] around an enlisted reader's wait, and
    ["reshard.e<n>"] around a reconfiguration, so span profiles
    attribute shared collects per reader and reshards per epoch.

    Raises [Invalid_argument] unless
    [1 <= shards <= max_shards <= C] and [readers >= 1]. *)

val components : 'a t -> int

val shards : 'a t -> int
(** Shard count of the {e current} epoch. *)

val max_shards : 'a t -> int
val readers : 'a t -> int

val combining : 'a t -> bool
(** Whether scan-sharing is enabled. *)

val shard_of : 'a t -> int -> int
(** Owning shard of a component. *)

(** {2 Service lifecycle} *)

val start : 'a t -> unit
(** Spawn one applier domain per shard.  Raises [Invalid_argument] if
    already started. *)

val shutdown : 'a t -> unit
(** Stop and join the appliers.  Each applier performs one final drain
    after seeing the stop flag, so posts issued before [shutdown] are
    still applied.  Callers must have stopped issuing operations. *)

(** {2 Reconfiguration} *)

val reshard : 'a t -> shards:int -> unit
(** Move the service to [shards] shards, atomically with respect to
    every concurrent operation (see the module preamble: the epoch
    switch is a single outer-register update carrying the migrated
    boundary).  Posts, synchronous updates and scans may be in flight
    throughout; a synchronous {!update} issued during the switch
    completes once the new epoch's appliers drain it.  Works in both
    modes: with appliers running they are quiesced and respawned over
    the new layout; in manual mode ({!drain}) only the layout and epoch
    change.  Serialized with {!start}/{!shutdown} and other reshards.
    Raises [Invalid_argument] unless [1 <= shards <= max_shards]. *)

val epoch : 'a t -> int
(** Current configuration epoch: 0 at creation, +1 per completed
    {!reshard}. *)

val caps : 'a t -> Composite.Composite_intf.caps
(** The service's capability record: [epoch] reads {!epoch},
    [reconfigure] is [Some] and calls {!reshard}.  {!handle} embeds
    it. *)

(** {2 Operations} *)

val post : 'a t -> writer:int -> 'a -> unit
(** Asynchronous write: wait-free mailbox handoff, coalescing bursts to
    the same component down to the latest value.  [writer] is the
    component index (one writer process per component). *)

val post_batch : 'a t -> (int * 'a) list -> unit
(** Asynchronous multi-component write: all entries staged locally,
    then installed with one batch-cell CAS per shard touched (counted
    in [batch_installs]) instead of one exchange per component.  The
    caller must be the writing process of every component it names;
    listing a component twice coalesces the earlier entry.  Lock-free:
    an install retries only if another batch or the applier's drain
    touched the same shard cell concurrently. *)

val update : 'a t -> writer:int -> 'a -> int
(** Synchronous write: posts, then waits until the owning applier has
    published the value; returns the auxiliary id it was assigned.
    Requires the appliers to be running ({!start}) — in manual mode
    ({!drain}) it would spin forever. *)

val scan_items : 'a t -> reader:int -> 'a Composite.Item.t array
(** Linearizable Scan of all [C] components: a cache hit when the
    version collect validates, otherwise a shared or private scan of
    the outer register. *)

val scan : 'a t -> reader:int -> 'a array
(** [scan_items] with the auxiliary ids stripped. *)

val handle : 'a t -> 'a Composite.Snapshot.t
(** The unified-handle view ({!Composite.Composite_intf.t}): synchronous
    [update], cached [scan_items].  Plugs the service into the existing
    stress harness, checkers and campaigns unchanged. *)

val drain : 'a t -> unit
(** Manual mode for deterministic unit tests: drain every shard once on
    the calling thread (batch cells first, then mailboxes).  Raises
    [Invalid_argument] if appliers are running (shard state is
    applier-private). *)

(** {2 Accounting}

    All counters are exact, not sampled; see the module preamble for
    the [posted = applied + coalesced + pending] and
    [scans_requested = scans_combined + scans_performed] identities. *)

type stats = {
  posted : int;  (** posts accepted across all components (both channels) *)
  coalesced : int;  (** posts superseded before application *)
  applied : int;  (** posts folded into a published view *)
  pending : int;  (** posts sitting in mailboxes or batch cells *)
  publishes : int;  (** outer-register updates across all shards *)
  batch_installs : int;  (** successful per-shard batch-cell installs *)
  hits : int;  (** scans served from a validated private cache *)
  misses : int;  (** scans with no cache to validate *)
  stale : int;  (** scans whose cache failed validation *)
  full_scans : int;  (** outer-register collects actually performed *)
  scans_requested : int;  (** entries into the (shared) scan machinery *)
  scans_combined : int;  (** requests served by an adopted shared snapshot *)
  scans_performed : int;  (** requests that performed their own collect *)
  stalls : int;
      (** backoff waves that hit their cap across all spin sites — a
          proxy for time burned waiting on a descheduled applier or
          combiner *)
}

type writer_stats = { w_posted : int; w_coalesced : int; w_applied : int }

type reader_stats = {
  r_requested : int;
  r_combined : int;
  r_performed : int;
}
(** Per-reader split of the scan-sharing counters:
    [r_requested = r_combined + r_performed] once the reader is
    quiescent. *)

val stats : 'a t -> stats
val writer_stats : 'a t -> writer:int -> writer_stats
val reader_stats : 'a t -> reader:int -> reader_stats

(** Per-epoch slice of the accounting.  All deltas are differences of
    the cumulative counters between the epoch's two boundaries (the
    open epoch's upper boundary is "now").  Work in flight at a
    boundary is {e carried}: [e_carried_in]/[e_carried_out] are posts
    accepted but not yet applied or coalesced at each boundary, and
    [e_inflight_in]/[e_inflight_out] the scans requested but not yet
    resolved.  The per-epoch identities are then exact even under
    open-loop load:
    [e_posted + e_carried_in = e_applied + e_coalesced + e_carried_out]
    and
    [e_scans_requested + e_inflight_in
       = e_scans_combined + e_scans_performed + e_inflight_out],
    with every field non-negative — a negative carry would mean a
    counter was double-bumped.  At final quiescence the last epoch's
    carry and inflight are 0 and the totals identities close. *)
type epoch_stats = {
  e_epoch : int;
  e_shards : int;  (** shard count during the epoch *)
  e_posted : int;
  e_coalesced : int;
  e_applied : int;
  e_carried_in : int;
  e_carried_out : int;
  e_publishes : int;
  e_scans_requested : int;
  e_scans_combined : int;
  e_scans_performed : int;
  e_inflight_in : int;
  e_inflight_out : int;
}

val epoch_stats : 'a t -> epoch_stats array
(** One entry per epoch, index = epoch number; the last entry is the
    open epoch measured against the current totals. *)

val observe : 'a t -> Obs.Metrics.t -> unit
(** Accumulate current totals into counters [serve.posted],
    [serve.coalesced], [serve.applied], [serve.publishes],
    [serve.batch.installs], [serve.cache.hit], [serve.cache.miss],
    [serve.cache.stale], [serve.full_scans], [serve.scan.requested],
    [serve.scan.combined], [serve.scan.performed] and [serve.stalls]
    (additive across calls — observe once per service lifetime). *)

exception Cancelled

type _ Effect.t += Await : Unix.file_descr * [ `R | `W ] -> unit Effect.t

type waiter = {
  wfd : Unix.file_descr;
  dir : [ `R | `W ];
  k : (unit, unit) Effect.Deep.continuation;
}

type t = {
  mutable runnable : (unit -> unit) list;  (* in reverse arrival order *)
  mutable waiting : waiter list;
  mutable alive : int;
  on_error : exn -> unit;
}

let create ?(on_error = fun _ -> ()) () =
  { runnable = []; waiting = []; alive = 0; on_error }

let alive t = t.alive

let await_readable fd = Effect.perform (Await (fd, `R))
let await_writable fd = Effect.perform (Await (fd, `W))

let spawn t f =
  t.alive <- t.alive + 1;
  let fiber () =
    Effect.Deep.match_with f ()
      {
        retc = (fun () -> t.alive <- t.alive - 1);
        exnc =
          (fun e ->
            t.alive <- t.alive - 1;
            match e with Cancelled -> () | e -> t.on_error e);
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Await (wfd, dir) ->
              Some
                (fun (k : (a, unit) Effect.Deep.continuation) ->
                  t.waiting <- { wfd; dir; k } :: t.waiting)
            | _ -> None);
      }
  in
  t.runnable <- fiber :: t.runnable

let resume t w = t.runnable <- (fun () -> Effect.Deep.continue w.k ()) :: t.runnable

let cancel t w =
  t.runnable <- (fun () -> Effect.Deep.discontinue w.k Cancelled) :: t.runnable

let cancel_fd t fd =
  let gone, kept = List.partition (fun w -> w.wfd = fd) t.waiting in
  t.waiting <- kept;
  List.iter (cancel t) gone

let cancel_all t =
  let ws = t.waiting in
  t.waiting <- [];
  List.iter (cancel t) ws

(* Run queued fibers to exhaustion.  Execution may queue more (spawns,
   or awaits becoming ready through [resume]), hence the loop. *)
let rec drain t =
  match t.runnable with
  | [] -> ()
  | batch ->
    t.runnable <- [];
    List.iter (fun f -> f ()) (List.rev batch);
    drain t

let select_step t ~timeout =
  let rs =
    List.filter_map (fun w -> if w.dir = `R then Some w.wfd else None) t.waiting
  and ws =
    List.filter_map (fun w -> if w.dir = `W then Some w.wfd else None) t.waiting
  in
  match Unix.select (List.sort_uniq compare rs) (List.sort_uniq compare ws) [] timeout with
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | ready_r, ready_w, _ ->
    let is_ready w =
      match w.dir with
      | `R -> List.mem w.wfd ready_r
      | `W -> List.mem w.wfd ready_w
    in
    let ready, still = List.partition is_ready t.waiting in
    t.waiting <- still;
    (* Reverse so fibers resume in the order they started waiting. *)
    List.iter (resume t) (List.rev ready)

let run ?(grace = 1.0) ?(on_stop = fun () -> ()) ~stop t =
  let deadline = ref None in
  let rec loop () =
    drain t;
    if t.alive > 0 then begin
      let past_grace =
        if not (stop ()) then false
        else
          let now = Obs.Mono.now_s () in
          match !deadline with
          | None ->
            deadline := Some (now +. grace);
            on_stop ();
            false
          | Some d -> now >= d
      in
      if past_grace then cancel_all t
      else select_step t ~timeout:0.02;
      loop ()
    end
  in
  loop ()

type config = { workers : int; backlog : int; grace : float }

let default_config = { workers = 4; backlog = 64; grace = 1.0 }

type stats = {
  accepted : int;
  disconnects : int;
  hellos : int;
  writes : int;
  posts : int;
  scans : int;
  reshards : int;
  protocol_errors : int;
  op_errors : int;
  fiber_errors : int;
}

type counters = {
  c_accepted : int Atomic.t;
  c_disconnects : int Atomic.t;
  c_hellos : int Atomic.t;
  c_writes : int Atomic.t;
  c_posts : int Atomic.t;
  c_scans : int Atomic.t;
  c_reshards : int Atomic.t;
  c_proto : int Atomic.t;
  c_op : int Atomic.t;
  c_fiber : int Atomic.t;
}

type t = {
  b : Backend.t;
  cfg : config;
  listen : Unix.file_descr;
  port : int;
  stop : bool Atomic.t;
  c : counters;
  mutable domains : unit Domain.t list;
  mutable down : bool;
}

let port t = t.port
let backend t = t.b

let stats t =
  {
    accepted = Atomic.get t.c.c_accepted;
    disconnects = Atomic.get t.c.c_disconnects;
    hellos = Atomic.get t.c.c_hellos;
    writes = Atomic.get t.c.c_writes;
    posts = Atomic.get t.c.c_posts;
    scans = Atomic.get t.c.c_scans;
    reshards = Atomic.get t.c.c_reshards;
    protocol_errors = Atomic.get t.c.c_proto;
    op_errors = Atomic.get t.c.c_op;
    fiber_errors = Atomic.get t.c.c_fiber;
  }

(* Exact reads/writes over a non-blocking socket, suspending the fiber
   whenever the kernel would block.  Peer resets surface as
   [End_of_file], which the connection fiber treats as a disconnect. *)
let rec read_exact fd buf off len =
  if len > 0 then begin
    Sched.await_readable fd;
    match Unix.read fd buf off len with
    | 0 -> raise End_of_file
    | n -> read_exact fd buf (off + n) (len - n)
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
      read_exact fd buf off len
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
      raise End_of_file
  end

let rec write_all fd buf off len =
  if len > 0 then begin
    Sched.await_writable fd;
    match Unix.write fd buf off len with
    | n -> write_all fd buf (off + n) (len - n)
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
      write_all fd buf off len
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
      raise End_of_file
  end

let send_response fd resp =
  let b = Wire.encode_response resp in
  write_all fd b 0 (Bytes.length b)

let exec t ~worker = function
  | Wire.Hello ->
    Atomic.incr t.c.c_hellos;
    Wire.Hello_ok { components = t.b.Backend.components }
  | Wire.Write { component; value } ->
    Atomic.incr t.c.c_writes;
    Wire.Write_ok { id = t.b.Backend.write ~worker ~component value }
  | Wire.Post { component; value } ->
    Atomic.incr t.c.c_posts;
    t.b.Backend.post ~worker ~component value;
    Wire.Post_ok
  | Wire.Scan ->
    Atomic.incr t.c.c_scans;
    Wire.Scan_ok (t.b.Backend.scan ~worker)
  | Wire.Reshard { shards } -> (
    (* Serialized by the serving layer itself; open connections keep
       flowing — the epoch switch is atomic through the outer register. *)
    match t.b.Backend.caps.Composite.Composite_intf.reconfigure with
    | None ->
      invalid_arg (t.b.Backend.label ^ ": backend is not reconfigurable")
    | Some f ->
      f ~shards;
      Atomic.incr t.c.c_reshards;
      Wire.Reshard_ok
        { epoch = t.b.Backend.caps.Composite.Composite_intf.epoch () })

let serve_conn t ~worker fd =
  Unix.set_nonblock fd;
  (try Unix.setsockopt fd Unix.TCP_NODELAY true
   with Unix.Unix_error _ -> ());
  Fun.protect
    ~finally:(fun () ->
      Atomic.incr t.c.c_disconnects;
      try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      try
        let hdr = Bytes.create 4 in
        let continue = ref true in
        while !continue && not (Atomic.get t.stop) do
          read_exact fd hdr 0 4;
          match Wire.decode_length hdr with
          | Error msg ->
            (* Framing is gone: report, close, survive. *)
            Atomic.incr t.c.c_proto;
            send_response fd (Wire.Error msg);
            continue := false
          | Ok n -> (
            let payload = Bytes.create n in
            read_exact fd payload 0 n;
            match Wire.decode_request payload with
            | Error msg ->
              Atomic.incr t.c.c_proto;
              send_response fd (Wire.Error msg);
              continue := false
            | Ok req ->
              let resp =
                (* A well-formed request the backend rejects (component
                   out of range, simulator refusal) answers ['e'] but
                   keeps the connection. *)
                try exec t ~worker req
                with Invalid_argument msg ->
                  Atomic.incr t.c.c_op;
                  Wire.Error msg
              in
              send_response fd resp)
        done
      with End_of_file -> ())

let acceptor t ~worker sched () =
  let rec loop () =
    if not (Atomic.get t.stop) then begin
      Sched.await_readable t.listen;
      (match Unix.accept ~cloexec:true t.listen with
      | exception
          Unix.Unix_error
            ( ( Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR
              | Unix.ECONNABORTED ),
              _,
              _ ) ->
        ()
      | fd, _ ->
        Atomic.incr t.c.c_accepted;
        Sched.spawn sched (fun () -> serve_conn t ~worker fd));
      loop ()
    end
  in
  loop ()

let worker_main t worker () =
  let sched =
    Sched.create ~on_error:(fun _ -> Atomic.incr t.c.c_fiber) ()
  in
  Sched.spawn sched (acceptor t ~worker sched);
  Sched.run sched ~grace:t.cfg.grace
    ~on_stop:(fun () -> Sched.cancel_fd sched t.listen)
    ~stop:(fun () -> Atomic.get t.stop)

let start ?(config = default_config) b =
  if config.workers < 1 then
    invalid_arg "Edge.Server.start: workers must be >= 1";
  let listen = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen Unix.SO_REUSEADDR true;
  Unix.bind listen (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen listen config.backlog;
  Unix.set_nonblock listen;
  let port =
    match Unix.getsockname listen with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  let atomic0 () = Atomic.make 0 in
  let t =
    {
      b;
      cfg = config;
      listen;
      port;
      stop = Atomic.make false;
      c =
        {
          c_accepted = atomic0 ();
          c_disconnects = atomic0 ();
          c_hellos = atomic0 ();
          c_writes = atomic0 ();
          c_posts = atomic0 ();
          c_scans = atomic0 ();
          c_reshards = atomic0 ();
          c_proto = atomic0 ();
          c_op = atomic0 ();
          c_fiber = atomic0 ();
        };
      domains = [];
      down = false;
    }
  in
  t.domains <-
    List.init config.workers (fun w -> Domain.spawn (worker_main t w));
  t

let shutdown t =
  if t.down then Ok ()
  else begin
    t.down <- true;
    Atomic.set t.stop true;
    List.iter Domain.join t.domains;
    t.domains <- [];
    (try Unix.close t.listen with Unix.Unix_error _ -> ());
    t.b.Backend.shutdown ();
    t.b.Backend.identities_ok ()
  end

let observe t m =
  let c name by = Obs.Metrics.incr ~by (Obs.Metrics.counter m name) in
  let s = stats t in
  c "edge.accepted" s.accepted;
  c "edge.disconnects" s.disconnects;
  c "edge.hello" s.hellos;
  c "edge.write" s.writes;
  c "edge.post" s.posts;
  c "edge.scan" s.scans;
  c "edge.reshard" s.reshards;
  c "edge.protocol_errors" s.protocol_errors;
  c "edge.op_errors" s.op_errors;
  c "edge.fiber_errors" s.fiber_errors

(** The TCP front-end: a listening socket served by a small pool of
    worker domains, each running an effect-based accept loop
    ({!Sched}).

    Every worker selects on the shared non-blocking listen socket and
    accepts directly — no cross-domain dispatch, the kernel is the load
    balancer — then serves each connection as a fiber: read a
    length-prefixed frame, decode, execute against the {!Backend},
    reply.  A malformed frame gets an ['e'] response and a closed
    connection; the server survives and counts it.  Backend
    [Invalid_argument] (e.g. component out of range) is returned as an
    ['e'] response with the connection kept open.

    {!shutdown} is graceful: stop accepting, give in-flight fibers a
    grace period (connections closed by their clients finish
    immediately), cancel stragglers, join the workers, then shut the
    backend down — which drains its mailboxes — and finally report the
    backend's accounting identities. *)

type config = {
  workers : int;  (** worker domains (≥ 1) *)
  backlog : int;  (** listen(2) backlog *)
  grace : float;  (** shutdown grace for in-flight fibers, seconds *)
}

val default_config : config
(** 4 workers, backlog 64, 1.0s grace. *)

type stats = {
  accepted : int;  (** connections accepted *)
  disconnects : int;  (** connections that ended (any reason) *)
  hellos : int;
  writes : int;
  posts : int;
  scans : int;
  reshards : int;  (** completed online reconfigurations *)
  protocol_errors : int;  (** malformed frames (connection dropped) *)
  op_errors : int;  (** well-formed requests the backend rejected *)
  fiber_errors : int;  (** fibers killed by unexpected exceptions *)
}

type t

val start : ?config:config -> Backend.t -> t
(** Bind [127.0.0.1] on an ephemeral port, listen, spawn the workers. *)

val port : t -> int
val backend : t -> Backend.t
val stats : t -> stats

val shutdown : t -> (unit, string) result
(** Graceful shutdown as described above.  The result is the backend's
    {!Backend.identities_ok} verdict at quiescence. *)

val observe : t -> Obs.Metrics.t -> unit
(** Accumulate {!stats} into counters [edge.accepted],
    [edge.disconnects], [edge.hello], [edge.write], [edge.post],
    [edge.scan], [edge.reshard], [edge.protocol_errors],
    [edge.op_errors] and [edge.fiber_errors]. *)

type t = { cfd : Unix.file_descr }

let connect ?(host = "127.0.0.1") ~port () =
  let cfd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect cfd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
  (try Unix.setsockopt cfd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
  { cfd }

let close t = try Unix.close t.cfd with Unix.Unix_error _ -> ()
let fd t = t.cfd

let send_raw t b =
  let n = Bytes.length b in
  let sent = ref 0 in
  while !sent < n do
    sent := !sent + Unix.write t.cfd b !sent (n - !sent)
  done

let read_exact t buf off len =
  let got = ref 0 in
  while !got < len do
    match Unix.read t.cfd buf (off + !got) (len - !got) with
    | 0 -> raise End_of_file
    | n -> got := !got + n
  done

let request t req =
  match
    send_raw t (Wire.encode_request req);
    let hdr = Bytes.create 4 in
    read_exact t hdr 0 4;
    match Wire.decode_length hdr with
    | Error _ as e -> e
    | Ok n ->
      let payload = Bytes.create n in
      read_exact t payload 0 n;
      Wire.decode_response payload
  with
  | r -> r
  | exception End_of_file -> Error "edge.client: server closed the connection"
  | exception Unix.Unix_error (e, _, _) ->
    Error (Printf.sprintf "edge.client: %s" (Unix.error_message e))

let hello t =
  match request t Wire.Hello with
  | Ok (Wire.Hello_ok { components }) -> Ok components
  | Ok (Wire.Error m) -> Error m
  | Ok _ -> Error "edge.client: unexpected response to hello"
  | Error _ as e -> e

let write t ~component v =
  match request t (Wire.Write { component; value = v }) with
  | Ok (Wire.Write_ok { id }) -> Ok id
  | Ok (Wire.Error m) -> Error m
  | Ok _ -> Error "edge.client: unexpected response to write"
  | Error _ as e -> e

let post t ~component v =
  match request t (Wire.Post { component; value = v }) with
  | Ok Wire.Post_ok -> Ok ()
  | Ok (Wire.Error m) -> Error m
  | Ok _ -> Error "edge.client: unexpected response to post"
  | Error _ as e -> e

let scan t =
  match request t Wire.Scan with
  | Ok (Wire.Scan_ok items) -> Ok items
  | Ok (Wire.Error m) -> Error m
  | Ok _ -> Error "edge.client: unexpected response to scan"
  | Error _ as e -> e

let reshard t ~shards =
  match request t (Wire.Reshard { shards }) with
  | Ok (Wire.Reshard_ok { epoch }) -> Ok epoch
  | Ok (Wire.Error m) -> Error m
  | Ok _ -> Error "edge.client: unexpected response to reshard"
  | Error _ as e -> e

(** What the TCP front-end serves: any composite-register
    implementation, adapted to a worker-indexed, mutually-excluded op
    surface.

    The unified handle ({!Composite.Composite_intf.t}) is SWMR per
    component and single-process per reader; a socket front-end has
    neither property — any connection may write any component, and ops
    execute on whichever worker domain owns the connection.  This
    module closes the gap: writes to one component are serialized by a
    per-component mutex (the edge {e is} the component's single
    writer), and the scan reader identity is the worker index, so each
    worker is one long-lived reader with its own validated cache.

    Simulator-backed handles (the [shm]/[net]/[byz] registry backends)
    add one more constraint: their ops only run inside a simulator
    coroutine.  {!solo} wraps each op in a single-process simulator run
    under one global lock — semantically a linearizable (fully
    serialized) service, measured honestly as such in E21. *)

type t = {
  label : string;
  components : int;
  caps : Composite.Composite_intf.caps;
      (** The served object's capability record.  [reconfigure] present
          means the edge can reshard the service {e while serving} (the
          wire [Reshard] request); for {!solo} backends the capability
          is re-wrapped so it runs under the same global lock as every
          other op. *)
  write : worker:int -> component:int -> int -> int;
      (** synchronous write; returns the auxiliary id *)
  post : worker:int -> component:int -> int -> unit;
      (** asynchronous write (falls back to [write] where the handle
          has no async channel) *)
  scan : worker:int -> (int * int) array;
      (** one linearizable snapshot: per component (value, aux id) *)
  shutdown : unit -> unit;
      (** quiesce and release; called once, after all ops have
          returned *)
  identities_ok : unit -> (unit, string) result;
      (** exact accounting identities at quiescence (after
          [shutdown]); [Ok ()] where a backend has none to check *)
  counters : unit -> (string * int) list;
      (** backend-side accounting snapshot for reports (may be empty) *)
}

val of_handle :
  label:string ->
  workers:int ->
  ?on_shutdown:(unit -> unit) ->
  int Composite.Snapshot.t ->
  t
(** Serve a real-domain-safe handle (e.g. {!Composite.Multicore}).
    Scans map [worker] to reader [worker mod readers]; writes take the
    component's mutex.  Raises [Invalid_argument] if the handle serves
    fewer readers than [workers] would need ([workers] must be at most
    the handle's reader count, so worker-to-reader identities stay
    disjoint). *)

val solo :
  label:string ->
  run:((unit -> unit) -> unit) ->
  ?on_shutdown:(unit -> unit) ->
  int Composite.Snapshot.t ->
  t
(** Serve a simulator-backed handle: every op body is passed to [run]
    (typically [Sim.run_solo env] or a one-process [Net.Sim.run]) under
    one global mutex. *)

val of_serve :
  ?outer:Serve.outer_impl ->
  ?max_shards:int ->
  shards:int ->
  workers:int ->
  init:int array ->
  unit ->
  t
(** Create {e and start} a sharded serving instance with [workers]
    readers; [post] is the wait-free mailbox channel ({!Serve.post}).
    [max_shards] (default [shards]) bounds what the [caps.reconfigure]
    capability — wired to {!Serve.reshard} — may grow the service to.
    [shutdown] drains the appliers; [identities_ok] then checks the
    lifetime totals ([posted = applied + coalesced] with [pending = 0]
    and the scan-sharing identity) {e and} every per-epoch slice of
    {!Serve.epoch_stats}: non-negative deltas, conservation of posts
    and scans across each epoch boundary, and a final epoch that
    carries nothing out. *)

(** The edge wire protocol: length-prefixed binary frames.

    Every message — request or response — is one {e frame}: a 4-byte
    big-endian payload length followed by that many payload bytes.  The
    first payload byte is the opcode; integer fields are big-endian
    (components as unsigned 32-bit, values and auxiliary ids as signed
    64-bit).  The format is deliberately trivial: the edge exists to
    measure the serving core under socket traffic, not to showcase a
    serialization library.

    Requests: ['H'] hello, ['W'] synchronous write, ['P'] asynchronous
    post, ['S'] snapshot scan, ['R'] reshard (target shard count).
    Responses: ['h'] components count, ['w'] assigned auxiliary id,
    ['p'] post accepted, ['s'] snapshot (count, then [(value, id)]
    pairs), ['r'] reshard done (new epoch), ['e'] error (UTF-8
    message).

    Decoding is total: malformed input is a typed [Error _], never an
    exception — the server turns it into an ['e'] response and a closed
    connection, and stays up. *)

val max_payload : int
(** Upper bound on a frame's payload length (1 MiB).  Larger length
    prefixes are rejected before any allocation. *)

type request =
  | Hello  (** negotiate: learn the backend's component count *)
  | Write of { component : int; value : int }
      (** synchronous write; acked with the auxiliary id after the
          value is in the register *)
  | Post of { component : int; value : int }
      (** asynchronous write; acked on acceptance, may coalesce *)
  | Scan  (** read one linearizable snapshot of all components *)
  | Reshard of { shards : int }
      (** online reconfiguration to [shards] shards; only backends
          whose capability record has [reconfigure] accept it *)

type response =
  | Hello_ok of { components : int }
  | Write_ok of { id : int }
  | Post_ok
  | Scan_ok of (int * int) array  (** per component: (value, aux id) *)
  | Reshard_ok of { epoch : int }
      (** the reshard completed; the service is in [epoch] *)
  | Error of string

(** {2 Encoding} — full frames, header included *)

val encode_request : request -> bytes
val encode_response : response -> bytes

(** {2 Decoding} *)

val decode_length : bytes -> (int, string) result
(** Payload length from a 4-byte header; [Error _] if negative or over
    {!max_payload}. *)

val decode_request : bytes -> (request, string) result
(** Decode a request payload (no header).  Total: unknown opcodes,
    truncated and oversized payloads are [Error _]. *)

val decode_response : bytes -> (response, string) result
(** Decode a response payload (no header); total, as above. *)

val request_label : request -> string
(** ["hello"], ["write"], ["post"], ["scan"] or ["reshard"] — for
    metrics keys. *)

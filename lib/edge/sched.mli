(** A tiny effect-based cooperative scheduler for socket fibers.

    Connection handlers are written in direct style; when a socket
    would block they perform {!await_readable}/{!await_writable}, which
    suspends the fiber (capturing its continuation via [Effect.Deep])
    until one [Unix.select]-driven event loop — one scheduler per
    worker domain, no cross-domain state — reports the descriptor
    ready.  This is the "effect-based accept loop" of the edge: the
    accept fiber and every connection fiber multiplex cooperatively on
    a single domain, and the domain pool runs one scheduler each.

    Fibers must only await descriptors in non-blocking mode and must
    be prepared for {!Cancelled} to be raised at any await point (use
    [Fun.protect] to release descriptors); cancellation is how the
    loop tears down idle connections at shutdown. *)

type t

exception Cancelled
(** Raised inside a fiber blocked at an await point when the loop
    cancels it ({!cancel_fd} or the [run] grace deadline). *)

val create : ?on_error:(exn -> unit) -> unit -> t
(** A fresh scheduler.  [on_error] (default: ignore) receives any
    exception that escapes a fiber other than {!Cancelled}. *)

val spawn : t -> (unit -> unit) -> unit
(** Queue a new fiber.  May be called from inside a running fiber. *)

val await_readable : Unix.file_descr -> unit
val await_writable : Unix.file_descr -> unit
(** Suspend the calling fiber until the descriptor is ready.  Must be
    called from a fiber of the scheduler currently running. *)

val cancel_fd : t -> Unix.file_descr -> unit
(** Cancel every fiber currently awaiting this descriptor (they resume
    with {!Cancelled}). *)

val alive : t -> int
(** Fibers spawned and not yet finished. *)

val run :
  ?grace:float -> ?on_stop:(unit -> unit) -> stop:(unit -> bool) -> t -> unit
(** Run fibers until none remain.  Once [stop ()] first returns [true],
    [on_stop] fires (use it to {!cancel_fd} the accept socket), and
    fibers still blocked after [grace] seconds (default 1.0) are
    cancelled; fibers that finish on their own (e.g. because the peer
    closed) need no cancellation.  [stop] is polled between select
    rounds (~20ms). *)

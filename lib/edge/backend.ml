type t = {
  label : string;
  components : int;
  caps : Composite.Composite_intf.caps;
  write : worker:int -> component:int -> int -> int;
  post : worker:int -> component:int -> int -> unit;
  scan : worker:int -> (int * int) array;
  shutdown : unit -> unit;
  identities_ok : unit -> (unit, string) result;
  counters : unit -> (string * int) list;
}

let items_to_pairs items =
  Array.map (fun it -> (it.Composite.Item.v, it.Composite.Item.id)) items

let check_component ~label ~components component =
  if component < 0 || component >= components then
    invalid_arg
      (Printf.sprintf "%s: component %d out of range 0..%d" label component
         (components - 1))

let of_handle ~label ~workers ?(on_shutdown = fun () -> ())
    (h : int Composite.Snapshot.t) =
  if workers < 1 then invalid_arg "Edge.Backend.of_handle: workers must be >= 1";
  if workers > h.Composite.Snapshot.readers then
    invalid_arg
      (Printf.sprintf
         "Edge.Backend.of_handle: %d workers but the handle serves only %d \
          readers"
         workers h.Composite.Snapshot.readers);
  let components = h.Composite.Snapshot.components in
  (* The edge is the single writer of every component; a mutex per
     component restores SWMR no matter which connections write it. *)
  let locks = Array.init components (fun _ -> Mutex.create ()) in
  let write ~worker:_ ~component v =
    check_component ~label ~components component;
    Mutex.lock locks.(component);
    Fun.protect
      ~finally:(fun () -> Mutex.unlock locks.(component))
      (fun () -> h.Composite.Snapshot.update ~writer:component v)
  in
  let readers = min workers h.Composite.Snapshot.readers in
  let scan ~worker =
    items_to_pairs (h.Composite.Snapshot.scan_items ~reader:(worker mod readers))
  in
  {
    label;
    components;
    caps = h.Composite.Snapshot.caps;
    write;
    post = (fun ~worker ~component v -> ignore (write ~worker ~component v : int));
    scan;
    shutdown = on_shutdown;
    identities_ok = (fun () -> Ok ());
    counters = (fun () -> []);
  }

let solo ~label ~run ?(on_shutdown = fun () -> ())
    (h : int Composite.Snapshot.t) =
  let components = h.Composite.Snapshot.components in
  let lock = Mutex.create () in
  (* One op at a time: the handle's ops exist only inside a simulator
     coroutine, so each is its own single-process run. *)
  let locked f =
    Mutex.lock lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock lock)
      (fun () ->
        let out = ref None in
        run (fun () -> out := Some (f ()));
        match !out with
        | Some v -> v
        | None -> invalid_arg (label ^ ": simulator run dropped the op"))
  in
  let write ~worker:_ ~component v =
    check_component ~label ~components component;
    locked (fun () -> h.Composite.Snapshot.update ~writer:component v)
  in
  let scan ~worker:_ =
    locked (fun () -> items_to_pairs (h.Composite.Snapshot.scan_items ~reader:0))
  in
  (* A reconfigure capability, like every other op, only runs inside a
     simulator coroutine — route it through the same lock. *)
  let caps =
    let hc = h.Composite.Snapshot.caps in
    {
      hc with
      Composite.Composite_intf.reconfigure =
        Option.map
          (fun f ~shards -> locked (fun () -> f ~shards))
          hc.Composite.Composite_intf.reconfigure;
    }
  in
  {
    label;
    components;
    caps;
    write;
    post = (fun ~worker ~component v -> ignore (write ~worker ~component v : int));
    scan;
    shutdown = on_shutdown;
    identities_ok = (fun () -> Ok ());
    counters = (fun () -> []);
  }

let of_serve ?outer ?max_shards ~shards ~workers ~init () =
  if workers < 1 then invalid_arg "Edge.Backend.of_serve: workers must be >= 1";
  let srv = Serve.create ?outer ?max_shards ~shards ~readers:workers ~init () in
  Serve.start srv;
  let components = Array.length init in
  let label =
    Printf.sprintf "serve[S=%d,%s]" shards
      (Serve.outer_impl_name (match outer with None -> Serve.Outer_afek | Some o -> o))
  in
  let locks = Array.init components (fun _ -> Mutex.create ()) in
  let with_component component f =
    check_component ~label ~components component;
    Mutex.lock locks.(component);
    Fun.protect ~finally:(fun () -> Mutex.unlock locks.(component)) f
  in
  let write ~worker:_ ~component v =
    with_component component (fun () -> Serve.update srv ~writer:component v)
  in
  let post ~worker:_ ~component v =
    with_component component (fun () -> Serve.post srv ~writer:component v)
  in
  let scan ~worker =
    items_to_pairs (Serve.scan_items srv ~reader:(worker mod workers))
  in
  (* Accounting must close {e per epoch}, not only as lifetime totals:
     a counter double-bumped across a reshard boundary cancels out in
     the cumulative sums but shows up as a negative carry or a broken
     per-epoch identity (see {!Serve.epoch_stats}). *)
  let check_epoch (e : Serve.epoch_stats) =
    let fail fmt = Printf.ksprintf (fun m -> Some m) fmt in
    if
      e.Serve.e_posted < 0 || e.Serve.e_applied < 0 || e.Serve.e_coalesced < 0
      || e.Serve.e_publishes < 0
      || e.Serve.e_carried_in < 0
      || e.Serve.e_carried_out < 0
      || e.Serve.e_scans_requested < 0
      || e.Serve.e_scans_combined < 0
      || e.Serve.e_scans_performed < 0
      || e.Serve.e_inflight_in < 0
      || e.Serve.e_inflight_out < 0
    then fail "serve: epoch %d has a negative counter delta" e.Serve.e_epoch
    else if
      e.Serve.e_posted + e.Serve.e_carried_in
      <> e.Serve.e_applied + e.Serve.e_coalesced + e.Serve.e_carried_out
    then
      fail "serve: epoch %d: posted %d + carried_in %d <> applied %d + \
            coalesced %d + carried_out %d"
        e.Serve.e_epoch e.Serve.e_posted e.Serve.e_carried_in
        e.Serve.e_applied e.Serve.e_coalesced e.Serve.e_carried_out
    else if
      e.Serve.e_scans_requested + e.Serve.e_inflight_in
      <> e.Serve.e_scans_combined + e.Serve.e_scans_performed
         + e.Serve.e_inflight_out
    then
      fail "serve: epoch %d: scans_requested %d + inflight_in %d <> \
            combined %d + performed %d + inflight_out %d"
        e.Serve.e_epoch e.Serve.e_scans_requested e.Serve.e_inflight_in
        e.Serve.e_scans_combined e.Serve.e_scans_performed
        e.Serve.e_inflight_out
    else None
  in
  let identities_ok () =
    let st = Serve.stats srv in
    let fail fmt = Printf.ksprintf (fun m -> Result.Error m) fmt in
    if st.Serve.pending <> 0 then
      fail "serve: %d posts still pending after drain" st.Serve.pending
    else if st.Serve.posted <> st.Serve.applied + st.Serve.coalesced then
      fail "serve: posted %d <> applied %d + coalesced %d" st.Serve.posted
        st.Serve.applied st.Serve.coalesced
    else if
      st.Serve.scans_requested
      <> st.Serve.scans_combined + st.Serve.scans_performed
    then
      fail "serve: scans_requested %d <> combined %d + performed %d"
        st.Serve.scans_requested st.Serve.scans_combined
        st.Serve.scans_performed
    else
      let eps = Serve.epoch_stats srv in
      let per_epoch =
        Array.fold_left
          (fun acc e -> match acc with Some _ -> acc | None -> check_epoch e)
          None eps
      in
      match per_epoch with
      | Some m -> Result.Error m
      | None ->
        let last = eps.(Array.length eps - 1) in
        if last.Serve.e_carried_out <> 0 || last.Serve.e_inflight_out <> 0 then
          fail
            "serve: final epoch %d still carries work out (posts %d, \
             scans %d)"
            last.Serve.e_epoch last.Serve.e_carried_out
            last.Serve.e_inflight_out
        else Ok ()
  in
  let counters () =
    let st = Serve.stats srv in
    [
      ("epoch", Serve.epoch srv);
      ("posted", st.Serve.posted);
      ("applied", st.Serve.applied);
      ("coalesced", st.Serve.coalesced);
      ("pending", st.Serve.pending);
      ("publishes", st.Serve.publishes);
      ("cache_hits", st.Serve.hits);
      ("scans_requested", st.Serve.scans_requested);
      ("scans_combined", st.Serve.scans_combined);
      ("scans_performed", st.Serve.scans_performed);
      ("stalls", st.Serve.stalls);
    ]
  in
  {
    label;
    components;
    caps = Serve.caps srv;
    write;
    post;
    scan;
    shutdown = (fun () -> Serve.shutdown srv);
    identities_ok;
    counters;
  }

(** A minimal blocking client for the edge protocol — one request in
    flight per connection.  Used by the unit tests and smoke checks;
    the load generator ({!Workload.Loadgen}) drives its own
    non-blocking engine instead. *)

type t

val connect : ?host:string -> port:int -> unit -> t
(** TCP connect (default host 127.0.0.1), [TCP_NODELAY] set. *)

val close : t -> unit

val fd : t -> Unix.file_descr
(** The raw socket — for tests that abort mid-request on purpose. *)

val request : t -> Wire.request -> (Wire.response, string) result
(** Send one frame, block for the reply.  [Error _] on protocol
    violations or a closed peer. *)

(** Typed wrappers over {!request}; an ['e'] response or a mismatched
    response kind is [Error _]. *)

val hello : t -> (int, string) result
val write : t -> component:int -> int -> (int, string) result
val post : t -> component:int -> int -> (unit, string) result
val scan : t -> ((int * int) array, string) result

val reshard : t -> shards:int -> (int, string) result
(** Online reconfiguration to [shards] shards; [Ok epoch] is the
    configuration epoch after the switch.  [Error _] if the served
    backend has no [reconfigure] capability. *)

val send_raw : t -> bytes -> unit
(** Write raw bytes on the socket — for malformed-frame tests. *)

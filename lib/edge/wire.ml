let max_payload = 1 lsl 20

type request =
  | Hello
  | Write of { component : int; value : int }
  | Post of { component : int; value : int }
  | Scan
  | Reshard of { shards : int }

type response =
  | Hello_ok of { components : int }
  | Write_ok of { id : int }
  | Post_ok
  | Scan_ok of (int * int) array
  | Reshard_ok of { epoch : int }
  | Error of string

let request_label = function
  | Hello -> "hello"
  | Write _ -> "write"
  | Post _ -> "post"
  | Scan -> "scan"
  | Reshard _ -> "reshard"

(* Frames carry a 4-byte big-endian payload length; [framed n] allocates
   the whole frame and returns it with the header already written, so
   encoders fill from offset 4. *)
let framed n =
  let b = Bytes.create (4 + n) in
  Bytes.set_int32_be b 0 (Int32.of_int n);
  b

let encode_request = function
  | Hello ->
    let b = framed 1 in
    Bytes.set b 4 'H';
    b
  | Write { component; value } ->
    let b = framed 13 in
    Bytes.set b 4 'W';
    Bytes.set_int32_be b 5 (Int32.of_int component);
    Bytes.set_int64_be b 9 (Int64.of_int value);
    b
  | Post { component; value } ->
    let b = framed 13 in
    Bytes.set b 4 'P';
    Bytes.set_int32_be b 5 (Int32.of_int component);
    Bytes.set_int64_be b 9 (Int64.of_int value);
    b
  | Scan ->
    let b = framed 1 in
    Bytes.set b 4 'S';
    b
  | Reshard { shards } ->
    let b = framed 5 in
    Bytes.set b 4 'R';
    Bytes.set_int32_be b 5 (Int32.of_int shards);
    b

let encode_response = function
  | Hello_ok { components } ->
    let b = framed 5 in
    Bytes.set b 4 'h';
    Bytes.set_int32_be b 5 (Int32.of_int components);
    b
  | Write_ok { id } ->
    let b = framed 9 in
    Bytes.set b 4 'w';
    Bytes.set_int64_be b 5 (Int64.of_int id);
    b
  | Post_ok ->
    let b = framed 1 in
    Bytes.set b 4 'p';
    b
  | Scan_ok items ->
    let n = Array.length items in
    let b = framed (5 + (16 * n)) in
    Bytes.set b 4 's';
    Bytes.set_int32_be b 5 (Int32.of_int n);
    Array.iteri
      (fun i (v, id) ->
        Bytes.set_int64_be b (9 + (16 * i)) (Int64.of_int v);
        Bytes.set_int64_be b (17 + (16 * i)) (Int64.of_int id))
      items;
    b
  | Reshard_ok { epoch } ->
    let b = framed 5 in
    Bytes.set b 4 'r';
    Bytes.set_int32_be b 5 (Int32.of_int epoch);
    b
  | Error msg ->
    let msg =
      if String.length msg <= max_payload - 1 then msg
      else String.sub msg 0 (max_payload - 1)
    in
    let n = String.length msg in
    let b = framed (1 + n) in
    Bytes.set b 4 'e';
    Bytes.blit_string msg 0 b 5 n;
    b

let decode_length b =
  if Bytes.length b <> 4 then
    Result.Error "edge.wire: length header must be 4 bytes"
  else
    let n = Int32.to_int (Bytes.get_int32_be b 0) in
    if n < 1 then
      Result.Error (Printf.sprintf "edge.wire: bad frame length %d" n)
    else if n > max_payload then
      Result.Error
        (Printf.sprintf "edge.wire: frame length %d exceeds max %d" n
           max_payload)
    else Result.Ok n

let u32 b off = Int32.to_int (Bytes.get_int32_be b off)
let i64 b off = Int64.to_int (Bytes.get_int64_be b off)

let expect_len b n what =
  if Bytes.length b = n then Result.Ok ()
  else
    Result.Error
      (Printf.sprintf "edge.wire: %s payload is %d bytes (expected %d)" what
         (Bytes.length b) n)

let decode_request b =
  if Bytes.length b < 1 then Result.Error "edge.wire: empty request payload"
  else
    match Bytes.get b 0 with
    | 'H' -> Result.map (fun () -> Hello) (expect_len b 1 "hello")
    | 'W' ->
      Result.map
        (fun () -> Write { component = u32 b 1; value = i64 b 5 })
        (expect_len b 13 "write")
    | 'P' ->
      Result.map
        (fun () -> Post { component = u32 b 1; value = i64 b 5 })
        (expect_len b 13 "post")
    | 'S' -> Result.map (fun () -> Scan) (expect_len b 1 "scan")
    | 'R' ->
      Result.map
        (fun () -> Reshard { shards = u32 b 1 })
        (expect_len b 5 "reshard")
    | c ->
      Result.Error (Printf.sprintf "edge.wire: unknown request opcode %C" c)

let decode_response b =
  if Bytes.length b < 1 then Result.Error "edge.wire: empty response payload"
  else
    match Bytes.get b 0 with
    | 'h' ->
      Result.map
        (fun () -> Hello_ok { components = u32 b 1 })
        (expect_len b 5 "hello_ok")
    | 'w' ->
      Result.map
        (fun () -> Write_ok { id = i64 b 1 })
        (expect_len b 9 "write_ok")
    | 'p' -> Result.map (fun () -> Post_ok) (expect_len b 1 "post_ok")
    | 's' ->
      if Bytes.length b < 5 then
        Result.Error "edge.wire: truncated snapshot header"
      else
        let n = u32 b 1 in
        if n < 0 || Bytes.length b <> 5 + (16 * n) then
          Result.Error
            (Printf.sprintf
               "edge.wire: snapshot of %d items in %d payload bytes" n
               (Bytes.length b))
        else
          Result.Ok
            (Scan_ok
               (Array.init n (fun i ->
                    (i64 b (5 + (16 * i)), i64 b (13 + (16 * i))))))
    | 'r' ->
      Result.map
        (fun () -> Reshard_ok { epoch = u32 b 1 })
        (expect_len b 5 "reshard_ok")
    | 'e' -> Result.Ok (Error (Bytes.sub_string b 1 (Bytes.length b - 1)))
    | c ->
      Result.Error (Printf.sprintf "edge.wire: unknown response opcode %C" c)

open Csim

let of_trace ?(pid = 0) ?(proc_label = Printf.sprintf "p%d") tr =
  let events = ref [] in
  let emit e = events := e :: !events in
  let common ~name ~ph ~ts ~tid extra =
    Json.Obj
      ([
         ("name", Json.Str name);
         ("ph", Json.Str ph);
         ("ts", Json.Int ts);
         ("pid", Json.Int pid);
         ("tid", Json.Int tid);
       ]
      @ extra)
  in
  let procs = Hashtbl.create 8 in
  let see_proc p = if not (Hashtbl.mem procs p) then Hashtbl.add procs p () in
  (* Per-process stacks of open span names; events are emitted in trace
     order, so Chrome's per-track B/E nesting discipline is inherited
     from the emission order of the markers themselves. *)
  let stacks : (int, string list) Hashtbl.t = Hashtbl.create 8 in
  let stack p = Option.value (Hashtbl.find_opt stacks p) ~default:[] in
  let last_step = ref 0 in
  Trace.iter tr (fun e ->
      last_step := max !last_step e.Trace.step;
      match e.Trace.kind with
      | Trace.Note -> (
        match Trace.span_of_note e.Trace.cell with
        | Some (`B, name) ->
          see_proc e.Trace.proc;
          Hashtbl.replace stacks e.Trace.proc (name :: stack e.Trace.proc);
          emit
            (common ~name ~ph:"B" ~ts:e.Trace.step ~tid:e.Trace.proc
               [ ("cat", Json.Str "op") ])
        | Some (`E, _) -> (
          match stack e.Trace.proc with
          | [] -> ()  (* stray end marker: dropping it keeps pairs matched *)
          | name :: rest ->
            Hashtbl.replace stacks e.Trace.proc rest;
            emit
              (common ~name ~ph:"E" ~ts:e.Trace.step ~tid:e.Trace.proc
                 [ ("cat", Json.Str "op") ]))
        | None ->
          see_proc e.Trace.proc;
          emit
            (common ~name:e.Trace.cell ~ph:"i" ~ts:e.Trace.step
               ~tid:e.Trace.proc
               [ ("cat", Json.Str "note"); ("s", Json.Str "t") ]))
      | Trace.Read | Trace.Write ->
        see_proc e.Trace.proc;
        let rw = if e.Trace.kind = Trace.Read then "R" else "W" in
        emit
          (common
             ~name:(Printf.sprintf "%s %s" rw e.Trace.cell)
             ~ph:"i" ~ts:e.Trace.step ~tid:e.Trace.proc
             [
               ("cat", Json.Str "mem");
               ("s", Json.Str "t");
               ( "args",
                 Json.Obj
                   [
                     ("cell", Json.Str e.Trace.cell);
                     ("value", Json.Str e.Trace.value);
                   ] );
             ]));
  (* Close whatever is still open, innermost first, at the final step. *)
  let open_procs =
    List.sort compare
      (Hashtbl.fold (fun p st acc -> if st = [] then acc else p :: acc) stacks [])
  in
  List.iter
    (fun p ->
      List.iter
        (fun name ->
          emit
            (common ~name ~ph:"E" ~ts:!last_step ~tid:p
               [ ("cat", Json.Str "op") ]))
        (stack p))
    open_procs;
  (* Name the per-process tracks. *)
  let tids = List.sort compare (Hashtbl.fold (fun p () acc -> p :: acc) procs []) in
  let metadata =
    List.map
      (fun p ->
        common ~name:"thread_name" ~ph:"M" ~ts:0 ~tid:p
          [ ("args", Json.Obj [ ("name", Json.Str (proc_label p)) ]) ])
      tids
  in
  Json.Arr (metadata @ List.rev !events)

let export ~path ?pid ?proc_label tr =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Json.to_channel ~minify:false oc (of_trace ?pid ?proc_label tr))

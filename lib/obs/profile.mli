(** The hot-cell contention profiler.

    Aggregates one simulation run into a contention picture: per-cell
    read/write counts ranked by total traffic ([Sim.cell_stats]),
    per-process event counts, and {e switch adjacency} — how often each
    cell was the last cell touched before, or the first cell touched
    after, a context switch.  Cells with high switch adjacency are where
    interleavings actually interact: for the paper's construction they
    should be the recursion's inner [Y0] registers, which every scan and
    every Writer-0 update funnel through (experiment E14). *)

type cell_row = {
  cell : string;
  reads : int;
  writes : int;
  switch_adj : int;
      (** events on this cell immediately adjacent to a context switch
          (0 when the env was created with [~trace:false]) *)
}

type t = {
  rows : cell_row list;  (** ranked by [reads + writes], descending *)
  proc_events : (int * int) list;  (** per-process event counts, by id *)
  switches : int;  (** context switches observed in the trace *)
  total_accesses : int;
  space_bits : int;
}

val of_env : Csim.Sim.env -> t
(** Profile a finished (or quiescent) environment.  Cell counters come
    from [Sim.cell_stats]; per-process counts, switches and adjacency
    are reconstructed from the trace and are all zero/empty when tracing
    was disabled.  With a capacity-bounded trace they describe the
    retained suffix. *)

val top : ?n:int -> t -> cell_row list
(** The [n] (default 10) hottest cells. *)

val pp : Format.formatter -> t -> unit
(** Ranked hot-cell table followed by the per-process summary. *)

val to_json : t -> Json.t

val snapshot : Metrics.t -> prefix:string -> Csim.Sim.env -> unit
(** Record a per-run metric snapshot into a registry: gauges
    [<prefix>.steps], [<prefix>.space_bits], [<prefix>.cells], counter
    [<prefix>.accesses], and histogram [<prefix>.cell_accesses] (one
    observation per cell, so the percentiles summarize how skewed the
    cell traffic is). *)

(** Causal operation spans across the message-passing boundary.

    {!Span} reconstructs intervals from a simulator trace ring after the
    fact; this module is the {e online} collector the net layer feeds
    directly.  [Net.Abd] opens an {!kind.Op} span per read/write, a
    {!kind.Phase} span per query/write phase, an async {!kind.Rpc} span
    per replica request (closed by the accepted ack, left unclosed by a
    crashed replica) and {!kind.Wait} spans for retransmit-backoff
    windows, all stitched to the composite-level Scan/Update markers
    ([Composite.Snapshot.record ~note]) via {!note}.  Each span carries
    a trace id (one per top-level operation), its parent span id, and
    any extra [args] (e.g. the Lamport timestamps stamped on the wire) —
    enough to export one Chrome trace in which a quorum read is a tree:
    op -> phase -> per-replica rpcs, with flow arrows joining the
    message timeline (see [Net.Timeline.export_merged]). *)

type kind =
  | Op  (** one ABD-level read/write *)
  | Phase  (** one query/write quorum phase *)
  | Rpc  (** one request to one replica, send -> accepted ack *)
  | Wait  (** a retransmit-backoff window *)
  | Note  (** composite-level span from begin/end note markers *)

type span = {
  id : int;  (** unique within the collector; also the async-event id *)
  trace : int;  (** groups every span of one top-level operation *)
  parent : int option;  (** parent span id *)
  kind : kind;
  name : string;
  track : int;  (** client/process id; becomes the Chrome [tid] *)
  t0 : int;
  mutable t1 : int;
  mutable closed : bool;
  mutable args : (string * Json.t) list;
}

type t

val create : unit -> t

val fresh_trace : t -> int
(** A new trace id (sequential, deterministic). *)

val start :
  t ->
  ?parent:span ->
  ?trace:int ->
  ?args:(string * Json.t) list ->
  kind:kind ->
  track:int ->
  at:int ->
  string ->
  span
(** Open a span.  When [?parent] is omitted it defaults to the innermost
    open {!kind.Note} span of [track] (so ABD ops nest under the
    composite Scan/Update that issued them); when [?trace] is omitted it
    inherits the parent's trace, or a fresh one at the root. *)

val finish : t -> ?args:(string * Json.t) list -> at:int -> span -> unit

val note : t -> track:int -> at:int -> string -> unit
(** A note sink ([string -> unit] after partial application) accepting
    the same [Trace.span_begin]/[span_end] markers as {!Span.emitter}:
    begin markers open a {!kind.Note} span, end markers close the
    innermost one on that track (a name disagreement counts into
    {!mismatched} and is recorded in the span's args).  Non-marker notes
    are ignored, as are stray end markers. *)

val current : t -> track:int -> span option
(** The innermost open note span on [track], if any. *)

val spans : t -> span list
(** All spans in creation order. *)

val span_count : t -> int

val unclosed_count : t -> int
(** Spans never finished — crash-stopped replicas' rpcs, operations cut
    off by the end of the run. *)

val mismatched : t -> int
(** Note end markers whose name disagreed with the span they closed. *)

val to_events : ?pid:int -> t -> Json.t list
(** Chrome trace events: Op/Phase/Note spans as ["X"] complete events
    (the viewer nests by containment), Rpc/Wait as async ["b"]/["e"]
    pairs keyed by span id so concurrent per-replica rpcs overlap freely
    on the client track.  Unclosed spans extend to the last time seen
    and carry ["unclosed": true] in their args. *)

val pp : Format.formatter -> t -> unit
(** Indented per-track listing, unclosed/mismatched spans flagged. *)

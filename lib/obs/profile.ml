open Csim

type cell_row = { cell : string; reads : int; writes : int; switch_adj : int }

type t = {
  rows : cell_row list;
  proc_events : (int * int) list;
  switches : int;
  total_accesses : int;
  space_bits : int;
}

let of_env env =
  let stats = Sim.cell_stats env in
  (* Trace walk: per-process event counts, context switches, and the
     cells touched on either side of each switch. *)
  let adj : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let procs : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let bump tbl k by =
    Hashtbl.replace tbl k (by + Option.value (Hashtbl.find_opt tbl k) ~default:0)
  in
  let switches = ref 0 in
  let prev : Trace.event option ref = ref None in
  Trace.iter (Sim.trace env) (fun e ->
      if e.Trace.kind <> Trace.Note then begin
        bump procs e.Trace.proc 1;
        (match !prev with
        | Some p when p.Trace.proc <> e.Trace.proc ->
          incr switches;
          bump adj p.Trace.cell 1;
          bump adj e.Trace.cell 1
        | _ -> ());
        prev := Some e
      end);
  let rows =
    List.map
      (fun (s : Sim.cell_stat) ->
        {
          cell = s.Sim.cell;
          reads = s.Sim.creads;
          writes = s.Sim.cwrites;
          switch_adj = Option.value (Hashtbl.find_opt adj s.Sim.cell) ~default:0;
        })
      stats
  in
  let rows =
    List.stable_sort
      (fun a b -> compare (b.reads + b.writes) (a.reads + a.writes))
      rows
  in
  {
    rows;
    proc_events =
      List.sort compare (Hashtbl.fold (fun p n acc -> (p, n) :: acc) procs []);
    switches = !switches;
    total_accesses = List.fold_left (fun a r -> a + r.reads + r.writes) 0 rows;
    space_bits = Sim.space_bits env;
  }

let top ?(n = 10) t = List.filteri (fun i _ -> i < n) t.rows

let pp fmt t =
  let total = max 1 t.total_accesses in
  Format.fprintf fmt "@[<v>%-4s %-16s %8s %8s %8s %7s %11s@,"
    "rank" "cell" "reads" "writes" "total" "share" "switch-adj";
  List.iteri
    (fun i r ->
      Format.fprintf fmt "%-4d %-16s %8d %8d %8d %6.1f%% %11d@," (i + 1) r.cell
        r.reads r.writes (r.reads + r.writes)
        (100. *. float_of_int (r.reads + r.writes) /. float_of_int total)
        r.switch_adj)
    t.rows;
  Format.fprintf fmt "@,total accesses: %d  context switches: %d  space: %d bits@,"
    t.total_accesses t.switches t.space_bits;
  if t.proc_events <> [] then begin
    Format.fprintf fmt "events per process:";
    List.iter
      (fun (p, n) -> Format.fprintf fmt " p%d=%d" p n)
      t.proc_events;
    Format.fprintf fmt "@,"
  end;
  Format.fprintf fmt "@]"

let to_json t =
  Json.Obj
    [
      ( "cells",
        Json.Arr
          (List.map
             (fun r ->
               Json.Obj
                 [
                   ("cell", Json.Str r.cell);
                   ("reads", Json.Int r.reads);
                   ("writes", Json.Int r.writes);
                   ("switch_adj", Json.Int r.switch_adj);
                 ])
             t.rows) );
      ( "proc_events",
        Json.Obj
          (List.map
             (fun (p, n) -> (Printf.sprintf "p%d" p, Json.Int n))
             t.proc_events) );
      ("switches", Json.Int t.switches);
      ("total_accesses", Json.Int t.total_accesses);
      ("space_bits", Json.Int t.space_bits);
    ]

let snapshot m ~prefix env =
  let p = prefix in
  Metrics.set (Metrics.gauge m (p ^ ".steps")) (float_of_int (Sim.now env));
  Metrics.set
    (Metrics.gauge m (p ^ ".space_bits"))
    (float_of_int (Sim.space_bits env));
  let stats = Sim.cell_stats env in
  Metrics.set (Metrics.gauge m (p ^ ".cells")) (float_of_int (List.length stats));
  let acc = Metrics.counter m (p ^ ".accesses") in
  let per_cell = Metrics.histogram m (p ^ ".cell_accesses") in
  List.iter
    (fun (s : Sim.cell_stat) ->
      Metrics.incr ~by:(s.Sim.creads + s.Sim.cwrites) acc;
      Metrics.observe per_cell (s.Sim.creads + s.Sim.cwrites))
    stats

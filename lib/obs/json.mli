(** A minimal JSON tree, printer and parser.

    The observability layer emits machine-readable artifacts
    ([BENCH.json], Chrome trace-event files, metric snapshots) and the
    test suite validates them structurally; both directions live here so
    the repository needs no external JSON dependency.  The printer emits
    standard JSON (UTF-8 passthrough, control characters escaped); the
    parser accepts standard JSON and is used by the tests to check
    well-formedness of exported files. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : ?minify:bool -> t -> string
(** Render; [minify] (default [true]) suppresses whitespace.  With
    [~minify:false], arrays and objects are broken over indented
    lines.  Finite floats print with enough digits to round-trip
    exactly; non-finite floats render as the conventional bare tokens
    [NaN] / [Infinity] / [-Infinity] (outside strict JSON, but
    accepted by {!of_string} and by Python's [json]) rather than
    corrupting the value into [null]. *)

val to_channel : ?minify:bool -> out_channel -> t -> unit

val of_string : string -> (t, string) result
(** Parse a complete JSON document; the error string carries a byte
    offset.  Numbers without [.], [e] or [E] parse as [Int] (falling
    back to [Float] on overflow), all others as [Float]; the
    non-finite tokens [NaN] / [Infinity] / [-Infinity] parse as the
    corresponding [Float]. *)

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] for missing fields or non-objects. *)

(** The perf-regression gate: diff a BENCH.json document against a
    committed baseline under per-metric tolerance policies.

    A baseline file is self-describing: it carries the tolerance specs
    alongside the snapshot it protects, so the gate's contract is
    reviewable (and tunable) in the same diff as the numbers.  The gate
    covers the E-series experiment rows only; the free-form ["metrics"]
    section and wall-clock-derived fields (matched by the default skip
    patterns) are advisory.  Deterministic fields — message counts,
    verdict tallies, logical-time percentiles — default to exact
    equality, so a regression in any reproducible quantity fails CI. *)

type policy =
  | Exact  (** values must be equal (ints and floats compare numerically) *)
  | Band of float
      (** numeric values must lie within [base +/- band * max(|base|, 1)] *)
  | Skip  (** field is not gated *)

type spec = { pattern : string; policy : policy }
(** [pattern] is a ['*']-glob matched against the full address
    ["EXP[i]"-less, i.e. "EXP[i].field" is matched as the full string]
    and against the bare field name; first matching spec wins.  Fields
    matching no spec default to [Exact] ([Band 0.5] for floats). *)

type severity = Regression | Info

type issue = { path : string; severity : severity; msg : string }

type t = { tolerances : spec list; snapshot : Json.t }

val default_tolerances : spec list
(** Skip patterns for wall-clock and scheduling-dependent fields
    ([*seconds*], [*_ns], [*_ratio], ...). *)

val default_band : float

val make : ?tolerances:spec list -> Json.t -> t
(** Wrap a BENCH.json document as a baseline (dropping the volatile
    [generated_at] stamp). *)

val to_json : t -> Json.t
val of_json : Json.t -> (t, string) result

val load : string -> (t, string) result
val save : string -> t -> unit

val compare_doc : t -> Json.t -> issue list
(** Diff a current BENCH.json document against the baseline: missing
    experiments/rows/fields and out-of-tolerance values are
    {!Regression}s; new experiments/rows/fields are {!Info}.  Rows are
    matched by index within their experiment.  Sorted by path. *)

val regressions : issue list -> issue list

val glob_match : string -> string -> bool
(** [glob_match pattern s]: ['*'] matches any substring. *)

val pp_issue : Format.formatter -> issue -> unit
val pp : Format.formatter -> issue list -> unit

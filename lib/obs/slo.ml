type pct = P50 | P90 | P99 | P999

let pct_label = function
  | P50 -> "p50"
  | P90 -> "p90"
  | P99 -> "p99"
  | P999 -> "p999"

let pct_value = function P50 -> 50. | P90 -> 90. | P99 -> 99. | P999 -> 99.9

type budget = {
  op : string;  (* op class, e.g. "net/scan" *)
  metric : string;  (* histogram name in the registry *)
  pct : pct;
  limit : int;  (* same unit as the histogram's samples *)
  unit_ : string;  (* "steps", "ticks", "ns", ... display only *)
}

type verdict = {
  budget : budget;
  observed : int option;  (* None: histogram absent or empty *)
  count : int;
  ok : bool;  (* vacuously true when absent *)
}

let budget ~op ~metric ~pct ~limit ~unit_ = { op; metric; pct; limit; unit_ }

(* Budgets for the repo's own campaigns.  The sim-backed classes are in
   deterministic logical time (scheduler steps / network ticks), so the
   limits are exact contracts, set ~2x above the measured p999 of the
   default campaigns; the serve class is wall-clock and its limits are
   deliberately loose (order-of-magnitude guards only). *)
let default_budgets =
  [
    budget ~op:"shm/scan" ~metric:"campaign.shm.scan.latency" ~pct:P999
      ~limit:600 ~unit_:"steps";
    budget ~op:"shm/update" ~metric:"campaign.shm.update.latency" ~pct:P999
      ~limit:300 ~unit_:"steps";
    budget ~op:"net/scan" ~metric:"netchaos.scan.latency" ~pct:P999
      ~limit:40_000 ~unit_:"ticks";
    budget ~op:"net/update" ~metric:"netchaos.update.latency" ~pct:P999
      ~limit:20_000 ~unit_:"ticks";
    budget ~op:"byz/scan" ~metric:"byzchaos.scan.latency" ~pct:P999
      ~limit:6_000 ~unit_:"steps";
    budget ~op:"byz/update" ~metric:"byzchaos.update.latency" ~pct:P999
      ~limit:3_000 ~unit_:"steps";
    budget ~op:"serve/scan" ~metric:"serve.scan.latency_ns" ~pct:P999
      ~limit:1_000_000_000 ~unit_:"ns";
    budget ~op:"serve/update" ~metric:"serve.update.latency_ns" ~pct:P999
      ~limit:2_000_000_000 ~unit_:"ns";
    budget ~op:"serve/post" ~metric:"serve.post.latency_ns" ~pct:P999
      ~limit:1_000_000_000 ~unit_:"ns";
    (* The network edge measures whole request round-trips over loopback
       sockets (open-loop latency includes queueing behind the arrival
       process), so these are loose order-of-magnitude guards like the
       serve class, not tight contracts. *)
    budget ~op:"edge/scan" ~metric:"edge.scan.latency_ns" ~pct:P999
      ~limit:2_000_000_000 ~unit_:"ns";
    budget ~op:"edge/write" ~metric:"edge.write.latency_ns" ~pct:P999
      ~limit:5_000_000_000 ~unit_:"ns";
    budget ~op:"edge/post" ~metric:"edge.post.latency_ns" ~pct:P999
      ~limit:2_000_000_000 ~unit_:"ns";
  ]

let check_budget m b =
  match Metrics.find_histogram m b.metric with
  | None -> { budget = b; observed = None; count = 0; ok = true }
  | Some h ->
    let n = Metrics.count h in
    if n = 0 then { budget = b; observed = None; count = 0; ok = true }
    else
      let v = Metrics.percentile h (pct_value b.pct) in
      { budget = b; observed = Some v; count = n; ok = v <= b.limit }

let check ?(budgets = default_budgets) m = List.map (check_budget m) budgets

let all_ok vs = List.for_all (fun v -> v.ok) vs

let verdict_json v =
  Json.Obj
    [
      ("op", Json.Str v.budget.op);
      ("metric", Json.Str v.budget.metric);
      ("pct", Json.Str (pct_label v.budget.pct));
      ("limit", Json.Int v.budget.limit);
      ("unit", Json.Str v.budget.unit_);
      ( "observed",
        match v.observed with None -> Json.Null | Some x -> Json.Int x );
      ("count", Json.Int v.count);
      ("ok", Json.Bool v.ok);
    ]

let to_json vs = Json.Arr (List.map verdict_json vs)

let pp_verdict fmt v =
  Format.fprintf fmt "%-12s %s(%s) %s  budget %d %s%s" v.budget.op
    (pct_label v.budget.pct) v.budget.metric
    (match v.observed with
    | None -> "-"
    | Some x -> string_of_int x)
    v.budget.limit v.budget.unit_
    (match v.observed with
    | None -> "  (no data)"
    | Some _ -> if v.ok then "  OK" else "  VIOLATED")

let pp fmt vs =
  List.iter (fun v -> Format.fprintf fmt "%a@." pp_verdict v) vs

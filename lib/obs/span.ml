open Csim

type t = {
  name : string;
  proc : int;
  t0 : int;
  t1 : int;
  depth : int;
  closed : bool;
  mismatch : string option;
}

let emitter env text = Sim.note env ~proc:(Sim.self ()) text

type open_span = { o_name : string; o_t0 : int; o_depth : int }

let of_trace ?metrics tr =
  let mismatched =
    Option.map (fun m -> Metrics.counter m "span.mismatched") metrics
  in
  let stacks : (int, open_span list) Hashtbl.t = Hashtbl.create 8 in
  let out = ref [] in
  let last_step = ref 0 in
  let stack p = Option.value (Hashtbl.find_opt stacks p) ~default:[] in
  Trace.iter tr (fun e ->
      last_step := max !last_step e.Trace.step;
      if e.Trace.kind = Trace.Note then
        match Trace.span_of_note e.Trace.cell with
        | None -> ()
        | Some (`B, name) ->
          let st = stack e.Trace.proc in
          Hashtbl.replace stacks e.Trace.proc
            ({ o_name = name; o_t0 = e.Trace.step; o_depth = List.length st }
            :: st)
        | Some (`E, name) -> (
          match stack e.Trace.proc with
          | [] -> ()  (* stray end marker *)
          | o :: rest ->
            let mismatch =
              if String.equal name o.o_name then None
              else begin
                Option.iter Metrics.incr mismatched;
                Some name
              end
            in
            Hashtbl.replace stacks e.Trace.proc rest;
            out :=
              {
                name = o.o_name;
                proc = e.Trace.proc;
                t0 = o.o_t0;
                t1 = e.Trace.step;
                depth = o.o_depth;
                closed = true;
                mismatch;
              }
              :: !out));
  (* Close anything left open (crashed mid-operation, truncated trace). *)
  Hashtbl.iter
    (fun proc st ->
      List.iter
        (fun o ->
          out :=
            {
              name = o.o_name;
              proc;
              t0 = o.o_t0;
              t1 = !last_step;
              depth = o.o_depth;
              closed = false;
              mismatch = None;
            }
            :: !out)
        st)
    stacks;
  List.sort
    (fun a b ->
      match compare a.t0 b.t0 with 0 -> compare a.depth b.depth | c -> c)
    !out

let max_depth spans = List.fold_left (fun acc s -> max acc s.depth) (-1) spans

let mismatch_count spans =
  List.fold_left
    (fun acc s -> if Option.is_some s.mismatch then acc + 1 else acc)
    0 spans

let pp fmt s =
  Format.fprintf fmt "p%d %s%s [%d, %d] depth %d%s%s" s.proc
    (String.make (2 * s.depth) ' ')
    s.name s.t0 s.t1 s.depth
    (if s.closed then "" else " (unclosed)")
    (match s.mismatch with
    | None -> ""
    | Some e -> Printf.sprintf " (mismatched end %S)" e)

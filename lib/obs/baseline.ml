(* The perf-regression gate: diff a BENCH.json document's E-series rows
   against a committed baseline, under per-metric tolerance policies the
   baseline file itself carries. *)

type policy = Exact | Band of float | Skip

type spec = { pattern : string; policy : policy }

type severity = Regression | Info

type issue = { path : string; severity : severity; msg : string }

(* --- glob matching: '*' matches any (possibly empty) substring ----- *)

let glob_match pat s =
  let np = String.length pat and ns = String.length s in
  let rec go i j =
    if i = np then j = ns
    else
      match pat.[i] with
      | '*' ->
        (* collapse runs of '*', then try every split *)
        if i + 1 < np && pat.[i + 1] = '*' then go (i + 1) j
        else
          let rec try_from k = k <= ns && (go (i + 1) k || try_from (k + 1)) in
          try_from j
      | c -> j < ns && s.[j] = c && go (i + 1) (j + 1)
  in
  go 0 0

(* A field is addressed as "EXP.field" (e.g. "E17.update_p99_ns"); a
   spec pattern matches either the full address or the bare field. *)
let find_policy specs ~path ~field =
  let rec go = function
    | [] -> None
    | s :: rest ->
      if glob_match s.pattern path || glob_match s.pattern field then
        Some s.policy
      else go rest
  in
  go specs

(* Wall-clock-derived and scheduling-dependent fields that no tolerance
   band can sensibly cover; everything else defaults to Exact for
   ints/bools/strings and Band for floats. *)
let default_tolerances =
  List.map
    (fun pattern -> { pattern; policy = Skip })
    [
      "generated_at";
      "*seconds*";
      "*_ns";
      "*_ms";
      "*per_ms*";
      "*per_sec*";
      "*_ratio";
      "*speedup*";
      "*overhead*";
      "*_wall*";
      "posted";
      "applied";
      "coalesced";
      "publishes";
      "hits";
      "misses";
      "stale";
      "scans";
      "ops";
      (* E20 scan-sharing: how many requests adopted vs performed (and
         how many invalidations the driver injected) depends on the
         scheduler; the identity requested = combined + performed is
         asserted exactly from BENCH.json by CI instead. *)
      "invalidations";
      "scans_combined";
      "scans_performed";
      "full_scans";
    ]

let default_band = 0.5

(* ------------------------------------------------------------------ *)
(* Serialization                                                        *)
(* ------------------------------------------------------------------ *)

let schema = "composite-registers/baseline/v1"

type t = { tolerances : spec list; snapshot : Json.t }

let policy_json = function
  | Exact -> Json.Str "exact"
  | Skip -> Json.Str "skip"
  | Band b -> Json.Obj [ ("band", Json.Float b) ]

let policy_of_json = function
  | Json.Str "exact" -> Ok Exact
  | Json.Str "skip" -> Ok Skip
  | Json.Obj _ as o -> (
    match Json.member "band" o with
    | Some (Json.Float b) -> Ok (Band b)
    | Some (Json.Int b) -> Ok (Band (float_of_int b))
    | _ -> Error "policy object without a numeric \"band\"")
  | _ -> Error "policy must be \"exact\", \"skip\" or {\"band\": f}"

let make ?(tolerances = default_tolerances) snapshot =
  {
    tolerances;
    (* Strip volatile top-level fields from the stored snapshot so the
       committed file does not churn on every regeneration. *)
    snapshot =
      (match snapshot with
      | Json.Obj fields ->
        Json.Obj (List.filter (fun (k, _) -> k <> "generated_at") fields)
      | j -> j);
  }

let to_json b =
  Json.Obj
    [
      ("schema", Json.Str schema);
      ( "tolerances",
        Json.Arr
          (List.map
             (fun s ->
               Json.Obj
                 [
                   ("pattern", Json.Str s.pattern);
                   ("policy", policy_json s.policy);
                 ])
             b.tolerances) );
      ("snapshot", b.snapshot);
    ]

let of_json j =
  match Json.member "schema" j with
  | Some (Json.Str s) when s = schema -> (
    let tolerances =
      match Json.member "tolerances" j with
      | Some (Json.Arr specs) ->
        List.fold_left
          (fun acc sj ->
            match acc with
            | Error _ -> acc
            | Ok acc -> (
              match (Json.member "pattern" sj, Json.member "policy" sj) with
              | Some (Json.Str pattern), Some pj -> (
                match policy_of_json pj with
                | Ok policy -> Ok ({ pattern; policy } :: acc)
                | Error e -> Error e)
              | _ -> Error "tolerance entry needs \"pattern\" and \"policy\""))
          (Ok []) specs
        |> Result.map List.rev
      | _ -> Error "baseline without a \"tolerances\" array"
    in
    match (tolerances, Json.member "snapshot" j) with
    | Error e, _ -> Error e
    | Ok _, None -> Error "baseline without a \"snapshot\""
    | Ok tolerances, Some snapshot -> Ok { tolerances; snapshot })
  | _ -> Error (Printf.sprintf "baseline schema is not %S" schema)

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e -> Error e
  | text -> Result.bind (Json.of_string text) of_json

let save path b =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      Json.to_channel ~minify:false oc (to_json b);
      output_char oc '\n')

(* ------------------------------------------------------------------ *)
(* Comparison                                                           *)
(* ------------------------------------------------------------------ *)

let num_of = function
  | Json.Int i -> Some (float_of_int i)
  | Json.Float f -> Some f
  | _ -> None

let json_equal a b =
  match (num_of a, num_of b) with
  | Some x, Some y -> x = y  (* 2 == 2.0 *)
  | _ -> a = b

let short = function
  | Json.Str s -> Printf.sprintf "%S" s
  | j -> Json.to_string j

let compare_field specs ~path ~field ~base ~cur acc =
  let full = path ^ "." ^ field in
  let policy =
    match find_policy specs ~path:full ~field with
    | Some p -> p
    | None -> (
      match base with Json.Float _ -> Band default_band | _ -> Exact)
  in
  match policy with
  | Skip -> acc
  | Exact ->
    if json_equal base cur then acc
    else
      {
        path = full;
        severity = Regression;
        msg =
          Printf.sprintf "expected %s, got %s (exact)" (short base) (short cur);
      }
      :: acc
  | Band band -> (
    match (num_of base, num_of cur) with
    | Some b, Some c ->
      let tol = band *. Float.max (Float.abs b) 1.0 in
      if Float.abs (c -. b) <= tol then acc
      else
        {
          path = full;
          severity = Regression;
          msg =
            Printf.sprintf "%g outside %g +/- %g (band %g)" c b tol band;
        }
        :: acc
    | _ ->
      if json_equal base cur then acc
      else
        {
          path = full;
          severity = Regression;
          msg =
            Printf.sprintf "expected %s, got %s (band on non-number)"
              (short base) (short cur);
        }
        :: acc)

let fields_of = function Json.Obj fs -> fs | _ -> []

let compare_row specs ~path ~base ~cur acc =
  let bf = fields_of base and cf = fields_of cur in
  let acc =
    List.fold_left
      (fun acc (field, bv) ->
        match List.assoc_opt field cf with
        | None ->
          {
            path = path ^ "." ^ field;
            severity = Regression;
            msg = "field missing from current run";
          }
          :: acc
        | Some cv -> compare_field specs ~path ~field ~base:bv ~cur:cv acc)
      acc bf
  in
  List.fold_left
    (fun acc (field, _) ->
      if List.mem_assoc field bf then acc
      else
        {
          path = path ^ "." ^ field;
          severity = Info;
          msg = "new field (not in baseline)";
        }
        :: acc)
    acc cf

let rows_of = function Some (Json.Arr rows) -> rows | _ -> []

let compare_doc b cur =
  (* The gate covers the E-series experiment rows; the free-form
     "metrics" section (whose contents depend on which campaigns ran and
     include wall-clock histograms) is advisory only. *)
  let base_exps =
    match Json.member "experiments" b.snapshot with
    | Some (Json.Obj es) -> es
    | _ -> []
  in
  let cur_exps =
    match Json.member "experiments" cur with Some (Json.Obj es) -> es | _ -> []
  in
  let acc =
    List.fold_left
      (fun acc (exp, base_rows) ->
        match List.assoc_opt exp cur_exps with
        | None ->
          {
            path = exp;
            severity = Regression;
            msg = "experiment missing from current run";
          }
          :: acc
        | Some cur_rows ->
          let brs = rows_of (Some base_rows) and crs = rows_of (Some cur_rows) in
          let nb = List.length brs and nc = List.length crs in
          let acc =
            if nc < nb then
              {
                path = exp;
                severity = Regression;
                msg = Printf.sprintf "%d rows in baseline, %d in current" nb nc;
              }
              :: acc
            else if nc > nb then
              {
                path = exp;
                severity = Info;
                msg = Printf.sprintf "%d new rows (baseline has %d)" (nc - nb) nb;
              }
              :: acc
            else acc
          in
          List.fold_left
            (fun (i, acc) base_row ->
              match List.nth_opt crs i with
              | None -> (i + 1, acc)  (* already reported above *)
              | Some cur_row ->
                ( i + 1,
                  compare_row b.tolerances
                    ~path:(Printf.sprintf "%s[%d]" exp i)
                    ~base:base_row ~cur:cur_row acc ))
            (0, acc) brs
          |> snd)
      [] base_exps
  in
  let acc =
    List.fold_left
      (fun acc (exp, _) ->
        if List.mem_assoc exp base_exps then acc
        else
          {
            path = exp;
            severity = Info;
            msg = "new experiment (not in baseline)";
          }
          :: acc)
      acc cur_exps
  in
  List.sort (fun a b -> String.compare a.path b.path) acc

let regressions issues =
  List.filter (fun i -> i.severity = Regression) issues

let pp_issue fmt i =
  Format.fprintf fmt "%s %-28s %s"
    (match i.severity with Regression -> "REGRESSION" | Info -> "info      ")
    i.path i.msg

let pp fmt issues =
  List.iter (fun i -> Format.fprintf fmt "%a@." pp_issue i) issues

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                             *)
(* ------------------------------------------------------------------ *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Non-finite values emit the conventional bare tokens ([NaN],
   [Infinity], [-Infinity]) rather than silently collapsing to [null]:
   a metric that diverged should be visible — and parseable — in the
   artifact, not laundered into a missing value.  (Python's [json]
   accepts these tokens, as does our own parser below.)  Finite values
   use the shortest of %.15g/%.16g/%.17g that round-trips exactly;
   %.17g always does, the shorter forms just keep the artifact
   readable when they lose nothing. *)
let float_to_string f =
  if Float.is_nan f then "NaN"
  else if f = Float.infinity then "Infinity"
  else if f = Float.neg_infinity then "-Infinity"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else
    let p15 = Printf.sprintf "%.15g" f in
    if float_of_string p15 = f then p15
    else
      let p16 = Printf.sprintf "%.16g" f in
      if float_of_string p16 = f then p16 else Printf.sprintf "%.17g" f

let rec emit buf ~minify ~indent v =
  let nl i =
    if not minify then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (2 * i) ' ')
    end
  in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f -> Buffer.add_string buf (float_to_string f)
  | Str s -> escape_to buf s
  | Arr [] -> Buffer.add_string buf "[]"
  | Arr xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        nl (indent + 1);
        emit buf ~minify ~indent:(indent + 1) x)
      xs;
    nl indent;
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, x) ->
        if i > 0 then Buffer.add_char buf ',';
        nl (indent + 1);
        escape_to buf k;
        Buffer.add_char buf ':';
        if not minify then Buffer.add_char buf ' ';
        emit buf ~minify ~indent:(indent + 1) x)
      fields;
    nl indent;
    Buffer.add_char buf '}'

let to_string ?(minify = true) v =
  let buf = Buffer.create 256 in
  emit buf ~minify ~indent:0 v;
  Buffer.contents buf

let to_channel ?minify oc v =
  output_string oc (to_string ?minify v);
  output_char oc '\n'

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Parsing                                                              *)
(* ------------------------------------------------------------------ *)

exception Bad of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let fail msg = raise (Bad (!pos, msg)) in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape"
           else
             match s.[!pos] with
             | '"' -> Buffer.add_char buf '"'; advance ()
             | '\\' -> Buffer.add_char buf '\\'; advance ()
             | '/' -> Buffer.add_char buf '/'; advance ()
             | 'n' -> Buffer.add_char buf '\n'; advance ()
             | 't' -> Buffer.add_char buf '\t'; advance ()
             | 'r' -> Buffer.add_char buf '\r'; advance ()
             | 'b' -> Buffer.add_char buf '\b'; advance ()
             | 'f' -> Buffer.add_char buf '\012'; advance ()
             | 'u' ->
               if !pos + 4 >= n then fail "truncated \\u escape";
               let hex = String.sub s (!pos + 1) 4 in
               (match int_of_string_opt ("0x" ^ hex) with
               | None -> fail "bad \\u escape"
               | Some code ->
                 (* Decode the code point to UTF-8 (surrogate pairs are
                    kept as-is: two 3-byte sequences — fine for the
                    structural validation this parser exists for). *)
                 let add c = Buffer.add_char buf (Char.chr c) in
                 if code < 0x80 then add code
                 else if code < 0x800 then begin
                   add (0xC0 lor (code lsr 6));
                   add (0x80 lor (code land 0x3F))
                 end
                 else begin
                   add (0xE0 lor (code lsr 12));
                   add (0x80 lor ((code lsr 6) land 0x3F));
                   add (0x80 lor (code land 0x3F))
                 end;
                 pos := !pos + 5)
             | c -> fail (Printf.sprintf "bad escape \\%c" c));
          go ()
        | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    let floaty = String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok in
    if floaty then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "bad number %S" tok)
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail (Printf.sprintf "bad number %S" tok))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields ((k, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> fail "expected , or } in object"
        in
        Obj (fields [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec elems acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elems (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected , or ] in array"
        in
        Arr (elems [])
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some 'N' -> literal "NaN" (Float Float.nan)
    | Some 'I' -> literal "Infinity" (Float Float.infinity)
    | Some '-' when !pos + 1 < n && s.[!pos + 1] = 'I' ->
      literal "-Infinity" (Float Float.neg_infinity)
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage after document";
    v
  with
  | v -> Ok v
  | exception Bad (at, msg) ->
    Error (Printf.sprintf "JSON parse error at byte %d: %s" at msg)

type counter = { mutable c : int }
type gauge = { mutable g : float; mutable g_set : bool }

(* Log-scale buckets: indices 0..63 hold values 0..63 exactly; beyond
   that, octave [2^e, 2^(e+1)) (e >= 6) is split into 32 buckets of
   width 2^(e-5), giving <= 1/32 relative error.  Bucket lower bounds
   are therefore exactly representable and percentile lookups below 64
   are exact. *)
type histogram = {
  mutable buckets : int array;  (* grown on demand *)
  mutable n : int;
  mutable h_min : int;
  mutable h_max : int;
  mutable sum : float;  (* of bucket lower bounds, for the mean *)
}

let sub = 64  (* one-bucket-per-value region *)
let per_octave = 32

let msb v =
  (* Index of the most significant set bit; v > 0. *)
  let rec go v acc = if v = 1 then acc else go (v lsr 1) (acc + 1) in
  go v 0

let bucket_of_value v =
  if v < sub then v
  else
    let e = msb v in
    sub + ((e - 6) * per_octave) + ((v lsr (e - 5)) - per_octave)

let bucket_lower_bound idx =
  if idx < sub then idx
  else
    let o = (idx - sub) / per_octave in
    let r = (idx - sub) mod per_octave in
    (per_octave + r) lsl (o + 1)

type metric = C of counter | G of gauge | H of histogram
type t = { tbl : (string, metric) Hashtbl.t }

let create () = { tbl = Hashtbl.create 32 }

let register t name make get =
  match Hashtbl.find_opt t.tbl name with
  | Some m -> (
    match get m with
    | Some x -> x
    | None ->
      invalid_arg
        (Printf.sprintf
           "Metrics: %S is already registered as a different metric kind" name))
  | None ->
    let m = make () in
    Hashtbl.add t.tbl name m;
    (match get m with Some x -> x | None -> assert false)

let counter t name =
  register t name (fun () -> C { c = 0 }) (function C c -> Some c | _ -> None)

let incr ?(by = 1) c = c.c <- c.c + by
let counter_value c = c.c

let gauge t name =
  register t name
    (fun () -> G { g = 0.; g_set = false })
    (function G g -> Some g | _ -> None)

let set g v =
  g.g <- v;
  g.g_set <- true

let gauge_value g = g.g

let histogram t name =
  register t name
    (fun () ->
      H { buckets = Array.make sub 0; n = 0; h_min = 0; h_max = 0; sum = 0. })
    (function H h -> Some h | _ -> None)

let ensure_buckets h len =
  if len > Array.length h.buckets then begin
    let n = ref (Array.length h.buckets) in
    while len > !n do
      n := !n * 2
    done;
    let b = Array.make !n 0 in
    Array.blit h.buckets 0 b 0 (Array.length h.buckets);
    h.buckets <- b
  end

let observe h v =
  let v = max 0 v in
  let idx = bucket_of_value v in
  ensure_buckets h (idx + 1);
  h.buckets.(idx) <- h.buckets.(idx) + 1;
  if h.n = 0 then begin
    h.h_min <- v;
    h.h_max <- v
  end
  else begin
    if v < h.h_min then h.h_min <- v;
    if v > h.h_max then h.h_max <- v
  end;
  h.n <- h.n + 1;
  h.sum <- h.sum +. float_of_int (bucket_lower_bound idx)

let count h = h.n
let hist_min h = h.h_min
let hist_max h = h.h_max
let mean h = if h.n = 0 then nan else h.sum /. float_of_int h.n

let percentile h p =
  if h.n = 0 then 0
  else begin
    let p = Float.min 100. (Float.max 0. p) in
    let rank = max 1 (int_of_float (ceil (p /. 100. *. float_of_int h.n))) in
    let acc = ref 0 in
    let result = ref h.h_max in
    (try
       Array.iteri
         (fun idx c ->
           acc := !acc + c;
           if c > 0 && !acc >= rank then begin
             result := bucket_lower_bound idx;
             raise Exit
           end)
         h.buckets
     with Exit -> ());
    min h.h_max (max h.h_min !result)
  end

(* ------------------------------------------------------------------ *)
(* Merging                                                              *)
(* ------------------------------------------------------------------ *)

let find_counter t name =
  match Hashtbl.find_opt t.tbl name with Some (C c) -> Some c | _ -> None

let find_histogram t name =
  match Hashtbl.find_opt t.tbl name with Some (H h) -> Some h | _ -> None

let histogram_names t =
  List.sort String.compare
    (Hashtbl.fold
       (fun k v acc -> match v with H _ -> k :: acc | _ -> acc)
       t.tbl [])

let sorted_bindings t =
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.tbl [])

let merge ~into src =
  List.iter
    (fun (name, m) ->
      match m with
      | C c ->
        let dst = counter into name in
        dst.c <- dst.c + c.c
      | G g ->
        if g.g_set then begin
          let dst = gauge into name in
          if dst.g_set then set dst (Float.max dst.g g.g) else set dst g.g
        end
      | H h ->
        let dst = histogram into name in
        if h.n > 0 then begin
          ensure_buckets dst (Array.length h.buckets);
          Array.iteri
            (fun i c -> if c > 0 then dst.buckets.(i) <- dst.buckets.(i) + c)
            h.buckets;
          if dst.n = 0 then begin
            dst.h_min <- h.h_min;
            dst.h_max <- h.h_max
          end
          else begin
            dst.h_min <- min dst.h_min h.h_min;
            dst.h_max <- max dst.h_max h.h_max
          end;
          dst.n <- dst.n + h.n;
          dst.sum <- dst.sum +. h.sum
        end)
    (sorted_bindings src)

(* ------------------------------------------------------------------ *)
(* Snapshots                                                            *)
(* ------------------------------------------------------------------ *)

let hist_json h =
  Json.Obj
    [
      ("count", Json.Int h.n);
      ("min", Json.Int (hist_min h));
      ("max", Json.Int (hist_max h));
      ("mean", if h.n = 0 then Json.Null else Json.Float (mean h));
      ("p10", Json.Int (percentile h 10.));
      ("p50", Json.Int (percentile h 50.));
      ("p90", Json.Int (percentile h 90.));
      ("p99", Json.Int (percentile h 99.));
      ("p999", Json.Int (percentile h 99.9));
    ]

let to_json t =
  let bindings = sorted_bindings t in
  let pick f = List.filter_map f bindings in
  Json.Obj
    [
      ( "counters",
        Json.Obj
          (pick (function
            | name, C c -> Some (name, Json.Int c.c)
            | _ -> None)) );
      ( "gauges",
        Json.Obj
          (pick (function
            | name, G g -> Some (name, if g.g_set then Json.Float g.g else Json.Null)
            | _ -> None)) );
      ( "histograms",
        Json.Obj
          (pick (function name, H h -> Some (name, hist_json h) | _ -> None)) );
    ]

let to_json_lines t =
  let buf = Buffer.create 256 in
  List.iter
    (fun (name, m) ->
      let obj =
        match m with
        | C c ->
          Json.Obj
            [
              ("type", Json.Str "counter");
              ("name", Json.Str name);
              ("value", Json.Int c.c);
            ]
        | G g ->
          Json.Obj
            [
              ("type", Json.Str "gauge");
              ("name", Json.Str name);
              ("value", if g.g_set then Json.Float g.g else Json.Null);
            ]
        | H h ->
          Json.Obj
            [ ("type", Json.Str "histogram"); ("name", Json.Str name); ("value", hist_json h) ]
      in
      Buffer.add_string buf (Json.to_string obj);
      Buffer.add_char buf '\n')
    (sorted_bindings t);
  Buffer.contents buf

(* Causal span collector: a mutable span store that harnesses and the
   net layer feed directly (no trace ring involved), reconstructing each
   operation as a tree: composite op (from note markers) -> ABD op ->
   phase -> per-replica rpc / backoff wait.  Exported as Chrome trace
   events that merge onto the message timeline's track layout. *)

type kind = Op | Phase | Rpc | Wait | Note

let kind_label = function
  | Op -> "op"
  | Phase -> "phase"
  | Rpc -> "rpc"
  | Wait -> "wait"
  | Note -> "note"

type span = {
  id : int;
  trace : int;
  parent : int option;
  kind : kind;
  name : string;
  track : int;
  t0 : int;
  mutable t1 : int;
  mutable closed : bool;
  mutable args : (string * Json.t) list;
}

type t = {
  mutable next_id : int;
  mutable next_trace : int;
  mutable spans : span list;  (* reverse creation order *)
  mutable n_spans : int;
  note_stacks : (int, span list) Hashtbl.t;  (* open Note spans, per track *)
  mutable mismatched : int;
  mutable last_at : int;
}

let create () =
  {
    next_id = 0;
    next_trace = 0;
    spans = [];
    n_spans = 0;
    note_stacks = Hashtbl.create 8;
    mismatched = 0;
    last_at = 0;
  }

let fresh_trace t =
  let tr = t.next_trace in
  t.next_trace <- tr + 1;
  tr

let note_stack t track =
  Option.value (Hashtbl.find_opt t.note_stacks track) ~default:[]

let current t ~track =
  match note_stack t track with [] -> None | s :: _ -> Some s

let start t ?parent ?trace ?(args = []) ~kind ~track ~at name =
  let parent =
    match parent with
    | Some _ -> parent
    | None -> current t ~track  (* nest under the innermost note span *)
  in
  let trace =
    match trace with
    | Some tr -> tr
    | None -> (
      match parent with Some p -> p.trace | None -> fresh_trace t)
  in
  let s =
    {
      id = t.next_id;
      trace;
      parent = Option.map (fun p -> p.id) parent;
      kind;
      name;
      track;
      t0 = at;
      t1 = at;
      closed = false;
      args;
    }
  in
  t.next_id <- s.id + 1;
  t.spans <- s :: t.spans;
  t.n_spans <- t.n_spans + 1;
  t.last_at <- max t.last_at at;
  s

let finish t ?(args = []) ~at s =
  s.t1 <- max s.t0 at;
  s.closed <- true;
  if args <> [] then s.args <- s.args @ args;
  t.last_at <- max t.last_at at

let note t ~track ~at text =
  t.last_at <- max t.last_at at;
  match Csim.Trace.span_of_note text with
  | None -> ()
  | Some (`B, name) ->
    let s = start t ~kind:Note ~track ~at name in
    Hashtbl.replace t.note_stacks track (s :: note_stack t track)
  | Some (`E, name) -> (
    match note_stack t track with
    | [] -> ()  (* stray end marker *)
    | s :: rest ->
      Hashtbl.replace t.note_stacks track rest;
      if not (String.equal name s.name) then begin
        t.mismatched <- t.mismatched + 1;
        s.args <- ("mismatched_end", Json.Str name) :: s.args
      end;
      finish t ~at s)

let spans t = List.rev t.spans
let span_count t = t.n_spans
let mismatched t = t.mismatched

let unclosed_count t =
  List.fold_left (fun acc s -> if s.closed then acc else acc + 1) 0 t.spans

(* ------------------------------------------------------------------ *)
(* Chrome trace-event export                                            *)
(* ------------------------------------------------------------------ *)

let span_args s =
  ("trace", Json.Int s.trace)
  :: ("span", Json.Int s.id)
  :: (match s.parent with
     | None -> []
     | Some p -> [ ("parent", Json.Int p) ])
  @ (if s.closed then [] else [ ("unclosed", Json.Bool true) ])
  @ s.args

let to_events ?(pid = 0) t =
  (* Unclosed spans render up to the last event seen, like
     [Span.of_trace] closing at the trace's final step. *)
  let horizon = t.last_at in
  List.concat_map
    (fun s ->
      let t1 = if s.closed then s.t1 else max s.t0 horizon in
      let base =
        [
          ("name", Json.Str s.name);
          ("cat", Json.Str (kind_label s.kind));
          ("pid", Json.Int pid);
          ("tid", Json.Int s.track);
          ("args", Json.Obj (span_args s));
        ]
      in
      match s.kind with
      | Op | Phase | Note ->
        (* Complete events: the viewer nests them by containment, which
           tolerates the overlap patterns a B/E stack cannot. *)
        [
          Json.Obj
            (("ph", Json.Str "X")
            :: ("ts", Json.Int s.t0)
            :: ("dur", Json.Int (max 1 (t1 - s.t0)))
            :: base);
        ]
      | Rpc | Wait ->
        (* Async begin/end pairs keyed by span id: concurrent rpcs to
           different replicas overlap freely on the client track. *)
        [
          Json.Obj
            (("ph", Json.Str "b")
            :: ("id", Json.Int s.id)
            :: ("ts", Json.Int s.t0)
            :: base);
          Json.Obj
            (("ph", Json.Str "e")
            :: ("id", Json.Int s.id)
            :: ("ts", Json.Int t1)
            :: base);
        ])
    (spans t)

let pp fmt t =
  let tbl = Hashtbl.create 16 in
  List.iter (fun s -> Hashtbl.replace tbl s.id s) t.spans;
  let rec depth s =
    match s.parent with
    | None -> 0
    | Some p -> (
      match Hashtbl.find_opt tbl p with None -> 1 | Some ps -> 1 + depth ps)
  in
  List.iter
    (fun s ->
      Format.fprintf fmt "t%d %s[%s] %s [%d, %d]%s%s@." s.track
        (String.make (2 * depth s) ' ')
        (kind_label s.kind) s.name s.t0 s.t1
        (if s.closed then "" else " (unclosed)")
        (if List.mem_assoc "mismatched_end" s.args then " (mismatched)" else ""))
    (spans t)

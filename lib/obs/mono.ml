external now_ns : unit -> int = "obs_mono_ns" [@@noalloc]

let now_s () = float_of_int (now_ns ()) /. 1e9

(** Latency budgets (SLOs) per operation class, judged against the
    metrics registry's histograms.

    A {!budget} names an op class (e.g. ["net/scan"]), the histogram
    that records its latencies, a percentile and a limit; {!check} turns
    a registry into {!verdict}s.  The sim-backed classes (shm, net, byz)
    measure in deterministic logical time — scheduler steps or network
    ticks — so their verdicts are exact, reproducible contracts suitable
    for the regression gate; the serving-layer class is wall-clock and
    its default limits are loose order-of-magnitude guards. *)

type pct = P50 | P90 | P99 | P999

val pct_label : pct -> string
val pct_value : pct -> float

type budget = {
  op : string;  (** op class label, e.g. ["net/scan"] *)
  metric : string;  (** histogram name in the registry *)
  pct : pct;
  limit : int;  (** inclusive upper bound, in the histogram's unit *)
  unit_ : string;  (** display unit: ["steps"], ["ticks"], ["ns"] *)
}

type verdict = {
  budget : budget;
  observed : int option;
      (** the percentile, or [None] when the histogram is absent/empty *)
  count : int;  (** samples behind the percentile *)
  ok : bool;  (** [observed <= limit]; vacuously true on no data *)
}

val budget :
  op:string -> metric:string -> pct:pct -> limit:int -> unit_:string -> budget

val default_budgets : budget list
(** Budgets for the repo's own campaign latency histograms
    ([campaign.shm.*], [netchaos.*], [byzchaos.*], [serve.*]) and the
    network edge's socket round-trip histograms ([edge.*]). *)

val check : ?budgets:budget list -> Metrics.t -> verdict list
val all_ok : verdict list -> bool

val verdict_json : verdict -> Json.t
val to_json : verdict list -> Json.t

val pp_verdict : Format.formatter -> verdict -> unit
val pp : Format.formatter -> verdict list -> unit

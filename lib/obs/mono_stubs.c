/* Monotonic clock stub: CLOCK_MONOTONIC nanoseconds as a tagged int.
   63-bit nanoseconds overflow after ~146 years of uptime, so Val_long
   is safe; [@@noalloc] on the OCaml side keeps this callable from hot
   paths without touching the GC. */
#include <caml/mlvalues.h>
#include <time.h>

CAMLprim value obs_mono_ns(value unit)
{
  struct timespec ts;
  (void)unit;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return Val_long((intnat)ts.tv_sec * 1000000000 + (intnat)ts.tv_nsec);
}

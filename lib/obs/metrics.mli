(** The metrics registry: named counters, gauges and log-scale
    histograms, snapshot-able to JSON.

    The paper's claims are quantitative ([TR(C) = 5 + 2 TR(C-1)], space
    recurrences, campaign verdict counts); the registry is where
    harnesses record such numbers so a whole run can be dumped as one
    machine-readable document ([BENCH.json], the perf trajectory) and
    compared across revisions, instead of living only in free-text
    tables.

    Metric handles are cheap to look up and cheap to update (a counter
    bump is one mutation, a histogram observation is a bucket
    increment); look handles up once outside hot loops all the same.

    {b Histograms} are HdrHistogram-style log-scale: values [0..63] get
    one bucket each (exact), and each further octave [2^e, 2^{e+1}) is
    split into 32 buckets, so any recorded value is off by at most
    [1/32] (~3.1%) of itself.  Percentiles report the lower bound of the
    bucket containing the requested rank, clamped to the observed
    [min]/[max] — in particular they are {e exact} for values below 64
    and for bucket-aligned values. *)

type t
(** A registry: a named collection of metrics. *)

type counter
type gauge
type histogram

val create : unit -> t

(** {2 Registration and update}

    [counter]/[gauge]/[histogram] return the existing metric when the
    name is already registered, and raise [Invalid_argument] if the name
    is registered as a different kind. *)

val counter : t -> string -> counter
val incr : ?by:int -> counter -> unit
val counter_value : counter -> int

val gauge : t -> string -> gauge
val set : gauge -> float -> unit
val gauge_value : gauge -> float

val histogram : t -> string -> histogram

val observe : histogram -> int -> unit
(** Record one (non-negative) sample; negative samples clamp to 0. *)

(** {2 Histogram queries} *)

val count : histogram -> int
val hist_min : histogram -> int  (** 0 when empty *)

val hist_max : histogram -> int  (** 0 when empty *)

val mean : histogram -> float  (** of the bucket representatives; [nan] when empty *)

val percentile : histogram -> float -> int
(** [percentile h p] for [p] in [(0, 100]]: the smallest recorded bucket
    bound [x] such that at least [ceil (p/100 * count)] samples are
    [<= x] (see the precision note above).  0 when empty. *)

(** {2 Snapshots} *)

val to_json : t -> Json.t
(** The whole registry as one object:
    [{"counters": {...}, "gauges": {...}, "histograms": {name: {count,
    min, max, mean, p50, p90, p99}}}], fields sorted by name. *)

val to_json_lines : t -> string
(** One JSON object per line per metric
    ([{"type":"counter","name":...,"value":...}] etc.), suitable for
    appending to a log. *)

(** The metrics registry: named counters, gauges and log-scale
    histograms, snapshot-able to JSON.

    The paper's claims are quantitative ([TR(C) = 5 + 2 TR(C-1)], space
    recurrences, campaign verdict counts); the registry is where
    harnesses record such numbers so a whole run can be dumped as one
    machine-readable document ([BENCH.json], the perf trajectory) and
    compared across revisions, instead of living only in free-text
    tables.

    Metric handles are cheap to look up and cheap to update (a counter
    bump is one mutation, a histogram observation is a bucket
    increment); look handles up once outside hot loops all the same.

    {b Histograms} are HdrHistogram-style log-scale: values [0..63] get
    one bucket each (exact), and each further octave [2^e, 2^{e+1}) is
    split into 32 buckets, so any recorded value is off by at most
    [1/32] (~3.1%) of itself.  Percentiles report the lower bound of the
    bucket containing the requested rank, clamped to the observed
    [min]/[max] — in particular they are {e exact} for values below 64
    and for bucket-aligned values. *)

type t
(** A registry: a named collection of metrics. *)

type counter
type gauge
type histogram

val create : unit -> t

(** {2 Registration and update}

    [counter]/[gauge]/[histogram] return the existing metric when the
    name is already registered, and raise [Invalid_argument] if the name
    is registered as a different kind. *)

val counter : t -> string -> counter
val incr : ?by:int -> counter -> unit
val counter_value : counter -> int

val gauge : t -> string -> gauge
val set : gauge -> float -> unit
val gauge_value : gauge -> float

val histogram : t -> string -> histogram

val observe : histogram -> int -> unit
(** Record one (non-negative) sample; negative samples clamp to 0. *)

(** {2 Histogram queries} *)

val count : histogram -> int
val hist_min : histogram -> int  (** 0 when empty *)

val hist_max : histogram -> int  (** 0 when empty *)

val mean : histogram -> float  (** of the bucket representatives; [nan] when empty *)

val percentile : histogram -> float -> int
(** [percentile h p] for [p] in [(0, 100]]: the smallest recorded bucket
    bound [x] such that at least [ceil (p/100 * count)] samples are
    [<= x] (see the precision note above).  0 when empty.  Tail
    percentiles (p999 = [99.9]) follow the same rule — with fewer than
    1000 samples p999 equals the maximum-rank bucket, i.e. it degrades
    to [p100] rather than extrapolating. *)

(** {2 Lookup without registration}

    [find_*] return [None] when the name is absent {e or} registered as
    a different kind — they never create metrics, so they are safe to
    use on merged registries whose contents depend on which campaigns
    ran. *)

val find_counter : t -> string -> counter option
val find_histogram : t -> string -> histogram option

val histogram_names : t -> string list
(** All registered histogram names, sorted. *)

(** {2 Merging} *)

val merge : into:t -> t -> unit
(** [merge ~into src] folds every metric of [src] into [into],
    registering names absent from [into] on the fly.  The combination
    is commutative and associative, so merging per-worker registries at
    a parallel join yields the same registry regardless of worker count
    or merge order:

    - {b counters} add;
    - {b gauges} keep the {e maximum} of the set values (max — not
      last-write-wins — precisely so the result cannot depend on merge
      order); a gauge never set in [src] contributes nothing;
    - {b histograms} add bucket-wise, so [count], [mean] and every
      percentile of the merged histogram are those of the union of the
      observations (within the usual bucket precision).

    Raises [Invalid_argument] if a name is registered with different
    metric kinds in the two registries.  [src] is not modified. *)

(** {2 Snapshots}

    Snapshots are {e order-stable}: metrics are emitted sorted by name,
    independent of registration or merge order, so dumps of merged
    multi-worker registries diff cleanly across runs. *)

val to_json : t -> Json.t
(** The whole registry as one object:
    [{"counters": {...}, "gauges": {...}, "histograms": {name: {count,
    min, max, mean, p10, p50, p90, p99, p999}}}], fields sorted by
    name. *)

val to_json_lines : t -> string
(** One JSON object per line per metric
    ([{"type":"counter","name":...,"value":...}] etc.), suitable for
    appending to a log. *)

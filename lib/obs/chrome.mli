(** Chrome trace-event (catapult) JSON export.

    Converts a simulator trace into the JSON array format understood by
    [chrome://tracing] and {{:https://ui.perfetto.dev}Perfetto}: one
    process per export ([pid]), one track per simulated process
    ([tid]), operation spans as matched ["B"]/["E"] duration events,
    every shared-memory access as an instant event (["i"]) carrying the
    cell and value in [args], and a ["M"] (metadata) event naming each
    track.  Timestamps are the simulator's event counter, reported in
    the format's microsecond unit — one step = 1us.

    The exported events are guaranteed well formed: every ["B"] has a
    matching ["E"] on the same [tid] (unclosed spans are closed at the
    final step), and nesting order is preserved. *)

val of_trace :
  ?pid:int -> ?proc_label:(int -> string) -> Csim.Trace.t -> Json.t
(** The trace as a Chrome trace-event JSON array.  [pid] defaults to 0;
    [proc_label] names the per-process tracks (default ["p<i>"]). *)

val export :
  path:string -> ?pid:int -> ?proc_label:(int -> string) -> Csim.Trace.t -> unit
(** Write {!of_trace} to [path]. *)

(** Operation spans: begin/end intervals reconstructed from a trace.

    Harnesses mark operation boundaries by emitting [Sim.note] events
    whose text is [Trace.span_begin name] / [Trace.span_end name] (e.g.
    the recording wrapper [Composite.Snapshot.record ~note] brackets
    every Scan and Update, and [Composite.Anderson.create ~note]
    brackets each recursion level, so a [C]-component Scan nests [C]
    levels deep).  This module turns those markers back into an interval
    tree: one {!t} per balanced begin/end pair, with the nesting depth
    at which it ran. *)

type t = {
  name : string;
  proc : int;  (** simulator process that ran the span *)
  t0 : int;  (** step count at the begin marker *)
  t1 : int;  (** step count at the end marker; [t0 <= t1] *)
  depth : int;  (** nesting depth within [proc]; 0 = outermost *)
  closed : bool;
      (** [false] if the end marker was missing (crashed process,
          truncated trace) and the span was closed at the last step *)
  mismatch : string option;
      (** [Some ended] when the end marker that closed this span carried
          a different name ([ended]) than the begin marker — crossed or
          truncated markers.  The span keeps the begin marker's name. *)
}

val emitter : Csim.Sim.env -> string -> unit
(** [emitter env] is a note sink that attributes each marker to the
    {e currently running} process ([Sim.self ()]).  Pass it as [~note]
    to instrumented harnesses.  Must only be invoked from inside a
    running simulation. *)

val of_trace : ?metrics:Metrics.t -> Csim.Trace.t -> t list
(** Reconstruct all spans, in order of their begin markers.  Markers are
    matched per process, stack-wise (an end marker closes the innermost
    open span of that process regardless of name — names only label, but
    a name disagreement is recorded in the span's [mismatch] field and,
    when [?metrics] is given, counted into the [span.mismatched]
    counter).  Unclosed spans are closed at the last event's step with
    [closed = false].  Stray end markers are ignored. *)

val max_depth : t list -> int
(** Deepest nesting over all spans; [-1] when empty. *)

val mismatch_count : t list -> int
(** Number of spans whose end marker name disagreed with their begin
    marker. *)

val pp : Format.formatter -> t -> unit

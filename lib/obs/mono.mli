(** Monotonic clock.

    [Unix.gettimeofday] is wall time: NTP steps and leap smearing can
    move it {e backwards}, which turns span durations negative and
    corrupts occupancy stats.  This module reads
    [clock_gettime(CLOCK_MONOTONIC)] through a tiny C stub (no
    third-party dependency), so durations computed as [now - earlier]
    are non-negative by construction.

    The absolute origin is unspecified (typically boot time); only
    differences are meaningful. *)

val now_ns : unit -> int
(** Monotonic nanoseconds from an unspecified origin.  Never decreases
    within a process. *)

val now_s : unit -> float
(** [now_ns] in seconds, for call sites that keep float timestamps. *)

(** The Shrinking Lemma (paper, Section 3 and Appendix), executable.

    Given a recorded history of a composite register whose operations
    carry the paper's auxiliary ids (so that
    [phi_k(r) = r.ids.(k)] and [phi_k(w) = w.id]), this module

    - checks the five conditions of the lemma — Uniqueness, Integrity,
      Proximity, Read Precedence, Write Precedence — reporting every
      violation found; and
    - constructs an explicit linearization witness by computing the
      appendix's relation [F = A ∪ B ∪ C ∪ D ∪ E], extending it to a
      total order, and replaying the history sequentially to confirm
      that each Read returns, for every component [k], the input value
      of the latest preceding [k]-Write.

    The lemma states that (1) implies linearizability; the witness
    construction {e executes} the appendix proof on the concrete
    history, so a successful run is a machine-checked instance of the
    theorem. *)

type violation =
  | Uniqueness_duplicate of { comp : int; id : int }
      (** Two distinct k-Writes share an id. *)
  | Uniqueness_order of { comp : int; first_id : int; second_id : int }
      (** v precedes w but [phi_k v >= phi_k w]. *)
  | Integrity of { comp : int; rproc : int; id : int }
      (** A Read returned an id with no matching Write, or a value
          different from that Write's input. *)
  | Proximity_future of { comp : int; rproc : int; rid : int; wid : int }
      (** The Read precedes the Write it returned from. *)
  | Proximity_overwritten of { comp : int; rproc : int; rid : int; wid : int }
      (** A Write that precedes the Read has a larger id than the Read
          returned. *)
  | Read_precedence of { comp : int; rproc : int; sproc : int }
      (** Two Reads obtained inconsistent snapshots. *)
  | Write_precedence of { jcomp : int; kcomp : int; rproc : int }
      (** A Read ordered two Writes of different components against
          their precedence. *)

val pp_violation : Format.formatter -> violation -> unit

val check : equal:('a -> 'a -> bool) -> 'a Snapshot_history.t -> violation list
(** All violations of the five conditions (empty iff the history passes;
    the lemma then guarantees linearizability).

    Complexity: clean histories cost
    [O((nw + nr·C) log nw + nr²·C)] using per-component write-id
    indexes (binary-searched prefix/suffix aggregates) for the
    Proximity, Write-Precedence and Uniqueness-order conditions — the
    naive quadratic enumerations run only for reads/components whose
    existence test already found a violation, so the reported list is
    bit-identical to {!check_naive}. *)

val check_naive :
  equal:('a -> 'a -> bool) -> 'a Snapshot_history.t -> violation list
(** The direct transcription of the five conditions as nested loops
    ([O(nw²·nr)] for Write Precedence).  Kept as the differential-test
    reference for {!check}; both return the same violations in the same
    order on every history. *)

val conditions_hold : equal:('a -> 'a -> bool) -> 'a Snapshot_history.t -> bool

(** {2 Linearization witness (the appendix, executed)} *)

type 'a linearized_op =
  | L_write of 'a Snapshot_history.write
  | L_read of 'a Snapshot_history.read

val witness :
  equal:('a -> 'a -> bool) ->
  'a Snapshot_history.t ->
  ('a linearized_op list, string) result
(** Builds relation [F], extends it to a total order, and validates the
    resulting sequential execution.  [Error] carries a diagnostic: a
    cycle in [F] (the five conditions must be violated — check
    {!check} first) or a semantic mismatch (which would contradict the
    lemma and thus indicates a bug in this implementation). *)

(** Generic linearizability checking by search (Wing–Gong style).

    Given a sequential specification and a set of timed operations, the
    checker searches for a total order that (a) extends the interval
    precedence order and (b) is a legal sequential execution of the
    specification producing exactly the observed outputs.  This is the
    general definition of linearizability of Herlihy & Wing, to which
    the paper's correctness condition (Section 2) specializes.

    The search memoizes on (set of linearized operations, specification
    state), which keeps small histories (tens of operations) tractable.
    It is exponential in the worst case — for bulk checking of the
    composite register the [Shrinking] checker (linear-ish, using the
    paper's auxiliary ids) is preferred; this checker is the
    ground-truth oracle used to validate that one and to check
    implementations that carry no auxiliary ids. *)

type ('s, 'i, 'o) spec = {
  apply : 's -> 'i -> 's * 'o;
      (** Sequential semantics: next state and expected output. *)
  equal_output : 'o -> 'o -> bool;
  equal_state : 's -> 's -> bool;
      (** Semantic state equality, used by the search memo (visited
          states are bucketed by linearized-set mask and compared with
          this — never with polymorphic hashing, which would produce
          false cache hits for states whose equality is not
          structural). *)
}

type ('i, 'o) verdict =
  | Linearizable of ('i, 'o) Oprec.t list
      (** A witness linearization order. *)
  | Not_linearizable
  | Too_large  (** More than {!max_ops} operations. *)

val max_ops : int
(** Upper bound on history size (62: linearized sets are bitmasks). *)

val check :
  ('s, 'i, 'o) spec -> init:'s -> ('i, 'o) Oprec.t list -> ('i, 'o) verdict

val is_linearizable :
  ('s, 'i, 'o) spec -> init:'s -> ('i, 'o) Oprec.t list -> bool
(** [true] iff {!check} returns [Linearizable _]; raises
    [Invalid_argument] on [Too_large]. *)

(** {2 Built-in specifications} *)

type 'v snap_input = Update of int * 'v | Scan
type 'v snap_output = Done | View of 'v array

val snapshot_spec :
  equal:('v -> 'v -> bool) -> ('v array, 'v snap_input, 'v snap_output) spec
(** The composite register / atomic snapshot object: state is the vector
    of component values; [Update (k, v)] writes component [k]; [Scan]
    returns the whole vector. *)

type 'v reg_input = Reg_write of 'v | Reg_read
type 'v reg_output = Reg_done | Reg_value of 'v

val register_spec :
  equal:('v -> 'v -> bool) -> ('v, 'v reg_input, 'v reg_output) spec
(** An ordinary atomic read/write register (the [C = 1] case). *)

type counter_input = Incr of int | Get
type counter_output = Incr_done | Count of int

val counter_spec : (int, counter_input, counter_output) spec
(** A counter with blind increments (a commutative PRMW object). *)

type ('s, 'i, 'o) spec = {
  apply : 's -> 'i -> 's * 'o;
  equal_output : 'o -> 'o -> bool;
  equal_state : 's -> 's -> bool;
}

type ('i, 'o) verdict =
  | Linearizable of ('i, 'o) Oprec.t list
  | Not_linearizable
  | Too_large

let max_ops = 62

let check spec ~init ops =
  let ops = Array.of_list ops in
  let n = Array.length ops in
  if n > max_ops then Too_large
  else begin
    (* precedes.(i) is the bitmask of operations that precede op i; op i
       may be linearized only once all of them have been. *)
    let precedes = Array.make n 0 in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if i <> j && Oprec.precedes ops.(j) ops.(i) then
          precedes.(i) <- precedes.(i) lor (1 lsl j)
      done
    done;
    (* Wrap-around makes this correct even at n = 62 on 63-bit ints. *)
    let all_done = (1 lsl n) - 1 in
    (* Memo buckets are keyed by the (int) mask alone; states within a
       bucket are compared with the spec's own equality.  Hashing the
       (mask, state) pair polymorphically would both miss states whose
       custom equality is coarser than structural (false negatives,
       wasted re-search) and — worse — conflate states that are
       structurally similar but semantically distinct under a custom
       [equal_state] (false cache hits). *)
    let visited : (int, 's list) Hashtbl.t = Hashtbl.create 4096 in
    let seen mask state =
      match Hashtbl.find_opt visited mask with
      | None -> false
      | Some states -> List.exists (spec.equal_state state) states
    in
    let mark mask state =
      let states =
        match Hashtbl.find_opt visited mask with None -> [] | Some l -> l
      in
      Hashtbl.replace visited mask (state :: states)
    in
    (* Try candidates in invocation order (ties by index): operations
       that started earlier are the likeliest legal next step, which
       finds a witness with far less backtracking than index order on
       histories whose list interleaves late and early operations. *)
    let order = Array.init n (fun i -> i) in
    Array.sort
      (fun a b ->
        match compare ops.(a).Oprec.inv ops.(b).Oprec.inv with
        | 0 -> compare a b
        | c -> c)
      order;
    (* DFS for a legal completion from [mask] (already linearized) and
       specification state [state]; returns the witness suffix. *)
    let rec search mask state =
      if mask = all_done then Some []
      else if seen mask state then None
      else begin
        let found = ref None in
        let i = ref 0 in
        while !found = None && !i < n do
          let idx = order.(!i) in
          incr i;
          if mask land (1 lsl idx) = 0 && precedes.(idx) land lnot mask = 0
          then begin
            let state', out = spec.apply state ops.(idx).Oprec.input in
            if spec.equal_output out ops.(idx).Oprec.output then
              match search (mask lor (1 lsl idx)) state' with
              | Some suffix -> found := Some (ops.(idx) :: suffix)
              | None -> ()
          end
        done;
        if !found = None then mark mask state;
        !found
      end
    in
    match search 0 init with
    | Some witness -> Linearizable witness
    | None -> Not_linearizable
  end

let is_linearizable spec ~init ops =
  match check spec ~init ops with
  | Linearizable _ -> true
  | Not_linearizable -> false
  | Too_large -> invalid_arg "Linearize.is_linearizable: history too large"

(* ------------------------------------------------------------------ *)
(* Built-in specifications                                              *)
(* ------------------------------------------------------------------ *)

type 'v snap_input = Update of int * 'v | Scan
type 'v snap_output = Done | View of 'v array

let snapshot_spec ~equal =
  let apply state input =
    match input with
    | Update (k, v) ->
      let state' = Array.copy state in
      state'.(k) <- v;
      (state', Done)
    | Scan -> (state, View (Array.copy state))
  in
  let equal_array x y =
    Array.length x = Array.length y
    && (let ok = ref true in
        Array.iteri (fun i xi -> if not (equal xi y.(i)) then ok := false) x;
        !ok)
  in
  let equal_output a b =
    match (a, b) with
    | Done, Done -> true
    | View x, View y -> equal_array x y
    | Done, View _ | View _, Done -> false
  in
  { apply; equal_output; equal_state = equal_array }

type 'v reg_input = Reg_write of 'v | Reg_read
type 'v reg_output = Reg_done | Reg_value of 'v

let register_spec ~equal =
  let apply state input =
    match input with
    | Reg_write v -> (v, Reg_done)
    | Reg_read -> (state, Reg_value state)
  in
  let equal_output a b =
    match (a, b) with
    | Reg_done, Reg_done -> true
    | Reg_value x, Reg_value y -> equal x y
    | Reg_done, Reg_value _ | Reg_value _, Reg_done -> false
  in
  { apply; equal_output; equal_state = equal }

type counter_input = Incr of int | Get
type counter_output = Incr_done | Count of int

let counter_spec =
  let apply state input =
    match input with
    | Incr d -> (state + d, Incr_done)
    | Get -> (state, Count state)
  in
  let equal_output a b =
    match (a, b) with
    | Incr_done, Incr_done -> true
    | Count x, Count y -> x = y
    | Incr_done, Count _ | Count _, Incr_done -> false
  in
  { apply; equal_output; equal_state = Int.equal }

open Snapshot_history

type violation =
  | Uniqueness_duplicate of { comp : int; id : int }
  | Uniqueness_order of { comp : int; first_id : int; second_id : int }
  | Integrity of { comp : int; rproc : int; id : int }
  | Proximity_future of { comp : int; rproc : int; rid : int; wid : int }
  | Proximity_overwritten of { comp : int; rproc : int; rid : int; wid : int }
  | Read_precedence of { comp : int; rproc : int; sproc : int }
  | Write_precedence of { jcomp : int; kcomp : int; rproc : int }

let pp_violation fmt = function
  | Uniqueness_duplicate { comp; id } ->
    Format.fprintf fmt "Uniqueness: two %d-Writes share id %d" comp id
  | Uniqueness_order { comp; first_id; second_id } ->
    Format.fprintf fmt
      "Uniqueness: %d-Write id %d precedes id %d but is not smaller" comp
      first_id second_id
  | Integrity { comp; rproc; id } ->
    Format.fprintf fmt
      "Integrity: Read by p%d returned id %d for component %d with no \
       matching Write input"
      rproc id comp
  | Proximity_future { comp; rproc; rid; wid } ->
    Format.fprintf fmt
      "Proximity: Read by p%d (phi_%d = %d) returned a value from the future \
       (Write id %d follows it)"
      rproc comp rid wid
  | Proximity_overwritten { comp; rproc; rid; wid } ->
    Format.fprintf fmt
      "Proximity: Read by p%d returned overwritten id %d for component %d \
       (Write id %d precedes the Read)"
      rproc rid comp wid
  | Read_precedence { comp; rproc; sproc } ->
    Format.fprintf fmt
      "Read Precedence: Reads by p%d and p%d obtained inconsistent snapshots \
       (component %d)"
      rproc sproc comp
  | Write_precedence { jcomp; kcomp; rproc } ->
    Format.fprintf fmt
      "Write Precedence: Read by p%d orders a %d-Write against a %d-Write \
       that precedes it"
      rproc jcomp kcomp

(* ------------------------------------------------------------------ *)
(* The five conditions — naive reference                                *)
(* ------------------------------------------------------------------ *)

let check_naive ~equal h =
  let violations = ref [] in
  let report v = violations := v :: !violations in
  let ws = Array.of_list (writes_with_initial h) in
  let rs = Array.of_list h.reads in
  let nw = Array.length ws in
  let nr = Array.length rs in
  (* Uniqueness *)
  for k = 0 to h.components - 1 do
    let seen = Hashtbl.create 16 in
    Array.iter
      (fun w ->
        if w.comp = k then
          if Hashtbl.mem seen w.id then
            report (Uniqueness_duplicate { comp = k; id = w.id })
          else Hashtbl.add seen w.id ())
      ws
  done;
  for i = 0 to nw - 1 do
    for j = 0 to nw - 1 do
      let v = ws.(i) and w = ws.(j) in
      if i <> j && v.comp = w.comp && write_precedes v w && v.id >= w.id then
        report
          (Uniqueness_order { comp = v.comp; first_id = v.id; second_id = w.id })
    done
  done;
  (* Integrity *)
  Array.iter
    (fun r ->
      for k = 0 to h.components - 1 do
        let matching =
          Array.exists
            (fun w -> w.comp = k && w.id = r.ids.(k) && equal w.value r.values.(k))
            ws
        in
        if not matching then
          report (Integrity { comp = k; rproc = r.rproc; id = r.ids.(k) })
      done)
    rs;
  (* Proximity *)
  Array.iter
    (fun r ->
      Array.iter
        (fun w ->
          let k = w.comp in
          if read_precedes_write r w && not (r.ids.(k) < w.id) then
            report
              (Proximity_future
                 { comp = k; rproc = r.rproc; rid = r.ids.(k); wid = w.id });
          if write_precedes_read w r && not (w.id <= r.ids.(k)) then
            report
              (Proximity_overwritten
                 { comp = k; rproc = r.rproc; rid = r.ids.(k); wid = w.id }))
        ws)
    rs;
  (* Read Precedence *)
  for i = 0 to nr - 1 do
    for j = 0 to nr - 1 do
      if i <> j then begin
        let r = rs.(i) and s = rs.(j) in
        let exists_lt = ref false in
        for k = 0 to h.components - 1 do
          if r.ids.(k) < s.ids.(k) then exists_lt := true
        done;
        if !exists_lt || read_precedes r s then
          for k = 0 to h.components - 1 do
            if not (r.ids.(k) <= s.ids.(k)) then
              report
                (Read_precedence { comp = k; rproc = r.rproc; sproc = s.rproc })
          done
      end
    done
  done;
  (* Write Precedence *)
  Array.iter
    (fun r ->
      for i = 0 to nw - 1 do
        for j = 0 to nw - 1 do
          let v = ws.(i) and w = ws.(j) in
          if
            i <> j && write_precedes v w
            && w.id <= r.ids.(w.comp)
            && not (v.id <= r.ids.(v.comp))
          then
            report
              (Write_precedence
                 { jcomp = v.comp; kcomp = w.comp; rproc = r.rproc })
        done
      done)
    rs;
  List.rev !violations

(* ------------------------------------------------------------------ *)
(* The five conditions — indexed                                        *)
(* ------------------------------------------------------------------ *)

(* Per-component index over the writes, sorted by id.  The Proximity and
   Write-Precedence conditions only ever ask "does some k-Write with id
   <= x (resp. > x) start late (resp. end early) enough?", which prefix
   maxima of [winv] and suffix minima of [wres] answer after one binary
   search; the Uniqueness order condition asks "does some k-Write ending
   by time t carry an id >= x?", which a wres-sorted prefix maximum of
   ids answers the same way.  The existence tests below are exact, but
   to keep the reported violation list bit-identical to [check_naive]
   (including order and multiplicity) each positive test falls back to
   the naive enumeration for just that read / component — so the
   quadratic loops are only ever paid for histories that are actually
   broken. *)
type comp_index = {
  ix_ids : int array;  (* write ids, ascending *)
  ix_pmax_winv : int array;  (* prefix max of winv over ix_ids order *)
  ix_smin_wres : int array;  (* suffix min of wres over ix_ids order *)
  ix_wres : int array;  (* write wres, ascending *)
  ix_pmax_id : int array;  (* prefix max of id over ix_wres order *)
}

let build_index h ws =
  let per = Array.make h.components [] in
  Array.iter (fun w -> per.(w.comp) <- w :: per.(w.comp)) ws;
  Array.map
    (fun lst ->
      let by_id = Array.of_list lst in
      Array.sort (fun v w -> compare (v.id, v.winv) (w.id, w.winv)) by_id;
      let n = Array.length by_id in
      let ix_ids = Array.map (fun w -> w.id) by_id in
      let ix_pmax_winv = Array.make n min_int in
      let acc = ref min_int in
      for i = 0 to n - 1 do
        acc := max !acc by_id.(i).winv;
        ix_pmax_winv.(i) <- !acc
      done;
      let ix_smin_wres = Array.make n max_int in
      let acc = ref max_int in
      for i = n - 1 downto 0 do
        acc := min !acc by_id.(i).wres;
        ix_smin_wres.(i) <- !acc
      done;
      let by_wres = Array.of_list lst in
      Array.sort (fun v w -> compare (v.wres, v.id) (w.wres, w.id)) by_wres;
      let ix_wres = Array.map (fun w -> w.wres) by_wres in
      let ix_pmax_id = Array.make n min_int in
      let acc = ref min_int in
      for i = 0 to n - 1 do
        acc := max !acc by_wres.(i).id;
        ix_pmax_id.(i) <- !acc
      done;
      { ix_ids; ix_pmax_winv; ix_smin_wres; ix_wres; ix_pmax_id })
    per

(* Number of entries <= x in the ascending array [a]. *)
let count_le a x =
  let lo = ref 0 and hi = ref (Array.length a) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if a.(mid) <= x then lo := mid + 1 else hi := mid
  done;
  !lo

let check ~equal h =
  let violations = ref [] in
  let report v = violations := v :: !violations in
  let ws = Array.of_list (writes_with_initial h) in
  let rs = Array.of_list h.reads in
  let nw = Array.length ws in
  let nr = Array.length rs in
  let idx = build_index h ws in
  (* Uniqueness: duplicates (already linear). *)
  for k = 0 to h.components - 1 do
    let seen = Hashtbl.create 16 in
    Array.iter
      (fun w ->
        if w.comp = k then
          if Hashtbl.mem seen w.id then
            report (Uniqueness_duplicate { comp = k; id = w.id })
          else Hashtbl.add seen w.id ())
      ws
  done;
  (* Uniqueness: order.  Existence: some same-component v with
     v.wres <= w.winv and v.id >= w.id.  (The test may also accept the
     degenerate v = w when an interval is inverted; the naive fallback
     settles exactness either way.) *)
  let uniqueness_order_possible =
    Array.exists
      (fun w ->
        let ci = idx.(w.comp) in
        let p = count_le ci.ix_wres w.winv in
        p > 0 && ci.ix_pmax_id.(p - 1) >= w.id)
      ws
  in
  if uniqueness_order_possible then
    for i = 0 to nw - 1 do
      for j = 0 to nw - 1 do
        let v = ws.(i) and w = ws.(j) in
        if i <> j && v.comp = w.comp && write_precedes v w && v.id >= w.id then
          report
            (Uniqueness_order { comp = v.comp; first_id = v.id; second_id = w.id })
      done
    done;
  (* Integrity: hash the writes by (component, id) once. *)
  let wtbl = Hashtbl.create (max 16 (2 * nw)) in
  Array.iter (fun w -> Hashtbl.add wtbl (w.comp, w.id) w.value) ws;
  Array.iter
    (fun r ->
      for k = 0 to h.components - 1 do
        let matching =
          List.exists
            (fun v -> equal v r.values.(k))
            (Hashtbl.find_all wtbl (k, r.ids.(k)))
        in
        if not matching then
          report (Integrity { comp = k; rproc = r.rproc; id = r.ids.(k) })
      done)
    rs;
  (* Proximity.  Future: a k-Write with id <= phi_k(r) starting at or
     after the Read's response; overwritten: one with id > phi_k(r)
     ending by the Read's invocation. *)
  Array.iter
    (fun r ->
      let flagged = ref false in
      for k = 0 to h.components - 1 do
        let ci = idx.(k) in
        let p = count_le ci.ix_ids r.ids.(k) in
        if p > 0 && ci.ix_pmax_winv.(p - 1) >= r.rres then flagged := true;
        if p < Array.length ci.ix_ids && ci.ix_smin_wres.(p) <= r.rinv then
          flagged := true
      done;
      if !flagged then
        Array.iter
          (fun w ->
            let k = w.comp in
            if read_precedes_write r w && not (r.ids.(k) < w.id) then
              report
                (Proximity_future
                   { comp = k; rproc = r.rproc; rid = r.ids.(k); wid = w.id });
            if write_precedes_read w r && not (w.id <= r.ids.(k)) then
              report
                (Proximity_overwritten
                   { comp = k; rproc = r.rproc; rid = r.ids.(k); wid = w.id }))
          ws)
    rs;
  (* Read Precedence (already O(nr^2 * C)). *)
  for i = 0 to nr - 1 do
    for j = 0 to nr - 1 do
      if i <> j then begin
        let r = rs.(i) and s = rs.(j) in
        let exists_lt = ref false in
        for k = 0 to h.components - 1 do
          if r.ids.(k) < s.ids.(k) then exists_lt := true
        done;
        if !exists_lt || read_precedes r s then
          for k = 0 to h.components - 1 do
            if not (r.ids.(k) <= s.ids.(k)) then
              report
                (Read_precedence { comp = k; rproc = r.rproc; sproc = s.rproc })
          done
      end
    done
  done;
  (* Write Precedence.  For a Read r split the writes into
     S = { w | phi(w) <= phi_w.comp(r) } (ordered at or before r's view)
     and T = { v | phi(v) > phi_v.comp(r) } (beyond it); a violation is
     a pair v in T, w in S with v [=] w, which exists iff the earliest
     response in T is <= the latest invocation in S.  S and T are
     disjoint, so the witness pair is automatically distinct. *)
  Array.iter
    (fun r ->
      let max_winv_s = ref min_int in
      let min_wres_t = ref max_int in
      for k = 0 to h.components - 1 do
        let ci = idx.(k) in
        let p = count_le ci.ix_ids r.ids.(k) in
        if p > 0 then max_winv_s := max !max_winv_s ci.ix_pmax_winv.(p - 1);
        if p < Array.length ci.ix_ids then
          min_wres_t := min !min_wres_t ci.ix_smin_wres.(p)
      done;
      if !min_wres_t <= !max_winv_s then
        for i = 0 to nw - 1 do
          for j = 0 to nw - 1 do
            let v = ws.(i) and w = ws.(j) in
            if
              i <> j && write_precedes v w
              && w.id <= r.ids.(w.comp)
              && not (v.id <= r.ids.(v.comp))
            then
              report
                (Write_precedence
                   { jcomp = v.comp; kcomp = w.comp; rproc = r.rproc })
          done
        done)
    rs;
  List.rev !violations

let conditions_hold ~equal h = check ~equal h = []

(* ------------------------------------------------------------------ *)
(* Linearization witness: relation F of the appendix                    *)
(* ------------------------------------------------------------------ *)

type 'a linearized_op =
  | L_write of 'a Snapshot_history.write
  | L_read of 'a Snapshot_history.read

(* Operation universe for the relation: writes (with initial) first,
   then reads. *)
type 'a node = N_write of 'a write | N_read of 'a read

let interval = function
  | N_write w -> (w.winv, w.wres)
  | N_read r -> (r.rinv, r.rres)

let node_precedes a b =
  let _, res_a = interval a and inv_b, _ = interval b in
  res_a <= inv_b

let witness ~equal h =
  let ws = Array.of_list (writes_with_initial h) in
  let rs = Array.of_list h.reads in
  let nw = Array.length ws and nr = Array.length rs in
  let n = nw + nr in
  let node i = if i < nw then N_write ws.(i) else N_read rs.(i - nw) in
  let adj = Array.make_matrix n n false in
  let add i j = if i <> j then adj.(i).(j) <- true in
  (* Relation A: interval precedence. *)
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j && node_precedes (node i) (node j) then add i j
    done
  done;
  (* Relation B: total order between each read and each write. *)
  for i = 0 to nw - 1 do
    for j = 0 to nr - 1 do
      let w = ws.(i) and r = rs.(j) in
      if w.id <= r.ids.(w.comp) then add i (nw + j) else add (nw + j) i
    done
  done;
  (* Relation C: reads ordered by any strictly-smaller component id. *)
  for i = 0 to nr - 1 do
    for j = 0 to nr - 1 do
      if i <> j then begin
        let lt = ref false in
        for k = 0 to h.components - 1 do
          if rs.(i).ids.(k) < rs.(j).ids.(k) then lt := true
        done;
        if !lt then add (nw + i) (nw + j)
      end
    done
  done;
  (* Relation D: v -> w when some read separates them (vBr and rBw). *)
  for i = 0 to nw - 1 do
    for j = 0 to nw - 1 do
      if i <> j then begin
        let v = ws.(i) and w = ws.(j) in
        let separated = ref false in
        for r = 0 to nr - 1 do
          let rd = rs.(r) in
          if v.id <= rd.ids.(v.comp) && rd.ids.(w.comp) < w.id then
            separated := true
        done;
        if !separated then add i j
      end
    done
  done;
  (* Relation E: v -> w when witnesses v' (same component as v) and w'
     (same component as w) exist with phi v <= phi v', v' [=] w',
     phi w' <= phi w.  Precompute, for every write v' and component k,
     the minimum id of a k-write w' with v' [=] w'. *)
  let min_w_id = Array.make_matrix nw h.components max_int in
  for i = 0 to nw - 1 do
    (* v' [=] v' holds (reflexive), so its own id participates for its
       own component. *)
    min_w_id.(i).(ws.(i).comp) <- ws.(i).id;
    for j = 0 to nw - 1 do
      if i <> j && write_precedes ws.(i) ws.(j) then begin
        let k = ws.(j).comp in
        if ws.(j).id < min_w_id.(i).(k) then min_w_id.(i).(k) <- ws.(j).id
      end
    done
  done;
  for i = 0 to nw - 1 do
    for j = 0 to nw - 1 do
      if i <> j then begin
        let v = ws.(i) and w = ws.(j) in
        (* exists v' with v'.comp = v.comp, v'.id >= v.id and
           min_w_id v' w.comp <= w.id *)
        let found = ref false in
        for i' = 0 to nw - 1 do
          if
            ws.(i').comp = v.comp
            && ws.(i').id >= v.id
            && min_w_id.(i').(w.comp) <= w.id
          then found := true
        done;
        if !found then add i j
      end
    done
  done;
  (* Kahn's algorithm, smallest index first (deterministic). *)
  let indeg = Array.make n 0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if adj.(i).(j) then indeg.(j) <- indeg.(j) + 1
    done
  done;
  let order = ref [] in
  let remaining = ref n in
  let removed = Array.make n false in
  (try
     while !remaining > 0 do
       let pick = ref (-1) in
       for i = n - 1 downto 0 do
         if (not removed.(i)) && indeg.(i) = 0 then pick := i
       done;
       if !pick = -1 then raise Exit;
       let i = !pick in
       removed.(i) <- true;
       decr remaining;
       order := i :: !order;
       for j = 0 to n - 1 do
         if adj.(i).(j) && not removed.(j) then indeg.(j) <- indeg.(j) - 1
       done
     done
   with Exit -> ());
  if !remaining > 0 then
    Error
      "relation F contains a cycle: the five Shrinking Lemma conditions do \
       not hold for this history"
  else begin
    let order = List.rev !order in
    (* Validate: sequential replay. *)
    let current = Array.make h.components None in
    let ok = ref (Ok ()) in
    List.iter
      (fun i ->
        match node i with
        | N_write w -> current.(w.comp) <- Some w.value
        | N_read r ->
          for k = 0 to h.components - 1 do
            match current.(k) with
            | Some v when equal v r.values.(k) -> ()
            | _ ->
              if !ok = Ok () then
                ok :=
                  Error
                    (Printf.sprintf
                       "witness replay failed: Read by p%d returned a stale \
                        value for component %d"
                       r.rproc k)
          done)
      order;
    match !ok with
    | Error _ as e -> e
    | Ok () ->
      Ok
        (List.map
           (fun i ->
             match node i with
             | N_write w -> L_write w
             | N_read r -> L_read r)
           order)
  end

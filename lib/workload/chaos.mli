(** Chaos campaigns: linearizability checking under injected faults,
    with automatic counterexample minimization.

    A chaos campaign sweeps {implementation × fault profile × seed},
    running the standard writers/readers workload in the simulator with

    - faulty base memory (via {!Csim.Faults}: lost writes, stuck-at
      cells, stuttered duplicate writes, read corruption, and the
      regular-register new/old-inversion weakening),
    - process faults (halting crashes and stall/resume freezes, via
      [Sim.run ~crashes ~stalls]), and
    - adversarial scheduling ([Schedule.Random] and the starvation
      policy [Schedule.Starving], alternating by seed),

    and judging every completed history with the Shrinking-Lemma
    oracle ([History.Shrinking]).  The point is robustness of the
    reproduction itself: on atomic memory the paper's constructions
    must pass {e every} profile that only breaks processes (crash,
    stall) — that is the theorem — while profiles that break the
    {e memory} assumption must be caught by the oracle, exactly as the
    deliberately-wrong implementations are.

    When a run is flagged, the campaign delta-debugs the failing
    (schedule, fault set) pair down to a locally-minimal reproduction:
    chaos elements (injections, crashes, stalls) are removed first,
    then schedule entries, re-running the candidate after each removal
    and keeping it only if the violation persists.  The result replays
    deterministically via [Schedule.Scripted] and serializes to a
    one-line script ({!cx_to_string} / {!cx_of_string}) that the
    [chaos] CLI subcommand can re-execute. *)

open Csim

(** {2 Fault profiles} *)

type profile = {
  label : string;
  injections : Faults.injection list;  (** faulty-memory wrappers *)
  crashes : (int * int) list;  (** halting failures, per [Sim.run] *)
  stalls : (int * int * int) list;  (** stall/resume faults, per [Sim.run] *)
}

val profile :
  ?injections:Faults.injection list ->
  ?crashes:(int * int) list ->
  ?stalls:(int * int * int) list ->
  string ->
  profile

val faulty_memory : profile -> bool
(** True iff the profile perturbs the memory itself (such profiles may
    legitimately be flagged even for correct implementations). *)

val default_profiles : components:int -> readers:int -> profile list
(** The standard taxonomy: [none]; crash and stall variants aimed at
    writer 0 and the last reader; and one profile per memory-fault
    kind. *)

(** {2 Campaign} *)

type config = {
  impls : Campaign.impl list;
  profiles : profile list;
  components : int;
  readers : int;
  writes_per_writer : int;
  scans_per_reader : int;
  seeds : int;  (** runs per (impl, profile) *)
  base_seed : int;
  max_steps : int;  (** step budget per run (bounds Stuck detection) *)
  minimize_budget : int;
      (** candidate replays the minimizer may spend per counterexample;
          [0] disables minimization *)
}

val default : config

type outcome =
  | Passed
  | Flagged of History.Shrinking.violation list
      (** non-linearizable (after crash-completion, see below) *)
  | Stuck_run of string  (** step budget exhausted: progress failure *)
  | Diverged of string
      (** replay script named a non-enabled process — only possible for
          minimizer candidates, never for a recorded schedule *)

val outcome_failed : outcome -> bool
(** [Flagged] or [Stuck_run]. *)

val render_outcome : outcome -> string
(** Human rendering of an outcome (violation lists included) — shared
    by the campaign counterexample reports. *)

(** A self-contained, replayable case: everything needed to re-execute
    one run, including the exact schedule. *)
type case = {
  impl : Campaign.impl;
  prof : profile;
  components : int;
  readers : int;
  writes_per_writer : int;
  scans_per_reader : int;
  fault_seed : int;  (** seed of the {!Faults.wrap} PRNG *)
}

val replay : case -> script:int array -> outcome
(** Re-execute a case under [Schedule.Scripted (script, Round_robin)].
    Fully deterministic: same case + same script = same outcome.

    Judging: the history of completed operations is checked against all
    five Shrinking conditions; for profiles with crashes, the victim's
    dangling Write is first completed ({!Resilience.complete_dangling})
    and residual [Integrity] violations — artifacts of writes left
    half-published by a crash — are excused, as in the resilience
    sweep.  Everything else counts. *)

val ddmin : budget:int -> test:('a list -> bool) -> 'a list -> 'a list * int
(** Greedy delta debugging on a list: repeatedly try to delete chunks,
    halving the chunk size whenever a whole sweep makes no progress.
    [test] must return [true] iff the candidate still fails; at most
    [budget] tests are run (further candidates are assumed passing).
    Returns the shrunk list and the number of tests spent.  The engine
    behind {!minimize}, exported for other fault domains (the
    message-passing backend minimizes network schedules with it). *)

type counterexample = {
  cx_case : case;  (** with the {e minimized} profile *)
  cx_script : int array;  (** minimized schedule *)
  cx_violations : string;  (** rendered violations of the minimized run *)
  cx_original_entries : int;  (** schedule entries before minimization *)
  cx_original_elements : int;  (** chaos elements before minimization *)
  cx_replays : int;  (** candidate replays the minimizer spent *)
}

val minimize : budget:int -> case -> script:int array -> counterexample
(** Delta-debug a failing (case, script) pair: first shrink the chaos
    element list (injections @ crashes @ stalls), then the schedule,
    preserving "replays to [Flagged] (resp. [Stuck_run])".  The input
    must itself fail under {!replay}. *)

val cx_to_string : counterexample -> string
(** One-line replayable script:
    [impl=... c=... r=... writes=... scans=... fault-seed=... faults=...
    crashes=... stalls=... script=...]. *)

val cx_of_string : string -> (counterexample, string) result
(** Parse {!cx_to_string} output ([cx_violations] etc. are recomputed on
    replay and left empty). *)

val pp_counterexample : Format.formatter -> counterexample -> unit

(** {2 Reports} *)

type cell = {
  cell_impl : Campaign.impl;
  cell_profile : profile;
  runs : int;
  flagged : int;
  stuck : int;
  faults_fired : int;  (** memory faults that actually triggered *)
  counterexample : counterexample option;
      (** first failing run of this cell, minimized *)
}

type report = {
  cells : cell list;
  total_runs : int;
  total_flagged : int;
  total_stuck : int;
}

val run :
  ?jobs:int -> ?pool:Exec.Pool.recorder -> ?metrics:Obs.Metrics.t ->
  config -> report
(** Run the full sweep.

    [jobs] (default 1) shards the flattened {impl × profile × seed}
    task list over that many domains via {!Exec.Pool}; per-run results
    are keyed by task index and folded back per cell in seed order, and
    minimization runs sequentially at the merge on the first failing
    seed of each cell — so the report (counterexamples included) is
    identical for every job count.  [pool] records per-run worker spans
    for the Chrome trace exporter.

    When [metrics] is given, totals are also accumulated into counters
    [chaos.runs], [chaos.flagged], [chaos.stuck], [chaos.faults_fired],
    [chaos.minimize_replays], and per-run schedule lengths into
    histogram [chaos.schedule_entries] (all additive across calls).
    Workers observe into private registries that are
    {!Obs.Metrics.merge}d at the join, so the metrics too are
    independent of [jobs]. *)

val pp_report : Format.formatter -> report -> unit

open Csim

type impl =
  | Impl_anderson
  | Impl_afek
  | Impl_unsafe_collect
  | Impl_repeated_collect

let impl_name = function
  | Impl_anderson -> "anderson"
  | Impl_afek -> "afek"
  | Impl_unsafe_collect -> "unsafe-collect"
  | Impl_repeated_collect -> "repeated-collect"

let all_impls =
  [ Impl_anderson; Impl_afek; Impl_unsafe_collect; Impl_repeated_collect ]

let impl_of_name s =
  List.find_opt (fun i -> String.equal (impl_name i) s) all_impls

let make_handle ?note ?(bits_per_value = 64) impl mem ~readers ~init =
  let h =
    match impl with
    | Impl_anderson ->
      Composite.Anderson.handle
        (Composite.Anderson.create ?note mem ~readers ~bits_per_value ~init)
    | Impl_afek -> Composite.Afek.create mem ~bits_per_value ~init
    | Impl_unsafe_collect ->
      Composite.Double_collect.create_unsafe mem ~bits_per_value ~init
    | Impl_repeated_collect ->
      Composite.Double_collect.create_repeated mem ~bits_per_value ~init
  in
  (* Implementations that support any number of readers advertise
     [max_int]; pin the actual count so process-id arithmetic in the
     recording wrapper stays sane. *)
  if h.Composite.Snapshot.readers = max_int then
    { h with Composite.Snapshot.readers }
  else h

type config = {
  impl : impl;
  backend : Backend.t;
  components : int;
  readers : int;
  writes_per_writer : int;
  scans_per_reader : int;
  schedules : int;
  base_seed : int;
  check_generic : bool;
}

let default =
  {
    impl = Impl_anderson;
    backend = Backend.shm;
    components = 3;
    readers = 2;
    writes_per_writer = 3;
    scans_per_reader = 3;
    schedules = 100;
    base_seed = 1;
    check_generic = true;
  }

type result = {
  runs : int;
  ops_checked : int;
  flagged_runs : int;
  generic_failures : int;
  witness_failures : int;
  stuck_runs : int;
  disagreements : int;
  example : string option;
}

let workload_procs cfg rec_ =
  let writer k () =
    for s = 1 to cfg.writes_per_writer do
      rec_.Composite.Snapshot.rupdate ~writer:k (((k + 1) * 1000) + s)
    done
  in
  let reader j () =
    for _ = 1 to cfg.scans_per_reader do
      ignore (rec_.Composite.Snapshot.rscan ~reader:j)
    done
  in
  Array.init (cfg.components + cfg.readers) (fun i ->
      if i < cfg.components then writer i else reader (i - cfg.components))

(* One seeded schedule, end to end: simulate, collect the history, run
   every checker.  Self-contained (its own [Sim.create]) and so safe to
   farm across domains; [ro_example] is rendered eagerly because the
   parallel merge has no way to go back and ask for it. *)
type run_outcome = {
  ro_stuck : bool;
  ro_ops : int;
  ro_flagged : bool;
  ro_generic_fail : bool;
  ro_witness_fail : bool;
  ro_disagreement : bool;
  ro_example : string option;
}

let stuck_outcome =
  {
    ro_stuck = true;
    ro_ops = 0;
    ro_flagged = false;
    ro_generic_fail = false;
    ro_witness_fail = false;
    ro_disagreement = false;
    ro_example = None;
  }

(* Per-op latencies out of a recorded history: res - inv in the
   harness's logical clock (scheduler steps for shm/byz, network ticks
   for net, atomic ticks for multicore).  Shared by every campaign
   flavor so each backend grows a comparable scan/update latency
   histogram for the SLO layer. *)
let observe_op_latencies m ~prefix (h : _ History.Snapshot_history.t) =
  let scan = Obs.Metrics.histogram m (prefix ^ ".scan.latency") in
  let update = Obs.Metrics.histogram m (prefix ^ ".update.latency") in
  List.iter
    (fun (w : _ History.Snapshot_history.write) ->
      Obs.Metrics.observe update (w.wres - w.winv))
    h.History.Snapshot_history.writes;
  List.iter
    (fun (r : _ History.Snapshot_history.read) ->
      Obs.Metrics.observe scan (r.rres - r.rinv))
    h.History.Snapshot_history.reads

let outcome_of_history worker_metrics cfg ~init h =
    let ops = History.Snapshot_history.size h in
    Obs.Metrics.observe
      (Obs.Metrics.histogram worker_metrics "campaign.ops_per_run")
      ops;
    observe_op_latencies worker_metrics
      ~prefix:("campaign." ^ cfg.backend.Backend.name)
      h;
    let violations = History.Shrinking.check ~equal:Int.equal h in
    let shrinking_ok = violations = [] in
    let witness_ok =
      match History.Shrinking.witness ~equal:Int.equal h with
      | Ok _ -> true
      | Error _ -> false
    in
    let generic_ok =
      if not cfg.check_generic then true
      else
        match
          History.Linearize.check
            (History.Linearize.snapshot_spec ~equal:Int.equal)
            ~init
            (History.Snapshot_history.to_ops h)
        with
        | History.Linearize.Linearizable _ -> true
        | History.Linearize.Not_linearizable -> false
        | History.Linearize.Too_large -> true (* skipped *)
    in
    {
      ro_stuck = false;
      ro_ops = ops;
      ro_flagged = not shrinking_ok;
      ro_generic_fail = not generic_ok;
      ro_witness_fail = shrinking_ok && not witness_ok;
      ro_disagreement = shrinking_ok && not generic_ok;
      ro_example =
        (if shrinking_ok then None
         else
           Some
             (Format.asprintf "%a@.%a"
                (Format.pp_print_list History.Shrinking.pp_violation)
                violations
                (History.Snapshot_history.pp string_of_int)
                h));
    }

(* Real parallelism: the handle sits on [Atomic.t] registers and the
   stress harness runs one domain per process.  The schedule index
   seeds nothing (the hardware interleaves), but every operation is
   recorded, so for histories the checkers accept — the expected case
   for the correct constructions — the outcome record is deterministic
   and the campaign result still merges bit-identically across [jobs]. *)
let run_one_domains worker_metrics cfg _i =
  let init = Array.init cfg.components (fun k -> (k + 1) * 10) in
  let handle =
    make_handle cfg.impl (Memory.atomic ()) ~readers:cfg.readers ~init
  in
  let h =
    Composite.Multicore.stress
      ~config:
        {
          Composite.Multicore.writer_ops = cfg.writes_per_writer;
          reader_ops = cfg.scans_per_reader;
          readers = cfg.readers;
        }
      ~init ~handle ()
  in
  outcome_of_history worker_metrics cfg ~init h

(* One schedule on any simulated substrate.  The backend descriptor is
   the whole story: it provisions the memory, the clock, the seeded
   driver and the metrics hook — the campaign no longer knows what the
   registers are made of, so a backend registered out of tree runs
   under the exact same code path as the built-ins. *)
let run_one worker_metrics cfg i =
  match cfg.backend.Backend.provision with
  | Backend.Domains -> run_one_domains worker_metrics cfg i
  | Backend.Simulated provision ->
    let seed = cfg.base_seed + i in
    let inst =
      provision ~metrics:worker_metrics ~seed
        ~procs:(cfg.components + cfg.readers)
    in
    let init = Array.init cfg.components (fun k -> (k + 1) * 10) in
    let handle =
      make_handle cfg.impl inst.Backend.memory ~readers:cfg.readers ~init
    in
    let rec_ =
      Composite.Snapshot.record ~clock:inst.Backend.clock ~initial:init handle
    in
    let procs = workload_procs cfg rec_ in
    let outcome =
      match inst.Backend.drive procs with
      | Backend.Stuck_run -> stuck_outcome
      | Backend.Completed ->
        outcome_of_history worker_metrics cfg ~init
          (Composite.Snapshot.history rec_)
    in
    inst.Backend.observe worker_metrics;
    outcome

let run ?(jobs = 1) ?pool ?metrics cfg =
  let outcomes, workers =
    Exec.Pool.map_workers ~jobs ?recorder:pool
      ~label:(fun i -> Printf.sprintf "sched seed=%d" (cfg.base_seed + i))
      ~worker:Obs.Metrics.create cfg.schedules
      (fun m i -> run_one m cfg i)
  in
  (* The merge walks outcomes in schedule-index order, so the totals —
     and in particular which flagged run supplies [example] — are the
     same for every job count. *)
  let flagged = ref 0 in
  let generic_failures = ref 0 in
  let witness_failures = ref 0 in
  let stuck = ref 0 in
  let disagreements = ref 0 in
  let ops = ref 0 in
  let example = ref None in
  Array.iter
    (fun o ->
      if o.ro_stuck then incr stuck;
      ops := !ops + o.ro_ops;
      if o.ro_flagged then begin
        incr flagged;
        if !example = None then example := o.ro_example
      end;
      if o.ro_generic_fail then incr generic_failures;
      if o.ro_witness_fail then incr witness_failures;
      if o.ro_disagreement then incr disagreements)
    outcomes;
  let result =
    {
      runs = cfg.schedules;
      ops_checked = !ops;
      flagged_runs = !flagged;
      generic_failures = !generic_failures;
      witness_failures = !witness_failures;
      stuck_runs = !stuck;
      disagreements = !disagreements;
      example = !example;
    }
  in
  (match metrics with
  | None -> ()
  | Some m ->
    List.iter (fun w -> Obs.Metrics.merge ~into:m w) workers;
    let c name by = Obs.Metrics.incr ~by (Obs.Metrics.counter m name) in
    c "campaign.runs" result.runs;
    c "campaign.ops_checked" result.ops_checked;
    c "campaign.flagged_runs" result.flagged_runs;
    c "campaign.generic_failures" result.generic_failures;
    c "campaign.witness_failures" result.witness_failures;
    c "campaign.stuck_runs" result.stuck_runs;
    c "campaign.disagreements" result.disagreements);
  result

let pp_result fmt r =
  Format.fprintf fmt
    "@[<v>runs: %d@,operations checked: %d@,runs flagged by Shrinking \
     checker: %d@,runs rejected by generic oracle: %d@,witness failures: \
     %d@,stuck (non-wait-free) runs: %d@,checker disagreements: %d@]"
    r.runs r.ops_checked r.flagged_runs r.generic_failures r.witness_failures
    r.stuck_runs r.disagreements

(* ------------------------------------------------------------------ *)
(* Bounded-exhaustive                                                   *)
(* ------------------------------------------------------------------ *)

type exhaustive_result = {
  ex_runs : int;
  ex_exhaustive : bool;
  ex_flagged : int;
  ex_first_failure : string option;
}

exception Flagged of string

let exhaustive ?(max_runs = 200_000) ~impl ~components ~readers
    ~writes_per_writer ~scans_per_reader () =
  let flagged = ref 0 in
  let first_failure = ref None in
  let factory () =
    let env = Sim.create ~trace:false () in
    let mem = Memory.of_sim env in
    let init = Array.init components (fun k -> (k + 1) * 10) in
    let handle = make_handle impl mem ~readers ~init in
    let rec_ =
      Composite.Snapshot.record
        ~clock:(fun () -> Sim.now env)
        ~initial:init handle
    in
    let writer k () =
      for s = 1 to writes_per_writer do
        rec_.Composite.Snapshot.rupdate ~writer:k (((k + 1) * 1000) + s)
      done
    in
    let reader j () =
      for _ = 1 to scans_per_reader do
        ignore (rec_.Composite.Snapshot.rscan ~reader:j)
      done
    in
    let procs =
      Array.init (components + readers) (fun i ->
          if i < components then writer i else reader (i - components))
    in
    let check (_ : Sim.env) =
      let h = Composite.Snapshot.history rec_ in
      match History.Shrinking.check ~equal:Int.equal h with
      | [] -> ()
      | violations ->
        raise
          (Flagged
             (Format.asprintf "%a"
                (Format.pp_print_list History.Shrinking.pp_violation)
                violations))
    in
    (env, procs, check)
  in
  let runs, exhaustive =
    match Sim.explore ~max_runs factory with
    | exploration -> (exploration.Sim.runs, exploration.Sim.exhaustive)
    | exception Sim.Exploration_failure { exn = Flagged msg; _ } ->
      incr flagged;
      if !first_failure = None then first_failure := Some msg;
      (* Exploration aborts on its first failing schedule. *)
      (0, false)
    | exception Sim.Exploration_failure { exn; _ } -> raise exn
  in
  {
    ex_runs = runs;
    ex_exhaustive = exhaustive;
    ex_flagged = !flagged;
    ex_first_failure = !first_failure;
  }

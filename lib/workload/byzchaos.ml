open Csim

(* Byzantine survive/break campaigns across the full stack: run the
   composite snapshot constructions over [Registers.Byzantine.memory]
   (the f-tolerant SWMR-from-SWSR construction) whose base cells are
   actively faulty ([Csim.Faults] Byzantine kinds), and assert the
   tolerance boundary from both sides —

   - within tolerance (at most f lying base cells per link) every
     history must check out clean: the construction masks the lies;
   - beyond tolerance (f+1 concentrated liars) or with the Byzantine
     layer removed entirely (the unprotected stack), the Shrinking
     oracle must catch the regression, and the failure is delta-debugged
     to a minimal replayable counterexample exactly as in [Chaos].

   Mirrors [Chaos]/[Netchaos] in shape: record -> judge -> ddmin ->
   one-line replay script. *)

(* ------------------------------------------------------------------ *)
(* Profiles                                                             *)
(* ------------------------------------------------------------------ *)

type protection =
  | Unprotected  (* impls run directly over the faulty memory *)
  | Tolerant of int  (* Registers.Byzantine.memory ~f in between *)

type expectation = Survive | Break

type profile = {
  label : string;
  protection : protection;
  injections : Faults.injection list;
  expect : expectation;
}

let profile ?(protection = Tolerant 1) ~expect label injections =
  { label; protection; injections; expect }

let protection_label = function
  | Unprotected -> "none"
  | Tolerant f -> Printf.sprintf "f=%d" f

(* The default sweep over f and misbehavior profiles.  Survive rows
   keep the adversary within the construction's budget: at most [f]
   faulty base cells per link, placed either by the budgeted [Byzantine]
   adversary (claims in allocation order, so it concentrates on the
   first link) or by targeting the [.repK] replica groups of
   [Registers.Byzantine] cell names.  Break rows exceed the budget —
   every replica of every link into the first scanning reader lies —
   or drop the protective layer entirely. *)
let default_profiles ~components ~readers:_ =
  let all kind = [ { Faults.kind; target = Faults.All } ] in
  let at sub kind = [ { Faults.kind; target = Faults.Contains sub } ] in
  (* Reader ports are process ids; the first scanning reader is process
     [components].  Every link delivering to it has a cell name
     containing "<port>.rep" ("...w2rP.repK" or "...rIrP.repK"). *)
  let first_reader_links = Printf.sprintf "%d.rep" components in
  [
    profile "byz1-masked" ~expect:Survive
      (all (Faults.Byzantine { f = 1; prob = 1.0 }));
    profile "byz2-masked-f2" ~protection:(Tolerant 2) ~expect:Survive
      (all (Faults.Byzantine { f = 2; prob = 1.0 }));
    profile "equivocate-rep0" ~expect:Survive
      (at ".rep0" (Faults.Equivocate { prob = 1.0 }));
    profile "regress-rep0" ~expect:Survive
      (at ".rep0" (Faults.Regress { prob = 1.0 }));
    profile "drops-rep0" ~expect:Survive
      (at ".rep0" (Faults.Lost_write { prob = 0.6 }));
    profile "regress-reader" ~expect:Break
      (at first_reader_links (Faults.Regress { prob = 1.0 }));
    profile "unprotected" ~protection:Unprotected ~expect:Break
      (all (Faults.Byzantine { f = 1; prob = 1.0 }));
  ]

(* ------------------------------------------------------------------ *)
(* Single runs                                                          *)
(* ------------------------------------------------------------------ *)

type config = {
  impls : Campaign.impl list;
  profiles : profile list;
  components : int;
  readers : int;
  writes_per_writer : int;
  scans_per_reader : int;
  seeds : int;
  base_seed : int;
  max_steps : int;
  minimize_budget : int;
}

let default =
  {
    impls = [ Campaign.Impl_anderson; Campaign.Impl_afek ];
    profiles = default_profiles ~components:2 ~readers:2;
    components = 2;
    readers = 2;
    writes_per_writer = 2;
    scans_per_reader = 2;
    seeds = 6;
    base_seed = 1;
    (* Every register access fans out over (2f+1)-replicated links, so
       byz runs are an order of magnitude heavier than plain chaos. *)
    max_steps = 400_000;
    minimize_budget = 1_200;
  }

type case = {
  impl : Campaign.impl;
  prof : profile;
  components : int;
  readers : int;
  writes_per_writer : int;
  scans_per_reader : int;
  fault_seed : int;
}

type run_result = {
  outcome : Chaos.outcome;
  schedule : int array;  (* scheduler picks, in order (record mode only) *)
  fired : int;  (* faults that actually triggered *)
  cells_claimed : int;  (* base cells the budgeted adversary owns *)
}

type mode = Record of Schedule.t | Replay of int array

(* Name the active stack for failure reports, outermost layer first:
   e.g. "byzantine(f=1,ports=4) over byz:1:1 over sim". *)
let stack_description (case : case) =
  let faulty =
    Faults.stack_label ~layers:[ case.prof.injections ] ~base:"sim"
  in
  match case.prof.protection with
  | Unprotected -> faulty
  | Tolerant f ->
    Printf.sprintf "byzantine(f=%d,ports=%d) over %s" f
      (case.components + case.readers)
      faulty

let exec ?metrics ~max_steps (case : case) mode =
  let env = Sim.create ~trace_capacity:4096 () in
  let base = Memory.of_sim env in
  let who () = try Sim.self () with Sim.Not_in_simulation -> 0 in
  let stack =
    Faults.wrap_over ~seed:case.fault_seed ~who case.prof.injections
      (Faults.stack ~base:"sim" base)
  in
  let counters = Faults.counters stack in
  let mem =
    match case.prof.protection with
    | Unprotected -> stack.Faults.mem
    | Tolerant f ->
      (* Every process — writers included, since their updates embed
         collects — needs a reader port, so the construction is sized
         for all of them. *)
      Registers.Byzantine.memory ~f
        ~readers:(case.components + case.readers)
        stack.Faults.mem
  in
  let init = Array.init case.components (fun k -> (k + 1) * 10) in
  let handle = Campaign.make_handle case.impl mem ~readers:case.readers ~init in
  let rec_ =
    Composite.Snapshot.record ~clock:(fun () -> Sim.now env) ~initial:init handle
  in
  let writer k () =
    for s = 1 to case.writes_per_writer do
      rec_.Composite.Snapshot.rupdate ~writer:k (((k + 1) * 1000) + s)
    done
  in
  let reader j () =
    for _ = 1 to case.scans_per_reader do
      ignore (rec_.Composite.Snapshot.rscan ~reader:j)
    done
  in
  let procs =
    Array.init
      (case.components + case.readers)
      (fun i ->
        if i < case.components then writer i else reader (i - case.components))
  in
  let picks = ref [] in
  let policy =
    match mode with
    | Record inner ->
      let d = Schedule.driver inner in
      Schedule.Choose
        (fun ~enabled ~step ->
          let p = Schedule.pick d ~enabled ~step in
          picks := p :: !picks;
          p)
    | Replay script -> Schedule.Scripted (script, Schedule.Round_robin)
  in
  let finish outcome =
    {
      outcome;
      schedule = Array.of_list (List.rev !picks);
      fired = Faults.fired counters;
      cells_claimed = counters.Faults.byz_cells;
    }
  in
  match Sim.run env ~policy ~max_steps procs with
  | exception Sim.Stuck msg -> finish (Chaos.Stuck_run msg)
  | exception Schedule.Bad_script msg -> finish (Chaos.Diverged msg)
  | (_ : Sim.stats) ->
    (* No crashes here, so no dangling-operation excuses: every
       Shrinking condition must hold on the full history. *)
    let h = Composite.Snapshot.history rec_ in
    Option.iter
      (fun m -> Campaign.observe_op_latencies m ~prefix:"byzchaos" h)
      metrics;
    let violations = History.Shrinking.check ~equal:Int.equal h in
    finish
      (if violations = [] then Chaos.Passed else Chaos.Flagged violations)

let replay case ~script =
  (exec ~max_steps:default.max_steps case (Replay script)).outcome

(* ------------------------------------------------------------------ *)
(* Counterexample minimization                                          *)
(* ------------------------------------------------------------------ *)

type counterexample = {
  cx_case : case;
  cx_script : int array;
  cx_violations : string;
  cx_stack : string;  (* the active fault stack of the minimized case *)
  cx_original_entries : int;
  cx_original_elements : int;
  cx_replays : int;
}

let minimize ~budget case ~script =
  (* The protection layer is the variant under test and is never
     dropped — removing it would change which construction stands
     accused.  The adversary's injections and the schedule shrink. *)
  let same_kind reference o =
    match (reference, o) with
    | Chaos.Flagged _, Chaos.Flagged _ -> true
    | Chaos.Stuck_run _, Chaos.Stuck_run _ -> true
    | _ -> false
  in
  let reference = replay case ~script in
  if not (Chaos.outcome_failed reference) then
    invalid_arg "Byzchaos.minimize: the given case does not fail under replay";
  let original = case.prof.injections in
  let injections, spent1 =
    Chaos.ddmin ~budget
      ~test:(fun injections ->
        let prof = { case.prof with injections } in
        same_kind reference (replay { case with prof } ~script))
      original
  in
  let case = { case with prof = { case.prof with injections } } in
  let entries, spent2 =
    Chaos.ddmin
      ~budget:(max 0 (budget - spent1))
      ~test:(fun entries ->
        same_kind reference (replay case ~script:(Array.of_list entries)))
      (Array.to_list script)
  in
  let cx_script = Array.of_list entries in
  {
    cx_case = case;
    cx_script;
    cx_violations = Chaos.render_outcome (replay case ~script:cx_script);
    cx_stack = stack_description case;
    cx_original_entries = Array.length script;
    cx_original_elements = List.length original;
    cx_replays = spent1 + spent2;
  }

(* ------------------------------------------------------------------ *)
(* Replayable one-line scripts                                          *)
(* ------------------------------------------------------------------ *)

let concat_map sep f xs = String.concat sep (List.map f xs)

let protection_to_string = function
  | Unprotected -> "none"
  | Tolerant f -> string_of_int f

let protection_of_string = function
  | "none" -> Some Unprotected
  | s -> (
    match int_of_string_opt s with
    | Some f when f >= 0 -> Some (Tolerant f)
    | _ -> None)

let cx_to_string cx =
  let c = cx.cx_case in
  Printf.sprintf
    "impl=%s prot=%s c=%d r=%d writes=%d scans=%d fault-seed=%d label=%s \
     faults=%s script=%s"
    (Campaign.impl_name c.impl)
    (protection_to_string c.prof.protection)
    c.components c.readers c.writes_per_writer c.scans_per_reader c.fault_seed
    c.prof.label
    (concat_map "," Faults.injection_to_string c.prof.injections)
    (concat_map "," string_of_int (Array.to_list cx.cx_script))

let cx_of_string s =
  let ( let* ) = Result.bind in
  let fields =
    List.filter_map
      (fun tok ->
        match String.index_opt tok '=' with
        | None -> None
        | Some i ->
          Some
            ( String.sub tok 0 i,
              String.sub tok (i + 1) (String.length tok - i - 1) ))
      (String.split_on_char ' ' (String.trim s))
  in
  let field name = List.assoc_opt name fields in
  let req name =
    match field name with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "byz replay script: missing %s=" name)
  in
  let int_field name =
    let* v = req name in
    match int_of_string_opt v with
    | Some n -> Ok n
    | None ->
      Error (Printf.sprintf "byz replay script: %s=%S is not an integer" name v)
  in
  let list_field name parse =
    match field name with
    | None | Some "" -> Ok []
    | Some v ->
      List.fold_right
        (fun tok acc ->
          let* acc = acc in
          let* x = parse tok in
          Ok (x :: acc))
        (String.split_on_char ',' v) (Ok [])
  in
  let* impl_s = req "impl" in
  let* impl =
    match Campaign.impl_of_name impl_s with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "byz replay script: unknown impl %S" impl_s)
  in
  let* protection =
    let* v = req "prot" in
    match protection_of_string v with
    | Some p -> Ok p
    | None -> Error (Printf.sprintf "byz replay script: bad prot %S" v)
  in
  let* components = int_field "c" in
  let* readers = int_field "r" in
  let* writes_per_writer = int_field "writes" in
  let* scans_per_reader = int_field "scans" in
  let* fault_seed = int_field "fault-seed" in
  let label = Option.value (field "label") ~default:"replay" in
  let* injections =
    list_field "faults" (fun tok -> Faults.injection_of_string tok)
  in
  let* script =
    list_field "script" (fun tok ->
        match int_of_string_opt tok with
        | Some n -> Ok n
        | None ->
          Error (Printf.sprintf "byz replay script: bad script entry %S" tok))
  in
  let cx_case =
    {
      impl;
      prof = { label; protection; injections; expect = Break };
      components;
      readers;
      writes_per_writer;
      scans_per_reader;
      fault_seed;
    }
  in
  Ok
    {
      cx_case;
      cx_script = Array.of_list script;
      cx_violations = "";
      cx_stack = stack_description cx_case;
      cx_original_entries = List.length script;
      cx_original_elements = List.length injections;
      cx_replays = 0;
    }

let pp_counterexample fmt cx =
  let c = cx.cx_case in
  Format.fprintf fmt
    "@[<v>minimized counterexample: impl=%s profile=%s@,\
     fault stack: %s@,\
     adversary elements: %d (from %d)  schedule entries: %d (from %d)  \
     minimizer replays: %d@,\
     faults=[%s] fault-seed=%d@,\
     violations of the minimized run:@,%s@,\
     replay with:@,  byz --replay '%s'@]"
    (Campaign.impl_name c.impl) c.prof.label cx.cx_stack
    (List.length c.prof.injections)
    cx.cx_original_elements (Array.length cx.cx_script)
    cx.cx_original_entries cx.cx_replays
    (concat_map "," Faults.injection_to_string c.prof.injections)
    c.fault_seed cx.cx_violations (cx_to_string cx)

(* ------------------------------------------------------------------ *)
(* The campaign                                                         *)
(* ------------------------------------------------------------------ *)

type cell = {
  cell_impl : Campaign.impl;
  cell_profile : profile;
  runs : int;
  flagged : int;
  stuck : int;
  faults_fired : int;
  cells_claimed : int;
  as_expected : bool;
      (* Survive rows stayed clean / Break rows were caught *)
  counterexample : counterexample option;
}

type report = {
  cells : cell list;
  total_runs : int;
  total_flagged : int;
  total_stuck : int;
  boundary_holds : bool;  (* every cell matched its profile's side *)
}

let case_of (cfg : config) impl prof i =
  {
    impl;
    prof;
    components = cfg.components;
    readers = cfg.readers;
    writes_per_writer = cfg.writes_per_writer;
    scans_per_reader = cfg.scans_per_reader;
    fault_seed = cfg.base_seed + i;
  }

let run ?(jobs = 1) ?pool ?metrics cfg =
  let cells_spec =
    List.concat_map
      (fun impl -> List.map (fun prof -> (impl, prof)) cfg.profiles)
      cfg.impls
    |> Array.of_list
  in
  let ncells = Array.length cells_spec in
  let results, workers =
    Exec.Pool.map_workers ~jobs ?recorder:pool
      ~label:(fun t ->
        let impl, prof = cells_spec.(t / cfg.seeds) in
        Printf.sprintf "byz %s/%s seed=%d" (Campaign.impl_name impl) prof.label
          (cfg.base_seed + (t mod cfg.seeds)))
      ~worker:Obs.Metrics.create
      (ncells * cfg.seeds)
      (fun m t ->
        let impl, prof = cells_spec.(t / cfg.seeds) in
        let i = t mod cfg.seeds in
        let case = case_of cfg impl prof i in
        (* Alternate uniform-random and starvation scheduling, exactly
           as the shared-memory chaos campaign does. *)
        let policy =
          if i mod 2 = 0 then Schedule.Random case.fault_seed
          else Schedule.Starving case.fault_seed
        in
        let r = exec ~metrics:m ~max_steps:cfg.max_steps case (Record policy) in
        Obs.Metrics.observe
          (Obs.Metrics.histogram m "byz.schedule_entries")
          (Array.length r.schedule);
        r)
  in
  (* Sequential merge in cell-and-seed order, minimizing the first
     failing seed of each cell — deterministic at every job count. *)
  let cells =
    List.init ncells (fun ci ->
        let impl, prof = cells_spec.(ci) in
        let flagged = ref 0 in
        let stuck = ref 0 in
        let fired = ref 0 in
        let claimed = ref 0 in
        let cx = ref None in
        for i = 0 to cfg.seeds - 1 do
          let r = results.((ci * cfg.seeds) + i) in
          fired := !fired + r.fired;
          claimed := !claimed + r.cells_claimed;
          (match r.outcome with
          | Chaos.Passed | Chaos.Diverged _ -> ()
          | Chaos.Stuck_run _ -> incr stuck
          | Chaos.Flagged _ -> incr flagged);
          if
            !cx = None && cfg.minimize_budget > 0
            && Chaos.outcome_failed r.outcome
          then
            cx :=
              Some
                (minimize ~budget:cfg.minimize_budget
                   (case_of cfg impl prof i)
                   ~script:r.schedule)
        done;
        let as_expected =
          match prof.expect with
          | Survive -> !flagged = 0 && !stuck = 0
          | Break -> !flagged > 0
        in
        {
          cell_impl = impl;
          cell_profile = prof;
          runs = cfg.seeds;
          flagged = !flagged;
          stuck = !stuck;
          faults_fired = !fired;
          cells_claimed = !claimed;
          as_expected;
          counterexample = !cx;
        })
  in
  let report =
    {
      cells;
      total_runs = List.fold_left (fun a c -> a + c.runs) 0 cells;
      total_flagged = List.fold_left (fun a c -> a + c.flagged) 0 cells;
      total_stuck = List.fold_left (fun a c -> a + c.stuck) 0 cells;
      boundary_holds = List.for_all (fun c -> c.as_expected) cells;
    }
  in
  (match metrics with
  | None -> ()
  | Some m ->
    List.iter (fun w -> Obs.Metrics.merge ~into:m w) workers;
    let c name by = Obs.Metrics.incr ~by (Obs.Metrics.counter m name) in
    c "byz.runs" report.total_runs;
    c "byz.flagged" report.total_flagged;
    c "byz.stuck" report.total_stuck;
    c "byz.faults_fired"
      (List.fold_left (fun a cl -> a + cl.faults_fired) 0 cells);
    c "byz.cells_claimed"
      (List.fold_left (fun a cl -> a + cl.cells_claimed) 0 cells);
    c "byz.minimize_replays"
      (List.fold_left
         (fun a cl ->
           a
           + Option.fold ~none:0 ~some:(fun cx -> cx.cx_replays)
               cl.counterexample)
         0 cells));
  report

let pp_report fmt r =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun c ->
      Format.fprintf fmt
        "%-18s %-18s prot=%-5s expect=%-7s runs=%-3d flagged=%-3d stuck=%-3d \
         fired=%-5d claimed=%-3d %s@,"
        (Campaign.impl_name c.cell_impl)
        c.cell_profile.label
        (protection_label c.cell_profile.protection)
        (match c.cell_profile.expect with
        | Survive -> "survive"
        | Break -> "break")
        c.runs c.flagged c.stuck c.faults_fired c.cells_claimed
        (if c.as_expected then "ok" else "UNEXPECTED"))
    r.cells;
  Format.fprintf fmt "total: runs=%d flagged=%d stuck=%d boundary=%s@]"
    r.total_runs r.total_flagged r.total_stuck
    (if r.boundary_holds then "holds" else "VIOLATED")

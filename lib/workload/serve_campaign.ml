type config = {
  outer : Serve.outer_impl;
  shards : int;
  components : int;
  readers : int;
  writer_ops : int;
  reader_ops : int;
  runs : int;
  validate : bool;
  cache : bool;
  combine : bool;
  check_generic : bool;
}

let default =
  {
    outer = Serve.Outer_afek;
    shards = 2;
    components = 4;
    readers = 2;
    writer_ops = 4;
    reader_ops = 4;
    runs = 5;
    validate = true;
    cache = true;
    combine = true;
    check_generic = true;
  }

type result = {
  runs : int;
  ops_checked : int;
  flagged_runs : int;
  generic_failures : int;
  accounting_failures : int;
  example : string option;
}

type run_outcome = {
  ro_ops : int;
  ro_flagged : bool;
  ro_generic_fail : bool;
  ro_accounting_fail : bool;
  ro_example : string option;
}

(* One service lifetime: build, start the appliers, stress with writer
   and reader domains, stop, check the recorded history.  Self-contained
   and so safe to farm across pool domains (each run's own domains are
   nested under the pool worker's). *)
let run_one worker_metrics (cfg : config) (_ : int) =
  let init = Array.init cfg.components (fun k -> (k + 1) * 10) in
  let srv =
    Serve.create ~outer:cfg.outer ~validate:cfg.validate ~cache:cfg.cache
      ~combine:cfg.combine ~shards:cfg.shards ~readers:cfg.readers ~init ()
  in
  Serve.start srv;
  (* Cached scans are orders of magnitude cheaper than synchronous
     updates (mailbox -> applier -> publish -> ack), so unpaced reader
     domains would finish every scan before the first write completes
     and the checkers would see no concurrency at all.  Pace each scan
     on writer progress: start it only once another write has been
     applied (or all writes are done), so scans are spread across the
     whole write activity — which is also what makes the
     validation-disabled mutant reliably observable. *)
  let total_writes = cfg.components * cfg.writer_ops in
  let applied () = (Serve.stats srv).Serve.applied in
  (* Bounded exponential backoff instead of a bare relax loop: if an
     applier domain is descheduled mid-campaign the pacing readers back
     off instead of spinning flat out, and the waves that hit the cap
     are counted so the stall is visible in the worker metrics. *)
  let pace_stalls = Atomic.make 0 in
  let reader_pace () =
    let before = applied () in
    let b = Serve.Backoff.make pace_stalls in
    while before < total_writes && applied () = before do
      Serve.Backoff.once b
    done
  in
  let h =
    Composite.Multicore.stress ~reader_pace
      ~config:
        {
          Composite.Multicore.writer_ops = cfg.writer_ops;
          reader_ops = cfg.reader_ops;
          readers = cfg.readers;
        }
      ~init ~handle:(Serve.handle srv) ()
  in
  Serve.shutdown srv;
  Serve.observe srv worker_metrics;
  Obs.Metrics.incr
    ~by:(Atomic.get pace_stalls)
    (Obs.Metrics.counter worker_metrics "serve_campaign.pace.stalls");
  (* The raw-speed identities must hold exactly at quiescence: every
     post applied or coalesced, every scan request either combined or
     performed (and the outer register paid only for the performed
     ones). *)
  let st = Serve.stats srv in
  let accounting_ok =
    st.Serve.posted = st.Serve.applied + st.Serve.coalesced
    && st.Serve.pending = 0
    && st.Serve.scans_requested
       = st.Serve.scans_combined + st.Serve.scans_performed
    && st.Serve.full_scans = st.Serve.scans_performed
    && (cfg.combine || st.Serve.scans_combined = 0)
  in
  let ops = History.Snapshot_history.size h in
  Obs.Metrics.observe
    (Obs.Metrics.histogram worker_metrics "serve_campaign.ops_per_run")
    ops;
  (* Latencies in multicore ticks (the stress clock): how many other
     operations started/finished while this one was in flight. *)
  Campaign.observe_op_latencies worker_metrics ~prefix:"serve_campaign" h;
  let violations = History.Shrinking.check ~equal:Int.equal h in
  let shrinking_ok = violations = [] in
  let generic_ok =
    if not cfg.check_generic then true
    else
      match
        History.Linearize.check
          (History.Linearize.snapshot_spec ~equal:Int.equal)
          ~init
          (History.Snapshot_history.to_ops h)
      with
      | History.Linearize.Linearizable _ -> true
      | History.Linearize.Not_linearizable -> false
      | History.Linearize.Too_large -> true (* skipped *)
  in
  {
    ro_ops = ops;
    ro_flagged = not shrinking_ok;
    ro_generic_fail = not generic_ok;
    ro_accounting_fail = not accounting_ok;
    ro_example =
      (if shrinking_ok then None
       else
         Some
           (Format.asprintf "%a@.%a"
              (Format.pp_print_list History.Shrinking.pp_violation)
              violations
              (History.Snapshot_history.pp string_of_int)
              h));
  }

let run ?(jobs = 1) ?pool ?metrics (cfg : config) =
  if cfg.runs < 1 then invalid_arg "Serve_campaign.run: runs must be >= 1";
  let outcomes, workers =
    Exec.Pool.map_workers ~jobs ?recorder:pool
      ~label:(fun i -> Printf.sprintf "serve run %d (S=%d)" i cfg.shards)
      ~worker:Obs.Metrics.create cfg.runs
      (fun m i -> run_one m cfg i)
  in
  (* Index-ordered merge, as in {!Campaign.run}: totals and the example
     choice are independent of the job count. *)
  let flagged = ref 0 in
  let generic_failures = ref 0 in
  let accounting_failures = ref 0 in
  let ops = ref 0 in
  let example = ref None in
  Array.iter
    (fun o ->
      ops := !ops + o.ro_ops;
      if o.ro_flagged then begin
        incr flagged;
        if !example = None then example := o.ro_example
      end;
      if o.ro_generic_fail then incr generic_failures;
      if o.ro_accounting_fail then incr accounting_failures)
    outcomes;
  let result =
    {
      runs = cfg.runs;
      ops_checked = !ops;
      flagged_runs = !flagged;
      generic_failures = !generic_failures;
      accounting_failures = !accounting_failures;
      example = !example;
    }
  in
  (match metrics with
  | None -> ()
  | Some m ->
    List.iter (fun w -> Obs.Metrics.merge ~into:m w) workers;
    let c name by = Obs.Metrics.incr ~by (Obs.Metrics.counter m name) in
    c "serve_campaign.runs" result.runs;
    c "serve_campaign.ops_checked" result.ops_checked;
    c "serve_campaign.flagged_runs" result.flagged_runs;
    c "serve_campaign.generic_failures" result.generic_failures;
    c "serve_campaign.accounting_failures" result.accounting_failures);
  result

let pp_result fmt r =
  Format.fprintf fmt
    "@[<v>runs: %d@,operations checked: %d@,runs flagged by Shrinking \
     checker: %d@,runs rejected by generic oracle: %d@,runs with broken \
     counter identities: %d@]"
    r.runs r.ops_checked r.flagged_runs r.generic_failures
    r.accounting_failures

(* Chaos campaigns for the message-passing backend: the injectable
   faults are message loss, message reordering (the Random network
   schedule), replica crash-stops, and — as a negative control — a
   deliberately broken quorum size that voids the ABD intersection
   argument.  Mirrors [Chaos] (shared-memory faults) in shape:
   record → judge → ddmin-minimize → replayable one-line script. *)

type profile = {
  label : string;
  loss : float;
  crashes : (int * int) list;
  byz : (int * Net.Sim.byz_flavor) list;
      (* replicas that lie rather than stop *)
  quorum : int option;  (* None = majority; Some k = Net.Abd.Fixed k *)
}

let profile ?(loss = 0.0) ?(crashes = []) ?(byz = []) ?quorum label =
  { label; loss; crashes; byz; quorum }

let broken_quorum p = match p.quorum with Some _ -> true | None -> false

let default_profiles ~replicas =
  [
    profile "none";
    profile "loss" ~loss:0.15;
    profile "crash-last" ~crashes:[ (replicas - 1, 3) ];
    profile "crash+loss" ~loss:0.1 ~crashes:[ (replicas - 1, 2) ];
    (* Loss rides along: it stretches the window between a write
       completing at its 1-replica "quorum" and the value reaching the
       other replicas, which is what makes the missing intersection
       observable in small runs. *)
    profile "broken-quorum" ~loss:0.3 ~quorum:1;
  ]

type config = {
  impls : Campaign.impl list;
  profiles : profile list;
  replicas : int;
  components : int;
  readers : int;
  writes_per_writer : int;
  scans_per_reader : int;
  seeds : int;
  base_seed : int;
  max_steps : int;
  minimize_budget : int;
}

let default =
  {
    impls = [ Campaign.Impl_anderson; Campaign.Impl_afek ];
    profiles = default_profiles ~replicas:3;
    replicas = 3;
    components = 2;
    readers = 2;
    writes_per_writer = 2;
    scans_per_reader = 2;
    seeds = 10;
    base_seed = 1;
    max_steps = 100_000;
    minimize_budget = 3_000;
  }

type case = {
  impl : Campaign.impl;
  prof : profile;
  replicas : int;
  components : int;
  readers : int;
  writes_per_writer : int;
  scans_per_reader : int;
  seed : int;  (* drives the loss PRNG and the recorded Random policy *)
}

type run_result = {
  outcome : Chaos.outcome;
  schedule : int array;  (* network-scheduler picks (record mode only) *)
  net : Net.Sim.stats;
  byz_lies : int;  (* individual replica misbehaviors, summed *)
  byz_per_replica : (int * int) list;
      (* (replica, misbehaviors), in assignment order *)
}

type mode = Record of Csim.Schedule.t | Replay of int array

let run_case ?(log = false) ?metrics ?causal ~max_steps (case : case) mode =
  let env =
    Net.Sim.create ~log ~loss:case.prof.loss ~crashes:case.prof.crashes
      ~byzantine:case.prof.byz ~replicas:case.replicas ~seed:case.seed ()
  in
  let quorum =
    match case.prof.quorum with
    | None -> Net.Abd.Majority
    | Some k -> Net.Abd.Fixed k
  in
  let abd = Net.Abd.create ~quorum ?causal env in
  let mem = Net.Abd.memory abd in
  let init = Array.init case.components (fun k -> (k + 1) * 10) in
  (* With a causal collector, composite-level Scan/Update markers (and
     Anderson's per-level markers) become note spans on the issuing
     client's track — the parents the ABD op spans attach to. *)
  let note =
    Option.map
      (fun c text ->
        Obs.Causal.note c ~track:(Net.Sim.self ()) ~at:(Net.Sim.now env) text)
      causal
  in
  let handle =
    Campaign.make_handle ?note case.impl mem ~readers:case.readers ~init
  in
  let rec_ =
    Composite.Snapshot.record ?note
      ~clock:(fun () -> Net.Sim.now env)
      ~initial:init handle
  in
  let writer k () =
    for s = 1 to case.writes_per_writer do
      rec_.Composite.Snapshot.rupdate ~writer:k (((k + 1) * 1000) + s)
    done
  in
  let reader j () =
    for _ = 1 to case.scans_per_reader do
      ignore (rec_.Composite.Snapshot.rscan ~reader:j)
    done
  in
  let procs =
    Array.init
      (case.components + case.readers)
      (fun i ->
        if i < case.components then writer i else reader (i - case.components))
  in
  let picks = ref [] in
  let policy =
    match mode with
    | Record inner ->
      let d = Csim.Schedule.driver inner in
      Csim.Schedule.Choose
        (fun ~enabled ~step ->
          let p = Csim.Schedule.pick d ~enabled ~step in
          picks := p :: !picks;
          p)
    | Replay script -> Csim.Schedule.Scripted (script, Csim.Schedule.Round_robin)
  in
  let finish outcome =
    ( {
        outcome;
        schedule = Array.of_list (List.rev !picks);
        net = Net.Sim.totals env;
        byz_lies =
          List.fold_left
            (fun a (_, _, st) -> a + Net.Sim.byz_misbehaviors st)
            0 (Net.Sim.byz_stats env);
        byz_per_replica =
          List.map
            (fun (r, _, st) -> (r, Net.Sim.byz_misbehaviors st))
            (Net.Sim.byz_stats env);
      },
      env )
  in
  match Net.Sim.run env ~policy ~max_steps procs with
  | exception Net.Sim.Stuck msg -> finish (Chaos.Stuck_run msg)
  | exception Csim.Schedule.Bad_script msg -> finish (Chaos.Diverged msg)
  | (_ : Net.Sim.stats) ->
    (* Replica crashes are the ABD emulation's problem, not the
       clients': unlike shared-memory process crashes there are no
       dangling operations to complete — every client op terminates,
       and the full history must check out with no excuses. *)
    let h = Composite.Snapshot.history rec_ in
    Option.iter
      (fun m -> Campaign.observe_op_latencies m ~prefix:"netchaos" h)
      metrics;
    let violations = History.Shrinking.check ~equal:Int.equal h in
    finish
      (if violations = [] then Chaos.Passed else Chaos.Flagged violations)

let exec ?metrics ~max_steps case mode =
  fst (run_case ?metrics ~max_steps case mode)

let run_once ?log ?metrics ?causal case =
  fst
    (run_case ?log ?metrics ?causal ~max_steps:default.max_steps case
       (Record (Csim.Schedule.Random case.seed)))

let replay case ~script =
  (exec ~max_steps:default.max_steps case (Replay script)).outcome

let export_timeline ?pp (case : case) ~path =
  let result, env =
    run_case ~log:true ~max_steps:default.max_steps case
      (Record (Csim.Schedule.Random case.seed))
  in
  Net.Timeline.export ~path ?pp env;
  result

let export_causal ?pp (case : case) ~path =
  let causal = Obs.Causal.create () in
  let result, env =
    run_case ~log:true ~causal ~max_steps:default.max_steps case
      (Record (Csim.Schedule.Random case.seed))
  in
  Net.Timeline.export ~path ?pp ~causal env;
  (result, causal)

(* ------------------------------------------------------------------ *)
(* Counterexample minimization                                          *)
(* ------------------------------------------------------------------ *)

(* The droppable network-fault elements.  The quorum override is part
   of the case (the variant under test), not an element: dropping it
   would change which algorithm is being accused. *)
type element =
  | E_loss of float
  | E_crash of int * int
  | E_byz of int * Net.Sim.byz_flavor

let elements_of_profile p =
  (if p.loss > 0.0 then [ E_loss p.loss ] else [])
  @ List.map (fun (r, k) -> E_crash (r, k)) p.crashes
  @ List.map (fun (r, fl) -> E_byz (r, fl)) p.byz

let profile_of_elements ~label ~quorum els =
  {
    label;
    quorum;
    loss =
      List.fold_left
        (fun acc -> function E_loss l -> l | _ -> acc)
        0.0 els;
    crashes =
      List.filter_map (function E_crash (r, k) -> Some (r, k) | _ -> None) els;
    byz =
      List.filter_map (function E_byz (r, fl) -> Some (r, fl) | _ -> None) els;
  }

type counterexample = {
  cx_case : case;
  cx_script : int array;
  cx_violations : string;
  cx_original_entries : int;
  cx_original_elements : int;
  cx_replays : int;
}

let render_outcome = function
  | Chaos.Passed -> "passed"
  | Chaos.Stuck_run msg -> "stuck: " ^ msg
  | Chaos.Diverged msg -> "diverged: " ^ msg
  | Chaos.Flagged vs ->
    Format.asprintf "%a"
      (Format.pp_print_list ~pp_sep:Format.pp_print_newline
         History.Shrinking.pp_violation)
      vs

let minimize ~budget case ~script =
  let same_kind reference o =
    match (reference, o) with
    | Chaos.Flagged _, Chaos.Flagged _ -> true
    | Chaos.Stuck_run _, Chaos.Stuck_run _ -> true
    | _ -> false
  in
  let reference = replay case ~script in
  if not (Chaos.outcome_failed reference) then
    invalid_arg "Netchaos.minimize: the given case does not fail under replay";
  let original_elements = elements_of_profile case.prof in
  (* Pass 1: shrink the fault elements (loss, crashes), replaying the
     full message schedule. *)
  let elements, spent1 =
    Chaos.ddmin ~budget
      ~test:(fun els ->
        let prof =
          profile_of_elements ~label:case.prof.label ~quorum:case.prof.quorum
            els
        in
        same_kind reference (replay { case with prof } ~script))
      original_elements
  in
  let case =
    {
      case with
      prof =
        profile_of_elements ~label:case.prof.label ~quorum:case.prof.quorum
          elements;
    }
  in
  (* Pass 2: shrink the message schedule itself.  A dropped entry hands
     the remaining deliveries to the round-robin fallback; entries the
     shorter action list can no longer satisfy make the candidate
     Diverge, which the test rejects. *)
  let entries, spent2 =
    Chaos.ddmin
      ~budget:(max 0 (budget - spent1))
      ~test:(fun entries ->
        same_kind reference (replay case ~script:(Array.of_list entries)))
      (Array.to_list script)
  in
  let cx_script = Array.of_list entries in
  {
    cx_case = case;
    cx_script;
    cx_violations = render_outcome (replay case ~script:cx_script);
    cx_original_entries = Array.length script;
    cx_original_elements = List.length original_elements;
    cx_replays = spent1 + spent2;
  }

(* ------------------------------------------------------------------ *)
(* Replayable one-line scripts                                          *)
(* ------------------------------------------------------------------ *)

let concat_map sep f xs = String.concat sep (List.map f xs)

let render_byz byz =
  concat_map ","
    (fun (r, fl) ->
      Printf.sprintf "%d:%s" r (Net.Sim.byz_flavor_to_string fl))
    byz

let cx_to_string cx =
  let c = cx.cx_case in
  Printf.sprintf
    "impl=%s n=%d quorum=%s c=%d r=%d writes=%d scans=%d seed=%d label=%s \
     loss=%g crashes=%s byz=%s script=%s"
    (Campaign.impl_name c.impl) c.replicas
    (match c.prof.quorum with
    | None -> "majority"
    | Some k -> string_of_int k)
    c.components c.readers c.writes_per_writer c.scans_per_reader c.seed
    c.prof.label c.prof.loss
    (concat_map "," (fun (r, k) -> Printf.sprintf "%d:%d" r k) c.prof.crashes)
    (render_byz c.prof.byz)
    (concat_map "," string_of_int (Array.to_list cx.cx_script))

let cx_of_string s =
  let ( let* ) = Result.bind in
  let fields =
    List.filter_map
      (fun tok ->
        match String.index_opt tok '=' with
        | None -> None
        | Some i ->
          Some
            ( String.sub tok 0 i,
              String.sub tok (i + 1) (String.length tok - i - 1) ))
      (String.split_on_char ' ' (String.trim s))
  in
  let field name = List.assoc_opt name fields in
  let req name =
    match field name with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "net replay script: missing %s=" name)
  in
  let int_field name =
    let* v = req name in
    match int_of_string_opt v with
    | Some n -> Ok n
    | None ->
      Error (Printf.sprintf "net replay script: %s=%S is not an integer" name v)
  in
  let list_field name parse =
    match field name with
    | None | Some "" -> Ok []
    | Some v ->
      List.fold_right
        (fun tok acc ->
          let* acc = acc in
          let* x = parse tok in
          Ok (x :: acc))
        (String.split_on_char ',' v) (Ok [])
  in
  let* impl_s = req "impl" in
  let* impl =
    match Campaign.impl_of_name impl_s with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "net replay script: unknown impl %S" impl_s)
  in
  let* replicas = int_field "n" in
  let* quorum =
    let* v = req "quorum" in
    if v = "majority" then Ok None
    else
      match int_of_string_opt v with
      | Some k -> Ok (Some k)
      | None -> Error (Printf.sprintf "net replay script: bad quorum %S" v)
  in
  let* components = int_field "c" in
  let* readers = int_field "r" in
  let* writes_per_writer = int_field "writes" in
  let* scans_per_reader = int_field "scans" in
  let* seed = int_field "seed" in
  let label = Option.value (field "label") ~default:"replay" in
  let* loss =
    match field "loss" with
    | None -> Ok 0.0
    | Some v -> (
      match float_of_string_opt v with
      | Some l -> Ok l
      | None -> Error (Printf.sprintf "net replay script: bad loss %S" v))
  in
  let* crashes =
    list_field "crashes" (fun tok ->
        match String.split_on_char ':' tok with
        | [ r; k ] -> (
          match (int_of_string_opt r, int_of_string_opt k) with
          | Some r, Some k -> Ok (r, k)
          | _ ->
            Error (Printf.sprintf "net replay script: bad crash entry %S" tok))
        | _ -> Error (Printf.sprintf "net replay script: bad crash entry %S" tok))
  in
  let* byz =
    (* Absent in scripts recorded before Byzantine replicas existed —
       an empty assignment keeps those replaying verbatim. *)
    list_field "byz" (fun tok ->
        match String.split_on_char ':' tok with
        | [ r; fl ] -> (
          match (int_of_string_opt r, Net.Sim.byz_flavor_of_string fl) with
          | Some r, Some fl -> Ok (r, fl)
          | _ ->
            Error (Printf.sprintf "net replay script: bad byz entry %S" tok))
        | _ -> Error (Printf.sprintf "net replay script: bad byz entry %S" tok))
  in
  let* script =
    list_field "script" (fun tok ->
        match int_of_string_opt tok with
        | Some n -> Ok n
        | None ->
          Error (Printf.sprintf "net replay script: bad script entry %S" tok))
  in
  Ok
    {
      cx_case =
        {
          impl;
          prof = { label; loss; crashes; byz; quorum };
          replicas;
          components;
          readers;
          writes_per_writer;
          scans_per_reader;
          seed;
        };
      cx_script = Array.of_list script;
      cx_violations = "";
      cx_original_entries = List.length script;
      cx_original_elements =
        (if loss > 0.0 then 1 else 0) + List.length crashes + List.length byz;
      cx_replays = 0;
    }

let pp_counterexample fmt cx =
  let c = cx.cx_case in
  Format.fprintf fmt
    "@[<v>minimized counterexample: impl=%s profile=%s n=%d quorum=%s@,\
     fault elements: %d (from %d)  message-schedule entries: %d (from %d)  \
     minimizer replays: %d@,\
     loss=%g crashes=[%s] byz=[%s] seed=%d@,\
     violations of the minimized run:@,%s@,\
     replay with:@,  net --replay '%s'@]"
    (Campaign.impl_name c.impl) c.prof.label c.replicas
    (match c.prof.quorum with
    | None -> "majority"
    | Some k -> string_of_int k)
    (List.length (elements_of_profile c.prof))
    cx.cx_original_elements (Array.length cx.cx_script)
    cx.cx_original_entries cx.cx_replays c.prof.loss
    (concat_map "," (fun (r, k) -> Printf.sprintf "%d:%d" r k) c.prof.crashes)
    (render_byz c.prof.byz) c.seed cx.cx_violations (cx_to_string cx)

(* ------------------------------------------------------------------ *)
(* The campaign                                                         *)
(* ------------------------------------------------------------------ *)

type cell = {
  cell_impl : Campaign.impl;
  cell_profile : profile;
  runs : int;
  flagged : int;
  stuck : int;
  msgs_sent : int;
  msgs_lost : int;
  counterexample : counterexample option;
}

type report = {
  cells : cell list;
  total_runs : int;
  total_flagged : int;
  total_stuck : int;
}

let case_of (cfg : config) impl prof i =
  {
    impl;
    prof;
    replicas = cfg.replicas;
    components = cfg.components;
    readers = cfg.readers;
    writes_per_writer = cfg.writes_per_writer;
    scans_per_reader = cfg.scans_per_reader;
    seed = cfg.base_seed + i;
  }

let run ?(jobs = 1) ?pool ?metrics cfg =
  let cells_spec =
    List.concat_map
      (fun impl -> List.map (fun prof -> (impl, prof)) cfg.profiles)
      cfg.impls
    |> Array.of_list
  in
  let ncells = Array.length cells_spec in
  let results, workers =
    Exec.Pool.map_workers ~jobs ?recorder:pool
      ~label:(fun t ->
        let impl, prof = cells_spec.(t / cfg.seeds) in
        Printf.sprintf "net %s/%s seed=%d" (Campaign.impl_name impl) prof.label
          (cfg.base_seed + (t mod cfg.seeds)))
      ~worker:Obs.Metrics.create
      (ncells * cfg.seeds)
      (fun m t ->
        let impl, prof = cells_spec.(t / cfg.seeds) in
        let i = t mod cfg.seeds in
        let case = case_of cfg impl prof i in
        (* Random delivery order is the reordering adversary. *)
        let r =
          exec ~metrics:m ~max_steps:cfg.max_steps case
            (Record (Csim.Schedule.Random case.seed))
        in
        Obs.Metrics.observe
          (Obs.Metrics.histogram m "netchaos.schedule_entries")
          (Array.length r.schedule);
        r)
  in
  (* Sequential merge in cell-and-seed order, minimizing the first
     failing seed of each cell — deterministic at every job count. *)
  let cells =
    List.init ncells (fun ci ->
        let impl, prof = cells_spec.(ci) in
        let flagged = ref 0 in
        let stuck = ref 0 in
        let sent = ref 0 in
        let lost = ref 0 in
        let cx = ref None in
        for i = 0 to cfg.seeds - 1 do
          let r = results.((ci * cfg.seeds) + i) in
          sent := !sent + r.net.Net.Sim.sent;
          lost := !lost + r.net.Net.Sim.lost;
          (match r.outcome with
          | Chaos.Passed | Chaos.Diverged _ -> ()
          | Chaos.Stuck_run _ -> incr stuck
          | Chaos.Flagged _ -> incr flagged);
          if
            !cx = None && cfg.minimize_budget > 0
            && Chaos.outcome_failed r.outcome
          then
            cx :=
              Some
                (minimize ~budget:cfg.minimize_budget
                   (case_of cfg impl prof i)
                   ~script:r.schedule)
        done;
        {
          cell_impl = impl;
          cell_profile = prof;
          runs = cfg.seeds;
          flagged = !flagged;
          stuck = !stuck;
          msgs_sent = !sent;
          msgs_lost = !lost;
          counterexample = !cx;
        })
  in
  let report =
    {
      cells;
      total_runs = List.fold_left (fun a c -> a + c.runs) 0 cells;
      total_flagged = List.fold_left (fun a c -> a + c.flagged) 0 cells;
      total_stuck = List.fold_left (fun a c -> a + c.stuck) 0 cells;
    }
  in
  (match metrics with
  | None -> ()
  | Some m ->
    List.iter (fun w -> Obs.Metrics.merge ~into:m w) workers;
    let c name by = Obs.Metrics.incr ~by (Obs.Metrics.counter m name) in
    c "netchaos.runs" report.total_runs;
    c "netchaos.flagged" report.total_flagged;
    c "netchaos.stuck" report.total_stuck;
    c "netchaos.msgs_sent" (List.fold_left (fun a cl -> a + cl.msgs_sent) 0 cells);
    c "netchaos.msgs_lost" (List.fold_left (fun a cl -> a + cl.msgs_lost) 0 cells);
    c "netchaos.byz_lies" (Array.fold_left (fun a r -> a + r.byz_lies) 0 results);
    (* Exact per-replica misbehavior accounting. *)
    Array.iter
      (fun r ->
        List.iter
          (fun (rep, n) ->
            c (Printf.sprintf "netchaos.byz.replica%d" rep) n)
          r.byz_per_replica)
      results);
  report

let pp_report fmt r =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun c ->
      Format.fprintf fmt
        "%-18s %-16s runs=%-4d flagged=%-4d stuck=%-4d msgs=%d lost=%d@,"
        (Campaign.impl_name c.cell_impl)
        c.cell_profile.label c.runs c.flagged c.stuck c.msgs_sent c.msgs_lost)
    r.cells;
  Format.fprintf fmt "total: runs=%d flagged=%d stuck=%d@]" r.total_runs
    r.total_flagged r.total_stuck

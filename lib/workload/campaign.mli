(** Randomized and bounded-exhaustive verification campaigns
    (experiment E6).

    A campaign runs a composite-register implementation in the simulator
    over many schedules, recording every history and checking it with
    the Shrinking Lemma checker, the witness construction, and (for
    small histories) the generic linearizability oracle.  For the
    paper's construction every schedule must pass; for the unsafe
    double collect the campaign must catch violations. *)

type impl =
  | Impl_anderson
  | Impl_afek
  | Impl_unsafe_collect
  | Impl_repeated_collect

val impl_name : impl -> string
val impl_of_name : string -> impl option
val all_impls : impl list

val make_handle :
  ?note:(string -> unit) ->
  ?bits_per_value:int ->
  impl -> Csim.Memory.t -> readers:int -> init:int array ->
  int Composite.Snapshot.t
(** Instantiate an implementation on the given memory, as a unified
    {!Composite.Composite_intf.t} handle.  [note] is passed through to
    implementations that emit operation-span markers (only the paper's
    construction does today); see [Composite.Anderson.create].
    [bits_per_value] (default 64) is the declared register width, for
    space accounting in the simulator. *)

type config = {
  impl : impl;
  backend : Backend.t;
      (** Execution substrate, from the {!Backend} registry: ["shm"]
          (seeded simulator interleavings), ["net"] (ABD quorums over
          the simulated network, seeded delivery orders) or
          ["multicore"] (real domains over [Atomic.t] registers). *)
  components : int;
  readers : int;
  writes_per_writer : int;
  scans_per_reader : int;
  schedules : int;  (** number of random seeds to run *)
  base_seed : int;
  check_generic : bool;
      (** also run the exponential Wing–Gong oracle (requires small
          histories) *)
}

val default : config

val observe_op_latencies :
  Obs.Metrics.t -> prefix:string -> 'a History.Snapshot_history.t -> unit
(** Feed every recorded operation's [res - inv] latency (in the
    recording harness's logical clock) into [<prefix>.scan.latency] /
    [<prefix>.update.latency] histograms.  Campaigns call this with
    their backend name so the SLO layer ({!Obs.Slo}) sees one
    comparable latency class per backend. *)

type result = {
  runs : int;
  ops_checked : int;  (** operations across all runs *)
  flagged_runs : int;  (** runs with at least one Shrinking violation *)
  generic_failures : int;  (** runs the generic oracle rejected *)
  witness_failures : int;  (** runs where witness construction failed *)
  stuck_runs : int;  (** runs exceeding the step budget (wait-freedom) *)
  disagreements : int;
      (** runs where Shrinking said "ok" but the oracle said "not
          linearizable" — must always be 0 (soundness of the lemma) *)
  example : string option;  (** rendering of one flagged history *)
}

val run :
  ?jobs:int -> ?pool:Exec.Pool.recorder -> ?metrics:Obs.Metrics.t ->
  config -> result
(** Run the campaign.

    [jobs] (default 1) schedules are farmed over that many domains via
    {!Exec.Pool}; results are keyed by schedule index and merged in
    index order, so the returned record — including which flagged run
    supplies [example] — is identical for every job count.  [pool]
    records per-schedule worker spans for the Chrome trace exporter.
    With the ["multicore"] backend, individual runs are scheduled by
    the hardware rather than a seed; every operation is still recorded
    and checked, so for histories the checkers accept (the expected
    case for correct implementations) the merged record remains
    bit-identical across job counts.

    When [metrics] is given, the result is also accumulated into
    counters [campaign.runs], [campaign.ops_checked],
    [campaign.flagged_runs], [campaign.generic_failures],
    [campaign.witness_failures], [campaign.stuck_runs] and
    [campaign.disagreements], and per-run history sizes into histogram
    [campaign.ops_per_run] (additive across calls).  With the ["net"]
    backend, network totals accumulate too: counters
    [net.msgs_sent] / [net.msgs_delivered] / [net.msgs_lost] /
    [net.timeouts] / [net.rounds] / [net.retransmits] and the
    quorum-phase latency histogram [net.phase_wait].  Workers observe
    into private registries that are {!Obs.Metrics.merge}d at the join,
    so the metrics too are independent of [jobs]. *)

val pp_result : Format.formatter -> result -> unit

(** {2 Bounded-exhaustive exploration} *)

type exhaustive_result = {
  ex_runs : int;
  ex_exhaustive : bool;  (** all interleavings were covered *)
  ex_flagged : int;  (** schedules on which a checker failed *)
  ex_first_failure : string option;
}

val exhaustive :
  ?max_runs:int -> impl:impl -> components:int -> readers:int ->
  writes_per_writer:int -> scans_per_reader:int -> unit ->
  exhaustive_result
(** Enumerates {e every} interleaving (up to [max_runs], default
    200_000) of the given tiny configuration, checking the Shrinking
    conditions on each. *)

(** Open- and closed-loop load generation against the network edge.

    A run has two halves, deliberately separated:

    - {!plan} is {e deterministic}: from a seed it derives the whole
      op sequence — Poisson arrival offsets (open loop), Zipfian
      component skew, the read/write mix, and the assignment of each
      logical client's ops to a socket connection.  Equal configs give
      byte-equal plans at any domain count, which is what the
      determinism test pins.
    - {!run} executes a plan against a live server: a few client
      domains each drive their share of the connections through a flat
      [Unix.select] state machine, one request in flight per
      connection, and record per-op latencies into {!Obs.Metrics}
      histograms ([edge.write.latency_ns], [edge.post.latency_ns],
      [edge.scan.latency_ns]) so p50/p99/p999 flow into {!Obs.Slo}
      verdicts and BENCH.json.

    {b Open loop} ([Open_loop rate]): ops become due on the Poisson
    schedule regardless of completions, and latency is measured from
    the op's {e scheduled} arrival to its response — queueing delay
    behind a saturated server is charged to the op, so there is no
    coordinated omission.  {b Closed loop} ([Closed_loop]): each
    connection issues its next op as soon as the previous response
    lands; latency is pure round-trip time.

    Caveats (single host, honest): client and server share the
    machine, so the generator perturbs what it measures; logical
    clients are multiplexed over [connections] sockets (the
    select-based engine keeps well under the 1024-fd [select] limit);
    loopback TCP has none of a real network's latency distribution. *)

type arrival = Open_loop of float  (** ops/second, > 0 *) | Closed_loop

type config = {
  connections : int;  (** sockets to open (≥ 1) *)
  clients : int;  (** logical clients multiplexed over them (≥ connections) *)
  ops : int;  (** total operations *)
  arrival : arrival;
  write_ratio : float;  (** fraction of ops that write, in [0, 1] *)
  post_ratio : float;  (** fraction of {e writes} sent as async posts *)
  zipf_theta : float;  (** component skew; 0 = uniform, 0.9 = classic *)
  seed : int;
  domains : int;  (** client domains driving the connections (≥ 1) *)
}

val default : config
(** 16 connections, 256 clients, 2000 ops, open loop at 20k ops/s,
    30% writes (half of them posts), theta 0.9, seed 1, 2 domains. *)

type op_kind = Op_write | Op_post | Op_scan

type planned = {
  p_at_ns : int;  (** due time, ns from run start; 0 in closed loop *)
  p_conn : int;
  p_client : int;
  p_kind : op_kind;
  p_component : int;  (** meaningless for scans *)
  p_value : int;
}

val plan : components:int -> config -> planned array
(** The full deterministic schedule, sorted by due time (stable for
    equal times).  Raises [Invalid_argument] on nonsensical configs. *)

type report = {
  ops_done : int;
  errors : int;  (** error responses + response-kind mismatches *)
  elapsed_ns : int;  (** first send to last response, monotonic *)
  throughput_per_sec : float;
  stalled_conns : int;  (** connections that died before their plan drained *)
}

val run :
  ?metrics:Obs.Metrics.t ->
  ?host:string ->
  port:int ->
  components:int ->
  config ->
  report
(** Execute [plan ~components config] against the server at [port].
    Latency histograms and [loadgen.ops]/[loadgen.errors] counters land
    in [metrics] when given. *)

val zipf_weights : components:int -> theta:float -> float array
(** The normalized cumulative Zipf distribution the planner samples
    from (exposed for tests). *)

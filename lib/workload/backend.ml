type kind =
  | Shm
  | Net of { replicas : int; crash : int; loss : float }
  | Byz of { f : int; budget : int }
  | Multicore

type t = { name : string; doc : string; kind : kind }

let shm =
  {
    name = "shm";
    doc =
      "deterministic shared-memory simulator; nondeterminism is the \
       process interleaving";
    kind = Shm;
  }

let net ?(replicas = 3) ?(crash = 0) ?(loss = 0.) () =
  if replicas < 1 then invalid_arg "Backend.net: replicas must be >= 1";
  if crash < 0 || 2 * crash >= replicas then
    invalid_arg "Backend.net: need crash < replicas / 2 (quorum intact)";
  if loss < 0. || loss >= 1. then
    invalid_arg "Backend.net: loss must be in [0, 1)";
  {
    name = "net";
    doc =
      "ABD quorum emulation over the simulated crash-prone network; \
       nondeterminism is the message delivery order";
    kind = Net { replicas; crash; loss };
  }

let byz ?(f = 1) ?(budget = 1) () =
  if f < 0 then invalid_arg "Backend.byz: f must be >= 0";
  if budget < 0 then invalid_arg "Backend.byz: budget must be >= 0";
  {
    name = "byz";
    doc =
      "the f-tolerant Byzantine register construction over shared memory \
       with a budgeted lying adversary on the base cells; nondeterminism \
       is the process interleaving";
    kind = Byz { f; budget };
  }

let multicore =
  {
    name = "multicore";
    doc =
      "real parallelism on OCaml domains over Atomic.t registers; \
       nondeterminism is the hardware schedule";
    kind = Multicore;
  }

let registry : (string, t) Hashtbl.t = Hashtbl.create 8

let register b = Hashtbl.replace registry b.name b

let () = List.iter register [ shm; net (); byz (); multicore ]

let names () =
  List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) registry [])

let find name =
  match Hashtbl.find_opt registry name with
  | Some b -> Ok b
  | None ->
    Error
      (Printf.sprintf "unknown backend %S (registered: %s)" name
         (String.concat ", " (names ())))

let label b =
  match b.kind with
  | Shm -> "shm"
  | Net { replicas; crash; loss } ->
    Printf.sprintf "net(n=%d,f=%d,loss=%.2f)" replicas crash loss
  | Byz { f; budget } -> Printf.sprintf "byz(f=%d,budget=%d)" f budget
  | Multicore -> "multicore"

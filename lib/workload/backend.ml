type caps = {
  messaging : bool;
  adversarial : bool;
  real_parallelism : bool;
  reconfigurable : bool;
}

type outcome = Completed | Stuck_run

type instance = {
  memory : Csim.Memory.t;
  clock : unit -> int;
  drive : (unit -> unit) array -> outcome;
  observe : Obs.Metrics.t -> unit;
  reconfigure : (members:int list -> unit) option;
}

type provision =
  | Simulated of (metrics:Obs.Metrics.t -> seed:int -> procs:int -> instance)
  | Domains

type t = {
  name : string;
  doc : string;
  label : string;
  caps : caps;
  steps_budget : int;
  provision : provision;
}

let static_caps =
  {
    messaging = false;
    adversarial = false;
    real_parallelism = false;
    reconfigurable = false;
  }

let shm =
  {
    name = "shm";
    doc =
      "deterministic shared-memory simulator; nondeterminism is the \
       process interleaving";
    label = "shm";
    caps = static_caps;
    steps_budget = 1_000_000;
    provision =
      Simulated
        (fun ~metrics:_ ~seed ~procs:_ ->
          let env = Csim.Sim.create ~trace:false () in
          {
            memory = Csim.Memory.of_sim env;
            clock = (fun () -> Csim.Sim.now env);
            drive =
              (fun procs ->
                match
                  Csim.Sim.run env
                    ~policy:(Csim.Schedule.Random seed)
                    ~max_steps:1_000_000 procs
                with
                | exception Csim.Sim.Stuck _ -> Stuck_run
                | (_ : Csim.Sim.stats) -> Completed);
            observe = (fun _ -> ());
            reconfigure = None;
          });
  }

(* Crash points for the message-passing backend, derived from the
   schedule seed: the last [crash] replicas each stop after handling a
   small seed-dependent number of messages.  Deterministic, so the
   sharded campaign merges bit-identically. *)
let net_crashes ~replicas ~crash ~seed =
  let prng = Csim.Schedule.Prng.make ((seed * 0x9e3779b9) lxor 0x2545f491) in
  List.init crash (fun j -> (replicas - 1 - j, Csim.Schedule.Prng.int prng 40))

let net ?(replicas = 3) ?(crash = 0) ?(loss = 0.) () =
  if replicas < 1 then invalid_arg "Backend.net: replicas must be >= 1";
  if crash < 0 || 2 * crash >= replicas then
    invalid_arg "Backend.net: need crash < replicas / 2 (quorum intact)";
  if loss < 0. || loss >= 1. then
    invalid_arg "Backend.net: loss must be in [0, 1)";
  {
    name = "net";
    doc =
      "ABD quorum emulation over the simulated crash-prone network; \
       nondeterminism is the message delivery order";
    label = Printf.sprintf "net(n=%d,f=%d,loss=%.2f)" replicas crash loss;
    caps = { static_caps with messaging = true; reconfigurable = true };
    steps_budget = 1_000_000;
    provision =
      Simulated
        (fun ~metrics ~seed ~procs:_ ->
          let env =
            Net.Sim.create ~loss
              ~crashes:(net_crashes ~replicas ~crash ~seed)
              ~replicas ~seed ()
          in
          let abd =
            Net.Abd.create env ~on_phase:(fun ~wait ->
                Obs.Metrics.observe
                  (Obs.Metrics.histogram metrics "net.phase_wait")
                  wait)
          in
          {
            memory = Net.Abd.memory abd;
            clock = (fun () -> Net.Sim.now env);
            drive =
              (fun procs ->
                match
                  Net.Sim.run env
                    ~policy:(Csim.Schedule.Random seed)
                    ~max_steps:1_000_000 procs
                with
                | exception Net.Sim.Stuck _ -> Stuck_run
                | (_ : Net.Sim.stats) -> Completed);
            observe =
              (fun m ->
                let s = Net.Sim.totals env in
                let a = Net.Abd.stats abd in
                let c name by =
                  Obs.Metrics.incr ~by (Obs.Metrics.counter m name)
                in
                c "net.msgs_sent" s.Net.Sim.sent;
                c "net.msgs_delivered" s.Net.Sim.delivered;
                c "net.msgs_lost" s.Net.Sim.lost;
                c "net.timeouts" s.Net.Sim.timeouts;
                c "net.rounds" a.Net.Abd.rounds;
                c "net.retransmits" a.Net.Abd.retransmits;
                c "net.retransmit.sent" a.Net.Abd.retransmits;
                c "net.retransmit.suppressed" a.Net.Abd.retrans_suppressed;
                Obs.Metrics.observe
                  (Obs.Metrics.histogram m "net.retransmit.backoff_peak")
                  a.Net.Abd.backoff_peak);
            reconfigure =
              Some (fun ~members -> Net.Abd.reconfigure abd ~members);
          });
  }

let byz ?(f = 1) ?(budget = 1) () =
  if f < 0 then invalid_arg "Backend.byz: f must be >= 0";
  if budget < 0 then invalid_arg "Backend.byz: budget must be >= 0";
  {
    name = "byz";
    doc =
      "the f-tolerant Byzantine register construction over shared memory \
       with a budgeted lying adversary on the base cells; nondeterminism \
       is the process interleaving";
    label = Printf.sprintf "byz(f=%d,budget=%d)" f budget;
    caps = { static_caps with adversarial = true };
    steps_budget = 2_000_000;
    provision =
      Simulated
        (fun ~metrics:_ ~seed ~procs ->
          let env = Csim.Sim.create ~trace:false () in
          let base = Csim.Memory.of_sim env in
          let who () =
            try Csim.Sim.self () with Csim.Sim.Not_in_simulation -> 0
          in
          let injections =
            if budget > 0 then
              [
                {
                  Csim.Faults.kind =
                    Csim.Faults.Byzantine { f = budget; prob = 1.0 };
                  target = Csim.Faults.All;
                };
              ]
            else []
          in
          let faulty, counters = Csim.Faults.wrap ~seed ~who injections base in
          {
            memory = Registers.Byzantine.memory ~f ~readers:procs faulty;
            clock = (fun () -> Csim.Sim.now env);
            drive =
              (fun ps ->
                match
                  Csim.Sim.run env
                    ~policy:(Csim.Schedule.Random seed)
                    ~max_steps:2_000_000 ps
                with
                | exception Csim.Sim.Stuck _ -> Stuck_run
                | (_ : Csim.Sim.stats) -> Completed);
            observe =
              (fun m ->
                let c name by =
                  Obs.Metrics.incr ~by (Obs.Metrics.counter m name)
                in
                c "byz.cells_claimed" counters.Csim.Faults.byz_cells;
                c "byz.lies" counters.Csim.Faults.byz_lies;
                c "byz.drops" counters.Csim.Faults.byz_drops);
            reconfigure = None;
          });
  }

let multicore =
  {
    name = "multicore";
    doc =
      "real parallelism on OCaml domains over Atomic.t registers; \
       nondeterminism is the hardware schedule";
    label = "multicore";
    caps = { static_caps with real_parallelism = true };
    steps_budget = 0;
    provision = Domains;
  }

let registry : (string, t) Hashtbl.t = Hashtbl.create 8

let register b = Hashtbl.replace registry b.name b

let () = List.iter register [ shm; net (); byz (); multicore ]

let names () =
  List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) registry [])

let find name =
  match Hashtbl.find_opt registry name with
  | Some b -> Ok b
  | None ->
    Error
      (Printf.sprintf "unknown backend %S (registered: %s)" name
         (String.concat ", " (names ())))

let label b = b.label

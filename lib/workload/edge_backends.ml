open Csim

(* Bridge from the {!Backend} registry to the network edge: every
   execution substrate the campaigns know — shm, net, byz, multicore —
   becomes something a TCP front-end can serve.

   The multicore handle runs on real domains, so the edge drives it
   concurrently (one validated-cache reader per worker).  The
   simulator-backed substrates only execute ops inside a simulator
   coroutine, so each op becomes its own single-process run under
   {!Edge.Backend.solo}'s global lock — a fully serialized service,
   which E21 reports honestly as such.  The sharded serving layer is
   bridged separately by {!Edge.Backend.of_serve}. *)

let of_registry ?(seed = 1) ~workers ~init (b : Backend.t) : Edge.Backend.t =
  let label = Backend.label b in
  match b.Backend.kind with
  | Backend.Multicore ->
    Edge.Backend.of_handle ~label ~workers (Composite.Multicore.afek ~init)
  | Backend.Shm ->
    let env = Sim.create ~trace:false () in
    let mem = Memory.of_sim env in
    let handle = Campaign.make_handle Campaign.Impl_afek mem ~readers:1 ~init in
    Edge.Backend.solo ~label
      ~run:(fun thunk -> ignore (Sim.run_solo env thunk : Sim.stats))
      handle
  | Backend.Net { replicas; crash = _; loss = _ } ->
    (* Crash and loss are chaos-campaign knobs; the serving bridge runs
       the quorum over a clean network (retransmit machinery idle). *)
    let env = Net.Sim.create ~replicas ~seed () in
    let abd = Net.Abd.create env in
    let mem = Net.Abd.memory abd in
    let handle = Campaign.make_handle Campaign.Impl_afek mem ~readers:1 ~init in
    Edge.Backend.solo ~label
      ~run:(fun thunk -> ignore (Net.Sim.run env [| thunk |] : Net.Sim.stats))
      handle
  | Backend.Byz { f; budget } ->
    let env = Sim.create ~trace:false () in
    let base = Memory.of_sim env in
    let who () = try Sim.self () with Sim.Not_in_simulation -> 0 in
    let injections =
      if budget > 0 then
        [
          {
            Faults.kind = Faults.Byzantine { f = budget; prob = 1.0 };
            target = Faults.All;
          };
        ]
      else []
    in
    let faulty, (_ : Faults.counters) = Faults.wrap ~seed ~who injections base in
    let mem =
      Registers.Byzantine.memory ~f ~readers:(Array.length init + 1) faulty
    in
    let handle = Campaign.make_handle Campaign.Impl_afek mem ~readers:1 ~init in
    Edge.Backend.solo ~label
      ~run:(fun thunk -> ignore (Sim.run_solo env thunk : Sim.stats))
      handle

(* Bridge from the {!Backend} registry to the network edge: every
   execution substrate the campaigns know becomes something a TCP
   front-end can serve — through the descriptor's own provision, so a
   backend registered out of tree is served by the same code path as
   the built-ins.

   [Domains] backends run on real domains, so the edge drives them
   concurrently (one validated-cache reader per worker).  [Simulated]
   substrates only execute ops inside a simulator coroutine, so each op
   becomes its own single-process drive under {!Edge.Backend.solo}'s
   global lock — a fully serialized service, which E21 reports honestly
   as such.  The sharded serving layer is bridged separately by
   {!Edge.Backend.of_serve}. *)

let of_registry ?(seed = 1) ~workers ~init (b : Backend.t) : Edge.Backend.t =
  let label = Backend.label b in
  match b.Backend.provision with
  | Backend.Domains ->
    Edge.Backend.of_handle ~label ~workers (Composite.Multicore.afek ~init)
  | Backend.Simulated provision ->
    (* The edge keeps no campaign metrics; backend-internal counters go
       to a private sink. *)
    let inst =
      provision ~metrics:(Obs.Metrics.create ()) ~seed
        ~procs:(Array.length init + 1)
    in
    let handle =
      Campaign.make_handle Campaign.Impl_afek inst.Backend.memory ~readers:1
        ~init
    in
    Edge.Backend.solo ~label
      ~run:(fun thunk ->
        match inst.Backend.drive [| thunk |] with
        | Backend.Completed -> ()
        | Backend.Stuck_run -> failwith (label ^ ": stuck solo drive"))
      handle

(** {!Backend} registry entries as servable edge backends.

    [of_registry ~workers ~init b] adapts substrate [b] for
    {!Edge.Server.start}: the [multicore] backend is served
    concurrently (an Afek handle on real domains, one reader per
    worker); the simulator-backed substrates ([shm], [net] as an ABD
    quorum over a clean simulated network, [byz] with its budgeted
    lying adversary active) execute each op as a single-process
    simulator run under a global lock — linearizable because fully
    serialized, and reported as such in E21.  [seed] drives the
    simulated network's delivery order and the Byzantine fault
    injection (default 1). *)

val of_registry :
  ?seed:int -> workers:int -> init:int array -> Backend.t -> Edge.Backend.t

(** Execution backends for verification campaigns, as first-class
    descriptors in a named registry.

    A backend decides what the algorithms' registers are made of and
    where the nondeterminism that drives a campaign comes from.  The
    built-ins:

    - ["shm"] — cells of the deterministic shared-memory simulator
      ({!Csim.Memory.of_sim}); schedules are seeded interleavings.
    - ["net"] — each register is an ABD quorum emulation over the
      simulated crash-prone network ({!Net.Abd.memory}); schedules are
      seeded message delivery orders, with loss and replica crashes
      injected on top.
    - ["byz"] — each register is the f-tolerant Byzantine construction
      ({!Registers.Byzantine.memory}) over simulator cells, with a
      budgeted lying adversary injected on the base cells; campaigns
      over it exercise the construction's masking claim end to end.
    - ["multicore"] — [Atomic.t] registers on real OCaml domains; the
      hardware schedule is the nondeterminism, and histories are
      recorded with a fetch-and-add clock for offline checking.

    {2 Capabilities, not kinds}

    A descriptor no longer exposes a closed [kind] variant for callers
    to dispatch on.  It carries two things instead:

    - {!caps} — what the substrate {e is}, as plain data.  Front ends
      branch on capabilities ("does it reconfigure?", "is it
      adversarial?") rather than on names, so out-of-tree backends
      registered with {!register} participate in every decision
      automatically.
    - {!provision} — how to {e build} it.  [Simulated] backends yield a
      fresh, seed-deterministic {!instance} per schedule: the memory,
      the logical clock, a driver that runs client procs to completion,
      a metrics hook, and the optional reconfiguration capability as a
      first-class closure.  [Domains] marks real parallelism, where the
      harness owns thread creation and no seeded instance exists.

    The registry maps names to descriptors so front ends resolve user
    input with {!find} and error messages can enumerate what exists;
    {!register} lets out-of-tree code plug in additional backends. *)

type caps = {
  messaging : bool;
      (** register ops are quorum phases over a simulated network *)
  adversarial : bool;  (** lying faults are injected under the registers *)
  real_parallelism : bool;  (** OCaml domains; no seeded scheduler *)
  reconfigurable : bool;
      (** instances expose an online membership-change closure *)
}

val static_caps : caps
(** All-[false]: the plain deterministic shared-memory substrate. *)

type outcome = Completed | Stuck_run  (** driver verdict for one schedule *)

type instance = {
  memory : Csim.Memory.t;  (** what the composite constructions build on *)
  clock : unit -> int;
      (** logical time for history recording (scheduler steps, network
          ticks, ...) *)
  drive : (unit -> unit) array -> outcome;
      (** run the client procs under this schedule's seed to
          quiescence; [Stuck_run] reports a wait-freedom violation *)
  observe : Obs.Metrics.t -> unit;
      (** book backend-specific counters (messages, lies, ...) after a
          drive; safe to call after [Stuck_run] too *)
  reconfigure : (members:int list -> unit) option;
      (** online membership change, present iff
          [caps.reconfigurable]; must be invoked from inside a driven
          proc (it performs quorum operations) *)
}

type provision =
  | Simulated of (metrics:Obs.Metrics.t -> seed:int -> procs:int -> instance)
      (** build a fresh deterministic instance for one schedule;
          [procs] is the number of client processes the workload will
          run (some substrates size fault tolerance by it) *)
  | Domains
      (** real parallelism: the campaign's multicore harness owns
          execution; there is no per-seed instance *)

type t = {
  name : string;  (** registry key, e.g. ["net"] *)
  doc : string;  (** one-line description, for [--help] and errors *)
  label : string;
      (** parameter-carrying rendering for reports, e.g.
          ["net(n=5,f=1,loss=0.10)"] *)
  caps : caps;
  steps_budget : int;
      (** scheduler step bound per driven schedule ([0] when
          [provision = Domains]) *)
  provision : provision;
}

val shm : t

val net : ?replicas:int -> ?crash:int -> ?loss:float -> unit -> t
(** Defaults: 3 replicas, no crashes, no loss.  Raises
    [Invalid_argument] unless [crash < replicas / 2] (a write quorum
    must survive) and [0 <= loss < 1].  Its instances carry
    [reconfigure = Some _]: {!Net.Abd.reconfigure} over the instance's
    quorum system. *)

val byz : ?f:int -> ?budget:int -> unit -> t
(** Registers of {!Registers.Byzantine.memory} with tolerance [f] over
    the shared-memory simulator, with a {!Csim.Faults.Byzantine}
    adversary owning [budget] base cells (lying on every access).
    Defaults: [f = 1], [budget = 1] — within tolerance, so campaigns
    must stay clean.  Raises [Invalid_argument] on negative values. *)

val multicore : t

val register : t -> unit
(** Add (or replace) a descriptor under its [name]. *)

val find : string -> (t, string) result
(** Look a backend up by name; the error message lists the registered
    names. *)

val names : unit -> string list
(** Registered names, sorted. *)

val label : t -> string
(** [label b = b.label]. *)

(** Execution backends for verification campaigns, as first-class
    descriptors in a named registry.

    A backend decides what the algorithms' registers are made of and
    where the nondeterminism that drives a campaign comes from.  The
    three built-ins:

    - ["shm"] — cells of the deterministic shared-memory simulator
      ({!Csim.Memory.of_sim}); schedules are seeded interleavings.
    - ["net"] — each register is an ABD quorum emulation over the
      simulated crash-prone network ({!Net.Abd.memory}); schedules are
      seeded message delivery orders, with loss and replica crashes
      injected on top.
    - ["byz"] — each register is the f-tolerant Byzantine construction
      ({!Registers.Byzantine.memory}) over simulator cells, with a
      budgeted lying adversary injected on the base cells; campaigns
      over it exercise the construction's masking claim end to end.
    - ["multicore"] — [Atomic.t] registers on real OCaml domains; the
      hardware schedule is the nondeterminism, and histories are
      recorded with a fetch-and-add clock for offline checking.

    The registry maps names to descriptors so front ends resolve user
    input with {!find} and error messages can enumerate what exists;
    {!register} lets out-of-tree code plug in additional backends. *)

type kind =
  | Shm
  | Net of { replicas : int; crash : int; loss : float }
  | Byz of { f : int; budget : int }
  | Multicore

type t = {
  name : string;  (** registry key, e.g. ["net"] *)
  doc : string;  (** one-line description, for [--help] and errors *)
  kind : kind;
}

val shm : t

val net : ?replicas:int -> ?crash:int -> ?loss:float -> unit -> t
(** Defaults: 3 replicas, no crashes, no loss.  Raises
    [Invalid_argument] unless [crash < replicas / 2] (a write quorum
    must survive) and [0 <= loss < 1]. *)

val byz : ?f:int -> ?budget:int -> unit -> t
(** Registers of {!Registers.Byzantine.memory} with tolerance [f] over
    the shared-memory simulator, with a {!Csim.Faults.Byzantine}
    adversary owning [budget] base cells (lying on every access).
    Defaults: [f = 1], [budget = 1] — within tolerance, so campaigns
    must stay clean.  Raises [Invalid_argument] on negative values. *)

val multicore : t

val register : t -> unit
(** Add (or replace) a descriptor under its [name]. *)

val find : string -> (t, string) result
(** Look a backend up by name; the error message lists the registered
    names. *)

val names : unit -> string list
(** Registered names, sorted. *)

val label : t -> string
(** Parameter-carrying rendering for reports, e.g.
    ["net(n=5,f=1,loss=0.10)"]. *)

open Csim

let initial = [| 1; 2 |]

type outcome = {
  case : Composite.Anderson.case option;
  values : int array;
  ids : int array;
  writer0_inputs : int list;
  linearizable : bool;
  shrinking_ok : bool;
  timeline : string;
}

let expand segments =
  Array.concat (List.map (fun (proc, n) -> Array.make n proc) segments)

(* Run a 2/8/1/1 Anderson register with Writer 0 (process 0) performing
   [writer_ops] Writes of 101, 102, ... and Reader 0 (process 1)
   performing one Read, interleaved exactly per [segments] (process id,
   event count), completed round-robin. *)
let run_scenario ~writer_ops ~segments =
  let env = Sim.create () in
  let mem = Memory.of_sim env in
  let reg = Composite.Anderson.create mem ~readers:1 ~bits_per_value:8 ~init:initial in
  let rec_ =
    Composite.Snapshot.record
      ~clock:(fun () -> Sim.now env)
      ~initial (Composite.Anderson.handle reg)
  in
  let writer_inputs = ref [] in
  let writer () =
    for s = 1 to writer_ops do
      let v = 100 + s in
      writer_inputs := v :: !writer_inputs;
      rec_.Composite.Snapshot.rupdate ~writer:0 v
    done
  in
  let reader () = ignore (rec_.Composite.Snapshot.rscan ~reader:0) in
  let policy = Schedule.Scripted (expand segments, Schedule.Round_robin) in
  let (_ : Sim.stats) = Sim.run env ~policy [| writer; reader |] in
  let h = Composite.Snapshot.history rec_ in
  let values, ids =
    match h.History.Snapshot_history.reads with
    | [ r ] ->
      (r.History.Snapshot_history.values, r.History.Snapshot_history.ids)
    | reads ->
      invalid_arg
        (Printf.sprintf
           "Workload.Scenario: schedule produced %d Reads (expected \
            exactly 1) — the scripted segments must let the reader's \
            single scan complete"
           (List.length reads))
  in
  {
    case = Composite.Anderson.last_case reg;
    values;
    ids;
    writer0_inputs = List.rev !writer_inputs;
    linearizable =
      History.Linearize.is_linearizable
        (History.Linearize.snapshot_spec ~equal:Int.equal)
        ~init:initial
        (History.Snapshot_history.to_ops h);
    shrinking_ok = History.Shrinking.conditions_hold ~equal:Int.equal h;
    timeline =
      Render.timeline
        ~proc_label:(function 0 -> "writer0" | _ -> "reader ")
        (Sim.trace env);
  }

(* Event counts for C = 2, R = 1 (cf. Complexity): a Read is 7 events
   (Y0, Z, Y0, base, Y0, base, Y0); a 0-Write is 4 events (Z, Y0, base,
   Y0). *)

let fig4a () =
  (* w complete; r:0-3; w+1 complete inside r (handshake: its Z read
     follows r's Z write); r:4; w+2 executes statement 3; r:5-7. *)
  run_scenario ~writer_ops:3
    ~segments:[ (0, 4); (1, 3); (0, 4); (1, 1); (0, 2); (1, 3) ]

let fig4b () =
  (* w complete; w+1 reads Z before r writes it (stale handshake);
     r:0-3; w+1 finishes; w+2 executes statement 3 (wc advances twice
     inside r); r:4-7. *)
  run_scenario ~writer_ops:3
    ~segments:[ (0, 4); (0, 1); (1, 3); (0, 3); (0, 2); (1, 4) ]

let case_ab () =
  (* One complete Write, then a solo Read: a.wc = c.wc. *)
  run_scenario ~writer_ops:1 ~segments:[ (0, 4); (1, 7) ]

let case_cd () =
  (* The Write's statement 3 lands between r:3 and r:5 only, with a
     stale handshake: a.wc <> c.wc = e.wc. *)
  run_scenario ~writer_ops:1
    ~segments:[ (0, 1); (1, 3); (0, 1); (1, 4) ]

let reader_events env =
  List.length
    (List.filter
       (fun (e : Trace.event) -> e.proc = 1 && e.kind <> Trace.Note)
       (Trace.events (Sim.trace env)))

let starvation_events ~writer_ops =
  let env = Sim.create () in
  let mem = Memory.of_sim env in
  let handle =
    Composite.Double_collect.create_repeated mem ~bits_per_value:8 ~init:initial
  in
  let writer () =
    for s = 1 to writer_ops do
      ignore (handle.Composite.Snapshot.update ~writer:0 (100 + s))
    done
  in
  let reader () = ignore (handle.Composite.Snapshot.scan_items ~reader:0) in
  (* Adversary: one write lands between every pair of reader collects. *)
  let segments = (1, 2) :: List.concat_map (fun _ -> [ (0, 1); (1, 2) ]) (List.init writer_ops Fun.id) in
  let policy = Schedule.Scripted (expand segments, Schedule.Round_robin) in
  let (_ : Sim.stats) = Sim.run env ~policy [| writer; reader |] in
  reader_events env

let wait_free_events ~writer_ops =
  let env = Sim.create () in
  let mem = Memory.of_sim env in
  let reg = Composite.Anderson.create mem ~readers:1 ~bits_per_value:8 ~init:initial in
  let handle = Composite.Anderson.handle reg in
  let writer () =
    for s = 1 to writer_ops do
      ignore (handle.Composite.Snapshot.update ~writer:0 (100 + s))
    done
  in
  let reader () = ignore (handle.Composite.Snapshot.scan_items ~reader:0) in
  let (_ : Sim.stats) = Sim.run env ~policy:Schedule.Round_robin [| writer; reader |] in
  reader_events env

(** Verification campaigns for the sharded serving layer
    (experiment E17's correctness side).

    Each run builds a fresh {!Serve.t}, starts its applier domains,
    drives it with the multicore stress harness (one domain per writer
    and reader, synchronous updates through the unified handle), stops
    it, and feeds the recorded history to the Shrinking checker — and,
    for small configurations, the generic Wing–Gong oracle.  Serving
    the scans through the validated cache must be invisible to both;
    disabling validation ([validate = false] with [cache = true]) is
    the mutant the checkers must flag. *)

type config = {
  outer : Serve.outer_impl;  (** outer-register construction *)
  shards : int;
  components : int;
  readers : int;
  writer_ops : int;  (** synchronous updates per writer domain *)
  reader_ops : int;  (** scans per reader domain *)
  runs : int;  (** service lifetimes to stress *)
  validate : bool;  (** cache freshness checks ([false] = mutant) *)
  cache : bool;
  combine : bool;  (** scan-sharing ([false] = pre-combining baseline) *)
  check_generic : bool;
      (** also run the exponential Wing–Gong oracle (requires small
          histories) *)
}

val default : config

type result = {
  runs : int;
  ops_checked : int;  (** operations across all runs *)
  flagged_runs : int;  (** runs with at least one Shrinking violation *)
  generic_failures : int;  (** runs the generic oracle rejected *)
  accounting_failures : int;
      (** runs where a counter identity broke at quiescence
          ([posted = applied + coalesced], [pending = 0],
          [requested = combined + performed],
          [full_scans = performed], and [combined = 0] when combining
          is off) *)
  example : string option;  (** rendering of one flagged history *)
}

val run :
  ?jobs:int -> ?pool:Exec.Pool.recorder -> ?metrics:Obs.Metrics.t ->
  config -> result
(** Farm [runs] service lifetimes over [jobs] pool domains (each run
    additionally spawns its own applier/writer/reader domains) and
    merge outcomes in run-index order, so — as with {!Campaign.run} —
    clean campaigns report bit-identically at every job count.

    When [metrics] is given, per-run serve totals accumulate into the
    [serve.*] counters ({!Serve.observe}), history sizes into histogram
    [serve_campaign.ops_per_run], and the result into counters
    [serve_campaign.runs], [serve_campaign.ops_checked],
    [serve_campaign.flagged_runs], [serve_campaign.generic_failures]
    and [serve_campaign.accounting_failures]. *)

val pp_result : Format.formatter -> result -> unit

(* Verification campaign for live resharding: each run is one service
   lifetime in which writer and reader domains hammer the handle while
   a reconfigurer domain walks a schedule of shard counts through
   {!Serve.reshard}.  Every recorded history is checked by the
   Shrinking Lemma and (bounded) the Wing–Gong oracle, and the
   per-epoch counter identities must close exactly at quiescence.  In
   mutant mode ([migrate = false]) the service publishes each new shard
   map with the previous epoch's boundary — acknowledged writes vanish
   at the epoch switch, and the campaign must flag it.  A flagged
   schedule is delta-debugged ({!Chaos.ddmin}) down to a minimal
   sequence of reshard steps that still fails. *)

type config = {
  outer : Serve.outer_impl;
  shards : int;  (* initial shard count *)
  schedule : int list;  (* reshard steps: target shard counts, in order *)
  components : int;
  readers : int;
  writer_ops : int;
  reader_ops : int;
  runs : int;
  migrate : bool;  (* false = publish-before-migrate mutant *)
  check_generic : bool;
  minimize_budget : int;  (* ddmin re-runs for a flagged schedule; 0 = off *)
}

let default =
  {
    outer = Serve.Outer_afek;
    shards = 2;
    schedule = [ 4; 1; 3 ];
    components = 4;
    readers = 2;
    writer_ops = 4;
    reader_ops = 4;
    runs = 5;
    migrate = true;
    check_generic = true;
    minimize_budget = 40;
  }

type result = {
  runs : int;
  ops_checked : int;
  epochs_completed : int;
  flagged_runs : int;
  generic_failures : int;
  accounting_failures : int;
  example : string option;
  minimized : int list option;
      (* shrunk reshard schedule of the first flagged run *)
}

type run_outcome = {
  ro_ops : int;
  ro_epochs : int;
  ro_flagged : bool;
  ro_generic_fail : bool;
  ro_accounting_fail : bool;
  ro_example : string option;
}

(* The per-epoch identities, checked over every epoch of a finished
   lifetime: posts and scans are conserved across epoch boundaries
   (carried/in-flight work is handed over, never dropped or double
   counted), no delta is negative, and the final epoch closes with
   nothing left in flight. *)
let epoch_accounting_ok srv =
  let eps = Serve.epoch_stats srv in
  let per_epoch_ok (e : Serve.epoch_stats) =
    e.Serve.e_posted >= 0 && e.Serve.e_applied >= 0 && e.Serve.e_coalesced >= 0
    && e.Serve.e_publishes >= 0
    && e.Serve.e_carried_in >= 0
    && e.Serve.e_carried_out >= 0
    && e.Serve.e_scans_requested >= 0
    && e.Serve.e_scans_combined >= 0
    && e.Serve.e_scans_performed >= 0
    && e.Serve.e_inflight_in >= 0
    && e.Serve.e_inflight_out >= 0
    && e.Serve.e_posted + e.Serve.e_carried_in
       = e.Serve.e_applied + e.Serve.e_coalesced + e.Serve.e_carried_out
    && e.Serve.e_scans_requested + e.Serve.e_inflight_in
       = e.Serve.e_scans_combined + e.Serve.e_scans_performed
         + e.Serve.e_inflight_out
  in
  let last = eps.(Array.length eps - 1) in
  let st = Serve.stats srv in
  Array.for_all per_epoch_ok eps
  && last.Serve.e_carried_out = 0
  && last.Serve.e_inflight_out = 0
  && st.Serve.pending = 0
  && st.Serve.posted = st.Serve.applied + st.Serve.coalesced
  && st.Serve.scans_requested
     = st.Serve.scans_combined + st.Serve.scans_performed

(* One lifetime under a given reshard schedule; shared by the campaign
   proper and the ddmin re-runs. *)
let run_schedule ?metrics (cfg : config) ~schedule =
  let init = Array.init cfg.components (fun k -> (k + 1) * 10) in
  let clamp s = max 1 (min cfg.components s) in
  let schedule = List.map clamp schedule in
  let shards = clamp cfg.shards in
  let max_shards = List.fold_left max shards schedule in
  let srv =
    Serve.create ~outer:cfg.outer ~migrate:cfg.migrate ~max_shards ~shards
      ~readers:cfg.readers ~init ()
  in
  Serve.start srv;
  (* Pace scans on writer progress, as {!Serve_campaign} does: unpaced
     reader domains would drain all their cached scans before the first
     write lands and the checkers would see no concurrency. *)
  let total_writes = cfg.components * cfg.writer_ops in
  let applied () = (Serve.stats srv).Serve.applied in
  let pace_stalls = Atomic.make 0 in
  let reader_pace () =
    let before = applied () in
    let b = Serve.Backoff.make pace_stalls in
    while before < total_writes && applied () = before do
      Serve.Backoff.once b
    done
  in
  let stop = Atomic.make false in
  let reconfigurer =
    Domain.spawn (fun () ->
        List.iter
          (fun s ->
            if not (Atomic.get stop) then begin
              Serve.reshard srv ~shards:s;
              (* Let some traffic land in the new epoch before the next
                 switch. *)
              for _ = 1 to 100 do
                Domain.cpu_relax ()
              done
            end)
          schedule)
  in
  let h =
    Composite.Multicore.stress ~reader_pace
      ~config:
        {
          Composite.Multicore.writer_ops = cfg.writer_ops;
          reader_ops = cfg.reader_ops;
          readers = cfg.readers;
        }
      ~init ~handle:(Serve.handle srv) ()
  in
  Atomic.set stop true;
  Domain.join reconfigurer;
  Serve.shutdown srv;
  (match metrics with
  | None -> ()
  | Some m ->
    Serve.observe srv m;
    Obs.Metrics.incr
      ~by:(Atomic.get pace_stalls)
      (Obs.Metrics.counter m "reshard_campaign.pace.stalls"));
  (srv, init, h)

let outcome_of_run (cfg : config) (srv, init, h) =
  let ops = History.Snapshot_history.size h in
  let violations = History.Shrinking.check ~equal:Int.equal h in
  let shrinking_ok = violations = [] in
  let generic_ok =
    if not cfg.check_generic then true
    else
      match
        History.Linearize.check
          (History.Linearize.snapshot_spec ~equal:Int.equal)
          ~init
          (History.Snapshot_history.to_ops h)
      with
      | History.Linearize.Linearizable _ -> true
      | History.Linearize.Not_linearizable -> false
      | History.Linearize.Too_large -> true (* skipped *)
  in
  {
    ro_ops = ops;
    ro_epochs = Serve.epoch srv;
    ro_flagged = not shrinking_ok;
    ro_generic_fail = not generic_ok;
    ro_accounting_fail = not (epoch_accounting_ok srv);
    ro_example =
      (if shrinking_ok then None
       else
         Some
           (Format.asprintf "%a@.%a"
              (Format.pp_print_list History.Shrinking.pp_violation)
              violations
              (History.Snapshot_history.pp string_of_int)
              h));
  }

let run_one worker_metrics (cfg : config) (_ : int) =
  outcome_of_run cfg (run_schedule ~metrics:worker_metrics cfg ~schedule:cfg.schedule)

(* Does [schedule] still fail?  Used as the ddmin predicate: a real
   epoch-boundary bug (the mutant) reproduces on nearly every lifetime,
   so a single re-run per candidate is enough for a useful shrink. *)
let still_fails (cfg : config) schedule =
  let o = outcome_of_run cfg (run_schedule cfg ~schedule) in
  o.ro_flagged || o.ro_generic_fail || o.ro_accounting_fail

let run ?(jobs = 1) ?pool ?metrics (cfg : config) =
  if cfg.runs < 1 then invalid_arg "Reshard_campaign.run: runs must be >= 1";
  let outcomes, workers =
    Exec.Pool.map_workers ~jobs ?recorder:pool
      ~label:(fun i ->
        Printf.sprintf "reshard run %d (S=%d, %d steps)" i cfg.shards
          (List.length cfg.schedule))
      ~worker:Obs.Metrics.create cfg.runs
      (fun m i -> run_one m cfg i)
  in
  (* Index-ordered merge, as in {!Campaign.run}: totals and the example
     choice are independent of the job count. *)
  let flagged = ref 0 in
  let generic_failures = ref 0 in
  let accounting_failures = ref 0 in
  let epochs = ref 0 in
  let ops = ref 0 in
  let example = ref None in
  Array.iter
    (fun o ->
      ops := !ops + o.ro_ops;
      epochs := !epochs + o.ro_epochs;
      if o.ro_flagged then begin
        incr flagged;
        if !example = None then example := o.ro_example
      end;
      if o.ro_generic_fail then incr generic_failures;
      if o.ro_accounting_fail then incr accounting_failures)
    outcomes;
  let any_failure =
    !flagged > 0 || !generic_failures > 0 || !accounting_failures > 0
  in
  let minimized =
    if (not any_failure) || cfg.minimize_budget <= 0 || cfg.schedule = [] then
      None
    else
      let shrunk, (_ : int) =
        Chaos.ddmin ~budget:cfg.minimize_budget
          ~test:(fun s -> still_fails cfg s)
          cfg.schedule
      in
      Some shrunk
  in
  let result =
    {
      runs = cfg.runs;
      ops_checked = !ops;
      epochs_completed = !epochs;
      flagged_runs = !flagged;
      generic_failures = !generic_failures;
      accounting_failures = !accounting_failures;
      example = !example;
      minimized;
    }
  in
  (match metrics with
  | None -> ()
  | Some m ->
    List.iter (fun w -> Obs.Metrics.merge ~into:m w) workers;
    let c name by = Obs.Metrics.incr ~by (Obs.Metrics.counter m name) in
    c "reshard_campaign.runs" result.runs;
    c "reshard_campaign.ops_checked" result.ops_checked;
    c "reshard_campaign.epochs" result.epochs_completed;
    c "reshard_campaign.flagged_runs" result.flagged_runs;
    c "reshard_campaign.generic_failures" result.generic_failures;
    c "reshard_campaign.accounting_failures" result.accounting_failures);
  result

let pp_result fmt r =
  Format.fprintf fmt
    "@[<v>runs: %d@,operations checked: %d@,epochs completed: %d@,runs \
     flagged by Shrinking checker: %d@,runs rejected by generic oracle: \
     %d@,runs with broken epoch accounting: %d%a@]"
    r.runs r.ops_checked r.epochs_completed r.flagged_runs r.generic_failures
    r.accounting_failures
    (fun fmt -> function
      | None -> ()
      | Some s ->
        Format.fprintf fmt "@,minimized schedule: %s"
          (String.concat "->" (List.map string_of_int s)))
    r.minimized

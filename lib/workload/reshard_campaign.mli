(** Verification campaign for live resharding (elastic sharding of the
    {!Serve} layer on real domains).

    Each run is one service lifetime: writer and reader domains hammer
    the served composite register while a reconfigurer domain walks
    [schedule] — a list of target shard counts — through
    {!Serve.reshard}, so epoch switches land in the middle of open-loop
    load.  Every recorded history is checked with the Shrinking Lemma
    and (when small enough) the Wing–Gong generic oracle, and the
    per-epoch counter identities of {!Serve.epoch_stats} must close
    exactly:

    - per epoch, [posted + carried_in = applied + coalesced +
      carried_out] and the scan analog with in-flight requests;
    - no negative delta anywhere (a negative carry means a counter was
      double-bumped across the boundary);
    - the final epoch closes with zero carried and in-flight work.

    [migrate = false] runs the {e publish-before-migrate} mutant: the
    reshard publishes each new shard map with the {e previous} epoch's
    boundary snapshot, so acknowledged writes vanish at the switch —
    campaigns over it must flag violations ({!result.flagged_runs} >
    0).  A failing schedule is delta-debugged with {!Chaos.ddmin} down
    to a minimal step sequence that still fails. *)

type config = {
  outer : Serve.outer_impl;
  shards : int;  (** initial shard count *)
  schedule : int list;
      (** reshard steps: target shard counts, walked in order (clamped
          to [1..components]) *)
  components : int;
  readers : int;
  writer_ops : int;
  reader_ops : int;
  runs : int;  (** service lifetimes *)
  migrate : bool;  (** [false] = publish-before-migrate mutant *)
  check_generic : bool;
  minimize_budget : int;
      (** ddmin re-runs allowed when a schedule fails; [0] disables
          minimization *)
}

val default : config
(** 2 initial shards growing/shrinking through [4 -> 1 -> 3], 4
    components, 5 lifetimes, migration on. *)

type result = {
  runs : int;
  ops_checked : int;
  epochs_completed : int;  (** sum of final epochs over all runs *)
  flagged_runs : int;
  generic_failures : int;
  accounting_failures : int;
  example : string option;
  minimized : int list option;
      (** ddmin-shrunk reshard schedule, present iff some run failed
          and [minimize_budget > 0] *)
}

val run :
  ?jobs:int -> ?pool:Exec.Pool.recorder -> ?metrics:Obs.Metrics.t ->
  config -> result
(** Run [config.runs] lifetimes, farmed over [jobs] pool domains.
    Totals merge in run-index order, so counts are independent of the
    job count.  [metrics] additionally receives the served layer's
    [serve.*] counters and [reshard_campaign.*] totals. *)

val pp_result : Format.formatter -> result -> unit

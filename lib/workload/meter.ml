open Csim

(* One instantiation path for every measured implementation: the
   campaign's unified-handle factory. *)
let fresh impl ~c ~b ~r =
  let env = Sim.create ~trace:false () in
  let mem = Memory.of_sim env in
  let init = Array.init c (fun k -> k) in
  (env, Campaign.make_handle ~bits_per_value:b impl mem ~readers:r ~init)

(* Warm-up: one Write per component, so e.g. the repeated double collect
   measures a steady-state scan rather than the initial state. *)
let warm env handle =
  let c = handle.Composite.Snapshot.components in
  Sim.run_solo env (fun () ->
      for k = 0 to c - 1 do
        ignore (handle.Composite.Snapshot.update ~writer:k (100 + k))
      done)

(* Validate at the API boundary: out-of-range arguments otherwise
   abort deep inside the construction (index out of bounds in some
   recursion level) with an error that names nothing the caller
   wrote. *)
let check_arity ~what ~c ~r =
  if c < 1 then
    invalid_arg (Printf.sprintf "Meter.%s: c = %d, need at least 1 component" what c);
  if r < 1 then
    invalid_arg
      (Printf.sprintf
         "Meter.%s: r = %d — the measured operation needs a declared reader"
         what r)

let scan_cost impl ~c ~r =
  (* The scan below runs as [reader:0], which only exists if [r >= 1]. *)
  check_arity ~what:"scan_cost" ~c ~r;
  let env, handle = fresh impl ~c ~b:64 ~r in
  let (_ : Sim.stats) = warm env handle in
  let before = Sim.now env in
  let (_ : Sim.stats) =
    Sim.run_solo env (fun () ->
        ignore (handle.Composite.Snapshot.scan_items ~reader:0))
  in
  Sim.now env - before

let update_cost impl ~c ~r ~writer =
  check_arity ~what:"update_cost" ~c ~r;
  if writer < 0 || writer >= c then
    invalid_arg
      (Printf.sprintf "Meter.update_cost: writer %d out of range 0..%d" writer
         (c - 1));
  let env, handle = fresh impl ~c ~b:64 ~r in
  let (_ : Sim.stats) = warm env handle in
  let before = Sim.now env in
  let (_ : Sim.stats) =
    Sim.run_solo env (fun () ->
        ignore (handle.Composite.Snapshot.update ~writer 4242))
  in
  Sim.now env - before

let space_bits impl ~c ~b ~r =
  let env, _handle = fresh impl ~c ~b ~r in
  Sim.space_bits env

let space_registers impl ~c ~r =
  let env, _handle = fresh impl ~c ~b:64 ~r in
  List.length (Sim.cells env)

(** Chaos campaigns for the message-passing backend.

    The network analogue of {!Chaos}: run composite registers over the
    ABD emulation while injecting {e network} faults — message loss,
    adversarial message reordering (a recorded [Random] delivery
    schedule), replica crash-stops — plus one deliberately wrong
    protocol variant (a non-majority quorum) as a negative control.
    In-model faults (loss, reorder, minority crashes) must leave every
    history clean: that is exactly the fault envelope the ABD emulation
    claims to mask.  The broken quorum voids the intersection argument,
    and the campaign must catch it, minimize the failure with
    {!Chaos.ddmin} — over both the fault list and the {e message
    delivery schedule} — and print a one-line deterministic replay.

    Unlike shared-memory process crashes, replica crashes leave no
    dangling client operations (the emulation retransmits around them),
    so the judge excuses nothing: all Shrinking conditions must hold on
    the full history. *)

type profile = {
  label : string;
  loss : float;  (** per-message loss probability in [0, 1) *)
  crashes : (int * int) list;
      (** [(replica, after_k_messages)] crash-stops; must leave a
          majority alive *)
  byz : (int * Net.Sim.byz_flavor) list;
      (** replicas that {e lie} instead of stopping — forged acks,
          stale-value replies, equivocating quorum responses
          ({!Net.Sim.byz_flavor}); the ABD emulation makes no Byzantine
          claim, so these profiles are expected to be flagged *)
  quorum : int option;
      (** [None] = majority (correct); [Some k] forces
          {!Net.Abd.Fixed}[ k] — non-majority values are the broken
          variant *)
}

val profile :
  ?loss:float ->
  ?crashes:(int * int) list ->
  ?byz:(int * Net.Sim.byz_flavor) list ->
  ?quorum:int ->
  string ->
  profile

val broken_quorum : profile -> bool

val default_profiles : replicas:int -> profile list
(** [none], [loss], [crash-last], [crash+loss] (all of which must stay
    clean) and [broken-quorum] (which must be caught). *)

type config = {
  impls : Campaign.impl list;
  profiles : profile list;
  replicas : int;
  components : int;
  readers : int;
  writes_per_writer : int;
  scans_per_reader : int;
  seeds : int;
  base_seed : int;
  max_steps : int;
  minimize_budget : int;
}

val default : config

type case = {
  impl : Campaign.impl;
  prof : profile;
  replicas : int;
  components : int;
  readers : int;
  writes_per_writer : int;
  scans_per_reader : int;
  seed : int;
}

type run_result = {
  outcome : Chaos.outcome;
  schedule : int array;
      (** network-scheduler picks, in order (record mode only) *)
  net : Net.Sim.stats;
  byz_lies : int;
      (** individual replica misbehaviors, summed over the run *)
  byz_per_replica : (int * int) list;
      (** [(replica, misbehaviors)] in assignment order — the exact
          per-replica account ({!Net.Sim.byz_stats}) *)
}

val replay : case -> script:int array -> Chaos.outcome
(** Re-execute a case under [Scripted (script, Round_robin)] over the
    network's canonical action enumeration.  Deterministic: same case +
    same script = same outcome. *)

val run_once :
  ?log:bool ->
  ?metrics:Obs.Metrics.t ->
  ?causal:Obs.Causal.t ->
  case ->
  run_result
(** One recorded [Random case.seed] run of the case, outside any
    campaign.  [metrics] books the history's per-op latencies into
    [netchaos.scan.latency]/[netchaos.update.latency]; [causal] enables
    end-to-end causal tracing (the collector is fed both the composite
    note markers and the ABD instrumentation — see
    {!Net.Abd.create}[ ~causal]).  Tracing does not change the
    schedule: the run's outcome and counters are identical with and
    without it (E19 measures the wall-clock overhead). *)

val export_timeline :
  ?pp:(Net.Sim.payload -> string) -> case -> path:string -> run_result
(** Run one recorded schedule of the case with event logging on and
    write the message timeline ({!Net.Timeline}) to [path]. *)

val export_causal :
  ?pp:(Net.Sim.payload -> string) ->
  case ->
  path:string ->
  run_result * Obs.Causal.t
(** Like {!export_timeline}, but with causal tracing on: writes the
    {e merged} Chrome trace ({!Net.Timeline.export}[ ~causal]) — span
    trees for every composite Scan/Update, ABD op, phase and
    per-replica rpc on the client tracks, message flow arrows joining
    them — and returns the collector for span accounting. *)

type counterexample = {
  cx_case : case;  (** with the {e minimized} fault profile *)
  cx_script : int array;  (** minimized message-delivery schedule *)
  cx_violations : string;
  cx_original_entries : int;
  cx_original_elements : int;
  cx_replays : int;
}

val minimize : budget:int -> case -> script:int array -> counterexample
(** Delta-debug a failing (case, script) pair: first shrink the fault
    elements (the loss knob, each crash), then the message schedule,
    preserving failure kind.  The quorum override is part of the case
    and is never dropped — it names the variant under accusation. *)

val cx_to_string : counterexample -> string
(** One-line replay script (for [net --replay]). *)

val cx_of_string : string -> (counterexample, string) result

val pp_counterexample : Format.formatter -> counterexample -> unit

type cell = {
  cell_impl : Campaign.impl;
  cell_profile : profile;
  runs : int;
  flagged : int;
  stuck : int;
  msgs_sent : int;
  msgs_lost : int;
  counterexample : counterexample option;  (** first failing run, minimized *)
}

type report = {
  cells : cell list;
  total_runs : int;
  total_flagged : int;
  total_stuck : int;
}

val run :
  ?jobs:int -> ?pool:Exec.Pool.recorder -> ?metrics:Obs.Metrics.t ->
  config -> report
(** The {impl × profile × seed} sweep, sharded over domains like
    {!Chaos.run}; minimization happens in the sequential merge on the
    first failing seed of each cell, so the report is bit-identical at
    every job count.  With [metrics]: counters [netchaos.runs],
    [netchaos.flagged], [netchaos.stuck], [netchaos.msgs_sent],
    [netchaos.msgs_lost], [netchaos.byz_lies] and per-replica
    [netchaos.byz.replicaR]; histogram [netchaos.schedule_entries]. *)

val pp_report : Format.formatter -> report -> unit

(** Byzantine survive/break campaigns across the full stack.

    The composite snapshot constructions run over
    {!Registers.Byzantine.memory} — the f-tolerant SWMR-from-SWSR
    construction — whose base cells are actively faulty
    ({!Csim.Faults} Byzantine kinds: equivocation, timestamp
    regression, budgeted lying adversaries).  The campaign asserts the
    tolerance boundary from both sides:

    - {e survive} profiles keep the adversary within the construction's
      budget (at most [f] lying base cells per link) and every history
      must check out clean;
    - {e break} profiles exceed the budget, or remove the protective
      layer entirely (the unprotected stack), and the Shrinking oracle
      must catch the regression; the failure is delta-debugged — over
      the adversary's injections and the schedule — to a minimal
      counterexample replaying deterministically from a one-line
      script.

    Mirrors {!Chaos} (benign memory faults) and {!Netchaos} (network
    faults) in shape: record → judge → ddmin → replay script. *)

type protection =
  | Unprotected
      (** the impls run directly over the faulty memory — the stack the
          construction is supposed to make unnecessary to trust *)
  | Tolerant of int
      (** [Registers.Byzantine.memory ~f] sits between the faulty
          memory and the impls *)

type expectation = Survive | Break

type profile = {
  label : string;
  protection : protection;
  injections : Csim.Faults.injection list;  (** the adversary *)
  expect : expectation;
      (** which side of the tolerance boundary this profile
          demonstrates *)
}

val profile :
  ?protection:protection ->
  expect:expectation ->
  string ->
  Csim.Faults.injection list ->
  profile
(** [protection] defaults to [Tolerant 1]. *)

val protection_label : protection -> string

val default_profiles : components:int -> readers:int -> profile list
(** The default sweep over [f] and misbehavior profiles: budgeted
    adversaries at [f] and [f = 2] (masked), per-replica equivocation /
    regression / targeted drops (masked), every link into the first
    scanning reader lying (caught), and the unprotected stack
    (caught). *)

type config = {
  impls : Campaign.impl list;
  profiles : profile list;
  components : int;
  readers : int;
  writes_per_writer : int;
  scans_per_reader : int;
  seeds : int;
  base_seed : int;
  max_steps : int;
  minimize_budget : int;
}

val default : config

type case = {
  impl : Campaign.impl;
  prof : profile;
  components : int;
  readers : int;
  writes_per_writer : int;
  scans_per_reader : int;
  fault_seed : int;
}

val stack_description : case -> string
(** The active fault stack of a case, outermost first — e.g.
    ["byzantine(f=1,ports=4) over byz:1:1 over sim"] ({!Csim.Faults.describe}
    composed with the protection layer). *)

val replay : case -> script:int array -> Chaos.outcome
(** Re-execute a case under [Scripted (script, Round_robin)].
    Deterministic: same case + same script = same outcome.  No crash
    excuses: all Shrinking conditions must hold. *)

type counterexample = {
  cx_case : case;  (** with the {e minimized} adversary *)
  cx_script : int array;
  cx_violations : string;
  cx_stack : string;  (** active fault stack of the minimized case *)
  cx_original_entries : int;
  cx_original_elements : int;
  cx_replays : int;
}

val minimize : budget:int -> case -> script:int array -> counterexample
(** Delta-debug a failing (case, script) pair: shrink the adversary's
    injection list, then the schedule, preserving failure kind.  The
    protection layer is part of the case and is never dropped — it
    names the construction under accusation. *)

val cx_to_string : counterexample -> string
(** One-line replay script (for [byz --replay]). *)

val cx_of_string : string -> (counterexample, string) result
val pp_counterexample : Format.formatter -> counterexample -> unit

type cell = {
  cell_impl : Campaign.impl;
  cell_profile : profile;
  runs : int;
  flagged : int;
  stuck : int;
  faults_fired : int;
  cells_claimed : int;
      (** base cells owned by budgeted adversaries, summed over runs *)
  as_expected : bool;
      (** [Survive] rows stayed clean / [Break] rows were caught *)
  counterexample : counterexample option;  (** first failing run, minimized *)
}

type report = {
  cells : cell list;
  total_runs : int;
  total_flagged : int;
  total_stuck : int;
  boundary_holds : bool;  (** every cell matched its profile's side *)
}

val run :
  ?jobs:int -> ?pool:Exec.Pool.recorder -> ?metrics:Obs.Metrics.t ->
  config -> report
(** The {impl × profile × seed} sweep, sharded over domains; the merge
    (and minimization of the first failing seed per cell) is
    sequential, so the report is bit-identical at every job count.
    With [metrics]: counters [byz.runs], [byz.flagged], [byz.stuck],
    [byz.faults_fired], [byz.cells_claimed], [byz.minimize_replays];
    histogram [byz.schedule_entries]. *)

val pp_report : Format.formatter -> report -> unit

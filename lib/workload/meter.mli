(** Access-count measurement of composite register operations
    (experiments E2, E3, E5).

    Measures, by running one operation alone in a fresh simulator, the
    exact number of underlying register operations (reads + writes of
    MRSW atomic registers) a Read or Write performs.  For the paper's
    construction these must equal the recurrences in
    {!Composite.Complexity}; for the comparators they exhibit the
    polynomial-versus-exponential contrast of experiment E5. *)

val scan_cost : Campaign.impl -> c:int -> r:int -> int
(** Register operations performed by one Read of a [c]-component,
    [r]-reader register (measured in quiescence, after one Write per
    component so caches of the algorithms are warm).  The measured
    Read runs as reader 0, so raises [Invalid_argument] unless
    [c >= 1] and [r >= 1]. *)

val update_cost : Campaign.impl -> c:int -> r:int -> writer:int -> int
(** Register operations performed by one Write by the given writer.
    Raises [Invalid_argument] unless [c >= 1], [r >= 1] and
    [0 <= writer < c]. *)

val space_bits : Campaign.impl -> c:int -> b:int -> r:int -> int
(** Declared bits of all registers the implementation allocates. *)

val space_registers : Campaign.impl -> c:int -> r:int -> int
(** Number of registers the implementation allocates. *)

module Prng = Csim.Schedule.Prng

type arrival = Open_loop of float | Closed_loop

type config = {
  connections : int;
  clients : int;
  ops : int;
  arrival : arrival;
  write_ratio : float;
  post_ratio : float;
  zipf_theta : float;
  seed : int;
  domains : int;
}

let default =
  {
    connections = 16;
    clients = 256;
    ops = 2000;
    arrival = Open_loop 20_000.;
    write_ratio = 0.3;
    post_ratio = 0.5;
    zipf_theta = 0.9;
    seed = 1;
    domains = 2;
  }

type op_kind = Op_write | Op_post | Op_scan

type planned = {
  p_at_ns : int;
  p_conn : int;
  p_client : int;
  p_kind : op_kind;
  p_component : int;
  p_value : int;
}

(* Cumulative Zipf weights: component k drawn with probability
   proportional to 1/(k+1)^theta.  theta = 0 degenerates to uniform. *)
let zipf_weights ~components ~theta =
  if components < 1 then invalid_arg "Loadgen.zipf_weights: no components";
  let cum = Array.make components 0. in
  let acc = ref 0. in
  for k = 0 to components - 1 do
    acc := !acc +. (1. /. Float.pow (float_of_int (k + 1)) theta);
    cum.(k) <- !acc
  done;
  let total = cum.(components - 1) in
  Array.map (fun c -> c /. total) cum

let zipf_pick cum u =
  (* Smallest k with cum.(k) >= u. *)
  let lo = ref 0 and hi = ref (Array.length cum - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cum.(mid) >= u then hi := mid else lo := mid + 1
  done;
  !lo

let validate cfg =
  if cfg.connections < 1 then
    invalid_arg "Loadgen: connections must be >= 1";
  if cfg.clients < cfg.connections then
    invalid_arg "Loadgen: clients must be >= connections";
  if cfg.ops < 1 then invalid_arg "Loadgen: ops must be >= 1";
  if cfg.write_ratio < 0. || cfg.write_ratio > 1. then
    invalid_arg "Loadgen: write_ratio must be in [0, 1]";
  if cfg.post_ratio < 0. || cfg.post_ratio > 1. then
    invalid_arg "Loadgen: post_ratio must be in [0, 1]";
  if cfg.zipf_theta < 0. then invalid_arg "Loadgen: zipf_theta must be >= 0";
  if cfg.domains < 1 then invalid_arg "Loadgen: domains must be >= 1";
  (match cfg.arrival with
  | Open_loop r when r <= 0. -> invalid_arg "Loadgen: open-loop rate must be > 0"
  | _ -> ())

let plan ~components cfg =
  validate cfg;
  if components < 1 then invalid_arg "Loadgen.plan: no components";
  let prng = Prng.make cfg.seed in
  let cum = zipf_weights ~components ~theta:cfg.zipf_theta in
  let t = ref 0. in
  Array.init cfg.ops (fun j ->
      (* Draw order is fixed: arrival gap, client, kind, component —
         the plan is a pure function of (config, components). *)
      let at_ns =
        match cfg.arrival with
        | Closed_loop -> 0
        | Open_loop rate ->
          let u = Prng.float prng in
          t := !t +. (-.log (1. -. u) /. rate);
          int_of_float (!t *. 1e9)
      in
      let client = Prng.int prng cfg.clients in
      let kind =
        if Prng.float prng < cfg.write_ratio then
          if Prng.float prng < cfg.post_ratio then Op_post else Op_write
        else Op_scan
      in
      let component = zipf_pick cum (Prng.float prng) in
      {
        p_at_ns = at_ns;
        p_conn = client mod cfg.connections;
        p_client = client;
        p_kind = kind;
        p_component = component;
        p_value = 1000 + j;
      })

type report = {
  ops_done : int;
  errors : int;
  elapsed_ns : int;
  throughput_per_sec : float;
  stalled_conns : int;
}

(* ------------------------------------------------------------------ *)
(* Execution engine                                                     *)
(* ------------------------------------------------------------------ *)

type conn_state = {
  fd : Unix.file_descr;
  mutable queue : planned list;  (* plan order *)
  mutable inflight : planned option;
  mutable sent_ns : int;  (* monotonic, for closed-loop latency *)
  mutable dead : bool;
}

type domain_outcome = {
  d_ops : int;
  d_errors : int;
  d_stalled : int;
  d_first_send : int;  (* monotonic ns; max_int if none *)
  d_last_resp : int;  (* monotonic ns; 0 if none *)
  d_metrics : Obs.Metrics.t;
}

let read_exact fd buf off len =
  let got = ref 0 in
  while !got < len do
    match Unix.read fd buf (off + !got) (len - !got) with
    | 0 -> raise End_of_file
    | n -> got := !got + n
  done

let write_all fd b =
  let n = Bytes.length b in
  let sent = ref 0 in
  while !sent < n do
    sent := !sent + Unix.write fd b !sent (n - !sent)
  done

let request_of op =
  match op.p_kind with
  | Op_write -> Edge.Wire.Write { component = op.p_component; value = op.p_value }
  | Op_post -> Edge.Wire.Post { component = op.p_component; value = op.p_value }
  | Op_scan -> Edge.Wire.Scan

let kind_metric = function
  | Op_write -> "edge.write.latency_ns"
  | Op_post -> "edge.post.latency_ns"
  | Op_scan -> "edge.scan.latency_ns"

let response_matches op resp =
  match (op.p_kind, resp) with
  | Op_write, Edge.Wire.Write_ok _ -> true
  | Op_post, Edge.Wire.Post_ok -> true
  | Op_scan, Edge.Wire.Scan_ok _ -> true
  | _ -> false

(* One client domain: drive [conns] through a flat select loop, one
   request in flight per connection.  Sockets stay blocking — requests
   are tiny and responses are read only after select reports the first
   bytes, so the brief tail of a large frame is the only blocking. *)
let drive ~host ~port ~open_loop ~t0 conns_plans =
  let m = Obs.Metrics.create () in
  let errors = ref 0 and ops_done = ref 0 and stalled = ref 0 in
  let first_send = ref max_int and last_resp = ref 0 in
  let conns =
    List.map
      (fun queue ->
        let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
        (try Unix.setsockopt fd Unix.TCP_NODELAY true
         with Unix.Unix_error _ -> ());
        { fd; queue; inflight = None; sent_ns = 0; dead = false })
      conns_plans
  in
  let kill c =
    if not c.dead then begin
      c.dead <- true;
      incr stalled;
      c.inflight <- None;
      c.queue <- [];
      try Unix.close c.fd with Unix.Unix_error _ -> ()
    end
  in
  let now_rel () = Obs.Mono.now_ns () - t0 in
  let send c op =
    let b = Edge.Wire.encode_request (request_of op) in
    match write_all c.fd b with
    | () ->
      c.sent_ns <- Obs.Mono.now_ns ();
      if c.sent_ns < !first_send then first_send := c.sent_ns;
      c.inflight <- Some op
    | exception (End_of_file | Unix.Unix_error _) -> kill c
  in
  let receive c op =
    match
      let hdr = Bytes.create 4 in
      read_exact c.fd hdr 0 4;
      match Edge.Wire.decode_length hdr with
      | Error e -> Result.Error e
      | Ok n ->
        let payload = Bytes.create n in
        read_exact c.fd payload 0 n;
        Edge.Wire.decode_response payload
    with
    | exception (End_of_file | Unix.Unix_error _) -> kill c
    | Error _ -> incr errors; kill c
    | Ok resp ->
      let now = Obs.Mono.now_ns () in
      if now > !last_resp then last_resp := now;
      c.inflight <- None;
      incr ops_done;
      if response_matches op resp then begin
        (* Open loop charges queueing behind the arrival schedule to
           the op (no coordinated omission); closed loop is RTT. *)
        let lat =
          if open_loop then now - (t0 + op.p_at_ns) else now - c.sent_ns
        in
        Obs.Metrics.observe
          (Obs.Metrics.histogram m (kind_metric op.p_kind))
          (max 0 lat)
      end
      else incr errors
  in
  let live () =
    List.exists (fun c -> (not c.dead) && (c.inflight <> None || c.queue <> [])) conns
  in
  while live () do
    let now = now_rel () in
    (* Fire everything due on idle connections. *)
    List.iter
      (fun c ->
        if (not c.dead) && c.inflight = None then
          match c.queue with
          | op :: rest when (not open_loop) || op.p_at_ns <= now ->
            c.queue <- rest;
            send c op
          | _ -> ())
      conns;
    let reading =
      List.filter (fun c -> (not c.dead) && c.inflight <> None) conns
    in
    if reading = [] then begin
      (* Open loop, all idle: sleep until the earliest due op. *)
      let next =
        List.fold_left
          (fun acc c ->
            match c.queue with
            | op :: _ when not c.dead -> min acc op.p_at_ns
            | _ -> acc)
          max_int conns
      in
      if next < max_int then begin
        let gap_s = float_of_int (next - now_rel ()) /. 1e9 in
        if gap_s > 0. then
          ignore (Unix.select [] [] [] (Float.min gap_s 0.05))
      end
    end
    else begin
      let timeout =
        if not open_loop then 0.05
        else
          let next =
            List.fold_left
              (fun acc c ->
                match c.queue with
                | op :: _ when (not c.dead) && c.inflight = None ->
                  min acc op.p_at_ns
                | _ -> acc)
              max_int conns
          in
          if next = max_int then 0.05
          else
            Float.max 0.
              (Float.min 0.05 (float_of_int (next - now_rel ()) /. 1e9))
      in
      match
        Unix.select (List.map (fun c -> c.fd) reading) [] [] timeout
      with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | ready, _, _ ->
        List.iter
          (fun c ->
            if List.mem c.fd ready then
              match c.inflight with
              | Some op -> receive c op
              | None -> ())
          reading
    end
  done;
  List.iter (fun c -> if not c.dead then try Unix.close c.fd with Unix.Unix_error _ -> ()) conns;
  {
    d_ops = !ops_done;
    d_errors = !errors;
    d_stalled = !stalled;
    d_first_send = !first_send;
    d_last_resp = !last_resp;
    d_metrics = m;
  }

let run ?metrics ?(host = "127.0.0.1") ~port ~components cfg =
  let ops = plan ~components cfg in
  let open_loop = match cfg.arrival with Open_loop _ -> true | Closed_loop -> false in
  (* Per-connection queues in plan order, then connections dealt to
     domains round-robin; each domain's select loop is independent. *)
  let queues = Array.make cfg.connections [] in
  Array.iter (fun op -> queues.(op.p_conn) <- op :: queues.(op.p_conn)) ops;
  let queues = Array.map List.rev queues in
  let domains = min cfg.domains cfg.connections in
  let shares = Array.make domains [] in
  Array.iteri (fun c q -> shares.(c mod domains) <- q :: shares.(c mod domains)) queues;
  let shares = Array.map List.rev shares in
  let t0 = Obs.Mono.now_ns () in
  let outcomes =
    if domains = 1 then [| drive ~host ~port ~open_loop ~t0 shares.(0) |]
    else
      Array.map Domain.join
        (Array.map
           (fun share -> Domain.spawn (fun () -> drive ~host ~port ~open_loop ~t0 share))
           shares)
  in
  let ops_done = Array.fold_left (fun a o -> a + o.d_ops) 0 outcomes in
  let errors = Array.fold_left (fun a o -> a + o.d_errors) 0 outcomes in
  let stalled = Array.fold_left (fun a o -> a + o.d_stalled) 0 outcomes in
  let first = Array.fold_left (fun a o -> min a o.d_first_send) max_int outcomes in
  let last = Array.fold_left (fun a o -> max a o.d_last_resp) 0 outcomes in
  let elapsed_ns = if last > first then last - first else 0 in
  (match metrics with
  | None -> ()
  | Some m ->
    Array.iter (fun o -> Obs.Metrics.merge ~into:m o.d_metrics) outcomes;
    let c name by = Obs.Metrics.incr ~by (Obs.Metrics.counter m name) in
    c "loadgen.ops" ops_done;
    c "loadgen.errors" errors;
    c "loadgen.stalled_conns" stalled);
  {
    ops_done;
    errors;
    elapsed_ns;
    throughput_per_sec =
      (if elapsed_ns <= 0 then 0.
       else float_of_int ops_done /. (float_of_int elapsed_ns /. 1e9));
    stalled_conns = stalled;
  }

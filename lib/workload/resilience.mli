(** Halting-failure resilience (paper, Section 1).

    "Wait-free shared data objects are inherently resilient to halting
    failures: a process that halts while accessing such a data object
    cannot block the progress of any other process."

    This module tests that claim exhaustively over crash points: for a
    given configuration it runs the system once per (victim process,
    crash point) pair, halting the victim mid-operation after exactly
    that many of its shared-memory events, and verifies that

    - every surviving process completes all of its operations (the run
      terminates without exhausting the step budget), and
    - the history of {e completed} operations is still linearizable
      (checked with the Shrinking conditions; the victim's dangling
      operation is excluded, matching the paper's well-formedness).

    A victim writer frozen between its two [Y[0]] writes is exactly the
    adversary the construction's three-way case analysis guards
    against, so this sweep exercises the subtle states on purpose. *)

type report = {
  scenarios : int;  (** (victim, crash point) pairs executed *)
  survivor_ops : int;  (** completed operations across all scenarios *)
  blocked : int;  (** scenarios where survivors failed to finish *)
  not_linearizable : int;  (** scenarios with a Shrinking violation *)
}

val complete_dangling :
  components:int -> int History.Snapshot_history.t -> int History.Snapshot_history.t
(** Standard linearizability treatment of a crashed process's pending
    Write, specialized to this module's deterministic workload (writer
    [k]'s [s]-th Write has id [s] and input [(k+1)*1000 + s]): if some
    Read returned, for component [k], an id one past the largest
    {e recorded} [k]-Write id — i.e. exactly the next Write, whose
    effect became visible before the crash — materialize that Write
    with the maximal interval [(0, max_int)] (a pending operation is
    concurrent with everything).  Ids further than one past the largest
    recorded id, or no dangling id at all, leave the history unchanged.
    Exposed for the chaos campaign's oracle and for direct testing. *)

val run :
  ?components:int ->
  ?readers:int ->
  ?writes_per_writer:int ->
  ?scans_per_reader:int ->
  ?max_crash_point:int ->
  seed:int ->
  unit ->
  report
(** Defaults: [components = 2], [readers = 2], [writes_per_writer = 2],
    [scans_per_reader = 2], [max_crash_point = 12].  For each process
    [p] and each [k <= max_crash_point], one run crashes [p] after [k]
    events under a seeded random schedule. *)

val pp_report : Format.formatter -> report -> unit

open Csim

(* ------------------------------------------------------------------ *)
(* Fault profiles                                                       *)
(* ------------------------------------------------------------------ *)

type profile = {
  label : string;
  injections : Faults.injection list;
  crashes : (int * int) list;
  stalls : (int * int * int) list;
}

let profile ?(injections = []) ?(crashes = []) ?(stalls = []) label =
  { label; injections; crashes; stalls }

let faulty_memory p = p.injections <> []

let default_profiles ~components ~readers =
  let last_reader = components + readers - 1 in
  let inj kind = [ { Faults.kind; target = Faults.All } ] in
  [
    profile "none";
    profile "crash-writer0" ~crashes:[ (0, 2) ];
    profile "crash-reader" ~crashes:[ (last_reader, 3) ];
    profile "crash-two" ~crashes:[ (0, 4); (last_reader, 1) ];
    profile "stall-writer0" ~stalls:[ (0, 2, 60) ];
    profile "stall-reader" ~stalls:[ (last_reader, 1, 80) ];
    profile "stall-writers"
      ~stalls:(List.init components (fun k -> (k, 3, 30)));
    profile "lost-writes" ~injections:(inj (Faults.Lost_write { prob = 0.15 }));
    profile "stuck-cell" ~injections:(inj (Faults.Stuck_at { after = 1 }));
    profile "stutter" ~injections:(inj (Faults.Stutter { prob = 0.15 }));
    profile "corrupt-reads" ~injections:(inj (Faults.Corrupt { prob = 0.05 }));
    profile "regular-weakening" ~injections:(inj (Faults.Regular { window = 2 }));
  ]

(* ------------------------------------------------------------------ *)
(* Single runs                                                          *)
(* ------------------------------------------------------------------ *)

type config = {
  impls : Campaign.impl list;
  profiles : profile list;
  components : int;
  readers : int;
  writes_per_writer : int;
  scans_per_reader : int;
  seeds : int;
  base_seed : int;
  max_steps : int;
  minimize_budget : int;
}

let default =
  {
    impls = Campaign.all_impls;
    profiles = default_profiles ~components:2 ~readers:2;
    components = 2;
    readers = 2;
    writes_per_writer = 2;
    scans_per_reader = 2;
    seeds = 10;
    base_seed = 1;
    max_steps = 50_000;
    minimize_budget = 3_000;
  }

type outcome =
  | Passed
  | Flagged of History.Shrinking.violation list
  | Stuck_run of string
  | Diverged of string

let outcome_failed = function
  | Flagged _ | Stuck_run _ -> true
  | Passed | Diverged _ -> false

type case = {
  impl : Campaign.impl;
  prof : profile;
  components : int;
  readers : int;
  writes_per_writer : int;
  scans_per_reader : int;
  fault_seed : int;
}

type run_result = {
  outcome : outcome;
  schedule : int array;  (* scheduler picks, in order (record mode only) *)
  fired : int;  (* memory faults that triggered *)
}

type mode = Record of Schedule.t | Replay of int array

(* The same deterministic workload as Campaign/Resilience: writer k's
   s-th Write has input (k+1)*1000 + s and (for all implementations in
   the repo) id s, which is what Resilience.complete_dangling assumes
   when materializing a crash victim's pending Write. *)
let exec ~max_steps (case : case) mode =
  (* Chaos runs are numerous and can run long under stalls; keep the
     trace for post-mortem observability but bound its memory with the
     ring buffer (the retained suffix is what a profiler would want
     anyway). *)
  let env = Sim.create ~trace_capacity:4096 () in
  let base = Memory.of_sim env in
  (* [who] names the asking process for equivocating faults, so two
     concurrent readers really are shown different register faces. *)
  let who () = try Sim.self () with Sim.Not_in_simulation -> 0 in
  let mem, counters =
    Faults.wrap ~seed:case.fault_seed ~who case.prof.injections base
  in
  let init = Array.init case.components (fun k -> (k + 1) * 10) in
  let handle = Campaign.make_handle case.impl mem ~readers:case.readers ~init in
  let rec_ =
    Composite.Snapshot.record ~clock:(fun () -> Sim.now env) ~initial:init handle
  in
  let writer k () =
    for s = 1 to case.writes_per_writer do
      rec_.Composite.Snapshot.rupdate ~writer:k (((k + 1) * 1000) + s)
    done
  in
  let reader j () =
    for _ = 1 to case.scans_per_reader do
      ignore (rec_.Composite.Snapshot.rscan ~reader:j)
    done
  in
  let procs =
    Array.init
      (case.components + case.readers)
      (fun i ->
        if i < case.components then writer i else reader (i - case.components))
  in
  let picks = ref [] in
  let policy =
    match mode with
    | Record inner ->
      let d = Schedule.driver inner in
      Schedule.Choose
        (fun ~enabled ~step ->
          let p = Schedule.pick d ~enabled ~step in
          picks := p :: !picks;
          p)
    | Replay script -> Schedule.Scripted (script, Schedule.Round_robin)
  in
  let finish outcome =
    {
      outcome;
      schedule = Array.of_list (List.rev !picks);
      fired = Faults.fired counters;
    }
  in
  match
    Sim.run env ~policy ~max_steps ~crashes:case.prof.crashes
      ~stalls:case.prof.stalls procs
  with
  | exception Sim.Stuck msg -> finish (Stuck_run msg)
  | exception Schedule.Bad_script msg -> finish (Diverged msg)
  | (_ : Sim.stats) ->
    let h = Composite.Snapshot.history rec_ in
    let crashed = case.prof.crashes <> [] in
    let h =
      if crashed then Resilience.complete_dangling ~components:case.components h
      else h
    in
    let violations = History.Shrinking.check ~equal:Int.equal h in
    let violations =
      (* A crash victim's half-published Write can leave ids with no
         completed matching Write even after completion; those
         Integrity leftovers are the pending operation's footprint, not
         a bug (cf. the resilience qcheck property).  All other
         conditions must hold regardless. *)
      if crashed then
        List.filter
          (function History.Shrinking.Integrity _ -> false | _ -> true)
          violations
      else violations
    in
    finish (if violations = [] then Passed else Flagged violations)

let replay case ~script =
  (exec ~max_steps:default.max_steps case (Replay script)).outcome

(* ------------------------------------------------------------------ *)
(* Counterexample minimization                                          *)
(* ------------------------------------------------------------------ *)

(* Greedy delta debugging on a list: repeatedly try to delete chunks,
   halving the chunk size whenever a whole sweep makes no progress.
   [test] must return true iff the candidate still fails. *)
let ddmin ~budget ~test xs =
  let spent = ref 0 in
  let try_test ys =
    if !spent >= budget then false
    else begin
      incr spent;
      test ys
    end
  in
  let rec sweep chunk i xs =
    let n = List.length xs in
    if i >= n then xs
    else begin
      let candidate = List.filteri (fun j _ -> j < i || j >= i + chunk) xs in
      if List.length candidate < n && try_test candidate then
        sweep chunk i candidate
      else sweep chunk (i + chunk) xs
    end
  in
  let rec shrink xs chunk =
    if chunk = 0 || xs = [] then xs
    else begin
      let n = List.length xs in
      let xs = sweep chunk 0 xs in
      if List.length xs < n then
        shrink xs (min chunk (max 1 (List.length xs / 2)))
      else shrink xs (chunk / 2)
    end
  in
  let r = shrink xs (max 1 (List.length xs / 2)) in
  (r, !spent)

type element =
  | E_injection of Faults.injection
  | E_crash of int * int
  | E_stall of int * int * int

let elements_of_profile p =
  List.map (fun i -> E_injection i) p.injections
  @ List.map (fun (a, b) -> E_crash (a, b)) p.crashes
  @ List.map (fun (a, b, c) -> E_stall (a, b, c)) p.stalls

let profile_of_elements ~label els =
  {
    label;
    injections = List.filter_map (function E_injection i -> Some i | _ -> None) els;
    crashes = List.filter_map (function E_crash (a, b) -> Some (a, b) | _ -> None) els;
    stalls =
      List.filter_map (function E_stall (a, b, c) -> Some (a, b, c) | _ -> None) els;
  }

type counterexample = {
  cx_case : case;
  cx_script : int array;
  cx_violations : string;
  cx_original_entries : int;
  cx_original_elements : int;
  cx_replays : int;
}

let render_outcome = function
  | Passed -> "passed"
  | Stuck_run msg -> "stuck: " ^ msg
  | Diverged msg -> "diverged: " ^ msg
  | Flagged vs ->
    Format.asprintf "%a"
      (Format.pp_print_list ~pp_sep:Format.pp_print_newline
         History.Shrinking.pp_violation)
      vs

let minimize ~budget case ~script =
  (* Reproduce "the same kind of failure": a Flagged original must stay
     Flagged (any violation will do — insisting on the identical
     violation list would block most simplifications), a Stuck original
     must stay Stuck. *)
  let same_kind reference o =
    match (reference, o) with
    | Flagged _, Flagged _ -> true
    | Stuck_run _, Stuck_run _ -> true
    | _ -> false
  in
  let reference = replay case ~script in
  if not (outcome_failed reference) then
    invalid_arg "Chaos.minimize: the given case does not fail under replay";
  let original_elements = elements_of_profile case.prof in
  (* Pass 1: shrink the chaos elements, replaying the full schedule. *)
  let elements, spent1 =
    ddmin ~budget
      ~test:(fun els ->
        let prof = profile_of_elements ~label:case.prof.label els in
        same_kind reference (replay { case with prof } ~script))
      original_elements
  in
  let case = { case with prof = profile_of_elements ~label:case.prof.label elements } in
  (* Pass 2: shrink the schedule itself.  Dropped entries defer the
     affected process's remaining events to the round-robin fallback;
     candidates that make a later entry invalid (Diverged) simply do
     not reproduce and are rejected by the test. *)
  let entries, spent2 =
    ddmin ~budget:(max 0 (budget - spent1))
      ~test:(fun entries ->
        same_kind reference (replay case ~script:(Array.of_list entries)))
      (Array.to_list script)
  in
  let cx_script = Array.of_list entries in
  {
    cx_case = case;
    cx_script;
    cx_violations = render_outcome (replay case ~script:cx_script);
    cx_original_entries = Array.length script;
    cx_original_elements = List.length original_elements;
    cx_replays = spent1 + spent2;
  }

(* ------------------------------------------------------------------ *)
(* Replayable one-line scripts                                          *)
(* ------------------------------------------------------------------ *)

let concat_map sep f xs = String.concat sep (List.map f xs)

let cx_to_string cx =
  let c = cx.cx_case in
  Printf.sprintf
    "impl=%s c=%d r=%d writes=%d scans=%d fault-seed=%d label=%s faults=%s \
     crashes=%s stalls=%s script=%s"
    (Campaign.impl_name c.impl) c.components c.readers c.writes_per_writer
    c.scans_per_reader c.fault_seed c.prof.label
    (concat_map "," Faults.injection_to_string c.prof.injections)
    (concat_map "," (fun (p, k) -> Printf.sprintf "%d:%d" p k) c.prof.crashes)
    (concat_map ","
       (fun (p, at, dur) -> Printf.sprintf "%d:%d:%d" p at dur)
       c.prof.stalls)
    (concat_map "," string_of_int (Array.to_list cx.cx_script))

let cx_of_string s =
  let ( let* ) = Result.bind in
  let fields =
    List.filter_map
      (fun tok ->
        match String.index_opt tok '=' with
        | None -> None
        | Some i ->
          Some
            ( String.sub tok 0 i,
              String.sub tok (i + 1) (String.length tok - i - 1) ))
      (String.split_on_char ' ' (String.trim s))
  in
  let field name = List.assoc_opt name fields in
  let req name =
    match field name with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "replay script: missing %s=" name)
  in
  let int_field name =
    let* v = req name in
    match int_of_string_opt v with
    | Some n -> Ok n
    | None -> Error (Printf.sprintf "replay script: %s=%S is not an integer" name v)
  in
  let list_field name parse =
    match field name with
    | None | Some "" -> Ok []
    | Some v ->
      List.fold_right
        (fun tok acc ->
          let* acc = acc in
          let* x = parse tok in
          Ok (x :: acc))
        (String.split_on_char ',' v) (Ok [])
  in
  let ints_of tok expect name =
    let parts = String.split_on_char ':' tok in
    if List.length parts <> expect then
      Error (Printf.sprintf "replay script: bad %s entry %S" name tok)
    else
      List.fold_right
        (fun p acc ->
          let* acc = acc in
          match int_of_string_opt p with
          | Some n -> Ok (n :: acc)
          | None -> Error (Printf.sprintf "replay script: bad %s entry %S" name tok))
        parts (Ok [])
  in
  let* impl_s = req "impl" in
  let* impl =
    match Campaign.impl_of_name impl_s with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "replay script: unknown impl %S" impl_s)
  in
  let* components = int_field "c" in
  let* readers = int_field "r" in
  let* writes_per_writer = int_field "writes" in
  let* scans_per_reader = int_field "scans" in
  let* fault_seed = int_field "fault-seed" in
  let label = Option.value (field "label") ~default:"replay" in
  let* injections =
    list_field "faults" (fun tok -> Faults.injection_of_string tok)
  in
  let* crashes =
    list_field "crashes" (fun tok ->
        let* l = ints_of tok 2 "crashes" in
        match l with [ p; k ] -> Ok (p, k) | _ -> assert false)
  in
  let* stalls =
    list_field "stalls" (fun tok ->
        let* l = ints_of tok 3 "stalls" in
        match l with [ p; at; dur ] -> Ok (p, at, dur) | _ -> assert false)
  in
  let* script =
    list_field "script" (fun tok ->
        match int_of_string_opt tok with
        | Some n -> Ok n
        | None -> Error (Printf.sprintf "replay script: bad script entry %S" tok))
  in
  Ok
    {
      cx_case =
        {
          impl;
          prof = { label; injections; crashes; stalls };
          components;
          readers;
          writes_per_writer;
          scans_per_reader;
          fault_seed;
        };
      cx_script = Array.of_list script;
      cx_violations = "";
      cx_original_entries = List.length script;
      cx_original_elements =
        List.length injections + List.length crashes + List.length stalls;
      cx_replays = 0;
    }

let pp_counterexample fmt cx =
  let c = cx.cx_case in
  Format.fprintf fmt
    "@[<v>minimized counterexample: impl=%s profile=%s@,\
     fault stack: %s@,\
     chaos elements: %d (from %d)  schedule entries: %d (from %d)  \
     minimizer replays: %d@,\
     faults=[%s] crashes=[%s] stalls=[%s] fault-seed=%d@,\
     violations of the minimized run:@,%s@,\
     replay with:@,  chaos --replay '%s'@]"
    (Campaign.impl_name c.impl) c.prof.label
    (Faults.stack_label ~layers:[ c.prof.injections ] ~base:"sim")
    (List.length (elements_of_profile c.prof))
    cx.cx_original_elements (Array.length cx.cx_script)
    cx.cx_original_entries cx.cx_replays
    (concat_map "," Faults.injection_to_string c.prof.injections)
    (concat_map "," (fun (p, k) -> Printf.sprintf "%d:%d" p k) c.prof.crashes)
    (concat_map ","
       (fun (p, at, dur) -> Printf.sprintf "%d:%d:%d" p at dur)
       c.prof.stalls)
    c.fault_seed cx.cx_violations (cx_to_string cx)

(* ------------------------------------------------------------------ *)
(* The campaign                                                         *)
(* ------------------------------------------------------------------ *)

type cell = {
  cell_impl : Campaign.impl;
  cell_profile : profile;
  runs : int;
  flagged : int;
  stuck : int;
  faults_fired : int;
  counterexample : counterexample option;
}

type report = {
  cells : cell list;
  total_runs : int;
  total_flagged : int;
  total_stuck : int;
}

let case_of (cfg : config) impl prof i =
  {
    impl;
    prof;
    components = cfg.components;
    readers = cfg.readers;
    writes_per_writer = cfg.writes_per_writer;
    scans_per_reader = cfg.scans_per_reader;
    fault_seed = cfg.base_seed + i;
  }

let run ?(jobs = 1) ?pool ?metrics cfg =
  (* Flatten the {impl × profile × seed} sweep into one task list so the
     pool can shard it: task [t] is seed index [t mod seeds] of cell
     [t / seeds].  Each task is a fully independent simulation run;
     minimization is deferred to the sequential merge below so that
     "first failing seed of each cell" means the same thing at every
     job count. *)
  let cells_spec =
    List.concat_map
      (fun impl -> List.map (fun prof -> (impl, prof)) cfg.profiles)
      cfg.impls
    |> Array.of_list
  in
  let ncells = Array.length cells_spec in
  let results, workers =
    Exec.Pool.map_workers ~jobs ?recorder:pool
      ~label:(fun t ->
        let impl, prof = cells_spec.(t / cfg.seeds) in
        Printf.sprintf "%s/%s seed=%d" (Campaign.impl_name impl) prof.label
          (cfg.base_seed + (t mod cfg.seeds)))
      ~worker:Obs.Metrics.create
      (ncells * cfg.seeds)
      (fun m t ->
        let impl, prof = cells_spec.(t / cfg.seeds) in
        let i = t mod cfg.seeds in
        let case = case_of cfg impl prof i in
        (* Alternate uniform-random and starvation scheduling so every
           cell sees both kinds of adversary. *)
        let policy =
          if i mod 2 = 0 then Schedule.Random case.fault_seed
          else Schedule.Starving case.fault_seed
        in
        let r = exec ~max_steps:cfg.max_steps case (Record policy) in
        Obs.Metrics.observe
          (Obs.Metrics.histogram m "chaos.schedule_entries")
          (Array.length r.schedule);
        r)
  in
  let cells =
    List.init ncells (fun ci ->
        let impl, prof = cells_spec.(ci) in
        let flagged = ref 0 in
        let stuck = ref 0 in
        let fired = ref 0 in
        let cx = ref None in
        for i = 0 to cfg.seeds - 1 do
          let r = results.((ci * cfg.seeds) + i) in
          fired := !fired + r.fired;
          (match r.outcome with
          | Passed | Diverged _ -> ()
          | Stuck_run _ -> incr stuck
          | Flagged _ -> incr flagged);
          if !cx = None && cfg.minimize_budget > 0 && outcome_failed r.outcome
            (* Minimization replays via Scripted, so only schedules
               that replay deterministically qualify; recorded
               schedules always do. *)
          then
            cx :=
              Some
                (minimize ~budget:cfg.minimize_budget
                   (case_of cfg impl prof i)
                   ~script:r.schedule)
        done;
        {
          cell_impl = impl;
          cell_profile = prof;
          runs = cfg.seeds;
          flagged = !flagged;
          stuck = !stuck;
          faults_fired = !fired;
          counterexample = !cx;
        })
  in
  let report =
    {
      cells;
      total_runs = List.fold_left (fun a c -> a + c.runs) 0 cells;
      total_flagged = List.fold_left (fun a c -> a + c.flagged) 0 cells;
      total_stuck = List.fold_left (fun a c -> a + c.stuck) 0 cells;
    }
  in
  (match metrics with
  | None -> ()
  | Some m ->
    List.iter (fun w -> Obs.Metrics.merge ~into:m w) workers;
    let c name by = Obs.Metrics.incr ~by (Obs.Metrics.counter m name) in
    c "chaos.runs" report.total_runs;
    c "chaos.flagged" report.total_flagged;
    c "chaos.stuck" report.total_stuck;
    c "chaos.faults_fired"
      (List.fold_left (fun a cl -> a + cl.faults_fired) 0 cells);
    c "chaos.minimize_replays"
      (List.fold_left
         (fun a cl ->
           a
           + Option.fold ~none:0 ~some:(fun cx -> cx.cx_replays)
               cl.counterexample)
         0 cells));
  report

let pp_report fmt r =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun c ->
      Format.fprintf fmt "%-18s %-18s runs=%-4d flagged=%-4d stuck=%-4d faults-fired=%d@,"
        (Campaign.impl_name c.cell_impl)
        c.cell_profile.label c.runs c.flagged c.stuck c.faults_fired)
    r.cells;
  Format.fprintf fmt "total: runs=%d flagged=%d stuck=%d@]" r.total_runs
    r.total_flagged r.total_stuck

exception Bad_script of string

module Prng = struct
  (* splitmix64: tiny, fast, reproducible; good enough statistical
     quality for schedule shuffling. *)
  type t = { mutable state : int64 }

  let make seed = { state = Int64.of_int seed }

  let bits64 t =
    t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
    let z = t.state in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
    Int64.logxor z (Int64.shift_right_logical z 31)

  let int t bound =
    if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
    (* Rejection sampling: [r mod bound] alone over-weights small
       residues whenever [bound] does not divide 2^62.  Redraw on the
       (astronomically rare, for realistic bounds) overhang instead.
       [r] is a 62-bit draw, so on a 64-bit platform [max_int] is
       exactly 2^62 - 1 and the overhang [2^62 mod bound] can be
       computed without overflowing: accepted draws are those [<=
       max_int - overhang], a range whose size [2^62 - overhang] is an
       exact multiple of [bound]. *)
    let overhang = ((max_int mod bound) + 1) mod bound in
    let cutoff = max_int - overhang in
    let rec draw () =
      let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
      if r > cutoff then draw () else r mod bound
    in
    draw ()

  let float t =
    let r = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
    r /. 9007199254740992.0
end

type t =
  | Round_robin
  | Random of int
  | Starving of int
  | Scripted of int array * t
  | Choose of (enabled:int array -> step:int -> int)

type driver_state =
  | D_round_robin of { mutable last : int }
  | D_random of Prng.t
  | D_starving of { prng : Prng.t; mutable granted : int array }
  | D_scripted of { script : int array; mutable pos : int; fallback : driver_state }
  | D_choose of (enabled:int array -> step:int -> int)

type driver = driver_state

let rec driver = function
  | Round_robin -> D_round_robin { last = -1 }
  | Random seed -> D_random (Prng.make seed)
  | Starving seed -> D_starving { prng = Prng.make seed; granted = [||] }
  | Scripted (script, fallback) ->
    D_scripted { script; pos = 0; fallback = driver fallback }
  | Choose f -> D_choose f

let array_mem x a = Array.exists (fun y -> y = x) a

let rec pick d ~enabled ~step =
  match d with
  | D_round_robin st ->
    (* First enabled id strictly greater than [last], wrapping. *)
    let above = Array.to_list enabled |> List.filter (fun p -> p > st.last) in
    let choice = match above with p :: _ -> p | [] -> enabled.(0) in
    st.last <- choice;
    choice
  | D_random prng -> enabled.(Prng.int prng (Array.length enabled))
  | D_starving st ->
    (* Adversarial starvation: most of the time, grant the enabled
       process that has already been granted the most steps, so the
       laggard's in-flight operation spans as many foreign events as
       possible; occasionally (1 in 4) let the most-starved process
       creep one step forward so its operation actually makes progress
       through the danger zone instead of never starting. *)
    let max_id = Array.fold_left max 0 enabled in
    if max_id >= Array.length st.granted then begin
      let g = Array.make (max_id + 1) 0 in
      Array.blit st.granted 0 g 0 (Array.length st.granted);
      st.granted <- g
    end;
    let best cmp =
      Array.fold_left
        (fun acc p ->
          match acc with
          | None -> Some p
          | Some q -> if cmp st.granted.(p) st.granted.(q) then Some p else acc)
        None enabled
    in
    let choice =
      if Prng.float st.prng < 0.25 then Option.get (best ( < ))
      else Option.get (best ( > ))
    in
    st.granted.(choice) <- st.granted.(choice) + 1;
    choice
  | D_scripted st ->
    if st.pos >= Array.length st.script then pick st.fallback ~enabled ~step
    else begin
      let p = st.script.(st.pos) in
      st.pos <- st.pos + 1;
      if not (array_mem p enabled) then
        raise
          (Bad_script
             (Printf.sprintf
                "script step %d schedules process %d, which is not enabled"
                (st.pos - 1) p));
      p
    end
  | D_choose f ->
    let p = f ~enabled ~step in
    if not (array_mem p enabled) then
      raise (Bad_script (Printf.sprintf "Choose policy returned disabled process %d" p));
    p

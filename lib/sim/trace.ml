type kind = Read | Write | Note

type event = {
  step : int;
  proc : int;
  kind : kind;
  cell : string;
  value : string;
}

(* Storage is a circular buffer over a growable array.  With no capacity
   the array doubles when full and nothing is ever evicted; with a
   capacity the array is fixed at that size and recording a new event
   into a full buffer overwrites the oldest one. *)
type t = {
  mutable buf : event array;
  mutable start : int;  (* physical index of the oldest retained event *)
  mutable len : int;  (* retained events *)
  mutable total : int;  (* events ever recorded (retained + evicted) *)
  capacity : int option;
  mutable on : bool;
}

let dummy = { step = 0; proc = -1; kind = Note; cell = ""; value = "" }

let create ?capacity () =
  (match capacity with
  | Some c when c < 1 -> invalid_arg "Trace.create: capacity must be >= 1"
  | _ -> ());
  let initial =
    match capacity with Some c -> min c 64 | None -> 64
  in
  {
    buf = Array.make initial dummy;
    start = 0;
    len = 0;
    total = 0;
    capacity;
    on = true;
  }

let capacity t = t.capacity

let clear t =
  t.start <- 0;
  t.len <- 0;
  t.total <- 0

let grow t =
  let phys = Array.length t.buf in
  let target =
    match t.capacity with Some c -> min c (phys * 2) | None -> phys * 2
  in
  if target > phys then begin
    let buf' = Array.make target dummy in
    for i = 0 to t.len - 1 do
      buf'.(i) <- t.buf.((t.start + i) mod phys)
    done;
    t.buf <- buf';
    t.start <- 0
  end

let record t e =
  if t.on then begin
    let phys = Array.length t.buf in
    if t.len = phys then grow t;
    let phys = Array.length t.buf in
    if t.len < phys then begin
      t.buf.((t.start + t.len) mod phys) <- e;
      t.len <- t.len + 1
    end
    else begin
      (* Full at capacity: overwrite the oldest event. *)
      t.buf.(t.start) <- e;
      t.start <- (t.start + 1) mod phys
    end;
    t.total <- t.total + 1
  end

let nth t i = t.buf.((t.start + i) mod Array.length t.buf)
let events t = List.init t.len (nth t)

let iter t f =
  for i = 0 to t.len - 1 do
    f (nth t i)
  done

let fold t ~init f =
  let acc = ref init in
  iter t (fun e -> acc := f !acc e);
  !acc

let length t = t.len
let recorded t = t.total
let dropped t = t.total - t.len
let set_enabled t b = t.on <- b
let enabled t = t.on

let pp_kind fmt = function
  | Read -> Format.pp_print_string fmt "R"
  | Write -> Format.pp_print_string fmt "W"
  | Note -> Format.pp_print_string fmt "#"

let pp_event fmt e =
  match e.kind with
  | Note -> Format.fprintf fmt "%6d  p%-2d # %s" e.step e.proc e.cell
  | _ ->
    Format.fprintf fmt "%6d  p%-2d %a %s = %s" e.step e.proc pp_kind e.kind
      e.cell e.value

let pp fmt t = iter t (fun e -> Format.fprintf fmt "%a@." pp_event e)

let accesses_of t ~cell =
  List.rev
    (fold t ~init:[] (fun acc e ->
         if e.kind <> Note && String.equal e.cell cell then e :: acc else acc))

let writes_between t ~cell ~lo ~hi =
  fold t ~init:0 (fun acc e ->
      if e.kind = Write && String.equal e.cell cell && e.step >= lo && e.step <= hi
      then acc + 1
      else acc)

(* ------------------------------------------------------------------ *)
(* Span markers                                                         *)
(* ------------------------------------------------------------------ *)

let span_prefix_b = "span:B:"
let span_prefix_e = "span:E:"
let span_begin name = span_prefix_b ^ name
let span_end name = span_prefix_e ^ name

let span_of_note text =
  let n = String.length span_prefix_b in
  if String.length text < n then None
  else
    let body () = String.sub text n (String.length text - n) in
    if String.sub text 0 n = span_prefix_b then Some (`B, body ())
    else if String.sub text 0 n = span_prefix_e then Some (`E, body ())
    else None

type kind =
  | Lost_write of { prob : float }
  | Stuck_at of { after : int }
  | Stutter of { prob : float }
  | Corrupt of { prob : float }
  | Regular of { window : int }

type target = All | Exact of string | Prefix of string

type injection = { kind : kind; target : target }

type counters = {
  mutable lost : int;
  mutable frozen : int;
  mutable stuttered : int;
  mutable corrupted : int;
  mutable stale : int;
}

let fired c = c.lost + c.frozen + c.stuttered + c.corrupted + c.stale

let applies target name =
  match target with
  | All -> true
  | Exact s -> String.equal s name
  | Prefix p ->
    String.length name >= String.length p
    && String.equal (String.sub name 0 (String.length p)) p

let wrap ~seed injections (base : Memory.t) =
  let prng = Schedule.Prng.make seed in
  let counters = { lost = 0; frozen = 0; stuttered = 0; corrupted = 0; stale = 0 } in
  let chance p = Schedule.Prng.float prng < p in
  let make : type a. name:string -> bits:int -> a -> a Memory.cell =
   fun ~name ~bits init ->
    let c = base.Memory.make ~name ~bits init in
    let kinds =
      List.filter_map
        (fun i -> if applies i.target name then Some i.kind else None)
        injections
    in
    if kinds = [] then c
    else begin
      let find f = List.find_map f kinds in
      let lost_prob = find (function Lost_write { prob } -> Some prob | _ -> None) in
      let stuck_after = find (function Stuck_at { after } -> Some after | _ -> None) in
      let stutter_prob = find (function Stutter { prob } -> Some prob | _ -> None) in
      let corrupt_prob = find (function Corrupt { prob } -> Some prob | _ -> None) in
      let regular_window = find (function Regular { window } -> Some window | _ -> None) in
      (* The wrapper shadows the cell contents: [cur] is what the cell
         holds, [prev] what it held before the latest effective write.
         Cells are single-writer, and this state only changes inside
         the (single-threaded) simulation, so the shadow is exact. *)
      let cur = ref init in
      let prev = ref init in
      let stale_budget = ref 0 in
      let writes_seen = ref 0 in
      let write v =
        incr writes_seen;
        let frozen =
          match stuck_after with Some a -> !writes_seen > a | None -> false
        in
        if frozen then begin
          counters.frozen <- counters.frozen + 1;
          (* The event still happens; the value does not change. *)
          c.Memory.write !cur
        end
        else if match lost_prob with Some p -> chance p | None -> false then begin
          counters.lost <- counters.lost + 1;
          c.Memory.write !cur
        end
        else begin
          let old = !cur in
          (match regular_window with
          | Some w ->
            prev := old;
            stale_budget := w
          | None -> ());
          cur := v;
          c.Memory.write v;
          match stutter_prob with
          | Some p when chance p ->
            (* The previous write is spuriously re-delivered after the
               new one: an extra event that reverts the cell. *)
            counters.stuttered <- counters.stuttered + 1;
            (match regular_window with
            | Some w ->
              prev := v;
              stale_budget := w
            | None -> ());
            cur := old;
            c.Memory.write old
          | _ -> ()
        end
      in
      let read () =
        let v = c.Memory.read () in
        if match corrupt_prob with Some p -> chance p | None -> false then begin
          counters.corrupted <- counters.corrupted + 1;
          init
        end
        else if !stale_budget > 0 then begin
          stale_budget := !stale_budget - 1;
          if chance 0.5 then begin
            counters.stale <- counters.stale + 1;
            !prev
          end
          else v
        end
        else v
      in
      { Memory.read; write; peek = c.Memory.peek }
    end
  in
  ({ Memory.make }, counters)

(* ------------------------------------------------------------------ *)
(* Rendering and parsing                                                *)
(* ------------------------------------------------------------------ *)

let kind_to_string = function
  | Lost_write { prob } -> Printf.sprintf "lost:%g" prob
  | Stuck_at { after } -> Printf.sprintf "stuck:%d" after
  | Stutter { prob } -> Printf.sprintf "stutter:%g" prob
  | Corrupt { prob } -> Printf.sprintf "corrupt:%g" prob
  | Regular { window } -> Printf.sprintf "regular:%d" window

let injection_to_string i =
  match i.target with
  | All -> kind_to_string i.kind
  | Prefix p -> Printf.sprintf "%s@%s" (kind_to_string i.kind) p
  | Exact s -> Printf.sprintf "%s@=%s" (kind_to_string i.kind) s

let pp_kind fmt k = Format.pp_print_string fmt (kind_to_string k)
let pp_injection fmt i = Format.pp_print_string fmt (injection_to_string i)

let pp_counters fmt c =
  Format.fprintf fmt
    "lost=%d frozen=%d stuttered=%d corrupted=%d stale=%d" c.lost c.frozen
    c.stuttered c.corrupted c.stale

let injection_of_string s =
  let spec, target =
    match String.index_opt s '@' with
    | None -> (s, All)
    | Some i ->
      let t = String.sub s (i + 1) (String.length s - i - 1) in
      ( String.sub s 0 i,
        if String.length t > 0 && t.[0] = '=' then
          Exact (String.sub t 1 (String.length t - 1))
        else Prefix t )
  in
  let prob_arg name arg k =
    match float_of_string_opt arg with
    | Some p when p >= 0.0 && p <= 1.0 -> Ok { kind = k p; target }
    | _ -> Error (Printf.sprintf "%s wants a probability in [0,1], got %S" name arg)
  in
  let int_arg name arg k =
    match int_of_string_opt arg with
    | Some n when n >= 0 -> Ok { kind = k n; target }
    | _ -> Error (Printf.sprintf "%s wants a non-negative integer, got %S" name arg)
  in
  match String.index_opt spec ':' with
  | None ->
    Error
      (Printf.sprintf
         "fault spec %S: expected KIND:ARG[@TARGET] with KIND one of \
          lost|stuck|stutter|corrupt|regular"
         s)
  | Some i ->
    let name = String.sub spec 0 i in
    let arg = String.sub spec (i + 1) (String.length spec - i - 1) in
    (match name with
    | "lost" -> prob_arg name arg (fun prob -> Lost_write { prob })
    | "stutter" -> prob_arg name arg (fun prob -> Stutter { prob })
    | "corrupt" -> prob_arg name arg (fun prob -> Corrupt { prob })
    | "stuck" -> int_arg name arg (fun after -> Stuck_at { after })
    | "regular" -> int_arg name arg (fun window -> Regular { window })
    | _ -> Error (Printf.sprintf "unknown fault kind %S" name))

type kind =
  | Lost_write of { prob : float }
  | Stuck_at of { after : int }
  | Stutter of { prob : float }
  | Corrupt of { prob : float }
  | Regular of { window : int }
  | Equivocate of { prob : float }
  | Regress of { prob : float }
  | Byzantine of { f : int; prob : float }

type target = All | Exact of string | Prefix of string | Contains of string

type injection = { kind : kind; target : target }

type counters = {
  mutable lost : int;
  mutable frozen : int;
  mutable stuttered : int;
  mutable corrupted : int;
  mutable stale : int;
  mutable equivocated : int;
  mutable regressed : int;
  mutable byz_lies : int;
  mutable byz_drops : int;
  mutable byz_cells : int;
}

let fresh_counters () =
  {
    lost = 0;
    frozen = 0;
    stuttered = 0;
    corrupted = 0;
    stale = 0;
    equivocated = 0;
    regressed = 0;
    byz_lies = 0;
    byz_drops = 0;
    byz_cells = 0;
  }

(* [byz_cells] is the adversary's head count, not a triggered fault. *)
let fired c =
  c.lost + c.frozen + c.stuttered + c.corrupted + c.stale + c.equivocated
  + c.regressed + c.byz_lies + c.byz_drops

let contains ~sub name =
  let ls = String.length sub and ln = String.length name in
  ls = 0
  ||
  let rec at i =
    i + ls <= ln && (String.equal (String.sub name i ls) sub || at (i + 1))
  in
  at 0

let applies target name =
  match target with
  | All -> true
  | Exact s -> String.equal s name
  | Prefix p ->
    String.length name >= String.length p
    && String.equal (String.sub name 0 (String.length p)) p
  | Contains sub -> contains ~sub name

(* How far back [Regress] may reach: superseded values kept per cell. *)
let regress_depth = 8

type t = {
  mem : Memory.t;
  (* Layers of the wrapper stack, outermost first, each with its own
     counters.  A bare [stack] has no layers. *)
  layers : (injection list * counters) list;
  base : string;
}

let stack ?(base = "base") mem = { mem; layers = []; base }

let counters t =
  match t.layers with [] -> fresh_counters () | (_, c) :: _ -> c

let fired_stack t = List.fold_left (fun a (_, c) -> a + fired c) 0 t.layers

let wrap_over ~seed ?who injections (outer : t) =
  let base = outer.mem in
  let prng = Schedule.Prng.make seed in
  let counters = fresh_counters () in
  let chance p = Schedule.Prng.float prng < p in
  (* Reader identity for equivocation: route through [who] when the
     caller can name the reading process (e.g. [Sim.self]); default to
     a round-robin witness so equivocation still alternates faces in
     single-threaded tests. *)
  let turn = ref 0 in
  let who =
    match who with
    | Some f -> f
    | None ->
      fun () ->
        incr turn;
        !turn
  in
  (* The Byzantine adversary owns a budget of [f] cells per injection;
     it claims the first matching cells as they are allocated, which
     concentrates the corruption (the strongest placement against a
     replicated construction) and keeps claims deterministic. *)
  let budgets =
    List.map
      (fun i ->
        match i.kind with
        | Byzantine { f; _ } -> (i, ref f)
        | _ -> (i, ref 0))
      injections
  in
  let make : type a. name:string -> bits:int -> a -> a Memory.cell =
   fun ~name ~bits init ->
    let c = base.Memory.make ~name ~bits init in
    let kinds =
      List.filter_map
        (fun (i, budget) ->
          if not (applies i.target name) then None
          else
            match i.kind with
            | Byzantine { prob; _ } ->
              if !budget > 0 then begin
                decr budget;
                counters.byz_cells <- counters.byz_cells + 1;
                Some (Byzantine { f = 0; prob })
              end
              else None
            | k -> Some k)
        budgets
    in
    if kinds = [] then c
    else begin
      let find f = List.find_map f kinds in
      let lost_prob = find (function Lost_write { prob } -> Some prob | _ -> None) in
      let stuck_after = find (function Stuck_at { after } -> Some after | _ -> None) in
      let stutter_prob = find (function Stutter { prob } -> Some prob | _ -> None) in
      let corrupt_prob = find (function Corrupt { prob } -> Some prob | _ -> None) in
      let regular_window = find (function Regular { window } -> Some window | _ -> None) in
      let equivocate_prob = find (function Equivocate { prob } -> Some prob | _ -> None) in
      let regress_prob = find (function Regress { prob } -> Some prob | _ -> None) in
      let byz_prob = find (function Byzantine { prob; _ } -> Some prob | _ -> None) in
      (* The wrapper shadows the cell contents: [cur] is what the cell
         holds, [prev] what it held before the latest effective write.
         Cells are single-writer, and this state only changes inside
         the (single-threaded) simulation, so the shadow is exact. *)
      let cur = ref init in
      let prev = ref init in
      let history = ref [] in
      (* superseded values, newest first *)
      let stale_budget = ref 0 in
      let writes_seen = ref 0 in
      let supersede old =
        prev := old;
        history :=
          old :: (if List.length !history >= regress_depth then
                    List.filteri (fun i _ -> i < regress_depth - 1) !history
                  else !history)
      in
      let write v =
        incr writes_seen;
        let frozen =
          match stuck_after with Some a -> !writes_seen > a | None -> false
        in
        if frozen then begin
          counters.frozen <- counters.frozen + 1;
          (* The event still happens; the value does not change. *)
          c.Memory.write !cur
        end
        else if match byz_prob with Some p -> chance p | None -> false then begin
          (* A claimed cell silently discards the write: the targeted
             drop of an actively faulty base register. *)
          counters.byz_drops <- counters.byz_drops + 1;
          c.Memory.write !cur
        end
        else if match lost_prob with Some p -> chance p | None -> false then begin
          counters.lost <- counters.lost + 1;
          c.Memory.write !cur
        end
        else begin
          let old = !cur in
          supersede old;
          (match regular_window with
          | Some w -> stale_budget := w
          | None -> ());
          cur := v;
          c.Memory.write v;
          match stutter_prob with
          | Some p when chance p ->
            (* The previous write is spuriously re-delivered after the
               new one: an extra event that reverts the cell. *)
            counters.stuttered <- counters.stuttered + 1;
            supersede v;
            (match regular_window with
            | Some w -> stale_budget := w
            | None -> ());
            cur := old;
            c.Memory.write old
          | _ -> ()
        end
      in
      let read () =
        let v = c.Memory.read () in
        if match byz_prob with Some p -> chance p | None -> false then begin
          (* A claimed cell answers with its initial state: the largest
             possible timestamp regression, and — because every replica
             of a register group starts identical — the lie on which
             colluding claimed cells automatically agree. *)
          counters.byz_lies <- counters.byz_lies + 1;
          init
        end
        else if match corrupt_prob with Some p -> chance p | None -> false
        then begin
          counters.corrupted <- counters.corrupted + 1;
          init
        end
        else if
          match equivocate_prob with Some p -> chance p | None -> false
        then begin
          (* Equivocation: the answer depends on who is asking, so two
             concurrent readers see different faces of the register. *)
          counters.equivocated <- counters.equivocated + 1;
          if who () land 1 = 1 then !prev else v
        end
        else if match regress_prob with Some p -> chance p | None -> false
        then begin
          (* Bogus/regressing timestamps: replay an arbitrarily old
             superseded value (any tag embedded in it rides along). *)
          match !history with
          | [] -> v
          | h ->
            counters.regressed <- counters.regressed + 1;
            List.nth h (Schedule.Prng.int prng (List.length h))
        end
        else if !stale_budget > 0 then begin
          stale_budget := !stale_budget - 1;
          if chance 0.5 then begin
            counters.stale <- counters.stale + 1;
            !prev
          end
          else v
        end
        else v
      in
      { Memory.read; write; peek = c.Memory.peek }
    end
  in
  {
    mem = { Memory.make };
    layers = (injections, counters) :: outer.layers;
    base = outer.base;
  }

let wrap ~seed ?who injections (base : Memory.t) =
  let w = wrap_over ~seed ?who injections (stack base) in
  (w.mem, counters w)

(* ------------------------------------------------------------------ *)
(* Rendering and parsing                                                *)
(* ------------------------------------------------------------------ *)

let kind_to_string = function
  | Lost_write { prob } -> Printf.sprintf "lost:%g" prob
  | Stuck_at { after } -> Printf.sprintf "stuck:%d" after
  | Stutter { prob } -> Printf.sprintf "stutter:%g" prob
  | Corrupt { prob } -> Printf.sprintf "corrupt:%g" prob
  | Regular { window } -> Printf.sprintf "regular:%d" window
  | Equivocate { prob } -> Printf.sprintf "equivocate:%g" prob
  | Regress { prob } -> Printf.sprintf "regress:%g" prob
  | Byzantine { f; prob } -> Printf.sprintf "byz:%d:%g" f prob

let injection_to_string i =
  match i.target with
  | All -> kind_to_string i.kind
  | Prefix p -> Printf.sprintf "%s@%s" (kind_to_string i.kind) p
  | Exact s -> Printf.sprintf "%s@=%s" (kind_to_string i.kind) s
  | Contains sub -> Printf.sprintf "%s@*%s" (kind_to_string i.kind) sub

let pp_kind fmt k = Format.pp_print_string fmt (kind_to_string k)
let pp_injection fmt i = Format.pp_print_string fmt (injection_to_string i)

let pp_counters fmt c =
  Format.fprintf fmt
    "lost=%d frozen=%d stuttered=%d corrupted=%d stale=%d equivocated=%d \
     regressed=%d byz-lies=%d byz-drops=%d byz-cells=%d"
    c.lost c.frozen c.stuttered c.corrupted c.stale c.equivocated c.regressed
    c.byz_lies c.byz_drops c.byz_cells

let layer_label injections =
  match injections with
  | [] -> "pass-through"
  | is -> String.concat "+" (List.map injection_to_string is)

let stack_label ~layers ~base =
  String.concat " over " (List.map layer_label layers @ [ base ])

let describe t = stack_label ~layers:(List.map fst t.layers) ~base:t.base

let injection_of_string s =
  let spec, target =
    match String.index_opt s '@' with
    | None -> (s, All)
    | Some i ->
      let t = String.sub s (i + 1) (String.length s - i - 1) in
      ( String.sub s 0 i,
        if String.length t > 0 && t.[0] = '=' then
          Exact (String.sub t 1 (String.length t - 1))
        else if String.length t > 0 && t.[0] = '*' then
          Contains (String.sub t 1 (String.length t - 1))
        else Prefix t )
  in
  let prob_arg name arg k =
    match float_of_string_opt arg with
    | Some p when p >= 0.0 && p <= 1.0 -> Ok { kind = k p; target }
    | _ -> Error (Printf.sprintf "%s wants a probability in [0,1], got %S" name arg)
  in
  let int_arg name arg k =
    match int_of_string_opt arg with
    | Some n when n >= 0 -> Ok { kind = k n; target }
    | _ -> Error (Printf.sprintf "%s wants a non-negative integer, got %S" name arg)
  in
  match String.index_opt spec ':' with
  | None ->
    Error
      (Printf.sprintf
         "fault spec %S: expected KIND:ARG[@TARGET] with KIND one of \
          lost|stuck|stutter|corrupt|regular|equivocate|regress|byz"
         s)
  | Some i ->
    let name = String.sub spec 0 i in
    let arg = String.sub spec (i + 1) (String.length spec - i - 1) in
    (match name with
    | "lost" -> prob_arg name arg (fun prob -> Lost_write { prob })
    | "stutter" -> prob_arg name arg (fun prob -> Stutter { prob })
    | "corrupt" -> prob_arg name arg (fun prob -> Corrupt { prob })
    | "stuck" -> int_arg name arg (fun after -> Stuck_at { after })
    | "regular" -> int_arg name arg (fun window -> Regular { window })
    | "equivocate" -> prob_arg name arg (fun prob -> Equivocate { prob })
    | "regress" -> prob_arg name arg (fun prob -> Regress { prob })
    | "byz" -> (
      match String.index_opt arg ':' with
      | None -> Error "byz wants F:PROB, e.g. byz:1:1"
      | Some j ->
        let f_s = String.sub arg 0 j in
        let p_s = String.sub arg (j + 1) (String.length arg - j - 1) in
        (match (int_of_string_opt f_s, float_of_string_opt p_s) with
        | Some f, Some p when f >= 0 && p >= 0.0 && p <= 1.0 ->
          Ok { kind = Byzantine { f; prob = p }; target }
        | _ ->
          Error
            (Printf.sprintf
               "byz wants a non-negative budget and a probability in \
                [0,1], got %S"
               arg)))
    | _ -> Error (Printf.sprintf "unknown fault kind %S" name))

(** Event traces of simulated histories.

    A trace records, in execution order, every atomic shared-memory
    access (an {e event} in the paper's terminology) together with
    free-form notes emitted by the harness (operation boundaries,
    schedule annotations, ...).  Traces are the raw material from which
    histories are reconstructed and against which the Figure-4 scenarios
    are asserted.

    {b Bounding.}  By default a trace retains every event.  Created with
    [~capacity:n] it becomes a ring buffer: once [n] events are
    retained, recording a new event {e evicts the oldest retained
    event}, so the trace always holds the most recent [n] events (a
    suffix of the run).  {!length} counts retained events, {!recorded}
    counts all events ever recorded, and [recorded - length = ]
    {!dropped}.  Query functions ({!events}, {!accesses_of},
    {!writes_between}, {!pp}) see only the retained suffix — long
    fault-sweep campaigns cap their traces, so their assertions must not
    rely on evicted history. *)

type kind = Read | Write | Note

type event = {
  step : int;  (** index of the event; 0 is the first access of the run *)
  proc : int;  (** process that performed the access; -1 for harness notes *)
  kind : kind;
  cell : string;  (** cell name, or the note text for [Note] events *)
  value : string;  (** rendered value transferred by the access *)
}

type t

val create : ?capacity:int -> unit -> t
(** Fresh trace.  [capacity] (default: unbounded) caps the number of
    retained events; see the eviction semantics above.  Raises
    [Invalid_argument] if [capacity < 1]. *)

val capacity : t -> int option
val clear : t -> unit
val record : t -> event -> unit

val events : t -> event list
(** All retained events, oldest first. *)

val iter : t -> (event -> unit) -> unit
(** Iterate over retained events, oldest first, without materializing
    the list. *)

val length : t -> int
(** Number of retained events. *)

val recorded : t -> int
(** Number of events ever recorded, including evicted ones. *)

val dropped : t -> int
(** Number of events evicted by the ring buffer ([recorded - length]);
    always [0] for unbounded traces. *)

val set_enabled : t -> bool -> unit
val enabled : t -> bool

val pp_event : Format.formatter -> event -> unit
val pp : Format.formatter -> t -> unit

val accesses_of : t -> cell:string -> event list
(** Retained events (reads and writes) touching the named cell, oldest
    first. *)

val writes_between : t -> cell:string -> lo:int -> hi:int -> int
(** Number of retained [Write] events on [cell] with [lo <= step <= hi].
    Used by the Figure-4 scenario assertions ("Writer 0 executes its
    statement 3 exactly twice between r:3 and r:7"). *)

(** {2 Operation-span markers}

    Spans (operation begin/end intervals, possibly nested) are encoded
    as [Note] events whose text uses a reserved prefix.  The harness
    emits them via [Sim.note]; [Obs.Span] reconstructs the interval
    tree from a trace.  The format is defined here, in the layer both
    producers and consumers already depend on. *)

val span_begin : string -> string
(** [span_begin name] is the note text marking the start of span
    [name]. *)

val span_end : string -> string
(** [span_end name] is the note text marking the end of span [name]. *)

val span_of_note : string -> ([ `B | `E ] * string) option
(** Parse a note text back into a span marker; [None] for ordinary
    notes. *)

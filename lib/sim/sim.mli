(** The simulated asynchronous shared-memory machine.

    This module realizes the execution model of Section 2 of the paper:
    a fixed set of sequential processes, each a sequence of atomic
    statements, interleaved by an adversarial scheduler.  The scheduling
    points are exactly the shared-memory accesses: between any two
    accesses of one process, any number of steps of other processes may
    occur, and each access itself is a single indivisible event.

    Processes are ordinary OCaml functions.  Inside a process, shared
    cells are accessed with {!read} and {!write}, which suspend the
    process (via an effect) until the scheduler grants it its next step.
    Everything is single-threaded and deterministic given the policy. *)

type env
(** A simulation environment: the registry of shared cells, the global
    event counter, and the trace buffer. *)

val create : ?trace:bool -> ?trace_capacity:int -> unit -> env
(** Fresh environment.  [trace] (default [true]) controls whether events
    are recorded; accounting counters are always maintained.
    [trace_capacity] bounds the trace to a ring buffer of that many
    events (see [Trace.create]) — used by long campaigns so the event
    list cannot grow without limit. *)

val make_cell :
  env -> ?pp:('a -> string) -> ?bits:int -> string -> 'a -> 'a Cell.t
(** [make_cell env name init] allocates a shared cell and registers it
    with [env] for space accounting.  [bits] defaults to 0 (unknown). *)

val read : 'a Cell.t -> 'a
(** Atomic read.  Must be called from inside a process of a running
    simulation; raises [Not_in_simulation] otherwise. *)

val write : 'a Cell.t -> 'a -> unit
(** Atomic write.  Same restrictions as {!read}. *)

exception Not_in_simulation
(** Raised by {!read}/{!write} outside of {!run}. *)

val self : unit -> int
(** The id of the currently-running process.  Not an event (consumes no
    scheduling step).  Raises {!Not_in_simulation} outside a run.  Used
    by memory adapters that must route accesses by process identity
    (e.g. running an algorithm on top of registers that have per-reader
    ports, such as [Registers.Constructions.Atomic_mrsw_of_srsw]). *)

val on_event : env -> (step:int -> unit) -> unit
(** Register an observer invoked after every shared-memory event, with
    the post-event value of {!now}.  Observers run at scheduler level
    (outside any process): they may {!Cell.peek} but must not {!read} or
    {!write}.  Used to record ghost state for the executable proof
    lemmas (see [Workload.Lemmas]). *)

val now : env -> int
(** The number of shared-memory events that have occurred so far.  Used
    by harnesses to timestamp operation invocations and responses: an
    operation [p] with response time [t1] precedes an operation [q] with
    invocation time [t0] iff [t1 <= t0]. *)

val note : env -> proc:int -> string -> unit
(** Append a harness note to the trace at the current step. *)

val trace : env -> Trace.t
val total_accesses : env -> int
(** Total reads + writes across all cells since creation (equals
    {!now}). *)

val reset_counters : env -> unit
(** Zero every cell's read/write counters (the trace and step counter
    are preserved). *)

val space_bits : env -> int
(** Sum of the declared widths of all registered cells: the space
    accounting used to reproduce the paper's [S(C,B,1,R)]
    recurrence. *)

val cells : env -> Cell.packed list
(** All registered cells, in creation order. *)

type cell_stat = {
  cell : string;  (** cell name *)
  creads : int;  (** read events on this cell since creation/reset *)
  cwrites : int;  (** write events on this cell since creation/reset *)
}

val cell_stats : env -> cell_stat list
(** Per-cell read/write counters, in creation order.  Unlike
    {!total_accesses} this attributes every event to the cell it
    touched; the hot-cell profiler ([Obs.Profile]) ranks contention
    from it.  Counters are zeroed by {!reset_counters}. *)

type stats = {
  steps : int;  (** number of shared-memory events in the run *)
  switches : int;  (** number of context switches between processes *)
}

exception Stuck of string
(** Raised when the step budget is exhausted — only possible if some
    process loops forever without terminating, i.e. a wait-freedom
    violation. *)

val run :
  env ->
  ?policy:Schedule.t ->
  ?max_steps:int ->
  ?crashes:(int * int) list ->
  ?stalls:(int * int * int) list ->
  (unit -> unit) array ->
  stats
(** [run env procs] executes all processes to completion under the given
    scheduling policy (default [Round_robin]).  Process [i] is
    [procs.(i)].  [max_steps] (default [10_000_000]) bounds the total
    number of events; exceeding it raises {!Stuck}, which for the
    wait-free algorithms in this repository indicates a bug.

    [crashes] injects halting failures: [(p, n)] halts process [p]
    forever once it has performed [n] shared-memory events (so [n = 0]
    halts it before its first event — possibly mid-operation, which is
    the paper's failure model).  Crashed processes are simply never
    scheduled again; the run completes when every process has finished
    or crashed.  Wait-freedom (Section 1 of the paper) says the
    surviving processes' operations still complete — which {!Stuck}
    would expose if violated.

    [stalls] injects transient (stall/resume) faults: [(p, at, dur)]
    removes process [p] from the schedulable set once it has performed
    [at] events — freezing it mid-operation, like a crash — and returns
    it after [dur] further global events have been performed by other
    processes.  Unlike a crash the operation then resumes and must still
    complete correctly; a stalled process is exactly the "slow" process
    of the paper's adversarial arguments, stretched over an explicit
    window.  If at some point {e every} runnable process is stalled, the
    stall due to resume soonest is released early (global time advances
    only through events, so the window could otherwise never elapse).
    At most one crash entry and one stall entry per process; duplicate
    or out-of-range process ids, and negative event counts, raise
    [Invalid_argument]. *)

val run_solo : env -> ?max_steps:int -> (unit -> unit) -> stats
(** Run a single process alone; convenient for sequential tests and for
    measuring the exact per-operation access counts of Section 4's time
    complexity recurrences. *)

(** {2 Bounded-exhaustive schedule exploration}

    For small configurations, every interleaving can be enumerated by
    re-running the system once per schedule.  The factory must build a
    fresh, identically-initialized system on each call (fresh [env],
    fresh cells, fresh processes); [check] is called after each run and
    should raise to report a violation. *)

type exploration = {
  runs : int;  (** number of distinct schedules executed *)
  exhaustive : bool;  (** false if [max_runs] was hit first *)
}

exception
  Exploration_failure of {
    schedule : int list;  (** process ids, in order, of the failing run *)
    exn : exn;
  }

val explore :
  ?max_runs:int ->
  (unit -> env * (unit -> unit) array * (env -> unit)) ->
  exploration
(** [explore factory] enumerates schedules depth-first.  [factory ()]
    must return [(env, procs, check)].  Default [max_runs] is
    [100_000]. *)
